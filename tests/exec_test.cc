// Unit tests for the execution layer: ExecRow, the incremental join steps
// with cached states and rollback watermarks, and the grouped sketch.

#include <gtest/gtest.h>

#include "exec/batch.h"
#include "exec/hash_aggregate.h"
#include "exec/operators.h"

namespace iolap {
namespace {

ExecRow MakeRow(std::initializer_list<int64_t> values, uint64_t uid = ExecRow::kNoStream) {
  ExecRow row;
  for (int64_t v : values) row.values.push_back(Value::Int64(v));
  row.stream_uid = uid;
  return row;
}

TEST(ExecRowTest, ConcatMultipliesWeightAndKeepsUid) {
  ExecRow left = MakeRow({1}, 7);
  left.weight = 2.0;
  ExecRow right = MakeRow({2});
  right.weight = 3.0;
  const ExecRow joined = ConcatRows(left, right);
  EXPECT_EQ(joined.values.size(), 2u);
  EXPECT_DOUBLE_EQ(joined.weight, 6.0);
  EXPECT_EQ(joined.stream_uid, 7u);
  EXPECT_TRUE(joined.FromStream());
}

TEST(ExecRowTest, ConcatUidFromRightSide) {
  const ExecRow joined = ConcatRows(MakeRow({1}), MakeRow({2}, 9));
  EXPECT_EQ(joined.stream_uid, 9u);
}

TEST(ExecRowTest, BatchByteSize) {
  RowBatch batch = {MakeRow({1, 2}), MakeRow({3, 4})};
  EXPECT_GT(BatchByteSize(batch), 2 * 16u);
}

// --------------------------------------------------------- InputCache

TEST(InputCacheTest, AppendAndMatch) {
  InputCache cache({0});
  cache.Append(MakeRow({1, 10}));
  cache.Append(MakeRow({2, 20}));
  cache.Append(MakeRow({1, 30}));
  EXPECT_EQ(cache.Matches({Value::Int64(1)}).size(), 2u);
  EXPECT_EQ(cache.Matches({Value::Int64(2)}).size(), 1u);
  EXPECT_TRUE(cache.Matches({Value::Int64(3)}).empty());
  EXPECT_GT(cache.ByteSize(), 0u);
}

TEST(InputCacheTest, TruncateRollsBackIndexAndBytes) {
  InputCache cache({0});
  cache.Append(MakeRow({1}));
  const size_t mark = cache.watermark();
  const size_t bytes = cache.ByteSize();
  cache.Append(MakeRow({1}));
  cache.Append(MakeRow({2}));
  EXPECT_EQ(cache.Matches({Value::Int64(1)}).size(), 2u);
  cache.TruncateTo(mark);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.ByteSize(), bytes);
  EXPECT_EQ(cache.Matches({Value::Int64(1)}).size(), 1u);
  EXPECT_TRUE(cache.Matches({Value::Int64(2)}).empty());
}

// ------------------------------------------------------------ JoinStep

// Incremental Δ(P ⋈ I) over several batches must equal the full join.
TEST(JoinStepTest, IncrementalEqualsFullJoin) {
  JoinStep step({0}, {0}, /*input_grows=*/true, /*prefix_grows=*/true);
  std::vector<std::pair<int, int>> produced;  // (left payload, right payload)

  auto deliver = [&](std::vector<std::pair<int64_t, int64_t>> left,
                     std::vector<std::pair<int64_t, int64_t>> right) {
    RowBatch lp, rp;
    for (auto [k, v] : left) lp.push_back(MakeRow({k, v}));
    for (auto [k, v] : right) rp.push_back(MakeRow({k, v}));
    RowBatch out;
    step.ProcessBatch(lp, rp, &out);
    for (const ExecRow& row : out) {
      produced.emplace_back(static_cast<int>(row.values[1].int64()),
                            static_cast<int>(row.values[3].int64()));
    }
  };

  // Batch 0: L={a:1}, R={a:10} -> (1,10)
  deliver({{5, 1}}, {{5, 10}});
  // Batch 1: L+={a:2}, R+={a:20}:
  //   new pairs: (1,20) [old P x dR], (2,10), (2,20) [dP x R_new]
  deliver({{5, 2}}, {{5, 20}});
  // Batch 2: only right grows: (1,30), (2,30)
  deliver({}, {{5, 30}});
  // Batch 3: only left grows: (3,10), (3,20), (3,30)
  deliver({{5, 3}}, {});

  std::sort(produced.begin(), produced.end());
  std::vector<std::pair<int, int>> expected;
  for (int l = 1; l <= 3; ++l) {
    for (int r = 10; r <= 30; r += 10) expected.emplace_back(l, r);
  }
  EXPECT_EQ(produced, expected);
}

TEST(JoinStepTest, NoDuplicatesWithinBatch) {
  JoinStep step({0}, {0}, true, true);
  RowBatch left = {MakeRow({1, 100})};
  RowBatch right = {MakeRow({1, 200})};
  RowBatch out;
  step.ProcessBatch(left, right, &out);
  EXPECT_EQ(out.size(), 1u);  // ΔP⋈ΔI counted exactly once
}

TEST(JoinStepTest, StaticInputKeepsNoPrefixCache) {
  // input_grows=false: the prefix cache is not maintained.
  JoinStep step({0}, {0}, /*input_grows=*/false, /*prefix_grows=*/true);
  RowBatch dim = {MakeRow({1, 7})};
  RowBatch out;
  step.ProcessBatch({}, dim, &out);
  const size_t bytes_after_dim = step.StateBytes();
  RowBatch fact = {MakeRow({1, 1}), MakeRow({1, 2})};
  out.clear();
  step.ProcessBatch(fact, {}, &out);
  EXPECT_EQ(out.size(), 2u);
  // Only the dimension side is cached; fact rows were not added.
  EXPECT_EQ(step.StateBytes(), bytes_after_dim);
}

TEST(JoinStepTest, WatermarkRollback) {
  JoinStep step({0}, {0}, true, true);
  RowBatch out;
  step.ProcessBatch({MakeRow({1, 1})}, {MakeRow({1, 10})}, &out);
  const auto mark = step.watermark();
  step.ProcessBatch({MakeRow({1, 2})}, {MakeRow({1, 20})}, &out);
  step.TruncateTo(mark);
  // Replaying the second batch reproduces the same deltas.
  RowBatch replay;
  step.ProcessBatch({MakeRow({1, 2})}, {MakeRow({1, 20})}, &replay);
  EXPECT_EQ(replay.size(), 3u);  // (1,20), (2,10), (2,20)
}

TEST(JoinStepTest, CrossJoinEmptyKeys) {
  JoinStep step({}, {}, true, true);
  RowBatch out;
  step.ProcessBatch({MakeRow({1}), MakeRow({2})}, {MakeRow({10})}, &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(JoinStepTest, ProbeCount) {
  JoinStep step({0}, {0}, false, true);
  RowBatch dim;
  for (int i = 0; i < 5; ++i) dim.push_back(MakeRow({i % 2, i}));
  RowBatch out;
  step.ProcessBatch({}, dim, &out);
  EXPECT_EQ(step.ProbeCount({Value::Int64(0)}), 3u);
  EXPECT_EQ(step.ProbeCount({Value::Int64(1)}), 2u);
}

// ----------------------------------------------- GroupedAggregateState

std::vector<AggSpec> SumSpec() {
  std::vector<AggSpec> specs;
  specs.push_back(AggSpec{MakeBuiltinAggFunction(AggKind::kSum),
                          Col(0, "x", ValueType::kDouble), "s"});
  return specs;
}

TEST(GroupedAggregateTest, GetOrCreateTracksFirstBatch) {
  auto specs = SumSpec();
  GroupedAggregateState state(&specs, 2);
  bool created = false;
  auto& cells = state.GetOrCreate({Value::Int64(1)}, 3, &created);
  EXPECT_TRUE(created);
  EXPECT_EQ(cells.first_batch, 3);
  EXPECT_EQ(cells.aggs.size(), 1u);
  state.GetOrCreate({Value::Int64(1)}, 5, &created);
  EXPECT_FALSE(created);
  EXPECT_EQ(state.num_groups(), 1u);
}

TEST(GroupedAggregateTest, CloneIsDeep) {
  auto specs = SumSpec();
  GroupedAggregateState state(&specs, 0);
  state.GetOrCreate({Value::Int64(1)}, 0).aggs[0].AddMainOnly(
      Value::Double(5), 1.0);
  GroupedAggregateState copy = state.Clone();
  copy.GetOrCreate({Value::Int64(1)}, 0).aggs[0].AddMainOnly(
      Value::Double(7), 1.0);
  EXPECT_DOUBLE_EQ(
      state.Find({Value::Int64(1)})->aggs[0].MainResult(1.0).AsDouble(), 5.0);
  EXPECT_DOUBLE_EQ(
      copy.Find({Value::Int64(1)})->aggs[0].MainResult(1.0).AsDouble(), 12.0);
}

TEST(GroupedAggregateTest, DropGroupsAfter) {
  auto specs = SumSpec();
  GroupedAggregateState state(&specs, 0);
  state.GetOrCreate({Value::Int64(1)}, 0);
  state.GetOrCreate({Value::Int64(2)}, 5);
  state.DropGroupsAfter(2);
  EXPECT_NE(state.Find({Value::Int64(1)}), nullptr);
  EXPECT_EQ(state.Find({Value::Int64(2)}), nullptr);
}

TEST(GroupedAggregateTest, ByteSizeGrowsWithGroups) {
  auto specs = SumSpec();
  GroupedAggregateState state(&specs, 4);
  const size_t empty = state.ByteSize();
  for (int g = 0; g < 10; ++g) state.GetOrCreate({Value::Int64(g)}, 0);
  EXPECT_GT(state.ByteSize(), empty);
}

}  // namespace
}  // namespace iolap
