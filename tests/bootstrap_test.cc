// Unit tests for the bootstrap layer: poissonized multiplicities, trial
// accumulators, error estimates, and variation-range tracking with
// decision constraints.

#include <gtest/gtest.h>

#include <cmath>

#include "bootstrap/error_estimate.h"
#include "bootstrap/poisson_multiplicities.h"
#include "bootstrap/trial_accumulator.h"
#include "bootstrap/variation_range.h"
#include "core/aggregate.h"

namespace iolap {
namespace {

TEST(BootstrapWeightsTest, DeterministicPerRowAndTrial) {
  BootstrapWeights a(7, 50);
  BootstrapWeights b(7, 50);
  for (uint64_t uid : {0ull, 5ull, 999ull}) {
    for (int t = 0; t < 50; ++t) {
      EXPECT_EQ(a.WeightAt(uid, t), b.WeightAt(uid, t));
    }
  }
}

TEST(BootstrapWeightsTest, DifferentSeedsDiffer) {
  BootstrapWeights a(1, 100);
  BootstrapWeights b(2, 100);
  int diffs = 0;
  for (int t = 0; t < 100; ++t) {
    diffs += a.WeightAt(42, t) != b.WeightAt(42, t);
  }
  EXPECT_GT(diffs, 10);
}

TEST(BootstrapWeightsTest, MeanAndVarianceNearOne) {
  BootstrapWeights weights(3, 1);
  double sum = 0, sumsq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const int w = weights.WeightAt(static_cast<uint64_t>(i), 0);
    sum += w;
    sumsq += static_cast<double>(w) * w;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1.0, 0.02);
  EXPECT_NEAR(sumsq / n - mean * mean, 1.0, 0.03);
}

TEST(BootstrapWeightsTest, RowOverheadMatchesTrials) {
  EXPECT_EQ(BootstrapWeights(0, 64).RowOverheadBytes(), 64u);
}

// ------------------------------------------------- TrialAccumulatorSet

TEST(TrialAccumulatorTest, MainAndTrialsIndependent) {
  auto fn = MakeBuiltinAggFunction(AggKind::kSum);
  TrialAccumulatorSet acc(*fn, 3);
  const int weights[3] = {0, 1, 2};
  acc.Add(Value::Double(10), 1.0, weights);
  EXPECT_DOUBLE_EQ(acc.MainResult(1.0).AsDouble(), 10.0);
  const auto trials = acc.TrialResults(1.0);
  ASSERT_EQ(trials.size(), 3u);
  EXPECT_DOUBLE_EQ(trials[0], 10.0);  // empty trial falls back to main
  EXPECT_DOUBLE_EQ(trials[1], 10.0);
  EXPECT_DOUBLE_EQ(trials[2], 20.0);
}

TEST(TrialAccumulatorTest, NullTrialWeightsMeanUniform) {
  auto fn = MakeBuiltinAggFunction(AggKind::kCount);
  TrialAccumulatorSet acc(*fn, 2);
  acc.Add(Value::Int64(1), 2.0, nullptr);
  for (double t : acc.TrialResults(1.0)) EXPECT_DOUBLE_EQ(t, 2.0);
}

TEST(TrialAccumulatorTest, AddPerTrialUsesTrialValues) {
  auto fn = MakeBuiltinAggFunction(AggKind::kAvg);
  TrialAccumulatorSet acc(*fn, 2);
  // main value 10; trial replicas 8 and 12.
  acc.AddPerTrial({Value::Double(10), Value::Double(8), Value::Double(12)},
                  1.0, nullptr);
  EXPECT_DOUBLE_EQ(acc.MainResult(1.0).AsDouble(), 10.0);
  const auto trials = acc.TrialResults(1.0);
  EXPECT_DOUBLE_EQ(trials[0], 8.0);
  EXPECT_DOUBLE_EQ(trials[1], 12.0);
}

TEST(TrialAccumulatorTest, AddMainOnlyAndTrialOnly) {
  auto fn = MakeBuiltinAggFunction(AggKind::kSum);
  TrialAccumulatorSet acc(*fn, 2);
  acc.AddMainOnly(Value::Double(5), 1.0);
  acc.AddTrialOnly(1, Value::Double(7), 1.0);
  EXPECT_DOUBLE_EQ(acc.MainResult(1.0).AsDouble(), 5.0);
  const auto trials = acc.TrialResults(1.0);
  EXPECT_DOUBLE_EQ(trials[0], 5.0);  // empty -> main fallback
  EXPECT_DOUBLE_EQ(trials[1], 7.0);
}

TEST(TrialAccumulatorTest, CloneAndMerge) {
  auto fn = MakeBuiltinAggFunction(AggKind::kSum);
  TrialAccumulatorSet a(*fn, 2);
  const int w[2] = {1, 1};
  a.Add(Value::Double(1), 1.0, w);
  TrialAccumulatorSet b = a.Clone();
  b.Add(Value::Double(2), 1.0, w);
  EXPECT_DOUBLE_EQ(a.MainResult(1.0).AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(b.MainResult(1.0).AsDouble(), 3.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.MainResult(1.0).AsDouble(), 4.0);
  EXPECT_GT(a.ByteSize(), 0u);
}

// ------------------------------------------------------ ErrorEstimate

TEST(ErrorEstimateTest, DegenerateWithFewTrials) {
  const ErrorEstimate est = EstimateError(5.0, {});
  EXPECT_DOUBLE_EQ(est.value, 5.0);
  EXPECT_DOUBLE_EQ(est.stddev, 0.0);
  EXPECT_DOUBLE_EQ(est.ci_lo, 5.0);
  EXPECT_DOUBLE_EQ(est.ci_hi, 5.0);
}

TEST(ErrorEstimateTest, StddevAndCi) {
  std::vector<double> trials;
  for (int i = 0; i < 101; ++i) trials.push_back(90.0 + 0.2 * i);  // 90..110
  const ErrorEstimate est = EstimateError(100.0, trials);
  EXPECT_NEAR(est.stddev, 5.87, 0.1);
  EXPECT_NEAR(est.rel_stddev, 0.0587, 0.001);
  EXPECT_NEAR(est.ci_lo, 90.5, 0.2);   // 2.5th percentile
  EXPECT_NEAR(est.ci_hi, 109.5, 0.2);  // 97.5th percentile
  EXPECT_FALSE(est.ToString().empty());
}

TEST(ErrorEstimateTest, RelStddevOfZeroValue) {
  const ErrorEstimate est = EstimateError(0.0, {-1.0, 1.0});
  EXPECT_GT(est.stddev, 0.0);
  EXPECT_DOUBLE_EQ(est.rel_stddev, est.stddev);
}

TEST(ErrorEstimateTest, AnalyticEstimate) {
  const ErrorEstimate est = AnalyticEstimate(100.0, 400.0, 100.0);
  EXPECT_NEAR(est.stddev, 2.0, 1e-9);
  EXPECT_NEAR(est.ci_lo, 100 - 3.92, 0.01);
  EXPECT_NEAR(est.ci_hi, 100 + 3.92, 0.01);
  // Degenerate inputs.
  EXPECT_DOUBLE_EQ(AnalyticEstimate(5, -1, 10).stddev, 0.0);
  EXPECT_DOUBLE_EQ(AnalyticEstimate(5, 4, 1).stddev, 0.0);
}

// -------------------------------------------------- VariationRangeTracker

TEST(VariationRangeTest, UnboundedBeforeFirstUpdate) {
  VariationRangeTracker tracker(2.0);
  EXPECT_TRUE(tracker.current().IsUnbounded());
}

TEST(VariationRangeTest, FirstUpdateSetsPaddedEnvelope) {
  VariationRangeTracker tracker(2.0);
  ASSERT_TRUE(tracker.Update(10.0, {8.0, 10.0, 12.0}).ok);
  const Interval r = tracker.current();
  const double sd = 2.0;  // stddev of {8,10,12}
  EXPECT_NEAR(r.lo, 8.0 - 2.0 * sd, 1e-9);
  EXPECT_NEAR(r.hi, 12.0 + 2.0 * sd, 1e-9);
}

TEST(VariationRangeTest, UnconstrainedValuesNeverFail) {
  VariationRangeTracker tracker(2.0);
  ASSERT_TRUE(tracker.Update(10.0, {9, 10, 11}).ok);
  // Wild excursions are fine while nothing depends on the range.
  ASSERT_TRUE(tracker.Update(1000.0, {900, 1000, 1100}).ok);
  ASSERT_TRUE(tracker.Update(-50.0, {-60, -50, -40}).ok);
  EXPECT_EQ(tracker.num_batches(), 3);
}

TEST(VariationRangeTest, ConstraintViolationFails) {
  VariationRangeTracker tracker(2.0);
  ASSERT_TRUE(tracker.Update(10.0, {9, 10, 11}).ok);
  tracker.ConstrainUpper(20.0);  // a pruning decision needs v <= 20
  ASSERT_TRUE(tracker.Update(12.0, {11, 12, 13}).ok);
  const auto result = tracker.Update(25.0, {24, 25, 26});
  EXPECT_FALSE(result.ok);
}

TEST(VariationRangeTest, LowerConstraint) {
  VariationRangeTracker tracker(1.0);
  ASSERT_TRUE(tracker.Update(100.0, {95, 100, 105}).ok);
  tracker.ConstrainLower(50.0);
  ASSERT_TRUE(tracker.Update(80.0, {75, 80, 85}).ok);
  EXPECT_FALSE(tracker.Update(40.0, {35, 40, 45}).ok);
}

TEST(VariationRangeTest, DecayingValueWithUpperConstraintOnlyIsFine) {
  // The q18 scenario: a scaled per-group SUM decays towards its true value
  // after the group is fully seen. A decided-false comparison only bounds
  // it from above, so the decay never violates anything.
  VariationRangeTracker tracker(2.0);
  double value = 100.0;
  ASSERT_TRUE(tracker.Update(value, {80, 100, 120}).ok);
  tracker.ConstrainUpper(200.0);
  for (int b = 1; b <= 20; ++b) {
    value *= 0.9;
    ASSERT_TRUE(
        tracker.Update(value, {value * 0.8, value, value * 1.2}).ok)
        << "batch " << b;
  }
}

TEST(VariationRangeTest, FailureReportsLastConsistentBatch) {
  VariationRangeTracker tracker(0.0);
  ASSERT_TRUE(tracker.Update(10, {10}).ok);      // batch 0: no constraints
  tracker.ConstrainUpper(100.0);                 // loose constraint
  ASSERT_TRUE(tracker.Update(11, {11}).ok);      // batch 1
  tracker.ConstrainUpper(15.0);                  // tight constraint
  ASSERT_TRUE(tracker.Update(12, {12}).ok);      // batch 2
  const auto result = tracker.Update(50, {50});  // violates <=15 and <=100...
  ASSERT_FALSE(result.ok);
  // 50 violates both constraints; only batch 0 (unconstrained) contains it.
  EXPECT_EQ(result.last_consistent_batch, 0);
}

TEST(VariationRangeTest, FailureWalksToLooserConstraint) {
  // Engine call order: the block publishes batch b (Update), then
  // downstream classifications of batch b register their constraints —
  // so a constraint belongs to the snapshot of the batch whose decisions
  // created it, and rolling back to the previous batch undoes it.
  VariationRangeTracker tracker(0.0);
  ASSERT_TRUE(tracker.Update(10, {10}).ok);  // batch 0 published
  tracker.ConstrainUpper(100.0);             // decision during batch 0
  ASSERT_TRUE(tracker.Update(11, {11}).ok);  // batch 1 published
  tracker.ConstrainUpper(15.0);              // decision during batch 1
  ASSERT_TRUE(tracker.Update(12, {12}).ok);  // batch 2
  const auto result = tracker.Update(30, {30});
  ASSERT_FALSE(result.ok);
  // 30 violates the batch-1 decision (<=15) but honours batch 0 (<=100):
  // recovery lands on batch 0, undoing the batch-1 decision.
  EXPECT_EQ(result.last_consistent_batch, 0);
}

TEST(VariationRangeTest, RecoverRestoresConstraintsAndFreezes) {
  VariationRangeTracker tracker(2.0);
  ASSERT_TRUE(tracker.Update(10, {9, 10, 11}).ok);
  ASSERT_TRUE(tracker.Update(10, {9, 10, 11}).ok);
  tracker.ConstrainUpper(12.0);
  ASSERT_FALSE(tracker.Update(20, {19, 20, 21}).ok);
  tracker.RecoverTo(0, /*freeze_updates=*/2);
  EXPECT_EQ(tracker.num_batches(), 1);
  // During the freeze the classification range is just the recovered
  // constraints — unbounded below here.
  EXPECT_TRUE(std::isinf(tracker.current().lo));
  // Replay: updates within the frozen window append without narrowing.
  ASSERT_TRUE(tracker.Update(20, {19, 20, 21}).ok);
  EXPECT_TRUE(std::isinf(tracker.current().lo));
  ASSERT_TRUE(tracker.Update(20, {19, 20, 21}).ok);
  // Freeze expired: the padded envelope returns.
  ASSERT_TRUE(tracker.Update(20, {19, 20, 21}).ok);
  EXPECT_FALSE(std::isinf(tracker.current().lo));
}

TEST(VariationRangeTest, RecoverToScratch) {
  VariationRangeTracker tracker(2.0);
  tracker.ConstrainUpper(5.0);
  ASSERT_TRUE(tracker.Update(4, {4}).ok);
  tracker.RecoverTo(-1, 0);
  EXPECT_EQ(tracker.num_batches(), 0);
  EXPECT_TRUE(tracker.current().IsUnbounded());
  // Constraints were cleared: large values pass again.
  EXPECT_TRUE(tracker.Update(100, {100}).ok);
}

TEST(VariationRangeTest, CurrentIntersectsConstraints) {
  VariationRangeTracker tracker(2.0);
  ASSERT_TRUE(tracker.Update(10.0, {8, 10, 12}).ok);
  tracker.ConstrainUpper(11.0);
  const Interval r = tracker.current();
  EXPECT_DOUBLE_EQ(r.hi, 11.0);
}

TEST(VariationRangeTest, ZeroSlackIsBareEnvelope) {
  VariationRangeTracker tracker(0.0);
  ASSERT_TRUE(tracker.Update(10.0, {8, 10, 12}).ok);
  EXPECT_DOUBLE_EQ(tracker.current().lo, 8.0);
  EXPECT_DOUBLE_EQ(tracker.current().hi, 12.0);
}

}  // namespace
}  // namespace iolap
