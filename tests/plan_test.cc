// Unit tests for the plan builder, plan validation, lineage-block lineage
// computation and the §4.1 uncertainty propagation analysis.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "plan/lineage_blocks.h"
#include "plan/plan_builder.h"
#include "plan/uncertainty_analysis.h"

namespace iolap {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  PlanTest() : functions_(FunctionRegistry::Default()) {
    // Streamed fact table: the paper's Sessions log.
    Table sessions(Schema({{"session_id", ValueType::kInt64},
                           {"buffer_time", ValueType::kDouble},
                           {"play_time", ValueType::kDouble},
                           {"site", ValueType::kInt64}}));
    sessions.AddRow({Value::Int64(1), Value::Double(36), Value::Double(238),
                     Value::Int64(0)});
    EXPECT_TRUE(catalog_.RegisterTable("sessions", std::move(sessions),
                                       /*streamed=*/true)
                    .ok());
    // Static dimension table.
    Table sites(
        Schema({{"site", ValueType::kInt64}, {"region", ValueType::kString}}));
    sites.AddRow({Value::Int64(0), Value::String("us")});
    EXPECT_TRUE(catalog_.RegisterTable("sites", std::move(sites)).ok());
  }

  // The SBI query (paper Example 1) as a two-block plan.
  Result<QueryPlan> BuildSbi() {
    PlanBuilder pb(&catalog_, functions_);
    auto& inner = pb.NewBlock("inner_avg");
    inner.Scan("sessions").Agg("avg", inner.ColRef("buffer_time"), "avg_bt");
    auto& outer = pb.NewBlock("sbi");
    outer.Scan("sessions")
        .Filter(Gt(outer.ColRef("buffer_time"),
                   outer.SubqueryRef(inner.id(), "avg_bt")))
        .Agg("avg", outer.ColRef("play_time"), "avg_play");
    return pb.Build();
  }

  Catalog catalog_;
  std::shared_ptr<FunctionRegistry> functions_;
};

TEST_F(PlanTest, SbiBuilds) {
  auto plan = BuildSbi();
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->blocks.size(), 2u);
  EXPECT_EQ(plan->streamed_table, "sessions");
  EXPECT_EQ(plan->top().output_schema.num_columns(), 1u);
  EXPECT_EQ(plan->top().output_schema.column(0).name, "avg_play");
  EXPECT_NE(plan->ToString().find("inner_avg"), std::string::npos);
}

TEST_F(PlanTest, UnknownTableFailsAtBuild) {
  PlanBuilder pb(&catalog_, functions_);
  auto& b = pb.NewBlock("bad");
  b.Scan("nonexistent").Agg("count", Lit(int64_t{1}), "c");
  EXPECT_EQ(pb.Build().status().code(), StatusCode::kNotFound);
}

TEST_F(PlanTest, UnknownColumnFailsAtBuild) {
  PlanBuilder pb(&catalog_, functions_);
  auto& b = pb.NewBlock("bad");
  b.Scan("sessions").Agg("avg", b.ColRef("no_such_col"), "x");
  EXPECT_FALSE(pb.Build().ok());
}

TEST_F(PlanTest, UnknownAggregateFailsAtBuild) {
  PlanBuilder pb(&catalog_, functions_);
  auto& b = pb.NewBlock("bad");
  b.Scan("sessions").Agg("median", b.ColRef("play_time"), "x");
  EXPECT_EQ(pb.Build().status().code(), StatusCode::kNotFound);
}

TEST_F(PlanTest, JoinWithDimension) {
  PlanBuilder pb(&catalog_, functions_);
  auto& b = pb.NewBlock("joined");
  b.Scan("sessions")
      .Join("sites", {"site"}, {"site"})
      .GroupBy("region")
      .Agg("avg", b.ColRef("play_time"), "avg_play");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->blocks[0].spj_schema.num_columns(), 6u);
  EXPECT_EQ(plan->blocks[0].inputs[1].prefix_key_cols, std::vector<int>{3});
  EXPECT_EQ(plan->blocks[0].inputs[1].input_key_cols, std::vector<int>{0});
}

TEST_F(PlanTest, KeyedSubqueryRef) {
  // Correlated shape (TPC-H Q17): per-site average compared per row.
  PlanBuilder pb(&catalog_, functions_);
  auto& inner = pb.NewBlock("per_site_avg");
  inner.Scan("sessions")
      .GroupBy("site")
      .Agg("avg", inner.ColRef("buffer_time"), "site_avg");
  auto& outer = pb.NewBlock("outer");
  outer.Scan("sessions")
      .Filter(Gt(outer.ColRef("buffer_time"),
                 outer.SubqueryRef(inner.id(), "site_avg",
                                   {outer.ColRef("site")})))
      .Agg("count", Lit(int64_t{1}), "n");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok()) << plan.status();
}

TEST_F(PlanTest, SubqueryRefKeyArityMismatch) {
  PlanBuilder pb(&catalog_, functions_);
  auto& inner = pb.NewBlock("per_site_avg");
  inner.Scan("sessions")
      .GroupBy("site")
      .Agg("avg", inner.ColRef("buffer_time"), "site_avg");
  auto& outer = pb.NewBlock("outer");
  outer.Scan("sessions")
      .Filter(Gt(outer.ColRef("buffer_time"),
                 outer.SubqueryRef(inner.id(), "site_avg")))  // missing key
      .Agg("count", Lit(int64_t{1}), "n");
  EXPECT_FALSE(pb.Build().ok());
}

TEST_F(PlanTest, MinOverStreamedRejected) {
  PlanBuilder pb(&catalog_, functions_);
  auto& b = pb.NewBlock("bad");
  b.Scan("sessions").Agg("min", b.ColRef("play_time"), "m");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok());  // structurally fine
  // ... but the uncertainty analysis rejects non-smooth sampling (§3.3).
  EXPECT_EQ(AnalyzeUncertainty(*plan).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, MinOverStaticAllowed) {
  PlanBuilder pb(&catalog_, functions_);
  auto& b = pb.NewBlock("static_min");
  b.Scan("sites").Agg("min", b.ColRef("site"), "m");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(AnalyzeUncertainty(*plan).ok());
}

TEST_F(PlanTest, JoinBlockOutput) {
  // Join the per-site aggregate relation back to the fact table (the
  // paper's Figure 2(a) shape with an explicit join).
  PlanBuilder pb(&catalog_, functions_);
  auto& inner = pb.NewBlock("per_site_avg");
  inner.Scan("sessions")
      .GroupBy("site")
      .Agg("avg", inner.ColRef("buffer_time"), "site_avg");
  auto& outer = pb.NewBlock("outer");
  outer.Scan("sessions")
      .JoinBlock(inner.id(), {"site"}, {"site"})
      .Filter(Gt(outer.ColRef("buffer_time"), outer.ColRef("site_avg")))
      .Agg("avg", outer.ColRef("play_time"), "avg_play");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok()) << plan.status();

  // Lineage: the joined-in site_avg column carries an AggLookup keyed by
  // the input's own group-key column.
  const Block& top = plan->top();
  auto lineage = ComputeSpjLineage(*plan, top);
  ASSERT_EQ(lineage.size(), 6u);  // 4 fact cols + (site, site_avg)
  EXPECT_EQ(lineage[0], nullptr);
  EXPECT_EQ(lineage[4], nullptr);  // group key: deterministic
  ASSERT_NE(lineage[5], nullptr);  // site_avg: uncertain
  std::vector<const AggLookupExpr*> lookups;
  lineage[5]->CollectAggLookups(&lookups);
  ASSERT_EQ(lookups.size(), 1u);
  EXPECT_EQ(lookups[0]->block_id(), inner.id());
  EXPECT_EQ(lookups[0]->key_exprs().size(), 1u);
}

// --------------------------------------------- uncertainty propagation

TEST_F(PlanTest, SbiAnnotationsMatchPaperFigure3) {
  auto plan = BuildSbi();
  ASSERT_TRUE(plan.ok());
  auto ann = AnalyzeUncertainty(*plan);
  ASSERT_TRUE(ann.ok()) << ann.status();

  // Inner block: streamed scan, deterministic attributes, no filter; its
  // aggregate output attribute is uncertain (Fig. 3(b)).
  const BlockAnnotations& inner = (*ann)[0];
  EXPECT_TRUE(inner.dynamic);
  EXPECT_FALSE(inner.filter_uncertain);
  EXPECT_FALSE(inner.spj_attr_uncertain[0]);
  ASSERT_EQ(inner.output_attr_uncertain.size(), 1u);
  EXPECT_TRUE(inner.output_attr_uncertain[0]);
  EXPECT_FALSE(inner.output_tuple_uncertain);
  EXPECT_FALSE(inner.depends_on_uncertain);

  // Outer block: the filter reads the uncertain aggregate, so its
  // decisions are uncertain (Fig. 3(d)); the output aggregate is
  // uncertain both in attribute and in tuple membership (Fig. 3(e)).
  const BlockAnnotations& outer = (*ann)[1];
  EXPECT_TRUE(outer.filter_uncertain);
  EXPECT_TRUE(outer.depends_on_uncertain);
  EXPECT_TRUE(outer.output_attr_uncertain[0]);
  EXPECT_TRUE(outer.output_tuple_uncertain);
}

TEST_F(PlanTest, SimpleSpjaHasNoUncertaintyDependence) {
  PlanBuilder pb(&catalog_, functions_);
  auto& b = pb.NewBlock("simple");
  b.Scan("sessions")
      .Filter(Gt(b.ColRef("buffer_time"), Lit(10.0)))
      .Agg("sum", b.ColRef("play_time"), "total");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok());
  auto ann = AnalyzeUncertainty(*plan);
  ASSERT_TRUE(ann.ok());
  EXPECT_FALSE((*ann)[0].filter_uncertain);
  EXPECT_FALSE((*ann)[0].depends_on_uncertain);
  EXPECT_TRUE((*ann)[0].dynamic);
}

TEST_F(PlanTest, StaticQueryIsNotDynamic) {
  PlanBuilder pb(&catalog_, functions_);
  auto& b = pb.NewBlock("static");
  b.Scan("sites").Agg("count", Lit(int64_t{1}), "n");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok());
  auto ann = AnalyzeUncertainty(*plan);
  ASSERT_TRUE(ann.ok());
  EXPECT_FALSE((*ann)[0].dynamic);
  EXPECT_FALSE((*ann)[0].output_attr_uncertain[0]);
}

TEST_F(PlanTest, UncertainFilterFeedingJoinRejected) {
  // A block with an uncertain (HAVING-style) filter must not feed a
  // *multi-input* join: its group membership can regress, which the
  // append-only join caches cannot express.
  PlanBuilder pb(&catalog_, functions_);
  auto& global_avg = pb.NewBlock("global_avg");
  global_avg.Scan("sessions")
      .Agg("avg", global_avg.ColRef("buffer_time"), "g");
  auto& per_site = pb.NewBlock("per_site");
  per_site.Scan("sessions")
      .Filter(Gt(per_site.ColRef("buffer_time"),
                 per_site.SubqueryRef(global_avg.id(), "g")))
      .GroupBy("site")
      .Agg("count", Lit(int64_t{1}), "n");
  auto& top = pb.NewBlock("top");
  top.Scan("sessions")
      .JoinBlock(per_site.id(), {"site"}, {"site"})
      .Agg("sum", top.ColRef("n"), "total");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(AnalyzeUncertainty(*plan).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, UncertainFilterFeedingSnapshotConsumerAccepted) {
  // The same producer feeding a single-input (snapshot) consumer is fine:
  // snapshot consumers re-evaluate the producer's full output per batch.
  PlanBuilder pb(&catalog_, functions_);
  auto& global_avg = pb.NewBlock("global_avg");
  global_avg.Scan("sessions")
      .Agg("avg", global_avg.ColRef("buffer_time"), "g");
  auto& per_site = pb.NewBlock("per_site");
  per_site.Scan("sessions")
      .Filter(Gt(per_site.ColRef("buffer_time"),
                 per_site.SubqueryRef(global_avg.id(), "g")))
      .GroupBy("site")
      .Agg("count", Lit(int64_t{1}), "n");
  auto& top = pb.NewBlock("top");
  top.ScanBlock(per_site.id()).Agg("sum", top.ColRef("n"), "total");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(AnalyzeUncertainty(*plan).ok());
}

TEST_F(PlanTest, UncertainFilterScalarLookupRejected) {
  // A scalar lookup into an uncertain-membership block would read stale
  // entries when the membership regresses.
  PlanBuilder pb(&catalog_, functions_);
  auto& global_avg = pb.NewBlock("global_avg");
  global_avg.Scan("sessions")
      .Agg("avg", global_avg.ColRef("buffer_time"), "g");
  auto& filtered = pb.NewBlock("filtered_total");
  filtered.Scan("sessions")
      .Filter(Gt(filtered.ColRef("buffer_time"),
                 filtered.SubqueryRef(global_avg.id(), "g")))
      .Agg("sum", filtered.ColRef("play_time"), "s");
  auto& top = pb.NewBlock("top");
  top.Scan("sessions")
      .Filter(Gt(top.ColRef("play_time"),
                 top.SubqueryRef(filtered.id(), "s")))
      .Agg("count", Lit(int64_t{1}), "n");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(AnalyzeUncertainty(*plan).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, AggregatingUncertainAttributeIsFlagged) {
  PlanBuilder pb(&catalog_, functions_);
  auto& inner = pb.NewBlock("global_avg");
  inner.Scan("sessions").Agg("avg", inner.ColRef("buffer_time"), "g");
  auto& outer = pb.NewBlock("dev");
  outer.Scan("sessions").Agg(
      "avg",
      Sub(outer.ColRef("buffer_time"), outer.SubqueryRef(inner.id(), "g")),
      "mean_dev");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto ann = AnalyzeUncertainty(*plan);
  ASSERT_TRUE(ann.ok()) << ann.status();
  ASSERT_EQ((*ann)[1].agg_arg_uncertain.size(), 1u);
  EXPECT_TRUE((*ann)[1].agg_arg_uncertain[0]);
  EXPECT_FALSE((*ann)[1].filter_uncertain);
}

TEST_F(PlanTest, TwoStreamedTablesRejected) {
  Catalog catalog;
  Table a(Schema({{"x", ValueType::kInt64}}));
  a.AddRow({Value::Int64(1)});
  Table b(Schema({{"y", ValueType::kInt64}}));
  b.AddRow({Value::Int64(1)});
  ASSERT_TRUE(catalog.RegisterTable("a", std::move(a), true).ok());
  ASSERT_TRUE(catalog.RegisterTable("b", std::move(b), true).ok());
  PlanBuilder pb(&catalog, functions_);
  auto& blk = pb.NewBlock("two_streams");
  blk.Scan("a").Join("b", {}, {}).Agg("count", Lit(int64_t{1}), "n");
  EXPECT_EQ(pb.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PlanTest, PureSpjOnlyAtTop) {
  PlanBuilder pb(&catalog_, functions_);
  auto& b1 = pb.NewBlock("spj_inner");
  b1.Scan("sessions").Project(b1.ColRef("play_time"), "p");
  auto& b2 = pb.NewBlock("top");
  b2.Scan("sessions").Agg("count", Lit(int64_t{1}), "n");
  EXPECT_FALSE(pb.Build().ok());
}

}  // namespace
}  // namespace iolap
