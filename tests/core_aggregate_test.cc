// Unit tests for aggregate accumulators, scaling, merging and UDAFs.

#include <gtest/gtest.h>

#include <cmath>

#include "core/aggregate.h"
#include "core/function_registry.h"

namespace iolap {
namespace {

std::unique_ptr<AggAccumulator> NewAcc(AggKind kind) {
  return MakeBuiltinAggFunction(kind)->NewAccumulator();
}

TEST(AggregateTest, CountScalesWithMultiplicity) {
  auto acc = NewAcc(AggKind::kCount);
  acc->Add(Value::Int64(1), 1.0);
  acc->Add(Value::Int64(2), 2.0);  // weight 2 = seen "twice"
  EXPECT_DOUBLE_EQ(acc->Result(1.0).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(acc->Result(10.0).AsDouble(), 30.0);
}

TEST(AggregateTest, CountIgnoresNull) {
  auto acc = NewAcc(AggKind::kCount);
  acc->Add(Value::Null(), 1.0);
  acc->Add(Value::Int64(5), 1.0);
  EXPECT_DOUBLE_EQ(acc->Result(1.0).AsDouble(), 1.0);
}

TEST(AggregateTest, SumScalesAvgDoesNot) {
  auto sum = NewAcc(AggKind::kSum);
  auto avg = NewAcc(AggKind::kAvg);
  for (int x : {10, 20, 30}) {
    sum->Add(Value::Int64(x), 1.0);
    avg->Add(Value::Int64(x), 1.0);
  }
  EXPECT_DOUBLE_EQ(sum->Result(2.0).AsDouble(), 120.0);
  EXPECT_DOUBLE_EQ(avg->Result(2.0).AsDouble(), 20.0);  // ratio: scale cancels
}

TEST(AggregateTest, EmptySumAndAvgAreNull) {
  EXPECT_TRUE(NewAcc(AggKind::kSum)->Result(1.0).is_null());
  EXPECT_TRUE(NewAcc(AggKind::kAvg)->Result(1.0).is_null());
  EXPECT_DOUBLE_EQ(NewAcc(AggKind::kCount)->Result(1.0).AsDouble(), 0.0);
}

TEST(AggregateTest, MinMax) {
  auto mn = NewAcc(AggKind::kMin);
  auto mx = NewAcc(AggKind::kMax);
  for (int x : {5, -3, 9}) {
    mn->Add(Value::Int64(x), 1.0);
    mx->Add(Value::Int64(x), 1.0);
  }
  EXPECT_EQ(mn->Result(1.0).int64(), -3);
  EXPECT_EQ(mx->Result(1.0).int64(), 9);
}

TEST(AggregateTest, MinMaxNotSampleable) {
  EXPECT_FALSE(MakeBuiltinAggFunction(AggKind::kMin)->SupportsSampling());
  EXPECT_FALSE(MakeBuiltinAggFunction(AggKind::kMax)->SupportsSampling());
  EXPECT_TRUE(MakeBuiltinAggFunction(AggKind::kAvg)->SupportsSampling());
}

TEST(AggregateTest, VarianceAndStddev) {
  auto var = NewAcc(AggKind::kVar);
  auto sd = NewAcc(AggKind::kStddev);
  for (int x : {2, 4, 4, 4, 5, 5, 7, 9}) {
    var->Add(Value::Int64(x), 1.0);
    sd->Add(Value::Int64(x), 1.0);
  }
  EXPECT_NEAR(var->Result(1.0).AsDouble(), 4.0, 1e-9);
  EXPECT_NEAR(sd->Result(1.0).AsDouble(), 2.0, 1e-9);
}

TEST(AggregateTest, MergeEqualsSequential) {
  auto a = NewAcc(AggKind::kAvg);
  auto b = NewAcc(AggKind::kAvg);
  auto whole = NewAcc(AggKind::kAvg);
  for (int x = 0; x < 10; ++x) {
    (x % 2 == 0 ? a : b)->Add(Value::Int64(x), 1.0);
    whole->Add(Value::Int64(x), 1.0);
  }
  a->Merge(*b);
  EXPECT_DOUBLE_EQ(a->Result(1.0).AsDouble(), whole->Result(1.0).AsDouble());
}

TEST(AggregateTest, CloneIsIndependent) {
  auto acc = NewAcc(AggKind::kSum);
  acc->Add(Value::Int64(10), 1.0);
  auto copy = acc->Clone();
  copy->Add(Value::Int64(5), 1.0);
  EXPECT_DOUBLE_EQ(acc->Result(1.0).AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(copy->Result(1.0).AsDouble(), 15.0);
}

TEST(AggregateTest, ByteSizeIsSmall) {
  // Sketch states must be sub-linear: a handful of doubles.
  EXPECT_LE(NewAcc(AggKind::kAvg)->ByteSize(), 64u);
  EXPECT_LE(NewAcc(AggKind::kVar)->ByteSize(), 64u);
}

TEST(AggregateTest, KindFromName) {
  EXPECT_EQ(AggKindFromName("sum"), AggKind::kSum);
  EXPECT_EQ(AggKindFromName("stddev"), AggKind::kStddev);
  EXPECT_EQ(AggKindFromName("geomean"), AggKind::kUdaf);
}

class UdafTest : public ::testing::Test {
 protected:
  UdafTest() : registry_(FunctionRegistry::Default()) {}

  std::unique_ptr<AggAccumulator> NewUdaf(const std::string& name) {
    auto fn = registry_->FindAggregate(name);
    EXPECT_TRUE(fn.ok()) << name;
    return (*fn)->NewAccumulator();
  }

  std::shared_ptr<FunctionRegistry> registry_;
};

TEST_F(UdafTest, Geomean) {
  auto acc = NewUdaf("geomean");
  acc->Add(Value::Double(2.0), 1.0);
  acc->Add(Value::Double(8.0), 1.0);
  EXPECT_NEAR(acc->Result(1.0).AsDouble(), 4.0, 1e-9);
  // Non-positive values are skipped, not poisoned.
  acc->Add(Value::Double(-1.0), 1.0);
  EXPECT_NEAR(acc->Result(1.0).AsDouble(), 4.0, 1e-9);
}

TEST_F(UdafTest, HarmonicMean) {
  auto acc = NewUdaf("harmonic_mean");
  acc->Add(Value::Double(1.0), 1.0);
  acc->Add(Value::Double(2.0), 1.0);
  EXPECT_NEAR(acc->Result(1.0).AsDouble(), 4.0 / 3.0, 1e-9);
}

TEST_F(UdafTest, Rms) {
  auto acc = NewUdaf("rms");
  acc->Add(Value::Double(3.0), 1.0);
  acc->Add(Value::Double(4.0), 1.0);
  EXPECT_NEAR(acc->Result(1.0).AsDouble(), std::sqrt(12.5), 1e-9);
}

TEST_F(UdafTest, UdafsAreSmooth) {
  for (const char* name : {"geomean", "harmonic_mean", "rms"}) {
    auto fn = registry_->FindAggregate(name);
    ASSERT_TRUE(fn.ok());
    EXPECT_TRUE((*fn)->SupportsSampling()) << name;
  }
}

TEST_F(UdafTest, UdafMergeAndClone) {
  auto a = NewUdaf("rms");
  a->Add(Value::Double(3.0), 1.0);
  auto b = NewUdaf("rms");
  b->Add(Value::Double(4.0), 1.0);
  auto c = a->Clone();
  c->Merge(*b);
  EXPECT_NEAR(c->Result(1.0).AsDouble(), std::sqrt(12.5), 1e-9);
  EXPECT_NEAR(a->Result(1.0).AsDouble(), 3.0, 1e-9);  // a untouched
}

TEST_F(UdafTest, WeightedUdaf) {
  // A bootstrap trial weighting of 2 must equal adding the value twice.
  auto weighted = NewUdaf("geomean");
  weighted->Add(Value::Double(2.0), 2.0);
  weighted->Add(Value::Double(8.0), 1.0);
  auto repeated = NewUdaf("geomean");
  repeated->Add(Value::Double(2.0), 1.0);
  repeated->Add(Value::Double(2.0), 1.0);
  repeated->Add(Value::Double(8.0), 1.0);
  EXPECT_NEAR(weighted->Result(1.0).AsDouble(),
              repeated->Result(1.0).AsDouble(), 1e-9);
}

}  // namespace
}  // namespace iolap
