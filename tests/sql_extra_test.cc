// Additional SQL coverage: JOIN..ON end-to-end, multi-key grouping,
// NOT / <> / nested parentheses, expression group keys through the
// two-layer form, self joins with aliases, and binder diagnostics.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "exec/reference.h"
#include "iolap/session.h"
#include "sql/binder.h"

namespace iolap {
namespace {

class SqlExtraTest : public ::testing::Test {
 protected:
  SqlExtraTest() : functions_(FunctionRegistry::Default()) {
    Rng rng(21);
    Table orders(Schema({{"order_id", ValueType::kInt64},
                         {"cust", ValueType::kInt64},
                         {"amount", ValueType::kDouble},
                         {"priority", ValueType::kInt64},
                         {"channel", ValueType::kString}}));
    const char* channels[] = {"web", "store", "phone"};
    for (int i = 0; i < 500; ++i) {
      orders.AddRow({Value::Int64(i),
                     Value::Int64(static_cast<int64_t>(rng.NextBounded(40))),
                     Value::Double(rng.NextDouble() * 500),
                     Value::Int64(static_cast<int64_t>(rng.NextBounded(3))),
                     Value::String(channels[rng.NextBounded(3)])});
    }
    EXPECT_TRUE(
        catalog_.RegisterTable("orders", std::move(orders), true).ok());

    Table customers(Schema({{"cust", ValueType::kInt64},
                            {"tier", ValueType::kString}}));
    for (int c = 0; c < 40; ++c) {
      customers.AddRow(
          {Value::Int64(c), Value::String(c % 3 == 0 ? "gold" : "basic")});
    }
    EXPECT_TRUE(catalog_.RegisterTable("customers", std::move(customers)).ok());
  }

  void CheckSql(const std::string& sql) {
    SCOPED_TRACE(sql);
    auto plan = BindSql(sql, catalog_, functions_);
    ASSERT_TRUE(plan.ok()) << plan.status();
    EngineOptions options;
    options.num_batches = 5;
    options.num_trials = 6;
    options.seed = 2;
    Session session(&catalog_, options, functions_);
    auto query = session.Sql(sql);
    ASSERT_TRUE(query.ok()) << query.status();
    const Table& fact = *(*catalog_.Find("orders"))->table;
    std::vector<Row> accumulated;
    QueryController& controller = (*query)->controller();
    ASSERT_TRUE(
        (*query)
            ->Run([&](const PartialResult& partial) {
              for (uint64_t id :
                   controller.layout().batches[partial.batch]) {
                accumulated.push_back(fact.row(id));
              }
              const double scale = static_cast<double>(fact.num_rows()) /
                                   accumulated.size();
              auto expected =
                  EvaluateReference(*plan, catalog_, accumulated, scale);
              EXPECT_TRUE(expected.ok());
              EXPECT_EQ(partial.rows.num_rows(), expected->num_rows());
              for (size_t r = 0; r < std::min(partial.rows.num_rows(),
                                              expected->num_rows());
                   ++r) {
                for (size_t c = 0; c < partial.rows.row(r).size(); ++c) {
                  const Value& a = partial.rows.row(r)[c];
                  const Value& e = expected->row(r)[c];
                  if (a.is_numeric() && e.is_numeric()) {
                    EXPECT_NEAR(a.AsDouble(), e.AsDouble(),
                                1e-7 * std::max(1.0, std::fabs(e.AsDouble())));
                  } else {
                    EXPECT_TRUE(a.Equals(e));
                  }
                }
              }
              return BatchAction::kContinue;
            })
            .ok());
  }

  Catalog catalog_;
  std::shared_ptr<FunctionRegistry> functions_;
};

TEST_F(SqlExtraTest, ExplicitJoinOnSyntax) {
  CheckSql(
      "SELECT tier, sum(amount) FROM orders JOIN customers ON "
      "orders.cust = customers.cust GROUP BY tier");
}

TEST_F(SqlExtraTest, MultiKeyGroupBy) {
  CheckSql(
      "SELECT channel, priority, avg(amount), count(*) FROM orders "
      "GROUP BY channel, priority");
}

TEST_F(SqlExtraTest, NotAndNotEquals) {
  CheckSql(
      "SELECT count(*) FROM orders WHERE NOT priority = 2 AND "
      "channel <> 'phone'");
}

TEST_F(SqlExtraTest, ParenthesizedOrPredicates) {
  CheckSql(
      "SELECT sum(amount) FROM orders WHERE (priority = 0 OR priority = 2) "
      "AND amount > 50");
}

TEST_F(SqlExtraTest, ArithmeticGroupKeyViaTwoLayerForm) {
  // `priority % 2` as a key is not a bare column: the binder produces the
  // aggregate + post-block pair.
  const std::string sql =
      "SELECT priority % 2 AS parity, sum(amount) FROM orders "
      "GROUP BY priority % 2";
  auto plan = BindSql(sql, catalog_, functions_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  CheckSql(sql);
}

TEST_F(SqlExtraTest, SelfJoinWithAliases) {
  // Orders paired with the per-customer average through a correlated
  // subquery over a self-aliased scan.
  CheckSql(
      "SELECT count(*) FROM orders o WHERE o.amount > "
      "(SELECT 1.5 * avg(o2.amount) FROM orders o2 WHERE o2.cust = o.cust)");
}

TEST_F(SqlExtraTest, SubqueryWithLocalFilter) {
  CheckSql(
      "SELECT avg(amount) FROM orders WHERE amount > "
      "(SELECT avg(amount) FROM orders WHERE channel = 'web')");
}

TEST_F(SqlExtraTest, MixedAliasOrderInSelectList) {
  // Aggregate listed before the group key: forces the post-block path and
  // must preserve the user's column order.
  const std::string sql =
      "SELECT avg(amount) AS a, channel FROM orders GROUP BY channel";
  auto plan = BindSql(sql, catalog_, functions_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->top().output_schema.column(0).name, "a");
  EXPECT_EQ(plan->top().output_schema.column(1).name, "channel");
  CheckSql(sql);
}

TEST_F(SqlExtraTest, BetweenAndInListEndToEnd) {
  CheckSql(
      "SELECT sum(amount) FROM orders WHERE amount BETWEEN 100 AND 300 "
      "AND priority IN (0, 2)");
}

TEST_F(SqlExtraTest, OrderByAndLimitPresentation) {
  EngineOptions options;
  options.num_batches = 4;
  options.num_trials = 4;
  Session session(&catalog_, options, functions_);
  auto query = session.Sql(
      "SELECT channel, sum(amount) AS total FROM orders GROUP BY channel "
      "ORDER BY total DESC LIMIT 2");
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_TRUE((*query)->Run().ok());
  const Table& rows = (*query)->last_result().rows;
  ASSERT_EQ(rows.num_rows(), 2u);
  EXPECT_GE(rows.row(0)[1].AsDouble(), rows.row(1)[1].AsDouble());
  // Estimates follow the reordering: one per emitted row.
  EXPECT_EQ((*query)->last_result().estimates.size(), 2u);

  // ORDER BY with an ordinal.
  auto by_ordinal = session.Sql(
      "SELECT channel, count(*) FROM orders GROUP BY channel ORDER BY 2");
  ASSERT_TRUE(by_ordinal.ok()) << by_ordinal.status();
  ASSERT_TRUE((*by_ordinal)->Run().ok());
  const Table& asc = (*by_ordinal)->last_result().rows;
  for (size_t r = 1; r < asc.num_rows(); ++r) {
    EXPECT_LE(asc.row(r - 1)[1].AsDouble(), asc.row(r)[1].AsDouble());
  }
}

TEST_F(SqlExtraTest, OrderByErrors) {
  Session session(&catalog_, EngineOptions{}, functions_);
  EXPECT_FALSE(session.Sql("SELECT count(*) FROM orders ORDER BY nope").ok());
  EXPECT_FALSE(session.Sql("SELECT count(*) FROM orders ORDER BY 9").ok());
  // ORDER BY inside a subquery is rejected.
  EXPECT_FALSE(session
                   .Sql("SELECT count(*) FROM orders WHERE amount > "
                        "(SELECT avg(amount) FROM orders ORDER BY 1)")
                   .ok());
}

TEST_F(SqlExtraTest, BindErrorDiagnostics) {
  auto err = [&](const std::string& sql) {
    return BindSql(sql, catalog_, functions_).status();
  };
  EXPECT_EQ(err("SELECT count(*) FROM orders o, orders o "
                "WHERE o.cust = o.cust")
                .code(),
            StatusCode::kBindError);  // duplicate alias
  EXPECT_EQ(err("SELECT sum(amount, 2) FROM orders").code(),
            StatusCode::kBindError);  // aggregate arity
  EXPECT_EQ(err("SELECT amount FROM orders GROUP BY channel").code(),
            StatusCode::kBindError);  // non-aggregated bare column
  EXPECT_EQ(err("SELECT * FROM orders").code(),
            StatusCode::kBindError);  // bare star outside count(*)
  // The message of an unresolvable column names the column.
  const Status missing = err("SELECT sum(wrong_col) FROM orders");
  EXPECT_NE(missing.message().find("wrong_col"), std::string::npos);
}

}  // namespace
}  // namespace iolap
