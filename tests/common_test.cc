// Unit tests for src/common: Status/Result, hashing, RNG, thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace iolap {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad batch size");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad batch size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad batch size");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UseReturnIfError(int x) {
  IOLAP_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UseReturnIfError(1).ok());
  EXPECT_EQ(UseReturnIfError(-1).code(), StatusCode::kOutOfRange);
}

Result<int> DoubleIfPositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return 2 * x;
}

Result<int> UseAssignOrReturn(int x) {
  IOLAP_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = UseAssignOrReturn(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);
  EXPECT_FALSE(UseAssignOrReturn(0).ok());
}

TEST(HashTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(HashTest, HashBytesDiffersOnContent) {
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  EXPECT_NE(a.NextUint64(), c.NextUint64());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundZeroAndOneReturnZero) {
  // Regression: NextBounded(0) computed `-0 % 0` (division by zero, UB).
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBounded(0), 0u);
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RngTest, ForLaneIsDeterministicAndDecorrelated) {
  // Same (seed, lane) → identical stream; different lanes → distinct
  // streams; and lane 0 is not the plain Rng(seed) stream (the lane index
  // is mixed into the seed, not appended to it).
  Rng a = Rng::ForLane(7, 0), b = Rng::ForLane(7, 0);
  Rng other_lane = Rng::ForLane(7, 1);
  Rng other_seed = Rng::ForLane(8, 0);
  const uint64_t first = a.NextUint64();
  EXPECT_EQ(first, b.NextUint64());
  EXPECT_NE(first, other_lane.NextUint64());
  EXPECT_NE(first, other_seed.NextUint64());
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(3);
  double sum = 0, sumsq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, PoissonMeanOne) {
  Rng rng(4);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextPoisson(1.0);
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(RngTest, ZipfSkewsTowardSmallRanks) {
  Rng rng(5);
  int low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t z = rng.NextZipf(1000, 1.1);
    EXPECT_LT(z, 1000u);
    if (z < 10) ++low;
    if (z >= 500) ++high;
  }
  EXPECT_GT(low, high);
}

TEST(RngTest, ZipfZeroExponentIsUniformish) {
  Rng rng(6);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.NextZipf(4, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(PoissonOneAtTest, DeterministicPerKey) {
  EXPECT_EQ(PoissonOneAt(1, 2), PoissonOneAt(1, 2));
}

TEST(PoissonOneAtTest, MeanOneAcrossIndices) {
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += PoissonOneAt(42, i);
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(PoissonOneAtTest, VarianceOneAcrossIndices) {
  double sum = 0, sumsq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const int k = PoissonOneAt(43, i);
    sum += k;
    sumsq += static_cast<double>(k) * k;
  }
  const double mean = sum / n;
  EXPECT_NEAR(sumsq / n - mean * mean, 1.0, 0.03);
}

TEST(ThreadPoolTest, InlineWhenZeroThreads) {
  ThreadPool pool(0);
  int counter = 0;
  pool.Submit([&] { ++counter; });
  EXPECT_EQ(counter, 1);  // ran synchronously
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSingleThreadedFallback) {
  ThreadPool pool(0);
  std::vector<int> hits(64, 0);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelRangesCoversRangeWithStableLanes) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1001);
  std::atomic<size_t> max_lane{0};
  pool.ParallelRanges(hits.size(), [&](size_t begin, size_t end, size_t lane) {
    size_t seen = max_lane.load();
    while (lane > seen && !max_lane.compare_exchange_weak(seen, lane)) {
    }
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_LT(max_lane.load(), pool.num_lanes());
}

TEST(ThreadPoolTest, ParallelRangesInlineUsesLaneZero) {
  ThreadPool pool(0);
  ASSERT_EQ(pool.num_lanes(), 1u);
  size_t calls = 0;
  pool.ParallelRanges(64, [&](size_t begin, size_t end, size_t lane) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 64u);
    EXPECT_EQ(lane, 0u);
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstTaskException) {
  // Regression: an exception in a worker used to escape WorkerLoop and
  // std::terminate the process; now it surfaces on the calling thread.
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(100,
                                [&](size_t i) {
                                  if (i == 37) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool is still usable afterwards.
  std::atomic<int> counter{0};
  pool.ParallelFor(10, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, WaitRethrowsSubmitException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("late"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error does not leak into the next Wait() epoch.
  pool.Submit([] {});
  EXPECT_NO_THROW(pool.Wait());
}

TEST(ThreadPoolTest, ConcurrentParallelForCallsAreIndependent) {
  // Regression: ParallelFor used to track completion in the shared
  // in_flight_ counter, so concurrent calls waited on each other's tasks
  // (and could return before their own finished). Each call now has a
  // private latch.
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr size_t kPerCall = 500;
  std::vector<std::atomic<int>> counts(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.ParallelFor(kPerCall, [&, c](size_t) { counts[c].fetch_add(1); });
      // Our own call must be fully drained once ParallelFor returns.
      EXPECT_EQ(counts[c].load(), static_cast<int>(kPerCall));
    });
  }
  for (auto& t : callers) t.join();
}

TEST(TimerTest, CpuTimerAdvancesWithWork) {
  CpuTimer timer;
  volatile double sink = 0;
  // Plain assignment: compound ops on volatile are deprecated in C++20.
  for (int i = 0; i < 200000; ++i) sink = sink + std::sqrt(static_cast<double>(i));
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  timer.Restart();
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(static_cast<double>(i));
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMicros(), 0);
}

}  // namespace
}  // namespace iolap
