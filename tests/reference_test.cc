// Unit tests of the reference evaluator against hand-computed results.
// The reference is the oracle every differential test leans on, so it gets
// its own ground-truth coverage here.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "exec/reference.h"
#include "plan/plan_builder.h"

namespace iolap {
namespace {

class ReferenceTest : public ::testing::Test {
 protected:
  ReferenceTest() : functions_(FunctionRegistry::Default()) {
    // fact: (k, x) — streamed; rows supplied per test via streamed_rows.
    Table fact(Schema({{"k", ValueType::kInt64}, {"x", ValueType::kDouble}}));
    fact.AddRow({Value::Int64(0), Value::Double(0)});  // placeholder row
    EXPECT_TRUE(catalog_.RegisterTable("fact", std::move(fact), true).ok());

    Table dim(Schema({{"k", ValueType::kInt64}, {"w", ValueType::kDouble}}));
    dim.AddRow({Value::Int64(1), Value::Double(10)});
    dim.AddRow({Value::Int64(2), Value::Double(20)});
    EXPECT_TRUE(catalog_.RegisterTable("dim", std::move(dim)).ok());
  }

  static Row F(int64_t k, double x) { return {Value::Int64(k), Value::Double(x)}; }

  Catalog catalog_;
  std::shared_ptr<FunctionRegistry> functions_;
};

TEST_F(ReferenceTest, GlobalAggregatesWithScaling) {
  PlanBuilder pb(&catalog_, functions_);
  auto& b = pb.NewBlock("agg");
  b.Scan("fact")
      .Agg("sum", b.ColRef("x"), "s")
      .Agg("avg", b.ColRef("x"), "a")
      .Agg("count", Lit(int64_t{1}), "n");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok());

  std::vector<Row> rows = {F(1, 10), F(1, 20), F(2, 30)};
  auto result = EvaluateReference(*plan, catalog_, rows, /*scale=*/3.0);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(result->row(0)[0].AsDouble(), 180.0);  // 60 × 3
  EXPECT_DOUBLE_EQ(result->row(0)[1].AsDouble(), 20.0);   // scale-invariant
  EXPECT_DOUBLE_EQ(result->row(0)[2].AsDouble(), 9.0);    // 3 × 3
}

TEST_F(ReferenceTest, GroupByOrderedByKey) {
  PlanBuilder pb(&catalog_, functions_);
  auto& b = pb.NewBlock("grouped");
  b.Scan("fact").GroupBy("k").Agg("sum", b.ColRef("x"), "s");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok());
  std::vector<Row> rows = {F(2, 5), F(1, 1), F(2, 7)};
  auto result = EvaluateReference(*plan, catalog_, rows, 1.0);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->row(0)[0].int64(), 1);
  EXPECT_DOUBLE_EQ(result->row(0)[1].AsDouble(), 1.0);
  EXPECT_EQ(result->row(1)[0].int64(), 2);
  EXPECT_DOUBLE_EQ(result->row(1)[1].AsDouble(), 12.0);
}

TEST_F(ReferenceTest, JoinWithDimension) {
  PlanBuilder pb(&catalog_, functions_);
  auto& b = pb.NewBlock("joined");
  b.Scan("fact")
      .Join("dim", {"k"}, {"k"})
      .Agg("sum", Mul(b.ColRef("x"), b.ColRef("w")), "wx");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok()) << plan.status();
  // k=3 has no dim row: dropped by the natural join.
  std::vector<Row> rows = {F(1, 2), F(2, 3), F(3, 100)};
  auto result = EvaluateReference(*plan, catalog_, rows, 1.0);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(result->row(0)[0].AsDouble(), 2 * 10 + 3 * 20.0);
}

TEST_F(ReferenceTest, NestedSubqueryUsesScaledInner) {
  // outer: sum(x) where x > avg(x); inner avg is scale-invariant, so the
  // threshold is the plain mean of the sample.
  PlanBuilder pb(&catalog_, functions_);
  auto& inner = pb.NewBlock("inner");
  inner.Scan("fact").Agg("avg", inner.ColRef("x"), "a");
  auto& outer = pb.NewBlock("outer");
  outer.Scan("fact")
      .Filter(Gt(outer.ColRef("x"), outer.SubqueryRef(inner.id(), "a")))
      .Agg("sum", outer.ColRef("x"), "s");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok());
  std::vector<Row> rows = {F(1, 10), F(1, 20), F(1, 30)};  // avg 20
  auto result = EvaluateReference(*plan, catalog_, rows, 2.0);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(result->row(0)[0].AsDouble(), 60.0);  // only 30, ×2
}

TEST_F(ReferenceTest, ScaledInnerSumThreshold) {
  // Inner SUM is scaled: with scale 4, sum({1,2,3}) = 24; filter keeps
  // x > 0.1 * 24 = 2.4, i.e. only x = 3.
  PlanBuilder pb(&catalog_, functions_);
  auto& inner = pb.NewBlock("inner");
  inner.Scan("fact").Agg("sum", inner.ColRef("x"), "s");
  auto& outer = pb.NewBlock("outer");
  outer.Scan("fact")
      .Filter(Gt(outer.ColRef("x"),
                 Mul(Lit(0.1), outer.SubqueryRef(inner.id(), "s"))))
      .Agg("count", Lit(int64_t{1}), "n");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok());
  std::vector<Row> rows = {F(1, 1), F(1, 2), F(1, 3)};
  auto result = EvaluateReference(*plan, catalog_, rows, 4.0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->row(0)[0].AsDouble(), 4.0);  // 1 row × scale 4
}

TEST_F(ReferenceTest, CorrelatedSubqueryPerGroup) {
  PlanBuilder pb(&catalog_, functions_);
  auto& inner = pb.NewBlock("per_k");
  inner.Scan("fact").GroupBy("k").Agg("avg", inner.ColRef("x"), "ka");
  auto& outer = pb.NewBlock("outer");
  outer.Scan("fact")
      .Filter(Gt(outer.ColRef("x"),
                 outer.SubqueryRef(inner.id(), "ka", {outer.ColRef("k")})))
      .Agg("count", Lit(int64_t{1}), "n");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok());
  // k=1: avg 15 -> 20 passes; k=2: avg 30 -> nothing above 30.
  std::vector<Row> rows = {F(1, 10), F(1, 20), F(2, 30)};
  auto result = EvaluateReference(*plan, catalog_, rows, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->row(0)[0].AsDouble(), 1.0);
}

TEST_F(ReferenceTest, HavingTopProjection) {
  PlanBuilder pb(&catalog_, functions_);
  auto& grouped = pb.NewBlock("per_k");
  grouped.Scan("fact").GroupBy("k").Agg("sum", grouped.ColRef("x"), "s");
  auto& top = pb.NewBlock("top");
  top.ScanBlock(grouped.id())
      .Filter(Gt(top.ColRef("s"), Lit(10.0)))
      .Project(top.ColRef("k"), "k")
      .Project(Mul(top.ColRef("s"), Lit(2.0)), "s2");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok());
  std::vector<Row> rows = {F(1, 6), F(1, 7), F(2, 4)};  // sums: 13, 4
  auto result = EvaluateReference(*plan, catalog_, rows, 1.0);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->row(0)[0].int64(), 1);
  EXPECT_DOUBLE_EQ(result->row(0)[1].AsDouble(), 26.0);
}

TEST_F(ReferenceTest, EmptyInput) {
  PlanBuilder pb(&catalog_, functions_);
  auto& b = pb.NewBlock("agg");
  b.Scan("fact").GroupBy("k").Agg("sum", b.ColRef("x"), "s");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok());
  auto result = EvaluateReference(*plan, catalog_, {}, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0u);
}

TEST_F(ReferenceTest, NullsSkippedByAggregates) {
  PlanBuilder pb(&catalog_, functions_);
  auto& b = pb.NewBlock("agg");
  b.Scan("fact")
      .Agg("sum", b.ColRef("x"), "s")
      .Agg("count", b.ColRef("x"), "nx");
  auto plan = pb.Build();
  ASSERT_TRUE(plan.ok());
  std::vector<Row> rows = {F(1, 5), {Value::Int64(1), Value::Null()}};
  auto result = EvaluateReference(*plan, catalog_, rows, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->row(0)[0].AsDouble(), 5.0);
  EXPECT_DOUBLE_EQ(result->row(0)[1].AsDouble(), 1.0);  // null not counted
}

}  // namespace
}  // namespace iolap
