// Property-based tests over randomly generated expression trees and data:
//
//  1. Interval soundness: for any expression and any realization of its
//     uncertain aggregates within their ranges, the evaluated value lies
//     inside the expression's evaluated interval.
//  2. Classification soundness: a predicate classified kAlwaysTrue /
//     kAlwaysFalse evaluates accordingly under every in-range realization.
//  3. Constraint soundness: bounds pushed by a decided comparison are
//     satisfied by the realization the decision was made under.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/random.h"
#include "core/expr.h"
#include "core/function_registry.h"

namespace iolap {
namespace {

// A resolver with one scalar uncertain value per block id; realized values
// are switched per "trial" to emulate future realizations within (or
// outside) the range.
class ScenarioResolver : public AggLookupResolver {
 public:
  void Set(int block, double value, Interval range) {
    values_[block] = value;
    ranges_[block] = range;
  }
  void Realize(int block, double value) { values_[block] = value; }
  double value(int block) const { return values_.at(block); }
  Interval range(int block) const { return ranges_.at(block); }
  size_t size() const { return values_.size(); }

  Value Lookup(int block, int, const Row&) const override {
    return Value::Double(values_.at(block));
  }
  Value LookupTrial(int block, int, const Row&, int) const override {
    return Value::Double(values_.at(block));
  }
  Interval LookupRange(int block, int, const Row&) const override {
    return ranges_.at(block);
  }

 private:
  std::map<int, double> values_;
  std::map<int, Interval> ranges_;
};

// Recording sink for constraint-soundness checks.
class RecordingSink : public RangeConstraintSink {
 public:
  struct Bound {
    int block;
    bool upper;
    double bound;
  };
  std::vector<Bound> bounds;
  std::vector<int> containments;

  void RequireUpper(int block, int, const Row&, double bound) override {
    bounds.push_back({block, true, bound});
  }
  void RequireLower(int block, int, const Row&, double bound) override {
    bounds.push_back({block, false, bound});
  }
  void RequireContainment(int block, int, const Row&) override {
    containments.push_back(block);
  }
};

// Builds a random numeric expression over two row columns and up to two
// uncertain lookups.
ExprPtr RandomNumericExpr(Rng* rng, int depth, int* lookups_used) {
  const int kMaxLookups = 2;
  if (depth <= 0) {
    switch (rng->NextBounded(4)) {
      case 0:
        return Lit(static_cast<double>(rng->NextBounded(20)) - 10.0);
      case 1:
        return Col(0, "x", ValueType::kDouble);
      case 2:
        return Col(1, "y", ValueType::kDouble);
      default:
        if (*lookups_used < kMaxLookups) {
          const int block = (*lookups_used)++;
          return std::make_shared<AggLookupExpr>(
              block, 0, std::vector<ExprPtr>{}, ValueType::kDouble,
              "u" + std::to_string(block));
        }
        return Lit(static_cast<double>(rng->NextBounded(5)) + 1.0);
    }
  }
  const ExprPtr left = RandomNumericExpr(rng, depth - 1, lookups_used);
  const ExprPtr right = RandomNumericExpr(rng, depth - 1, lookups_used);
  switch (rng->NextBounded(4)) {
    case 0:
      return Add(left, right);
    case 1:
      return Sub(left, right);
    case 2:
      return Mul(left, right);
    default:
      return Div(left, right);
  }
}

class ExprPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ExprPropertyTest, IntervalContainsEveryRealization) {
  Rng rng(1000 + GetParam() * 97);
  auto functions = FunctionRegistry::Default();

  for (int iteration = 0; iteration < 60; ++iteration) {
    ScenarioResolver resolver;
    // Two uncertain values with random ranges.
    double centers[2];
    for (int b = 0; b < 2; ++b) {
      centers[b] = rng.NextDouble() * 20 - 10;
      const double radius = rng.NextDouble() * 5;
      resolver.Set(b, centers[b],
                   Interval(centers[b] - radius, centers[b] + radius));
    }
    EvalContext ctx;
    ctx.functions = functions.get();
    ctx.resolver = &resolver;

    int lookups_used = 0;
    const ExprPtr expr = RandomNumericExpr(&rng, 3, &lookups_used);
    Row row = {Value::Double(rng.NextDouble() * 10),
               Value::Double(rng.NextDouble() * 10 - 5)};
    const Interval interval = expr->EvalInterval(row, ctx);

    // Realize the uncertain values at several in-range points (including
    // the endpoints) and check containment.
    for (int sample = 0; sample < 8; ++sample) {
      for (int b = 0; b < 2; ++b) {
        const Interval r = resolver.range(b);
        const double t = sample == 0 ? 0.0
                         : sample == 1 ? 1.0
                                       : rng.NextDouble();
        resolver.Realize(b, r.lo + t * (r.hi - r.lo));
      }
      const Value v = expr->Eval(row, ctx);
      if (v.is_null()) continue;  // division by zero: no containment claim
      EXPECT_GE(v.AsDouble(), interval.lo - 1e-9 * (1 + std::fabs(interval.lo)))
          << expr->ToString();
      EXPECT_LE(v.AsDouble(), interval.hi + 1e-9 * (1 + std::fabs(interval.hi)))
          << expr->ToString();
    }
  }
}

TEST_P(ExprPropertyTest, DecidedPredicatesHoldUnderRealizations) {
  Rng rng(5000 + GetParam() * 31);
  auto functions = FunctionRegistry::Default();
  int decided_seen = 0;

  for (int iteration = 0; iteration < 120; ++iteration) {
    ScenarioResolver resolver;
    for (int b = 0; b < 2; ++b) {
      const double center = rng.NextDouble() * 20 - 10;
      const double radius = rng.NextDouble() * 3;
      resolver.Set(b, center, Interval(center - radius, center + radius));
    }
    EvalContext ctx;
    ctx.functions = functions.get();
    ctx.resolver = &resolver;

    int lookups_used = 0;
    const ExprPtr lhs = RandomNumericExpr(&rng, 2, &lookups_used);
    const ExprPtr rhs = RandomNumericExpr(&rng, 2, &lookups_used);
    const Expr::BinaryOp ops[] = {Expr::BinaryOp::kLt, Expr::BinaryOp::kLe,
                                  Expr::BinaryOp::kGt, Expr::BinaryOp::kGe};
    const ExprPtr pred = MakeBinary(ops[rng.NextBounded(4)], lhs, rhs);
    Row row = {Value::Double(rng.NextDouble() * 10),
               Value::Double(rng.NextDouble() * 10 - 5)};

    const IntervalTruth truth = ClassifyPredicate(*pred, row, ctx);
    if (truth == IntervalTruth::kUndecided) continue;
    ++decided_seen;

    for (int sample = 0; sample < 10; ++sample) {
      for (int b = 0; b < 2; ++b) {
        const Interval r = resolver.range(b);
        resolver.Realize(b, r.lo + rng.NextDouble() * (r.hi - r.lo));
      }
      const Value v = pred->Eval(row, ctx);
      if (v.is_null()) continue;
      EXPECT_EQ(v.IsTruthy(), truth == IntervalTruth::kAlwaysTrue)
          << pred->ToString();
    }
  }
  EXPECT_GT(decided_seen, 5);  // the test must actually exercise decisions
}

TEST_P(ExprPropertyTest, PushedConstraintsHoldAtDecisionPoint) {
  Rng rng(9000 + GetParam() * 13);
  auto functions = FunctionRegistry::Default();
  int bounds_seen = 0;

  for (int iteration = 0; iteration < 150; ++iteration) {
    ScenarioResolver resolver;
    const double center = rng.NextDouble() * 20 - 10;
    const double radius = rng.NextDouble() * 3;
    resolver.Set(0, center, Interval(center - radius, center + radius));

    RecordingSink sink;
    EvalContext ctx;
    ctx.functions = functions.get();
    ctx.resolver = &resolver;
    ctx.constraint_sink = &sink;

    // A monotone-recognizable shape: (a·u + b) ϑ c.
    const double a = (rng.NextDouble() * 4 - 2);
    const double b = rng.NextDouble() * 10 - 5;
    const double c = rng.NextDouble() * 30 - 15;
    auto lookup = std::make_shared<AggLookupExpr>(
        0, 0, std::vector<ExprPtr>{}, ValueType::kDouble, "u");
    const ExprPtr pred =
        rng.NextBounded(2) == 0
            ? Lt(Add(Mul(Lit(a), ExprPtr(lookup)), Lit(b)), Lit(c))
            : Ge(Add(Mul(Lit(a), ExprPtr(lookup)), Lit(b)), Lit(c));

    const IntervalTruth truth = ClassifyPredicate(*pred, Row{}, ctx);
    if (truth == IntervalTruth::kUndecided) {
      EXPECT_TRUE(sink.bounds.empty());
      EXPECT_TRUE(sink.containments.empty());
      continue;
    }
    // Every pushed bound must hold for the current (and any in-range)
    // realization — the decision was made against this very range.
    for (const RecordingSink::Bound& bound : sink.bounds) {
      ++bounds_seen;
      const Interval r = resolver.range(bound.block);
      if (bound.upper) {
        EXPECT_LE(r.hi, bound.bound + 1e-9 * (1 + std::fabs(bound.bound)))
            << pred->ToString();
      } else {
        EXPECT_GE(r.lo, bound.bound - 1e-9 * (1 + std::fabs(bound.bound)))
            << pred->ToString();
      }
    }
  }
  EXPECT_GT(bounds_seen, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprPropertyTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace iolap
