// Tests of the static program verifier (exec/program_verifier) and the plan
// invariant prover (plan/plan_verifier):
//
//   * ToString golden tests pinning the disassembly of every opcode, so the
//     bytecode shape (and therefore what the verifier certifies) is visible
//     in the diff whenever the compiler changes.
//   * A directed mutation suite: every rule class (a)-(e) of the verifier's
//     contract has mutations that must be rejected with that rule's
//     diagnostic. Mutations corrupt a freshly compiled program through
//     ExprProgramTestPeer (a friend), exactly the way a compiler bug would.
//   * A field-flip sweep: every accepted mutant must also *run* without
//     faulting (the suite runs under ASan in CI), making "verifier accepts"
//     mean "safe to execute", not merely "looks plausible".
//   * Plan-level agreement checks between compiled programs and hand-built
//     plans (root arity/kind, SPJ bounds, aggregate probe shape).
//   * A workload corpus gate: every program the TPC-H and Conviva queries
//     compile must verify under ProgramVerifyMode::kStrict.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/expr.h"
#include "core/function_registry.h"
#include "core/schema.h"
#include "core/value.h"
#include "exec/expr_program.h"
#include "exec/program_verifier.h"
#include "iolap/delta_engine.h"
#include "iolap/session.h"
#include "plan/logical_plan.h"
#include "plan/plan_verifier.h"
#include "workloads/conviva.h"
#include "workloads/conviva_queries.h"
#include "workloads/tpch.h"
#include "workloads/tpch_queries.h"

namespace iolap {

/// Test-only access to ExprProgram's private bytecode (a declared friend).
/// The mutation suite corrupts compiled programs through these references to
/// prove the verifier rejects every corruption class a compiler bug could
/// introduce.
class ExprProgramTestPeer {
 public:
  using Insn = ExprProgram::Insn;
  using CallSite = ExprProgram::CallSite;
  using AggSite = ExprProgram::AggSite;
  using Root = ExprProgram::Root;

  static std::vector<Insn>& Prologue(const ExprProgram& p) {
    return Mut(p).prologue_;
  }
  static std::vector<Insn>& Epilogue(const ExprProgram& p) {
    return Mut(p).epilogue_;
  }
  static std::vector<CallSite>& CallSites(const ExprProgram& p) {
    return Mut(p).call_sites_;
  }
  static std::vector<AggSite>& AggSites(const ExprProgram& p) {
    return Mut(p).agg_sites_;
  }
  static std::vector<Root>& Roots(const ExprProgram& p) {
    return Mut(p).roots_;
  }
  static std::vector<std::pair<uint16_t, expr_prog::NumReg>>& ConstNum(
      const ExprProgram& p) {
    return Mut(p).const_num_;
  }
  static uint16_t& NumRegs(const ExprProgram& p) { return Mut(p).num_regs_; }
  static uint16_t& StrRegs(const ExprProgram& p) { return Mut(p).str_regs_; }
  static uint16_t& OwnedSlots(const ExprProgram& p) {
    return Mut(p).owned_slots_;
  }
  static int& MaxCol(const ExprProgram& p) { return Mut(p).max_col_; }
  static size_t& MaxCallArgs(const ExprProgram& p) {
    return Mut(p).max_call_args_;
  }

  static uint8_t OpByte(const Insn& insn) {
    return static_cast<uint8_t>(insn.op);
  }
  static void SetOpByte(Insn& insn, uint8_t byte) {
    insn.op = static_cast<ExprProgram::Op>(byte);
  }

 private:
  static ExprProgram& Mut(const ExprProgram& p) {
    return const_cast<ExprProgram&>(p);
  }
};

namespace {

using Peer = ExprProgramTestPeer;

// ---------------------------------------------------------------------------
// Expression helpers (same shapes as expr_program_test).

ExprPtr LitV(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr Col(int index, ValueType type) {
  return std::make_shared<ColumnRefExpr>(index, "c" + std::to_string(index),
                                         type);
}
ExprPtr Bin(Expr::BinaryOp op, ExprPtr l, ExprPtr r,
            ValueType type = ValueType::kDouble) {
  return std::make_shared<BinaryExpr>(op, std::move(l), std::move(r), type);
}
ExprPtr Un(Expr::UnaryOp op, ExprPtr e, ValueType type = ValueType::kDouble) {
  return std::make_shared<UnaryExpr>(op, std::move(e), type);
}
ExprPtr Call(std::string name, std::vector<ExprPtr> args,
             ValueType type = ValueType::kDouble) {
  return std::make_shared<CallExpr>(std::move(name), std::move(args), type);
}
ExprPtr AggRef(int block, int col, std::vector<ExprPtr> keys,
               ValueType type = ValueType::kDouble) {
  return std::make_shared<AggLookupExpr>(block, col, std::move(keys), type,
                                         "agg");
}

/// Deterministic resolver so mutated-but-accepted programs can actually run.
class SimpleResolver final : public AggLookupResolver {
 public:
  Value Lookup(int block_id, int col, const Row& key) const override {
    return Value::Double(Base(block_id, col, key));
  }
  Value LookupTrial(int block_id, int col, const Row& key,
                    int trial) const override {
    return Value::Double(Base(block_id, col, key) + 0.01 * trial);
  }
  void LookupTrials(int block_id, int col, const Row& key, int num_trials,
                    Value* out) const override {
    for (int t = 0; t < num_trials; ++t) {
      out[t] = LookupTrial(block_id, col, key, t);
    }
  }
  Interval LookupRange(int, int, const Row&) const override {
    return Interval::Unbounded();
  }

 private:
  static double Base(int block_id, int col, const Row& key) {
    double h = 7.0 * block_id + 3.0 * col;
    for (const Value& v : key) h += v.is_null() ? 0.5 : v.AsDouble();
    return h;
  }
};

/// A program plus everything it borrows (registry, lineage), so mutation
/// tests can recompile a pristine copy per mutation.
struct Built {
  std::shared_ptr<FunctionRegistry> functions = FunctionRegistry::Default();
  std::vector<ExprPtr> lineage;
  std::vector<ExprPtr> roots;

  std::unique_ptr<const ExprProgram> Compile() const {
    auto p = ExprProgram::Compile(roots, functions.get(),
                                  lineage.empty() ? nullptr : &lineage);
    EXPECT_NE(p, nullptr);
    return p;
  }
};

// Numeric kitchen sink: load_num, arith, mod, cmp_num, logic, not, neg.
Built NumericProgram() {
  Built b;
  b.roots = {
      Bin(Expr::BinaryOp::kAdd, Col(0, ValueType::kInt64),
          Col(1, ValueType::kDouble), ValueType::kDouble),
      Bin(Expr::BinaryOp::kMod, Col(0, ValueType::kInt64),
          LitV(Value::Int64(3)), ValueType::kInt64),
      Un(Expr::UnaryOp::kNot,
         Bin(Expr::BinaryOp::kAnd,
             Bin(Expr::BinaryOp::kLt, Col(0, ValueType::kInt64),
                 Col(1, ValueType::kDouble), ValueType::kInt64),
             Bin(Expr::BinaryOp::kGe, Col(1, ValueType::kDouble),
                 LitV(Value::Double(1.5)), ValueType::kInt64),
             ValueType::kInt64),
         ValueType::kInt64),
      Un(Expr::UnaryOp::kNeg, Col(1, ValueType::kDouble)),
  };
  return b;
}

// Strings: load_str, cmp_str, a string root and a string literal.
Built StringProgram() {
  Built b;
  b.roots = {
      Bin(Expr::BinaryOp::kEq, Col(0, ValueType::kString),
          LitV(Value::String("apple")), ValueType::kInt64),
      Col(0, ValueType::kString),
  };
  return b;
}

// Calls: call_num (sqrt's typed kernel) and a string-kind call_generic.
Built CallProgram() {
  Built b;
  b.roots = {
      Call("sqrt", {Col(0, ValueType::kDouble)}),
      Call("upper", {Col(1, ValueType::kString)}, ValueType::kString),
  };
  return b;
}

// Aggregates and lineage: probe_agg, read_agg_num, read_agg_str,
// col_lineage, plus a trial-variant arith in the epilogue.
Built AggProgram() {
  Built b;
  b.lineage.resize(2);
  b.lineage[1] = AggRef(0, 1, {Col(0, ValueType::kInt64)});
  b.roots = {
      Bin(Expr::BinaryOp::kAdd, Col(1, ValueType::kDouble),
          AggRef(0, 2, {}), ValueType::kDouble),
      AggRef(0, 3, {}, ValueType::kString),
  };
  return b;
}

// Two string-kind generic calls, each owning its own Value slot.
Built TwoStringCallProgram() {
  Built b;
  b.roots = {
      Call("upper", {Col(0, ValueType::kString)}, ValueType::kString),
      Call("lower", {Col(1, ValueType::kString)}, ValueType::kString),
  };
  return b;
}

void ExpectAccepted(const ExprProgram& p) {
  const VerifyResult vr = ProgramVerifier::Verify(p);
  EXPECT_TRUE(vr.ok) << "[" << vr.rule << "] " << vr.message << "\n"
                     << p.ToString();
}

void ExpectRejected(const ExprProgram& p, const std::string& rule) {
  const VerifyResult vr = ProgramVerifier::Verify(p);
  ASSERT_FALSE(vr.ok) << "mutation unexpectedly accepted:\n" << p.ToString();
  EXPECT_EQ(vr.rule, rule) << vr.message << "\n" << p.ToString();
  EXPECT_FALSE(vr.message.empty());
}

// ---------------------------------------------------------------------------
// ToString goldens: one per program family, jointly covering all 15 opcodes.

TEST(ProgramGoldenTest, NumericOpsDisassembly) {
  const Built b = NumericProgram();
  const auto p = b.Compile();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->ToString(),
            "prologue:\n"
            "  load_num dst=0 a=0 b=0 sub=0 aux=0\n"
            "  load_num dst=1 a=0 b=0 sub=0 aux=1\n"
            "  arith dst=2 a=0 b=1 sub=0 aux=0\n"
            "  mod dst=4 a=0 b=3 sub=4 aux=0\n"
            "  cmp_num dst=5 a=0 b=1 sub=7 aux=0\n"
            "  cmp_num dst=7 a=1 b=6 sub=10 aux=0\n"
            "  logic dst=8 a=5 b=7 sub=11 aux=0\n"
            "  not dst=9 a=8 b=0 sub=0 aux=0\n"
            "  neg dst=10 a=1 b=0 sub=0 aux=0\n"
            "epilogue:\n"
            "roots: n2! n4! n9! n10!\n"
            "consts: n3=i:3 n6=d:1.500000\n"
            "regs: num=11 str=0 owned=0 max_col=1 max_call_args=0\n");
}

TEST(ProgramGoldenTest, StringOpsDisassembly) {
  const Built b = StringProgram();
  const auto p = b.Compile();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->ToString(),
            "prologue:\n"
            "  load_str dst=0 a=0 b=0 sub=0 aux=0\n"
            "  cmp_str dst=0 a=0 b=1 sub=5 aux=0\n"
            "epilogue:\n"
            "roots: n0! s0!\n"
            "consts: s1=\"apple\"\n"
            "regs: num=1 str=2 owned=0 max_col=0 max_call_args=0\n");
}

TEST(ProgramGoldenTest, CallSitesDisassembly) {
  const Built b = CallProgram();
  const auto p = b.Compile();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->ToString(),
            "prologue:\n"
            "  load_num dst=0 a=0 b=0 sub=0 aux=0\n"
            "  call_num dst=1 a=0 b=0 sub=0 aux=0\n"
            "  load_str dst=0 a=0 b=0 sub=0 aux=1\n"
            "  call_generic dst=1 a=0 b=0 sub=1 aux=1\n"
            "epilogue:\n"
            "roots: n1! s1!\n"
            "call[0]: sqrt(n0) owned_slot=0\n"
            "call[1]: upper(s0) owned_slot=0\n"
            "regs: num=2 str=2 owned=1 max_col=1 max_call_args=1\n");
}

TEST(ProgramGoldenTest, AggAndLineageDisassembly) {
  const Built b = AggProgram();
  const auto p = b.Compile();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->ToString(),
            "prologue:\n"
            "  load_num dst=0 a=0 b=0 sub=0 aux=0\n"
            "  probe_agg dst=0 a=0 b=0 sub=0 aux=0\n"
            "  probe_agg dst=0 a=0 b=0 sub=0 aux=1\n"
            "  probe_agg dst=0 a=0 b=0 sub=0 aux=2\n"
            "epilogue:\n"
            "  read_agg_num dst=1 a=0 b=0 sub=0 aux=0\n"
            "  col_lineage dst=2 a=1 b=0 sub=0 aux=1\n"
            "  read_agg_num dst=3 a=0 b=0 sub=0 aux=1\n"
            "  arith dst=4 a=2 b=3 sub=0 aux=0\n"
            "  read_agg_str dst=0 a=0 b=0 sub=0 aux=2\n"
            "roots: n4~ s0~\n"
            "agg[0]: block=0 col=1 keys=(n0)\n"
            "agg[1]: block=0 col=2 keys=()\n"
            "agg[2]: block=0 col=3 keys=()\n"
            "regs: num=5 str=1 owned=0 max_col=1 max_call_args=0\n");
}

TEST(ProgramGoldenTest, GoldensCoverEveryOpcode) {
  const Built numeric = NumericProgram();
  const Built strings = StringProgram();
  const Built calls = CallProgram();
  const Built aggs = AggProgram();
  std::string all;
  for (const Built* b : {&numeric, &strings, &calls, &aggs}) {
    const auto p = b->Compile();
    ASSERT_NE(p, nullptr);
    all += p->ToString();
  }
  for (const char* mnemonic :
       {"load_num", "load_str", "col_lineage", "neg", "not", "arith", "mod",
        "cmp_num", "cmp_str", "logic", "call_num", "call_generic", "probe_agg",
        "read_agg_num", "read_agg_str"}) {
    EXPECT_NE(all.find(std::string("  ") + mnemonic + " "), std::string::npos)
        << "goldens never exercise opcode " << mnemonic;
  }
}

// ---------------------------------------------------------------------------
// The verifier accepts everything the compiler actually emits.

TEST(ProgramVerifierTest, AcceptsCompiledPrograms) {
  for (const Built& b :
       {NumericProgram(), StringProgram(), CallProgram(), AggProgram(),
        TwoStringCallProgram()}) {
    const auto p = b.Compile();
    ASSERT_NE(p, nullptr);
    ExpectAccepted(*p);
  }
}

TEST(ProgramVerifierTest, CompileVerifiedCountsRefusalsAndVerifications) {
  const Built b = NumericProgram();
  ProgramVerifierStats stats;
  // A call to a function the registry does not know refuses to compile —
  // a compiler decision, not a verifier rejection.
  const std::vector<ExprPtr> unknown = {Call("no_such_function", {})};
  EXPECT_EQ(CompileVerified(unknown, b.functions.get(), nullptr, &stats),
            nullptr);
  EXPECT_EQ(stats.refused, 1);
  EXPECT_EQ(stats.compiled, 0);

  const auto p = CompileVerified(b.roots, b.functions.get(), nullptr, &stats);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(stats.compiled, 1);
  EXPECT_EQ(stats.verified, 1);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_TRUE(stats.last_rejection.empty());
}

// ---------------------------------------------------------------------------
// Rule (a): def-before-use / single assignment.

TEST(ProgramVerifierMutationTest, UseBeforeDefIsRejected) {
  const Built b = NumericProgram();
  const auto p = b.Compile();
  // `arith dst=2 a=0 b=1` now reads its own destination before the write.
  Peer::Prologue(*p)[2].a = 2;
  ExpectRejected(*p, "def-before-use");
}

TEST(ProgramVerifierMutationTest, DoubleWriteIsRejected) {
  const Built b = NumericProgram();
  const auto p = b.Compile();
  // `mod dst=4` re-targets the register the arith above already defined.
  Peer::Prologue(*p)[3].dst = 2;
  ExpectRejected(*p, "def-before-use");
}

TEST(ProgramVerifierMutationTest, DoubleProbeIsRejected) {
  const Built b = AggProgram();
  const auto p = b.Compile();
  // Both probes now fill site 1; site 0 is probed twice / never.
  Peer::Prologue(*p)[1].aux = 1;
  ExpectRejected(*p, "def-before-use");
}

TEST(ProgramVerifierMutationTest, ReadOfUnprobedSiteIsRejected) {
  const Built b = AggProgram();
  const auto p = b.Compile();
  // Drop the probe of site 0: the epilogue read now consumes a slot no
  // probe ever fills (at runtime: stale/empty AggSlot).
  auto& pro = Peer::Prologue(*p);
  pro.erase(pro.begin() + 1);
  ExpectRejected(*p, "def-before-use");
}

// ---------------------------------------------------------------------------
// Rule (b): 3VL / null-tag lattice and register-kind soundness.

TEST(ProgramVerifierMutationTest, ArithBadDiscriminantIsRejected) {
  const Built b = NumericProgram();
  const auto p = b.Compile();
  Peer::Prologue(*p)[2].sub = 200;
  ExpectRejected(*p, "null-tag");
}

TEST(ProgramVerifierMutationTest, ArithBadIntFlagIsRejected) {
  const Built b = NumericProgram();
  const auto p = b.Compile();
  Peer::Prologue(*p)[2].aux = 2;
  ExpectRejected(*p, "null-tag");
}

TEST(ProgramVerifierMutationTest, LogicBadDiscriminantIsRejected) {
  const Built b = NumericProgram();
  const auto p = b.Compile();
  // The logic insn's discriminant becomes kAdd: not a 3VL connective.
  Peer::Prologue(*p)[6].sub = 0;
  ExpectRejected(*p, "null-tag");
}

TEST(ProgramVerifierMutationTest, CmpBadDiscriminantIsRejected) {
  const Built b = NumericProgram();
  const auto p = b.Compile();
  // The first cmp_num's discriminant becomes kAnd: not a comparison.
  Peer::Prologue(*p)[4].sub = 11;
  ExpectRejected(*p, "null-tag");
}

TEST(ProgramVerifierMutationTest, IntConstBreakingNumRegInvariantIsRejected) {
  const Built b = NumericProgram();
  const auto p = b.Compile();
  // The literal 3 keeps tag kInt64 but its double mirror drifts: every
  // AsDouble() downstream would silently read 4.0.
  auto& consts = Peer::ConstNum(*p);
  ASSERT_FALSE(consts.empty());
  ASSERT_EQ(consts[0].second.tag, ValueType::kInt64);
  consts[0].second.f = 4.0;
  ExpectRejected(*p, "null-tag");
}

TEST(ProgramVerifierMutationTest, StringArgIntoNumericKernelIsRejected) {
  const Built b = CallProgram();
  const auto p = b.Compile();
  // sqrt's call site now claims a string argument: the typed kernel would
  // read a NumericValue that was never written.
  Peer::CallSites(*p)[0].args[0].is_str = true;
  ExpectRejected(*p, "register-kind");
}

TEST(ProgramVerifierMutationTest, GenericKindDiscriminantIsRejected) {
  const Built b = CallProgram();
  const auto p = b.Compile();
  // call_generic's static-kind discriminant leaves {0, 1}.
  Peer::Prologue(*p)[3].sub = 2;
  ExpectRejected(*p, "register-kind");
}

// ---------------------------------------------------------------------------
// Rule (c): aux / index bounds.

TEST(ProgramVerifierMutationTest, LoadBeyondMaxColIsRejected) {
  const Built b = NumericProgram();
  const auto p = b.Compile();
  Peer::Prologue(*p)[0].aux = 7;  // max_col_ claims 1
  ExpectRejected(*p, "aux-bounds");
}

TEST(ProgramVerifierMutationTest, CallSiteOutOfBoundsIsRejected) {
  const Built b = CallProgram();
  const auto p = b.Compile();
  Peer::Prologue(*p)[1].aux = 5;  // two call sites exist
  ExpectRejected(*p, "aux-bounds");
}

TEST(ProgramVerifierMutationTest, OwnedSlotOutOfBoundsIsRejected) {
  const Built b = CallProgram();
  const auto p = b.Compile();
  Peer::CallSites(*p)[1].owned_slot = 3;  // owned_slots_ claims 1
  ExpectRejected(*p, "aux-bounds");
}

TEST(ProgramVerifierMutationTest, AggSiteOutOfBoundsIsRejected) {
  const Built b = AggProgram();
  const auto p = b.Compile();
  Peer::Epilogue(*p)[0].aux = 9;  // three agg sites exist
  ExpectRejected(*p, "aux-bounds");
}

// ---------------------------------------------------------------------------
// Rule (d): trial-invariance / segment placement.

TEST(ProgramVerifierMutationTest, ProbeInEpilogueIsRejected) {
  const Built b = AggProgram();
  const auto p = b.Compile();
  // Move the probe of site 0 into the epilogue, where the resolver is
  // nullptr by contract: a guaranteed crash the verifier must preempt.
  auto& pro = Peer::Prologue(*p);
  auto& epi = Peer::Epilogue(*p);
  epi.insert(epi.begin(), pro[1]);
  pro.erase(pro.begin() + 1);
  ExpectRejected(*p, "trial-invariance");
}

TEST(ProgramVerifierMutationTest, ReadAggInPrologueIsRejected) {
  const Built b = AggProgram();
  const auto p = b.Compile();
  // Hoist a per-trial read into the prologue: it would freeze one trial's
  // replica for every trial.
  auto& pro = Peer::Prologue(*p);
  auto& epi = Peer::Epilogue(*p);
  pro.push_back(epi[0]);
  epi.erase(epi.begin());
  ExpectRejected(*p, "trial-invariance");
}

TEST(ProgramVerifierMutationTest, ColLineageHoistedIsRejected) {
  const Built b = AggProgram();
  const auto p = b.Compile();
  // Hoist the lineage column read (epilogue[1]) into the prologue.
  auto& pro = Peer::Prologue(*p);
  auto& epi = Peer::Epilogue(*p);
  pro.push_back(epi[1]);
  epi.erase(epi.begin() + 1);
  ExpectRejected(*p, "trial-invariance");
}

TEST(ProgramVerifierMutationTest, InvariantFlagOnTrialVariantRootIsRejected) {
  const Built b = AggProgram();
  const auto p = b.Compile();
  // Root 0 depends on per-trial aggregate reads; claiming invariance makes
  // Bind-time reads of it legal when its register is not yet written.
  ASSERT_FALSE(Peer::Roots(*p)[0].invariant);
  Peer::Roots(*p)[0].invariant = true;
  ExpectRejected(*p, "trial-invariance");
}

// ---------------------------------------------------------------------------
// Rule (e): register-file claims are exact.

TEST(ProgramVerifierMutationTest, NumRegsOverclaimIsRejected) {
  const Built b = NumericProgram();
  const auto p = b.Compile();
  Peer::NumRegs(*p) += 1;
  ExpectRejected(*p, "register-file");
}

TEST(ProgramVerifierMutationTest, StrRegsOverclaimIsRejected) {
  const Built b = StringProgram();
  const auto p = b.Compile();
  Peer::StrRegs(*p) += 1;
  ExpectRejected(*p, "register-file");
}

TEST(ProgramVerifierMutationTest, OwnedSlotsOverclaimIsRejected) {
  const Built b = CallProgram();
  const auto p = b.Compile();
  Peer::OwnedSlots(*p) += 1;
  ExpectRejected(*p, "register-file");
}

TEST(ProgramVerifierMutationTest, MaxColOverclaimIsRejected) {
  const Built b = NumericProgram();
  const auto p = b.Compile();
  Peer::MaxCol(*p) += 1;
  ExpectRejected(*p, "register-file");
}

TEST(ProgramVerifierMutationTest, MaxCallArgsOverclaimIsRejected) {
  const Built b = CallProgram();
  const auto p = b.Compile();
  Peer::MaxCallArgs(*p) += 1;
  ExpectRejected(*p, "register-file");
}

TEST(ProgramVerifierMutationTest, OwnedSlotAliasingIsRejected) {
  const Built b = TwoStringCallProgram();
  const auto p = b.Compile();
  ASSERT_EQ(Peer::CallSites(*p).size(), 2u);
  // Both string-kind generic sites now own the same Value slot: the second
  // call frees the string the first dst register still views.
  Peer::CallSites(*p)[1].owned_slot = Peer::CallSites(*p)[0].owned_slot;
  ExpectRejected(*p, "register-file");
}

TEST(ProgramVerifierMutationTest, InvalidOpcodeByteIsRejected) {
  const Built b = NumericProgram();
  const auto p = b.Compile();
  Peer::SetOpByte(Peer::Prologue(*p)[0], 99);
  ExpectRejected(*p, "opcode");
}

// ---------------------------------------------------------------------------
// Field-flip sweep: any mutant the verifier accepts must run without
// faulting (this binary runs under ASan in CI). "Accepts" therefore means
// "safe to execute", not "syntactically plausible".

TEST(ProgramVerifierSweepTest, AcceptedFieldFlipsRunWithoutFault) {
  Built b;
  b.lineage.resize(2);
  b.lineage[1] = AggRef(0, 1, {Col(0, ValueType::kInt64)});
  b.roots = {
      Bin(Expr::BinaryOp::kGt,
          Bin(Expr::BinaryOp::kAdd, Col(1, ValueType::kDouble),
              Col(2, ValueType::kDouble), ValueType::kDouble),
          LitV(Value::Double(1.0)), ValueType::kInt64),
      Call("sqrt", {Col(2, ValueType::kDouble)}),
      Call("upper", {Col(3, ValueType::kString)}, ValueType::kString),
  };
  const auto base = b.Compile();
  ASSERT_NE(base, nullptr);
  ExpectAccepted(*base);

  const SimpleResolver resolver;
  constexpr int kTrials = 4;
  const std::vector<Row> rows = {
      {Value::Int64(1), Value::Double(2.0), Value::Double(3.0),
       Value::String("ab")},
      {Value::Int64(2), Value::Null(), Value::Double(-1.0),
       Value::String("")},
  };

  int accepted = 0;
  int rejected = 0;
  const size_t pro_size = Peer::Prologue(*base).size();
  const size_t epi_size = Peer::Epilogue(*base).size();
  for (int seg = 0; seg < 2; ++seg) {
    const size_t seg_size = seg == 0 ? pro_size : epi_size;
    for (size_t i = 0; i < seg_size; ++i) {
      for (int field = 0; field < 6; ++field) {
        for (const uint16_t delta : {1, 5}) {
          const auto p = b.Compile();
          ASSERT_NE(p, nullptr);
          auto& insn =
              (seg == 0 ? Peer::Prologue(*p) : Peer::Epilogue(*p))[i];
          switch (field) {
            case 0:
              // Modulo 17 so the sweep also crosses the invalid-opcode
              // boundary (16 is past kReadAggStr).
              Peer::SetOpByte(insn,
                              static_cast<uint8_t>(
                                  (Peer::OpByte(insn) + delta) % 17));
              break;
            case 1:
              insn.sub = static_cast<uint8_t>(insn.sub + delta);
              break;
            case 2:
              insn.dst = static_cast<uint16_t>(insn.dst + delta);
              break;
            case 3:
              insn.a = static_cast<uint16_t>(insn.a + delta);
              break;
            case 4:
              insn.b = static_cast<uint16_t>(insn.b + delta);
              break;
            case 5:
              insn.aux = static_cast<uint16_t>(insn.aux + delta);
              break;
          }
          if (!ProgramVerifier::Verify(*p).ok) {
            ++rejected;
            continue;
          }
          ++accepted;
          // An accepted mutant must execute cleanly (bailing is fine; out-
          // of-bounds access is not — ASan arbitrates).
          ExprProgramState st;
          p->InitState(&st);
          for (const Row& row : rows) {
            if (!p->Bind(&st, row, &resolver, kTrials)) continue;
            double w[kTrials];
            std::fill(w, w + kTrials, 1.0);
            Value vals[kTrials * 2];
            p->EvalTrials(&st, row, kTrials, /*pred_root=*/0,
                          /*first_val_root=*/1, /*num_val_roots=*/2, w, vals);
          }
        }
      }
    }
  }
  // The sweep must exercise both outcomes: a verifier that rejects nothing
  // (or a sweep that mutates nothing) is a broken gate.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(accepted, 0);
  RecordProperty("accepted", accepted);
  RecordProperty("rejected", rejected);
}

// ---------------------------------------------------------------------------
// Directed regression: InitState sizes the owned-Value storage from the
// call sites themselves, not only the owned_slots_ claim, so a bad
// owned_slot cannot write past the buffer even on an unverified program.

TEST(ProgramVerifierRegressionTest, InitStateSizesOwnedStorageFromCallSites) {
  const Built b = TwoStringCallProgram();
  const auto p = b.Compile();
  ASSERT_NE(p, nullptr);
  Peer::CallSites(*p)[0].owned_slot = 57;  // far past owned_slots_ == 2
  // The verifier rejects the claim mismatch up front...
  ExpectRejected(*p, "aux-bounds");
  // ...and even if a caller skipped verification, InitState's defensive
  // sizing keeps the kCallGeneric write in bounds (ASan checks this).
  ExprProgramState st;
  p->InitState(&st);
  const Row row = {Value::String("ok"), Value::String("YES")};
  ASSERT_TRUE(p->Bind(&st, row, nullptr, 1));
  const Value upper = p->RootValue(st, 0);
  ASSERT_EQ(upper.type(), ValueType::kString);
  EXPECT_EQ(upper.str(), "OK");
  const Value lower = p->RootValue(st, 1);
  ASSERT_EQ(lower.type(), ValueType::kString);
  EXPECT_EQ(lower.str(), "yes");
}

// ---------------------------------------------------------------------------
// Plan invariant prover: program-vs-plan agreement.

Block MakeAggSource(bool aggregate = true) {
  Block b;
  b.id = 0;
  b.debug_name = "source";
  b.spj_schema = Schema({{"k", ValueType::kInt64}, {"v", ValueType::kDouble}});
  if (aggregate) {
    b.group_by = {Col(0, ValueType::kInt64)};
    b.group_by_names = {"k"};
    AggSpec spec;
    spec.arg = Col(1, ValueType::kDouble);
    spec.output_name = "s";
    b.aggs.push_back(std::move(spec));
  }
  b.output_schema =
      Schema({{"k", ValueType::kInt64}, {"s", ValueType::kDouble}});
  return b;
}

Block MakeConsumer(ExprPtr filter) {
  Block b;
  b.id = 1;
  b.debug_name = "consumer";
  b.spj_schema = Schema({{"a", ValueType::kInt64}, {"b", ValueType::kDouble}});
  b.filter = std::move(filter);
  b.group_by = {Col(0, ValueType::kInt64)};
  b.group_by_names = {"a"};
  AggSpec spec;
  spec.arg = Col(1, ValueType::kDouble);
  spec.output_name = "m";
  b.aggs.push_back(std::move(spec));
  b.output_schema =
      Schema({{"a", ValueType::kInt64}, {"m", ValueType::kDouble}});
  return b;
}

struct PlanFixture {
  std::shared_ptr<FunctionRegistry> functions = FunctionRegistry::Default();
  QueryPlan plan;
  std::vector<ExprPtr> roots;

  explicit PlanFixture(ExprPtr agg_ref, bool aggregate_source = true) {
    plan.blocks.push_back(MakeAggSource(aggregate_source));
    plan.blocks.push_back(MakeConsumer(
        Bin(Expr::BinaryOp::kGt, Col(1, ValueType::kDouble),
            std::move(agg_ref), ValueType::kInt64)));
    const Block& consumer = plan.blocks[1];
    roots = {consumer.filter, consumer.aggs[0].arg};
  }

  std::unique_ptr<const ExprProgram> Compile() const {
    auto p = ExprProgram::Compile(roots, functions.get(), nullptr);
    EXPECT_NE(p, nullptr);
    return p;
  }

  PlanVerifyResult Check(const ExprProgram& program) const {
    return VerifyBlockProgram(plan, plan.blocks[1], program,
                              ProgramRole::kRowProgram);
  }
};

ExprPtr WellFormedAggRef() {
  return AggRef(0, 1, {Col(0, ValueType::kInt64)});
}

TEST(PlanVerifierTest, AcceptsAgreeingRowProgram) {
  const PlanFixture f(WellFormedAggRef());
  const auto p = f.Compile();
  ASSERT_NE(p, nullptr);
  const PlanVerifyResult res = f.Check(*p);
  EXPECT_TRUE(res.ok) << res.message;
}

TEST(PlanVerifierTest, RootCountMismatchIsRejected) {
  const PlanFixture f(WellFormedAggRef());
  // Compile only the filter: the plan expects filter + one aggregate arg.
  const std::vector<ExprPtr> partial = {f.roots[0]};
  const auto p = ExprProgram::Compile(partial, f.functions.get(), nullptr);
  ASSERT_NE(p, nullptr);
  const PlanVerifyResult res = f.Check(*p);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.message.find("roots"), std::string::npos) << res.message;
}

TEST(PlanVerifierTest, RootKindMismatchIsRejected) {
  // A projection block typed string whose program landed the root in the
  // numeric file (as if the binder and compiler disagreed on the type).
  Block top;
  top.id = 1;
  top.spj_schema = Schema({{"s", ValueType::kString}});
  top.projections = {Col(0, ValueType::kString)};
  top.projection_names = {"s"};
  top.output_schema = Schema({{"s", ValueType::kString}});
  QueryPlan plan;
  plan.blocks.push_back(MakeAggSource());
  plan.blocks.push_back(top);

  auto functions = FunctionRegistry::Default();
  // Same column index, but compiled under a numeric static type.
  const std::vector<ExprPtr> roots = {Col(0, ValueType::kInt64)};
  const auto p = ExprProgram::Compile(roots, functions.get(), nullptr);
  ASSERT_NE(p, nullptr);
  const PlanVerifyResult res =
      VerifyBlockProgram(plan, plan.blocks[1], *p, ProgramRole::kProjection);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.message.find("register"), std::string::npos) << res.message;
}

TEST(PlanVerifierTest, LoadBeyondSpjSchemaIsRejected) {
  Block top;
  top.id = 1;
  top.spj_schema = Schema({{"x", ValueType::kDouble}});
  top.projections = {Col(2, ValueType::kDouble)};
  top.projection_names = {"x"};
  top.output_schema = Schema({{"x", ValueType::kDouble}});
  QueryPlan plan;
  plan.blocks.push_back(MakeAggSource());
  plan.blocks.push_back(top);

  auto functions = FunctionRegistry::Default();
  const auto p = ExprProgram::Compile(top.projections, functions.get(),
                                      nullptr);
  ASSERT_NE(p, nullptr);
  const PlanVerifyResult res =
      VerifyBlockProgram(plan, plan.blocks[1], *p, ProgramRole::kProjection);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.message.find("SPJ schema"), std::string::npos) << res.message;
}

TEST(PlanVerifierTest, AggSiteNotStrictlyUpstreamIsRejected) {
  // The reference targets the consumer itself (block 1): a probe cycle.
  const PlanFixture f(AggRef(1, 1, {Col(0, ValueType::kInt64)}));
  const auto p = f.Compile();
  ASSERT_NE(p, nullptr);
  const PlanVerifyResult res = f.Check(*p);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.message.find("strictly upstream"), std::string::npos)
      << res.message;
}

TEST(PlanVerifierTest, AggSiteIntoNonAggregateBlockIsRejected) {
  const PlanFixture f(WellFormedAggRef(), /*aggregate_source=*/false);
  const auto p = f.Compile();
  ASSERT_NE(p, nullptr);
  const PlanVerifyResult res = f.Check(*p);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.message.find("non-aggregate"), std::string::npos)
      << res.message;
}

TEST(PlanVerifierTest, AggSiteColumnOutOfRangeIsRejected) {
  // Column 5 of a two-column (key, aggregate) output.
  const PlanFixture f(AggRef(0, 5, {Col(0, ValueType::kInt64)}));
  const auto p = f.Compile();
  ASSERT_NE(p, nullptr);
  const PlanVerifyResult res = f.Check(*p);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.message.find("whose output has"), std::string::npos)
      << res.message;
}

TEST(PlanVerifierTest, AggSiteKeyArityMismatchIsRejected) {
  // No keys against a source grouped by one column.
  const PlanFixture f(AggRef(0, 1, {}));
  const auto p = f.Compile();
  ASSERT_NE(p, nullptr);
  const PlanVerifyResult res = f.Check(*p);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.message.find("groups by"), std::string::npos) << res.message;
}

// ---------------------------------------------------------------------------
// Workload corpus gate: every program the paper's workloads compile must
// verify, under the strict mode that turns any rejection into an Init error.

TEST(ProgramVerifierCorpusTest, WorkloadProgramsVerifyUnderStrictMode) {
  auto functions = FunctionRegistry::Default();
  RegisterConvivaUdfs(functions.get());

  struct Case {
    std::string name;
    std::shared_ptr<Catalog> catalog;
    std::string sql;
  };
  std::vector<Case> cases;
  for (const BenchQuery& q : TpchQueries()) {
    TpchConfig config;
    auto catalog = MakeTpchCatalog(config.Scaled(0.01), q.streamed_table);
    ASSERT_TRUE(catalog.ok()) << catalog.status();
    cases.push_back({"tpch_" + q.id, *catalog, q.sql});
  }
  for (const BenchQuery& q : ConvivaQueries()) {
    ConvivaConfig config;
    auto catalog = MakeConvivaCatalog(config.Scaled(0.01));
    ASSERT_TRUE(catalog.ok()) << catalog.status();
    cases.push_back({"conviva_" + q.id, *catalog, q.sql});
  }
  ASSERT_GT(cases.size(), 4u);

  int total_compiled = 0;
  int total_refused = 0;
  for (const Case& c : cases) {
    EngineOptions options;
    options.num_trials = 8;
    options.num_batches = 3;
    options.slack = 2.0;
    options.seed = 77;
    options.compile_expressions = true;
    options.verify_programs = ProgramVerifyMode::kStrict;
    Session session(c.catalog.get(), options, functions);
    auto query = session.Sql(c.sql);
    ASSERT_TRUE(query.ok()) << c.name << ": " << query.status();
    // Strict mode: a single rejected program fails the whole run.
    const Status run_status = (*query)->Run([](const PartialResult&) {
      return BatchAction::kContinue;
    });
    EXPECT_TRUE(run_status.ok()) << c.name << ": " << run_status;
    const QueryMetrics& m = (*query)->metrics();
    EXPECT_EQ(m.programs_rejected, 0) << c.name;
    EXPECT_EQ(m.programs_verified, m.programs_compiled) << c.name;
    if (m.programs_compiled > 0) {
      EXPECT_NE(m.Summary().find("programs="), std::string::npos) << c.name;
    }
    total_compiled += m.programs_compiled;
    total_refused += m.compile_refusals;
  }
  // The corpus must actually exercise the verifier: at least one workload
  // program has to reach the compiled path.
  EXPECT_GT(total_compiled, 0);
  RecordProperty("total_compiled", total_compiled);
  RecordProperty("total_refused", total_refused);
}

}  // namespace
}  // namespace iolap
