// Unit tests for the expression system: evaluation, interval propagation,
// trial-mode lineage resolution, and predicate classification.

#include <gtest/gtest.h>

#include <map>

#include "core/expr.h"
#include "core/function_registry.h"

namespace iolap {
namespace {

// A test double for the aggregate registry: fixed values / trials / ranges
// keyed by (block, col, key).
class FakeResolver : public AggLookupResolver {
 public:
  void Set(int block, int col, Row key, double value, Interval range,
           std::vector<double> trials = {}) {
    auto& entry = entries_[MakeKey(block, col, key)];
    entry.value = value;
    entry.range = range;
    entry.trials = std::move(trials);
  }

  Value Lookup(int block, int col, const Row& key) const override {
    auto it = entries_.find(MakeKey(block, col, key));
    if (it == entries_.end()) return Value::Null();
    return Value::Double(it->second.value);
  }

  Value LookupTrial(int block, int col, const Row& key,
                    int trial) const override {
    auto it = entries_.find(MakeKey(block, col, key));
    if (it == entries_.end()) return Value::Null();
    if (it->second.trials.empty()) return Value::Double(it->second.value);
    return Value::Double(
        it->second.trials[trial % it->second.trials.size()]);
  }

  Interval LookupRange(int block, int col, const Row& key) const override {
    auto it = entries_.find(MakeKey(block, col, key));
    if (it == entries_.end()) return Interval::Unbounded();
    return it->second.range;
  }

 private:
  struct Entry {
    double value = 0;
    Interval range;
    std::vector<double> trials;
  };
  static std::string MakeKey(int block, int col, const Row& key) {
    std::string s = std::to_string(block) + "/" + std::to_string(col);
    for (const Value& v : key) s += "/" + v.ToString();
    return s;
  }
  std::map<std::string, Entry> entries_;
};

class ExprTest : public ::testing::Test {
 protected:
  ExprTest() : functions_(FunctionRegistry::Default()) {
    ctx_.functions = functions_.get();
    ctx_.resolver = &resolver_;
  }

  std::shared_ptr<FunctionRegistry> functions_;
  FakeResolver resolver_;
  EvalContext ctx_;
};

TEST_F(ExprTest, LiteralEval) {
  EXPECT_EQ(Lit(int64_t{5})->Eval({}, ctx_).int64(), 5);
  EXPECT_DOUBLE_EQ(Lit(2.5)->Eval({}, ctx_).dbl(), 2.5);
  EXPECT_EQ(Lit("abc")->Eval({}, ctx_).str(), "abc");
}

TEST_F(ExprTest, ColumnRefEval) {
  Row row = {Value::Int64(1), Value::String("x")};
  EXPECT_EQ(Col(1, "s", ValueType::kString)->Eval(row, ctx_).str(), "x");
}

TEST_F(ExprTest, ArithmeticPromotion) {
  auto e = Add(Lit(int64_t{2}), Lit(int64_t{3}));
  EXPECT_EQ(e->output_type(), ValueType::kInt64);
  EXPECT_EQ(e->Eval({}, ctx_).int64(), 5);

  auto d = Mul(Lit(int64_t{2}), Lit(1.5));
  EXPECT_EQ(d->output_type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(d->Eval({}, ctx_).dbl(), 3.0);

  // Division always yields double.
  auto q = Div(Lit(int64_t{7}), Lit(int64_t{2}));
  EXPECT_DOUBLE_EQ(q->Eval({}, ctx_).dbl(), 3.5);
}

TEST_F(ExprTest, DivisionByZeroIsNull) {
  EXPECT_TRUE(Div(Lit(1.0), Lit(0.0))->Eval({}, ctx_).is_null());
  EXPECT_TRUE(MakeBinary(Expr::BinaryOp::kMod, Lit(int64_t{5}), Lit(int64_t{0}))
                  ->Eval({}, ctx_)
                  .is_null());
}

TEST_F(ExprTest, NullPropagation) {
  auto e = Add(Lit(Value::Null()), Lit(int64_t{1}));
  EXPECT_TRUE(e->Eval({}, ctx_).is_null());
  EXPECT_TRUE(Lt(Lit(Value::Null()), Lit(int64_t{1}))->Eval({}, ctx_).is_null());
}

TEST_F(ExprTest, Comparisons) {
  EXPECT_TRUE(Lt(Lit(int64_t{1}), Lit(2.0))->Eval({}, ctx_).IsTruthy());
  EXPECT_TRUE(Ge(Lit(int64_t{2}), Lit(int64_t{2}))->Eval({}, ctx_).IsTruthy());
  EXPECT_TRUE(Eq(Lit("a"), Lit("a"))->Eval({}, ctx_).IsTruthy());
  EXPECT_TRUE(Ne(Lit("a"), Lit("b"))->Eval({}, ctx_).IsTruthy());
}

TEST_F(ExprTest, ThreeValuedLogic) {
  const auto kNull = Lit(Value::Null());
  const auto kTrue = Lit(int64_t{1});
  const auto kFalse = Lit(int64_t{0});
  // FALSE AND NULL = FALSE; TRUE AND NULL = NULL.
  EXPECT_FALSE(And(kFalse, kNull)->Eval({}, ctx_).is_null());
  EXPECT_FALSE(And(kFalse, kNull)->Eval({}, ctx_).IsTruthy());
  EXPECT_TRUE(And(kTrue, kNull)->Eval({}, ctx_).is_null());
  // TRUE OR NULL = TRUE; FALSE OR NULL = NULL.
  EXPECT_TRUE(Or(kTrue, kNull)->Eval({}, ctx_).IsTruthy());
  EXPECT_TRUE(Or(kFalse, kNull)->Eval({}, ctx_).is_null());
}

TEST_F(ExprTest, UnaryOps) {
  EXPECT_EQ(Neg(Lit(int64_t{3}))->Eval({}, ctx_).int64(), -3);
  EXPECT_FALSE(Not(Lit(int64_t{1}))->Eval({}, ctx_).IsTruthy());
  EXPECT_TRUE(Not(Lit(int64_t{0}))->Eval({}, ctx_).IsTruthy());
}

TEST_F(ExprTest, CallBuiltins) {
  auto sqrt_e = std::make_shared<CallExpr>(
      "sqrt", std::vector<ExprPtr>{Lit(9.0)}, ValueType::kDouble);
  EXPECT_DOUBLE_EQ(sqrt_e->Eval({}, ctx_).dbl(), 3.0);

  auto if_e = std::make_shared<CallExpr>(
      "if",
      std::vector<ExprPtr>{Lit(int64_t{1}), Lit("yes"), Lit("no")},
      ValueType::kString);
  EXPECT_EQ(if_e->Eval({}, ctx_).str(), "yes");
}

TEST_F(ExprTest, ConjunctionHelper) {
  EXPECT_EQ(Conjunction({}), nullptr);
  auto single = Conjunction({Lit(int64_t{1})});
  EXPECT_TRUE(single->Eval({}, ctx_).IsTruthy());
  auto both = Conjunction({Lit(int64_t{1}), Lit(int64_t{0})});
  EXPECT_FALSE(both->Eval({}, ctx_).IsTruthy());
}

TEST_F(ExprTest, AggLookupScalar) {
  resolver_.Set(0, 0, {}, 37.0, Interval(21.1, 53.9), {35.0, 37.0, 39.0});
  auto lookup = std::make_shared<AggLookupExpr>(0, 0, std::vector<ExprPtr>{},
                                                ValueType::kDouble, "avg_bt");
  EXPECT_DOUBLE_EQ(lookup->Eval({}, ctx_).dbl(), 37.0);

  EvalContext trial_ctx = ctx_;
  trial_ctx.trial = 2;
  EXPECT_DOUBLE_EQ(lookup->Eval({}, trial_ctx).dbl(), 39.0);

  const Interval r = lookup->EvalInterval({}, ctx_);
  EXPECT_DOUBLE_EQ(r.lo, 21.1);
  EXPECT_DOUBLE_EQ(r.hi, 53.9);
}

TEST_F(ExprTest, AggLookupKeyed) {
  resolver_.Set(1, 1, {Value::Int64(42)}, 10.0, Interval(8, 12));
  auto lookup = std::make_shared<AggLookupExpr>(
      1, 1, std::vector<ExprPtr>{Col(0, "k", ValueType::kInt64)},
      ValueType::kDouble, "avg_qty");
  Row row = {Value::Int64(42)};
  EXPECT_DOUBLE_EQ(lookup->Eval(row, ctx_).dbl(), 10.0);
  // Missing group resolves to NULL / unbounded.
  Row other = {Value::Int64(7)};
  EXPECT_TRUE(lookup->Eval(other, ctx_).is_null());
  EXPECT_TRUE(lookup->EvalInterval(other, ctx_).IsUnbounded());
}

TEST_F(ExprTest, IntervalThroughArithmetic) {
  resolver_.Set(0, 0, {}, 37.0, Interval(20, 50));
  auto lookup = std::make_shared<AggLookupExpr>(0, 0, std::vector<ExprPtr>{},
                                                ValueType::kDouble, "a");
  // 0.2 * agg + 1: range [5, 11].
  auto expr = Add(Mul(Lit(0.2), ExprPtr(lookup)), Lit(1.0));
  const Interval r = expr->EvalInterval({}, ctx_);
  EXPECT_DOUBLE_EQ(r.lo, 5.0);
  EXPECT_DOUBLE_EQ(r.hi, 11.0);
}

TEST_F(ExprTest, MonotoneFunctionIntervalPropagation) {
  resolver_.Set(0, 0, {}, 9.0, Interval(4, 16));
  auto lookup = std::make_shared<AggLookupExpr>(0, 0, std::vector<ExprPtr>{},
                                                ValueType::kDouble, "a");
  auto expr = std::make_shared<CallExpr>(
      "sqrt", std::vector<ExprPtr>{ExprPtr(lookup)}, ValueType::kDouble);
  const Interval r = expr->EvalInterval({}, ctx_);
  EXPECT_DOUBLE_EQ(r.lo, 2.0);
  EXPECT_DOUBLE_EQ(r.hi, 4.0);
}

TEST_F(ExprTest, NonMonotoneUdfOverUncertainIsUnbounded) {
  resolver_.Set(0, 0, {}, 1.0, Interval(0, 2));
  auto lookup = std::make_shared<AggLookupExpr>(0, 0, std::vector<ExprPtr>{},
                                                ValueType::kDouble, "a");
  auto expr = std::make_shared<CallExpr>(
      "abs", std::vector<ExprPtr>{ExprPtr(lookup)}, ValueType::kDouble);
  EXPECT_TRUE(expr->EvalInterval({}, ctx_).IsUnbounded());
}

TEST_F(ExprTest, ClassifyPredicateSbiExample) {
  // The paper's running example (§3.2): AVG(buffer_time) in [21.1, 53.9];
  // buffer_time = 58 always selected, 17 always filtered, 36 undecided.
  resolver_.Set(0, 0, {}, 37.0, Interval(21.1, 53.9));
  auto lookup = std::make_shared<AggLookupExpr>(0, 0, std::vector<ExprPtr>{},
                                                ValueType::kDouble, "avg_bt");
  auto pred = Gt(Col(0, "buffer_time", ValueType::kDouble), ExprPtr(lookup));

  EXPECT_EQ(ClassifyPredicate(*pred, {Value::Double(58)}, ctx_),
            IntervalTruth::kAlwaysTrue);
  EXPECT_EQ(ClassifyPredicate(*pred, {Value::Double(17)}, ctx_),
            IntervalTruth::kAlwaysFalse);
  EXPECT_EQ(ClassifyPredicate(*pred, {Value::Double(36)}, ctx_),
            IntervalTruth::kUndecided);
}

TEST_F(ExprTest, ClassifyPredicateConjunction) {
  resolver_.Set(0, 0, {}, 37.0, Interval(21.1, 53.9));
  auto lookup = std::make_shared<AggLookupExpr>(0, 0, std::vector<ExprPtr>{},
                                                ValueType::kDouble, "a");
  auto uncertain = Gt(Col(0, "x", ValueType::kDouble), ExprPtr(lookup));
  auto det_false = Lt(Col(0, "x", ValueType::kDouble), Lit(0.0));

  // false AND undecided -> false.
  EXPECT_EQ(ClassifyPredicate(*And(det_false, uncertain),
                              {Value::Double(36)}, ctx_),
            IntervalTruth::kAlwaysFalse);
  // false OR undecided -> undecided.
  EXPECT_EQ(ClassifyPredicate(*Or(det_false, uncertain),
                              {Value::Double(36)}, ctx_),
            IntervalTruth::kUndecided);
  // NOT undecided -> undecided; NOT(always-true) -> always-false.
  EXPECT_EQ(ClassifyPredicate(*Not(uncertain), {Value::Double(36)}, ctx_),
            IntervalTruth::kUndecided);
  EXPECT_EQ(ClassifyPredicate(*Not(uncertain), {Value::Double(58)}, ctx_),
            IntervalTruth::kAlwaysFalse);
}

TEST_F(ExprTest, ClassifyDeterministicPredicate) {
  auto pred = Gt(Col(0, "x", ValueType::kDouble), Lit(10.0));
  EXPECT_EQ(ClassifyPredicate(*pred, {Value::Double(11)}, ctx_),
            IntervalTruth::kAlwaysTrue);
  EXPECT_EQ(ClassifyPredicate(*pred, {Value::Double(9)}, ctx_),
            IntervalTruth::kAlwaysFalse);
}

TEST_F(ExprTest, ColumnLineageTrialResolution) {
  // Column 1 of the row is an uncertain attribute whose lineage is a
  // scalar agg lookup; trial evaluation must re-derive it via the lookup,
  // ignoring the (stale) stored value.
  resolver_.Set(0, 0, {}, 37.0, Interval(30, 40), {31.0, 35.0});
  std::vector<ExprPtr> lineage(2);
  lineage[1] = std::make_shared<AggLookupExpr>(0, 0, std::vector<ExprPtr>{},
                                               ValueType::kDouble, "a");
  EvalContext ctx = ctx_;
  ctx.column_lineage = &lineage;

  Row row = {Value::Int64(7), Value::Double(999.0)};  // stale stored value
  auto ref = Col(1, "u", ValueType::kDouble);

  // Main evaluation reads the stored value.
  EXPECT_DOUBLE_EQ(ref->Eval(row, ctx).dbl(), 999.0);
  // Trial evaluation re-derives through lineage.
  ctx.trial = 0;
  EXPECT_DOUBLE_EQ(ref->Eval(row, ctx).dbl(), 31.0);
  ctx.trial = 1;
  EXPECT_DOUBLE_EQ(ref->Eval(row, ctx).dbl(), 35.0);
  // Interval evaluation uses the lineage range.
  ctx.trial = -1;
  const Interval r = ref->EvalInterval(row, ctx);
  EXPECT_DOUBLE_EQ(r.lo, 30);
  EXPECT_DOUBLE_EQ(r.hi, 40);
  // DependsOnUncertain sees through the lineage table.
  EXPECT_TRUE(ref->DependsOnUncertain(&lineage));
  EXPECT_FALSE(Col(0, "k", ValueType::kInt64)->DependsOnUncertain(&lineage));
}

TEST_F(ExprTest, RemapColumns) {
  auto expr = Add(Col(0, "a", ValueType::kInt64), Col(2, "c", ValueType::kInt64));
  auto remapped = RemapColumns(expr, {3, -1, 0});
  Row row = {Value::Int64(100), Value::Int64(0), Value::Int64(0),
             Value::Int64(5)};
  // a moved to index 3, c moved to index 0.
  EXPECT_EQ(remapped->Eval(row, ctx_).int64(), 105);
}

TEST_F(ExprTest, ToStringRendersTree) {
  auto e = Gt(Add(Col(0, "x", ValueType::kInt64), Lit(int64_t{1})), Lit(2.0));
  EXPECT_EQ(e->ToString(), "((x + 1) > 2)");
}

TEST_F(ExprTest, RegistryLookupErrors) {
  EXPECT_FALSE(functions_->FindScalar("no_such_fn").ok());
  EXPECT_FALSE(functions_->FindAggregate("no_such_agg").ok());
  EXPECT_TRUE(functions_->HasScalar("sqrt"));
  EXPECT_TRUE(functions_->HasAggregate("geomean"));
}

}  // namespace
}  // namespace iolap
