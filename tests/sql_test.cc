// Tests for the SQL frontend: lexer, parser, binder, and end-to-end SQL
// execution checked against the reference evaluator.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "catalog/catalog.h"
#include "common/random.h"
#include "exec/reference.h"
#include "iolap/session.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace iolap {
namespace {

// ----------------------------------------------------------------- lexer

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, b.c FROM t WHERE x >= 1.5 AND y <> 'it''s'");
  ASSERT_TRUE(tokens.ok()) << tokens.status();
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ((*tokens)[0].text, "select");  // lower-cased
  EXPECT_EQ((*tokens)[3].text, "b");
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kDot);
  // The escaped string literal.
  bool found = false;
  for (const Token& t : *tokens) {
    if (t.kind == TokenKind::kString) {
      EXPECT_EQ(t.text, "it's");
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, NumbersIntAndFloat) {
  auto tokens = Tokenize("42 3.5 .25 1e3");
  ASSERT_TRUE(tokens.ok());
  EXPECT_FALSE((*tokens)[0].is_float);
  EXPECT_TRUE((*tokens)[1].is_float);
  EXPECT_TRUE((*tokens)[2].is_float);
  EXPECT_TRUE((*tokens)[3].is_float);
}

TEST(LexerTest, ComparisonOperators) {
  auto tokens = Tokenize("< <= > >= = <> !=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kLess);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kLessEq);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kGreater);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kGreaterEq);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kEq);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kNotEq);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kNotEq);
}

TEST(LexerTest, LineComments) {
  auto tokens = Tokenize("a -- a comment\n b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "b");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ? b").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

// ---------------------------------------------------------------- parser

TEST(ParserTest, SimpleSelect) {
  auto stmt = ParseSelect("SELECT avg(play_time) AS p FROM sessions");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ((*stmt)->items.size(), 1u);
  EXPECT_EQ((*stmt)->items[0].alias, "p");
  EXPECT_EQ((*stmt)->items[0].expr->kind, AstExpr::Kind::kCall);
  ASSERT_EQ((*stmt)->from.size(), 1u);
  EXPECT_EQ((*stmt)->from[0].table, "sessions");
}

TEST(ParserTest, SbiNestedSubquery) {
  auto stmt = ParseSelect(
      "SELECT AVG(play_time) FROM sessions "
      "WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_NE((*stmt)->where, nullptr);
  const AstExpr& where = *(*stmt)->where;
  EXPECT_EQ(where.kind, AstExpr::Kind::kBinary);
  EXPECT_EQ(where.name, ">");
  EXPECT_EQ(where.args[1]->kind, AstExpr::Kind::kSubquery);
}

TEST(ParserTest, GroupByHaving) {
  auto stmt = ParseSelect(
      "SELECT site, SUM(play_time) s FROM sessions GROUP BY site "
      "HAVING SUM(play_time) > 100");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ((*stmt)->group_by.size(), 1u);
  ASSERT_NE((*stmt)->having, nullptr);
  EXPECT_EQ((*stmt)->items[1].alias, "s");
}

TEST(ParserTest, CommaJoinAndAliases) {
  auto stmt = ParseSelect(
      "SELECT count(*) FROM lineorder l, part p WHERE l.partkey = p.partkey");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ((*stmt)->from.size(), 2u);
  EXPECT_EQ((*stmt)->from[0].alias, "l");
  EXPECT_EQ((*stmt)->from[1].alias, "p");
}

TEST(ParserTest, ExplicitJoinOn) {
  auto stmt = ParseSelect(
      "SELECT count(*) FROM lineorder JOIN part ON lineorder.partkey = "
      "part.partkey WHERE part.size > 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ((*stmt)->from.size(), 2u);
  // ON condition folded into WHERE as a conjunct.
  std::vector<AstExprPtr> conjuncts;
  std::function<void(const AstExprPtr&)> flatten = [&](const AstExprPtr& e) {
    if (e->kind == AstExpr::Kind::kBinary && e->name == "and") {
      flatten(e->args[0]);
      flatten(e->args[1]);
    } else {
      conjuncts.push_back(e);
    }
  };
  flatten((*stmt)->where);
  EXPECT_EQ(conjuncts.size(), 2u);
}

TEST(ParserTest, InSubquery) {
  auto stmt = ParseSelect(
      "SELECT sum(x) FROM t WHERE k IN (SELECT k FROM t GROUP BY k HAVING "
      "sum(q) > 300)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ((*stmt)->where->kind, AstExpr::Kind::kIn);
  EXPECT_NE((*stmt)->where->subquery->having, nullptr);
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = ParseSelect("SELECT a + b * c - d FROM t");
  ASSERT_TRUE(stmt.ok());
  // ((a + (b*c)) - d)
  EXPECT_EQ((*stmt)->items[0].expr->ToString(), "((a + (b * c)) - d)");
}

TEST(ParserTest, NotAndLogic) {
  auto stmt =
      ParseSelect("SELECT count(*) FROM t WHERE NOT a > 1 AND b < 2 OR c = 3");
  ASSERT_TRUE(stmt.ok());
  // OR binds loosest: ((NOT(a>1) AND b<2) OR c=3)
  EXPECT_EQ((*stmt)->where->name, "or");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a").ok());                 // no FROM
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());    // dangling
  EXPECT_FALSE(ParseSelect("SELECT a FROM t GROUP site").ok());  // no BY
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra garbage ,").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT 2.5").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t ORDER a").ok());  // missing BY
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE x BETWEEN 1").ok());
}

TEST(ParserTest, BetweenDesugarsToConjunction) {
  auto stmt = ParseSelect("SELECT count(*) FROM t WHERE x BETWEEN 1 AND 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ((*stmt)->where->ToString(), "((x >= 1) and (x <= 5))");
}

TEST(ParserTest, InListDesugarsToOrChain) {
  auto stmt = ParseSelect("SELECT count(*) FROM t WHERE x IN (1, 2, 3)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ((*stmt)->where->ToString(),
            "(((x = 1) or (x = 2)) or (x = 3))");
}

TEST(ParserTest, OrderByAndLimit) {
  auto stmt = ParseSelect(
      "SELECT g, sum(v) s FROM t GROUP BY g ORDER BY s DESC, g LIMIT 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ((*stmt)->order_by.size(), 2u);
  EXPECT_TRUE((*stmt)->order_by[0].descending);
  EXPECT_FALSE((*stmt)->order_by[1].descending);
  EXPECT_EQ((*stmt)->limit, 10);
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  EXPECT_TRUE(ParseSelect("SELECT a FROM t;").ok());
}

// ---------------------------------------------------------------- binder

class SqlBindTest : public ::testing::Test {
 protected:
  SqlBindTest() : functions_(FunctionRegistry::Default()) {
    Rng rng(71);
    Table sessions(Schema({{"session_id", ValueType::kInt64},
                           {"buffer_time", ValueType::kDouble},
                           {"play_time", ValueType::kDouble},
                           {"site", ValueType::kInt64},
                           {"bytes", ValueType::kDouble}}));
    for (int i = 0; i < 500; ++i) {
      sessions.AddRow(
          {Value::Int64(i), Value::Double(5.0 + 60.0 * rng.NextDouble()),
           Value::Double(30.0 + 600.0 * rng.NextDouble()),
           Value::Int64(static_cast<int64_t>(rng.NextZipf(6, 0.7))),
           Value::Double(1000.0 * rng.NextDouble())});
    }
    EXPECT_TRUE(
        catalog_.RegisterTable("sessions", std::move(sessions), true).ok());

    Table sites(Schema({{"site", ValueType::kInt64},
                        {"region", ValueType::kString},
                        {"cdn", ValueType::kString}}));
    const char* regions[] = {"us", "eu", "apac"};
    const char* cdns[] = {"akamai", "level3"};
    for (int s = 0; s < 6; ++s) {
      sites.AddRow({Value::Int64(s), Value::String(regions[s % 3]),
                    Value::String(cdns[s % 2])});
    }
    EXPECT_TRUE(catalog_.RegisterTable("sites", std::move(sites)).ok());
  }

  Result<QueryPlan> Bind(const std::string& sql) {
    return BindSql(sql, catalog_, functions_);
  }

  Catalog catalog_;
  std::shared_ptr<FunctionRegistry> functions_;
};

TEST_F(SqlBindTest, GlobalAggregateSingleBlock) {
  auto plan = Bind("SELECT avg(play_time), count(*) FROM sessions");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->blocks.size(), 1u);
  EXPECT_EQ(plan->streamed_table, "sessions");
  EXPECT_EQ(plan->top().aggs.size(), 2u);
}

TEST_F(SqlBindTest, SbiTwoBlocks) {
  auto plan = Bind(
      "SELECT AVG(play_time) FROM sessions "
      "WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->blocks.size(), 2u);
  EXPECT_NE(plan->top().filter, nullptr);
  std::vector<const AggLookupExpr*> lookups;
  plan->top().filter->CollectAggLookups(&lookups);
  ASSERT_EQ(lookups.size(), 1u);
  EXPECT_EQ(lookups[0]->block_id(), 0);
}

TEST_F(SqlBindTest, JoinWithDimensionAndGroupBy) {
  auto plan = Bind(
      "SELECT region, avg(play_time) FROM sessions, sites "
      "WHERE sessions.site = sites.site GROUP BY region");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->blocks.size(), 1u);
  const Block& top = plan->top();
  ASSERT_EQ(top.inputs.size(), 2u);
  EXPECT_EQ(top.inputs[1].prefix_key_cols.size(), 1u);
  EXPECT_EQ(top.group_by.size(), 1u);
}

TEST_F(SqlBindTest, CorrelatedSubqueryDecorrelates) {
  auto plan = Bind(
      "SELECT sum(play_time) FROM sessions s "
      "WHERE s.buffer_time > (SELECT 1.2 * avg(s2.buffer_time) FROM "
      "sessions s2 WHERE s2.site = s.site)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->blocks.size(), 2u);
  // The subquery became a per-site grouped block.
  EXPECT_EQ(plan->blocks[0].group_by.size(), 1u);
  std::vector<const AggLookupExpr*> lookups;
  plan->top().filter->CollectAggLookups(&lookups);
  ASSERT_EQ(lookups.size(), 1u);
  EXPECT_EQ(lookups[0]->key_exprs().size(), 1u);
}

TEST_F(SqlBindTest, InSubqueryWithHavingPushesPredicate) {
  auto plan = Bind(
      "SELECT avg(play_time) FROM sessions WHERE site IN "
      "(SELECT site FROM sessions GROUP BY site HAVING avg(buffer_time) > "
      "30)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->blocks.size(), 2u);
  // The grouped block has no filter (membership stays append-only)...
  EXPECT_EQ(plan->blocks[0].filter, nullptr);
  EXPECT_EQ(plan->blocks[0].group_by.size(), 1u);
  // ... and the consumer joins it and filters on the pushed HAVING.
  const Block& top = plan->top();
  ASSERT_EQ(top.inputs.size(), 2u);
  EXPECT_EQ(top.inputs[1].kind, BlockInput::Kind::kBlockOutput);
  ASSERT_NE(top.filter, nullptr);
}

TEST_F(SqlBindTest, HavingCreatesPostBlock) {
  auto plan = Bind(
      "SELECT site, sum(play_time) AS total FROM sessions GROUP BY site "
      "HAVING sum(play_time) > 0.2 * (SELECT sum(play_time) FROM sessions)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // agg block + scalar subquery block + post block.
  EXPECT_EQ(plan->blocks.size(), 3u);
  const Block& top = plan->top();
  EXPECT_FALSE(top.has_aggregate());
  ASSERT_NE(top.filter, nullptr);
  EXPECT_EQ(top.output_schema.column(1).name, "total");
}

TEST_F(SqlBindTest, ComplexItemsCreatePostBlock) {
  auto plan = Bind(
      "SELECT sum(play_time) / sum(bytes) FROM sessions");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->blocks.size(), 2u);
  EXPECT_FALSE(plan->top().has_aggregate());
  EXPECT_EQ(plan->blocks[0].aggs.size(), 2u);
}

TEST_F(SqlBindTest, UdafInSql) {
  auto plan = Bind("SELECT geomean(play_time) FROM sessions");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->top().aggs[0].fn->name(), "geomean");
}

TEST_F(SqlBindTest, ScalarUdfInSql) {
  auto plan = Bind("SELECT avg(sqrt(play_time)) FROM sessions");
  ASSERT_TRUE(plan.ok()) << plan.status();
}

TEST_F(SqlBindTest, BindErrors) {
  EXPECT_FALSE(Bind("SELECT avg(nope) FROM sessions").ok());
  EXPECT_FALSE(Bind("SELECT avg(play_time) FROM nonexistent").ok());
  EXPECT_FALSE(Bind("SELECT unknown_fn(play_time) FROM sessions").ok());
  // min over the streamed relation: rejected by the smoothness rule.
  Session session(&catalog_);
  EXPECT_FALSE(session.Sql("SELECT min(play_time) FROM sessions").ok());
  // Ambiguous column.
  EXPECT_FALSE(
      Bind("SELECT count(*) FROM sessions, sites WHERE site > 1").ok());
  // Aggregate in WHERE.
  EXPECT_FALSE(
      Bind("SELECT count(*) FROM sessions WHERE sum(play_time) > 1").ok());
}

// --------------------------------------------- end-to-end SQL execution

class SqlExecTest : public SqlBindTest {
 protected:
  // Runs `sql` incrementally and checks every partial result against the
  // reference evaluation of the same SQL on the accumulated data.
  void CheckSql(const std::string& sql, size_t batches = 6) {
    EngineOptions options;
    options.num_trials = 20;
    options.num_batches = batches;
    options.seed = 13;
    Session session(&catalog_, options, functions_);
    auto query = session.Sql(sql);
    ASSERT_TRUE(query.ok()) << sql << "\n" << query.status();

    auto plan = Bind(sql);
    ASSERT_TRUE(plan.ok());
    const Table& fact = *(*catalog_.Find("sessions"))->table;
    std::vector<Row> accumulated;
    QueryController& controller = (*query)->controller();
    Status status = (*query)->Run([&](const PartialResult& partial) {
      for (uint64_t id : controller.layout().batches[partial.batch]) {
        accumulated.push_back(fact.row(id));
      }
      const double scale =
          static_cast<double>(fact.num_rows()) / accumulated.size();
      auto expected = EvaluateReference(*plan, catalog_, accumulated, scale);
      EXPECT_TRUE(expected.ok()) << expected.status();
      EXPECT_EQ(partial.rows.num_rows(), expected->num_rows())
          << sql << " batch " << partial.batch;
      for (size_t r = 0; r < partial.rows.num_rows(); ++r) {
        for (size_t c = 0; c < partial.rows.row(r).size(); ++c) {
          const Value& a = partial.rows.row(r)[c];
          const Value& e = expected->row(r)[c];
          if (a.is_numeric() && e.is_numeric()) {
            EXPECT_NEAR(a.AsDouble(), e.AsDouble(),
                        1e-7 * std::max(1.0, std::fabs(e.AsDouble())))
                << sql << " batch " << partial.batch << " row " << r
                << " col " << c;
          } else {
            EXPECT_TRUE(a.Equals(e)) << sql;
          }
        }
      }
      return BatchAction::kContinue;
    });
    ASSERT_TRUE(status.ok()) << status;
  }
};

TEST_F(SqlExecTest, GlobalAggregates) {
  CheckSql("SELECT avg(play_time), sum(bytes), count(*) FROM sessions");
}

TEST_F(SqlExecTest, FilteredAggregate) {
  CheckSql(
      "SELECT sum(play_time) FROM sessions WHERE buffer_time < 30 AND "
      "bytes > 100");
}

TEST_F(SqlExecTest, GroupByWithJoin) {
  CheckSql(
      "SELECT region, avg(play_time), count(*) FROM sessions, sites "
      "WHERE sessions.site = sites.site GROUP BY region");
}

TEST_F(SqlExecTest, Sbi) {
  CheckSql(
      "SELECT AVG(play_time) FROM sessions "
      "WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)");
}

TEST_F(SqlExecTest, CorrelatedSubquery) {
  CheckSql(
      "SELECT sum(play_time) FROM sessions s "
      "WHERE s.buffer_time > (SELECT 1.2 * avg(s2.buffer_time) FROM "
      "sessions s2 WHERE s2.site = s.site)");
}

TEST_F(SqlExecTest, InSubqueryWithHaving) {
  CheckSql(
      "SELECT avg(play_time) FROM sessions WHERE site IN "
      "(SELECT site FROM sessions GROUP BY site HAVING avg(buffer_time) > "
      "33)");
}

TEST_F(SqlExecTest, HavingAgainstScalarSubquery) {
  CheckSql(
      "SELECT site, sum(play_time) AS total FROM sessions GROUP BY site "
      "HAVING sum(play_time) > 0.15 * (SELECT sum(play_time) FROM "
      "sessions)");
}

TEST_F(SqlExecTest, RatioOfAggregates) {
  CheckSql("SELECT sum(play_time) / sum(bytes) FROM sessions");
}

TEST_F(SqlExecTest, UdfAndUdaf) {
  CheckSql(
      "SELECT geomean(play_time), rms(buffer_time), avg(sqrt(bytes)) "
      "FROM sessions");
}

TEST_F(SqlExecTest, ArithmeticInAggArgs) {
  CheckSql(
      "SELECT sum(play_time * (1 - buffer_time / 100.0)) FROM sessions "
      "WHERE buffer_time < 90");
}

}  // namespace
}  // namespace iolap
