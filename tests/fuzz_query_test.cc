// Differential fuzzing: randomly generated query plans (random schemas,
// filters, group-bys, aggregates and nested-subquery comparisons) executed
// incrementally under random engine configurations, checked batch-by-batch
// against the reference evaluator. The strongest form of the Theorem 1
// exactness property this repo asserts.

#include <gtest/gtest.h>

#include <cmath>

#include "catalog/catalog.h"
#include "common/random.h"
#include "exec/reference.h"
#include "iolap/query_controller.h"
#include "plan/plan_builder.h"

namespace iolap {
namespace {

// Random fact table: 2 numeric measures, 2 integer dimensions.
Table RandomFact(Rng* rng, size_t rows) {
  Table t(Schema({{"m1", ValueType::kDouble},
                  {"m2", ValueType::kDouble},
                  {"d1", ValueType::kInt64},
                  {"d2", ValueType::kInt64}}));
  for (size_t i = 0; i < rows; ++i) {
    t.AddRow({rng->NextBounded(10) == 0
                  ? Value::Null()
                  : Value::Double(rng->NextDouble() * 100 - 20),
              Value::Double(rng->NextExponential(0.1)),
              Value::Int64(static_cast<int64_t>(rng->NextBounded(5))),
              Value::Int64(static_cast<int64_t>(rng->NextZipf(7, 0.8)))});
  }
  return t;
}

// A random deterministic predicate over the fact columns.
ExprPtr RandomDetPredicate(Rng* rng, BlockBuilder* b) {
  const char* cols[] = {"m1", "m2", "d1", "d2"};
  const char* col = cols[rng->NextBounded(4)];
  ExprPtr lhs = b->ColRef(col);
  ExprPtr rhs = Lit(rng->NextDouble() * 50);
  switch (rng->NextBounded(4)) {
    case 0:
      return Gt(std::move(lhs), std::move(rhs));
    case 1:
      return Lt(std::move(lhs), std::move(rhs));
    case 2:
      return Ge(std::move(lhs), std::move(rhs));
    default:
      return Le(std::move(lhs), std::move(rhs));
  }
}

// A random aggregate spec.
void RandomAgg(Rng* rng, BlockBuilder* b, const std::string& name) {
  const char* fns[] = {"sum", "avg", "count", "stddev"};
  const char* measures[] = {"m1", "m2"};
  const char* fn = fns[rng->NextBounded(4)];
  ExprPtr arg = std::string(fn) == "count"
                    ? Lit(int64_t{1})
                    : b->ColRef(measures[rng->NextBounded(2)]);
  if (rng->NextBounded(3) == 0 && std::string(fn) != "count") {
    arg = Mul(std::move(arg), Lit(0.5 + rng->NextDouble()));
  }
  b->Agg(fn, std::move(arg), name);
}

// Builds a random plan: optionally an inner (scalar or keyed) aggregate
// block, then an outer block whose filter may compare against it.
Result<QueryPlan> RandomPlan(Rng* rng, const Catalog& catalog,
                             std::shared_ptr<FunctionRegistry> functions) {
  PlanBuilder pb(&catalog, functions);
  const bool nested = rng->NextBounded(3) != 0;
  const bool correlated = nested && rng->NextBounded(2) == 0;

  int inner_id = -1;
  if (nested) {
    auto& inner = pb.NewBlock("inner");
    inner.Scan("fact");
    if (rng->NextBounded(2) == 0) {
      inner.Filter(RandomDetPredicate(rng, &inner));
    }
    if (correlated) inner.GroupBy("d1");
    const char* fns[] = {"avg", "sum"};
    inner.Agg(fns[rng->NextBounded(2)], inner.ColRef("m2"), "ia");
    inner_id = inner.id();
  }

  auto& outer = pb.NewBlock("outer");
  outer.Scan("fact");
  std::vector<ExprPtr> conjuncts;
  if (rng->NextBounded(2) == 0) {
    conjuncts.push_back(RandomDetPredicate(rng, &outer));
  }
  if (nested) {
    ExprPtr sub = correlated
                      ? outer.SubqueryRef(inner_id, "ia", {outer.ColRef("d1")})
                      : outer.SubqueryRef(inner_id, "ia");
    ExprPtr scaled = Mul(Lit(0.5 + rng->NextDouble()), std::move(sub));
    ExprPtr lhs = outer.ColRef(rng->NextBounded(2) == 0 ? "m2" : "m1");
    conjuncts.push_back(rng->NextBounded(2) == 0
                            ? Gt(std::move(lhs), std::move(scaled))
                            : Le(std::move(lhs), std::move(scaled)));
  }
  if (!conjuncts.empty()) outer.Filter(Conjunction(std::move(conjuncts)));
  if (rng->NextBounded(2) == 0) outer.GroupBy("d2");
  RandomAgg(rng, &outer, "a0");
  if (rng->NextBounded(2) == 0) RandomAgg(rng, &outer, "a1");
  return pb.Build();
}

class FuzzQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzQueryTest, RandomPlansStayExactEveryBatch) {
  Rng rng(123457ull * (GetParam() + 1));
  for (int iteration = 0; iteration < 6; ++iteration) {
    Catalog catalog;
    const size_t rows = 100 + rng.NextBounded(400);
    ASSERT_TRUE(
        catalog.RegisterTable("fact", RandomFact(&rng, rows), true).ok());
    auto functions = FunctionRegistry::Default();
    auto plan = RandomPlan(&rng, catalog, functions);
    ASSERT_TRUE(plan.ok()) << plan.status();

    EngineOptions options;
    options.num_batches = 2 + rng.NextBounded(8);
    options.num_trials = static_cast<int>(rng.NextBounded(16));
    options.slack = 0.5 * rng.NextBounded(5);
    options.seed = rng.NextUint64();
    options.tuple_partition = rng.NextBounded(4) != 0;
    options.lazy_lineage = rng.NextBounded(4) != 0;
    if (rng.NextBounded(5) == 0) options.mode = ExecutionMode::kHda;
    if (rng.NextBounded(4) == 0) {
      options.error_method = ErrorMethod::kAnalytic;
    }

    QueryController controller(&catalog, *plan, options);
    ASSERT_TRUE(controller.Init().ok());
    const Table& fact = *(*catalog.Find("fact"))->table;
    std::vector<Row> accumulated;
    Status status = controller.Run([&](const PartialResult& partial) {
      for (uint64_t id : controller.layout().batches[partial.batch]) {
        accumulated.push_back(fact.row(id));
      }
      const double scale =
          static_cast<double>(fact.num_rows()) / accumulated.size();
      auto expected = EvaluateReference(*plan, catalog, accumulated, scale);
      EXPECT_TRUE(expected.ok());
      EXPECT_EQ(partial.rows.num_rows(), expected->num_rows())
          << "batch " << partial.batch << "\n" << plan->ToString();
      if (partial.rows.num_rows() != expected->num_rows()) {
        return BatchAction::kStop;
      }
      for (size_t r = 0; r < partial.rows.num_rows(); ++r) {
        for (size_t c = 0; c < partial.rows.row(r).size(); ++c) {
          const Value& a = partial.rows.row(r)[c];
          const Value& e = expected->row(r)[c];
          if (a.is_numeric() && e.is_numeric()) {
            EXPECT_NEAR(a.AsDouble(), e.AsDouble(),
                        1e-6 * std::max(1.0, std::fabs(e.AsDouble())))
                << "batch " << partial.batch << " row " << r << " col " << c
                << "\n" << plan->ToString();
          } else {
            EXPECT_EQ(a.is_null(), e.is_null()) << plan->ToString();
          }
        }
      }
      return BatchAction::kContinue;
    });
    ASSERT_TRUE(status.ok()) << status;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzQueryTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace iolap
