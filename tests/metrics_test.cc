// Unit tests for QueryMetrics aggregation helpers and Session::Explain.

#include <gtest/gtest.h>

#include "common/random.h"
#include "iolap/metrics.h"
#include "iolap/session.h"

namespace iolap {
namespace {

QueryMetrics MakeMetrics() {
  QueryMetrics metrics;
  for (int b = 0; b < 4; ++b) {
    BatchMetrics bm;
    bm.batch = b;
    bm.latency_sec = 0.1 * (b + 1);
    bm.cpu_sec = 0.2 * (b + 1);
    bm.fraction_processed = 0.25 * (b + 1);
    bm.input_rows = 100;
    bm.recomputed_rows = 10 * b;
    bm.join_state_bytes = 1000 + 100 * b;
    bm.other_state_bytes = 500 - 50 * b;
    bm.shipped_bytes = 2000;
    bm.modeled_shipped_bytes = 1500;
    bm.exchange_messages = 12;
    bm.exchange_retries = b == 1 ? 2 : 0;
    bm.shard_deaths = b == 2 ? 1 : 0;
    bm.failure_recoveries = b == 2 ? 3 : 0;
    metrics.batches.push_back(bm);
  }
  return metrics;
}

TEST(MetricsTest, Totals) {
  const QueryMetrics metrics = MakeMetrics();
  EXPECT_NEAR(metrics.TotalLatencySec(), 1.0, 1e-9);
  EXPECT_EQ(metrics.TotalRecomputedRows(), 60u);
  EXPECT_EQ(metrics.TotalShippedBytes(), 8000u);
  EXPECT_EQ(metrics.MaxShippedBytesPerBatch(), 2000u);
  EXPECT_NEAR(metrics.AvgShippedBytesPerBatch(), 2000.0, 1e-9);
  EXPECT_EQ(metrics.TotalModeledShippedBytes(), 6000u);
  EXPECT_EQ(metrics.TotalExchangeMessages(), 48u);
  EXPECT_EQ(metrics.TotalExchangeRetries(), 2);
  EXPECT_EQ(metrics.TotalShardDeaths(), 1);
  EXPECT_EQ(metrics.TotalFailureRecoveries(), 3);
  EXPECT_EQ(metrics.PeakJoinStateBytes(), 1300u);
  EXPECT_EQ(metrics.PeakOtherStateBytes(), 500u);
  EXPECT_NEAR(metrics.AvgOtherStateBytes(), 425.0, 1e-9);
  // cpu/latency ≈ 2: the batches "used" two workers' worth of CPU.
  EXPECT_NEAR(metrics.TotalCpuSec(), 2.0, 1e-9);
}

TEST(MetricsTest, LatencyToFraction) {
  const QueryMetrics metrics = MakeMetrics();
  // Cumulative latencies: 0.1, 0.3, 0.6, 1.0 at fractions .25/.5/.75/1.
  EXPECT_NEAR(metrics.LatencyToFraction(0.25), 0.1, 1e-9);
  EXPECT_NEAR(metrics.LatencyToFraction(0.30), 0.3, 1e-9);
  EXPECT_NEAR(metrics.LatencyToFraction(1.0), 1.0, 1e-9);
}

TEST(MetricsTest, LatencyToFractionKeysOnFractionNotBatchIndex) {
  // Uneven batches: the target fraction is reached by whichever batch's
  // fraction_processed crosses it, not by batch position. Batch 0 already
  // covers 60% of the data here.
  QueryMetrics metrics;
  const double fractions[] = {0.6, 0.7, 1.0};
  for (int b = 0; b < 3; ++b) {
    BatchMetrics bm;
    bm.batch = b;
    bm.latency_sec = 0.1;
    bm.fraction_processed = fractions[b];
    metrics.batches.push_back(bm);
  }
  EXPECT_NEAR(metrics.LatencyToFraction(0.05), 0.1, 1e-9);
  EXPECT_NEAR(metrics.LatencyToFraction(0.60), 0.1, 1e-9);
  EXPECT_NEAR(metrics.LatencyToFraction(0.65), 0.2, 1e-9);
  EXPECT_NEAR(metrics.LatencyToFraction(0.99), 0.3, 1e-9);
}

TEST(MetricsTest, SummaryReportsMeasuredAndModeledBytes) {
  const QueryMetrics metrics = MakeMetrics();
  const std::string summary = metrics.Summary();
  // Measured exchange bytes are the headline number; the cost model's
  // prediction rides along for comparison.
  EXPECT_NE(summary.find("shipped="), std::string::npos);
  EXPECT_NE(summary.find("modeled="), std::string::npos);
  // Exchange-fault detail appears because retries/deaths are nonzero...
  EXPECT_NE(summary.find("exchange_retries=2"), std::string::npos);
  EXPECT_NE(summary.find("shard_deaths=1"), std::string::npos);
  // ... and stays off the healthy-run line.
  QueryMetrics healthy = MakeMetrics();
  for (auto& bm : healthy.batches) {
    bm.exchange_retries = 0;
    bm.shard_deaths = 0;
  }
  EXPECT_EQ(healthy.Summary().find("exchange_retries"), std::string::npos);
}

TEST(MetricsTest, EmptyMetrics) {
  QueryMetrics metrics;
  EXPECT_DOUBLE_EQ(metrics.TotalLatencySec(), 0.0);
  EXPECT_EQ(metrics.TotalRecomputedRows(), 0u);
  EXPECT_DOUBLE_EQ(metrics.AvgShippedBytesPerBatch(), 0.0);
  EXPECT_FALSE(metrics.Summary().empty());
}

TEST(ExplainTest, RendersPlanAndAnnotations) {
  Rng rng(3);
  Catalog catalog;
  Table t(Schema({{"v", ValueType::kDouble}, {"g", ValueType::kInt64}}));
  for (int i = 0; i < 50; ++i) {
    t.AddRow({Value::Double(rng.NextDouble()),
              Value::Int64(static_cast<int64_t>(rng.NextBounded(3)))});
  }
  ASSERT_TRUE(catalog.RegisterTable("t", std::move(t), true).ok());
  Session session(&catalog);
  auto explained = session.Explain(
      "SELECT avg(v) FROM t WHERE v > (SELECT avg(v) FROM t)");
  ASSERT_TRUE(explained.ok()) << explained.status();
  // The subquery block and the outer block both appear...
  EXPECT_NE(explained->find("Block 0"), std::string::npos);
  EXPECT_NE(explained->find("Block 1"), std::string::npos);
  // ... with the SBI uncertainty structure: the outer filter is uncertain
  // and would force HDA re-evaluation.
  EXPECT_NE(explained->find("uncertain-filter"), std::string::npos);
  EXPECT_NE(explained->find("hda-recomputes"), std::string::npos);
  EXPECT_NE(explained->find("dynamic"), std::string::npos);

  EXPECT_FALSE(session.Explain("SELECT nope FROM nothing").ok());
}

}  // namespace
}  // namespace iolap
