// Workload tests: every TPC-H and Conviva benchmark query must compile,
// run incrementally, and match the reference evaluation at every batch.

#include <gtest/gtest.h>

#include <cmath>

#include "exec/reference.h"
#include "sql/binder.h"
#include "workloads/experiment_driver.h"

namespace iolap {
namespace {

// Small configs so the differential check stays fast.
Result<std::shared_ptr<Catalog>> SmallTpch(const std::string& streamed) {
  TpchConfig config;
  config = config.Scaled(0.05);
  return MakeTpchCatalog(config, streamed);
}

Result<std::shared_ptr<Catalog>> SmallConviva() {
  ConvivaConfig config;
  config = config.Scaled(0.03);
  return MakeConvivaCatalog(config);
}

void CheckQueryAgainstReference(std::shared_ptr<Catalog> catalog,
                                const BenchQuery& query) {
  SCOPED_TRACE(query.id + ": " + query.sql);
  auto functions = BenchFunctions();
  auto plan = BindSql(query.sql, *catalog, functions);
  ASSERT_TRUE(plan.ok()) << plan.status();

  EngineOptions options;
  options.num_trials = 16;
  options.num_batches = 5;
  options.seed = 77;
  Session session(catalog.get(), options, functions);
  auto compiled = session.Sql(query.sql);
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  const Table& fact = *(*catalog->Find(query.streamed_table))->table;
  std::vector<Row> accumulated;
  QueryController& controller = (*compiled)->controller();
  Status status = (*compiled)->Run([&](const PartialResult& partial)
                                       -> BatchAction {
    for (uint64_t id : controller.layout().batches[partial.batch]) {
      accumulated.push_back(fact.row(id));
    }
    const double scale =
        static_cast<double>(fact.num_rows()) / accumulated.size();
    auto expected = EvaluateReference(*plan, *catalog, accumulated, scale);
    EXPECT_TRUE(expected.ok()) << expected.status();
    EXPECT_EQ(partial.rows.num_rows(), expected->num_rows())
        << "batch " << partial.batch;
    if (partial.rows.num_rows() != expected->num_rows()) {
      return BatchAction::kStop;
    }
    for (size_t r = 0; r < partial.rows.num_rows(); ++r) {
      for (size_t c = 0; c < partial.rows.row(r).size(); ++c) {
        const Value& a = partial.rows.row(r)[c];
        const Value& e = expected->row(r)[c];
        if (a.is_numeric() && e.is_numeric()) {
          EXPECT_NEAR(a.AsDouble(), e.AsDouble(),
                      1e-6 * std::max(1.0, std::fabs(e.AsDouble())))
              << "batch " << partial.batch << " row " << r << " col " << c;
        } else {
          EXPECT_TRUE(a.Equals(e))
              << a.ToString() << " vs " << e.ToString();
        }
      }
    }
    return BatchAction::kContinue;
  });
  ASSERT_TRUE(status.ok()) << status;
  // Final batch: exact result.
  EXPECT_DOUBLE_EQ((*compiled)->last_result().fraction_processed, 1.0);
}

class TpchQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchQueryTest, MatchesReferenceEveryBatch) {
  const BenchQuery query = TpchQueries()[GetParam()];
  auto catalog = SmallTpch(query.streamed_table);
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  CheckQueryAgainstReference(*catalog, query);
}

std::string TpchName(const ::testing::TestParamInfo<int>& info) {
  return TpchQueries()[info.param].id;
}

INSTANTIATE_TEST_SUITE_P(AllTpch, TpchQueryTest, ::testing::Range(0, 10),
                         TpchName);

class ConvivaQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(ConvivaQueryTest, MatchesReferenceEveryBatch) {
  const BenchQuery query = ConvivaQueries()[GetParam()];
  auto catalog = SmallConviva();
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  CheckQueryAgainstReference(*catalog, query);
}

std::string ConvivaName(const ::testing::TestParamInfo<int>& info) {
  return ConvivaQueries()[info.param].id;
}

INSTANTIATE_TEST_SUITE_P(AllConviva, ConvivaQueryTest, ::testing::Range(0, 12),
                         ConvivaName);

// The HDA and OPT1-only modes must also stay exact on a nested query from
// each workload (the bench comparisons rely on all modes being correct).
TEST(WorkloadModesTest, NestedQueriesExactUnderAllModes) {
  for (bool conviva : {false, true}) {
    const BenchQuery query =
        conviva ? FindConvivaQuery("c2") : FindTpchQuery("q17");
    auto catalog = conviva ? SmallConviva() : SmallTpch(query.streamed_table);
    ASSERT_TRUE(catalog.ok());
    auto functions = BenchFunctions();
    auto plan = BindSql(query.sql, **catalog, functions);
    ASSERT_TRUE(plan.ok()) << plan.status();
    const Table& fact = *(*(*catalog)->Find(query.streamed_table))->table;

    for (auto [mode, opt1, opt2] :
         {std::tuple{ExecutionMode::kHda, false, false},
          std::tuple{ExecutionMode::kIolap, true, false},
          std::tuple{ExecutionMode::kIolap, true, true}}) {
      EngineOptions options;
      options.mode = mode;
      options.tuple_partition = opt1;
      options.lazy_lineage = opt2;
      options.num_trials = 10;
      options.num_batches = 4;
      options.seed = 5;
      Session session(catalog->get(), options, functions);
      auto compiled = session.Sql(query.sql);
      ASSERT_TRUE(compiled.ok()) << compiled.status();
      ASSERT_TRUE((*compiled)->Run(nullptr).ok());
      auto expected = EvaluateReference(*plan, **catalog, fact.rows(), 1.0);
      ASSERT_TRUE(expected.ok());
      const Table& actual = (*compiled)->last_result().rows;
      ASSERT_EQ(actual.num_rows(), expected->num_rows()) << query.id;
      for (size_t r = 0; r < actual.num_rows(); ++r) {
        for (size_t c = 0; c < actual.row(r).size(); ++c) {
          const Value& a = actual.row(r)[c];
          const Value& e = expected->row(r)[c];
          if (a.is_numeric() && e.is_numeric()) {
            EXPECT_NEAR(a.AsDouble(), e.AsDouble(),
                        1e-6 * std::max(1.0, std::fabs(e.AsDouble())));
          }
        }
      }
    }
  }
}

// Generator sanity: scaled configs, schema shape, reproducibility.
TEST(GeneratorTest, TpchShapes) {
  TpchConfig config;
  config = config.Scaled(0.02);
  auto catalog = MakeTpchCatalog(config, "lineorder");
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  EXPECT_TRUE((*catalog)->Has("lineorder"));
  EXPECT_TRUE((*(*catalog)->Find("lineorder"))->streamed);
  EXPECT_FALSE((*(*catalog)->Find("part"))->streamed);
  EXPECT_EQ((*(*catalog)->Find("lineorder"))->table->num_rows(),
            config.lineorder_rows);
  EXPECT_EQ((*(*catalog)->Find("region"))->table->num_rows(), 5u);
}

TEST(GeneratorTest, TpchDeterministicUnderSeed) {
  TpchConfig config;
  config = config.Scaled(0.01);
  auto a = MakeTpchCatalog(config, "lineorder");
  auto b = MakeTpchCatalog(config, "lineorder");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const Table& ta = *(*(*a)->Find("lineorder"))->table;
  const Table& tb = *(*(*b)->Find("lineorder"))->table;
  ASSERT_EQ(ta.num_rows(), tb.num_rows());
  for (size_t r = 0; r < ta.num_rows(); ++r) {
    EXPECT_TRUE(RowEq()(ta.row(r), tb.row(r)));
  }
}

TEST(GeneratorTest, TpchUnknownStreamRejected) {
  TpchConfig config;
  config = config.Scaled(0.01);
  EXPECT_FALSE(MakeTpchCatalog(config, "no_such_table").ok());
}

TEST(GeneratorTest, ConvivaShapes) {
  ConvivaConfig config;
  config = config.Scaled(0.02);
  auto catalog = MakeConvivaCatalog(config);
  ASSERT_TRUE(catalog.ok());
  const Table& sessions = *(*(*catalog)->Find("sessions"))->table;
  EXPECT_EQ(sessions.num_rows(), config.sessions);
  // Buffering / play time anti-correlation: sessions with above-median
  // buffering should have lower average play time.
  double buf_sum = 0;
  for (const Row& row : sessions.rows()) buf_sum += row[5].AsDouble();
  const double buf_avg = buf_sum / sessions.num_rows();
  double slow_play = 0, fast_play = 0;
  size_t slow_n = 0, fast_n = 0;
  for (const Row& row : sessions.rows()) {
    if (row[5].AsDouble() > buf_avg) {
      slow_play += row[6].AsDouble();
      ++slow_n;
    } else {
      fast_play += row[6].AsDouble();
      ++fast_n;
    }
  }
  ASSERT_GT(slow_n, 0u);
  ASSERT_GT(fast_n, 0u);
  EXPECT_LT(slow_play / slow_n, fast_play / fast_n);
}

TEST(GeneratorTest, ConvivaUdfsRegistered) {
  auto functions = FunctionRegistry::Default();
  RegisterConvivaUdfs(functions.get());
  EXPECT_TRUE(functions->HasScalar("engagement_score"));
  EXPECT_TRUE(functions->HasScalar("is_hd"));
  auto is_hd = functions->FindScalar("is_hd");
  ASSERT_TRUE(is_hd.ok());
  EXPECT_EQ((*is_hd)->eval({Value::Double(3000)}).int64(), 1);
  EXPECT_EQ((*is_hd)->eval({Value::Double(1000)}).int64(), 0);
}

}  // namespace
}  // namespace iolap
