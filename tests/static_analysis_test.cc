// Runtime checks for the static-analysis layer's runtime pieces: the
// annotated Mutex/MutexLock/CondVar wrappers (src/common/mutex.h) must
// behave exactly like the std primitives they wrap, and the ThreadRole
// virtual capability must be a true no-op. The *static* half of the layer
// is exercised elsewhere: the Clang -Wthread-safety CI leg, the
// guarded_by_violation negative-compile fixture, and the iolap_lint
// fixture tests.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace iolap {
namespace {

TEST(StaticAnalysisTest, MutexLockGuardsCounterAcrossThreads) {
  Mutex mu;
  long counter IOLAP_GUARDED_BY(mu) = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(StaticAnalysisTest, TryLockReflectsContention) {
  Mutex mu;
  mu.Lock();
  EXPECT_FALSE(mu.TryLock());
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(StaticAnalysisTest, CondVarWakesExplicitWhileLoop) {
  Mutex mu;
  CondVar cv;
  bool ready IOLAP_GUARDED_BY(mu) = false;
  long observed = -1;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    observed = 42;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(StaticAnalysisTest, CondVarNotifyOneReleasesSingleWaiter) {
  Mutex mu;
  CondVar cv;
  int tokens IOLAP_GUARDED_BY(mu) = 0;
  std::atomic<int> consumed{0};
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (tokens == 0) cv.Wait(mu);
      --tokens;
      consumed.fetch_add(1);
    });
  }
  for (int i = 0; i < kWaiters; ++i) {
    {
      MutexLock lock(mu);
      ++tokens;
    }
    cv.NotifyOne();
  }
  for (auto& thread : waiters) thread.join();
  EXPECT_EQ(consumed.load(), kWaiters);
}

TEST(StaticAnalysisTest, ThreadRoleIsZeroCostAndReentrantFree) {
  // The role capability exists purely for the analyzer; acquiring and
  // releasing it must have no observable effect at runtime.
  ThreadRole role;
  {
    ScopedThreadRole scoped(role);
    role.AssertHeld();
  }
  role.Acquire();
  role.AssertHeld();
  role.Release();
}

TEST(StaticAnalysisTest, StatusAndResultAreNodiscard) {
  // Compile-time property spot-checked via the type trait the attribute
  // rides on; the real enforcement is -Werror=unused-result in CI.
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  Result<int> value = 7;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 7);
  Result<int> bad = Status::InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace iolap
