// Unit tests for Value / Row / Schema / Table / Interval.

#include <gtest/gtest.h>

#include "core/interval.h"
#include "core/schema.h"
#include "core/table.h"
#include "core/value.h"

namespace iolap {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_FALSE(v.is_numeric());
  EXPECT_FALSE(v.IsTruthy());
}

TEST(ValueTest, Constructors) {
  EXPECT_EQ(Value::Int64(7).int64(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).dbl(), 2.5);
  EXPECT_EQ(Value::String("x").str(), "x");
  EXPECT_EQ(Value::Bool(true).int64(), 1);
  EXPECT_EQ(Value::Bool(false).int64(), 0);
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value::Int64(2).Equals(Value::Double(2.0)));
  EXPECT_FALSE(Value::Int64(2).Equals(Value::Double(2.5)));
  EXPECT_EQ(Value::Int64(2).Hash(), Value::Double(2.0).Hash());
}

TEST(ValueTest, CompareOrdersNullFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int64(-100)), 0);
  EXPECT_LT(Value::Null().Compare(Value::String("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, CompareNumbers) {
  EXPECT_LT(Value::Int64(1).Compare(Value::Int64(2)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int64(2)), 0);
  EXPECT_LT(Value::Int64(2).Compare(Value::Double(2.5)), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("abc").Compare(Value::String("abc")), 0);
  // Numerics sort before strings.
  EXPECT_LT(Value::Int64(999).Compare(Value::String("0")), 0);
}

TEST(ValueTest, Truthiness) {
  EXPECT_TRUE(Value::Int64(5).IsTruthy());
  EXPECT_FALSE(Value::Int64(0).IsTruthy());
  EXPECT_TRUE(Value::Double(0.1).IsTruthy());
  EXPECT_FALSE(Value::String("yes").IsTruthy());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int64(-3).ToString(), "-3");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
}

TEST(ValueTest, ByteSize) {
  EXPECT_EQ(Value::Int64(1).ByteSize(), 8u);
  EXPECT_EQ(Value::Double(1).ByteSize(), 8u);
  EXPECT_EQ(Value::String("abcd").ByteSize(), 8u);  // 4 chars + 4 overhead
  EXPECT_EQ(Value::Null().ByteSize(), 1u);
}

TEST(RowTest, HashAndEquality) {
  Row a = {Value::Int64(1), Value::String("x")};
  Row b = {Value::Int64(1), Value::String("x")};
  Row c = {Value::Int64(1), Value::String("y")};
  EXPECT_EQ(HashRow(a), HashRow(b));
  EXPECT_TRUE(RowEq()(a, b));
  EXPECT_FALSE(RowEq()(a, c));
  EXPECT_FALSE(RowEq()(a, Row{Value::Int64(1)}));
}

TEST(SchemaTest, FindColumnQualified) {
  Schema s({{"t.a", ValueType::kInt64}, {"t.b", ValueType::kDouble}});
  auto idx = s.FindColumn("t.b");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1);
}

TEST(SchemaTest, FindColumnUnqualifiedSuffix) {
  Schema s({{"t.a", ValueType::kInt64}, {"u.b", ValueType::kDouble}});
  auto idx = s.FindColumn("b");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1);
}

TEST(SchemaTest, FindColumnAmbiguous) {
  Schema s({{"t.a", ValueType::kInt64}, {"u.a", ValueType::kDouble}});
  auto idx = s.FindColumn("a");
  EXPECT_FALSE(idx.ok());
  EXPECT_EQ(idx.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, FindColumnMissing) {
  Schema s({{"a", ValueType::kInt64}});
  EXPECT_EQ(s.FindColumn("zz").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, Concat) {
  Schema a({{"x", ValueType::kInt64}});
  Schema b({{"y", ValueType::kString}});
  Schema c = a.Concat(b);
  EXPECT_EQ(c.num_columns(), 2u);
  EXPECT_EQ(c.column(1).name, "y");
}

TEST(TableTest, AddAndSize) {
  Table t(Schema({{"a", ValueType::kInt64}}));
  t.AddRow({Value::Int64(1)});
  t.AddRow({Value::Int64(2)});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.ByteSize(), 16u);
  EXPECT_NE(t.ToString().find("(2)"), std::string::npos);
}

// ------------------------------------------------------------- Interval

TEST(IntervalTest, PointAndContains) {
  Interval p = Interval::Point(3.0);
  EXPECT_TRUE(p.IsPoint());
  EXPECT_TRUE(p.Contains(3.0));
  EXPECT_FALSE(p.Contains(3.1));
}

TEST(IntervalTest, UnboundedContainsEverything) {
  Interval u = Interval::Unbounded();
  EXPECT_TRUE(u.IsUnbounded());
  EXPECT_TRUE(u.Contains(1e300));
  EXPECT_TRUE(u.ContainsInterval(Interval(-5, 5)));
}

TEST(IntervalTest, IntersectAndUnion) {
  Interval a(0, 10), b(5, 20);
  Interval i = a.Intersect(b);
  EXPECT_DOUBLE_EQ(i.lo, 5);
  EXPECT_DOUBLE_EQ(i.hi, 10);
  Interval u = a.Union(b);
  EXPECT_DOUBLE_EQ(u.lo, 0);
  EXPECT_DOUBLE_EQ(u.hi, 20);
}

TEST(IntervalTest, Arithmetic) {
  Interval a(1, 2), b(10, 20);
  EXPECT_DOUBLE_EQ(IntervalAdd(a, b).lo, 11);
  EXPECT_DOUBLE_EQ(IntervalAdd(a, b).hi, 22);
  EXPECT_DOUBLE_EQ(IntervalSub(b, a).lo, 8);
  EXPECT_DOUBLE_EQ(IntervalSub(b, a).hi, 19);
  EXPECT_DOUBLE_EQ(IntervalMul(a, b).lo, 10);
  EXPECT_DOUBLE_EQ(IntervalMul(a, b).hi, 40);
}

TEST(IntervalTest, MulWithNegatives) {
  Interval a(-2, 3), b(-5, 4);
  const Interval m = IntervalMul(a, b);
  EXPECT_DOUBLE_EQ(m.lo, -15);  // 3 * -5
  EXPECT_DOUBLE_EQ(m.hi, 12);   // 3 * 4
}

TEST(IntervalTest, DivByIntervalContainingZeroIsUnbounded) {
  EXPECT_TRUE(IntervalDiv(Interval(1, 2), Interval(-1, 1)).IsUnbounded());
}

TEST(IntervalTest, DivPositive) {
  const Interval d = IntervalDiv(Interval(10, 20), Interval(2, 5));
  EXPECT_DOUBLE_EQ(d.lo, 2);
  EXPECT_DOUBLE_EQ(d.hi, 10);
}

TEST(IntervalTest, MulUnboundedByZeroPointStaysBounded) {
  const Interval m = IntervalMul(Interval::Unbounded(), Interval::Point(0.0));
  EXPECT_DOUBLE_EQ(m.lo, 0);
  EXPECT_DOUBLE_EQ(m.hi, 0);
}

TEST(IntervalTest, LessClassification) {
  EXPECT_EQ(IntervalLess(Interval(0, 1), Interval(2, 3)),
            IntervalTruth::kAlwaysTrue);
  EXPECT_EQ(IntervalLess(Interval(2, 3), Interval(0, 1)),
            IntervalTruth::kAlwaysFalse);
  EXPECT_EQ(IntervalLess(Interval(0, 2), Interval(1, 3)),
            IntervalTruth::kUndecided);
  // Touching endpoints: 1 < 1 is false, so [0,1] < [1,2] is undecided
  // (0 < 1 true, 1 < 1 false).
  EXPECT_EQ(IntervalLess(Interval(0, 1), Interval(1, 2)),
            IntervalTruth::kUndecided);
}

TEST(IntervalTest, LessEqClassification) {
  EXPECT_EQ(IntervalLessEq(Interval(0, 1), Interval(1, 2)),
            IntervalTruth::kAlwaysTrue);
  EXPECT_EQ(IntervalLessEq(Interval(2, 3), Interval(0, 1)),
            IntervalTruth::kAlwaysFalse);
}

TEST(IntervalTest, EqClassification) {
  EXPECT_EQ(IntervalEq(Interval::Point(2), Interval::Point(2)),
            IntervalTruth::kAlwaysTrue);
  EXPECT_EQ(IntervalEq(Interval(0, 1), Interval(2, 3)),
            IntervalTruth::kAlwaysFalse);
  EXPECT_EQ(IntervalEq(Interval(0, 2), Interval(1, 3)),
            IntervalTruth::kUndecided);
}

TEST(IntervalTest, NegateTruth) {
  EXPECT_EQ(Negate(IntervalTruth::kAlwaysTrue), IntervalTruth::kAlwaysFalse);
  EXPECT_EQ(Negate(IntervalTruth::kAlwaysFalse), IntervalTruth::kAlwaysTrue);
  EXPECT_EQ(Negate(IntervalTruth::kUndecided), IntervalTruth::kUndecided);
}

}  // namespace
}  // namespace iolap
