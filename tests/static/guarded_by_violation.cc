// Negative-compile fixture: this TU reads and writes an IOLAP_GUARDED_BY
// member without holding its mutex, so a Clang build with
// -Wthread-safety -Werror MUST refuse to compile it. The ctest entry
// `guarded_by_violation_fails_to_compile` (tests/CMakeLists.txt) builds
// this excluded target and asserts the failure (WILL_FAIL) — proving the
// annotations have teeth, not just that they parse.
//
// GCC ignores the attributes, so the fixture is only registered on Clang
// configures.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace iolap {

class Tally {
 public:
  void Bump() {
    // BUG (deliberate): touches count_ without mu_ held.
    ++count_;
  }

  long Read() const {
    // BUG (deliberate): reads count_ without mu_ held.
    return count_;
  }

 private:
  Mutex mu_;
  long count_ IOLAP_GUARDED_BY(mu_) = 0;
};

long Drive() {
  Tally tally;
  tally.Bump();
  return tally.Read();
}

}  // namespace iolap
