// Unit tests of the deterministic fault-injection subsystem
// (common/failpoint.{h,cc}): spec parsing, activation modes, options, the
// environment merge, and scoped arming. Chaos coverage of the engine seams
// lives in chaos_test.cc.

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/random.h"
#include "iolap/session.h"

namespace iolap {
namespace {

// Every test leaves the global registry disarmed.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().Clear(); }

  FailpointRegistry& reg() { return FailpointRegistry::Instance(); }
};

TEST_F(FailpointTest, DisarmedByDefault) {
  EXPECT_FALSE(FailpointRegistry::AnyArmedFast());
  EXPECT_FALSE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 0));
}

TEST_F(FailpointTest, NameInventoryRoundTrips) {
  Failpoint fp;
  for (int i = 0; i < kNumFailpoints; ++i) {
    const char* name = FailpointRegistry::Name(static_cast<Failpoint>(i));
    ASSERT_TRUE(FailpointRegistry::Lookup(name, &fp)) << name;
    EXPECT_EQ(static_cast<int>(fp), i) << name;
  }
  EXPECT_FALSE(FailpointRegistry::Lookup("no-such-failpoint", &fp));
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  ASSERT_TRUE(reg().Configure("csv-read-fault=once").ok());
  EXPECT_TRUE(FailpointRegistry::AnyArmedFast());
  EXPECT_TRUE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 7));
  EXPECT_FALSE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 7));
  EXPECT_FALSE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 8));
  EXPECT_EQ(reg().hits(Failpoint::kCsvReadFault), 3u);
  EXPECT_EQ(reg().fired(Failpoint::kCsvReadFault), 1u);
}

TEST_F(FailpointTest, NthAndEveryCountHits) {
  ASSERT_TRUE(reg().Configure("csv-read-fault=nth:3").ok());
  EXPECT_FALSE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 0));
  EXPECT_FALSE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 0));
  EXPECT_TRUE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 0));
  EXPECT_FALSE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 0));

  ASSERT_TRUE(reg().Configure("csv-read-fault=every:2").ok());
  int fires = 0;
  for (int i = 0; i < 6; ++i) {
    if (IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 0)) ++fires;
  }
  EXPECT_EQ(fires, 3);
}

TEST_F(FailpointTest, AtMatchesDetailAndTimesCapsFires) {
  ASSERT_TRUE(
      reg().Configure("exec-integrity-verdict=at:4,times:2,arg:3").ok());
  EXPECT_FALSE(IOLAP_FAILPOINT(Failpoint::kExecIntegrityVerdict, 3));
  EXPECT_TRUE(IOLAP_FAILPOINT(Failpoint::kExecIntegrityVerdict, 4));
  EXPECT_TRUE(IOLAP_FAILPOINT(Failpoint::kExecIntegrityVerdict, 4));
  // times:2 exhausted: the matching detail no longer fires.
  EXPECT_FALSE(IOLAP_FAILPOINT(Failpoint::kExecIntegrityVerdict, 4));
  EXPECT_EQ(FailpointArg(Failpoint::kExecIntegrityVerdict, 1), 3);
  // Unset arg falls back to the site default.
  EXPECT_EQ(FailpointArg(Failpoint::kCsvReadFault, 42), 42);
}

TEST_F(FailpointTest, ProbIsDeterministicInSeedDetailAndHit) {
  ASSERT_TRUE(reg().Configure("pool-task-fault=prob:0.5:9").ok());
  std::vector<bool> first;
  for (uint64_t d = 0; d < 64; ++d) {
    first.push_back(IOLAP_FAILPOINT(Failpoint::kPoolTaskFault, d));
  }
  // Not degenerate at p = 0.5 over 64 draws.
  EXPECT_GT(reg().fired(Failpoint::kPoolTaskFault), 0u);
  EXPECT_LT(reg().fired(Failpoint::kPoolTaskFault), 64u);
  // Re-arming resets the hit counter: the same (seed, detail, hit) sequence
  // reproduces the same draws.
  ASSERT_TRUE(reg().Configure("pool-task-fault=prob:0.5:9").ok());
  for (uint64_t d = 0; d < 64; ++d) {
    EXPECT_EQ(IOLAP_FAILPOINT(Failpoint::kPoolTaskFault, d), first[d]) << d;
  }
}

TEST_F(FailpointTest, SpecErrorsKeepPreviousConfig) {
  ASSERT_TRUE(reg().Configure("csv-read-fault=once").ok());
  EXPECT_FALSE(reg().Configure("bogus-name=once").ok());
  EXPECT_FALSE(reg().Configure("csv-read-fault=flub").ok());
  EXPECT_FALSE(reg().Configure("csv-read-fault=nth:0").ok());
  EXPECT_FALSE(reg().Configure("csv-read-fault=prob:2.0").ok());
  EXPECT_FALSE(reg().Configure("csv-read-fault=once,times:0").ok());
  EXPECT_FALSE(reg().Configure("csv-read-fault").ok());
  // The original "once" config survived every rejected spec.
  EXPECT_TRUE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 0));
}

TEST_F(FailpointTest, LaterEntriesWinAndEmptyPiecesAreSkipped) {
  ASSERT_TRUE(
      reg().Configure("csv-read-fault=once; ;csv-read-fault=off;").ok());
  EXPECT_FALSE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 0));
}

TEST_F(FailpointTest, ScopedArmsAndDisarms) {
  {
    ScopedFailpoints scoped("csv-read-fault=once");
    ASSERT_TRUE(scoped.status().ok());
    EXPECT_TRUE(FailpointRegistry::AnyArmedFast());
  }
  EXPECT_FALSE(FailpointRegistry::AnyArmedFast());
  // An empty spec neither arms nor clears an existing configuration.
  ASSERT_TRUE(reg().Configure("csv-read-fault=once").ok());
  {
    ScopedFailpoints scoped("");
    ASSERT_TRUE(scoped.status().ok());
  }
  EXPECT_TRUE(FailpointRegistry::AnyArmedFast());
}

TEST_F(FailpointTest, MergedSpecPutsEnvironmentFirst) {
  ASSERT_EQ(setenv("IOLAP_FAILPOINTS", "csv-read-fault=once", 1), 0);
  // Option specs come second, so they win on collisions.
  EXPECT_EQ(MergedFailpointSpec("csv-read-fault=off"),
            "csv-read-fault=once;csv-read-fault=off");
  EXPECT_EQ(MergedFailpointSpec(""), "csv-read-fault=once");
  ASSERT_EQ(unsetenv("IOLAP_FAILPOINTS"), 0);
  EXPECT_EQ(MergedFailpointSpec("pool-task-fault=once"),
            "pool-task-fault=once");
  EXPECT_EQ(MergedFailpointSpec(""), "");
}

// ---------------------------------------------------------------------------
// Checkpoint-ring bounds under injected corruption
// ---------------------------------------------------------------------------

std::shared_ptr<Catalog> RingCatalog(size_t rows, uint64_t seed) {
  Rng rng(seed);
  auto catalog = std::make_shared<Catalog>();
  Table t(Schema({{"id", ValueType::kInt64},
                  {"v", ValueType::kDouble},
                  {"g", ValueType::kInt64}}));
  for (size_t i = 0; i < rows; ++i) {
    t.AddRow({Value::Int64(static_cast<int64_t>(i)),
              Value::Double(rng.NextDouble() * 100),
              Value::Int64(static_cast<int64_t>(rng.NextBounded(4)))});
  }
  EXPECT_TRUE(catalog->RegisterTable("t", std::move(t), true).ok());
  return catalog;
}

QueryMetrics RunRing(const std::shared_ptr<Catalog>& catalog,
                     const std::string& failpoints, size_t* ring_size,
                     size_t* ring_bytes) {
  EngineOptions options;
  options.num_batches = 6;
  options.num_trials = 8;
  options.seed = 7;
  options.checkpoint_history = 3;
  options.failpoints = failpoints;
  Session session(catalog.get(), options);
  // Nested: the inner average is classified (variation-range tracking
  // live), so engine-level verdict seams can fire during replays too.
  auto query = session.Sql(
      "SELECT avg(v) FROM t WHERE v > (SELECT avg(v) FROM t)");
  EXPECT_TRUE(query.ok()) << query.status();
  EXPECT_TRUE((*query)->Run().ok());
  *ring_size = (*query)->controller().checkpoint_ring_size();
  *ring_bytes = (*query)->controller().CheckpointRingBytes();
  return (*query)->metrics();
}

// The ring never retains more than checkpoint_history entries, faults or
// not, and its retained bytes are introspectable.
TEST_F(FailpointTest, CheckpointRingStaysBounded) {
  auto catalog = RingCatalog(240, 11);
  size_t ring_size = 0, ring_bytes = 0;
  RunRing(catalog, "", &ring_size, &ring_bytes);
  EXPECT_LE(ring_size, 3u);
  EXPECT_GE(ring_size, 1u);
  EXPECT_GT(ring_bytes, 0u);

  // A recovery storm (repeated injected verdicts) must not grow the ring
  // past its bound either.
  RunRing(catalog, "controller-batch-fault=every:1,times:4,arg:1",
          &ring_size, &ring_bytes);
  EXPECT_LE(ring_size, 3u);
}

// A checkpoint whose checksum fails verification is pruned from the ring on
// the recovery walk that discovers it — a second walk over the same window
// must not pay for (or recount) the dead snapshot.
TEST_F(FailpointTest, CorruptCheckpointsArePrunedFromRing) {
  auto catalog = RingCatalog(240, 12);
  size_t ring_size = 0, ring_bytes = 0;
  // Corrupt the batch-2 snapshot at capture, then force two rollbacks that
  // both target it (the verdict seam is engine-level, so times:2 fires a
  // second time during the replay of batch 3). The first walk skips the
  // corrupt snapshot, counts it, erases it, and escalates one batch
  // deeper; the replay re-captures batch 2 cleanly, so the second walk
  // restores it without stumbling over — or re-counting — the corpse.
  const QueryMetrics metrics = RunRing(
      catalog,
      "checkpoint-capture-corrupt=at:2,times:1;"
      "exec-integrity-verdict=at:3,times:2,arg:1",
      &ring_size, &ring_bytes);
  EXPECT_EQ(metrics.TotalCorruptCheckpoints(), 1);
  EXPECT_GE(metrics.TotalFailureRecoveries(), 2);
  EXPECT_LE(ring_size, 3u);
  EXPECT_GT(ring_bytes, 0u);
}

}  // namespace
}  // namespace iolap
