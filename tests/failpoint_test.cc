// Unit tests of the deterministic fault-injection subsystem
// (common/failpoint.{h,cc}): spec parsing, activation modes, options, the
// environment merge, and scoped arming. Chaos coverage of the engine seams
// lives in chaos_test.cc.

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace iolap {
namespace {

// Every test leaves the global registry disarmed.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().Clear(); }

  FailpointRegistry& reg() { return FailpointRegistry::Instance(); }
};

TEST_F(FailpointTest, DisarmedByDefault) {
  EXPECT_FALSE(FailpointRegistry::AnyArmedFast());
  EXPECT_FALSE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 0));
}

TEST_F(FailpointTest, NameInventoryRoundTrips) {
  Failpoint fp;
  for (int i = 0; i < kNumFailpoints; ++i) {
    const char* name = FailpointRegistry::Name(static_cast<Failpoint>(i));
    ASSERT_TRUE(FailpointRegistry::Lookup(name, &fp)) << name;
    EXPECT_EQ(static_cast<int>(fp), i) << name;
  }
  EXPECT_FALSE(FailpointRegistry::Lookup("no-such-failpoint", &fp));
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  ASSERT_TRUE(reg().Configure("csv-read-fault=once").ok());
  EXPECT_TRUE(FailpointRegistry::AnyArmedFast());
  EXPECT_TRUE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 7));
  EXPECT_FALSE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 7));
  EXPECT_FALSE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 8));
  EXPECT_EQ(reg().hits(Failpoint::kCsvReadFault), 3u);
  EXPECT_EQ(reg().fired(Failpoint::kCsvReadFault), 1u);
}

TEST_F(FailpointTest, NthAndEveryCountHits) {
  ASSERT_TRUE(reg().Configure("csv-read-fault=nth:3").ok());
  EXPECT_FALSE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 0));
  EXPECT_FALSE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 0));
  EXPECT_TRUE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 0));
  EXPECT_FALSE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 0));

  ASSERT_TRUE(reg().Configure("csv-read-fault=every:2").ok());
  int fires = 0;
  for (int i = 0; i < 6; ++i) {
    if (IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 0)) ++fires;
  }
  EXPECT_EQ(fires, 3);
}

TEST_F(FailpointTest, AtMatchesDetailAndTimesCapsFires) {
  ASSERT_TRUE(
      reg().Configure("exec-integrity-verdict=at:4,times:2,arg:3").ok());
  EXPECT_FALSE(IOLAP_FAILPOINT(Failpoint::kExecIntegrityVerdict, 3));
  EXPECT_TRUE(IOLAP_FAILPOINT(Failpoint::kExecIntegrityVerdict, 4));
  EXPECT_TRUE(IOLAP_FAILPOINT(Failpoint::kExecIntegrityVerdict, 4));
  // times:2 exhausted: the matching detail no longer fires.
  EXPECT_FALSE(IOLAP_FAILPOINT(Failpoint::kExecIntegrityVerdict, 4));
  EXPECT_EQ(FailpointArg(Failpoint::kExecIntegrityVerdict, 1), 3);
  // Unset arg falls back to the site default.
  EXPECT_EQ(FailpointArg(Failpoint::kCsvReadFault, 42), 42);
}

TEST_F(FailpointTest, ProbIsDeterministicInSeedDetailAndHit) {
  ASSERT_TRUE(reg().Configure("pool-task-fault=prob:0.5:9").ok());
  std::vector<bool> first;
  for (uint64_t d = 0; d < 64; ++d) {
    first.push_back(IOLAP_FAILPOINT(Failpoint::kPoolTaskFault, d));
  }
  // Not degenerate at p = 0.5 over 64 draws.
  EXPECT_GT(reg().fired(Failpoint::kPoolTaskFault), 0u);
  EXPECT_LT(reg().fired(Failpoint::kPoolTaskFault), 64u);
  // Re-arming resets the hit counter: the same (seed, detail, hit) sequence
  // reproduces the same draws.
  ASSERT_TRUE(reg().Configure("pool-task-fault=prob:0.5:9").ok());
  for (uint64_t d = 0; d < 64; ++d) {
    EXPECT_EQ(IOLAP_FAILPOINT(Failpoint::kPoolTaskFault, d), first[d]) << d;
  }
}

TEST_F(FailpointTest, SpecErrorsKeepPreviousConfig) {
  ASSERT_TRUE(reg().Configure("csv-read-fault=once").ok());
  EXPECT_FALSE(reg().Configure("bogus-name=once").ok());
  EXPECT_FALSE(reg().Configure("csv-read-fault=flub").ok());
  EXPECT_FALSE(reg().Configure("csv-read-fault=nth:0").ok());
  EXPECT_FALSE(reg().Configure("csv-read-fault=prob:2.0").ok());
  EXPECT_FALSE(reg().Configure("csv-read-fault=once,times:0").ok());
  EXPECT_FALSE(reg().Configure("csv-read-fault").ok());
  // The original "once" config survived every rejected spec.
  EXPECT_TRUE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 0));
}

TEST_F(FailpointTest, LaterEntriesWinAndEmptyPiecesAreSkipped) {
  ASSERT_TRUE(
      reg().Configure("csv-read-fault=once; ;csv-read-fault=off;").ok());
  EXPECT_FALSE(IOLAP_FAILPOINT(Failpoint::kCsvReadFault, 0));
}

TEST_F(FailpointTest, ScopedArmsAndDisarms) {
  {
    ScopedFailpoints scoped("csv-read-fault=once");
    ASSERT_TRUE(scoped.status().ok());
    EXPECT_TRUE(FailpointRegistry::AnyArmedFast());
  }
  EXPECT_FALSE(FailpointRegistry::AnyArmedFast());
  // An empty spec neither arms nor clears an existing configuration.
  ASSERT_TRUE(reg().Configure("csv-read-fault=once").ok());
  {
    ScopedFailpoints scoped("");
    ASSERT_TRUE(scoped.status().ok());
  }
  EXPECT_TRUE(FailpointRegistry::AnyArmedFast());
}

TEST_F(FailpointTest, MergedSpecPutsEnvironmentFirst) {
  ASSERT_EQ(setenv("IOLAP_FAILPOINTS", "csv-read-fault=once", 1), 0);
  // Option specs come second, so they win on collisions.
  EXPECT_EQ(MergedFailpointSpec("csv-read-fault=off"),
            "csv-read-fault=once;csv-read-fault=off");
  EXPECT_EQ(MergedFailpointSpec(""), "csv-read-fault=once");
  ASSERT_EQ(unsetenv("IOLAP_FAILPOINTS"), 0);
  EXPECT_EQ(MergedFailpointSpec("pool-task-fault=once"),
            "pool-task-fault=once");
  EXPECT_EQ(MergedFailpointSpec(""), "");
}

}  // namespace
}  // namespace iolap
