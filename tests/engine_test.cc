// Integration tests of the incremental delta engine against the reference
// evaluator: Theorem 1 says every partial result must equal the direct
// evaluation Q(D_i, m_i). These are differential tests over a spread of
// query shapes, execution modes and seeds.

#include <gtest/gtest.h>

#include <cmath>

#include "catalog/catalog.h"
#include "common/random.h"
#include "exec/reference.h"
#include "iolap/query_controller.h"
#include "iolap/session.h"
#include "plan/plan_builder.h"
#include "workloads/conviva.h"
#include "workloads/conviva_queries.h"
#include "workloads/tpch.h"
#include "workloads/tpch_queries.h"

namespace iolap {
namespace {

constexpr double kTol = 1e-7;

// Compares two result tables cell by cell with numeric tolerance.
void ExpectTablesEqual(const Table& actual, const Table& expected,
                       const std::string& context) {
  ASSERT_EQ(actual.num_rows(), expected.num_rows()) << context;
  for (size_t r = 0; r < actual.num_rows(); ++r) {
    ASSERT_EQ(actual.row(r).size(), expected.row(r).size()) << context;
    for (size_t c = 0; c < actual.row(r).size(); ++c) {
      const Value& a = actual.row(r)[c];
      const Value& e = expected.row(r)[c];
      if (a.is_numeric() && e.is_numeric()) {
        const double av = a.AsDouble();
        const double ev = e.AsDouble();
        const double tol = kTol * std::max(1.0, std::fabs(ev));
        EXPECT_NEAR(av, ev, tol)
            << context << " row " << r << " col " << c;
      } else {
        EXPECT_TRUE(a.Equals(e))
            << context << " row " << r << " col " << c << ": "
            << a.ToString() << " vs " << e.ToString();
      }
    }
  }
}

// Builds a synthetic sessions fact table plus a small sites dimension.
void FillCatalog(Catalog* catalog, size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table sessions(Schema({{"sessions.session_id", ValueType::kInt64},
                         {"sessions.buffer_time", ValueType::kDouble},
                         {"sessions.play_time", ValueType::kDouble},
                         {"sessions.site", ValueType::kInt64}}));
  for (size_t i = 0; i < rows; ++i) {
    sessions.AddRow({Value::Int64(static_cast<int64_t>(i)),
                     Value::Double(5.0 + 60.0 * rng.NextDouble()),
                     Value::Double(30.0 + 600.0 * rng.NextDouble()),
                     Value::Int64(static_cast<int64_t>(rng.NextZipf(8, 0.8)))});
  }
  ASSERT_TRUE(
      catalog->RegisterTable("sessions", std::move(sessions), true).ok());

  Table sites(Schema({{"sites.site", ValueType::kInt64},
                      {"sites.region", ValueType::kString},
                      {"sites.weight", ValueType::kDouble}}));
  const char* regions[] = {"us", "eu", "apac", "latam"};
  for (int s = 0; s < 8; ++s) {
    sites.AddRow({Value::Int64(s), Value::String(regions[s % 4]),
                  Value::Double(1.0 + s * 0.25)});
  }
  ASSERT_TRUE(catalog->RegisterTable("sites", std::move(sites)).ok());
}

enum class QueryShape {
  kSimpleSpja,       // deterministic filter + global aggregates
  kGroupedSpja,      // join with dimension + group-by
  kSbi,              // scalar nested subquery in WHERE (Example 1)
  kCorrelated,       // per-group subquery compared per row (Q17 shape)
  kJoinAggregates,   // join of the fact with an aggregate relation
  kHavingTop,        // group-by + HAVING vs scalar subquery (Q11 shape)
  kUncertainAggArg,  // aggregate over an uncertain attribute
};

Result<QueryPlan> BuildQuery(QueryShape shape, const Catalog& catalog,
                             std::shared_ptr<FunctionRegistry> functions) {
  PlanBuilder pb(&catalog, functions);
  switch (shape) {
    case QueryShape::kSimpleSpja: {
      auto& b = pb.NewBlock("simple");
      b.Scan("sessions")
          .Filter(Gt(b.ColRef("buffer_time"), Lit(20.0)))
          .Agg("sum", b.ColRef("play_time"), "total_play")
          .Agg("count", Lit(int64_t{1}), "n")
          .Agg("avg", b.ColRef("buffer_time"), "avg_buffer");
      break;
    }
    case QueryShape::kGroupedSpja: {
      auto& b = pb.NewBlock("grouped");
      b.Scan("sessions")
          .Join("sites", {"sessions.site"}, {"sites.site"})
          .Filter(Lt(b.ColRef("buffer_time"), Lit(50.0)))
          .GroupBy("region")
          .Agg("avg", Mul(b.ColRef("play_time"), b.ColRef("weight")),
               "weighted_play")
          .Agg("count", Lit(int64_t{1}), "n");
      break;
    }
    case QueryShape::kSbi: {
      auto& inner = pb.NewBlock("inner_avg");
      inner.Scan("sessions").Agg("avg", inner.ColRef("buffer_time"), "avg_bt");
      auto& outer = pb.NewBlock("sbi");
      outer.Scan("sessions")
          .Filter(Gt(outer.ColRef("buffer_time"),
                     outer.SubqueryRef(inner.id(), "avg_bt")))
          .Agg("avg", outer.ColRef("play_time"), "avg_play");
      break;
    }
    case QueryShape::kCorrelated: {
      auto& inner = pb.NewBlock("per_site_avg");
      inner.Scan("sessions")
          .GroupBy("site")
          .Agg("avg", inner.ColRef("buffer_time"), "site_avg");
      auto& outer = pb.NewBlock("outer");
      outer.Scan("sessions")
          .Filter(Lt(outer.ColRef("buffer_time"),
                     Mul(Lit(0.9), outer.SubqueryRef(inner.id(), "site_avg",
                                                     {outer.ColRef("site")}))))
          .Agg("sum", outer.ColRef("play_time"), "short_buffer_play");
      break;
    }
    case QueryShape::kJoinAggregates: {
      auto& inner = pb.NewBlock("per_site_avg");
      inner.Scan("sessions")
          .GroupBy("site")
          .Agg("avg", inner.ColRef("buffer_time"), "site_avg");
      auto& outer = pb.NewBlock("joined");
      outer.Scan("sessions")
          .JoinBlock(inner.id(), {"sessions.site"}, {"site"})
          .Filter(Gt(outer.ColRef("buffer_time"), outer.ColRef("site_avg")))
          .Agg("count", Lit(int64_t{1}), "slow_sessions");
      break;
    }
    case QueryShape::kHavingTop: {
      auto& total = pb.NewBlock("grand_total");
      total.Scan("sessions").Agg("sum", total.ColRef("play_time"), "total");
      auto& per_site = pb.NewBlock("per_site");
      per_site.Scan("sessions")
          .GroupBy("site")
          .Agg("sum", per_site.ColRef("play_time"), "site_total");
      auto& top = pb.NewBlock("having_top");
      top.ScanBlock(per_site.id())
          .Filter(Gt(top.ColRef("site_total"),
                     Mul(Lit(0.1), top.SubqueryRef(total.id(), "total"))))
          .Project(top.ColRef("site"), "site")
          .Project(top.ColRef("site_total"), "site_total");
      break;
    }
    case QueryShape::kUncertainAggArg: {
      auto& inner = pb.NewBlock("global_avg");
      inner.Scan("sessions").Agg("avg", inner.ColRef("play_time"), "g");
      auto& outer = pb.NewBlock("deviation");
      outer.Scan("sessions").Agg(
          "rms",
          Sub(outer.ColRef("play_time"), outer.SubqueryRef(inner.id(), "g")),
          "rms_dev");
      break;
    }
  }
  return pb.Build();
}

struct ModeConfig {
  const char* name;
  ExecutionMode mode;
  bool opt1;
  bool opt2;
};

constexpr ModeConfig kModes[] = {
    {"iolap_full", ExecutionMode::kIolap, true, true},
    {"iolap_opt1_only", ExecutionMode::kIolap, true, false},
    {"iolap_conservative", ExecutionMode::kIolap, false, true},
    {"hda", ExecutionMode::kHda, false, false},
};

constexpr QueryShape kShapes[] = {
    QueryShape::kSimpleSpja,      QueryShape::kGroupedSpja,
    QueryShape::kSbi,             QueryShape::kCorrelated,
    QueryShape::kJoinAggregates,  QueryShape::kHavingTop,
    QueryShape::kUncertainAggArg,
};

class DeltaEngineTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

// The central property: after every batch, the partial result equals the
// direct evaluation of the query on the data seen so far (Theorem 1).
TEST_P(DeltaEngineTest, PartialResultsMatchReference) {
  const ModeConfig& mode = kModes[std::get<0>(GetParam())];
  const QueryShape shape = kShapes[std::get<1>(GetParam())];

  Catalog catalog;
  FillCatalog(&catalog, 400, /*seed=*/17);
  auto functions = FunctionRegistry::Default();
  auto plan = BuildQuery(shape, catalog, functions);
  ASSERT_TRUE(plan.ok()) << plan.status();

  EngineOptions options;
  options.mode = mode.mode;
  options.tuple_partition = mode.opt1;
  options.lazy_lineage = mode.opt2;
  options.num_trials = 12;
  options.num_batches = 10;
  options.slack = 2.0;
  options.seed = 5;
  options.partition.block_rows = 16;

  QueryController controller(&catalog, *plan, options);
  ASSERT_TRUE(controller.Init().ok());

  // Accumulate D_i as batches arrive and compare each partial result.
  std::vector<Row> accumulated;
  const Table& fact = *(*catalog.Find("sessions"))->table;
  int batches_seen = 0;
  Status run_status = controller.Run([&](const PartialResult& partial) {
    for (uint64_t id : controller.layout().batches[partial.batch]) {
      accumulated.push_back(fact.row(id));
    }
    const double scale =
        static_cast<double>(fact.num_rows()) / accumulated.size();
    auto expected =
        EvaluateReference(*plan, catalog, accumulated, scale);
    EXPECT_TRUE(expected.ok()) << expected.status();
    ExpectTablesEqual(partial.rows, *expected,
                      std::string(mode.name) + " batch " +
                          std::to_string(partial.batch));
    ++batches_seen;
    return BatchAction::kContinue;
  });
  ASSERT_TRUE(run_status.ok()) << run_status;
  EXPECT_EQ(batches_seen, 10);
  // After the last batch the result is exact: fraction 1.
  EXPECT_DOUBLE_EQ(controller.last_result().fraction_processed, 1.0);
}

std::string DeltaEngineTestName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* shape_names[] = {
      "SimpleSpja",     "GroupedSpja", "Sbi",           "Correlated",
      "JoinAggregates", "HavingTop",   "UncertainAggArg"};
  return std::string(kModes[std::get<0>(info.param)].name) + "_" +
         shape_names[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndShapes, DeltaEngineTest,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 7)),
    DeltaEngineTestName);

// Zero slack forces variation-range integrity failures; recovery must keep
// every partial result exact.
TEST(DeltaEngineRecoveryTest, ZeroSlackStillExact) {
  Catalog catalog;
  FillCatalog(&catalog, 300, /*seed=*/23);
  auto functions = FunctionRegistry::Default();
  auto plan = BuildQuery(QueryShape::kSbi, catalog, functions);
  ASSERT_TRUE(plan.ok());

  EngineOptions options;
  options.num_trials = 8;
  options.num_batches = 12;
  options.slack = 0.0;  // pathological: ranges are bare envelopes
  options.seed = 3;

  QueryController controller(&catalog, *plan, options);
  ASSERT_TRUE(controller.Init().ok());

  std::vector<Row> accumulated;
  const Table& fact = *(*catalog.Find("sessions"))->table;
  ASSERT_TRUE(controller
                  .Run([&](const PartialResult& partial) {
                    for (uint64_t id :
                         controller.layout().batches[partial.batch]) {
                      accumulated.push_back(fact.row(id));
                    }
                    const double scale = static_cast<double>(fact.num_rows()) /
                                         accumulated.size();
                    auto expected =
                        EvaluateReference(*plan, catalog, accumulated, scale);
                    EXPECT_TRUE(expected.ok());
                    ExpectTablesEqual(partial.rows, *expected,
                                      "slack0 batch " +
                                          std::to_string(partial.batch));
                    return BatchAction::kContinue;
                  })
                  .ok());
  // With slack 0, at least one recovery is overwhelmingly likely.
  EXPECT_GT(controller.metrics().TotalFailureRecoveries(), 0);
}

// Recovery with join states in play: rolling back must truncate join
// caches and re-emit group rows consistently. Zero slack provokes
// failures; exactness must hold on the join-of-aggregates shape.
TEST(DeltaEngineRecoveryTest, ZeroSlackWithJoinsStillExact) {
  Catalog catalog;
  FillCatalog(&catalog, 400, /*seed=*/53);
  auto functions = FunctionRegistry::Default();
  for (QueryShape shape :
       {QueryShape::kJoinAggregates, QueryShape::kCorrelated}) {
    auto plan = BuildQuery(shape, catalog, functions);
    ASSERT_TRUE(plan.ok());
    EngineOptions options;
    options.num_trials = 8;
    options.num_batches = 10;
    options.slack = 0.0;
    options.seed = 17;
    QueryController controller(&catalog, *plan, options);
    ASSERT_TRUE(controller.Init().ok());
    std::vector<Row> accumulated;
    const Table& fact = *(*catalog.Find("sessions"))->table;
    ASSERT_TRUE(controller
                    .Run([&](const PartialResult& partial) {
                      for (uint64_t id :
                           controller.layout().batches[partial.batch]) {
                        accumulated.push_back(fact.row(id));
                      }
                      const double scale =
                          static_cast<double>(fact.num_rows()) /
                          accumulated.size();
                      auto expected = EvaluateReference(*plan, catalog,
                                                        accumulated, scale);
                      EXPECT_TRUE(expected.ok());
                      ExpectTablesEqual(partial.rows, *expected,
                                        "join recovery batch " +
                                            std::to_string(partial.batch));
                      return BatchAction::kContinue;
                    })
                    .ok());
  }
}

// Property sweep: random seeds / batch counts on the SBI query, full mode.
class SeedSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweepTest, SbiExactAcrossSeeds) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Catalog catalog;
  FillCatalog(&catalog, 250, seed * 31 + 7);
  auto functions = FunctionRegistry::Default();
  auto plan = BuildQuery(QueryShape::kSbi, catalog, functions);
  ASSERT_TRUE(plan.ok());

  EngineOptions options;
  options.num_trials = 10;
  options.num_batches = 3 + static_cast<size_t>(seed % 9);
  options.slack = 1.0 + 0.25 * static_cast<double>(seed % 5);
  options.seed = seed;

  QueryController controller(&catalog, *plan, options);
  ASSERT_TRUE(controller.Init().ok());

  std::vector<Row> accumulated;
  const Table& fact = *(*catalog.Find("sessions"))->table;
  ASSERT_TRUE(controller
                  .Run([&](const PartialResult& partial) {
                    for (uint64_t id :
                         controller.layout().batches[partial.batch]) {
                      accumulated.push_back(fact.row(id));
                    }
                    const double scale = static_cast<double>(fact.num_rows()) /
                                         accumulated.size();
                    auto expected =
                        EvaluateReference(*plan, catalog, accumulated, scale);
                    EXPECT_TRUE(expected.ok());
                    ExpectTablesEqual(partial.rows, *expected,
                                      "seed " + std::to_string(seed));
                    return BatchAction::kContinue;
                  })
                  .ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest, ::testing::Range(0, 12));

// The baseline mode answers in a single batch and matches the full-data
// reference exactly.
TEST(BaselineTest, SingleExactBatch) {
  Catalog catalog;
  FillCatalog(&catalog, 200, 11);
  auto functions = FunctionRegistry::Default();
  auto plan = BuildQuery(QueryShape::kSbi, catalog, functions);
  ASSERT_TRUE(plan.ok());

  EngineOptions options;
  options.mode = ExecutionMode::kBaseline;
  QueryController controller(&catalog, *plan, options);
  ASSERT_TRUE(controller.Init().ok());
  ASSERT_TRUE(controller.Run(nullptr).ok());
  EXPECT_EQ(controller.metrics().batches.size(), 1u);

  const Table& fact = *(*catalog.Find("sessions"))->table;
  auto expected = EvaluateReference(*plan, catalog, fact.rows(), 1.0);
  ASSERT_TRUE(expected.ok());
  ExpectTablesEqual(controller.last_result().rows, *expected, "baseline");
}

// Error estimates should shrink as more data is processed and the final
// batch must report (near) zero spread.
TEST(ErrorEstimateTest, ShrinksOverBatches) {
  Catalog catalog;
  FillCatalog(&catalog, 1000, 29);
  auto functions = FunctionRegistry::Default();
  auto plan = BuildQuery(QueryShape::kSimpleSpja, catalog, functions);
  ASSERT_TRUE(plan.ok());

  EngineOptions options;
  options.num_trials = 40;
  options.num_batches = 10;
  options.seed = 7;

  QueryController controller(&catalog, *plan, options);
  ASSERT_TRUE(controller.Init().ok());
  std::vector<double> rel_err;
  ASSERT_TRUE(controller
                  .Run([&](const PartialResult& partial) {
                    // avg_buffer is column index 2 of the estimates row.
                    rel_err.push_back(partial.estimates[0][2].rel_stddev);
                    return BatchAction::kContinue;
                  })
                  .ok());
  ASSERT_EQ(rel_err.size(), 10u);
  EXPECT_LT(rel_err.back(), rel_err.front());
}

// Analytic (closed-form) error estimation: results stay exact at every
// batch with zero bootstrap trials, classification still prunes, and the
// estimates behave (positive mid-run, shrinking, zero at the end).
TEST(AnalyticErrorTest, ExactResultsAndSaneEstimates) {
  Catalog catalog;
  FillCatalog(&catalog, 2000, 41);
  auto functions = FunctionRegistry::Default();
  auto plan = BuildQuery(QueryShape::kSbi, catalog, functions);
  ASSERT_TRUE(plan.ok());

  EngineOptions options;
  options.error_method = ErrorMethod::kAnalytic;
  options.num_batches = 10;
  options.seed = 21;

  QueryController controller(&catalog, *plan, options);
  ASSERT_TRUE(controller.Init().ok());

  std::vector<Row> accumulated;
  const Table& fact = *(*catalog.Find("sessions"))->table;
  std::vector<double> rel_err;
  ASSERT_TRUE(controller
                  .Run([&](const PartialResult& partial) {
                    for (uint64_t id :
                         controller.layout().batches[partial.batch]) {
                      accumulated.push_back(fact.row(id));
                    }
                    const double scale = static_cast<double>(fact.num_rows()) /
                                         accumulated.size();
                    auto expected =
                        EvaluateReference(*plan, catalog, accumulated, scale);
                    EXPECT_TRUE(expected.ok());
                    ExpectTablesEqual(partial.rows, *expected,
                                      "analytic batch " +
                                          std::to_string(partial.batch));
                    if (!partial.estimates.empty()) {
                      rel_err.push_back(partial.estimates[0][0].rel_stddev);
                    }
                    return BatchAction::kContinue;
                  })
                  .ok());
  ASSERT_EQ(rel_err.size(), 10u);
  EXPECT_GT(rel_err.front(), 0.0);           // uncertainty reported early
  EXPECT_LT(rel_err.back(), rel_err.front());  // and it shrinks
  EXPECT_NEAR(rel_err.back(), 0.0, 1e-12);   // exact at the final batch
  // Classification still prunes: far fewer re-evaluations than the
  // conservative everything-is-pending bound.
  uint64_t recomputed = controller.metrics().TotalRecomputedRows();
  uint64_t conservative_bound = 0;
  for (size_t b = 0; b + 1 < 10; ++b) {
    conservative_bound += controller.layout().batches[b].size() * (9 - b);
  }
  EXPECT_LT(recomputed, conservative_bound / 2);
}

// Analytic mode must also survive the grouped / correlated shapes.
TEST(AnalyticErrorTest, GroupedAndCorrelatedShapesExact) {
  Catalog catalog;
  FillCatalog(&catalog, 500, 43);
  auto functions = FunctionRegistry::Default();
  for (QueryShape shape :
       {QueryShape::kGroupedSpja, QueryShape::kCorrelated,
        QueryShape::kHavingTop}) {
    auto plan = BuildQuery(shape, catalog, functions);
    ASSERT_TRUE(plan.ok());
    EngineOptions options;
    options.error_method = ErrorMethod::kAnalytic;
    options.num_batches = 6;
    options.seed = 3;
    QueryController controller(&catalog, *plan, options);
    ASSERT_TRUE(controller.Init().ok());
    std::vector<Row> accumulated;
    const Table& fact = *(*catalog.Find("sessions"))->table;
    ASSERT_TRUE(controller
                    .Run([&](const PartialResult& partial) {
                      for (uint64_t id :
                           controller.layout().batches[partial.batch]) {
                        accumulated.push_back(fact.row(id));
                      }
                      const double scale =
                          static_cast<double>(fact.num_rows()) /
                          accumulated.size();
                      auto expected = EvaluateReference(*plan, catalog,
                                                        accumulated, scale);
                      EXPECT_TRUE(expected.ok());
                      ExpectTablesEqual(partial.rows, *expected, "analytic");
                      return BatchAction::kContinue;
                    })
                    .ok());
  }
}

// The observer can stop the run early (the paper's interactive control).
TEST(ObserverTest, EarlyStop) {
  Catalog catalog;
  FillCatalog(&catalog, 200, 31);
  auto functions = FunctionRegistry::Default();
  auto plan = BuildQuery(QueryShape::kSimpleSpja, catalog, functions);
  ASSERT_TRUE(plan.ok());

  EngineOptions options;
  options.num_batches = 10;
  options.num_trials = 4;
  QueryController controller(&catalog, *plan, options);
  ASSERT_TRUE(controller.Init().ok());
  int calls = 0;
  ASSERT_TRUE(controller
                  .Run([&](const PartialResult&) {
                    ++calls;
                    return calls >= 3 ? BatchAction::kStop
                                      : BatchAction::kContinue;
                  })
                  .ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(controller.metrics().batches.size(), 3u);
}

// OPT1 should keep the non-deterministic set far smaller than the
// conservative tagging on the SBI query.
TEST(PruningTest, Opt1ShrinksNondeterministicSet) {
  // The undecided band around the refining aggregate shrinks like 1/sqrt(n),
  // so the effect needs a reasonable data size to be visible.
  Catalog catalog;
  FillCatalog(&catalog, 4000, 37);
  auto functions = FunctionRegistry::Default();
  auto plan = BuildQuery(QueryShape::kSbi, catalog, functions);
  ASSERT_TRUE(plan.ok());

  auto run = [&](bool opt1) {
    EngineOptions options;
    options.tuple_partition = opt1;
    // Realistic trial count: with very few replicas the envelope is too
    // noisy and recovery storms dominate (see bench_fig9d for the sweep).
    options.num_trials = 50;
    options.num_batches = 8;
    options.seed = 9;
    QueryController controller(&catalog, *plan, options);
    EXPECT_TRUE(controller.Init().ok());
    EXPECT_TRUE(controller.Run(nullptr).ok());
    return controller.metrics().TotalRecomputedRows();
  };
  const uint64_t pruned = run(true);
  const uint64_t conservative = run(false);
  EXPECT_LT(pruned, conservative / 2) << "OPT1 should prune most tuples";
}

// Bit-exact fingerprint of one run: every partial result's rows and error
// estimates (exact double bits, via ToString with full precision would
// round — so store the raw values) plus the recomputation counters.
struct RunFingerprint {
  std::vector<Table> partial_rows;
  std::vector<std::vector<std::vector<ErrorEstimate>>> estimates;
  uint64_t recomputed_rows = 0;
  int failure_recoveries = 0;
};

void ExpectBitIdentical(const RunFingerprint& a, const RunFingerprint& b,
                        const std::string& context) {
  EXPECT_EQ(a.recomputed_rows, b.recomputed_rows) << context;
  EXPECT_EQ(a.failure_recoveries, b.failure_recoveries) << context;
  ASSERT_EQ(a.partial_rows.size(), b.partial_rows.size()) << context;
  for (size_t p = 0; p < a.partial_rows.size(); ++p) {
    const Table& ta = a.partial_rows[p];
    const Table& tb = b.partial_rows[p];
    ASSERT_EQ(ta.num_rows(), tb.num_rows()) << context << " batch " << p;
    for (size_t r = 0; r < ta.num_rows(); ++r) {
      ASSERT_EQ(ta.row(r).size(), tb.row(r).size()) << context;
      for (size_t c = 0; c < ta.row(r).size(); ++c) {
        // Bit-identical, not approximately equal: Equals on doubles is
        // exact equality, which is the whole point of this test.
        EXPECT_TRUE(ta.row(r)[c].Equals(tb.row(r)[c]))
            << context << " batch " << p << " row " << r << " col " << c
            << ": " << ta.row(r)[c].ToString() << " vs "
            << tb.row(r)[c].ToString();
      }
    }
    ASSERT_EQ(a.estimates[p].size(), b.estimates[p].size()) << context;
    for (size_t r = 0; r < a.estimates[p].size(); ++r) {
      ASSERT_EQ(a.estimates[p][r].size(), b.estimates[p][r].size()) << context;
      for (size_t k = 0; k < a.estimates[p][r].size(); ++k) {
        const ErrorEstimate& ea = a.estimates[p][r][k];
        const ErrorEstimate& eb = b.estimates[p][r][k];
        EXPECT_EQ(ea.value, eb.value) << context;
        EXPECT_EQ(ea.stddev, eb.stddev) << context;
        EXPECT_EQ(ea.ci_lo, eb.ci_lo) << context;
        EXPECT_EQ(ea.ci_hi, eb.ci_hi) << context;
      }
    }
  }
}

// The tentpole invariant: results are bit-identical regardless of thread
// count. The parallel phases only evaluate; all accumulation and constraint
// registration replays in serial row/trial order, and per-lane RNGs are
// split deterministically (Rng::ForLane), so num_threads is purely a
// performance knob.
TEST(ParallelDeterminismTest, ThreadCountDoesNotChangeResults) {
  Catalog catalog;
  FillCatalog(&catalog, 1200, /*seed=*/23);
  auto functions = FunctionRegistry::Default();

  // An SBI query (non-deterministic set + per-trial re-evaluation) and a
  // grouped join (group materialization) — together they cover every
  // parallelized loop.
  for (QueryShape shape : {QueryShape::kSbi, QueryShape::kGroupedSpja}) {
    auto plan = BuildQuery(shape, catalog, functions);
    ASSERT_TRUE(plan.ok()) << plan.status();

    auto run = [&](size_t num_threads) {
      EngineOptions options;
      options.num_trials = 20;
      options.num_batches = 6;
      options.slack = 2.0;
      options.seed = 11;
      options.num_threads = num_threads;
      QueryController controller(&catalog, *plan, options);
      EXPECT_TRUE(controller.Init().ok());
      RunFingerprint fp;
      Status run_status = controller.Run([&](const PartialResult& partial) {
        fp.partial_rows.push_back(partial.rows);
        fp.estimates.push_back(partial.estimates);
        return BatchAction::kContinue;
      });
      EXPECT_TRUE(run_status.ok()) << run_status;
      fp.recomputed_rows = controller.metrics().TotalRecomputedRows();
      fp.failure_recoveries = controller.metrics().TotalFailureRecoveries();
      return fp;
    };

    const RunFingerprint inline_run = run(0);
    const RunFingerprint one_thread = run(1);
    const RunFingerprint four_threads = run(4);
    ASSERT_EQ(inline_run.partial_rows.size(), 6u);
    const char* shape_name =
        shape == QueryShape::kSbi ? "sbi" : "grouped_spja";
    ExpectBitIdentical(inline_run, one_thread,
                       std::string(shape_name) + " threads 0 vs 1");
    ExpectBitIdentical(inline_run, four_threads,
                       std::string(shape_name) + " threads 0 vs 4");
  }
}

// Same invariant end-to-end through Session/SQL on the paper's workloads:
// one nested TPC-H query and one nested Conviva query, small scale.
TEST(ParallelDeterminismTest, WorkloadQueriesViaSession) {
  auto functions = FunctionRegistry::Default();
  RegisterConvivaUdfs(functions.get());

  struct Case {
    std::string name;
    std::shared_ptr<Catalog> catalog;
    std::string sql;
  };
  std::vector<Case> cases;

  const std::vector<BenchQuery> tpch_queries = TpchQueries();
  for (const BenchQuery& q : tpch_queries) {
    if (!q.nested) continue;
    TpchConfig config;
    auto catalog = MakeTpchCatalog(config.Scaled(0.02), q.streamed_table);
    ASSERT_TRUE(catalog.ok()) << catalog.status();
    cases.push_back({"tpch_" + q.id, *catalog, q.sql});
    break;
  }
  const std::vector<BenchQuery> conviva_queries = ConvivaQueries();
  for (const BenchQuery& q : conviva_queries) {
    if (!q.nested) continue;
    ConvivaConfig config;
    auto catalog = MakeConvivaCatalog(config.Scaled(0.02));
    ASSERT_TRUE(catalog.ok()) << catalog.status();
    cases.push_back({"conviva_" + q.id, *catalog, q.sql});
    break;
  }
  ASSERT_EQ(cases.size(), 2u);

  for (const Case& c : cases) {
    auto run = [&](size_t num_threads) {
      EngineOptions options;
      options.num_trials = 15;
      options.num_batches = 5;
      options.slack = 2.0;
      options.seed = 77;
      options.num_threads = num_threads;
      Session session(c.catalog.get(), options, functions);
      RunFingerprint fp;
      auto compiled = session.Sql(c.sql);
      EXPECT_TRUE(compiled.ok()) << c.name << ": " << compiled.status();
      if (!compiled.ok()) return fp;
      Status run_status = (*compiled)->Run([&](const PartialResult& partial) {
        fp.partial_rows.push_back(partial.rows);
        fp.estimates.push_back(partial.estimates);
        return BatchAction::kContinue;
      });
      EXPECT_TRUE(run_status.ok()) << c.name << ": " << run_status;
      fp.recomputed_rows = (*compiled)->metrics().TotalRecomputedRows();
      fp.failure_recoveries = (*compiled)->metrics().TotalFailureRecoveries();
      return fp;
    };

    const RunFingerprint inline_run = run(0);
    const RunFingerprint one_thread = run(1);
    const RunFingerprint four_threads = run(4);
    ASSERT_EQ(inline_run.partial_rows.size(), 5u) << c.name;
    ExpectBitIdentical(inline_run, one_thread, c.name + " threads 0 vs 1");
    ExpectBitIdentical(inline_run, four_threads, c.name + " threads 0 vs 4");
  }
}

// Failure-recovery seams under deterministic injection (failpoint.h).
// An *injected* integrity verdict rolls back to the requested target,
// replays with unfrozen ranges, and reproduces the fault-free bits; a
// *natural* envelope escape must freeze the recovered variation ranges
// through the replay window instead (the §5.1 livelock guard).
TEST(RecoveryInjectionTest, InjectedVerdictRollsBackAndReplaysBitIdentical) {
  Catalog catalog;
  FillCatalog(&catalog, 1500, /*seed=*/31);
  auto functions = FunctionRegistry::Default();
  auto plan = BuildQuery(QueryShape::kSbi, catalog, functions);
  ASSERT_TRUE(plan.ok()) << plan.status();

  auto run = [&](const std::string& failpoints, QueryMetrics* metrics) {
    EngineOptions options;
    // Enough replicas that the baseline run recovers zero times: every
    // recovery below is attributable to the armed failpoint.
    options.num_trials = 50;
    options.num_batches = 6;
    options.slack = 2.0;
    options.seed = 13;
    options.failpoints = failpoints;
    QueryController controller(&catalog, *plan, options);
    EXPECT_TRUE(controller.Init().ok());
    RunFingerprint fp;
    Status run_status = controller.Run([&](const PartialResult& partial) {
      fp.partial_rows.push_back(partial.rows);
      fp.estimates.push_back(partial.estimates);
      return BatchAction::kContinue;
    });
    EXPECT_TRUE(run_status.ok()) << run_status;
    if (metrics != nullptr) *metrics = controller.metrics();
    return fp;
  };

  QueryMetrics baseline;
  const RunFingerprint clean = run("", &baseline);
  // The chosen parameters keep the fault-free run recovery-free, so every
  // counter below isolates the injected fault.
  ASSERT_EQ(baseline.TotalFailureRecoveries(), 0);

  // Injected verdict at batch 4, rollback depth 2 → restores checkpoint 2.
  QueryMetrics injected;
  RunFingerprint faulty =
      run("exec-integrity-verdict=at:4,times:1,arg:2", &injected);
  EXPECT_EQ(injected.TotalFailureRecoveries(), 1);
  EXPECT_EQ(injected.TotalInjectedFaults(), 1);
  EXPECT_EQ(injected.MaxRollbackDepth(), 2);  // rollback target was batch 2
  // Injected recoveries replay with *unfrozen* ranges...
  EXPECT_EQ(injected.TotalFrozenReplayBatches(), 0);
  EXPECT_FALSE(injected.DegradedMode());
  // ...and therefore reproduce the fault-free bits. The recomputation /
  // recovery counters legitimately differ (the replay did extra work), so
  // only the observable results are compared.
  faulty.recomputed_rows = clean.recomputed_rows;
  faulty.failure_recoveries = clean.failure_recoveries;
  ExpectBitIdentical(faulty, clean, "injected verdict replay");

  // A natural envelope escape at batch 3 freezes the recovered ranges for
  // the whole replay window (depth ≥ 1 batches).
  QueryMetrics natural;
  run("registry-envelope-fault=at:3,times:4", &natural);
  EXPECT_GE(natural.TotalFailureRecoveries(), 1);
  EXPECT_EQ(natural.TotalInjectedFaults(), 0);
  EXPECT_GE(natural.TotalFrozenReplayBatches(), 1);
  EXPECT_GE(natural.MaxRollbackDepth(), 1);
}

// Shard-granularity rollback isolation. Killing one shard mid-batch rolls
// the whole query back to the last consistent cut; if any other shard's
// in-flight epilogue state survived the rewind — a partial aggregate
// applied early, a scratch slot leaking across the shard boundary — the
// replay would diverge from the unsharded run. Bit-identity across
// {S=1, S=4} × {0, 4 threads} × {each victim shard} is therefore exactly
// the no-cross-shard-leak property, checked through the engine's real
// recovery path (the serial apply phase guards every registry mutation
// with engine_serial_phase).
TEST(ShardIsolationTest, KilledShardRollbackCannotLeakAcrossSlices) {
  Catalog catalog;
  FillCatalog(&catalog, 1500, /*seed=*/31);
  auto functions = FunctionRegistry::Default();
  auto plan = BuildQuery(QueryShape::kSbi, catalog, functions);
  ASSERT_TRUE(plan.ok()) << plan.status();

  auto run = [&](size_t num_shards, size_t num_threads,
                 const std::string& failpoints, QueryMetrics* metrics) {
    EngineOptions options;
    options.num_trials = 50;
    options.num_batches = 6;
    options.slack = 2.0;
    options.seed = 13;
    options.num_threads = num_threads;
    options.num_shards = num_shards;
    options.failpoints = failpoints;
    QueryController controller(&catalog, *plan, options);
    EXPECT_TRUE(controller.Init().ok());
    RunFingerprint fp;
    Status run_status = controller.Run([&](const PartialResult& partial) {
      fp.partial_rows.push_back(partial.rows);
      fp.estimates.push_back(partial.estimates);
      return BatchAction::kContinue;
    });
    EXPECT_TRUE(run_status.ok()) << run_status;
    if (metrics != nullptr) *metrics = controller.metrics();
    return fp;
  };

  QueryMetrics baseline;
  const RunFingerprint clean = run(1, 0, "", &baseline);
  ASSERT_EQ(baseline.TotalFailureRecoveries(), 0);

  // Sharding alone changes nothing: clean S=4 matches clean S=1 bit for
  // bit at both thread counts.
  ExpectBitIdentical(run(4, 0, "", nullptr), clean, "clean S=4 t=0");
  ExpectBitIdentical(run(4, 4, "", nullptr), clean, "clean S=4 t=4");

  // Kill each shard in turn during batch 4's eval phase (failpoint detail
  // = batch * 64 + shard). The victim is declared dead, the batch rolls
  // back one consistent cut, and the replay must land on the clean bits.
  for (int victim = 0; victim < 4; ++victim) {
    const std::string spec = "shard-eval-fault=at:" +
                             std::to_string(4 * 64 + victim) + ",times:1";
    for (size_t num_threads : {size_t{0}, size_t{4}}) {
      QueryMetrics killed;
      RunFingerprint faulty = run(4, num_threads, spec, &killed);
      EXPECT_EQ(killed.TotalShardDeaths(), 1)
          << "victim=" << victim << " t=" << num_threads;
      EXPECT_GE(killed.TotalFailureRecoveries(), 1);
      EXPECT_GE(killed.TotalInjectedFaults(), 1);
      faulty.recomputed_rows = clean.recomputed_rows;
      faulty.failure_recoveries = clean.failure_recoveries;
      ExpectBitIdentical(faulty, clean,
                         "victim=" + std::to_string(victim) + " t=" +
                             std::to_string(num_threads));
    }
  }
}

}  // namespace
}  // namespace iolap
