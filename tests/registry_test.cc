// Unit tests for the AggregateRegistry: lazy re-scaling, lookups, trial
// replicas, constraint routing, refresh, rollback and per-value
// degradation.
//
// The mutation API requires the engine's serial-phase capability
// (IOLAP_REQUIRES(engine_serial_phase)); tests that publish/refresh enter
// the phase with a ScopedThreadRole, exactly like the engine's apply phase
// does — a no-op at runtime, checked under Clang -Wthread-safety.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "iolap/aggregate_registry.h"
#include "plan/plan_builder.h"

namespace iolap {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest() : functions_(FunctionRegistry::Default()) {
    Table t(Schema({{"k", ValueType::kInt64}, {"x", ValueType::kDouble}}));
    t.AddRow({Value::Int64(1), Value::Double(2)});
    EXPECT_TRUE(catalog_.RegisterTable("t", std::move(t), true).ok());

    // Block 0: per-k SUM (linear in the scale) and AVG (invariant).
    PlanBuilder pb(&catalog_, functions_);
    auto& b = pb.NewBlock("per_k");
    b.Scan("t")
        .GroupBy("k")
        .Agg("sum", b.ColRef("x"), "s")
        .Agg("avg", b.ColRef("x"), "a");
    auto plan = pb.Build();
    EXPECT_TRUE(plan.ok()) << plan.status();
    plan_ = std::make_unique<QueryPlan>(std::move(*plan));
    registry_ = std::make_unique<AggregateRegistry>(plan_.get(), 2.0);
  }

  Row Key(int64_t k) { return {Value::Int64(k)}; }

  Catalog catalog_;
  std::shared_ptr<FunctionRegistry> functions_;
  std::unique_ptr<QueryPlan> plan_;
  std::unique_ptr<AggregateRegistry> registry_;
};

TEST_F(RegistryTest, LookupMissingGroup) {
  EXPECT_TRUE(registry_->Lookup(0, 1, Key(9)).is_null());
  EXPECT_TRUE(registry_->LookupRange(0, 1, Key(9)).IsUnbounded());
}

TEST_F(RegistryTest, KeyColumnsResolveToKey) {
  EXPECT_EQ(registry_->Lookup(0, 0, Key(3)).int64(), 3);
  EXPECT_DOUBLE_EQ(registry_->LookupRange(0, 0, Key(3)).lo, 3.0);
}

TEST_F(RegistryTest, LinearAggregateRescalesLazily) {
  ScopedThreadRole serial(engine_serial_phase);
  registry_->SetBlockScale(0, 4.0);
  // Unscaled sum 10, avg 5.
  auto result = registry_->Publish(0, Key(1), 0, {Value::Double(10), Value::Double(5)},
                                   {{9, 10, 11}, {4, 5, 6}}, true);
  EXPECT_TRUE(result.ok);
  // col 1 = sum (linear): scaled x4; col 2 = avg (invariant).
  EXPECT_DOUBLE_EQ(registry_->Lookup(0, 1, Key(1)).AsDouble(), 40.0);
  EXPECT_DOUBLE_EQ(registry_->Lookup(0, 2, Key(1)).AsDouble(), 5.0);
  // Trials scale the same way.
  EXPECT_DOUBLE_EQ(registry_->LookupTrial(0, 1, Key(1), 0).AsDouble(), 36.0);
  EXPECT_DOUBLE_EQ(registry_->LookupTrial(0, 2, Key(1), 2).AsDouble(), 6.0);
  // A new scale changes lookups without republication.
  registry_->SetBlockScale(0, 2.0);
  EXPECT_DOUBLE_EQ(registry_->Lookup(0, 1, Key(1)).AsDouble(), 20.0);
  EXPECT_DOUBLE_EQ(registry_->Lookup(0, 2, Key(1)).AsDouble(), 5.0);
}

TEST_F(RegistryTest, TrialOutOfRangeFallsBackToMain) {
  ScopedThreadRole serial(engine_serial_phase);
  registry_->SetBlockScale(0, 1.0);
  ASSERT_TRUE(registry_->Publish(0, Key(1), 0, {Value::Double(10), Value::Double(5)},
                                 {{}, {}}, false)
                  .ok);
  EXPECT_DOUBLE_EQ(registry_->LookupTrial(0, 1, Key(1), 7).AsDouble(), 10.0);
}

TEST_F(RegistryTest, RefreshChecksUnderNewScale) {
  ScopedThreadRole serial(engine_serial_phase);
  registry_->SetBlockScale(0, 2.0);
  ASSERT_TRUE(registry_->Publish(0, Key(1), 0, {Value::Double(10), Value::Double(5)},
                                 {{9, 10, 11}, {5, 5, 5}}, true)
                  .ok);
  // A pruning decision bounds the scaled sum from above at 50.
  registry_->RequireUpper(0, 1, Key(1), 50.0);
  // Scale 4 pushes the scaled envelope to [36, 44]: still fine.
  registry_->SetBlockScale(0, 4.0);
  EXPECT_TRUE(registry_->Refresh(0, Key(1), 1, true).ok);
  // Scale 6 -> scaled max 66 > 50: integrity failure.
  registry_->SetBlockScale(0, 6.0);
  const auto fail = registry_->Refresh(0, Key(1), 2, true);
  EXPECT_FALSE(fail.ok);
}

TEST_F(RegistryTest, RefreshOnMissingGroupReportsMissing) {
  ScopedThreadRole serial(engine_serial_phase);
  const auto result = registry_->Refresh(0, Key(42), 0, true);
  EXPECT_TRUE(result.missing);
}

TEST_F(RegistryTest, ConstraintsGateFailuresAndRangesNarrow) {
  ScopedThreadRole serial(engine_serial_phase);
  registry_->SetBlockScale(0, 1.0);
  ASSERT_TRUE(registry_->Publish(0, Key(1), 0, {Value::Double(10), Value::Double(5)},
                                 {{9, 10, 11}, {5, 5, 5}}, true)
                  .ok);
  // Without constraints, wild movement is re-based silently.
  ASSERT_TRUE(registry_->Publish(0, Key(1), 1, {Value::Double(100), Value::Double(5)},
                                 {{90, 100, 110}, {5, 5, 5}}, true)
                  .ok);
  // Constrain, then violate.
  registry_->RequireUpper(0, 1, Key(1), 120.0);
  const auto fail = registry_->Publish(0, Key(1), 2,
                                       {Value::Double(200), Value::Double(5)},
                                       {{190, 200, 210}, {5, 5, 5}}, true);
  EXPECT_FALSE(fail.ok);
}

TEST_F(RegistryTest, RepeatedFailuresDisableTheRange) {
  ScopedThreadRole serial(engine_serial_phase);
  registry_->SetBlockScale(0, 1.0);
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(registry_->Publish(0, Key(1), 0,
                                   {Value::Double(10), Value::Double(5)},
                                   {{10}, {5}}, true)
                    .ok);
    registry_->RequireUpper(0, 1, Key(1), 15.0);
    const auto fail = registry_->Publish(
        0, Key(1), 1, {Value::Double(30), Value::Double(5)}, {{30}, {5}}, true);
    EXPECT_FALSE(fail.ok) << "round " << round;
    registry_->RollbackTo(0, 1);
  }
  // Third strike: the range is permanently unbounded and can't fail.
  EXPECT_TRUE(registry_->LookupRange(0, 1, Key(1)).IsUnbounded());
  ASSERT_TRUE(registry_->Publish(0, Key(1), 1,
                                 {Value::Double(1000), Value::Double(5)},
                                 {{1000}, {5}}, true)
                  .ok);
}

TEST_F(RegistryTest, RollbackErasesYoungGroups) {
  ScopedThreadRole serial(engine_serial_phase);
  registry_->SetBlockScale(0, 1.0);
  ASSERT_TRUE(registry_->Publish(0, Key(1), 0, {Value::Double(1), Value::Double(1)},
                                 {{1}, {1}}, true)
                  .ok);
  ASSERT_TRUE(registry_->Publish(0, Key(2), 3, {Value::Double(2), Value::Double(2)},
                                 {{2}, {2}}, true)
                  .ok);
  EXPECT_EQ(registry_->GroupCount(0), 2u);
  registry_->RollbackTo(1, 0);
  EXPECT_EQ(registry_->GroupCount(0), 1u);
  EXPECT_TRUE(registry_->Lookup(0, 1, Key(2)).is_null());
  EXPECT_FALSE(registry_->Lookup(0, 1, Key(1)).is_null());
}

TEST_F(RegistryTest, RelationBytesAndTotalBytes) {
  ScopedThreadRole serial(engine_serial_phase);
  registry_->SetBlockScale(0, 1.0);
  EXPECT_EQ(registry_->RelationBytes(0), 0u);
  ASSERT_TRUE(registry_->Publish(0, Key(1), 0, {Value::Double(1), Value::Double(1)},
                                 {{1, 1}, {1, 1}}, true)
                  .ok);
  EXPECT_GT(registry_->RelationBytes(0), 0u);
  EXPECT_GE(registry_->TotalBytes(), registry_->RelationBytes(0));
}

TEST_F(RegistryTest, ConstraintOnMissingOrKeyColumnIsIgnored) {
  ScopedThreadRole serial(engine_serial_phase);
  // Neither call may crash or create entries.
  registry_->RequireUpper(0, 1, Key(77), 1.0);
  registry_->RequireLower(0, 0, Key(1), 1.0);
  registry_->RequireContainment(0, 1, Key(77));
  EXPECT_EQ(registry_->GroupCount(0), 0u);
}

TEST_F(RegistryTest, ShardSlicesPartitionTheRelation) {
  ScopedThreadRole serial(engine_serial_phase);
  registry_->SetBlockScale(0, 1.0);
  for (int64_t k = 0; k < 32; ++k) {
    ASSERT_TRUE(registry_
                    ->Publish(0, Key(k), 0,
                              {Value::Double(double(k)), Value::Double(1)},
                              {{1.0}, {1.0}}, true)
                    .ok);
  }
  for (size_t num_shards : {size_t{1}, size_t{3}, size_t{4}}) {
    size_t groups = 0, bytes = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      groups += registry_->ShardGroupCount(0, s, num_shards);
      bytes += registry_->ShardRelationBytes(0, s, num_shards);
    }
    // The slices are a partition: every group and every byte lands in
    // exactly one shard, no overlap, no leftovers.
    EXPECT_EQ(groups, registry_->GroupCount(0)) << "S=" << num_shards;
    EXPECT_EQ(bytes, registry_->RelationBytes(0)) << "S=" << num_shards;
  }
  // With 32 keys over 4 shards the hash cannot be degenerate: at least two
  // shards own a nonempty slice (broadcast payloads differ per shard).
  size_t nonempty = 0;
  for (size_t s = 0; s < 4; ++s) {
    nonempty += registry_->ShardGroupCount(0, s, 4) > 0 ? 1 : 0;
  }
  EXPECT_GE(nonempty, 2u);
}

TEST_F(RegistryTest, ShardSliceRollbackIsIsolated) {
  ScopedThreadRole serial(engine_serial_phase);
  registry_->SetBlockScale(0, 1.0);
  constexpr size_t kShards = 4;
  // Two epochs of publishes across every shard slice.
  for (int64_t k = 0; k < 16; ++k) {
    ASSERT_TRUE(registry_
                    ->Publish(0, Key(k), k < 8 ? 0 : 3,
                              {Value::Double(double(k)), Value::Double(1)},
                              {{1.0}, {1.0}}, true)
                    .ok);
  }
  std::vector<size_t> before(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    before[s] = registry_->ShardGroupCount(0, s, kShards);
  }
  // Roll back the young epoch (batch 3). Rollback routes by the same group
  // key hash the shards do, so each slice loses exactly its own young
  // groups — one shard's in-flight epilogue state is never visible to (or
  // erased through) another shard's slice.
  registry_->RollbackTo(1, 0);
  size_t surviving = 0;
  for (size_t s = 0; s < kShards; ++s) {
    const size_t after = registry_->ShardGroupCount(0, s, kShards);
    EXPECT_LE(after, before[s]) << "shard " << s;
    surviving += after;
  }
  EXPECT_EQ(surviving, registry_->GroupCount(0));
  // Old-epoch groups survive in their home slices, young ones are gone.
  for (int64_t k = 0; k < 16; ++k) {
    EXPECT_EQ(registry_->Lookup(0, 1, Key(k)).is_null(), k >= 8) << k;
  }
}

}  // namespace
}  // namespace iolap
