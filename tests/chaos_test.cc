// Chaos tests of failure recovery under deterministic fault injection
// (docs/INTERNALS.md §9). Two tiers:
//
//  * Bit-identity tier — schedules made only of *injected* (spurious)
//    faults, with fire counts below the recovery-storm staircase. The
//    controller replays injected recoveries with unfrozen variation ranges,
//    so the final state — every partial result, every error estimate, every
//    counter the engine derives from data — must be bit-identical to the
//    fault-free run, at 0 and at 4 worker threads.
//
//  * Degraded tier — natural-typed faults and recovery storms. These freeze
//    ranges on replay or walk down the degradation staircase, which legally
//    changes routing (and hence floating-point association), so the final
//    result is compared against the fault-free run with numeric tolerance
//    and the recovery metrics are asserted instead.
//
// Schedules are seed-reproducible: the randomized tier derives every spec
// from IOLAP_CHAOS_SEED (default fixed), and failure output prints the spec
// so a failing schedule replays exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "catalog/csv.h"
#include "common/failpoint.h"
#include "common/hash.h"
#include "common/random.h"
#include "iolap/query_controller.h"
#include "iolap/session.h"
#include "workloads/conviva.h"
#include "workloads/conviva_queries.h"
#include "workloads/tpch.h"
#include "workloads/tpch_queries.h"

namespace iolap {
namespace {

uint64_t ChaosSeed() {
  const char* env = std::getenv("IOLAP_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 20260805;
}

std::shared_ptr<FunctionRegistry> ChaosFunctions() {
  static std::shared_ptr<FunctionRegistry> functions = [] {
    auto f = FunctionRegistry::Default();
    RegisterConvivaUdfs(f.get());
    return f;
  }();
  return functions;
}

// Catalogs are cached per (workload, streamed table): generation dominates
// the runtime of a small chaos run.
std::shared_ptr<Catalog> TpchChaosCatalog(const std::string& streamed) {
  static std::map<std::string, std::shared_ptr<Catalog>> cache;
  auto it = cache.find(streamed);
  if (it != cache.end()) return it->second;
  TpchConfig config;
  auto catalog = MakeTpchCatalog(config.Scaled(0.01), streamed);
  EXPECT_TRUE(catalog.ok()) << catalog.status();
  return cache.emplace(streamed, *catalog).first->second;
}

std::shared_ptr<Catalog> ConvivaChaosCatalog() {
  static std::shared_ptr<Catalog> catalog = [] {
    ConvivaConfig config;
    auto made = MakeConvivaCatalog(config.Scaled(0.01));
    EXPECT_TRUE(made.ok()) << made.status();
    return *made;
  }();
  return catalog;
}

struct ChaosOutcome {
  std::vector<Table> partial_rows;
  std::vector<std::vector<std::vector<ErrorEstimate>>> estimates;
  QueryMetrics metrics;
  bool ok = false;
};

ChaosOutcome RunChaos(std::shared_ptr<Catalog> catalog, const std::string& sql,
                      const std::string& failpoints, size_t num_threads,
                      int num_batches = 4, int num_trials = 24,
                      size_t num_shards = 1) {
  EngineOptions options;
  options.num_trials = num_trials;
  options.num_batches = num_batches;
  options.slack = 2.0;
  options.seed = 99;
  options.num_threads = num_threads;
  options.failpoints = failpoints;
  options.num_shards = num_shards;
  Session session(catalog.get(), options, ChaosFunctions());
  ChaosOutcome outcome;
  auto compiled = session.Sql(sql);
  EXPECT_TRUE(compiled.ok()) << compiled.status() << "\n  sql: " << sql;
  if (!compiled.ok()) return outcome;
  Status run_status = (*compiled)->Run([&](const PartialResult& partial) {
    outcome.partial_rows.push_back(partial.rows);
    outcome.estimates.push_back(partial.estimates);
    return BatchAction::kContinue;
  });
  EXPECT_TRUE(run_status.ok()) << run_status << "\n  spec: " << failpoints;
  outcome.metrics = (*compiled)->metrics();
  outcome.ok = run_status.ok();
  return outcome;
}

// Exact comparison: every partial result bit for bit.
void ExpectBitIdentical(const ChaosOutcome& faulty, const ChaosOutcome& clean,
                        const std::string& context) {
  ASSERT_TRUE(faulty.ok && clean.ok) << context;
  ASSERT_EQ(faulty.partial_rows.size(), clean.partial_rows.size()) << context;
  for (size_t p = 0; p < clean.partial_rows.size(); ++p) {
    const Table& tf = faulty.partial_rows[p];
    const Table& tc = clean.partial_rows[p];
    ASSERT_EQ(tf.num_rows(), tc.num_rows()) << context << " batch " << p;
    for (size_t r = 0; r < tf.num_rows(); ++r) {
      ASSERT_EQ(tf.row(r).size(), tc.row(r).size()) << context;
      for (size_t c = 0; c < tf.row(r).size(); ++c) {
        EXPECT_TRUE(tf.row(r)[c].Equals(tc.row(r)[c]))
            << context << " batch " << p << " row " << r << " col " << c
            << ": " << tf.row(r)[c].ToString() << " vs "
            << tc.row(r)[c].ToString();
      }
    }
    ASSERT_EQ(faulty.estimates[p].size(), clean.estimates[p].size()) << context;
    for (size_t r = 0; r < clean.estimates[p].size(); ++r) {
      ASSERT_EQ(faulty.estimates[p][r].size(), clean.estimates[p][r].size())
          << context;
      for (size_t k = 0; k < clean.estimates[p][r].size(); ++k) {
        EXPECT_EQ(faulty.estimates[p][r][k].value,
                  clean.estimates[p][r][k].value)
            << context << " batch " << p;
        EXPECT_EQ(faulty.estimates[p][r][k].stddev,
                  clean.estimates[p][r][k].stddev)
            << context << " batch " << p;
      }
    }
  }
}

// Tolerance comparison of the *final* batch only (degraded tier: both runs
// compute the same Q(D_n) = exact answer, via different routings).
void ExpectFinalClose(const ChaosOutcome& faulty, const ChaosOutcome& clean,
                      const std::string& context) {
  ASSERT_TRUE(faulty.ok && clean.ok) << context;
  ASSERT_FALSE(faulty.partial_rows.empty()) << context;
  ASSERT_FALSE(clean.partial_rows.empty()) << context;
  const Table& tf = faulty.partial_rows.back();
  const Table& tc = clean.partial_rows.back();
  ASSERT_EQ(tf.num_rows(), tc.num_rows()) << context;
  for (size_t r = 0; r < tf.num_rows(); ++r) {
    ASSERT_EQ(tf.row(r).size(), tc.row(r).size()) << context;
    for (size_t c = 0; c < tf.row(r).size(); ++c) {
      const Value& a = tf.row(r)[c];
      const Value& e = tc.row(r)[c];
      if (a.is_numeric() && e.is_numeric()) {
        const double tol = 1e-7 * std::max(1.0, std::fabs(e.AsDouble()));
        EXPECT_NEAR(a.AsDouble(), e.AsDouble(), tol)
            << context << " row " << r << " col " << c;
      } else {
        EXPECT_TRUE(a.Equals(e)) << context << " row " << r << " col " << c;
      }
    }
  }
}

struct ChaosCase {
  std::string name;
  std::shared_ptr<Catalog> catalog;
  std::string sql;
  bool nested = false;
};

std::vector<ChaosCase> AllWorkloadCases() {
  std::vector<ChaosCase> cases;
  for (const BenchQuery& q : TpchQueries()) {
    cases.push_back(
        {"tpch_" + q.id, TpchChaosCatalog(q.streamed_table), q.sql, q.nested});
  }
  for (const BenchQuery& q : ConvivaQueries()) {
    cases.push_back(
        {"conviva_" + q.id, ConvivaChaosCatalog(), q.sql, q.nested});
  }
  return cases;
}

// Two representative nested queries (tracked blocks + non-deterministic
// sets) used by the directed schedule matrix.
std::vector<ChaosCase> NestedCases() {
  std::vector<ChaosCase> nested;
  for (ChaosCase& c : AllWorkloadCases()) {
    if (!c.nested) continue;
    if (!nested.empty() && nested.back().name[0] == c.name[0]) continue;
    nested.push_back(c);  // first nested query of each workload
    if (nested.size() == 2) break;
  }
  return nested;
}

// ---------------------------------------------------------------------------
// Bit-identity tier
// ---------------------------------------------------------------------------

// Every workload query under a randomized injected-only multi-fault
// schedule: the controller-batch fault guarantees at least one recovery on
// every query; the extra faults land wherever the seed sends them. Final
// (and every partial) result must be bit-identical to the fault-free run at
// both thread counts.
TEST(ChaosTest, AllWorkloadQueriesUnderRandomizedSchedule) {
  const uint64_t seed = ChaosSeed();
  const int num_batches = 4;
  size_t index = 0;
  for (const ChaosCase& c : AllWorkloadCases()) {
    Rng rng(Mix64(seed) ^ index++);
    // Always at least one guaranteed injected recovery; more faults with
    // random placement on top.
    const int fault_batch =
        1 + static_cast<int>(rng.NextBounded(num_batches - 1));
    const int depth = 1 + static_cast<int>(rng.NextBounded(3));
    std::string spec = "controller-batch-fault=at:" +
                       std::to_string(fault_batch) +
                       ",times:1,arg:" + std::to_string(depth);
    if (rng.NextBounded(2) == 0) {
      spec += ";exec-integrity-verdict=at:" +
              std::to_string(rng.NextBounded(num_batches)) + ",times:2,arg:" +
              std::to_string(1 + rng.NextBounded(2));
    }
    if (rng.NextBounded(2) == 0) {
      spec += ";registry-publish-fault=at:" +
              std::to_string(rng.NextBounded(num_batches)) + ",times:1";
    }
    if (rng.NextBounded(2) == 0) {
      spec += ";checkpoint-restore-fault=at:" +
              std::to_string(rng.NextBounded(num_batches)) + ",times:1";
    }
    if (rng.NextBounded(2) == 0) {
      spec += ";pool-task-fault=prob:0.2:" + std::to_string(seed & 0xffff);
    }
    SCOPED_TRACE(c.name + " seed=" + std::to_string(seed) +
                 " spec=" + spec);

    const ChaosOutcome clean = RunChaos(c.catalog, c.sql, "", 0, num_batches);
    const ChaosOutcome faulty0 =
        RunChaos(c.catalog, c.sql, spec, 0, num_batches);
    const ChaosOutcome faulty4 =
        RunChaos(c.catalog, c.sql, spec, 4, num_batches);

    ExpectBitIdentical(faulty0, clean, c.name + " threads=0");
    ExpectBitIdentical(faulty4, clean, c.name + " threads=4");
    // The guaranteed fault is visible in the recovery metrics, on top of
    // whatever (deterministic) natural recoveries the baseline already has.
    EXPECT_GE(faulty0.metrics.TotalFailureRecoveries(),
              clean.metrics.TotalFailureRecoveries() + 1)
        << c.name;
    EXPECT_GE(faulty0.metrics.TotalInjectedFaults(), 1) << c.name;
    EXPECT_GE(faulty0.metrics.MaxRollbackDepth(), 1) << c.name;
    EXPECT_EQ(faulty0.metrics.DegradedMode(), clean.metrics.DegradedMode())
        << c.name;
  }
}

// Directed schedule matrix on the nested representatives: named fault
// shapes, each asserting bit-identity at 0 and 4 threads plus the metric
// that proves the fault actually happened.
TEST(ChaosTest, DirectedInjectedSchedules) {
  struct Schedule {
    std::string name;
    std::string spec;
    // Minimum values the recovery metrics must show (0 = unchecked).
    int min_recoveries = 0;
    int min_rollback_depth = 0;
    int min_full_restarts = 0;
    int min_corrupt_checkpoints = 0;
  };
  const std::vector<Schedule> schedules = {
      {"shallow-verdict", "exec-integrity-verdict=at:3,times:1,arg:1", 1, 1},
      {"deep-verdict", "exec-integrity-verdict=at:4,times:1,arg:3", 1, 3},
      {"publish-fault", "registry-publish-fault=at:3,times:1,arg:2", 1, 2},
      {"controller-restart", "controller-batch-fault=at:3,times:1,arg:10", 1,
       4, 1},
      {"corrupt-capture",
       "checkpoint-capture-corrupt=at:2,times:1;"
       "controller-batch-fault=at:3,times:1,arg:1",
       1, 2, 0, 1},
      {"restore-fault",
       "checkpoint-restore-fault=at:2,times:1;"
       "controller-batch-fault=at:3,times:1,arg:1",
       1, 2, 0, 1},
      // times:5 bounds the storm; a single recovery pass can consume one
      // fire per tracked block, so the recovery count floor is times /
      // (max tracked blocks per query) = 2.
      {"bounded-storm", "exec-integrity-verdict=at:2,times:5,arg:1", 2, 1},
      {"pool-crashes", "pool-task-fault=every:7"},
      {"multi-fault",
       "exec-integrity-verdict=at:2,times:1,arg:2;"
       "registry-publish-fault=at:4,times:1,arg:1;"
       "pool-task-fault=prob:0.25:3",
       2, 2},
  };
  const int num_batches = 6;
  for (const ChaosCase& c : NestedCases()) {
    const ChaosOutcome clean =
        RunChaos(c.catalog, c.sql, "", 0, num_batches, 10);
    for (const Schedule& s : schedules) {
      SCOPED_TRACE(c.name + " schedule=" + s.name + " spec=" + s.spec);
      const ChaosOutcome faulty0 =
          RunChaos(c.catalog, c.sql, s.spec, 0, num_batches, 10);
      const ChaosOutcome faulty4 =
          RunChaos(c.catalog, c.sql, s.spec, 4, num_batches, 10);
      ExpectBitIdentical(faulty0, clean, c.name + "/" + s.name + " t0");
      ExpectBitIdentical(faulty4, clean, c.name + "/" + s.name + " t4");
      EXPECT_GE(faulty0.metrics.TotalFailureRecoveries(),
                clean.metrics.TotalFailureRecoveries() + s.min_recoveries);
      EXPECT_GE(faulty0.metrics.MaxRollbackDepth(), s.min_rollback_depth);
      EXPECT_GE(faulty0.metrics.TotalFullRestarts(), s.min_full_restarts);
      EXPECT_GE(faulty0.metrics.TotalCorruptCheckpoints(),
                s.min_corrupt_checkpoints);
      // Injected-only schedules must not freeze any replayed ranges beyond
      // the baseline's (deterministic) natural recoveries, and must never
      // reach the degradation staircase.
      EXPECT_EQ(faulty0.metrics.TotalFrozenReplayBatches(),
                clean.metrics.TotalFrozenReplayBatches());
      EXPECT_EQ(faulty0.metrics.DegradedMode(), clean.metrics.DegradedMode());
      EXPECT_EQ(faulty0.metrics.TotalRecoveriesExhausted(), 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Directed recovery tests (checkpoint ring boundaries)
// ---------------------------------------------------------------------------

// A rollback target evicted from the checkpoint ring degrades to a full
// restart — and, being injected, still reproduces the fault-free bits.
TEST(ChaosTest, RollbackPastRingDegradesToFullRestart) {
  const ChaosCase c = NestedCases().front();
  EngineOptions options;
  options.num_trials = 24;
  options.num_batches = 6;
  options.slack = 2.0;
  options.seed = 99;
  options.checkpoint_history = 2;

  auto run = [&](const std::string& spec) {
    EngineOptions o = options;
    o.failpoints = spec;
    Session session(c.catalog.get(), o, ChaosFunctions());
    auto compiled = session.Sql(c.sql);
    EXPECT_TRUE(compiled.ok()) << compiled.status();
    ChaosOutcome outcome;
    Status st = (*compiled)->Run([&](const PartialResult& partial) {
      outcome.partial_rows.push_back(partial.rows);
      outcome.estimates.push_back(partial.estimates);
      return BatchAction::kContinue;
    });
    EXPECT_TRUE(st.ok()) << st;
    outcome.metrics = (*compiled)->metrics();
    outcome.ok = st.ok();
    return outcome;
  };

  const ChaosOutcome clean = run("");
  // A quiet baseline makes the counters below exact.
  ASSERT_EQ(clean.metrics.TotalFailureRecoveries(), 0);

  // At batch 5 the ring holds checkpoints for batches 3 and 4 only; a
  // depth-4 fault targets batch 1 → no candidate → full restart.
  const ChaosOutcome deep = run("controller-batch-fault=at:5,times:1,arg:4");
  ExpectBitIdentical(deep, clean, "evicted-target full restart");
  EXPECT_EQ(deep.metrics.TotalFullRestarts(), 1);
  EXPECT_EQ(deep.metrics.MaxRollbackDepth(), 6);  // batches 0..5 replayed

  // Boundary: a depth-2 fault targets batch 3 — exactly the oldest
  // retained checkpoint. Restores it; no restart.
  const ChaosOutcome boundary =
      run("controller-batch-fault=at:5,times:1,arg:2");
  ExpectBitIdentical(boundary, clean, "ring-boundary restore");
  EXPECT_EQ(boundary.metrics.TotalFullRestarts(), 0);
  EXPECT_EQ(boundary.metrics.MaxRollbackDepth(), 2);
}

// Every retained checkpoint corrupt: capture-corruption on each batch in
// the ring forces restore verification to reject all candidates and fall
// back to a full restart, counting each rejection.
TEST(ChaosTest, AllCheckpointsCorruptFallsBackToFullRestart) {
  const ChaosCase c = NestedCases().front();
  EngineOptions options;
  options.num_trials = 24;
  options.num_batches = 5;
  options.slack = 2.0;
  options.seed = 99;
  options.checkpoint_history = 2;
  options.failpoints =
      "checkpoint-capture-corrupt=every:1;"
      "controller-batch-fault=at:4,times:1,arg:1";
  Session session(c.catalog.get(), options, ChaosFunctions());
  auto compiled = session.Sql(c.sql);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  ASSERT_TRUE((*compiled)->Run(nullptr).ok());
  const QueryMetrics& m = (*compiled)->metrics();
  EXPECT_GE(m.TotalCorruptCheckpoints(), 2);  // both ring entries rejected
  EXPECT_GE(m.TotalFullRestarts(), 1);
}

// ---------------------------------------------------------------------------
// Degraded tier
// ---------------------------------------------------------------------------

// An unbounded verdict storm walks the full degradation staircase: widened
// slack, disabled pruning, then classification-free processing — which
// cannot fail, so the run terminates with exact (tolerance-level) results
// and the staircase visible in the metrics.
TEST(ChaosTest, RecoveryStormWalksDegradationStaircase) {
  const ChaosCase c = NestedCases().front();
  const int num_batches = 4;
  const ChaosOutcome clean = RunChaos(c.catalog, c.sql, "", 0, num_batches);
  const ChaosOutcome stormy = RunChaos(
      c.catalog, c.sql, "exec-integrity-verdict=every:1", 0, num_batches);
  ExpectFinalClose(stormy, clean, "staircase");
  EXPECT_TRUE(stormy.metrics.DegradedMode());
  EXPECT_EQ(stormy.metrics.batches.back().degrade_level, 3);
  EXPECT_EQ(stormy.metrics.TotalRecoveriesExhausted(), 1);
  EXPECT_GE(stormy.metrics.TotalFullRestarts(), 1);
  // The storm burned through the whole attempt budget before level 3.
  EXPECT_GT(stormy.metrics.TotalFailureRecoveries(), 32);
}

// A natural-typed envelope escape (not flagged injected) must freeze the
// recovered variation ranges through the replay window — the §5.1 livelock
// guard — and still converge to the exact final answer.
TEST(ChaosTest, NaturalEnvelopeFaultFreezesReplayedRanges) {
  // Queries whose classification registers finite decision constraints —
  // a tracker nobody decided on can never fail, injected or not, so the
  // envelope fault needs queries with real obligations.
  std::vector<ChaosCase> cases;
  for (const ChaosCase& c : AllWorkloadCases()) {
    if (c.name == "tpch_q20" || c.name == "conviva_c1") cases.push_back(c);
  }
  ASSERT_EQ(cases.size(), 2u);
  for (const ChaosCase& c : cases) {
    SCOPED_TRACE(c.name);
    const int num_batches = 5;
    const ChaosOutcome clean =
        RunChaos(c.catalog, c.sql, "", 0, num_batches, 10);
    // A fire against a tracker with no finite constraint is vacuous (such
    // a value can never fail), so give the schedule enough fires to reach
    // a constrained tracker.
    const ChaosOutcome faulty = RunChaos(
        c.catalog, c.sql, "registry-envelope-fault=every:1,times:64", 0,
        num_batches, 10);
    ExpectFinalClose(faulty, clean, c.name + " natural fault");
    EXPECT_GE(faulty.metrics.TotalFailureRecoveries(), 1);
    EXPECT_GE(faulty.metrics.TotalFrozenReplayBatches(), 1);
    EXPECT_EQ(faulty.metrics.TotalInjectedFaults(), 0);
  }
}

// ---------------------------------------------------------------------------
// Ingest retries
// ---------------------------------------------------------------------------

TEST(ChaosTest, IngestRetriesTransientFaultsWithBoundedBackoff) {
  const std::string path =
      ::testing::TempDir() + "/iolap_chaos_ingest.csv";
  {
    std::ofstream out(path);
    out << "a,b\n1,2.5\n3,4.5\n";
  }
  CsvRetryOptions retry;
  retry.max_attempts = 4;
  retry.initial_backoff_sec = 0.0;

  // Two transient faults, then success on the third attempt.
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Configure("csv-read-fault=every:1,times:2")
                  .ok());
  int attempts = 0;
  auto table = ReadCsvFileWithRetry(path, {}, retry, &attempts);
  FailpointRegistry::Instance().Clear();
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(table->num_rows(), 2u);

  // More faults than the attempt budget: the last error surfaces.
  ASSERT_TRUE(
      FailpointRegistry::Instance().Configure("csv-read-fault=every:1").ok());
  auto exhausted = ReadCsvFileWithRetry(path, {}, retry, &attempts);
  FailpointRegistry::Instance().Clear();
  EXPECT_FALSE(exhausted.ok());
  EXPECT_EQ(attempts, 4);

  // Deterministic failures are not retried: a missing file fails on the
  // first attempt.
  auto missing = ReadCsvFileWithRetry(path + ".nope", {}, retry, &attempts);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(attempts, 1);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Sharded execution: exchange faults, shard death, consistent-cut cuts
// ---------------------------------------------------------------------------

// Failpoint detail encoding for the exchange/shard seams: batch * 64 + shard
// (see ExchangeDetail in src/shard/exchange.cc; 64 = catalog kMaxShards).
int ShardDetail(int batch, int shard) { return batch * 64 + shard; }

// The acceptance gate: every workload query, S=4 with a randomized
// exchange/shard fault schedule, must be bit-identical to the clean S=1
// unsharded run at 0 and 4 threads. Exchange faults are injected-only, so
// every recovery replays unfrozen and Theorem 1 holds at shard granularity.
TEST(ShardChaosTest, AllWorkloadQueriesShardedBitIdenticalUnderFaults) {
  const uint64_t seed = ChaosSeed();
  const int num_batches = 4;
  size_t index = 0;
  for (const ChaosCase& c : AllWorkloadCases()) {
    Rng rng(Mix64(seed ^ 0x5aa4d0f3u) ^ index++);
    const int fault_batch =
        1 + static_cast<int>(rng.NextBounded(num_batches - 1));
    const int shard = static_cast<int>(rng.NextBounded(4));
    std::string spec;
    switch (rng.NextBounded(3)) {
      case 0:
        // One corrupt delivery: checksum reject, retransmit succeeds.
        spec = "exchange-message-corrupt=at:" +
               std::to_string(ShardDetail(fault_batch, shard)) + ",times:1";
        break;
      case 1:
        // Persistent drops to one endpoint: retries exhaust, shard dies,
        // controller rolls back to the last consistent cut and replays.
        spec = "exchange-message-drop=at:" +
               std::to_string(ShardDetail(fault_batch, shard)) + ",times:8";
        break;
      default:
        // Shard crashes mid-eval: declared dead, rebuilt via rollback.
        spec = "shard-eval-fault=at:" +
               std::to_string(ShardDetail(fault_batch, shard)) + ",times:1";
        break;
    }
    if (rng.NextBounded(2) == 0) {
      spec += ";exchange-message-corrupt=prob:0.05:" +
              std::to_string((seed ^ index) & 0xffff);
    }
    SCOPED_TRACE(c.name + " seed=" + std::to_string(seed) + " spec=" + spec);

    const ChaosOutcome clean =
        RunChaos(c.catalog, c.sql, "", 0, num_batches, 24, /*num_shards=*/1);
    const ChaosOutcome sharded0 =
        RunChaos(c.catalog, c.sql, spec, 0, num_batches, 24, /*num_shards=*/4);
    const ChaosOutcome sharded4 =
        RunChaos(c.catalog, c.sql, spec, 4, num_batches, 24, /*num_shards=*/4);

    ExpectBitIdentical(sharded0, clean, c.name + " S=4 threads=0");
    ExpectBitIdentical(sharded4, clean, c.name + " S=4 threads=4");
    // A clean sharded run must also match — sharding alone changes nothing.
    const ChaosOutcome sharded_clean =
        RunChaos(c.catalog, c.sql, "", 4, num_batches, 24, /*num_shards=*/4);
    ExpectBitIdentical(sharded_clean, clean, c.name + " S=4 clean");
  }
}

// Directed kill-shard-k-mid-batch: for every shard k, crash it during the
// eval phase of an interior batch, and separately starve its exchange
// endpoint until the retry deadline declares it dead. Both paths must
// recover to bits identical to the unsharded run, and the death must be
// visible in the shard/recovery metrics.
TEST(ShardChaosTest, KillShardMidBatchRecoversBitIdentical) {
  const ChaosCase c = NestedCases().front();
  const int num_batches = 4;
  const ChaosOutcome clean =
      RunChaos(c.catalog, c.sql, "", 0, num_batches, 24, /*num_shards=*/1);
  for (int k = 0; k < 4; ++k) {
    const std::string crash =
        "shard-eval-fault=at:" + std::to_string(ShardDetail(2, k)) + ",times:1";
    SCOPED_TRACE("kill shard " + std::to_string(k) + " spec=" + crash);
    for (size_t threads : {size_t{0}, size_t{4}}) {
      const ChaosOutcome killed = RunChaos(c.catalog, c.sql, crash, threads,
                                           num_batches, 24, /*num_shards=*/4);
      ExpectBitIdentical(killed, clean,
                         "crash k=" + std::to_string(k) + " t=" +
                             std::to_string(threads));
      EXPECT_GE(killed.metrics.TotalShardDeaths(), 1);
      EXPECT_GE(killed.metrics.TotalFailureRecoveries(),
                clean.metrics.TotalFailureRecoveries() + 1);
      EXPECT_GE(killed.metrics.TotalInjectedFaults(), 1);
    }
    // Exhaust the retry budget on one endpoint: every attempt to shard k in
    // batch 2 is dropped until the deadline fires and the shard is declared
    // dead (exchange_max_attempts defaults to 4; 8 drops outlast it).
    const std::string starve =
        "exchange-message-drop=at:" + std::to_string(ShardDetail(2, k)) +
        ",times:8";
    const ChaosOutcome starved = RunChaos(c.catalog, c.sql, starve, 0,
                                          num_batches, 24, /*num_shards=*/4);
    ExpectBitIdentical(starved, clean, "starve k=" + std::to_string(k));
    EXPECT_GE(starved.metrics.TotalShardDeaths(), 1);
    EXPECT_GE(starved.metrics.TotalExchangeRetries(), 1);
    EXPECT_GE(starved.metrics.TotalFailureRecoveries(), 1);
  }
}

// A transiently corrupt delivery is absorbed by the checksum/retry loop
// without any rollback: same bits, retries visible, no deaths.
TEST(ShardChaosTest, TransientCorruptionRetriesWithoutRollback) {
  const ChaosCase c = NestedCases().front();
  const int num_batches = 4;
  const ChaosOutcome clean =
      RunChaos(c.catalog, c.sql, "", 0, num_batches, 24, /*num_shards=*/1);
  const std::string spec =
      "exchange-message-corrupt=at:" + std::to_string(ShardDetail(1, 2)) +
      ",times:2";
  const ChaosOutcome faulty = RunChaos(c.catalog, c.sql, spec, 0, num_batches,
                                       24, /*num_shards=*/4);
  ExpectBitIdentical(faulty, clean, "transient corruption");
  EXPECT_GE(faulty.metrics.TotalExchangeRetries(), 2);
  EXPECT_EQ(faulty.metrics.TotalShardDeaths(), 0);
  EXPECT_EQ(faulty.metrics.TotalFailureRecoveries(),
            clean.metrics.TotalFailureRecoveries());
}

// Measured exchange bytes replace the cost model in QueryMetrics: a sharded
// run reports nonzero measured traffic that differs from the model's
// prediction, both totals are exposed, and the measurement is exactly the
// sum of the per-batch ExchangeLayer deltas.
TEST(ShardChaosTest, MeasuredBytesReplaceModeledBytes) {
  const ChaosCase c = NestedCases().front();
  const ChaosOutcome sharded =
      RunChaos(c.catalog, c.sql, "", 0, 4, 24, /*num_shards=*/4);
  ASSERT_TRUE(sharded.ok);
  EXPECT_GT(sharded.metrics.TotalShippedBytes(), 0u);
  EXPECT_GT(sharded.metrics.TotalModeledShippedBytes(), 0u);
  EXPECT_NE(sharded.metrics.TotalShippedBytes(),
            sharded.metrics.TotalModeledShippedBytes());
  EXPECT_GT(sharded.metrics.TotalExchangeMessages(), 0u);
  // Retransmissions raise the measured wire bytes above the clean run; the
  // model, blind to the wire, predicts the same traffic either way.
  const std::string spec = "exchange-message-corrupt=at:" +
                           std::to_string(ShardDetail(1, 1)) + ",times:1";
  const ChaosOutcome retried =
      RunChaos(c.catalog, c.sql, spec, 0, 4, 24, /*num_shards=*/4);
  ASSERT_TRUE(retried.ok);
  EXPECT_GT(retried.metrics.TotalShippedBytes(),
            sharded.metrics.TotalShippedBytes());
  EXPECT_EQ(retried.metrics.TotalModeledShippedBytes(),
            sharded.metrics.TotalModeledShippedBytes());
  // An unsharded run has no wire: measured 0, model still predicting.
  const ChaosOutcome unsharded =
      RunChaos(c.catalog, c.sql, "", 0, 4, 24, /*num_shards=*/1);
  ASSERT_TRUE(unsharded.ok);
  EXPECT_EQ(unsharded.metrics.TotalShippedBytes(), 0u);
  EXPECT_GT(unsharded.metrics.TotalModeledShippedBytes(), 0u);
}

// Consistent-cut rule: a batch whose checkpoint carries one corrupt shard
// slice is not durable — recovery refuses the whole cut and escalates to an
// older snapshot, pruning the partial checkpoint from the ring.
TEST(ShardChaosTest, ConsistentCutRejectsPartialShardCheckpoint) {
  const ChaosCase c = NestedCases().front();
  const int num_batches = 4;
  const ChaosOutcome clean =
      RunChaos(c.catalog, c.sql, "", 0, num_batches, 24, /*num_shards=*/1);
  // Corrupt shard 1's slice of the batch-2 checkpoint, then force a
  // rollback at batch 3 that would land on it.
  const std::string spec =
      "shard-checkpoint-corrupt=at:" + std::to_string(ShardDetail(2, 1)) +
      ",times:1;controller-batch-fault=at:3,times:1,arg:1";
  const ChaosOutcome faulty = RunChaos(c.catalog, c.sql, spec, 0, num_batches,
                                       24, /*num_shards=*/4);
  ExpectBitIdentical(faulty, clean, "partial-cut rejection");
  EXPECT_GE(faulty.metrics.TotalCorruptCheckpoints(), 1);
  EXPECT_GE(faulty.metrics.TotalFailureRecoveries(), 1);
}

}  // namespace
}  // namespace iolap
