// Edge-case and robustness tests for the incremental engine: degenerate
// data shapes (empty / tiny / all-filtered / NULL-heavy inputs), string
// group keys, single-batch runs, and partition-scheme coverage.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "exec/reference.h"
#include "iolap/session.h"
#include "sql/binder.h"

namespace iolap {
namespace {

std::shared_ptr<Catalog> CatalogWith(Table table) {
  auto catalog = std::make_shared<Catalog>();
  EXPECT_TRUE(catalog->RegisterTable("t", std::move(table), true).ok());
  return catalog;
}

Schema BasicSchema() {
  return Schema({{"v", ValueType::kDouble},
                 {"g", ValueType::kString},
                 {"flag", ValueType::kInt64}});
}

void CheckAgainstReference(std::shared_ptr<Catalog> catalog,
                           const std::string& sql, size_t batches) {
  SCOPED_TRACE(sql);
  auto functions = FunctionRegistry::Default();
  auto plan = BindSql(sql, *catalog, functions);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EngineOptions options;
  options.num_batches = batches;
  options.num_trials = 6;
  Session session(catalog.get(), options, functions);
  auto query = session.Sql(sql);
  ASSERT_TRUE(query.ok()) << query.status();

  const Table& fact = *(*catalog->Find("t"))->table;
  std::vector<Row> accumulated;
  QueryController& controller = (*query)->controller();
  ASSERT_TRUE(
      (*query)
          ->Run([&](const PartialResult& partial) {
            for (uint64_t id : controller.layout().batches[partial.batch]) {
              accumulated.push_back(fact.row(id));
            }
            const double scale =
                accumulated.empty()
                    ? 1.0
                    : static_cast<double>(fact.num_rows()) /
                          accumulated.size();
            auto expected =
                EvaluateReference(*plan, *catalog, accumulated, scale);
            EXPECT_TRUE(expected.ok());
            EXPECT_EQ(partial.rows.num_rows(), expected->num_rows());
            for (size_t r = 0; r < std::min(partial.rows.num_rows(),
                                            expected->num_rows());
                 ++r) {
              for (size_t c = 0; c < partial.rows.row(r).size(); ++c) {
                const Value& a = partial.rows.row(r)[c];
                const Value& e = expected->row(r)[c];
                if (a.is_numeric() && e.is_numeric()) {
                  EXPECT_NEAR(a.AsDouble(), e.AsDouble(),
                              1e-7 * std::max(1.0, std::fabs(e.AsDouble())));
                } else {
                  EXPECT_TRUE(a.Equals(e));
                }
              }
            }
            return BatchAction::kContinue;
          })
          .ok());
}

TEST(EdgeTest, EmptyStreamedTable) {
  auto catalog = CatalogWith(Table(BasicSchema()));
  CheckAgainstReference(catalog, "SELECT count(*) FROM t", 4);
  CheckAgainstReference(catalog, "SELECT g, sum(v) FROM t GROUP BY g", 4);
}

TEST(EdgeTest, SingleRow) {
  Table t(BasicSchema());
  t.AddRow({Value::Double(5), Value::String("a"), Value::Int64(1)});
  auto catalog = CatalogWith(std::move(t));
  CheckAgainstReference(catalog, "SELECT avg(v), count(*) FROM t", 4);
  CheckAgainstReference(
      catalog, "SELECT sum(v) FROM t WHERE v > (SELECT avg(v) FROM t)", 3);
}

TEST(EdgeTest, AllRowsFiltered) {
  Rng rng(5);
  Table t(BasicSchema());
  for (int i = 0; i < 100; ++i) {
    t.AddRow({Value::Double(rng.NextDouble()), Value::String("x"),
              Value::Int64(0)});
  }
  auto catalog = CatalogWith(std::move(t));
  CheckAgainstReference(catalog,
                        "SELECT g, sum(v) FROM t WHERE flag = 1 GROUP BY g",
                        5);
}

TEST(EdgeTest, NullHeavyColumn) {
  Rng rng(6);
  Table t(BasicSchema());
  for (int i = 0; i < 200; ++i) {
    t.AddRow({rng.NextBounded(3) == 0 ? Value::Null()
                                      : Value::Double(rng.NextDouble() * 10),
              Value::String(rng.NextBounded(2) == 0 ? "a" : "b"),
              Value::Int64(static_cast<int64_t>(rng.NextBounded(2)))});
  }
  auto catalog = CatalogWith(std::move(t));
  CheckAgainstReference(catalog,
                        "SELECT g, sum(v), avg(v), count(*) FROM t GROUP BY g",
                        5);
  CheckAgainstReference(
      catalog, "SELECT count(*) FROM t WHERE v > (SELECT avg(v) FROM t)", 5);
}

TEST(EdgeTest, StringGroupKeys) {
  Rng rng(7);
  Table t(BasicSchema());
  const char* groups[] = {"alpha", "beta", "gamma", "delta quoted, comma"};
  for (int i = 0; i < 300; ++i) {
    t.AddRow({Value::Double(rng.NextDouble() * 100),
              Value::String(groups[rng.NextBounded(4)]),
              Value::Int64(static_cast<int64_t>(rng.NextBounded(2)))});
  }
  auto catalog = CatalogWith(std::move(t));
  CheckAgainstReference(catalog, "SELECT g, avg(v) FROM t GROUP BY g", 6);
}

TEST(EdgeTest, SingleBatchIncrementalRun) {
  Rng rng(8);
  Table t(BasicSchema());
  for (int i = 0; i < 50; ++i) {
    t.AddRow({Value::Double(rng.NextDouble()), Value::String("a"),
              Value::Int64(1)});
  }
  auto catalog = CatalogWith(std::move(t));
  CheckAgainstReference(catalog,
                        "SELECT avg(v) FROM t WHERE v > "
                        "(SELECT avg(v) FROM t)",
                        1);
}

TEST(EdgeTest, MoreBatchesThanRows) {
  Table t(BasicSchema());
  for (int i = 0; i < 3; ++i) {
    t.AddRow({Value::Double(i), Value::String("a"), Value::Int64(1)});
  }
  auto catalog = CatalogWith(std::move(t));
  // num_batches clamps to the row count.
  CheckAgainstReference(catalog, "SELECT sum(v) FROM t", 50);
}

TEST(EdgeTest, FullShufflePartitioning) {
  Rng rng(9);
  Table t(BasicSchema());
  for (int i = 0; i < 400; ++i) {
    // Sorted values: block-wise batches would be badly skewed; the
    // pre-shuffle tool (paper §2) fixes that.
    t.AddRow({Value::Double(i), Value::String("a"), Value::Int64(1)});
  }
  auto catalog = CatalogWith(std::move(t));
  EngineOptions options;
  options.num_batches = 8;
  options.num_trials = 10;
  options.partition.scheme = PartitionScheme::kFullShuffle;
  Session session(catalog.get(), options);
  auto query = session.Sql("SELECT avg(v) FROM t");
  ASSERT_TRUE(query.ok());
  double first_estimate = 0;
  ASSERT_TRUE((*query)
                  ->Run([&](const PartialResult& partial) {
                    if (partial.batch == 0) {
                      first_estimate = partial.rows.row(0)[0].AsDouble();
                    }
                    return BatchAction::kContinue;
                  })
                  .ok());
  // With a shuffled stream, the first batch's estimate is already close to
  // the true mean (199.5) rather than the first 50 sorted values (~24.5).
  EXPECT_NEAR(first_estimate, 199.5, 40.0);
}

TEST(EdgeTest, GroupAppearingInLastBatchOnly) {
  // A rare group that arrives at the very end must show up exactly then.
  Table t(BasicSchema());
  for (int i = 0; i < 127; ++i) {
    t.AddRow({Value::Double(1), Value::String("common"), Value::Int64(1)});
  }
  t.AddRow({Value::Double(42), Value::String("rare"), Value::Int64(1)});
  auto catalog = CatalogWith(std::move(t));
  // Block-wise partitioning with a fixed seed; the rare row sits in the
  // last base block. Use the reference checker for per-batch equality.
  CheckAgainstReference(catalog, "SELECT g, sum(v) FROM t GROUP BY g", 4);
}

TEST(EdgeTest, DivisionByZeroInsideQuery) {
  Rng rng(10);
  Table t(BasicSchema());
  for (int i = 0; i < 100; ++i) {
    t.AddRow({Value::Double(rng.NextDouble()), Value::String("a"),
              Value::Int64(static_cast<int64_t>(rng.NextBounded(2)))});
  }
  auto catalog = CatalogWith(std::move(t));
  // flag is sometimes 0: v / flag yields NULL for those rows, which SUM
  // must skip, matching the reference.
  CheckAgainstReference(catalog, "SELECT sum(v / flag) FROM t", 5);
}

TEST(EdgeTest, NegativeAndZeroValuesWithUdafs) {
  Rng rng(11);
  Table t(BasicSchema());
  for (int i = 0; i < 150; ++i) {
    t.AddRow({Value::Double(rng.NextDouble() * 20 - 10), Value::String("a"),
              Value::Int64(1)});
  }
  auto catalog = CatalogWith(std::move(t));
  // geomean/harmonic skip non-positive inputs by contract.
  CheckAgainstReference(catalog,
                        "SELECT geomean(v), harmonic_mean(v), rms(v) FROM t",
                        5);
}

}  // namespace
}  // namespace iolap
