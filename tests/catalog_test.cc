// Unit tests for the catalog and the mini-batch partitioner.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "catalog/catalog.h"
#include "catalog/partitioner.h"

namespace iolap {
namespace {

Table MakeTable(size_t rows) {
  Table t(Schema({{"id", ValueType::kInt64}, {"grp", ValueType::kInt64}}));
  for (size_t i = 0; i < rows; ++i) {
    t.AddRow({Value::Int64(static_cast<int64_t>(i)),
              Value::Int64(static_cast<int64_t>(i % 4))});
  }
  return t;
}

TEST(CatalogTest, RegisterAndFind) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("t", MakeTable(3), true).ok());
  auto entry = catalog.Find("t");
  ASSERT_TRUE(entry.ok());
  EXPECT_TRUE((*entry)->streamed);
  EXPECT_EQ((*entry)->table->num_rows(), 3u);
}

TEST(CatalogTest, DuplicateRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("t", MakeTable(1)).ok());
  EXPECT_EQ(catalog.RegisterTable("t", MakeTable(1)).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, MissingTable) {
  Catalog catalog;
  EXPECT_EQ(catalog.Find("nope").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(catalog.Has("nope"));
}

TEST(CatalogTest, SetStreamed) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("t", MakeTable(1), false).ok());
  ASSERT_TRUE(catalog.SetStreamed("t", true).ok());
  EXPECT_TRUE((*catalog.Find("t"))->streamed);
  EXPECT_EQ(catalog.SetStreamed("u", true).code(), StatusCode::kNotFound);
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("b", MakeTable(1)).ok());
  ASSERT_TRUE(catalog.RegisterTable("a", MakeTable(1)).ok());
  EXPECT_EQ(catalog.TableNames(), (std::vector<std::string>{"a", "b"}));
}

// ----------------------------------------------------------- Partitioner

class PartitionerTest : public ::testing::TestWithParam<PartitionScheme> {};

TEST_P(PartitionerTest, EveryRowExactlyOnce) {
  const Table t = MakeTable(1003);
  PartitionOptions options;
  options.scheme = GetParam();
  options.block_rows = 16;
  options.seed = 11;
  auto layout = PartitionIntoBatches(t, 10, options);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->batches.size(), 10u);
  std::set<uint64_t> seen;
  for (const auto& batch : layout->batches) {
    for (uint64_t id : batch) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate row " << id;
      EXPECT_LT(id, 1003u);
    }
  }
  EXPECT_EQ(seen.size(), 1003u);
  EXPECT_EQ(layout->TotalRows(), 1003u);
}

TEST_P(PartitionerTest, BatchesRoughlyEqual) {
  const Table t = MakeTable(1000);
  PartitionOptions options;
  options.scheme = GetParam();
  options.seed = 3;
  auto layout = PartitionIntoBatches(t, 8, options);
  ASSERT_TRUE(layout.ok());
  for (const auto& batch : layout->batches) {
    EXPECT_NEAR(static_cast<double>(batch.size()), 125.0, 64.0);
  }
}

TEST_P(PartitionerTest, DeterministicUnderSeed) {
  const Table t = MakeTable(200);
  PartitionOptions options;
  options.scheme = GetParam();
  options.seed = 99;
  auto a = PartitionIntoBatches(t, 5, options);
  auto b = PartitionIntoBatches(t, 5, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->batches, b->batches);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PartitionerTest,
                         ::testing::Values(PartitionScheme::kBlockwiseRandom,
                                           PartitionScheme::kFullShuffle,
                                           PartitionScheme::kStratified));

TEST(PartitionerTest, BlockwiseKeepsBlocksTogether) {
  const Table t = MakeTable(128);
  PartitionOptions options;
  options.scheme = PartitionScheme::kBlockwiseRandom;
  options.block_rows = 8;
  options.seed = 1;
  auto layout = PartitionIntoBatches(t, 4, options);
  ASSERT_TRUE(layout.ok());
  // Rows of the same 8-row block land in the same batch (batch size 32
  // is a multiple of the block size).
  std::vector<int> batch_of(128, -1);
  for (size_t b = 0; b < layout->batches.size(); ++b) {
    for (uint64_t id : layout->batches[b]) batch_of[id] = static_cast<int>(b);
  }
  for (size_t block = 0; block < 16; ++block) {
    for (size_t r = 1; r < 8; ++r) {
      EXPECT_EQ(batch_of[block * 8], batch_of[block * 8 + r]);
    }
  }
}

TEST(PartitionerTest, FullShuffleActuallyShuffles) {
  const Table t = MakeTable(1000);
  PartitionOptions options;
  options.scheme = PartitionScheme::kFullShuffle;
  options.seed = 5;
  auto layout = PartitionIntoBatches(t, 2, options);
  ASSERT_TRUE(layout.ok());
  // The first batch should not be simply the first half.
  size_t in_first_half = 0;
  for (uint64_t id : layout->batches[0]) in_first_half += (id < 500);
  EXPECT_GT(in_first_half, 150u);
  EXPECT_LT(in_first_half, 350u);
}

TEST(PartitionerTest, StratifiedBalancesStrata) {
  const Table t = MakeTable(400);  // grp = id % 4: four strata of 100 rows
  PartitionOptions options;
  options.scheme = PartitionScheme::kStratified;
  options.stratify_column = 1;
  options.seed = 2;
  auto layout = PartitionIntoBatches(t, 4, options);
  ASSERT_TRUE(layout.ok());
  for (const auto& batch : layout->batches) {
    std::vector<int> counts(4, 0);
    for (uint64_t id : batch) ++counts[id % 4];
    for (int c : counts) EXPECT_NEAR(c, 25, 3);
  }
}

TEST(PartitionerTest, StratifiedBadColumn) {
  PartitionOptions options;
  options.scheme = PartitionScheme::kStratified;
  options.stratify_column = 9;
  EXPECT_FALSE(PartitionIntoBatches(MakeTable(10), 2, options).ok());
}

TEST(PartitionerTest, MoreBatchesThanRowsClamped) {
  auto layout = PartitionIntoBatches(MakeTable(3), 10, PartitionOptions{});
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->batches.size(), 3u);
  EXPECT_EQ(layout->TotalRows(), 3u);
}

TEST(PartitionerTest, EmptyTable) {
  auto layout = PartitionIntoBatches(MakeTable(0), 4, PartitionOptions{});
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->batches.size(), 1u);
  EXPECT_EQ(layout->TotalRows(), 0u);
}

TEST(PartitionerTest, ZeroBatchesRejected) {
  EXPECT_FALSE(PartitionIntoBatches(MakeTable(5), 0, PartitionOptions{}).ok());
}

}  // namespace
}  // namespace iolap
