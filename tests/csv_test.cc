// Unit tests for the CSV reader/writer: type inference, quoting, nulls,
// file round trips, and error reporting.

#include <gtest/gtest.h>

#include <cstdio>

#include "catalog/csv.h"

namespace iolap {
namespace {

TEST(CsvTest, HeaderAndTypeInference) {
  auto table = ReadCsv("id,score,name\n1,2.5,alice\n2,3,bob\n");
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_EQ(table->schema().num_columns(), 3u);
  EXPECT_EQ(table->schema().column(0).type, ValueType::kInt64);
  EXPECT_EQ(table->schema().column(1).type, ValueType::kDouble);
  EXPECT_EQ(table->schema().column(2).type, ValueType::kString);
  ASSERT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->row(0)[0].int64(), 1);
  EXPECT_DOUBLE_EQ(table->row(0)[1].dbl(), 2.5);
  EXPECT_EQ(table->row(1)[2].str(), "bob");
}

TEST(CsvTest, IntColumnWithDecimalBecomesDouble) {
  auto table = ReadCsv("x\n1\n2.5\n3\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().column(0).type, ValueType::kDouble);
  EXPECT_DOUBLE_EQ(table->row(0)[0].dbl(), 1.0);
}

TEST(CsvTest, NoHeaderGeneratesNames) {
  CsvOptions options;
  options.header = false;
  auto table = ReadCsv("1,2\n3,4\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().column(0).name, "c0");
  EXPECT_EQ(table->schema().column(1).name, "c1");
  EXPECT_EQ(table->num_rows(), 2u);
}

TEST(CsvTest, QuotedFields) {
  auto table = ReadCsv("a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->row(0)[0].str(), "hello, world");
  EXPECT_EQ(table->row(0)[1].str(), "say \"hi\"");
}

TEST(CsvTest, NullTokensAndEmptyFields) {
  auto table = ReadCsv("x,y\n1,NULL\n,2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->row(0)[1].is_null());
  EXPECT_TRUE(table->row(1)[0].is_null());
  EXPECT_EQ(table->row(1)[1].int64(), 2);
}

TEST(CsvTest, CrlfAndBlankLines) {
  auto table = ReadCsv("a\r\n1\r\n\r\n2\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = '\t';
  auto table = ReadCsv("a\tb\n1\t2\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->row(0)[1].int64(), 2);
}

TEST(CsvTest, Errors) {
  EXPECT_FALSE(ReadCsv("").ok());
  EXPECT_FALSE(ReadCsv("a,b\n1\n").ok());             // field count mismatch
  EXPECT_FALSE(ReadCsv("a\n\"unterminated\n").ok());  // quote
  // Type violation past the inference window.
  CsvOptions options;
  options.type_inference_rows = 1;
  EXPECT_FALSE(ReadCsv("x\n1\nnot_a_number\n", options).ok());
  EXPECT_FALSE(ReadCsvFile("/no/such/file.csv").ok());
}

TEST(CsvTest, WriteRoundTrip) {
  auto table = ReadCsv(
      "id,note,v\n1,\"a, quoted\",2.5\n2,NULL,3.25\n");
  ASSERT_TRUE(table.ok());
  const std::string out = WriteCsv(*table);
  auto again = ReadCsv(out);
  ASSERT_TRUE(again.ok()) << again.status() << "\n" << out;
  ASSERT_EQ(again->num_rows(), table->num_rows());
  for (size_t r = 0; r < table->num_rows(); ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_TRUE(again->row(r)[c].Equals(table->row(r)[c]))
          << r << "," << c;
    }
  }
}

TEST(CsvTest, FileRoundTrip) {
  Table table(Schema({{"k", ValueType::kInt64}, {"s", ValueType::kString}}));
  table.AddRow({Value::Int64(7), Value::String("x")});
  const std::string path = ::testing::TempDir() + "/iolap_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(table, path).ok());
  auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_rows(), 1u);
  EXPECT_EQ(loaded->row(0)[0].int64(), 7);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace iolap
