// Tests of the compiled expression programs (exec/expr_program): directed
// semantics checks against the interpreter, hoisting/probe-count structure,
// constant folding, compile refusals, a differential fuzzer over random
// well-typed trees, and engine-level compile-on/off bit-identity on the
// paper's workloads.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/expr.h"
#include "core/function_registry.h"
#include "core/value.h"
#include "exec/expr_program.h"
#include "exec/program_verifier.h"
#include "iolap/session.h"
#include "workloads/conviva.h"
#include "workloads/conviva_queries.h"
#include "workloads/tpch.h"
#include "workloads/tpch_queries.h"

namespace iolap {
namespace {

// ---------------------------------------------------------------------------
// Helpers

ExprPtr LitV(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr Col(int index, ValueType type) {
  return std::make_shared<ColumnRefExpr>(index, "c" + std::to_string(index),
                                         type);
}
ExprPtr Bin(Expr::BinaryOp op, ExprPtr l, ExprPtr r,
            ValueType type = ValueType::kDouble) {
  return std::make_shared<BinaryExpr>(op, std::move(l), std::move(r), type);
}
ExprPtr Un(Expr::UnaryOp op, ExprPtr e, ValueType type = ValueType::kDouble) {
  return std::make_shared<UnaryExpr>(op, std::move(e), type);
}
ExprPtr Call(std::string name, std::vector<ExprPtr> args,
             ValueType type = ValueType::kDouble) {
  return std::make_shared<CallExpr>(std::move(name), std::move(args), type);
}
ExprPtr AggRef(int block, int col, std::vector<ExprPtr> keys) {
  return std::make_shared<AggLookupExpr>(block, col, std::move(keys),
                                         ValueType::kDouble, "agg");
}

// Exact (bit-level for doubles, NaN == NaN) value equality: the contract is
// that the compiled path reproduces the interpreter's result *bits*.
bool BitEqual(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kInt64:
      return a.int64() == b.int64();
    case ValueType::kDouble: {
      const double x = a.AsDouble();
      const double y = b.AsDouble();
      uint64_t xb = 0;
      uint64_t yb = 0;
      std::memcpy(&xb, &x, sizeof(x));
      std::memcpy(&yb, &y, sizeof(y));
      return xb == yb;
    }
    case ValueType::kString:
      return a.str() == b.str();
  }
  return false;
}

std::string Describe(const Value& v) {
  return v.ToString() + " (type " + std::to_string(static_cast<int>(v.type())) +
         ")";
}

// A resolver with deterministic per-(block, col, key) values, per-trial
// variation, occasional NULLs and int-typed values, and call counting so
// tests can assert how many probes each path makes. Trials at or past
// `covered_trials` exercise the fall-back-to-main branch of LookupTrial.
class FakeResolver final : public AggLookupResolver {
 public:
  explicit FakeResolver(int covered_trials) : covered_trials_(covered_trials) {}

  Value Lookup(int block_id, int col, const Row& key) const override {
    ++lookup_calls_;
    return MainOf(block_id, col, key);
  }

  Value LookupTrial(int block_id, int col, const Row& key,
                    int trial) const override {
    ++trial_calls_;
    return TrialOf(block_id, col, key, trial);
  }

  void LookupTrials(int block_id, int col, const Row& key, int num_trials,
                    Value* out) const override {
    ++batched_calls_;
    for (int t = 0; t < num_trials; ++t) {
      out[t] = TrialOf(block_id, col, key, t);
    }
  }

  Interval LookupRange(int, int, const Row&) const override {
    return Interval::Unbounded();
  }

  int lookup_calls() const { return lookup_calls_; }
  int trial_calls() const { return trial_calls_; }
  int batched_calls() const { return batched_calls_; }
  void ResetCounts() { lookup_calls_ = trial_calls_ = batched_calls_ = 0; }

 private:
  static double Base(int block_id, int col, const Row& key) {
    double h = 13.0 * block_id + 31.0 * col;
    for (const Value& v : key) {
      if (v.is_null()) {
        h += 3.5;
      } else if (v.is_numeric()) {
        h += v.AsDouble();
      } else {
        h += static_cast<double>(v.str().size());
      }
    }
    return h;
  }

  Value MainOf(int block_id, int col, const Row& key) const {
    const double b = Base(block_id, col, key);
    const double m = std::fabs(std::fmod(b, 11.0));
    if (m < 1.0) return Value::Null();
    if (m < 2.0) return Value::Int64(static_cast<int64_t>(b));
    return Value::Double(b * 1.25);
  }

  Value TrialOf(int block_id, int col, const Row& key, int trial) const {
    if (trial >= covered_trials_) return MainOf(block_id, col, key);
    const double b = Base(block_id, col, key);
    if (std::fabs(std::fmod(b + trial, 13.0)) < 1.0) return Value::Null();
    return Value::Double(b + 0.01 * trial);
  }

  int covered_trials_;
  mutable int lookup_calls_ = 0;
  mutable int trial_calls_ = 0;
  mutable int batched_calls_ = 0;
};

struct Harness {
  std::shared_ptr<FunctionRegistry> functions = FunctionRegistry::Default();
  FakeResolver resolver{8};
  const std::vector<ExprPtr>* lineage = nullptr;

  EvalContext Ctx(int trial) const {
    EvalContext ctx;
    ctx.functions = functions.get();
    ctx.resolver = &resolver;
    ctx.column_lineage = lineage;
    ctx.trial = trial;
    return ctx;
  }

  // Compiles `roots` and checks compiled evaluation against the interpreter
  // for every root and every trial in {-1, 0, ..., trials-1} over `row`.
  // Returns false if the program could not compile (callers assert on it).
  bool CheckRow(const std::vector<ExprPtr>& roots, const Row& row, int trials,
                const std::string& context) {
    auto program = ExprProgram::Compile(roots, functions.get(), lineage);
    if (program == nullptr) return false;
    // Everything the compiler accepts must pass the static verifier.
    const VerifyResult vr = ProgramVerifier::Verify(*program);
    EXPECT_TRUE(vr.ok) << context << ": verifier rejected a compiled program ["
                       << vr.rule << "] " << vr.message << "\n"
                       << program->ToString();
    ExprProgramState state;
    program->InitState(&state);
    EXPECT_TRUE(program->Bind(&state, row, &resolver, trials)) << context;
    if (state.bailed()) return true;  // bail = interpreter fallback, valid
    for (int t = -1; t < trials; ++t) {
      if (!program->EvalTrial(&state, row, t)) return true;
      for (size_t r = 0; r < roots.size(); ++r) {
        const Value expect = roots[r]->Eval(row, Ctx(t));
        const Value got = program->RootValue(state, r);
        EXPECT_TRUE(BitEqual(expect, got))
            << context << " root " << r << " trial " << t << ": interpreter "
            << Describe(expect) << " vs compiled " << Describe(got) << "\n"
            << roots[r]->ToString() << "\n"
            << program->ToString();
        if (!BitEqual(expect, got)) return true;
      }
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// Directed semantics

TEST(ExprProgramTest, ArithmeticMatchesInterpreter) {
  Harness h;
  const Row row = {Value::Int64(7), Value::Int64(2), Value::Double(0.125),
                   Value::Double(0.0), Value::Null()};
  const ExprPtr i7 = Col(0, ValueType::kInt64);
  const ExprPtr i2 = Col(1, ValueType::kInt64);
  const ExprPtr d = Col(2, ValueType::kDouble);
  const ExprPtr zero = Col(3, ValueType::kDouble);
  const ExprPtr null_col = Col(4, ValueType::kDouble);

  std::vector<ExprPtr> roots = {
      // Int64 static output: all-double arithmetic then truncation.
      Bin(Expr::BinaryOp::kAdd, i7, i2, ValueType::kInt64),
      Bin(Expr::BinaryOp::kDiv, i7, i2, ValueType::kInt64),  // 3.5 -> 3
      Bin(Expr::BinaryOp::kDiv, i7, i2, ValueType::kDouble),  // stays 3.5
      Bin(Expr::BinaryOp::kMul, i7, d),
      Bin(Expr::BinaryOp::kDiv, i7, zero),        // x / 0.0 -> NULL
      Bin(Expr::BinaryOp::kMod, i7, i2, ValueType::kInt64),
      Bin(Expr::BinaryOp::kMod, i7, zero, ValueType::kInt64),  // NULL
      Bin(Expr::BinaryOp::kAdd, i7, null_col),    // NULL propagation
      Un(Expr::UnaryOp::kNeg, i7),                // runtime int -> Int64(-7)
      Un(Expr::UnaryOp::kNeg, d),
      Un(Expr::UnaryOp::kNeg, null_col),
      Bin(Expr::BinaryOp::kSub, Un(Expr::UnaryOp::kNeg, i2), d),
  };
  EXPECT_TRUE(h.CheckRow(roots, row, 0, "arith"));
}

TEST(ExprProgramTest, ComparisonAndLogicMatchInterpreter) {
  Harness h;
  const Row row = {Value::Int64(3), Value::Double(3.0), Value::Null(),
                   Value::String("apple"), Value::String("banana"),
                   Value::Int64(0)};
  const ExprPtr i = Col(0, ValueType::kInt64);
  const ExprPtr d = Col(1, ValueType::kDouble);
  const ExprPtr n = Col(2, ValueType::kDouble);
  const ExprPtr sa = Col(3, ValueType::kString);
  const ExprPtr sb = Col(4, ValueType::kString);
  const ExprPtr zero = Col(5, ValueType::kInt64);

  std::vector<ExprPtr> roots;
  for (auto op : {Expr::BinaryOp::kEq, Expr::BinaryOp::kNe, Expr::BinaryOp::kLt,
                  Expr::BinaryOp::kLe, Expr::BinaryOp::kGt,
                  Expr::BinaryOp::kGe}) {
    roots.push_back(Bin(op, i, d, ValueType::kInt64));   // Int64(3) vs 3.0
    roots.push_back(Bin(op, sa, sb, ValueType::kInt64));  // string compare
    roots.push_back(Bin(op, i, n, ValueType::kInt64));    // NULL comparison
  }
  // Three-valued logic over {true, false, NULL} operands, both orders. The
  // interpreter evaluates both sides (no short-circuit), which matters when
  // one side is NULL.
  const std::vector<ExprPtr> bools = {
      Bin(Expr::BinaryOp::kGt, i, zero, ValueType::kInt64),  // true
      Bin(Expr::BinaryOp::kLt, i, zero, ValueType::kInt64),  // false
      Bin(Expr::BinaryOp::kGt, n, zero, ValueType::kInt64),  // NULL
  };
  for (const ExprPtr& a : bools) {
    for (const ExprPtr& b : bools) {
      roots.push_back(Bin(Expr::BinaryOp::kAnd, a, b, ValueType::kInt64));
      roots.push_back(Bin(Expr::BinaryOp::kOr, a, b, ValueType::kInt64));
      roots.push_back(Un(Expr::UnaryOp::kNot, a, ValueType::kInt64));
    }
  }
  EXPECT_TRUE(h.CheckRow(roots, row, 0, "cmp_logic"));
}

TEST(ExprProgramTest, CallsMatchInterpreter) {
  Harness h;
  const Row row = {Value::Double(2.25), Value::Double(-3.0), Value::Null(),
                   Value::Int64(5), Value::String("MixedCase")};
  const ExprPtr x = Col(0, ValueType::kDouble);
  const ExprPtr neg = Col(1, ValueType::kDouble);
  const ExprPtr n = Col(2, ValueType::kDouble);
  const ExprPtr i = Col(3, ValueType::kInt64);
  const ExprPtr s = Col(4, ValueType::kString);

  std::vector<ExprPtr> roots = {
      Call("sqrt", {x}),
      Call("sqrt", {neg}),  // negative -> 0.0 per the builtin
      Call("abs", {neg}),
      Call("abs", {n}),
      Call("pow", {x, LitV(Value::Int64(2))}),
      Call("mod", {i, LitV(Value::Int64(3))}, ValueType::kInt64),
      Call("least", {x, neg, i}),     // preserves the runtime tag
      Call("greatest", {x, neg, n}),  // skips NULLs
      Call("if", {Bin(Expr::BinaryOp::kGt, x, neg, ValueType::kInt64), i, x}),
      Call("if", {n, i, x}),  // NULL condition is falsy, no propagation
      Call("coalesce", {n, i, x}),
      Call("coalesce", {n, n}, ValueType::kDouble),
      // Generic (Value-boxed) calls: string arguments and string results.
      Call("length", {s}, ValueType::kInt64),
      Call("upper", {s}, ValueType::kString),
      Call("lower", {s}, ValueType::kString),
      Call("concat", {s, LitV(Value::String("-suffix"))}, ValueType::kString),
      Call("substr", {s, LitV(Value::Int64(2)), LitV(Value::Int64(4))},
           ValueType::kString),
      // String result feeding a comparison.
      Bin(Expr::BinaryOp::kEq, Call("upper", {s}, ValueType::kString),
          LitV(Value::String("MIXEDCASE")), ValueType::kInt64),
  };
  EXPECT_TRUE(h.CheckRow(roots, row, 0, "calls"));
}

TEST(ExprProgramTest, AggLookupsMatchInterpreterAcrossTrials) {
  Harness h;
  const Row row = {Value::Int64(4), Value::Double(10.0), Value::Int64(9)};
  const ExprPtr key = Col(0, ValueType::kInt64);
  const ExprPtr other_key = Col(2, ValueType::kInt64);
  const ExprPtr d = Col(1, ValueType::kDouble);

  std::vector<ExprPtr> roots = {
      AggRef(0, 1, {key}),
      // Trial-variant comparison: column > aggregate replica.
      Bin(Expr::BinaryOp::kGt, d, AggRef(0, 1, {key}), ValueType::kInt64),
      // Two distinct sites combined; one hits the NULL-producing groups.
      Bin(Expr::BinaryOp::kAdd, AggRef(0, 2, {key}),
          AggRef(1, 1, {other_key})),
      // Same site referenced twice: CSE must still match the interpreter
      // (which probes twice but gets identical values).
      Bin(Expr::BinaryOp::kSub, AggRef(0, 1, {key}), AggRef(0, 1, {key})),
  };
  // 12 trials with covered_trials = 8 exercises the fall-back-to-main branch
  // of LookupTrial inside the batched probe.
  EXPECT_TRUE(h.CheckRow(roots, row, 12, "agg_lookups"));
}

TEST(ExprProgramTest, ColumnLineageMatchesInterpreter) {
  Harness h;
  // Column 1's stored value is stale; its lineage recomputes it from an
  // aggregate lookup keyed by column 0 (the §6.2 lazy-evaluation shape).
  std::vector<ExprPtr> lineage(3);
  lineage[1] = Bin(Expr::BinaryOp::kMul, AggRef(0, 1, {Col(0, ValueType::kInt64)}),
                   LitV(Value::Double(2.0)));
  h.lineage = &lineage;

  const Row row = {Value::Int64(6), Value::Double(123.0), Value::Double(1.5)};
  std::vector<ExprPtr> roots = {
      Col(1, ValueType::kDouble),  // trial -1 reads 123.0, trials use lineage
      Bin(Expr::BinaryOp::kAdd, Col(1, ValueType::kDouble),
          Col(2, ValueType::kDouble)),
      Bin(Expr::BinaryOp::kGt, Col(1, ValueType::kDouble),
          LitV(Value::Double(50.0)), ValueType::kInt64),
  };
  EXPECT_TRUE(h.CheckRow(roots, row, 6, "lineage"));
}

// ---------------------------------------------------------------------------
// Structure: hoisting, probes, folding, refusals

TEST(ExprProgramTest, HoistsTrialInvariantWorkIntoPrologue) {
  Harness h;
  // filter: (a * 2 + sqrt(b)) > agg(key) — everything left of `>` is
  // trial-invariant and must compile into the prologue; only the aggregate
  // read and the comparison may run per trial.
  const ExprPtr invariant_side =
      Bin(Expr::BinaryOp::kAdd,
          Bin(Expr::BinaryOp::kMul, Col(0, ValueType::kDouble),
              LitV(Value::Double(2.0))),
          Call("sqrt", {Col(1, ValueType::kDouble)}));
  const ExprPtr filter =
      Bin(Expr::BinaryOp::kGt, invariant_side,
          AggRef(0, 1, {Col(2, ValueType::kInt64)}), ValueType::kInt64);
  const ExprPtr pure = Bin(Expr::BinaryOp::kAdd, Col(0, ValueType::kDouble),
                           Col(1, ValueType::kDouble));

  auto program =
      ExprProgram::Compile({filter, pure}, h.functions.get(), nullptr);
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(program->num_agg_sites(), 1u);
  EXPECT_GT(program->prologue_size(), 0u);
  // Epilogue: exactly the aggregate read and the comparison.
  EXPECT_EQ(program->epilogue_size(), 2u) << program->ToString();
  EXPECT_FALSE(program->root_trial_invariant(0));
  EXPECT_TRUE(program->root_trial_invariant(1));

  // One Bind = one main lookup + one batched trial probe per site — however
  // many trials and EvalTrial calls follow.
  ExprProgramState state;
  program->InitState(&state);
  const Row row = {Value::Double(4.0), Value::Double(9.0), Value::Int64(3)};
  h.resolver.ResetCounts();
  ASSERT_TRUE(program->Bind(&state, row, &h.resolver, 50));
  EXPECT_EQ(h.resolver.lookup_calls(), 1);
  EXPECT_EQ(h.resolver.batched_calls(), 1);
  EXPECT_EQ(h.resolver.trial_calls(), 0);
  for (int t = -1; t < 50; ++t) {
    ASSERT_TRUE(program->EvalTrial(&state, row, t));
  }
  EXPECT_EQ(h.resolver.lookup_calls(), 1) << "per-trial eval must not probe";
  EXPECT_EQ(h.resolver.batched_calls(), 1);
}

TEST(ExprProgramTest, FoldsConstantSubtrees) {
  Harness h;
  // (1 + 2) * 3 > 4.0 && sqrt(16.0) = 4.0 — fully constant: no instructions
  // at all, the root is a materialized literal.
  const ExprPtr folded = Bin(
      Expr::BinaryOp::kAnd,
      Bin(Expr::BinaryOp::kGt,
          Bin(Expr::BinaryOp::kMul,
              Bin(Expr::BinaryOp::kAdd, LitV(Value::Int64(1)),
                  LitV(Value::Int64(2)), ValueType::kInt64),
              LitV(Value::Int64(3)), ValueType::kInt64),
          LitV(Value::Double(4.0)), ValueType::kInt64),
      Bin(Expr::BinaryOp::kEq, Call("sqrt", {LitV(Value::Double(16.0))}),
          LitV(Value::Double(4.0)), ValueType::kInt64),
      ValueType::kInt64);
  auto program = ExprProgram::Compile({folded}, h.functions.get(), nullptr);
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(program->prologue_size(), 0u) << program->ToString();
  EXPECT_EQ(program->epilogue_size(), 0u);
  ExprProgramState state;
  program->InitState(&state);
  const Row row;
  ASSERT_TRUE(program->Bind(&state, row, nullptr, 0));
  ASSERT_TRUE(program->EvalTrial(&state, row, -1));
  EXPECT_TRUE(BitEqual(program->RootValue(state, 0), Value::Bool(true)));

  // String vs literal-NULL comparison folds to constant NULL instead of
  // refusing the mixed-kind compare.
  const ExprPtr null_cmp =
      Bin(Expr::BinaryOp::kEq, Col(0, ValueType::kString), LitV(Value::Null()),
          ValueType::kInt64);
  auto program2 = ExprProgram::Compile({null_cmp}, h.functions.get(), nullptr);
  ASSERT_NE(program2, nullptr);
  ExprProgramState state2;
  program2->InitState(&state2);
  const Row row2 = {Value::String("x")};
  ASSERT_TRUE(program2->Bind(&state2, row2, nullptr, 0));
  ASSERT_TRUE(program2->EvalTrial(&state2, row2, -1));
  EXPECT_TRUE(program2->RootValue(state2, 0).is_null());
}

TEST(ExprProgramTest, RefusesWhatItCannotProve) {
  Harness h;
  // Statically mixed string/numeric comparison.
  EXPECT_EQ(ExprProgram::Compile(
                {Bin(Expr::BinaryOp::kLt, Col(0, ValueType::kString),
                     Col(1, ValueType::kDouble), ValueType::kInt64)},
                h.functions.get(), nullptr),
            nullptr);
  // Arithmetic over a statically-string operand.
  EXPECT_EQ(ExprProgram::Compile({Bin(Expr::BinaryOp::kAdd,
                                      Col(0, ValueType::kString),
                                      Col(1, ValueType::kDouble))},
                                 h.functions.get(), nullptr),
            nullptr);
  // Unknown function; wrong arity.
  EXPECT_EQ(ExprProgram::Compile({Call("no_such_fn", {LitV(Value::Int64(1))})},
                                 h.functions.get(), nullptr),
            nullptr);
  EXPECT_EQ(ExprProgram::Compile({Call("sqrt", {LitV(Value::Int64(1)),
                                                LitV(Value::Int64(2))})},
                                 h.functions.get(), nullptr),
            nullptr);
  // Trial-variant aggregate key: the batched prologue probe cannot cover it.
  EXPECT_EQ(ExprProgram::Compile(
                {AggRef(0, 1, {AggRef(1, 1, {Col(0, ValueType::kInt64)})})},
                h.functions.get(), nullptr),
            nullptr);
}

TEST(ExprProgramTest, BailsOnRuntimeStringInNumericColumn) {
  Harness h;
  // Statically numeric column holding a string at runtime: the compiled
  // path must refuse the row (bail), never guess.
  const std::vector<ExprPtr> roots = {Bin(Expr::BinaryOp::kAdd,
                                          Col(0, ValueType::kDouble),
                                          LitV(Value::Double(1.0)))};
  auto program = ExprProgram::Compile(roots, h.functions.get(), nullptr);
  ASSERT_NE(program, nullptr);
  ExprProgramState state;
  program->InitState(&state);
  const Row bad = {Value::String("surprise")};
  EXPECT_FALSE(program->Bind(&state, bad, nullptr, 0));
  EXPECT_TRUE(state.bailed());
  // The state recovers on the next Bind of a clean row.
  const Row good = {Value::Double(2.0)};
  ASSERT_TRUE(program->Bind(&state, good, nullptr, 0));
  ASSERT_TRUE(program->EvalTrial(&state, good, -1));
  EXPECT_TRUE(BitEqual(program->RootValue(state, 0), Value::Double(3.0)));
}

TEST(ExprProgramTest, EvalTrialsMatchesPerTrialLoop) {
  Harness h;
  const ExprPtr filter =
      Bin(Expr::BinaryOp::kGt, AggRef(0, 1, {Col(0, ValueType::kInt64)}),
          LitV(Value::Double(10.0)), ValueType::kInt64);
  const ExprPtr arg0 = Bin(Expr::BinaryOp::kMul, Col(1, ValueType::kDouble),
                           AggRef(0, 2, {Col(0, ValueType::kInt64)}));
  const ExprPtr arg1 = Col(1, ValueType::kDouble);
  const std::vector<ExprPtr> roots = {filter, arg0, arg1};
  auto program = ExprProgram::Compile(roots, h.functions.get(), nullptr);
  ASSERT_NE(program, nullptr);

  const int trials = 10;
  for (int64_t k = 0; k < 24; ++k) {
    const Row row = {Value::Int64(k), Value::Double(0.5 * (k % 7))};
    ExprProgramState state;
    program->InitState(&state);
    ASSERT_TRUE(program->Bind(&state, row, &h.resolver, trials));

    std::vector<double> w(trials);
    for (int t = 0; t < trials; ++t) w[t] = t % 3 == 0 ? 0.0 : 1.0 + t;
    const std::vector<double> w_in = w;
    std::vector<Value> vals(static_cast<size_t>(trials) * 2);
    ASSERT_TRUE(program->EvalTrials(&state, row, trials, /*pred_root=*/0,
                                    /*first_val_root=*/1, 2, w.data(),
                                    vals.data()));
    for (int t = 0; t < trials; ++t) {
      const EvalContext ctx = h.Ctx(t);
      if (w_in[t] == 0.0) {
        EXPECT_EQ(w[t], 0.0);
        continue;
      }
      const bool pass = filter->Eval(row, ctx).IsTruthy();
      EXPECT_EQ(w[t], pass ? w_in[t] : 0.0) << "row " << k << " trial " << t;
      if (pass) {
        EXPECT_TRUE(BitEqual(vals[t * 2], arg0->Eval(row, ctx)));
        EXPECT_TRUE(BitEqual(vals[t * 2 + 1], arg1->Eval(row, ctx)));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Differential fuzzing: random well-typed trees, compiled vs interpreter.
// Numeric magnitudes stay moderate by construction so int64 truncation sites
// (static-Int64 arithmetic, kMod) never hit the float-cast-overflow UB —
// the same invariant the binder's type assignment provides in real plans.

class FuzzGen {
 public:
  FuzzGen(Rng* rng, bool allow_agg) : rng_(rng), allow_agg_(allow_agg) {}

  // Columns: 0-3 int64, 4-7 double, 8-9 string.
  static constexpr int kNumCols = 10;

  Row RandomRow() {
    Row row;
    for (int c = 0; c < kNumCols; ++c) {
      if (rng_->NextBounded(4) == 0) {
        row.push_back(Value::Null());
      } else if (c < 4) {
        row.push_back(
            Value::Int64(static_cast<int64_t>(rng_->NextBounded(41)) - 20));
      } else if (c < 8) {
        double v = (rng_->NextDouble() - 0.5) * 100.0;
        if (rng_->NextBounded(8) == 0) v = 0.0;
        row.push_back(Value::Double(v));
      } else {
        static const char* kPool[] = {"", "a", "bb", "apple", "zebra"};
        row.push_back(Value::String(kPool[rng_->NextBounded(5)]));
      }
    }
    return row;
  }

  ExprPtr Num(int depth) {
    if (depth <= 0) return NumLeaf();
    switch (rng_->NextBounded(8)) {
      case 0:
        return NumLeaf();
      case 1:
        return Un(Expr::UnaryOp::kNeg, Num(depth - 1));
      case 2: {
        static const Expr::BinaryOp kOps[] = {
            Expr::BinaryOp::kAdd, Expr::BinaryOp::kSub, Expr::BinaryOp::kMul,
            Expr::BinaryOp::kDiv};
        return Bin(kOps[rng_->NextBounded(4)], Num(depth - 1), Num(depth - 1));
      }
      case 3:
        return SmallInt(std::min(depth - 1, 3));
      case 4:
        return NumCall(depth - 1);
      case 5:
        return Bool(depth - 1);
      case 6:
        if (allow_agg_) return AggLeaf();
        return NumLeaf();
      default:
        return Num(depth - 1);
    }
  }

  // Bounded int64-typed subtree (|value| < ~300): the only place the fuzzer
  // assigns a static Int64 output to arithmetic, keeping truncation casts
  // well inside int64 range.
  ExprPtr SmallInt(int depth) {
    if (depth <= 0) {
      if (rng_->NextBounded(6) == 0) return LitV(Value::Null());
      if (rng_->NextBounded(2) == 0) {
        return LitV(
            Value::Int64(static_cast<int64_t>(rng_->NextBounded(19)) - 9));
      }
      return Col(static_cast<int>(rng_->NextBounded(4)), ValueType::kInt64);
    }
    switch (rng_->NextBounded(4)) {
      case 0:
        return Bin(Expr::BinaryOp::kAdd, SmallInt(depth - 1),
                   SmallInt(depth - 1), ValueType::kInt64);
      case 1:
        return Bin(Expr::BinaryOp::kSub, SmallInt(depth - 1),
                   SmallInt(depth - 1), ValueType::kInt64);
      case 2:
        return Bin(Expr::BinaryOp::kMod, SmallInt(depth - 1),
                   SmallInt(depth - 1), ValueType::kInt64);
      default:
        return SmallInt(0);
    }
  }

  ExprPtr Bool(int depth) {
    if (depth <= 0) {
      return Bin(Expr::BinaryOp::kGt, NumLeaf(), NumLeaf(), ValueType::kInt64);
    }
    static const Expr::BinaryOp kCmps[] = {
        Expr::BinaryOp::kEq, Expr::BinaryOp::kNe, Expr::BinaryOp::kLt,
        Expr::BinaryOp::kLe, Expr::BinaryOp::kGt, Expr::BinaryOp::kGe};
    switch (rng_->NextBounded(5)) {
      case 0:
        return Bin(kCmps[rng_->NextBounded(6)], Num(depth - 1), Num(depth - 1),
                   ValueType::kInt64);
      case 1:
        return Bin(kCmps[rng_->NextBounded(6)], Str(depth - 1), Str(depth - 1),
                   ValueType::kInt64);
      case 2:
        return Bin(Expr::BinaryOp::kAnd, Bool(depth - 1), Bool(depth - 1),
                   ValueType::kInt64);
      case 3:
        return Bin(Expr::BinaryOp::kOr, Bool(depth - 1), Bool(depth - 1),
                   ValueType::kInt64);
      default:
        return Un(Expr::UnaryOp::kNot, Bool(depth - 1), ValueType::kInt64);
    }
  }

  ExprPtr Str(int depth) {
    if (depth <= 0 || rng_->NextBounded(3) == 0) {
      switch (rng_->NextBounded(4)) {
        case 0:
          return Col(8, ValueType::kString);
        case 1:
          return Col(9, ValueType::kString);
        case 2: {
          static const char* kPool[] = {"", "a", "bb", "apple", "zebra"};
          return LitV(Value::String(kPool[rng_->NextBounded(5)]));
        }
        default:
          // NULL literal: drives the string-vs-NULL constant-fold path.
          return LitV(Value::Null());
      }
    }
    switch (rng_->NextBounded(4)) {
      case 0:
        return Call("upper", {Str(depth - 1)}, ValueType::kString);
      case 1:
        return Call("lower", {Str(depth - 1)}, ValueType::kString);
      case 2:
        return Call("concat", {Str(depth - 1), Str(depth - 1)},
                    ValueType::kString);
      default:
        return Call(
            "substr",
            {Col(8, ValueType::kString),
             LitV(Value::Int64(static_cast<int64_t>(rng_->NextBounded(4)))),
             LitV(Value::Int64(static_cast<int64_t>(rng_->NextBounded(4))))},
            ValueType::kString);
    }
  }

 private:
  ExprPtr NumLeaf() {
    switch (rng_->NextBounded(5)) {
      case 0:
        return LitV(Value::Null());
      case 1:
        return LitV(
            Value::Int64(static_cast<int64_t>(rng_->NextBounded(19)) - 9));
      case 2:
        return LitV(Value::Double((rng_->NextDouble() - 0.5) * 20.0));
      case 3:
        return Col(static_cast<int>(rng_->NextBounded(4)), ValueType::kInt64);
      default:
        return Col(4 + static_cast<int>(rng_->NextBounded(4)),
                   ValueType::kDouble);
    }
  }

  ExprPtr AggLeaf() {
    const int block = static_cast<int>(rng_->NextBounded(2));
    const int col = 1 + static_cast<int>(rng_->NextBounded(2));
    std::vector<ExprPtr> keys;
    keys.push_back(Col(static_cast<int>(rng_->NextBounded(4)),
                       ValueType::kInt64));
    if (rng_->NextBounded(2) == 0) {
      keys.push_back(
          LitV(Value::Int64(static_cast<int64_t>(rng_->NextBounded(5)))));
    }
    return AggRef(block, col, std::move(keys));
  }

  // `length` is excluded: over a NULL-typed literal its static type would be
  // honest, but over the pool it is covered by the directed call test.

  ExprPtr NumCall(int depth) {
    switch (rng_->NextBounded(6)) {
      case 0:
        return Call("sqrt", {Num(depth)});
      case 1:
        return Call("abs", {Num(depth)});
      case 2:
        return Call("least", {Num(depth), Num(depth), Num(depth)});
      case 3:
        return Call("greatest", {Num(depth), Num(depth)});
      case 4:
        return Call("coalesce", {Num(depth), Num(depth)});
      default:
        return Call("if", {Bool(depth), Num(depth), Num(depth)});
    }
  }

  Rng* rng_;
  bool allow_agg_;
};

int FuzzIterations(int default_iters) {
  const char* env = std::getenv("IOLAP_FUZZ_ITERS");
  if (env == nullptr) return default_iters;
  const int v = std::atoi(env);
  return v > 0 ? v : default_iters;
}

TEST(ExprProgramFuzzTest, CompiledBitIdenticalToInterpreter) {
  const int iterations = FuzzIterations(250);
  const int trials = 6;
  Rng rng(20160626);  // SIGMOD'16
  Harness h;
  h.resolver = FakeResolver{4};  // half the trials fall back to main
  int compiled = 0;
  for (int iter = 0; iter < iterations; ++iter) {
    FuzzGen gen(&rng, /*allow_agg=*/iter % 3 != 0);
    std::vector<ExprPtr> roots;
    roots.push_back(gen.Bool(4));  // filter-shaped root first
    const size_t extra = 1 + rng.NextBounded(2);
    for (size_t r = 0; r < extra; ++r) roots.push_back(gen.Num(5));

    auto program = ExprProgram::Compile(roots, h.functions.get(), nullptr);
    // The generator only produces constructs the compiler covers.
    ASSERT_NE(program, nullptr) << "iter " << iter;
    // Third oracle (besides the interpreter and the bail flag): the static
    // verifier must accept every compiled program. A verifier-accept that
    // then diverges from the interpreter fails the BitEqual asserts below,
    // so accept ∧ divergence is a hard failure of this test.
    const VerifyResult vr = ProgramVerifier::Verify(*program);
    ASSERT_TRUE(vr.ok) << "iter " << iter
                       << ": verifier rejected a compiled program ["
                       << vr.rule << "] " << vr.message << "\n"
                       << program->ToString();
    ++compiled;
    ExprProgramState state;
    program->InitState(&state);

    for (int r = 0; r < 6; ++r) {
      FuzzGen rowgen(&rng, false);
      const Row row = rowgen.RandomRow();
      ASSERT_TRUE(program->Bind(&state, row, &h.resolver, trials))
          << "iter " << iter;
      bool row_ok = true;
      for (int t = -1; t < trials && row_ok; ++t) {
        ASSERT_TRUE(program->EvalTrial(&state, row, t)) << "iter " << iter;
        for (size_t root = 0; root < roots.size(); ++root) {
          const Value expect = roots[root]->Eval(row, h.Ctx(t));
          const Value got = program->RootValue(state, root);
          ASSERT_TRUE(BitEqual(expect, got))
              << "iter " << iter << " root " << root << " trial " << t
              << ": interpreter " << Describe(expect) << " vs compiled "
              << Describe(got) << "\n"
              << roots[root]->ToString() << "\n"
              << program->ToString();
        }
      }

      // The engine's batched entry point, with the bool root as the filter.
      std::vector<double> w(trials, 1.0);
      const size_t num_vals = roots.size() - 1;
      std::vector<Value> vals(static_cast<size_t>(trials) * num_vals);
      ASSERT_TRUE(program->EvalTrials(&state, row, trials, 0, 1, num_vals,
                                      w.data(), vals.data()));
      for (int t = 0; t < trials; ++t) {
        const EvalContext ctx = h.Ctx(t);
        const bool pass = roots[0]->Eval(row, ctx).IsTruthy();
        ASSERT_EQ(w[t], pass ? 1.0 : 0.0) << "iter " << iter << " trial " << t;
        for (size_t a = 0; pass && a < num_vals; ++a) {
          ASSERT_TRUE(
              BitEqual(vals[t * num_vals + a], roots[a + 1]->Eval(row, ctx)))
              << "iter " << iter << " trial " << t;
        }
      }
    }
  }
  EXPECT_EQ(compiled, iterations);
}

// ---------------------------------------------------------------------------
// Engine level: compiled execution must be bit-identical to the interpreter
// on the paper's workloads, at every thread count.

struct RunFingerprint {
  std::vector<Table> partial_rows;
  std::vector<std::vector<std::vector<ErrorEstimate>>> estimates;
  uint64_t recomputed_rows = 0;
  int failure_recoveries = 0;
};

void ExpectBitIdentical(const RunFingerprint& a, const RunFingerprint& b,
                        const std::string& context) {
  EXPECT_EQ(a.recomputed_rows, b.recomputed_rows) << context;
  EXPECT_EQ(a.failure_recoveries, b.failure_recoveries) << context;
  ASSERT_EQ(a.partial_rows.size(), b.partial_rows.size()) << context;
  for (size_t p = 0; p < a.partial_rows.size(); ++p) {
    const Table& ta = a.partial_rows[p];
    const Table& tb = b.partial_rows[p];
    ASSERT_EQ(ta.num_rows(), tb.num_rows()) << context << " batch " << p;
    for (size_t r = 0; r < ta.num_rows(); ++r) {
      ASSERT_EQ(ta.row(r).size(), tb.row(r).size()) << context;
      for (size_t c = 0; c < ta.row(r).size(); ++c) {
        EXPECT_TRUE(BitEqual(ta.row(r)[c], tb.row(r)[c]))
            << context << " batch " << p << " row " << r << " col " << c
            << ": " << ta.row(r)[c].ToString() << " vs "
            << tb.row(r)[c].ToString();
      }
    }
    ASSERT_EQ(a.estimates[p].size(), b.estimates[p].size()) << context;
    for (size_t r = 0; r < a.estimates[p].size(); ++r) {
      ASSERT_EQ(a.estimates[p][r].size(), b.estimates[p][r].size()) << context;
      for (size_t k = 0; k < a.estimates[p][r].size(); ++k) {
        EXPECT_EQ(a.estimates[p][r][k].value, b.estimates[p][r][k].value)
            << context;
        EXPECT_EQ(a.estimates[p][r][k].stddev, b.estimates[p][r][k].stddev)
            << context;
        EXPECT_EQ(a.estimates[p][r][k].ci_lo, b.estimates[p][r][k].ci_lo)
            << context;
        EXPECT_EQ(a.estimates[p][r][k].ci_hi, b.estimates[p][r][k].ci_hi)
            << context;
      }
    }
  }
}

TEST(ExprProgramEngineTest, CompileOnOffBitIdenticalOnWorkloads) {
  auto functions = FunctionRegistry::Default();
  RegisterConvivaUdfs(functions.get());

  struct Case {
    std::string name;
    std::shared_ptr<Catalog> catalog;
    std::string sql;
  };
  std::vector<Case> cases;
  for (const BenchQuery& q : TpchQueries()) {
    TpchConfig config;
    auto catalog = MakeTpchCatalog(config.Scaled(0.01), q.streamed_table);
    ASSERT_TRUE(catalog.ok()) << catalog.status();
    cases.push_back({"tpch_" + q.id, *catalog, q.sql});
  }
  for (const BenchQuery& q : ConvivaQueries()) {
    ConvivaConfig config;
    auto catalog = MakeConvivaCatalog(config.Scaled(0.01));
    ASSERT_TRUE(catalog.ok()) << catalog.status();
    cases.push_back({"conviva_" + q.id, *catalog, q.sql});
  }
  ASSERT_GT(cases.size(), 4u);

  for (const Case& c : cases) {
    auto run = [&](bool compile, size_t num_threads) {
      EngineOptions options;
      options.num_trials = 12;
      options.num_batches = 4;
      options.slack = 2.0;
      options.seed = 77;
      options.num_threads = num_threads;
      options.compile_expressions = compile;
      Session session(c.catalog.get(), options, functions);
      RunFingerprint fp;
      auto query = session.Sql(c.sql);
      EXPECT_TRUE(query.ok()) << c.name << ": " << query.status();
      if (!query.ok()) return fp;
      Status run_status = (*query)->Run([&](const PartialResult& partial) {
        fp.partial_rows.push_back(partial.rows);
        fp.estimates.push_back(partial.estimates);
        return BatchAction::kContinue;
      });
      EXPECT_TRUE(run_status.ok()) << c.name << ": " << run_status;
      fp.recomputed_rows = (*query)->metrics().TotalRecomputedRows();
      fp.failure_recoveries = (*query)->metrics().TotalFailureRecoveries();
      return fp;
    };

    const RunFingerprint interpreted = run(false, 0);
    ASSERT_EQ(interpreted.partial_rows.size(), 4u) << c.name;
    ExpectBitIdentical(interpreted, run(true, 0), c.name + " compiled t0");
    ExpectBitIdentical(interpreted, run(true, 1), c.name + " compiled t1");
    ExpectBitIdentical(interpreted, run(true, 4), c.name + " compiled t4");
    ExpectBitIdentical(interpreted, run(false, 4), c.name + " interpreted t4");
  }
}

}  // namespace
}  // namespace iolap
