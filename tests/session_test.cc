// Tests for the public Session / IncrementalQuery API and controller-level
// behaviours: metrics, checkpoint-ring degradation, stratified batching,
// UDF registration, and the rewrite-rules option.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "exec/reference.h"
#include "iolap/session.h"
#include "sql/binder.h"

namespace iolap {
namespace {

std::shared_ptr<Catalog> MakeCatalog(size_t rows, uint64_t seed) {
  Rng rng(seed);
  auto catalog = std::make_shared<Catalog>();
  Table t(Schema({{"id", ValueType::kInt64},
                  {"v", ValueType::kDouble},
                  {"g", ValueType::kInt64}}));
  for (size_t i = 0; i < rows; ++i) {
    t.AddRow({Value::Int64(static_cast<int64_t>(i)),
              Value::Double(rng.NextDouble() * 100),
              Value::Int64(static_cast<int64_t>(rng.NextBounded(4)))});
  }
  EXPECT_TRUE(catalog->RegisterTable("t", std::move(t), true).ok());
  return catalog;
}

TEST(SessionTest, SqlCompileAndRun) {
  auto catalog = MakeCatalog(300, 1);
  EngineOptions options;
  options.num_batches = 5;
  options.num_trials = 8;
  Session session(catalog.get(), options);
  auto query = session.Sql("SELECT avg(v) FROM t WHERE v > 10");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ((*query)->num_batches(), 5u);
  ASSERT_TRUE((*query)->Run().ok());
  EXPECT_EQ((*query)->metrics().batches.size(), 5u);
  EXPECT_DOUBLE_EQ((*query)->last_result().fraction_processed, 1.0);
  EXPECT_EQ((*query)->plan().streamed_table, "t");
}

TEST(SessionTest, CompileErrorsSurface) {
  auto catalog = MakeCatalog(10, 2);
  Session session(catalog.get());
  EXPECT_FALSE(session.Sql("SELECT broken FROM").ok());
  EXPECT_FALSE(session.Sql("SELECT avg(nope) FROM t").ok());
}

TEST(SessionTest, CustomUdfThroughSession) {
  auto catalog = MakeCatalog(200, 3);
  EngineOptions options;
  options.num_batches = 4;
  options.num_trials = 4;
  Session session(catalog.get(), options);
  session.functions()->RegisterScalar(
      {"double_it", 1,
       [](const std::vector<ValueType>&) { return ValueType::kDouble; },
       [](const std::vector<Value>& args) -> Value {
         if (args[0].is_null()) return Value::Null();
         return Value::Double(2.0 * args[0].AsDouble());
       },
       /*monotone=*/true,
       {}});
  auto query = session.Sql("SELECT avg(double_it(v)) FROM t");
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_TRUE((*query)->Run().ok());
  const double avg2 = (*query)->last_result().rows.row(0)[0].AsDouble();
  auto plain = session.Sql("SELECT avg(v) FROM t");
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE((*plain)->Run().ok());
  EXPECT_NEAR(avg2, 2.0 * (*plain)->last_result().rows.row(0)[0].AsDouble(),
              1e-9);
}

TEST(SessionTest, RewriteOptionPreservesResults) {
  Rng rng(5);
  auto catalog = std::make_shared<Catalog>();
  Table r(Schema({{"k", ValueType::kInt64}, {"x", ValueType::kDouble}}));
  for (int i = 0; i < 300; ++i) {
    r.AddRow({Value::Int64(static_cast<int64_t>(rng.NextBounded(6))),
              Value::Double(rng.NextDouble())});
  }
  Table s(Schema({{"k", ValueType::kInt64}, {"y", ValueType::kDouble}}));
  for (int i = 0; i < 200; ++i) {
    s.AddRow({Value::Int64(static_cast<int64_t>(rng.NextBounded(6))),
              Value::Double(rng.NextDouble())});
  }
  ASSERT_TRUE(catalog->RegisterTable("r", std::move(r), true).ok());
  ASSERT_TRUE(catalog->RegisterTable("s", std::move(s)).ok());

  const std::string sql = "SELECT sum(x * y) FROM r, s WHERE r.k = s.k";
  double plain_result = 0, rewritten_result = 0;
  for (bool rewrite : {false, true}) {
    EngineOptions options;
    options.num_batches = 4;
    options.num_trials = 4;
    options.apply_rewrite_rules = rewrite;
    Session session(catalog.get(), options);
    auto query = session.Sql(sql);
    ASSERT_TRUE(query.ok()) << query.status();
    ASSERT_TRUE((*query)->Run().ok());
    (rewrite ? rewritten_result : plain_result) =
        (*query)->last_result().rows.row(0)[0].AsDouble();
    EXPECT_EQ((*query)->plan().blocks.size(), rewrite ? 3u : 1u);
  }
  EXPECT_NEAR(plain_result, rewritten_result,
              1e-6 * std::fabs(plain_result));
}

TEST(SessionTest, StratifiedPartitioningStaysExact) {
  auto catalog = MakeCatalog(400, 7);
  EngineOptions options;
  options.num_batches = 5;
  options.num_trials = 6;
  options.partition.scheme = PartitionScheme::kStratified;
  options.partition.stratify_column = 2;  // column "g"
  Session session(catalog.get(), options);
  auto query = session.Sql("SELECT g, sum(v), count(*) FROM t GROUP BY g");
  ASSERT_TRUE(query.ok()) << query.status();

  auto plan = BindSql("SELECT g, sum(v), count(*) FROM t GROUP BY g",
                      *catalog, FunctionRegistry::Default());
  ASSERT_TRUE(plan.ok());
  const Table& fact = *(*catalog->Find("t"))->table;
  std::vector<Row> accumulated;
  QueryController& controller = (*query)->controller();
  ASSERT_TRUE((*query)
                  ->Run([&](const PartialResult& partial) {
                    for (uint64_t id :
                         controller.layout().batches[partial.batch]) {
                      accumulated.push_back(fact.row(id));
                    }
                    const double scale = static_cast<double>(fact.num_rows()) /
                                         accumulated.size();
                    auto expected =
                        EvaluateReference(*plan, *catalog, accumulated, scale);
                    EXPECT_TRUE(expected.ok());
                    EXPECT_EQ(partial.rows.num_rows(), expected->num_rows());
                    // Stratified batches: every group is present from the
                    // first batch on.
                    EXPECT_EQ(partial.rows.num_rows(), 4u);
                    return BatchAction::kContinue;
                  })
                  .ok());
}

TEST(SessionTest, MetricsArepopulated) {
  auto catalog = MakeCatalog(500, 9);
  EngineOptions options;
  options.num_batches = 8;
  options.num_trials = 6;
  Session session(catalog.get(), options);
  auto query = session.Sql(
      "SELECT avg(v) FROM t WHERE v > (SELECT avg(v) FROM t)");
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_TRUE((*query)->Run().ok());
  const QueryMetrics& metrics = (*query)->metrics();
  ASSERT_EQ(metrics.batches.size(), 8u);
  EXPECT_GT(metrics.TotalLatencySec(), 0.0);
  // Unsharded runs never cross a wire: measured exchange bytes stay zero
  // while the cost model still predicts the would-be shuffle volume.
  EXPECT_EQ(metrics.TotalShippedBytes(), 0u);
  EXPECT_GT(metrics.TotalModeledShippedBytes(), 0u);
  EXPECT_GT(metrics.batches.back().other_state_bytes, 0u);
  uint64_t input_total = 0;
  for (const BatchMetrics& b : metrics.batches) input_total += b.input_rows;
  // Each block scanning the streamed table counts its delta: two blocks
  // (inner avg + outer) × 500 rows.
  EXPECT_EQ(input_total, 1000u);
  EXPECT_DOUBLE_EQ(metrics.batches.back().fraction_processed, 1.0);
  EXPECT_GE(metrics.LatencyToFraction(0.5), 0.0);
  EXPECT_LE(metrics.LatencyToFraction(0.5), metrics.TotalLatencySec());
  EXPECT_FALSE(metrics.Summary().empty());
}

// A tiny checkpoint ring forces deep rollbacks to degrade to full
// restarts; exactness must survive.
TEST(SessionTest, CheckpointEvictionDegradesGracefully) {
  auto catalog = MakeCatalog(400, 11);
  EngineOptions options;
  options.num_batches = 12;
  options.num_trials = 6;
  options.slack = 0.0;             // provoke failures
  options.checkpoint_history = 1;  // almost no checkpoints retained
  Session session(catalog.get(), options);
  auto query = session.Sql(
      "SELECT sum(v) FROM t WHERE v > (SELECT avg(v) FROM t)");
  ASSERT_TRUE(query.ok()) << query.status();

  auto plan = BindSql("SELECT sum(v) FROM t WHERE v > (SELECT avg(v) FROM t)",
                      *catalog, FunctionRegistry::Default());
  ASSERT_TRUE(plan.ok());
  const Table& fact = *(*catalog->Find("t"))->table;
  std::vector<Row> accumulated;
  QueryController& controller = (*query)->controller();
  ASSERT_TRUE((*query)
                  ->Run([&](const PartialResult& partial) {
                    for (uint64_t id :
                         controller.layout().batches[partial.batch]) {
                      accumulated.push_back(fact.row(id));
                    }
                    const double scale = static_cast<double>(fact.num_rows()) /
                                         accumulated.size();
                    auto expected =
                        EvaluateReference(*plan, *catalog, accumulated, scale);
                    EXPECT_TRUE(expected.ok());
                    EXPECT_EQ(partial.rows.num_rows(), expected->num_rows());
                    if (partial.rows.num_rows() == expected->num_rows() &&
                        partial.rows.num_rows() > 0) {
                      EXPECT_NEAR(partial.rows.row(0)[0].AsDouble(),
                                  expected->row(0)[0].AsDouble(),
                                  1e-6 * std::fabs(
                                             expected->row(0)[0].AsDouble()));
                    }
                    return BatchAction::kContinue;
                  })
                  .ok());
}

}  // namespace
}  // namespace iolap
