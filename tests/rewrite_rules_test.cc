// Tests for the Appendix B query-decomposition rewrite: structural shape,
// firing conditions, and semantic equivalence (rewritten plans must give
// the same incremental results as the originals).

#include <gtest/gtest.h>

#include <cmath>

#include "catalog/catalog.h"
#include "common/random.h"
#include "exec/reference.h"
#include "iolap/query_controller.h"
#include "plan/rewrite_rules.h"
#include "sql/binder.h"

namespace iolap {
namespace {

// Two sizeable relations joined on a low-cardinality key: the shape of
// Appendix B's Example 4, where caching both join sides is expensive and
// the decomposition collapses the join to per-key partial sums.
class RewriteTest : public ::testing::Test {
 protected:
  RewriteTest() : functions_(FunctionRegistry::Default()) {
    Rng rng(99);
    Table r(Schema({{"k", ValueType::kInt64},
                    {"x", ValueType::kDouble},
                    {"grp", ValueType::kInt64}}));
    for (int i = 0; i < 600; ++i) {
      r.AddRow({Value::Int64(static_cast<int64_t>(rng.NextBounded(8))),
                Value::Double(rng.NextDouble() * 10),
                Value::Int64(static_cast<int64_t>(rng.NextBounded(3)))});
    }
    EXPECT_TRUE(catalog_.RegisterTable("r", std::move(r), true).ok());

    Table s(Schema({{"k", ValueType::kInt64}, {"y", ValueType::kDouble}}));
    for (int i = 0; i < 400; ++i) {
      s.AddRow({Value::Int64(static_cast<int64_t>(rng.NextBounded(8))),
                Value::Double(rng.NextDouble() * 5)});
    }
    EXPECT_TRUE(catalog_.RegisterTable("s", std::move(s)).ok());
  }

  Result<QueryPlan> Bind(const std::string& sql) {
    return BindSql(sql, catalog_, functions_);
  }

  Catalog catalog_;
  std::shared_ptr<FunctionRegistry> functions_;
};

TEST_F(RewriteTest, DecomposesProductSum) {
  auto plan = Bind(
      "SELECT grp, sum(x * y), count(*) FROM r, s WHERE r.k = s.k "
      "GROUP BY grp");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->blocks.size(), 1u);

  RewriteStats stats;
  auto rewritten = ApplyRewriteRules(*plan, &stats);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
  EXPECT_EQ(stats.decompositions, 1);
  ASSERT_EQ(rewritten->blocks.size(), 3u);
  // Two partial blocks + one recombining block over their outputs.
  EXPECT_EQ(rewritten->blocks[0].inputs[0].kind,
            BlockInput::Kind::kBaseTable);
  EXPECT_EQ(rewritten->blocks[1].inputs[0].kind,
            BlockInput::Kind::kBaseTable);
  EXPECT_EQ(rewritten->blocks[2].inputs[0].kind,
            BlockInput::Kind::kBlockOutput);
  EXPECT_EQ(rewritten->blocks[2].inputs[1].kind,
            BlockInput::Kind::kBlockOutput);
  // The rewritten output schema is column-compatible with the original.
  EXPECT_EQ(rewritten->top().output_schema.num_columns(),
            plan->top().output_schema.num_columns());
  for (size_t c = 0; c < plan->top().output_schema.num_columns(); ++c) {
    EXPECT_EQ(rewritten->top().output_schema.column(c).name,
              plan->top().output_schema.column(c).name);
  }
}

TEST_F(RewriteTest, RewrittenPlanIsEquivalentEveryBatch) {
  for (const char* sql :
       {"SELECT grp, sum(x * y) AS v FROM r, s WHERE r.k = s.k GROUP BY grp",
        "SELECT sum(x * y) FROM r, s WHERE r.k = s.k AND x > 2 AND y < 4",
        "SELECT grp, count(*), sum(x), sum(y) FROM r, s WHERE r.k = s.k "
        "GROUP BY grp"}) {
    SCOPED_TRACE(sql);
    auto plan = Bind(sql);
    ASSERT_TRUE(plan.ok()) << plan.status();
    RewriteStats stats;
    auto rewritten = ApplyRewriteRules(*plan, &stats);
    ASSERT_TRUE(rewritten.ok()) << rewritten.status();
    ASSERT_GE(stats.decompositions, 1);

    EngineOptions options;
    options.num_trials = 8;
    options.num_batches = 6;
    options.seed = 4;
    QueryController original(&catalog_, *plan, options);
    QueryController decomposed(&catalog_, *rewritten, options);
    ASSERT_TRUE(original.Init().ok());
    ASSERT_TRUE(decomposed.Init().ok());

    std::vector<Table> original_results;
    ASSERT_TRUE(original
                    .Run([&](const PartialResult& partial) {
                      original_results.push_back(partial.rows);
                      return BatchAction::kContinue;
                    })
                    .ok());
    int batch = 0;
    ASSERT_TRUE(decomposed
                    .Run([&](const PartialResult& partial) {
                      const Table& expected = original_results[batch++];
                      EXPECT_EQ(partial.rows.num_rows(), expected.num_rows());
                      for (size_t r = 0; r < partial.rows.num_rows(); ++r) {
                        for (size_t c = 0; c < partial.rows.row(r).size();
                             ++c) {
                          const double a = partial.rows.row(r)[c].AsDouble();
                          const double e = expected.row(r)[c].AsDouble();
                          EXPECT_NEAR(a, e,
                                      1e-6 * std::max(1.0, std::fabs(e)))
                              << "batch " << partial.batch << " row " << r
                              << " col " << c;
                        }
                      }
                      return BatchAction::kContinue;
                    })
                    .ok());
  }
}

TEST_F(RewriteTest, ShrinksJoinState) {
  auto plan = Bind(
      "SELECT sum(x * y) FROM r, s WHERE r.k = s.k");
  ASSERT_TRUE(plan.ok());
  RewriteStats stats;
  auto rewritten = ApplyRewriteRules(*plan, &stats);
  ASSERT_TRUE(rewritten.ok());
  ASSERT_EQ(stats.decompositions, 1);

  EngineOptions options;
  options.num_trials = 8;
  options.num_batches = 6;
  auto peak = [&](const QueryPlan& p) {
    QueryController controller(&catalog_, p, options);
    EXPECT_TRUE(controller.Init().ok());
    EXPECT_TRUE(controller.Run(nullptr).ok());
    return controller.metrics().PeakJoinStateBytes();
  };
  const uint64_t original_state = peak(*plan);
  const uint64_t rewritten_state = peak(*rewritten);
  // Appendix B's point: the join now caches per-key partial sums (8 keys)
  // instead of the input relations (600 + 400 rows).
  EXPECT_LT(rewritten_state, original_state / 5);
}

TEST_F(RewriteTest, DoesNotFireOnUnsupportedShapes) {
  RewriteStats stats;
  for (const char* sql : {
           // AVG does not decompose.
           "SELECT avg(x) FROM r, s WHERE r.k = s.k",
           // Cross-side addition is not a product.
           "SELECT sum(x + y) FROM r, s WHERE r.k = s.k",
           // Cross-side filter conjunct.
           "SELECT sum(x * y) FROM r, s WHERE r.k = s.k AND x > y",
           // Single input: nothing to decompose.
           "SELECT grp, sum(x) FROM r GROUP BY grp",
       }) {
    SCOPED_TRACE(sql);
    auto plan = Bind(sql);
    ASSERT_TRUE(plan.ok()) << plan.status();
    const size_t blocks_before = plan->blocks.size();
    auto rewritten = ApplyRewriteRules(*plan, &stats);
    ASSERT_TRUE(rewritten.ok()) << rewritten.status();
    EXPECT_EQ(rewritten->blocks.size(), blocks_before);
  }
  EXPECT_EQ(stats.decompositions, 0);
}

TEST_F(RewriteTest, PreservesDownstreamLookups) {
  // The decomposed block is referenced by a scalar subquery downstream;
  // the lookup's block id must be remapped to the recombining block.
  auto plan = Bind(
      "SELECT count(*) FROM r WHERE x * 100 > "
      "(SELECT sum(x * y) FROM r r2, s WHERE r2.k = s.k)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  RewriteStats stats;
  auto rewritten = ApplyRewriteRules(*plan, &stats);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
  ASSERT_EQ(stats.decompositions, 1);
  std::vector<const AggLookupExpr*> lookups;
  rewritten->top().filter->CollectAggLookups(&lookups);
  ASSERT_EQ(lookups.size(), 1u);
  // The lookup must point at the recombining block (an aggregate block).
  EXPECT_TRUE(rewritten->blocks[lookups[0]->block_id()].has_aggregate());
  EXPECT_EQ(rewritten->blocks[lookups[0]->block_id()].inputs[0].kind,
            BlockInput::Kind::kBlockOutput);
}

}  // namespace
}  // namespace iolap
