// Interactive iOLAP shell: load CSV files, mark one as streamed, and run
// SQL queries incrementally from a REPL — the closest thing to the demo
// the authors gave of the system [38].
//
//   iolap_shell [csv files...]
//
// Commands:
//   \load <path> [name]        register a CSV file as a table
//   \stream <table>            mark the relation to process online
//   \tables                    list registered tables
//   \batches <n>               set the mini-batch count   (default 20)
//   \trials <n>                set bootstrap trial count  (default 100)
//   \analytic on|off           closed-form estimator instead of bootstrap
//   \mode iolap|hda|baseline   execution mode
//   \demo                      load the built-in sessions demo dataset
//   \quit
//   any other input is parsed as SQL and executed incrementally.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "catalog/csv.h"
#include "iolap/session.h"
#include "workloads/conviva.h"

using namespace iolap;  // NOLINT — example brevity

namespace {

struct ShellState {
  Catalog catalog;
  EngineOptions options;
  std::shared_ptr<FunctionRegistry> functions = FunctionRegistry::Default();
};

void LoadCsv(ShellState* state, const std::string& path,
             std::string name) {
  if (name.empty()) {
    // Derive the table name from the file name.
    size_t slash = path.find_last_of('/');
    name = slash == std::string::npos ? path : path.substr(slash + 1);
    const size_t dot = name.find_last_of('.');
    if (dot != std::string::npos) name = name.substr(0, dot);
  }
  auto table = ReadCsvFile(path);
  if (!table.ok()) {
    std::printf("error: %s\n", table.status().ToString().c_str());
    return;
  }
  const size_t rows = table->num_rows();
  const std::string schema = table->schema().ToString();
  Status status = state->catalog.RegisterTable(name, std::move(*table), false);
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return;
  }
  std::printf("loaded %s: %zu rows, %s\n", name.c_str(), rows, schema.c_str());
}

void RunSql(ShellState* state, const std::string& sql) {
  Session session(&state->catalog, state->options, state->functions);
  auto query = session.Sql(sql);
  if (!query.ok()) {
    std::printf("error: %s\n", query.status().ToString().c_str());
    return;
  }
  Status status = (*query)->Run([](const PartialResult& partial) {
    double worst = 0.0;
    for (const auto& row : partial.estimates) {
      for (const ErrorEstimate& est : row) {
        worst = std::max(worst, est.rel_stddev);
      }
    }
    std::printf("\r[batch %3d | %5.1f%% | ±%.2f%%] ", partial.batch,
                100.0 * partial.fraction_processed, 100.0 * worst);
    std::fflush(stdout);
    return BatchAction::kContinue;
  });
  if (!status.ok()) {
    std::printf("\nerror: %s\n", status.ToString().c_str());
    return;
  }
  const PartialResult& result = (*query)->last_result();
  std::printf("\n%s", result.rows.ToString(25).c_str());
  if (!result.estimates.empty() && !result.estimated_columns.empty()) {
    std::printf("(first row estimates:");
    for (size_t k = 0; k < result.estimated_columns.size(); ++k) {
      std::printf(" %s", result.estimates[0][k].ToString().c_str());
    }
    std::printf(")\n");
  }
  std::printf("%s\n", (*query)->metrics().Summary().c_str());
}

void Demo(ShellState* state) {
  ConvivaConfig config;
  config.sessions = 40000;
  auto demo = MakeConvivaCatalog(config);
  if (!demo.ok()) {
    std::printf("error: %s\n", demo.status().ToString().c_str());
    return;
  }
  auto entry = (*demo)->Find("sessions");
  Status status = state->catalog.RegisterTable("sessions", (*entry)->table,
                                               /*streamed=*/true);
  RegisterConvivaUdfs(state->functions.get());
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return;
  }
  std::printf("demo sessions table registered (streamed). Try:\n"
              "  SELECT AVG(play_time) FROM sessions WHERE buffer_time > "
              "(SELECT AVG(buffer_time) FROM sessions)\n");
}

}  // namespace

int main(int argc, char** argv) {
  ShellState state;
  state.options.num_batches = 20;
  for (int i = 1; i < argc; ++i) LoadCsv(&state, argv[i], "");

  std::printf("iOLAP shell — \\demo for sample data, \\quit to exit\n");
  std::string line;
  while (true) {
    std::printf("iolap> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::istringstream in(line);
    std::string word;
    in >> word;
    if (word.empty()) continue;
    if (word == "\\quit" || word == "\\q") break;
    if (word == "\\demo") {
      Demo(&state);
    } else if (word == "\\load") {
      std::string path, name;
      in >> path >> name;
      if (path.empty()) {
        std::printf("usage: \\load <path> [name]\n");
      } else {
        LoadCsv(&state, path, name);
      }
    } else if (word == "\\stream") {
      std::string table;
      in >> table;
      Status status = state.catalog.SetStreamed(table, true);
      std::printf("%s\n", status.ok() ? "ok" : status.ToString().c_str());
    } else if (word == "\\tables") {
      for (const std::string& name : state.catalog.TableNames()) {
        auto entry = state.catalog.Find(name);
        std::printf("  %s%s (%zu rows)\n", name.c_str(),
                    (*entry)->streamed ? " [streamed]" : "",
                    (*entry)->table->num_rows());
      }
    } else if (word == "\\batches") {
      in >> state.options.num_batches;
      std::printf("batches = %zu\n", state.options.num_batches);
    } else if (word == "\\trials") {
      in >> state.options.num_trials;
      std::printf("trials = %d\n", state.options.num_trials);
    } else if (word == "\\analytic") {
      std::string flag;
      in >> flag;
      state.options.error_method =
          flag == "on" ? ErrorMethod::kAnalytic : ErrorMethod::kBootstrap;
      std::printf("estimator = %s\n", flag == "on" ? "analytic" : "bootstrap");
    } else if (word == "\\mode") {
      std::string mode;
      in >> mode;
      if (mode == "hda") state.options.mode = ExecutionMode::kHda;
      else if (mode == "baseline") state.options.mode = ExecutionMode::kBaseline;
      else state.options.mode = ExecutionMode::kIolap;
      std::printf("mode = %s\n", mode.c_str());
    } else if (word[0] == '\\') {
      std::printf("unknown command %s\n", word.c_str());
    } else {
      RunSql(&state, line);
    }
  }
  return 0;
}
