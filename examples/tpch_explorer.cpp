// TPC-H explorer: run any of the paper's TPC-H queries incrementally from
// the command line and watch the refinement.
//
//   tpch_explorer [query_id] [mode] [batches]
//     query_id : q1 q3 q5 q6 q7 q11 q17 q18 q20 q22   (default q17)
//     mode     : iolap | hda | baseline                (default iolap)
//     batches  : mini-batch count                      (default 20)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "workloads/experiment_driver.h"

using namespace iolap;  // NOLINT — example brevity

int main(int argc, char** argv) {
  const std::string id = argc > 1 ? argv[1] : "q17";
  const std::string mode_name = argc > 2 ? argv[2] : "iolap";
  const size_t batches = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 20;

  const BenchQuery query = FindTpchQuery(id);
  if (query.sql.empty()) {
    std::fprintf(stderr, "unknown query '%s'\n", id.c_str());
    return 1;
  }
  ExecutionMode mode = ExecutionMode::kIolap;
  if (mode_name == "hda") mode = ExecutionMode::kHda;
  if (mode_name == "baseline") mode = ExecutionMode::kBaseline;

  std::printf("-- %s (%s, streamed: %s)\n%s\n\n", query.id.c_str(),
              query.nested ? "nested" : "simple SPJA",
              query.streamed_table.c_str(), query.sql.c_str());

  auto catalog = TpchCatalogStreaming(query.streamed_table);
  if (!catalog.ok()) {
    std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
    return 1;
  }
  EngineOptions options = BenchOptions(mode);
  options.num_batches = batches;

  auto outcome = RunBenchQuery(
      *catalog, query, options, [](const PartialResult& partial) {
        double worst = 0.0;
        for (const auto& row : partial.estimates) {
          for (const ErrorEstimate& est : row) {
            worst = std::max(worst, est.rel_stddev);
          }
        }
        std::printf("batch %3d  %5.1f%% of data  %4zu row(s)  worst rel.stdev "
                    "%.4f\n",
                    partial.batch, 100.0 * partial.fraction_processed,
                    partial.rows.num_rows(), worst);
        return BatchAction::kContinue;
      });
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("\nfinal result:\n%s\n",
              outcome->final_result.rows.ToString(10).c_str());
  std::printf("metrics: %s\n", outcome->metrics.Summary().c_str());
  return 0;
}
