// Conviva-style monitoring dashboard: runs the full C1–C12 workload
// incrementally and prints, per query, the time to reach a 2% relative
// error versus the time to the exact answer — the latency/accuracy
// trade-off the paper's §8.1 measures.

#include <cstdio>
#include <string>

#include "common/timer.h"
#include "workloads/experiment_driver.h"

using namespace iolap;  // NOLINT — example brevity

int main() {
  auto catalog = ConvivaBenchCatalog();
  if (!catalog.ok()) {
    std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
    return 1;
  }

  std::printf("%-5s %-7s %10s %12s %12s %10s  %s\n", "query", "kind",
              "batches", "t(2%err)", "t(total)", "recomp", "first answer");
  for (const BenchQuery& query : ConvivaQueries()) {
    EngineOptions options = BenchOptions(ExecutionMode::kIolap);
    options.num_batches = 20;

    double time_to_2pct = -1.0;
    double elapsed = 0.0;
    std::string first_answer = "-";
    WallTimer timer;
    auto outcome = RunBenchQuery(
        *catalog, query, options, [&](const PartialResult& partial) {
          elapsed = timer.ElapsedSeconds();
          if (partial.batch == 0 && partial.rows.num_rows() > 0) {
            first_answer = RowToString(partial.rows.row(0));
          }
          // Worst relative stdev across all estimated cells.
          double worst = 0.0;
          for (const auto& row : partial.estimates) {
            for (const ErrorEstimate& est : row) {
              worst = std::max(worst, est.rel_stddev);
            }
          }
          if (time_to_2pct < 0 && !partial.estimates.empty() &&
              worst <= 0.02) {
            time_to_2pct = elapsed;
          }
          return BatchAction::kContinue;
        });
    if (!outcome.ok()) {
      std::printf("%-5s FAILED: %s\n", query.id.c_str(),
                  outcome.status().ToString().c_str());
      continue;
    }
    std::printf("%-5s %-7s %10zu %11.3fs %11.3fs %10llu  %s\n",
                query.id.c_str(), query.nested ? "nested" : "spja",
                outcome->metrics.batches.size(),
                time_to_2pct < 0 ? outcome->metrics.TotalLatencySec()
                                 : time_to_2pct,
                outcome->metrics.TotalLatencySec(),
                static_cast<unsigned long long>(
                    outcome->metrics.TotalRecomputedRows()),
                first_answer.c_str());
  }
  return 0;
}
