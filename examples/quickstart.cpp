// Quickstart: the paper's running example (Example 1, "Slow Buffering
// Impact") on a synthetic video-sessions log.
//
// Demonstrates the core iOLAP loop: register tables, mark the fact table
// as streamed, compile a SQL query with a nested aggregate subquery, and
// watch partial results + confidence intervals refine batch by batch —
// stopping as soon as the answer is accurate enough.

#include <cstdio>

#include "iolap/session.h"
#include "workloads/conviva.h"

using namespace iolap;  // NOLINT — example brevity

int main() {
  // 1. Generate a synthetic sessions log (stands in for the paper's
  //    Conviva trace) and register it as the streamed relation.
  ConvivaConfig config;
  config.sessions = 60000;
  auto catalog = MakeConvivaCatalog(config);
  if (!catalog.ok()) {
    std::fprintf(stderr, "catalog: %s\n", catalog.status().ToString().c_str());
    return 1;
  }

  // 2. Configure the engine: 40 mini-batches, 100 bootstrap trials,
  //    slack ε = 2 — the paper's defaults (§8).
  EngineOptions options;
  options.num_batches = 40;
  options.num_trials = 100;
  options.slack = 2.0;

  Session session(catalog->get(), options);

  // 3. The SBI query: how long do users keep watching when buffering is
  //    worse than average?
  auto query = session.Sql(
      "SELECT AVG(play_time) FROM sessions "
      "WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)");
  if (!query.ok()) {
    std::fprintf(stderr, "compile: %s\n", query.status().ToString().c_str());
    return 1;
  }

  // 4. Run incrementally; stop once the relative standard deviation of the
  //    answer drops below 0.5%.
  std::printf("batch  %%data   AVG(play_time)   95%% CI                rel.stdev\n");
  Status status = (*query)->Run([](const PartialResult& partial) {
    const ErrorEstimate& est = partial.estimates.empty()
                                   ? ErrorEstimate{}
                                   : partial.estimates[0][0];
    std::printf("%5d  %5.1f   %14.3f   [%9.3f, %9.3f]   %6.3f%%\n",
                partial.batch, 100.0 * partial.fraction_processed, est.value,
                est.ci_lo, est.ci_hi, 100.0 * est.rel_stddev);
    const bool accurate_enough =
        partial.fraction_processed < 1.0 && est.rel_stddev < 0.005;
    if (accurate_enough) {
      std::printf("\n-> 0.5%% relative error reached after %.1f%% of the "
                  "data; stopping early.\n",
                  100.0 * partial.fraction_processed);
      return BatchAction::kStop;
    }
    return BatchAction::kContinue;
  });
  if (!status.ok()) {
    std::fprintf(stderr, "run: %s\n", status.ToString().c_str());
    return 1;
  }

  const QueryMetrics& metrics = (*query)->metrics();
  std::printf("\nprocessed %zu batches in %.3f s (%llu tuples re-evaluated, "
              "%d failure recoveries)\n",
              metrics.batches.size(), metrics.TotalLatencySec(),
              static_cast<unsigned long long>(metrics.TotalRecomputedRows()),
              metrics.TotalFailureRecoveries());
  return 0;
}
