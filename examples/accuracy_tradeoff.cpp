// Accuracy/latency trade-off: reproduces the paper's headline claim (§1) —
// iOLAP delivers a ~95%-accurate answer an order of magnitude faster than
// the batch baseline, a ~98%-accurate answer several times faster, and the
// exact answer at comparable cost — as a runnable demonstration on the
// Conviva C8 query.

#include <cstdio>

#include "common/timer.h"
#include "workloads/experiment_driver.h"

using namespace iolap;  // NOLINT — example brevity

int main() {
  auto catalog = ConvivaBenchCatalog();
  if (!catalog.ok()) {
    std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
    return 1;
  }
  const BenchQuery query = FindConvivaQuery("c8");

  // Batch baseline: the traditional engine answers once, at the end.
  auto baseline =
      RunBenchQuery(*catalog, query, BenchOptions(ExecutionMode::kBaseline));
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }
  const double baseline_sec = baseline->metrics.TotalLatencySec();

  // iOLAP: record when each accuracy level is first reached.
  EngineOptions options = BenchOptions(ExecutionMode::kIolap);
  options.num_batches = 40;
  struct Milestone {
    const char* label;
    double rel_err;
    double seconds = -1;
    double fraction = 0;
  } milestones[] = {{"95% accurate (5% rel.err)", 0.05},
                    {"98% accurate (2% rel.err)", 0.02},
                    {"99.5% accurate", 0.005}};
  WallTimer timer;
  double total_sec = 0;
  auto outcome = RunBenchQuery(
      *catalog, query, options, [&](const PartialResult& partial) {
        total_sec = timer.ElapsedSeconds();
        double worst = 0.0;
        for (const auto& row : partial.estimates) {
          for (const ErrorEstimate& est : row) {
            worst = std::max(worst, est.rel_stddev);
          }
        }
        for (Milestone& m : milestones) {
          if (m.seconds < 0 && worst <= m.rel_err) {
            m.seconds = total_sec;
            m.fraction = partial.fraction_processed;
          }
        }
        return BatchAction::kContinue;
      });
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("query: %s\n\n", query.sql.c_str());
  std::printf("batch baseline (exact): %.3f s\n\n", baseline_sec);
  for (const Milestone& m : milestones) {
    if (m.seconds < 0) {
      std::printf("%-28s  not reached before completion\n", m.label);
    } else {
      std::printf("%-28s  %.3f s  (%.1f%% of data, %.1fx faster than "
                  "baseline)\n",
                  m.label, m.seconds, 100.0 * m.fraction,
                  baseline_sec / m.seconds);
    }
  }
  std::printf("%-28s  %.3f s  (%.2fx the baseline: bootstrap + scheduling "
              "overhead, cf. §8.1)\n",
              "exact (100% of data)", outcome->metrics.TotalLatencySec(),
              outcome->metrics.TotalLatencySec() / baseline_sec);
  return 0;
}
