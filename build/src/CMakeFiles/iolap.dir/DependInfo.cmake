
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bootstrap/error_estimate.cc" "src/CMakeFiles/iolap.dir/bootstrap/error_estimate.cc.o" "gcc" "src/CMakeFiles/iolap.dir/bootstrap/error_estimate.cc.o.d"
  "/root/repo/src/bootstrap/poisson_multiplicities.cc" "src/CMakeFiles/iolap.dir/bootstrap/poisson_multiplicities.cc.o" "gcc" "src/CMakeFiles/iolap.dir/bootstrap/poisson_multiplicities.cc.o.d"
  "/root/repo/src/bootstrap/trial_accumulator.cc" "src/CMakeFiles/iolap.dir/bootstrap/trial_accumulator.cc.o" "gcc" "src/CMakeFiles/iolap.dir/bootstrap/trial_accumulator.cc.o.d"
  "/root/repo/src/bootstrap/variation_range.cc" "src/CMakeFiles/iolap.dir/bootstrap/variation_range.cc.o" "gcc" "src/CMakeFiles/iolap.dir/bootstrap/variation_range.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/iolap.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/iolap.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/csv.cc" "src/CMakeFiles/iolap.dir/catalog/csv.cc.o" "gcc" "src/CMakeFiles/iolap.dir/catalog/csv.cc.o.d"
  "/root/repo/src/catalog/partitioner.cc" "src/CMakeFiles/iolap.dir/catalog/partitioner.cc.o" "gcc" "src/CMakeFiles/iolap.dir/catalog/partitioner.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/iolap.dir/common/random.cc.o" "gcc" "src/CMakeFiles/iolap.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/iolap.dir/common/status.cc.o" "gcc" "src/CMakeFiles/iolap.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/iolap.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/iolap.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/aggregate.cc" "src/CMakeFiles/iolap.dir/core/aggregate.cc.o" "gcc" "src/CMakeFiles/iolap.dir/core/aggregate.cc.o.d"
  "/root/repo/src/core/expr.cc" "src/CMakeFiles/iolap.dir/core/expr.cc.o" "gcc" "src/CMakeFiles/iolap.dir/core/expr.cc.o.d"
  "/root/repo/src/core/function_registry.cc" "src/CMakeFiles/iolap.dir/core/function_registry.cc.o" "gcc" "src/CMakeFiles/iolap.dir/core/function_registry.cc.o.d"
  "/root/repo/src/core/interval.cc" "src/CMakeFiles/iolap.dir/core/interval.cc.o" "gcc" "src/CMakeFiles/iolap.dir/core/interval.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/CMakeFiles/iolap.dir/core/schema.cc.o" "gcc" "src/CMakeFiles/iolap.dir/core/schema.cc.o.d"
  "/root/repo/src/core/table.cc" "src/CMakeFiles/iolap.dir/core/table.cc.o" "gcc" "src/CMakeFiles/iolap.dir/core/table.cc.o.d"
  "/root/repo/src/core/value.cc" "src/CMakeFiles/iolap.dir/core/value.cc.o" "gcc" "src/CMakeFiles/iolap.dir/core/value.cc.o.d"
  "/root/repo/src/exec/batch.cc" "src/CMakeFiles/iolap.dir/exec/batch.cc.o" "gcc" "src/CMakeFiles/iolap.dir/exec/batch.cc.o.d"
  "/root/repo/src/exec/hash_aggregate.cc" "src/CMakeFiles/iolap.dir/exec/hash_aggregate.cc.o" "gcc" "src/CMakeFiles/iolap.dir/exec/hash_aggregate.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/CMakeFiles/iolap.dir/exec/operators.cc.o" "gcc" "src/CMakeFiles/iolap.dir/exec/operators.cc.o.d"
  "/root/repo/src/exec/reference.cc" "src/CMakeFiles/iolap.dir/exec/reference.cc.o" "gcc" "src/CMakeFiles/iolap.dir/exec/reference.cc.o.d"
  "/root/repo/src/iolap/aggregate_registry.cc" "src/CMakeFiles/iolap.dir/iolap/aggregate_registry.cc.o" "gcc" "src/CMakeFiles/iolap.dir/iolap/aggregate_registry.cc.o.d"
  "/root/repo/src/iolap/delta_engine.cc" "src/CMakeFiles/iolap.dir/iolap/delta_engine.cc.o" "gcc" "src/CMakeFiles/iolap.dir/iolap/delta_engine.cc.o.d"
  "/root/repo/src/iolap/metrics.cc" "src/CMakeFiles/iolap.dir/iolap/metrics.cc.o" "gcc" "src/CMakeFiles/iolap.dir/iolap/metrics.cc.o.d"
  "/root/repo/src/iolap/query_controller.cc" "src/CMakeFiles/iolap.dir/iolap/query_controller.cc.o" "gcc" "src/CMakeFiles/iolap.dir/iolap/query_controller.cc.o.d"
  "/root/repo/src/iolap/session.cc" "src/CMakeFiles/iolap.dir/iolap/session.cc.o" "gcc" "src/CMakeFiles/iolap.dir/iolap/session.cc.o.d"
  "/root/repo/src/plan/lineage_blocks.cc" "src/CMakeFiles/iolap.dir/plan/lineage_blocks.cc.o" "gcc" "src/CMakeFiles/iolap.dir/plan/lineage_blocks.cc.o.d"
  "/root/repo/src/plan/logical_plan.cc" "src/CMakeFiles/iolap.dir/plan/logical_plan.cc.o" "gcc" "src/CMakeFiles/iolap.dir/plan/logical_plan.cc.o.d"
  "/root/repo/src/plan/plan_builder.cc" "src/CMakeFiles/iolap.dir/plan/plan_builder.cc.o" "gcc" "src/CMakeFiles/iolap.dir/plan/plan_builder.cc.o.d"
  "/root/repo/src/plan/rewrite_rules.cc" "src/CMakeFiles/iolap.dir/plan/rewrite_rules.cc.o" "gcc" "src/CMakeFiles/iolap.dir/plan/rewrite_rules.cc.o.d"
  "/root/repo/src/plan/uncertainty_analysis.cc" "src/CMakeFiles/iolap.dir/plan/uncertainty_analysis.cc.o" "gcc" "src/CMakeFiles/iolap.dir/plan/uncertainty_analysis.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/CMakeFiles/iolap.dir/sql/binder.cc.o" "gcc" "src/CMakeFiles/iolap.dir/sql/binder.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/iolap.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/iolap.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/iolap.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/iolap.dir/sql/parser.cc.o.d"
  "/root/repo/src/workloads/conviva.cc" "src/CMakeFiles/iolap.dir/workloads/conviva.cc.o" "gcc" "src/CMakeFiles/iolap.dir/workloads/conviva.cc.o.d"
  "/root/repo/src/workloads/conviva_queries.cc" "src/CMakeFiles/iolap.dir/workloads/conviva_queries.cc.o" "gcc" "src/CMakeFiles/iolap.dir/workloads/conviva_queries.cc.o.d"
  "/root/repo/src/workloads/experiment_driver.cc" "src/CMakeFiles/iolap.dir/workloads/experiment_driver.cc.o" "gcc" "src/CMakeFiles/iolap.dir/workloads/experiment_driver.cc.o.d"
  "/root/repo/src/workloads/tpch.cc" "src/CMakeFiles/iolap.dir/workloads/tpch.cc.o" "gcc" "src/CMakeFiles/iolap.dir/workloads/tpch.cc.o.d"
  "/root/repo/src/workloads/tpch_queries.cc" "src/CMakeFiles/iolap.dir/workloads/tpch_queries.cc.o" "gcc" "src/CMakeFiles/iolap.dir/workloads/tpch_queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
