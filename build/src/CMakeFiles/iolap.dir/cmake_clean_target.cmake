file(REMOVE_RECURSE
  "libiolap.a"
)
