# Empty compiler generated dependencies file for iolap.
# This may be replaced when dependencies are built.
