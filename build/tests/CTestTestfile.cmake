# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/core_value_test[1]_include.cmake")
include("/root/repo/build/tests/core_expr_test[1]_include.cmake")
include("/root/repo/build/tests/core_aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/bootstrap_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/registry_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_rules_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_query_test[1]_include.cmake")
include("/root/repo/build/tests/reference_test[1]_include.cmake")
include("/root/repo/build/tests/sql_extra_test[1]_include.cmake")
