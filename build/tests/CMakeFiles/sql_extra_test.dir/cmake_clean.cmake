file(REMOVE_RECURSE
  "CMakeFiles/sql_extra_test.dir/sql_extra_test.cc.o"
  "CMakeFiles/sql_extra_test.dir/sql_extra_test.cc.o.d"
  "sql_extra_test"
  "sql_extra_test.pdb"
  "sql_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
