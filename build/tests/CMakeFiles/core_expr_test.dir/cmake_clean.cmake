file(REMOVE_RECURSE
  "CMakeFiles/core_expr_test.dir/core_expr_test.cc.o"
  "CMakeFiles/core_expr_test.dir/core_expr_test.cc.o.d"
  "core_expr_test"
  "core_expr_test.pdb"
  "core_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
