# Empty compiler generated dependencies file for core_expr_test.
# This may be replaced when dependencies are built.
