file(REMOVE_RECURSE
  "CMakeFiles/fuzz_query_test.dir/fuzz_query_test.cc.o"
  "CMakeFiles/fuzz_query_test.dir/fuzz_query_test.cc.o.d"
  "fuzz_query_test"
  "fuzz_query_test.pdb"
  "fuzz_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
