# Empty compiler generated dependencies file for rewrite_rules_test.
# This may be replaced when dependencies are built.
