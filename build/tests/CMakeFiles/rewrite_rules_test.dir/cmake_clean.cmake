file(REMOVE_RECURSE
  "CMakeFiles/rewrite_rules_test.dir/rewrite_rules_test.cc.o"
  "CMakeFiles/rewrite_rules_test.dir/rewrite_rules_test.cc.o.d"
  "rewrite_rules_test"
  "rewrite_rules_test.pdb"
  "rewrite_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
