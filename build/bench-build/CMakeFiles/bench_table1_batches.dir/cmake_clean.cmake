file(REMOVE_RECURSE
  "../bench/bench_table1_batches"
  "../bench/bench_table1_batches.pdb"
  "CMakeFiles/bench_table1_batches.dir/bench_table1_batches.cc.o"
  "CMakeFiles/bench_table1_batches.dir/bench_table1_batches.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_batches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
