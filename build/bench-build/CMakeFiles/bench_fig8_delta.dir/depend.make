# Empty dependencies file for bench_fig8_delta.
# This may be replaced when dependencies are built.
