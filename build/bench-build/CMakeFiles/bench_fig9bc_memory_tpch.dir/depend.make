# Empty dependencies file for bench_fig9bc_memory_tpch.
# This may be replaced when dependencies are built.
