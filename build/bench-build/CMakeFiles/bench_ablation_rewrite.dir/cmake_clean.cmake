file(REMOVE_RECURSE
  "../bench/bench_ablation_rewrite"
  "../bench/bench_ablation_rewrite.pdb"
  "CMakeFiles/bench_ablation_rewrite.dir/bench_ablation_rewrite.cc.o"
  "CMakeFiles/bench_ablation_rewrite.dir/bench_ablation_rewrite.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
