file(REMOVE_RECURSE
  "../bench/bench_fig9a_breakdown"
  "../bench/bench_fig9a_breakdown.pdb"
  "CMakeFiles/bench_fig9a_breakdown.dir/bench_fig9a_breakdown.cc.o"
  "CMakeFiles/bench_fig9a_breakdown.dir/bench_fig9a_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9a_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
