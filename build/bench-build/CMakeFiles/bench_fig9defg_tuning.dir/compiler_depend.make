# Empty compiler generated dependencies file for bench_fig9defg_tuning.
# This may be replaced when dependencies are built.
