# Empty compiler generated dependencies file for bench_fig10ab_hda_latency.
# This may be replaced when dependencies are built.
