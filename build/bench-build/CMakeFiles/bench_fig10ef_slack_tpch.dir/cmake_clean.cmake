file(REMOVE_RECURSE
  "../bench/bench_fig10ef_slack_tpch"
  "../bench/bench_fig10ef_slack_tpch.pdb"
  "CMakeFiles/bench_fig10ef_slack_tpch.dir/bench_fig10ef_slack_tpch.cc.o"
  "CMakeFiles/bench_fig10ef_slack_tpch.dir/bench_fig10ef_slack_tpch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10ef_slack_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
