# Empty dependencies file for bench_fig10ef_slack_tpch.
# This may be replaced when dependencies are built.
