# Empty dependencies file for bench_fig10cd_memory_conviva.
# This may be replaced when dependencies are built.
