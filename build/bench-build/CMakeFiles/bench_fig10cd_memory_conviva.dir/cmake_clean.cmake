file(REMOVE_RECURSE
  "../bench/bench_fig10cd_memory_conviva"
  "../bench/bench_fig10cd_memory_conviva.pdb"
  "CMakeFiles/bench_fig10cd_memory_conviva.dir/bench_fig10cd_memory_conviva.cc.o"
  "CMakeFiles/bench_fig10cd_memory_conviva.dir/bench_fig10cd_memory_conviva.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10cd_memory_conviva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
