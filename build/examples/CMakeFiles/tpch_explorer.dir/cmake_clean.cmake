file(REMOVE_RECURSE
  "CMakeFiles/tpch_explorer.dir/tpch_explorer.cpp.o"
  "CMakeFiles/tpch_explorer.dir/tpch_explorer.cpp.o.d"
  "tpch_explorer"
  "tpch_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
