# Empty dependencies file for tpch_explorer.
# This may be replaced when dependencies are built.
