# Empty dependencies file for iolap_shell.
# This may be replaced when dependencies are built.
