file(REMOVE_RECURSE
  "CMakeFiles/iolap_shell.dir/iolap_shell.cpp.o"
  "CMakeFiles/iolap_shell.dir/iolap_shell.cpp.o.d"
  "iolap_shell"
  "iolap_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iolap_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
