file(REMOVE_RECURSE
  "CMakeFiles/accuracy_tradeoff.dir/accuracy_tradeoff.cpp.o"
  "CMakeFiles/accuracy_tradeoff.dir/accuracy_tradeoff.cpp.o.d"
  "accuracy_tradeoff"
  "accuracy_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
