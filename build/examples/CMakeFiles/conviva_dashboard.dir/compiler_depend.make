# Empty compiler generated dependencies file for conviva_dashboard.
# This may be replaced when dependencies are built.
