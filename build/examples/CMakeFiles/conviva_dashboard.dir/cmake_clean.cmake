file(REMOVE_RECURSE
  "CMakeFiles/conviva_dashboard.dir/conviva_dashboard.cpp.o"
  "CMakeFiles/conviva_dashboard.dir/conviva_dashboard.cpp.o.d"
  "conviva_dashboard"
  "conviva_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conviva_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
