#include "shard/exchange.h"

#include "catalog/partitioner.h"
#include "common/failpoint.h"
#include "common/hash.h"
#include "shard/shard.h"

namespace iolap {

namespace {

// One message's failpoint detail: deterministic site facts only (batch
// number and shard endpoint), so `at:` schedules are independent of thread
// count. kMaxShards keeps the encoding unambiguous.
uint64_t ExchangeDetail(int batch, int shard_endpoint) {
  return static_cast<uint64_t>(batch) * kMaxShards +
         static_cast<uint64_t>(shard_endpoint < 0 ? 0 : shard_endpoint);
}

}  // namespace

const char* ExchangeKindName(ExchangeKind kind) {
  switch (kind) {
    case ExchangeKind::kDeltaRoute:
      return "delta-route";
    case ExchangeKind::kPartialAggregate:
      return "partial-aggregate";
    case ExchangeKind::kBroadcastLineage:
      return "broadcast-lineage";
  }
  return "unknown";
}

int ExchangeMessage::ShardEndpoint() const {
  return src == kCoordinator ? dst : src;
}

uint64_t ExchangeChecksum(const ExchangeMessage& msg) {
  uint64_t h = Mix64(static_cast<uint64_t>(msg.kind) + 1);
  h = HashCombine(h, static_cast<uint64_t>(msg.batch));
  h = HashCombine(h, static_cast<uint64_t>(static_cast<int64_t>(msg.src)));
  h = HashCombine(h, static_cast<uint64_t>(static_cast<int64_t>(msg.dst)));
  h = HashCombine(h, msg.payload_bytes);
  h = HashCombine(h, msg.payload_hash);
  return h;
}

ExchangeLayer::ExchangeLayer(ShardSet* shards, int max_attempts)
    : shards_(shards), max_attempts_(max_attempts < 1 ? 1 : max_attempts) {}

Result<uint64_t> ExchangeLayer::Ship(ExchangeKind kind, int batch, int src,
                                     int dst, uint64_t payload_bytes,
                                     uint64_t payload_hash) {
  ExchangeMessage msg;
  msg.kind = kind;
  msg.batch = batch;
  msg.src = src;
  msg.dst = dst;
  msg.payload_bytes = payload_bytes;
  msg.payload_hash = payload_hash;
  msg.checksum = ExchangeChecksum(msg);

  const int endpoint = msg.ShardEndpoint();
  const uint64_t detail = ExchangeDetail(batch, endpoint);
  uint64_t wire = 0;
  for (int attempt = 0; attempt < max_attempts_; ++attempt) {
    counters_.attempts += 1;
    wire += msg.WireBytes();
    counters_.wire_bytes += msg.WireBytes();
    if (attempt > 0) {
      counters_.retries += 1;
      // Bounded exponential backoff, recorded rather than slept: the
      // in-process wire has no real latency to wait out, but the counter
      // keeps the retry policy observable and deterministic.
      counters_.backoff_virtual_ms += 1ull << (attempt - 1);
    }
    if (IOLAP_FAILPOINT(Failpoint::kExchangeMessageDrop, detail)) {
      // Lost in flight: the sender's per-message deadline expires and the
      // message is retransmitted.
      counters_.timeouts += 1;
      continue;
    }
    uint64_t received_checksum = msg.checksum;
    if (IOLAP_FAILPOINT(Failpoint::kExchangeMessageCorrupt, detail)) {
      received_checksum ^= 1;  // one flipped bit on the wire
    }
    if (received_checksum != ExchangeChecksum(msg)) {
      // Receiver rejects the corrupted delivery; sender retries.
      counters_.checksum_failures += 1;
      continue;
    }
    counters_.messages += 1;
    counters_.payload_bytes += msg.payload_bytes;
    if (dst != ExchangeMessage::kCoordinator) {
      shards_->shard(static_cast<size_t>(dst)).AbsorbExchangePayload(msg);
    }
    return wire;
  }
  // Deadline exhausted: the shard endpoint is unreachable. Declare it dead;
  // the controller rebuilds its state from the last consistent batch.
  KillShard(static_cast<size_t>(endpoint));
  return Status::ExecutionError(
      std::string("exchange: ") + ExchangeKindName(kind) + " to shard " +
      std::to_string(endpoint) + " exhausted " +
      std::to_string(max_attempts_) + " attempts; shard declared dead");
}

void ExchangeLayer::KillShard(size_t shard) {
  if (shard < shards_->size() && shards_->shard(shard).alive()) {
    shards_->shard(shard).MarkDead();
    counters_.shard_deaths += 1;
  }
}

bool ExchangeLayer::IsDead(size_t shard) const {
  return shard < shards_->size() && !shards_->shard(shard).alive();
}

bool ExchangeLayer::AnyDead() const {
  return shards_->AliveCount() < shards_->size();
}

void ExchangeLayer::ReviveAll() {
  for (size_t i = 0; i < shards_->size(); ++i) shards_->shard(i).Revive();
}

}  // namespace iolap
