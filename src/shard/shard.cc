#include "shard/shard.h"

#include "catalog/partitioner.h"
#include "core/value.h"

namespace iolap {

ShardSet::ShardSet(size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) shards_.emplace_back(i);
}

size_t ShardSet::ShardOf(const ExecRow& row) const {
  if (shards_.size() <= 1) return 0;
  const uint64_t h =
      row.FromStream() ? row.stream_uid : HashRow(row.values);
  return ShardOfHash(h, shards_.size());
}

void ShardSet::BeginBlockBatch() {
  for (ShardState& s : shards_) s.BeginBlockBatch();
}

size_t ShardSet::AliveCount() const {
  size_t alive = 0;
  for (const ShardState& s : shards_) alive += s.alive() ? 1 : 0;
  return alive;
}

}  // namespace iolap
