#ifndef IOLAP_SHARD_EXCHANGE_H_
#define IOLAP_SHARD_EXCHANGE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace iolap {

class ShardSet;

/// What a message carries between the coordinator and a shard. The engine
/// exchanges exactly three kinds (docs/INTERNALS.md §11):
///  - kDeltaRoute: the coordinator shuffles a batch's delta rows to their
///    owner shards before the shard-parallel evaluate phase;
///  - kPartialAggregate: a shard returns its evaluated per-row payloads to
///    the coordinator for the serial apply phase;
///  - kBroadcastLineage: after publication the coordinator broadcasts the
///    block's updated output relation to every shard (the lineage replica
///    downstream joins read), replacing the old virtual-worker cost model.
enum class ExchangeKind : uint8_t {
  kDeltaRoute,
  kPartialAggregate,
  kBroadcastLineage,
};

const char* ExchangeKindName(ExchangeKind kind);

/// One message on the wire. `payload_bytes` is the serialized payload size
/// the sender meters (rows, partial aggregates, or a relation snapshot);
/// `checksum` covers the header fields and the payload content hash, so a
/// corrupted delivery is rejected by the receiver and retried.
struct ExchangeMessage {
  ExchangeKind kind = ExchangeKind::kDeltaRoute;
  int batch = 0;
  /// Endpoints: a shard id in [0, S), or kCoordinator.
  int src = 0;
  int dst = 0;
  uint64_t payload_bytes = 0;
  /// Content hash of the payload (sender-computed).
  uint64_t payload_hash = 0;
  uint64_t checksum = 0;

  static constexpr int kCoordinator = -1;

  /// Serialized header size: kind + batch + endpoints + checksum.
  static constexpr uint64_t kHeaderBytes = 25;

  /// The shard-side endpoint (whichever of src/dst is not the
  /// coordinator); the failpoint detail for this message is
  /// `batch * kMaxShards + ShardEndpoint()`.
  int ShardEndpoint() const;

  uint64_t WireBytes() const { return kHeaderBytes + payload_bytes; }
};

/// Header+payload checksum (order-sensitive HashCombine chain).
uint64_t ExchangeChecksum(const ExchangeMessage& msg);

/// Cumulative traffic and fault counters. Wire bytes count every attempt —
/// a retransmitted message pays its full size again — so the measured
/// shuffle/broadcast bytes in QueryMetrics reflect what a lossy link
/// actually carried, not what the cost model predicted.
struct ExchangeCounters {
  uint64_t messages = 0;        ///< Delivered messages.
  uint64_t attempts = 0;        ///< Send attempts (>= messages).
  uint64_t retries = 0;         ///< Re-sends after a drop or corruption.
  uint64_t checksum_failures = 0;
  uint64_t timeouts = 0;        ///< Dropped messages that hit the deadline.
  uint64_t wire_bytes = 0;      ///< Header + payload, every attempt.
  uint64_t payload_bytes = 0;   ///< Payload of delivered messages only.
  uint64_t backoff_virtual_ms = 0;  ///< Recorded (never slept) backoff.
  uint64_t shard_deaths = 0;    ///< Shards declared dead on exhaustion.
};

/// The explicit seam every byte between shards crosses. In-process today
/// (delivery is a method call on the destination ShardState), but built
/// robust from day one: per-message checksums, bounded-backoff retry with
/// a per-message deadline, and a degradation path — a message that
/// exhausts its attempts declares the shard endpoint dead, and the
/// controller rebuilds that shard's state from the last consistent batch
/// (docs/INTERNALS.md §11).
///
/// Fault injection: the exchange-message-corrupt / exchange-message-drop
/// failpoints fire per attempt with detail `batch * kMaxShards + shard`,
/// so a schedule can target one message of one shard of one batch. All
/// exchange failures are failpoint-driven, so the recovery they trigger is
/// an *injected* rollback (unfrozen, bit-identical replay).
///
/// Not thread-safe by design: Ship is only called from the serial
/// coordinator sections of BlockExecutor (never from pool eval tasks).
class ExchangeLayer {
 public:
  ExchangeLayer(ShardSet* shards, int max_attempts);

  /// Sends one message, retrying up to `max_attempts` times under
  /// (virtual) bounded exponential backoff. On delivery returns the total
  /// wire bytes spent, including retransmissions, and — for a shard-bound
  /// message — absorbs the payload into the destination ShardState. On
  /// exhaustion the shard endpoint is declared dead and an error returns.
  [[nodiscard]] Result<uint64_t> Ship(ExchangeKind kind, int batch, int src,
                                      int dst, uint64_t payload_bytes,
                                      uint64_t payload_hash);

  /// Declares shard k dead outside the retry path (shard-eval-fault).
  void KillShard(size_t shard);

  /// True when shard k has been declared dead since the last ReviveAll.
  bool IsDead(size_t shard) const;
  bool AnyDead() const;

  /// Recovery rebuilt every shard's state from the last consistent batch;
  /// all shards are live again. Counters are cumulative and survive.
  void ReviveAll();

  const ExchangeCounters& counters() const { return counters_; }
  int max_attempts() const { return max_attempts_; }

 private:
  ShardSet* shards_;  // not owned
  int max_attempts_;
  ExchangeCounters counters_;
};

}  // namespace iolap

#endif  // IOLAP_SHARD_EXCHANGE_H_
