#ifndef IOLAP_SHARD_SHARD_H_
#define IOLAP_SHARD_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/batch.h"
#include "shard/exchange.h"

namespace iolap {

/// One in-process horizontal shard. A shard owns a disjoint slice of every
/// relation — rows route here by stable hash (catalog/partitioner's
/// ShardOfHash), so a replayed tuple always lands on the same shard — and
/// an arena for the batch currently being evaluated: the global row
/// indices it owns plus the traffic it absorbed through the exchange.
///
/// Shard state is only ever mutated from the coordinator thread (arena
/// bookkeeping, exchange delivery) or read by the shard's own eval task;
/// cross-shard access goes through the ExchangeLayer seam, which the
/// `exchange-bypass` lint rule enforces at the token level.
class ShardState {
 public:
  explicit ShardState(size_t shard_id) : shard_id_(shard_id) {}

  size_t shard_id() const { return shard_id_; }
  bool alive() const { return alive_; }

  /// The arena: global row indices of the current block batch this shard
  /// owns. Reset per block batch, appended by the coordinator's routing
  /// pass, iterated by this shard's eval task.
  const std::vector<uint32_t>& owned_rows() const { return owned_rows_; }
  void OwnRow(uint32_t global_row_index) {
    owned_rows_.push_back(global_row_index);
  }
  void BeginBlockBatch() { owned_rows_.clear(); }

  /// Exchange delivery target — the ONLY entry point through which bytes
  /// reach a shard from the outside. Called exclusively by
  /// ExchangeLayer::Ship (src/shard/exchange.cc); any other call site is
  /// a seam bypass and is rejected by tools/lint's `exchange-bypass` rule.
  void AbsorbExchangePayload(const ExchangeMessage& msg) {
    absorbed_messages_ += 1;
    absorbed_bytes_ += msg.payload_bytes;
  }

  uint64_t absorbed_messages() const { return absorbed_messages_; }
  uint64_t absorbed_bytes() const { return absorbed_bytes_; }

  /// Death / rebirth, driven by the ExchangeLayer degradation path.
  void MarkDead() { alive_ = false; }
  void Revive() { alive_ = true; }

 private:
  size_t shard_id_;
  bool alive_ = true;
  std::vector<uint32_t> owned_rows_;
  uint64_t absorbed_messages_ = 0;
  uint64_t absorbed_bytes_ = 0;
};

/// The fleet of S shards plus the deterministic row → shard routing rule.
/// S = 1 degenerates to the unsharded engine: every row owns to shard 0
/// and the evaluate phase falls back to lane-parallel ranges.
class ShardSet {
 public:
  explicit ShardSet(size_t num_shards);

  size_t size() const { return shards_.size(); }
  ShardState& shard(size_t i) { return shards_[i]; }
  const ShardState& shard(size_t i) const { return shards_[i]; }

  /// Owner shard of a tuple: streamed rows route by their stable stream
  /// uid (recovery replays re-route them identically), derived rows by
  /// the hash of their values.
  size_t ShardOf(const ExecRow& row) const;

  /// Clears every shard's arena before a block batch is routed.
  void BeginBlockBatch();

  size_t AliveCount() const;

 private:
  std::vector<ShardState> shards_;
};

}  // namespace iolap

#endif  // IOLAP_SHARD_SHARD_H_
