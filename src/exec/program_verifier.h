#ifndef IOLAP_EXEC_PROGRAM_VERIFIER_H_
#define IOLAP_EXEC_PROGRAM_VERIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/expr.h"
#include "core/function_registry.h"
#include "exec/expr_program.h"

namespace iolap {

// Static bytecode verifier for compiled expression programs.
//
// ExprProgram (exec/expr_program.h) is the per-trial hot path of every
// delta update: its interpreter loop indexes register files, call sites and
// aggregate slots without bounds checks, on the strength of invariants the
// compiler is supposed to establish. A miscompiled program that does not
// happen to bail silently corrupts every downstream confidence interval —
// the bit-identity oracle behind Theorem 1's exactness guarantee (PAPER.md
// / DESIGN.md) has no runtime net on the compiled path.
//
// ProgramVerifier makes those invariants *proven* instead of assumed: an
// abstract-interpretation pass over the prologue and epilogue segments that
// accepts a program only if every execution — any row, any trial count —
// is memory-safe and trial-sound. The engine runs it as an always-on
// post-compile assertion (see CompileVerified below): a rejected program is
// dropped and the block keeps the interpreter, exactly like a compile
// refusal ("refuse-to-interpreter"), so verification can only cost speed,
// never correctness. docs/INTERNALS.md §10 describes the lattice.
//
// Soundness rules (rule ids match the diagnostics and INTERNALS.md §10):
//
//   def-before-use   every register is written (by a constant or a single
//                    instruction) before any instruction, call-site
//                    argument, probe key, or root reads it; segments are
//                    straight-line, so textual order is execution order.
//                    Programs are single-assignment: a second write to a
//                    register — in particular to a constant register, which
//                    InitState materializes only once per state — is
//                    rejected, because states are reused across rows and
//                    trials and a clobber leaks values between runs.
//   register-kind    operands live in the file (num/str) their opcode
//                    reads; call arguments match the kernel's typing
//                    (kCallNum takes numeric registers only and requires a
//                    numeric_kernel); generic calls write the file their
//                    static-kind discriminant claims.
//   null-tag         the 3VL lattice is respected: kLogic's sub is AND/OR,
//                    kCmpNum/kCmpStr's sub is one of the six comparisons,
//                    kArith's sub is +,-,*,/ and its int-output flag is
//                    0/1; numeric constants carry a numeric tag (never
//                    kString) and int-tagged constants satisfy the NumReg
//                    invariant f == double(i) that AsDouble() relies on.
//   aux-bounds       every aux index lands inside call_sites_ / agg_sites_
//                    / the const pools; every register index is below the
//                    claimed file size; owned_slot is below owned_slots_;
//                    row loads stay at or below max_col_; no call site
//                    passes more arguments than max_call_args_ (the
//                    num_args_ scratch size).
//   trial-invariance kProbeAgg appears only in the prologue (the epilogue
//                    runs without a resolver) with its key registers
//                    defined; kReadAggNum/kReadAggStr appear only in the
//                    epilogue and only for sites the prologue probes;
//                    kColLineage (trial-variant by construction) never
//                    appears in the prologue; a root marked `invariant`
//                    reads a prologue-defined register, which — together
//                    with def-before-use — proves it transitively depends
//                    on prologue computation only.
//   register-file    the claimed file sizes are exact: every register in
//                    [0, num_regs_) / [0, str_regs_) is defined, max_col_
//                    and max_call_args_ equal the actual maxima, and every
//                    owned slot in [0, owned_slots_) belongs to exactly one
//                    string-kind generic call site (two sites sharing a
//                    slot would alias their owned Values and dangle the
//                    first result's string_view).

/// Outcome of one verification pass. `rule` is the stable rule id above
/// ("" when ok); `message` pinpoints the offending instruction/operand.
struct VerifyResult {
  bool ok = true;
  std::string rule;
  std::string message;
};

class ProgramVerifier {
 public:
  /// Proves the soundness rules above for `program`. Pure function of the
  /// program; runs in O(instructions + registers).
  static VerifyResult Verify(const ExprProgram& program);
};

/// Counters for the compile→verify seam, aggregated per block and summed
/// into QueryMetrics by the controller.
struct ProgramVerifierStats {
  /// Successful ExprProgram::Compile calls (programs that then faced the
  /// verifier).
  int compiled = 0;
  /// Compile() refusals (nullptr): the compiler itself kept the
  /// interpreter; the verifier never saw a program.
  int refused = 0;
  /// Programs the verifier (and, for engine blocks, the plan invariant
  /// prover) accepted.
  int verified = 0;
  /// Programs rejected after a successful compile — each one is a compiler
  /// bug; the block falls back to the interpreter (or, under
  /// EngineOptions::verify_programs = kStrict, fails the query).
  int rejected = 0;
  std::string last_rejection;

  void RecordRejection(const std::string& rule, const std::string& message) {
    ++rejected;
    last_rejection = "[" + rule + "] " + message;
  }
};

/// The sanctioned way for engine code to obtain a compiled program: compile
/// `roots`, run the verifier, and return the program only if it is proven
/// sound. Returns nullptr on compile refusal *and* on verifier rejection —
/// the caller keeps the interpreter either way — recording both in `stats`
/// (may be null). The verifier-bypass lint rule flags direct
/// ExprProgram::Compile calls outside this seam.
std::unique_ptr<const ExprProgram> CompileVerified(
    const std::vector<ExprPtr>& roots, const FunctionRegistry* functions,
    const std::vector<ExprPtr>* column_lineage, ProgramVerifierStats* stats);

}  // namespace iolap

#endif  // IOLAP_EXEC_PROGRAM_VERIFIER_H_
