#ifndef IOLAP_EXEC_EXPR_PROGRAM_H_
#define IOLAP_EXEC_EXPR_PROGRAM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/expr.h"
#include "core/function_registry.h"
#include "core/value.h"

namespace iolap {

// Compiled expression programs.
//
// ExprProgram lowers a set of bound Expr trees (typically one block's filter
// plus its aggregate argument expressions) into a flat, type-specialized
// register program: typed slots (int64/double with a null tag, string_view
// with a null bit), no virtual dispatch and no Value construction in the
// loop. Instructions are split into two straight-line segments by the
// trial-invariant hoisting rule (DependsOnUncertain):
//
//   prologue  — executed once per row by Bind(): everything that does not
//               depend on an uncertain aggregate, plus one batched resolver
//               probe per AggLookup site (key gather + LookupTrials).
//   epilogue  — executed once per trial by EvalTrial(): reads of the probed
//               per-trial replicas and the operators downstream of them.
//
// Compilation is conservative: trees the compiler cannot prove it evaluates
// bit-identically to Expr::Eval (statically mixed string/numeric operands,
// trial-variant aggregate keys, unknown functions, ...) refuse to compile
// and Compile() returns nullptr — callers keep the interpreter. Runtime
// surprises (a statically-numeric column holding a string, a generic call
// returning a type its static kind does not cover) set a sticky bail flag;
// the caller re-evaluates the whole row with the interpreter, so the
// compiled path never changes a result, only its cost.
//
// A program is immutable after Compile() and shared read-only across
// threads; all mutable evaluation state lives in a per-thread
// ExprProgramState.

namespace expr_prog {

/// A numeric register: int64/double payload plus runtime tag. Invariant:
/// when tag == kInt64, `f == double(i)` (so Value::AsDouble() is the plain
/// load of `f` regardless of tag).
struct NumReg {
  double f = 0.0;
  int64_t i = 0;
  ValueType tag = ValueType::kNull;
};

/// A string register: a view into the source row, the program's literal
/// pool, or a state-owned result slot — plus a null bit.
struct StrReg {
  std::string_view s;
  bool null = true;
};

/// Per-row result of one AggLookup site: the main (trial = -1) value and
/// the per-trial replicas, filled by the prologue's single resolver probe.
struct AggSlot {
  Value main;
  std::vector<Value> trials;
};

}  // namespace expr_prog

class ExprProgram;

/// Mutable per-thread scratch for one ExprProgram. Create one per
/// evaluation lane, initialize with ExprProgram::InitState, reuse across
/// rows. Never shared between threads.
class ExprProgramState {
 public:
  ExprProgramState() = default;

  /// True if the current row hit a runtime case the compiled code does not
  /// cover; results for this row are unusable and the caller must fall back
  /// to the interpreter. Cleared by the next Bind().
  bool bailed() const { return bail_; }

 private:
  friend class ExprProgram;

  std::vector<expr_prog::NumReg> num_;
  std::vector<expr_prog::StrReg> str_;
  /// Reused key rows, one per AggLookup site.
  std::vector<Row> keys_;
  /// Probe results, one per AggLookup site.
  std::vector<expr_prog::AggSlot> aggs_;
  /// Owned results of generic (Value-boxed) calls whose static kind is
  /// string: the dst StrReg views into these.
  std::vector<Value> owned_;
  /// Scratch argument buffers for call sites.
  std::vector<NumericValue> num_args_;
  std::vector<Value> val_args_;
  bool bail_ = false;
  int bound_trials_ = 0;
};

/// An immutable compiled multi-root expression program. See file comment.
class ExprProgram {
 public:
  /// Compiles `roots` against a shared register file (common subexpressions
  /// across roots are evaluated once). `column_lineage` mirrors
  /// EvalContext::column_lineage: a non-null entry makes that column
  /// trial-variant, evaluated through its (compiled) lineage in trial mode.
  /// Returns nullptr if any root contains a construct the compiler does not
  /// cover bit-identically — the caller keeps the interpreter.
  static std::unique_ptr<const ExprProgram> Compile(
      const std::vector<ExprPtr>& roots, const FunctionRegistry* functions,
      const std::vector<ExprPtr>* column_lineage);

  ~ExprProgram();

  /// Sizes the register file and materializes literal constants.
  void InitState(ExprProgramState* state) const;

  /// Runs the prologue for `row`: trial-invariant subexpressions, plus one
  /// LookupTrials probe per AggLookup site covering trials [0, num_trials).
  /// Returns false (and leaves the state bailed) on a runtime type the
  /// program does not cover. `resolver` may be null only for programs with
  /// no AggLookup site.
  bool Bind(ExprProgramState* state, const Row& row,
            const AggLookupResolver* resolver, int num_trials) const;

  /// Runs the epilogue for one trial (trial = -1 selects the main,
  /// non-bootstrap evaluation, exactly like EvalContext::trial). Requires a
  /// successful Bind() of the same row, with trial < its num_trials.
  /// Returns false if the row bailed.
  bool EvalTrial(ExprProgramState* state, const Row& row, int trial) const;

  /// Batched per-trial evaluation of the engine's hot loop. For every trial
  /// t in [0, num_trials) with w[t] != 0: runs the epilogue, zeroes w[t] if
  /// root `pred_root` is not truthy (pass pred_root = -1 for no filter),
  /// otherwise stores roots [first_val_root, first_val_root + num_val_roots)
  /// into out_vals[t * num_val_roots + a]. Returns false on bail, in which
  /// case w/out_vals contents are unspecified and the caller must redo the
  /// row with the interpreter.
  bool EvalTrials(ExprProgramState* state, const Row& row, int num_trials,
                  int pred_root, int first_val_root, size_t num_val_roots,
                  double* w, Value* out_vals) const;

  /// Result of root `r` after Bind (invariant roots) / EvalTrial.
  bool RootTruthy(const ExprProgramState& state, size_t r) const;
  Value RootValue(const ExprProgramState& state, size_t r) const;

  size_t num_roots() const { return roots_.size(); }
  /// True if root `r` is fully trial-invariant (decided by the prologue).
  bool root_trial_invariant(size_t r) const;

  // Introspection (tests, docs, benchmarks).
  size_t prologue_size() const { return prologue_.size(); }
  size_t epilogue_size() const { return epilogue_.size(); }
  size_t num_agg_sites() const { return agg_sites_.size(); }
  size_t num_call_sites() const { return call_sites_.size(); }
  std::string ToString() const;

  /// True if root `r` lives in the string register file. The plan invariant
  /// prover (plan/plan_verifier.h) checks this against the plan's static
  /// output types.
  bool root_is_string(size_t r) const { return roots_[r].out.is_str; }

  /// Plan-facing view of one aggregate probe site, for cross-checking
  /// against the source block's schema without exposing register details.
  struct AggSiteView {
    int block_id = 0;
    /// Index into the source block's output schema (group keys first, then
    /// aggregates — AggregateRegistry::Lookup's column convention).
    int col = 0;
    size_t num_keys = 0;
  };
  AggSiteView agg_site_view(size_t i) const {
    return {agg_sites_[i].block_id, agg_sites_[i].col,
            agg_sites_[i].key_regs.size()};
  }

  /// Highest row column any kLoad*/kColLineage touches (-1 = no loads).
  int max_col() const { return max_col_; }

 private:
  friend class ExprProgramCompiler;
  /// The static bytecode verifier (exec/program_verifier.h) walks the raw
  /// instruction streams; tests corrupt them through the peer to prove the
  /// verifier rejects every mutation class.
  friend class ProgramVerifier;
  friend class ExprProgramTestPeer;

  enum class Op : uint8_t {
    kLoadNum,     // dst.num = row[aux]; bail on string
    kLoadStr,     // dst.str = row[aux]; bail on numeric
    kColLineage,  // dst.num = trial < 0 ? row[aux] : num[a] (compiled lineage)
    kNeg,         // dst.num = -num[a] (runtime-typed, like UnaryExpr)
    kNot,         // dst.num = 3VL NOT num[a]
    kArith,       // dst.num = num[a] <sub> num[b]; aux = int64-output flag
    kMod,         // dst.num = int64 modulo (EvalArith kMod semantics)
    kCmpNum,      // dst.num = num[a] <sub> num[b] as 0/1/NULL
    kCmpStr,      // dst.num = str[a] <sub> str[b] as 0/1/NULL
    kLogic,       // dst.num = 3VL AND/OR of num[a], num[b]
    kCallNum,     // dst.num = typed kernel of call_sites_[aux]
    kCallGeneric, // dst = boxed eval of call_sites_[aux]; bail on kind clash
    kProbeAgg,    // gather keys, Lookup + LookupTrials into aggs_[aux]
    kReadAggNum,  // dst.num = agg slot value for this trial; bail on string
    kReadAggStr,  // dst.str = agg slot value for this trial; bail on numeric
  };

  struct Insn {
    Op op;
    uint8_t sub = 0;  // BinaryOp / UnaryOp discriminant where applicable
    uint16_t dst = 0;
    uint16_t a = 0;
    uint16_t b = 0;
    uint16_t aux = 0;
  };

  /// A register operand: index + which file it lives in.
  struct Operand {
    uint16_t reg = 0;
    bool is_str = false;
  };

  struct CallSite {
    const ScalarFunction* fn = nullptr;
    std::vector<Operand> args;
    /// kCallGeneric with string static kind: index of the state-owned
    /// Value slot the dst view points into.
    uint16_t owned_slot = 0;
  };

  struct AggSite {
    int block_id = 0;
    int col = 0;
    std::vector<Operand> key_regs;
  };

  struct Root {
    Operand out;
    bool invariant = false;
  };

  ExprProgram() = default;

  bool RunSegment(const std::vector<Insn>& seg, ExprProgramState* st,
                  const Row& row, const AggLookupResolver* resolver,
                  int num_trials, int trial) const;

  std::vector<Insn> prologue_;
  std::vector<Insn> epilogue_;
  std::vector<CallSite> call_sites_;
  std::vector<AggSite> agg_sites_;
  std::vector<Root> roots_;
  /// Literal constants, materialized into fresh states by InitState.
  std::vector<std::pair<uint16_t, expr_prog::NumReg>> const_num_;
  /// String literals: (register, index into const_str_pool_).
  std::vector<std::pair<uint16_t, uint32_t>> const_str_;
  std::vector<std::string> const_str_pool_;
  uint16_t num_regs_ = 0;
  uint16_t str_regs_ = 0;
  uint16_t owned_slots_ = 0;
  /// Highest row index any kLoad*/kColLineage touches; Bind fails fast on
  /// shorter rows.
  int max_col_ = -1;
  size_t max_call_args_ = 0;
};

}  // namespace iolap

#endif  // IOLAP_EXEC_EXPR_PROGRAM_H_
