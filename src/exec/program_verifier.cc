#include "exec/program_verifier.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace iolap {

namespace {

const char* kDefBeforeUse = "def-before-use";
const char* kRegisterKind = "register-kind";
const char* kNullTag = "null-tag";
const char* kAuxBounds = "aux-bounds";
const char* kTrialInvariance = "trial-invariance";
const char* kRegisterFile = "register-file";
const char* kOpcode = "opcode";

/// Where a register (or agg slot) got its single definition. Segments are
/// straight-line and SSA by construction, so one level per register is the
/// whole dataflow story.
enum class Def : uint8_t { kUndef = 0, kConst, kPrologue, kEpilogue };

}  // namespace

VerifyResult ProgramVerifier::Verify(const ExprProgram& p) {
  using Op = ExprProgram::Op;
  using Insn = ExprProgram::Insn;
  using Operand = ExprProgram::Operand;
  using BinOp = Expr::BinaryOp;

  VerifyResult res;
  // All checks funnel through fail(): first violation wins, walk stops.
  auto fail = [&res](const char* rule, const std::string& msg) {
    res.ok = false;
    res.rule = rule;
    res.message = msg;
    return false;
  };

  auto op_name = [](Op op) -> const char* {
    switch (op) {
      case Op::kLoadNum:
        return "load_num";
      case Op::kLoadStr:
        return "load_str";
      case Op::kColLineage:
        return "col_lineage";
      case Op::kNeg:
        return "neg";
      case Op::kNot:
        return "not";
      case Op::kArith:
        return "arith";
      case Op::kMod:
        return "mod";
      case Op::kCmpNum:
        return "cmp_num";
      case Op::kCmpStr:
        return "cmp_str";
      case Op::kLogic:
        return "logic";
      case Op::kCallNum:
        return "call_num";
      case Op::kCallGeneric:
        return "call_generic";
      case Op::kProbeAgg:
        return "probe_agg";
      case Op::kReadAggNum:
        return "read_agg_num";
      case Op::kReadAggStr:
        return "read_agg_str";
    }
    return "invalid";
  };

  // Abstract state: one definition level per register / agg slot, plus the
  // exactness maxima re-derived from the instruction streams.
  std::vector<Def> num_def(p.num_regs_, Def::kUndef);
  std::vector<Def> str_def(p.str_regs_, Def::kUndef);
  std::vector<Def> agg_def(p.agg_sites_.size(), Def::kUndef);
  // Which string-kind generic call site claims each owned slot; two sites
  // sharing a slot would alias their owned Values (a later call frees the
  // string an earlier dst register still views).
  std::vector<int> owned_owner(p.owned_slots_, -1);
  int max_col_seen = -1;
  size_t max_args_seen = 0;

  // ---------------------------------------------------------- const pools
  for (const auto& [reg, value] : p.const_num_) {
    if (reg >= p.num_regs_) {
      return fail(kAuxBounds, "numeric constant register n" +
                                  std::to_string(reg) + " >= num_regs_ " +
                                  std::to_string(p.num_regs_)),
             res;
    }
    if (num_def[reg] != Def::kUndef) {
      return fail(kDefBeforeUse, "numeric constant register n" +
                                     std::to_string(reg) + " defined twice"),
             res;
    }
    if (value.tag == ValueType::kString) {
      return fail(kNullTag, "numeric constant n" + std::to_string(reg) +
                                " carries a string tag"),
             res;
    }
    if (value.tag == ValueType::kInt64 &&
        value.f != static_cast<double>(value.i)) {
      return fail(kNullTag,
                  "int constant n" + std::to_string(reg) +
                      " violates the NumReg invariant f == double(i)"),
             res;
    }
    num_def[reg] = Def::kConst;
  }
  for (const auto& [reg, pool_idx] : p.const_str_) {
    if (reg >= p.str_regs_) {
      return fail(kAuxBounds, "string constant register s" +
                                  std::to_string(reg) + " >= str_regs_ " +
                                  std::to_string(p.str_regs_)),
             res;
    }
    if (pool_idx >= p.const_str_pool_.size()) {
      return fail(kAuxBounds, "string constant s" + std::to_string(reg) +
                                  " points past the literal pool"),
             res;
    }
    if (str_def[reg] != Def::kUndef) {
      return fail(kDefBeforeUse, "string constant register s" +
                                     std::to_string(reg) + " defined twice"),
             res;
    }
    str_def[reg] = Def::kConst;
  }

  // ------------------------------------------------------ segment walkers
  // `at` names the instruction under scrutiny in every diagnostic.
  std::string at;
  auto use_num = [&](uint16_t reg) {
    if (reg >= p.num_regs_) {
      return fail(kAuxBounds, at + ": reads n" + std::to_string(reg) +
                                  " >= num_regs_ " +
                                  std::to_string(p.num_regs_));
    }
    if (num_def[reg] == Def::kUndef) {
      return fail(kDefBeforeUse,
                  at + ": reads n" + std::to_string(reg) + " before any def");
    }
    return true;
  };
  auto use_str = [&](uint16_t reg) {
    if (reg >= p.str_regs_) {
      return fail(kAuxBounds, at + ": reads s" + std::to_string(reg) +
                                  " >= str_regs_ " +
                                  std::to_string(p.str_regs_));
    }
    if (str_def[reg] == Def::kUndef) {
      return fail(kDefBeforeUse,
                  at + ": reads s" + std::to_string(reg) + " before any def");
    }
    return true;
  };
  auto def_num = [&](uint16_t reg, Def level) {
    if (reg >= p.num_regs_) {
      return fail(kAuxBounds, at + ": writes n" + std::to_string(reg) +
                                  " >= num_regs_ " +
                                  std::to_string(p.num_regs_));
    }
    if (num_def[reg] != Def::kUndef) {
      return fail(kDefBeforeUse, at + ": second write to n" +
                                     std::to_string(reg) +
                                     " (programs are single-assignment)");
    }
    num_def[reg] = level;
    return true;
  };
  auto def_str = [&](uint16_t reg, Def level) {
    if (reg >= p.str_regs_) {
      return fail(kAuxBounds, at + ": writes s" + std::to_string(reg) +
                                  " >= str_regs_ " +
                                  std::to_string(p.str_regs_));
    }
    if (str_def[reg] != Def::kUndef) {
      return fail(kDefBeforeUse, at + ": second write to s" +
                                     std::to_string(reg) +
                                     " (programs are single-assignment)");
    }
    str_def[reg] = level;
    return true;
  };
  auto use_row_col = [&](uint16_t col) {
    if (static_cast<int>(col) > p.max_col_) {
      return fail(kAuxBounds, at + ": loads row column " +
                                  std::to_string(col) +
                                  " beyond declared max_col_ " +
                                  std::to_string(p.max_col_));
    }
    max_col_seen = std::max(max_col_seen, static_cast<int>(col));
    return true;
  };
  auto is_cmp_sub = [](uint8_t sub) {
    const auto op = static_cast<BinOp>(sub);
    return op == BinOp::kEq || op == BinOp::kNe || op == BinOp::kLt ||
           op == BinOp::kLe || op == BinOp::kGt || op == BinOp::kGe;
  };

  auto walk = [&](const std::vector<Insn>& seg, Def level,
                  const char* seg_name) {
    for (size_t i = 0; i < seg.size(); ++i) {
      const Insn& insn = seg[i];
      if (static_cast<uint8_t>(insn.op) >
          static_cast<uint8_t>(Op::kReadAggStr)) {
        return fail(kOpcode,
                    std::string(seg_name) + "[" + std::to_string(i) +
                        "]: invalid opcode byte " +
                        std::to_string(static_cast<uint8_t>(insn.op)));
      }
      at = std::string(seg_name) + "[" + std::to_string(i) + "] " +
           op_name(insn.op);
      switch (insn.op) {
        case Op::kLoadNum:
          if (!use_row_col(insn.aux)) return false;
          if (!def_num(insn.dst, level)) return false;
          break;
        case Op::kLoadStr:
          if (!use_row_col(insn.aux)) return false;
          if (!def_str(insn.dst, level)) return false;
          break;
        case Op::kColLineage:
          // Lineage columns are trial-variant by definition: hoisting one
          // into the prologue would freeze every trial to the row value.
          if (level != Def::kEpilogue) {
            return fail(kTrialInvariance,
                        at + ": col_lineage in the prologue");
          }
          if (!use_row_col(insn.aux)) return false;
          if (!use_num(insn.a)) return false;
          if (!def_num(insn.dst, level)) return false;
          break;
        case Op::kNeg:
        case Op::kNot:
          if (!use_num(insn.a)) return false;
          if (!def_num(insn.dst, level)) return false;
          break;
        case Op::kArith: {
          const auto sub = static_cast<BinOp>(insn.sub);
          if (sub != BinOp::kAdd && sub != BinOp::kSub && sub != BinOp::kMul &&
              sub != BinOp::kDiv) {
            return fail(kNullTag, at + ": arithmetic discriminant " +
                                      std::to_string(insn.sub) +
                                      " is not one of +,-,*,/");
          }
          if (insn.aux > 1) {
            return fail(kNullTag, at + ": int-output flag " +
                                      std::to_string(insn.aux) +
                                      " is not 0/1");
          }
          if (!use_num(insn.a) || !use_num(insn.b)) return false;
          if (!def_num(insn.dst, level)) return false;
          break;
        }
        case Op::kMod:
          if (!use_num(insn.a) || !use_num(insn.b)) return false;
          if (!def_num(insn.dst, level)) return false;
          break;
        case Op::kCmpNum:
          if (!is_cmp_sub(insn.sub)) {
            return fail(kNullTag, at + ": comparison discriminant " +
                                      std::to_string(insn.sub) +
                                      " is not a comparison");
          }
          if (!use_num(insn.a) || !use_num(insn.b)) return false;
          if (!def_num(insn.dst, level)) return false;
          break;
        case Op::kCmpStr:
          if (!is_cmp_sub(insn.sub)) {
            return fail(kNullTag, at + ": comparison discriminant " +
                                      std::to_string(insn.sub) +
                                      " is not a comparison");
          }
          if (!use_str(insn.a) || !use_str(insn.b)) return false;
          if (!def_num(insn.dst, level)) return false;
          break;
        case Op::kLogic: {
          const auto sub = static_cast<BinOp>(insn.sub);
          if (sub != BinOp::kAnd && sub != BinOp::kOr) {
            return fail(kNullTag, at + ": 3VL discriminant " +
                                      std::to_string(insn.sub) +
                                      " is not AND/OR");
          }
          if (!use_num(insn.a) || !use_num(insn.b)) return false;
          if (!def_num(insn.dst, level)) return false;
          break;
        }
        case Op::kCallNum: {
          if (insn.aux >= p.call_sites_.size()) {
            return fail(kAuxBounds, at + ": call site " +
                                        std::to_string(insn.aux) +
                                        " out of bounds");
          }
          const auto& site = p.call_sites_[insn.aux];
          if (site.fn == nullptr || !site.fn->numeric_kernel) {
            return fail(kRegisterKind,
                        at + ": call site " + std::to_string(insn.aux) +
                            " has no numeric kernel");
          }
          if (site.args.size() > p.max_call_args_) {
            return fail(kAuxBounds,
                        at + ": " + std::to_string(site.args.size()) +
                            " args overflow the num_args_ scratch (" +
                            std::to_string(p.max_call_args_) + ")");
          }
          for (const Operand& arg : site.args) {
            if (arg.is_str) {
              return fail(kRegisterKind,
                          at + ": string argument s" +
                              std::to_string(arg.reg) +
                              " into a numeric kernel");
            }
            if (!use_num(arg.reg)) return false;
          }
          max_args_seen = std::max(max_args_seen, site.args.size());
          if (!def_num(insn.dst, level)) return false;
          break;
        }
        case Op::kCallGeneric: {
          if (insn.aux >= p.call_sites_.size()) {
            return fail(kAuxBounds, at + ": call site " +
                                        std::to_string(insn.aux) +
                                        " out of bounds");
          }
          const auto& site = p.call_sites_[insn.aux];
          if (site.fn == nullptr || !site.fn->eval) {
            return fail(kRegisterKind, at + ": call site " +
                                           std::to_string(insn.aux) +
                                           " has no implementation");
          }
          if (insn.sub > 1) {
            return fail(kRegisterKind, at + ": static-kind discriminant " +
                                           std::to_string(insn.sub) +
                                           " is not 0/1");
          }
          if (site.args.size() > p.max_call_args_) {
            return fail(kAuxBounds,
                        at + ": " + std::to_string(site.args.size()) +
                            " args exceed max_call_args_ (" +
                            std::to_string(p.max_call_args_) + ")");
          }
          for (const Operand& arg : site.args) {
            if (arg.is_str ? !use_str(arg.reg) : !use_num(arg.reg)) {
              return false;
            }
          }
          max_args_seen = std::max(max_args_seen, site.args.size());
          if (insn.sub != 0) {
            if (site.owned_slot >= p.owned_slots_) {
              return fail(kAuxBounds, at + ": owned_slot " +
                                          std::to_string(site.owned_slot) +
                                          " >= owned_slots_ " +
                                          std::to_string(p.owned_slots_));
            }
            int& owner = owned_owner[site.owned_slot];
            if (owner >= 0 && owner != static_cast<int>(insn.aux)) {
              return fail(kRegisterFile,
                          at + ": owned slot " +
                              std::to_string(site.owned_slot) +
                              " shared by call sites " +
                              std::to_string(owner) + " and " +
                              std::to_string(insn.aux) +
                              " (aliased string storage)");
            }
            owner = static_cast<int>(insn.aux);
            if (!def_str(insn.dst, level)) return false;
          } else {
            if (!def_num(insn.dst, level)) return false;
          }
          break;
        }
        case Op::kProbeAgg: {
          // The epilogue runs with resolver == nullptr; a probe there is a
          // guaranteed crash, and per-trial probing would break the one-
          // batched-lookup contract anyway.
          if (level != Def::kPrologue) {
            return fail(kTrialInvariance, at + ": probe outside the prologue");
          }
          if (insn.aux >= p.agg_sites_.size()) {
            return fail(kAuxBounds, at + ": agg site " +
                                        std::to_string(insn.aux) +
                                        " out of bounds");
          }
          if (agg_def[insn.aux] != Def::kUndef) {
            return fail(kDefBeforeUse, at + ": agg site " +
                                           std::to_string(insn.aux) +
                                           " probed twice");
          }
          for (const Operand& k : p.agg_sites_[insn.aux].key_regs) {
            // Key liveness at probe time: every key register must already
            // hold this row's value when the single batched probe fires.
            if (k.is_str ? !use_str(k.reg) : !use_num(k.reg)) return false;
          }
          agg_def[insn.aux] = level;
          break;
        }
        case Op::kReadAggNum:
        case Op::kReadAggStr: {
          // Reads select the per-trial replica: in the prologue they would
          // freeze trial -1's value for every trial.
          if (level != Def::kEpilogue) {
            return fail(kTrialInvariance,
                        at + ": per-trial read in the prologue");
          }
          if (insn.aux >= p.agg_sites_.size()) {
            return fail(kAuxBounds, at + ": agg site " +
                                        std::to_string(insn.aux) +
                                        " out of bounds");
          }
          if (agg_def[insn.aux] == Def::kUndef) {
            return fail(kDefBeforeUse, at + ": reads agg site " +
                                           std::to_string(insn.aux) +
                                           " that no probe fills");
          }
          if (insn.op == Op::kReadAggNum) {
            if (!def_num(insn.dst, level)) return false;
          } else {
            if (!def_str(insn.dst, level)) return false;
          }
          break;
        }
      }
    }
    return true;
  };

  if (!walk(p.prologue_, Def::kPrologue, "prologue")) return res;
  if (!walk(p.epilogue_, Def::kEpilogue, "epilogue")) return res;

  // ----------------------------------------------------------------- roots
  for (size_t r = 0; r < p.roots_.size(); ++r) {
    const auto& root = p.roots_[r];
    at = "root[" + std::to_string(r) + "]";
    const Def def = root.out.is_str
                        ? (root.out.reg < p.str_regs_ ? str_def[root.out.reg]
                                                      : Def::kUndef)
                        : (root.out.reg < p.num_regs_ ? num_def[root.out.reg]
                                                      : Def::kUndef);
    if (root.out.is_str ? root.out.reg >= p.str_regs_
                        : root.out.reg >= p.num_regs_) {
      return fail(kAuxBounds, at + ": register " +
                                  std::to_string(root.out.reg) +
                                  " out of bounds"),
             res;
    }
    if (def == Def::kUndef) {
      return fail(kDefBeforeUse, at + ": register never defined"), res;
    }
    // Rule (d): an invariant root is read after Bind() alone, before any
    // epilogue runs — and single-assignment means a prologue def is the
    // value for every trial. Transitive prologue-only dependence follows
    // from def-before-use inside the prologue walk.
    if (root.invariant && def == Def::kEpilogue) {
      return fail(kTrialInvariance,
                  at + ": marked invariant but defined in the epilogue"),
             res;
    }
  }

  // ----------------------------------------- register-file exactness (e)
  for (uint16_t i = 0; i < p.num_regs_; ++i) {
    if (num_def[i] == Def::kUndef) {
      return fail(kRegisterFile, "num_regs_ claims " +
                                     std::to_string(p.num_regs_) + " but n" +
                                     std::to_string(i) + " is never defined"),
             res;
    }
  }
  for (uint16_t i = 0; i < p.str_regs_; ++i) {
    if (str_def[i] == Def::kUndef) {
      return fail(kRegisterFile, "str_regs_ claims " +
                                     std::to_string(p.str_regs_) + " but s" +
                                     std::to_string(i) + " is never defined"),
             res;
    }
  }
  for (size_t i = 0; i < p.agg_sites_.size(); ++i) {
    if (agg_def[i] == Def::kUndef) {
      return fail(kRegisterFile,
                  "agg site " + std::to_string(i) + " is never probed"),
             res;
    }
  }
  for (uint16_t i = 0; i < p.owned_slots_; ++i) {
    if (owned_owner[i] < 0) {
      return fail(kRegisterFile, "owned_slots_ claims " +
                                     std::to_string(p.owned_slots_) +
                                     " but slot " + std::to_string(i) +
                                     " has no owning call site"),
             res;
    }
  }
  if (max_col_seen != p.max_col_) {
    return fail(kRegisterFile,
                "max_col_ claims " + std::to_string(p.max_col_) +
                    " but the highest load touches column " +
                    std::to_string(max_col_seen)),
           res;
  }
  if (max_args_seen != p.max_call_args_) {
    return fail(kRegisterFile,
                "max_call_args_ claims " + std::to_string(p.max_call_args_) +
                    " but the widest call passes " +
                    std::to_string(max_args_seen)),
           res;
  }

  return res;
}

std::unique_ptr<const ExprProgram> CompileVerified(
    const std::vector<ExprPtr>& roots, const FunctionRegistry* functions,
    const std::vector<ExprPtr>* column_lineage, ProgramVerifierStats* stats) {
  auto program = ExprProgram::Compile(roots, functions, column_lineage);
  if (program == nullptr) {
    // The compiler kept the interpreter on its own — not a verifier event.
    if (stats != nullptr) ++stats->refused;
    return nullptr;
  }
  if (stats != nullptr) ++stats->compiled;
  const VerifyResult vr = ProgramVerifier::Verify(*program);
  if (!vr.ok) {
    if (stats != nullptr) stats->RecordRejection(vr.rule, vr.message);
    return nullptr;
  }
  if (stats != nullptr) ++stats->verified;
  return program;
}

}  // namespace iolap
