#include "exec/operators.h"

namespace iolap {

void InputCache::Append(ExecRow row) {
  byte_size_ += row.ByteSize();
  Row key = KeyOf(row);
  index_[std::move(key)].push_back(static_cast<uint32_t>(rows_.size()));
  rows_.push_back(std::move(row));
}

const std::vector<uint32_t>& InputCache::Matches(const Row& key) const {
  static const std::vector<uint32_t> kEmpty;
  auto it = index_.find(key);
  return it == index_.end() ? kEmpty : it->second;
}

void InputCache::TruncateTo(size_t watermark) {
  while (rows_.size() > watermark) {
    const ExecRow& row = rows_.back();
    byte_size_ -= row.ByteSize();
    auto it = index_.find(KeyOf(row));
    // Positions are appended in order, so the last position of this key is
    // the row being dropped.
    it->second.pop_back();
    if (it->second.empty()) index_.erase(it);
    rows_.pop_back();
  }
}

Row InputCache::KeyOf(const ExecRow& row) const {
  Row key;
  key.reserve(key_cols_.size());
  for (int c : key_cols_) key.push_back(row.values[c]);
  return key;
}

JoinStep::JoinStep(std::vector<int> prefix_key_cols,
                   std::vector<int> input_key_cols, bool input_grows,
                   bool /*prefix_grows*/)
    : prefix_key_cols_(prefix_key_cols),
      input_cache_(std::move(input_key_cols)),
      prefix_cache_(std::move(prefix_key_cols)),
      keep_prefix_(input_grows) {}

Row JoinStep::PrefixKey(const ExecRow& row) const {
  Row key;
  key.reserve(prefix_key_cols_.size());
  for (int c : prefix_key_cols_) key.push_back(row.values[c]);
  return key;
}

void JoinStep::ProcessBatch(const RowBatch& prefix_delta,
                            const RowBatch& input_delta, RowBatch* out) {
  // (1) P_old ⋈ ΔI — before the prefix delta is folded into the cache.
  if (keep_prefix_) {
    for (const ExecRow& input_row : input_delta) {
      // The input row's join-key values, probed against the prefix cache
      // (both sides index the same key values).
      const Row key = input_cache_.KeyOf(input_row);
      for (uint32_t pos : prefix_cache_.Matches(key)) {
        out->push_back(ConcatRows(prefix_cache_.row(pos), input_row));
      }
    }
  }
  // (2) Fold ΔI into the input cache, then ΔP ⋈ I_new (covers ΔP ⋈ I_old
  // and ΔP ⋈ ΔI in one probe).
  for (const ExecRow& input_row : input_delta) {
    input_cache_.Append(input_row);
  }
  for (const ExecRow& prefix_row : prefix_delta) {
    const Row key = PrefixKey(prefix_row);
    for (uint32_t pos : input_cache_.Matches(key)) {
      out->push_back(ConcatRows(prefix_row, input_cache_.row(pos)));
    }
  }
  // (3) Remember the prefix delta for future ΔI arrivals.
  if (keep_prefix_) {
    for (const ExecRow& prefix_row : prefix_delta) {
      prefix_cache_.Append(prefix_row);
    }
  }
}

size_t JoinStep::ProbeCount(const Row& prefix_key) const {
  return input_cache_.Matches(prefix_key).size();
}

JoinStep::Watermark JoinStep::watermark() const {
  return Watermark{input_cache_.watermark(), prefix_cache_.watermark()};
}

void JoinStep::TruncateTo(const Watermark& mark) {
  input_cache_.TruncateTo(mark.input);
  prefix_cache_.TruncateTo(mark.prefix);
}

size_t JoinStep::StateBytes() const {
  return input_cache_.ByteSize() +
         (keep_prefix_ ? prefix_cache_.ByteSize() : 0);
}

}  // namespace iolap
