#include "exec/hash_aggregate.h"

namespace iolap {

GroupedAggregateState::GroupCells& GroupedAggregateState::GetOrCreate(
    const Row& key, int batch, bool* created) {
  auto [it, inserted] = groups_.try_emplace(key);
  if (inserted) {
    it->second.first_batch = batch;
    it->second.aggs.reserve(specs_->size());
    for (const AggSpec& spec : *specs_) {
      it->second.aggs.emplace_back(*spec.fn, num_trials_);
    }
  }
  if (created != nullptr) *created = inserted;
  return it->second;
}

GroupedAggregateState::GroupCells& GroupedAggregateState::GetOrCreate(
    const Row& key, uint64_t hash, int batch, bool* created) {
  auto it = groups_.find(HashedRowRef{&key, hash});
  if (it != groups_.end()) {
    if (created != nullptr) *created = false;
    return it->second;
  }
  return GetOrCreate(key, batch, created);
}

const GroupedAggregateState::GroupCells* GroupedAggregateState::Find(
    const Row& key) const {
  auto it = groups_.find(key);
  return it == groups_.end() ? nullptr : &it->second;
}

const GroupedAggregateState::GroupCells* GroupedAggregateState::Find(
    const Row& key, uint64_t hash) const {
  auto it = groups_.find(HashedRowRef{&key, hash});
  return it == groups_.end() ? nullptr : &it->second;
}

GroupedAggregateState GroupedAggregateState::Clone() const {
  GroupedAggregateState copy(specs_, num_trials_);
  copy.groups_.reserve(groups_.size());
  for (const auto& [key, cells] : groups_) {
    GroupCells cloned;
    cloned.first_batch = cells.first_batch;
    cloned.aggs.reserve(cells.aggs.size());
    for (const TrialAccumulatorSet& acc : cells.aggs) {
      cloned.aggs.push_back(acc.Clone());
    }
    copy.groups_.emplace(key, std::move(cloned));
  }
  return copy;
}

void GroupedAggregateState::DropGroupsAfter(int batch) {
  for (auto it = groups_.begin(); it != groups_.end();) {
    if (it->second.first_batch > batch) {
      it = groups_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t GroupedAggregateState::ByteSize() const {
  size_t total = 0;
  for (const auto& [key, cells] : groups_) {
    total += RowByteSize(key) + sizeof(int);
    for (const TrialAccumulatorSet& acc : cells.aggs) {
      total += acc.ByteSize();
    }
  }
  return total;
}

}  // namespace iolap
