#include "exec/batch.h"

#include <cassert>

namespace iolap {

ExecRow ConcatRows(const ExecRow& left, const ExecRow& right) {
  ExecRow out;
  out.values.reserve(left.values.size() + right.values.size());
  out.values.insert(out.values.end(), left.values.begin(), left.values.end());
  out.values.insert(out.values.end(), right.values.begin(),
                    right.values.end());
  out.weight = left.weight * right.weight;
  assert(!(left.FromStream() && right.FromStream()) &&
         "at most one relation may be streamed");
  out.stream_uid = left.FromStream() ? left.stream_uid : right.stream_uid;
  return out;
}

size_t BatchByteSize(const RowBatch& batch) {
  size_t total = 0;
  for (const ExecRow& row : batch) total += row.ByteSize();
  return total;
}

}  // namespace iolap
