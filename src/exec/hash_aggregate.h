#ifndef IOLAP_EXEC_HASH_AGGREGATE_H_
#define IOLAP_EXEC_HASH_AGGREGATE_H_

#include <unordered_map>
#include <vector>

#include "bootstrap/trial_accumulator.h"
#include "core/value.h"
#include "plan/logical_plan.h"

namespace iolap {

/// The hash-grouped sketch state of an AGGREGATE operator (§4.2): one
/// TrialAccumulatorSet per (group, aggregate). Two instances exist per
/// aggregate block in the delta engine — the persistent sketch fed only by
/// near-deterministic tuples, and a per-batch scratch instance holding the
/// revocable contribution of the non-deterministic set.
class GroupedAggregateState {
 public:
  struct GroupCells {
    std::vector<TrialAccumulatorSet> aggs;
    /// Batch in which the group first appeared (for failure-recovery
    /// rollbacks and registry bookkeeping).
    int first_batch = 0;
    /// Batch in which the group last received a contribution. Publication
    /// re-materializes trial replicas only for touched groups.
    int last_touched = -1;
  };

  using GroupMap = std::unordered_map<Row, GroupCells, RowHash, RowEq>;

  /// Default instance usable only as an assignment target (checkpoints).
  GroupedAggregateState() = default;

  GroupedAggregateState(const std::vector<AggSpec>* specs, int num_trials)
      : specs_(specs), num_trials_(num_trials) {}

  /// Returns (creating if needed) the cells for `key`. `created` (optional)
  /// reports whether the group is new.
  GroupCells& GetOrCreate(const Row& key, int batch, bool* created = nullptr);

  /// Same, with a precomputed HashRow(key): probes via heterogeneous lookup
  /// so the key is not re-hashed. Only group *creation* (the rare path)
  /// re-hashes, because try_emplace cannot take a caller-supplied hash.
  GroupCells& GetOrCreate(const Row& key, uint64_t hash, int batch,
                          bool* created = nullptr);

  const GroupCells* Find(const Row& key) const;

  /// Find with a precomputed HashRow(key); never re-hashes.
  const GroupCells* Find(const Row& key, uint64_t hash) const;

  /// Pre-sizes the bucket array for `expected_new_groups` more groups.
  void Reserve(size_t expected_new_groups) {
    groups_.reserve(groups_.size() + expected_new_groups);
  }

  const GroupMap& groups() const { return groups_; }
  size_t num_groups() const { return groups_.size(); }

  void Clear() { groups_.clear(); }

  /// Deep copy, for per-batch checkpoints.
  GroupedAggregateState Clone() const;

  /// Drops groups created after `batch` (rollback). Accumulator contents of
  /// surviving groups are NOT rewound here; rollback restores them from a
  /// checkpoint clone instead.
  void DropGroupsAfter(int batch);

  size_t ByteSize() const;

 private:
  const std::vector<AggSpec>* specs_ = nullptr;
  int num_trials_ = 0;
  GroupMap groups_;
};

}  // namespace iolap

#endif  // IOLAP_EXEC_HASH_AGGREGATE_H_
