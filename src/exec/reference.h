#ifndef IOLAP_EXEC_REFERENCE_H_
#define IOLAP_EXEC_REFERENCE_H_

#include <vector>

#include "catalog/catalog.h"
#include "plan/logical_plan.h"

namespace iolap {

/// Direct, non-incremental evaluation of a plan: the ground truth
/// Q(D_i, m_i) that Theorem 1 says every iOLAP partial result must equal.
///
/// This is a deliberately independent implementation — nested-loop-ish
/// hash joins over fully materialized inputs, no delta states, no
/// bootstrap, no classification — used as the oracle in differential tests
/// and as the semantic specification of the engine.
///
/// `streamed_rows` supplies the accumulated sample D_i of the plan's
/// streamed relation (ignored when the plan streams nothing) and `scale`
/// the multiplicity m_i = |D| / |D_i|. Rows of non-streamed relations come
/// from the catalog. The result is sorted by leading columns, matching the
/// controller's presentation order.
Result<Table> EvaluateReference(const QueryPlan& plan, const Catalog& catalog,
                                const std::vector<Row>& streamed_rows,
                                double scale);

}  // namespace iolap

#endif  // IOLAP_EXEC_REFERENCE_H_
