#include "exec/reference.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "core/expr.h"

namespace iolap {

namespace {

// Resolver over fully computed upstream outputs: every lookup returns the
// exact value; trials mirror the main value; ranges are never consulted
// (the reference evaluator does no classification).
class ExactResolver final : public AggLookupResolver {
 public:
  void Set(int block, int num_keys, const Table& output) {
    Relation& rel = relations_[block];
    rel.num_keys = num_keys;
    for (const Row& row : output.rows()) {
      Row key(row.begin(), row.begin() + num_keys);
      rel.rows[std::move(key)] = row;
    }
  }

  Value Lookup(int block, int col, const Row& key) const override {
    auto rel_it = relations_.find(block);
    if (rel_it == relations_.end()) return Value::Null();
    auto it = rel_it->second.rows.find(key);
    if (it == rel_it->second.rows.end()) return Value::Null();
    return static_cast<size_t>(col) < it->second.size() ? it->second[col]
                                                        : Value::Null();
  }

  Value LookupTrial(int block, int col, const Row& key, int) const override {
    return Lookup(block, col, key);
  }

  Interval LookupRange(int block, int col, const Row& key) const override {
    const Value v = Lookup(block, col, key);
    if (v.is_numeric()) return Interval::Point(v.AsDouble());
    return Interval::Unbounded();
  }

 private:
  struct Relation {
    int num_keys = 0;
    std::unordered_map<Row, Row, RowHash, RowEq> rows;
  };
  std::map<int, Relation> relations_;
};

struct RefRow {
  Row values;
  bool from_stream = false;
};

}  // namespace

Result<Table> EvaluateReference(const QueryPlan& plan, const Catalog& catalog,
                                const std::vector<Row>& streamed_rows,
                                double scale) {
  ExactResolver resolver;
  EvalContext ctx;
  ctx.functions = plan.functions.get();
  ctx.resolver = &resolver;

  std::vector<Table> block_outputs(plan.blocks.size());

  for (const Block& block : plan.blocks) {
    // Materialize each input relation.
    std::vector<std::vector<RefRow>> inputs(block.inputs.size());
    bool scans_stream = false;
    for (size_t k = 0; k < block.inputs.size(); ++k) {
      const BlockInput& input = block.inputs[k];
      if (input.kind == BlockInput::Kind::kBaseTable) {
        if (input.streamed) {
          scans_stream = true;
          for (const Row& r : streamed_rows) {
            inputs[k].push_back(RefRow{r, true});
          }
        } else {
          IOLAP_ASSIGN_OR_RETURN(const TableEntry* entry,
                                 catalog.Find(input.table_name));
          for (const Row& r : entry->table->rows()) {
            inputs[k].push_back(RefRow{r, false});
          }
        }
      } else {
        for (const Row& r : block_outputs[input.source_block].rows()) {
          inputs[k].push_back(RefRow{r, false});
        }
      }
    }

    // Left-deep hash joins.
    std::vector<RefRow> joined = std::move(inputs[0]);
    for (size_t k = 1; k < block.inputs.size(); ++k) {
      const BlockInput& input = block.inputs[k];
      std::unordered_map<Row, std::vector<const RefRow*>, RowHash, RowEq> index;
      for (const RefRow& row : inputs[k]) {
        Row key;
        key.reserve(input.input_key_cols.size());
        for (int c : input.input_key_cols) key.push_back(row.values[c]);
        index[std::move(key)].push_back(&row);
      }
      std::vector<RefRow> next;
      for (const RefRow& left : joined) {
        Row key;
        key.reserve(input.prefix_key_cols.size());
        for (int c : input.prefix_key_cols) key.push_back(left.values[c]);
        auto it = index.find(key);
        if (it == index.end()) continue;
        for (const RefRow* right : it->second) {
          RefRow merged;
          merged.values = left.values;
          merged.values.insert(merged.values.end(), right->values.begin(),
                               right->values.end());
          merged.from_stream = left.from_stream || right->from_stream;
          next.push_back(std::move(merged));
        }
      }
      joined = std::move(next);
    }

    // Filter.
    if (block.filter != nullptr) {
      std::vector<RefRow> kept;
      for (RefRow& row : joined) {
        if (block.filter->Eval(row.values, ctx).IsTruthy()) {
          kept.push_back(std::move(row));
        }
      }
      joined = std::move(kept);
    }

    Table output(block.output_schema);
    if (block.has_aggregate()) {
      const double effective_scale = scans_stream ? scale : 1.0;
      std::map<Row, std::vector<std::unique_ptr<AggAccumulator>>> groups;
      for (const RefRow& row : joined) {
        Row key;
        key.reserve(block.group_by.size());
        for (const ExprPtr& g : block.group_by) {
          key.push_back(g->Eval(row.values, ctx));
        }
        auto [it, inserted] = groups.try_emplace(std::move(key));
        if (inserted) {
          for (const AggSpec& spec : block.aggs) {
            it->second.push_back(spec.fn->NewAccumulator());
          }
        }
        for (size_t a = 0; a < block.aggs.size(); ++a) {
          it->second[a]->Add(block.aggs[a].arg->Eval(row.values, ctx), 1.0);
        }
      }
      for (const auto& [key, accs] : groups) {
        Row out = key;
        for (const auto& acc : accs) {
          out.push_back(acc->Result(effective_scale));
        }
        output.AddRow(std::move(out));
      }
    } else {
      for (const RefRow& row : joined) {
        Row out;
        out.reserve(block.projections.size());
        for (const ExprPtr& p : block.projections) {
          out.push_back(p->Eval(row.values, ctx));
        }
        output.AddRow(std::move(out));
      }
      std::sort(output.mutable_rows().begin(), output.mutable_rows().end(),
                [](const Row& a, const Row& b) {
                  const size_t n = std::min(a.size(), b.size());
                  for (size_t i = 0; i < n; ++i) {
                    const int c = a[i].Compare(b[i]);
                    if (c != 0) return c < 0;
                  }
                  return a.size() < b.size();
                });
    }
    block_outputs[block.id] = output;
    if (block.has_aggregate()) {
      resolver.Set(block.id, static_cast<int>(block.group_by.size()), output);
    }
  }
  return block_outputs.back();
}

}  // namespace iolap
