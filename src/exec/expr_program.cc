#include "exec/expr_program.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>

namespace iolap {

using expr_prog::AggSlot;
using expr_prog::NumReg;
using expr_prog::StrReg;

namespace {

constexpr int kMaxCompileDepth = 64;
constexpr int kMaxRegs = 0xFFFF;

bool IsComparisonOp(Expr::BinaryOp op) {
  switch (op) {
    case Expr::BinaryOp::kEq:
    case Expr::BinaryOp::kNe:
    case Expr::BinaryOp::kLt:
    case Expr::BinaryOp::kLe:
    case Expr::BinaryOp::kGt:
    case Expr::BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsLogicalOp(Expr::BinaryOp op) {
  return op == Expr::BinaryOp::kAnd || op == Expr::BinaryOp::kOr;
}

// Mirrors Value::IsTruthy over an unboxed register.
inline bool Truthy(const NumReg& r) {
  return r.tag == ValueType::kInt64
             ? r.i != 0
             : r.tag == ValueType::kDouble && r.f != 0.0;
}

inline NumReg NumRegOfInt(int64_t v) {
  return {static_cast<double>(v), v, ValueType::kInt64};
}

inline NumReg NumRegOfBool(bool v) { return NumRegOfInt(v ? 1 : 0); }

// Loads a Value into a numeric register. Returns false (register set to
// NULL) when the value is a string, i.e. outside the numeric universe.
inline bool NumRegFromValue(NumReg* d, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      *d = NumReg{};
      return true;
    case ValueType::kInt64:
      *d = NumRegOfInt(v.int64());
      return true;
    case ValueType::kDouble:
      d->f = v.dbl();
      d->i = 0;
      d->tag = ValueType::kDouble;
      return true;
    default:
      *d = NumReg{};
      return false;
  }
}

// Comparison outcome -> 0/1 register, mirroring EvalComparison's mapping of
// Value::Compare's sign.
inline NumReg CmpResult(Expr::BinaryOp op, int cmp) {
  bool result = false;
  switch (op) {
    case Expr::BinaryOp::kEq:
      result = cmp == 0;
      break;
    case Expr::BinaryOp::kNe:
      result = cmp != 0;
      break;
    case Expr::BinaryOp::kLt:
      result = cmp < 0;
      break;
    case Expr::BinaryOp::kLe:
      result = cmp <= 0;
      break;
    case Expr::BinaryOp::kGt:
      result = cmp > 0;
      break;
    case Expr::BinaryOp::kGe:
      result = cmp >= 0;
      break;
    default:
      break;
  }
  return NumRegOfBool(result);
}

}  // namespace

// ----------------------------------------------------------------- compiler

/// Builds one ExprProgram. Single-use; not thread-safe (programs are
/// compiled once per block at plan time).
class ExprProgramCompiler {
 public:
  ExprProgramCompiler(const FunctionRegistry* functions,
                      const std::vector<ExprPtr>* lineage)
      : functions_(functions),
        lineage_(lineage),
        prog_(new ExprProgram()) {}

  bool AddRoot(const ExprPtr& root) {
    if (root == nullptr) {
      failed_ = true;
      return false;
    }
    auto slot = CompileNode(*root, 0);
    if (!slot.has_value()) return false;
    prog_->roots_.push_back({slot->out, slot->invariant});
    return true;
  }

  std::unique_ptr<const ExprProgram> Finish() {
    if (failed_) return nullptr;
    prog_->num_regs_ = static_cast<uint16_t>(next_num_);
    prog_->str_regs_ = static_cast<uint16_t>(next_str_);
    prog_->owned_slots_ = static_cast<uint16_t>(next_owned_);
    return std::move(prog_);
  }

 private:
  using Operand = ExprProgram::Operand;
  using Insn = ExprProgram::Insn;
  using Op = ExprProgram::Op;

  struct Slot {
    Operand out;
    bool invariant = true;
  };
  using MaybeSlot = std::optional<Slot>;

  MaybeSlot Fail() {
    failed_ = true;
    return std::nullopt;
  }

  bool StaticallyString(const Expr& e) const {
    return e.output_type() == ValueType::kString;
  }

  int NewNum() {
    if (next_num_ >= kMaxRegs) {
      failed_ = true;
      return 0;
    }
    return next_num_++;
  }

  int NewStr() {
    if (next_str_ >= kMaxRegs) {
      failed_ = true;
      return 0;
    }
    return next_str_++;
  }

  void Emit(bool invariant, Insn insn) {
    (invariant ? prog_->prologue_ : prog_->epilogue_).push_back(insn);
  }

  // True if `e` is a compile-time constant: no row or aggregate dependence,
  // and every call resolves (so a one-shot interpreter evaluation is safe).
  bool Foldable(const Expr& e) const {
    switch (e.kind()) {
      case Expr::Kind::kLiteral:
        return true;
      case Expr::Kind::kColumnRef:
      case Expr::Kind::kAggLookup:
        return false;
      case Expr::Kind::kUnary:
        return Foldable(*static_cast<const UnaryExpr&>(e).operand());
      case Expr::Kind::kBinary: {
        const auto& bin = static_cast<const BinaryExpr&>(e);
        return Foldable(*bin.left()) && Foldable(*bin.right());
      }
      case Expr::Kind::kCall: {
        const auto& call = static_cast<const CallExpr&>(e);
        if (functions_ == nullptr) return false;
        auto fn = functions_->FindScalar(call.name());
        if (!fn.ok()) return false;
        if ((*fn)->arity >= 0 &&
            static_cast<size_t>((*fn)->arity) != call.args().size()) {
          return false;
        }
        for (const auto& arg : call.args()) {
          if (!Foldable(*arg)) return false;
        }
        return true;
      }
    }
    return false;
  }

  // True if `e` is a literal NULL (used to fold NULL-against-string
  // comparisons, which always yield NULL, instead of refusing them as a
  // register-kind mismatch).
  static bool IsNullLiteral(const Expr& e) {
    return e.kind() == Expr::Kind::kLiteral &&
           static_cast<const LiteralExpr&>(e).value().is_null();
  }

  MaybeSlot EmitLiteral(const Value& v) {
    if (v.type() == ValueType::kString) {
      auto it = str_literals_.find(v.str());
      if (it != str_literals_.end()) {
        return Slot{Operand{it->second, true}, true};
      }
      const int reg = NewStr();
      if (failed_) return std::nullopt;
      prog_->const_str_.push_back(
          {static_cast<uint16_t>(reg),
           static_cast<uint32_t>(prog_->const_str_pool_.size())});
      prog_->const_str_pool_.push_back(v.str());
      str_literals_.emplace(v.str(), static_cast<uint16_t>(reg));
      return Slot{Operand{static_cast<uint16_t>(reg), true}, true};
    }
    NumReg r;
    NumRegFromValue(&r, v);
    const auto key = std::make_pair(static_cast<int>(r.tag),
                                    r.tag == ValueType::kDouble
                                        ? BitsOf(r.f)
                                        : static_cast<uint64_t>(r.i));
    auto it = num_literals_.find(key);
    if (it != num_literals_.end()) {
      return Slot{Operand{it->second, false}, true};
    }
    const int reg = NewNum();
    if (failed_) return std::nullopt;
    prog_->const_num_.push_back({static_cast<uint16_t>(reg), r});
    num_literals_.emplace(key, static_cast<uint16_t>(reg));
    return Slot{Operand{static_cast<uint16_t>(reg), false}, true};
  }

  static uint64_t BitsOf(double d) {
    uint64_t bits;
    __builtin_memcpy(&bits, &d, sizeof(bits));
    return bits;
  }

  MaybeSlot CompileNode(const Expr& e, int depth) {
    if (failed_) return std::nullopt;
    if (depth > kMaxCompileDepth) return Fail();
    auto memo = memo_.find(&e);
    if (memo != memo_.end()) return memo->second;
    MaybeSlot slot = CompileNodeImpl(e, depth);
    if (slot.has_value()) memo_.emplace(&e, *slot);
    return slot;
  }

  MaybeSlot CompileNodeImpl(const Expr& e, int depth) {
    // Constant folding: row- and trial-independent subtrees evaluate once
    // at compile time through the interpreter (the oracle by definition).
    if (e.kind() != Expr::Kind::kLiteral && Foldable(e)) {
      EvalContext ctx;
      ctx.functions = functions_;
      return EmitLiteral(e.Eval(Row{}, ctx));
    }
    switch (e.kind()) {
      case Expr::Kind::kLiteral:
        return EmitLiteral(static_cast<const LiteralExpr&>(e).value());
      case Expr::Kind::kColumnRef:
        return CompileColumnRef(static_cast<const ColumnRefExpr&>(e), depth);
      case Expr::Kind::kUnary:
        return CompileUnary(static_cast<const UnaryExpr&>(e), depth);
      case Expr::Kind::kBinary:
        return CompileBinary(static_cast<const BinaryExpr&>(e), depth);
      case Expr::Kind::kCall:
        return CompileCall(static_cast<const CallExpr&>(e), depth);
      case Expr::Kind::kAggLookup:
        return CompileAggLookup(static_cast<const AggLookupExpr&>(e), depth);
    }
    return Fail();
  }

  MaybeSlot CompileColumnRef(const ColumnRefExpr& ref, int depth) {
    const ExprPtr* lineage = nullptr;
    if (lineage_ != nullptr &&
        static_cast<size_t>(ref.index()) < lineage_->size() &&
        (*lineage_)[ref.index()] != nullptr) {
      lineage = &(*lineage_)[ref.index()];
    }
    if (ref.index() > prog_->max_col_) prog_->max_col_ = ref.index();
    const uint16_t col = static_cast<uint16_t>(ref.index());
    if (lineage != nullptr) {
      // Uncertain column: in trial mode it re-derives through its lineage,
      // in main mode it reads the stored value — both runtime-typed, so
      // only numeric lineage compiles (string columns are never uncertain
      // in practice: lineage carries aggregate outputs).
      if (StaticallyString(ref)) return Fail();
      auto sub = CompileNode(**lineage, depth + 1);
      if (!sub.has_value()) return std::nullopt;
      if (sub->out.is_str) return Fail();
      const int dst = NewNum();
      if (failed_) return std::nullopt;
      Emit(/*invariant=*/false,
           {Op::kColLineage, 0, static_cast<uint16_t>(dst), sub->out.reg, 0,
            col});
      return Slot{Operand{static_cast<uint16_t>(dst), false}, false};
    }
    if (StaticallyString(ref)) {
      auto it = str_cols_.find(ref.index());
      if (it != str_cols_.end()) return Slot{Operand{it->second, true}, true};
      const int dst = NewStr();
      if (failed_) return std::nullopt;
      Emit(/*invariant=*/true,
           {Op::kLoadStr, 0, static_cast<uint16_t>(dst), 0, 0, col});
      str_cols_.emplace(ref.index(), static_cast<uint16_t>(dst));
      return Slot{Operand{static_cast<uint16_t>(dst), true}, true};
    }
    auto it = num_cols_.find(ref.index());
    if (it != num_cols_.end()) return Slot{Operand{it->second, false}, true};
    const int dst = NewNum();
    if (failed_) return std::nullopt;
    Emit(/*invariant=*/true,
         {Op::kLoadNum, 0, static_cast<uint16_t>(dst), 0, 0, col});
    num_cols_.emplace(ref.index(), static_cast<uint16_t>(dst));
    return Slot{Operand{static_cast<uint16_t>(dst), false}, true};
  }

  MaybeSlot CompileUnary(const UnaryExpr& unary, int depth) {
    if (StaticallyString(*unary.operand())) return Fail();
    auto sub = CompileNode(*unary.operand(), depth);
    if (!sub.has_value()) return std::nullopt;
    if (sub->out.is_str) return Fail();
    const int dst = NewNum();
    if (failed_) return std::nullopt;
    Emit(sub->invariant,
         {unary.op() == Expr::UnaryOp::kNeg ? Op::kNeg : Op::kNot, 0,
          static_cast<uint16_t>(dst), sub->out.reg, 0, 0});
    return Slot{Operand{static_cast<uint16_t>(dst), false}, sub->invariant};
  }

  MaybeSlot CompileBinary(const BinaryExpr& bin, int depth) {
    const Expr& l = *bin.left();
    const Expr& r = *bin.right();
    const bool ls = StaticallyString(l);
    const bool rs = StaticallyString(r);
    const bool cmp = IsComparisonOp(bin.op());
    if (cmp && ls != rs) {
      // string <op> NULL-literal always evaluates to NULL (the null check
      // precedes Value::Compare); anything else mixes register kinds.
      if (IsNullLiteral(ls ? r : l)) return EmitLiteral(Value::Null());
      return Fail();
    }
    if (!cmp && (ls || rs)) {
      // Arithmetic/logic over a statically-string operand: the binder never
      // produces this; don't guess at its semantics.
      return Fail();
    }
    auto lslot = CompileNode(l, depth);
    if (!lslot.has_value()) return std::nullopt;
    auto rslot = CompileNode(r, depth);
    if (!rslot.has_value()) return std::nullopt;
    if (cmp && lslot->out.is_str != rslot->out.is_str) {
      // The static kinds matched, so a slot-kind mismatch means one side is
      // a statically-string expression that constant-folded to NULL (e.g.
      // lower(NULL)), which lives in a numeric register: the comparison is
      // constant NULL, same as the null check in the interpreter.
      return EmitLiteral(Value::Null());
    }
    const bool invariant = lslot->invariant && rslot->invariant;
    const int dst = NewNum();
    if (failed_) return std::nullopt;
    Insn insn{Op::kArith, static_cast<uint8_t>(bin.op()),
              static_cast<uint16_t>(dst), lslot->out.reg, rslot->out.reg, 0};
    if (cmp) {
      insn.op = lslot->out.is_str ? Op::kCmpStr : Op::kCmpNum;
    } else if (IsLogicalOp(bin.op())) {
      insn.op = Op::kLogic;
    } else if (bin.op() == Expr::BinaryOp::kMod) {
      insn.op = Op::kMod;
    } else {
      insn.aux = bin.output_type() == ValueType::kInt64 ? 1 : 0;
    }
    Emit(invariant, insn);
    return Slot{Operand{static_cast<uint16_t>(dst), false}, invariant};
  }

  MaybeSlot CompileCall(const CallExpr& call, int depth) {
    if (functions_ == nullptr) return Fail();
    auto fn = functions_->FindScalar(call.name());
    if (!fn.ok()) return Fail();
    if ((*fn)->arity >= 0 &&
        static_cast<size_t>((*fn)->arity) != call.args().size()) {
      return Fail();
    }
    std::vector<Operand> args;
    args.reserve(call.args().size());
    bool invariant = true;
    bool all_numeric = true;
    for (const auto& arg : call.args()) {
      auto slot = CompileNode(*arg, depth);
      if (!slot.has_value()) return std::nullopt;
      args.push_back(slot->out);
      invariant = invariant && slot->invariant;
      all_numeric = all_numeric && !slot->out.is_str;
    }
    if (prog_->max_call_args_ < args.size()) {
      prog_->max_call_args_ = args.size();
    }
    const uint16_t site = static_cast<uint16_t>(prog_->call_sites_.size());
    if (all_numeric && (*fn)->numeric_kernel != nullptr) {
      const int dst = NewNum();
      if (failed_) return std::nullopt;
      prog_->call_sites_.push_back({*fn, std::move(args), 0});
      Emit(invariant,
           {Op::kCallNum, 0, static_cast<uint16_t>(dst), 0, 0, site});
      return Slot{Operand{static_cast<uint16_t>(dst), false}, invariant};
    }
    // Generic call site: box the arguments, call `eval`, unbox the result
    // into the register kind the static type promises (bail otherwise).
    const bool dst_str = StaticallyString(call);
    uint16_t owned = 0;
    if (dst_str) {
      owned = static_cast<uint16_t>(next_owned_++);
    }
    const int dst = dst_str ? NewStr() : NewNum();
    if (failed_) return std::nullopt;
    prog_->call_sites_.push_back({*fn, std::move(args), owned});
    Emit(invariant, {Op::kCallGeneric, static_cast<uint8_t>(dst_str),
                     static_cast<uint16_t>(dst), 0, 0, site});
    return Slot{Operand{static_cast<uint16_t>(dst), dst_str}, invariant};
  }

  MaybeSlot CompileAggLookup(const AggLookupExpr& lookup, int depth) {
    std::vector<Operand> keys;
    keys.reserve(lookup.key_exprs().size());
    for (const auto& key : lookup.key_exprs()) {
      auto slot = CompileNode(*key, depth);
      if (!slot.has_value()) return std::nullopt;
      // The hoisted probe evaluates keys once per row; a trial-variant key
      // (nested uncertainty) would need a probe per trial — keep the
      // interpreter for that exotic shape.
      if (!slot->invariant) return Fail();
      keys.push_back(slot->out);
    }
    const uint16_t site = static_cast<uint16_t>(prog_->agg_sites_.size());
    prog_->agg_sites_.push_back(
        {lookup.block_id(), lookup.agg_col(), std::move(keys)});
    Emit(/*invariant=*/true, {Op::kProbeAgg, 0, 0, 0, 0, site});
    const bool dst_str = StaticallyString(lookup);
    const int dst = dst_str ? NewStr() : NewNum();
    if (failed_) return std::nullopt;
    Emit(/*invariant=*/false,
         {dst_str ? Op::kReadAggStr : Op::kReadAggNum, 0,
          static_cast<uint16_t>(dst), 0, 0, site});
    return Slot{Operand{static_cast<uint16_t>(dst), dst_str}, false};
  }

  const FunctionRegistry* functions_;
  const std::vector<ExprPtr>* lineage_;
  std::unique_ptr<ExprProgram> prog_;
  bool failed_ = false;
  int next_num_ = 0;
  int next_str_ = 0;
  int next_owned_ = 0;
  // Common-subexpression reuse: by node identity (shared subtrees), by
  // column index, and by literal value.
  std::unordered_map<const Expr*, Slot> memo_;
  std::map<int, uint16_t> num_cols_;
  std::map<int, uint16_t> str_cols_;
  std::map<std::pair<int, uint64_t>, uint16_t> num_literals_;
  std::map<std::string, uint16_t> str_literals_;
};

std::unique_ptr<const ExprProgram> ExprProgram::Compile(
    const std::vector<ExprPtr>& roots, const FunctionRegistry* functions,
    const std::vector<ExprPtr>* column_lineage) {
  ExprProgramCompiler compiler(functions, column_lineage);
  for (const ExprPtr& root : roots) {
    if (!compiler.AddRoot(root)) return nullptr;
  }
  return compiler.Finish();
}

ExprProgram::~ExprProgram() = default;

// ------------------------------------------------------------------ runtime

void ExprProgram::InitState(ExprProgramState* st) const {
  st->num_.assign(num_regs_, NumReg{});
  st->str_.assign(str_regs_, StrReg{});
  st->keys_.assign(agg_sites_.size(), Row{});
  for (size_t i = 0; i < agg_sites_.size(); ++i) {
    st->keys_[i].reserve(agg_sites_[i].key_regs.size());
  }
  st->aggs_.assign(agg_sites_.size(), AggSlot{});
  // kCallGeneric trusts CallSite::owned_slot at run time (the hot loop does
  // not re-check it), so the owned pool must cover every slot any site
  // names, not just the compiler's owned_slots_ claim — a corrupted site
  // must never become an out-of-bounds write.
  size_t owned = owned_slots_;
  for (const CallSite& site : call_sites_) {
    owned = std::max(owned, static_cast<size_t>(site.owned_slot) + 1);
  }
  st->owned_.assign(owned, Value());
  st->num_args_.assign(max_call_args_, NumericValue{});
  st->val_args_.clear();
  st->val_args_.reserve(max_call_args_);
  for (const auto& [reg, value] : const_num_) st->num_[reg] = value;
  for (const auto& [reg, pool_idx] : const_str_) {
    st->str_[reg] = {const_str_pool_[pool_idx], false};
  }
  st->bail_ = false;
  st->bound_trials_ = 0;
}

namespace {

// Boxes a register back into a Value (root results, call arguments, agg
// keys). The inverse of the load path, so round-trips are bit-identical.
inline Value BoxNum(const NumReg& r) {
  switch (r.tag) {
    case ValueType::kInt64:
      return Value::Int64(r.i);
    case ValueType::kDouble:
      return Value::Double(r.f);
    default:
      return Value::Null();
  }
}

inline Value BoxStr(const StrReg& r) {
  if (r.null) return Value::Null();
  return Value::String(std::string(r.s));
}

}  // namespace

bool ExprProgram::RunSegment(const std::vector<Insn>& seg,
                             ExprProgramState* st, const Row& row,
                             const AggLookupResolver* resolver, int num_trials,
                             int trial) const {
  auto& num = st->num_;
  auto& str = st->str_;
  for (const Insn& insn : seg) {
    switch (insn.op) {
      case Op::kLoadNum: {
        if (!NumRegFromValue(&num[insn.dst], row[insn.aux])) st->bail_ = true;
        break;
      }
      case Op::kLoadStr: {
        const Value& v = row[insn.aux];
        StrReg& d = str[insn.dst];
        if (v.is_null()) {
          d = StrReg{};
        } else if (v.type() == ValueType::kString) {
          d.s = v.str();
          d.null = false;
        } else {
          d = StrReg{};
          st->bail_ = true;
        }
        break;
      }
      case Op::kColLineage: {
        if (trial < 0) {
          if (!NumRegFromValue(&num[insn.dst], row[insn.aux])) {
            st->bail_ = true;
          }
        } else {
          num[insn.dst] = num[insn.a];
        }
        break;
      }
      case Op::kNeg: {
        const NumReg s = num[insn.a];
        NumReg& d = num[insn.dst];
        if (s.tag == ValueType::kNull) {
          d = NumReg{};
        } else if (s.tag == ValueType::kInt64) {
          d = NumRegOfInt(-s.i);
        } else {
          d.f = -s.f;
          d.i = 0;
          d.tag = ValueType::kDouble;
        }
        break;
      }
      case Op::kNot: {
        const NumReg s = num[insn.a];
        num[insn.dst] =
            s.tag == ValueType::kNull ? NumReg{} : NumRegOfBool(!Truthy(s));
        break;
      }
      case Op::kArith: {
        const NumReg& l = num[insn.a];
        const NumReg& r = num[insn.b];
        NumReg& d = num[insn.dst];
        if (l.tag == ValueType::kNull || r.tag == ValueType::kNull) {
          d = NumReg{};
          break;
        }
        // Like EvalArith: all arithmetic runs in double (AsDouble == .f),
        // with the statically-int result truncated back.
        double result = 0.0;
        switch (static_cast<Expr::BinaryOp>(insn.sub)) {
          case Expr::BinaryOp::kAdd:
            result = l.f + r.f;
            break;
          case Expr::BinaryOp::kSub:
            result = l.f - r.f;
            break;
          case Expr::BinaryOp::kMul:
            result = l.f * r.f;
            break;
          case Expr::BinaryOp::kDiv:
            if (r.f == 0.0) {
              d = NumReg{};
              continue;
            }
            result = l.f / r.f;
            break;
          default:
            d = NumReg{};
            continue;
        }
        if (insn.aux != 0) {
          d = NumRegOfInt(static_cast<int64_t>(result));
        } else {
          d.f = result;
          d.i = 0;
          d.tag = ValueType::kDouble;
        }
        break;
      }
      case Op::kMod: {
        const NumReg& l = num[insn.a];
        const NumReg& r = num[insn.b];
        NumReg& d = num[insn.dst];
        if (l.tag == ValueType::kNull || r.tag == ValueType::kNull) {
          d = NumReg{};
          break;
        }
        const int64_t denom = static_cast<int64_t>(r.f);
        if (denom == 0) {
          d = NumReg{};
          break;
        }
        d = NumRegOfInt(static_cast<int64_t>(l.f) % denom);
        break;
      }
      case Op::kCmpNum: {
        const NumReg& l = num[insn.a];
        const NumReg& r = num[insn.b];
        NumReg& d = num[insn.dst];
        if (l.tag == ValueType::kNull || r.tag == ValueType::kNull) {
          d = NumReg{};
          break;
        }
        const int cmp = l.f < r.f ? -1 : l.f > r.f ? 1 : 0;
        d = CmpResult(static_cast<Expr::BinaryOp>(insn.sub), cmp);
        break;
      }
      case Op::kCmpStr: {
        const StrReg& l = str[insn.a];
        const StrReg& r = str[insn.b];
        NumReg& d = num[insn.dst];
        if (l.null || r.null) {
          d = NumReg{};
          break;
        }
        const int cmp = l.s.compare(r.s);
        d = CmpResult(static_cast<Expr::BinaryOp>(insn.sub), cmp);
        break;
      }
      case Op::kLogic: {
        const NumReg& l = num[insn.a];
        const NumReg& r = num[insn.b];
        NumReg& d = num[insn.dst];
        const bool ln = l.tag == ValueType::kNull;
        const bool rn = r.tag == ValueType::kNull;
        const bool lt = Truthy(l);
        const bool rt = Truthy(r);
        if (static_cast<Expr::BinaryOp>(insn.sub) == Expr::BinaryOp::kAnd) {
          if (!ln && !lt) {
            d = NumRegOfBool(false);
          } else if (!rn && !rt) {
            d = NumRegOfBool(false);
          } else if (ln || rn) {
            d = NumReg{};
          } else {
            d = NumRegOfBool(true);
          }
        } else {
          if (!ln && lt) {
            d = NumRegOfBool(true);
          } else if (!rn && rt) {
            d = NumRegOfBool(true);
          } else if (ln || rn) {
            d = NumReg{};
          } else {
            d = NumRegOfBool(false);
          }
        }
        break;
      }
      case Op::kCallNum: {
        const CallSite& site = call_sites_[insn.aux];
        for (size_t i = 0; i < site.args.size(); ++i) {
          const NumReg& r = num[site.args[i].reg];
          st->num_args_[i] = NumericValue{r.f, r.i, r.tag};
        }
        const NumericValue res =
            site.fn->numeric_kernel(st->num_args_.data(), site.args.size());
        num[insn.dst] = NumReg{res.f64, res.i64, res.tag};
        break;
      }
      case Op::kCallGeneric: {
        const CallSite& site = call_sites_[insn.aux];
        st->val_args_.clear();
        for (const Operand& arg : site.args) {
          st->val_args_.push_back(arg.is_str ? BoxStr(str[arg.reg])
                                             : BoxNum(num[arg.reg]));
        }
        Value res = site.fn->eval(st->val_args_);
        if (insn.sub != 0) {
          StrReg& d = str[insn.dst];
          if (res.is_null()) {
            d = StrReg{};
          } else if (res.type() == ValueType::kString) {
            Value& slot = st->owned_[site.owned_slot];
            slot = std::move(res);
            d.s = slot.str();
            d.null = false;
          } else {
            d = StrReg{};
            st->bail_ = true;
          }
        } else if (!NumRegFromValue(&num[insn.dst], res)) {
          st->bail_ = true;
        }
        break;
      }
      case Op::kProbeAgg: {
        assert(resolver != nullptr);
        const AggSite& site = agg_sites_[insn.aux];
        Row& key = st->keys_[insn.aux];
        key.clear();
        for (const Operand& k : site.key_regs) {
          key.push_back(k.is_str ? BoxStr(str[k.reg]) : BoxNum(num[k.reg]));
        }
        AggSlot& slot = st->aggs_[insn.aux];
        slot.main = resolver->Lookup(site.block_id, site.col, key);
        slot.trials.resize(static_cast<size_t>(num_trials));
        if (num_trials > 0) {
          resolver->LookupTrials(site.block_id, site.col, key, num_trials,
                                 slot.trials.data());
        }
        break;
      }
      case Op::kReadAggNum: {
        const AggSlot& slot = st->aggs_[insn.aux];
        const Value& v = trial < 0 ? slot.main : slot.trials[trial];
        if (!NumRegFromValue(&num[insn.dst], v)) st->bail_ = true;
        break;
      }
      case Op::kReadAggStr: {
        const AggSlot& slot = st->aggs_[insn.aux];
        const Value& v = trial < 0 ? slot.main : slot.trials[trial];
        StrReg& d = str[insn.dst];
        if (v.is_null()) {
          d = StrReg{};
        } else if (v.type() == ValueType::kString) {
          d.s = v.str();
          d.null = false;
        } else {
          d = StrReg{};
          st->bail_ = true;
        }
        break;
      }
    }
  }
  return !st->bail_;
}

bool ExprProgram::Bind(ExprProgramState* st, const Row& row,
                       const AggLookupResolver* resolver,
                       int num_trials) const {
  st->bail_ = false;
  st->bound_trials_ = num_trials;
  if (max_col_ >= 0 && static_cast<size_t>(max_col_) >= row.size()) {
    st->bail_ = true;
    return false;
  }
  return RunSegment(prologue_, st, row, resolver, num_trials, /*trial=*/-1);
}

bool ExprProgram::EvalTrial(ExprProgramState* st, const Row& row,
                            int trial) const {
  if (st->bail_) return false;
  assert(trial < st->bound_trials_);
  return RunSegment(epilogue_, st, row, /*resolver=*/nullptr, 0, trial);
}

bool ExprProgram::EvalTrials(ExprProgramState* st, const Row& row,
                             int num_trials, int pred_root, int first_val_root,
                             size_t num_val_roots, double* w,
                             Value* out_vals) const {
  for (int t = 0; t < num_trials; ++t) {
    if (w[t] == 0.0) continue;
    if (!EvalTrial(st, row, t)) return false;
    if (pred_root >= 0 && !RootTruthy(*st, static_cast<size_t>(pred_root))) {
      w[t] = 0.0;
      continue;
    }
    for (size_t a = 0; a < num_val_roots; ++a) {
      out_vals[static_cast<size_t>(t) * num_val_roots + a] =
          RootValue(*st, static_cast<size_t>(first_val_root) + a);
    }
  }
  return true;
}

bool ExprProgram::RootTruthy(const ExprProgramState& st, size_t r) const {
  const Root& root = roots_[r];
  // Strings (and NULL) are never truthy — mirrors Value::IsTruthy.
  if (root.out.is_str) return false;
  return Truthy(st.num_[root.out.reg]);
}

Value ExprProgram::RootValue(const ExprProgramState& st, size_t r) const {
  const Root& root = roots_[r];
  return root.out.is_str ? BoxStr(st.str_[root.out.reg])
                         : BoxNum(st.num_[root.out.reg]);
}

bool ExprProgram::root_trial_invariant(size_t r) const {
  return roots_[r].invariant;
}

// ------------------------------------------------------------ introspection

std::string ExprProgram::ToString() const {
  std::string out;
  auto OpName = [](Op op) -> const char* {
    switch (op) {
      case Op::kLoadNum:
        return "load_num";
      case Op::kLoadStr:
        return "load_str";
      case Op::kColLineage:
        return "col_lineage";
      case Op::kNeg:
        return "neg";
      case Op::kNot:
        return "not";
      case Op::kArith:
        return "arith";
      case Op::kMod:
        return "mod";
      case Op::kCmpNum:
        return "cmp_num";
      case Op::kCmpStr:
        return "cmp_str";
      case Op::kLogic:
        return "logic";
      case Op::kCallNum:
        return "call_num";
      case Op::kCallGeneric:
        return "call_generic";
      case Op::kProbeAgg:
        return "probe_agg";
      case Op::kReadAggNum:
        return "read_agg_num";
      case Op::kReadAggStr:
        return "read_agg_str";
    }
    return "?";
  };
  auto dump = [&](const char* title, const std::vector<Insn>& seg) {
    out += title;
    out += ":\n";
    for (const Insn& insn : seg) {
      out += "  ";
      out += OpName(insn.op);
      out += " dst=" + std::to_string(insn.dst) +
             " a=" + std::to_string(insn.a) + " b=" + std::to_string(insn.b) +
             " sub=" + std::to_string(insn.sub) +
             " aux=" + std::to_string(insn.aux) + "\n";
    }
  };
  dump("prologue", prologue_);
  dump("epilogue", epilogue_);
  out += "roots:";
  for (const Root& root : roots_) {
    out += std::string(" ") + (root.out.is_str ? "s" : "n") +
           std::to_string(root.out.reg) + (root.invariant ? "!" : "~");
  }
  out += "\n";
  if (!const_num_.empty() || !const_str_.empty()) {
    out += "consts:";
    for (const auto& [reg, value] : const_num_) {
      out += " n" + std::to_string(reg) + "=";
      switch (value.tag) {
        case ValueType::kInt64:
          out += "i:" + std::to_string(value.i);
          break;
        case ValueType::kDouble:
          out += "d:" + std::to_string(value.f);
          break;
        default:
          out += "null";
          break;
      }
    }
    for (const auto& [reg, pool_idx] : const_str_) {
      out += " s" + std::to_string(reg) + "=\"" + const_str_pool_[pool_idx] +
             "\"";
    }
    out += "\n";
  }
  for (size_t i = 0; i < call_sites_.size(); ++i) {
    const CallSite& site = call_sites_[i];
    out += "call[" + std::to_string(i) +
           "]: " + (site.fn != nullptr ? site.fn->name : "?") + "(";
    for (size_t a = 0; a < site.args.size(); ++a) {
      if (a > 0) out += ",";
      out += (site.args[a].is_str ? "s" : "n") +
             std::to_string(site.args[a].reg);
    }
    out += ") owned_slot=" + std::to_string(site.owned_slot) + "\n";
  }
  for (size_t i = 0; i < agg_sites_.size(); ++i) {
    const AggSite& site = agg_sites_[i];
    out += "agg[" + std::to_string(i) +
           "]: block=" + std::to_string(site.block_id) +
           " col=" + std::to_string(site.col) + " keys=(";
    for (size_t k = 0; k < site.key_regs.size(); ++k) {
      if (k > 0) out += ",";
      out += (site.key_regs[k].is_str ? "s" : "n") +
             std::to_string(site.key_regs[k].reg);
    }
    out += ")\n";
  }
  out += "regs: num=" + std::to_string(num_regs_) +
         " str=" + std::to_string(str_regs_) +
         " owned=" + std::to_string(owned_slots_) +
         " max_col=" + std::to_string(max_col_) +
         " max_call_args=" + std::to_string(max_call_args_) + "\n";
  return out;
}

}  // namespace iolap
