#ifndef IOLAP_EXEC_OPERATORS_H_
#define IOLAP_EXEC_OPERATORS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "exec/batch.h"

namespace iolap {

/// Append-only cache of rows indexed by an equi-join key — the state a JOIN
/// operator keeps for one of its sides (§4.2: "JOIN constructs its state by
/// augmenting its state from the previous batch with all its input tuples
/// ... without tuple uncertainty").
///
/// Rollback support: appends are logged in order, so failure recovery can
/// truncate back to a per-batch watermark without cloning the cache.
class InputCache {
 public:
  /// `key_cols` are the columns of the cached rows that form the join key.
  explicit InputCache(std::vector<int> key_cols)
      : key_cols_(std::move(key_cols)) {}

  void Append(ExecRow row);

  /// Row positions whose key equals `key` (empty vector if none).
  const std::vector<uint32_t>& Matches(const Row& key) const;

  const ExecRow& row(uint32_t pos) const { return rows_[pos]; }
  size_t size() const { return rows_.size(); }

  /// Current append watermark (rows_ size), recorded per batch.
  size_t watermark() const { return rows_.size(); }

  /// Drops rows appended after `watermark` (failure recovery).
  void TruncateTo(size_t watermark);

  size_t ByteSize() const { return byte_size_; }

  Row KeyOf(const ExecRow& row) const;

 private:
  std::vector<int> key_cols_;
  std::vector<ExecRow> rows_;
  std::unordered_map<Row, std::vector<uint32_t>, RowHash, RowEq> index_;
  size_t byte_size_ = 0;
};

/// One step of the left-deep incremental multi-way join: joins the delta of
/// the prefix (inputs 0..k-1 combined) with input k, maintaining
///   Δ(P ⋈ I) = ΔP ⋈ I_new ∪ P_old ⋈ ΔI
/// where I_new includes this batch's ΔI. The step owns input k's cache and,
/// when input k can still grow (`input_grows`), the prefix cache needed for
/// the P_old ⋈ ΔI term — matching the paper's rule that a join side is
/// cached only if the *other* side has tuple uncertainty.
class JoinStep {
 public:
  JoinStep(std::vector<int> prefix_key_cols, std::vector<int> input_key_cols,
           bool input_grows, bool prefix_grows);

  /// Processes one batch: `prefix_delta` are new prefix rows, `input_delta`
  /// new input-k rows. Appends the resulting new joined rows to `out`.
  void ProcessBatch(const RowBatch& prefix_delta, const RowBatch& input_delta,
                    RowBatch* out);

  /// Probes input k's cache with a prefix row's key; returns match count.
  /// Used by the OPT1-only path to charge the cost of re-deriving a tuple
  /// through the join pipeline.
  size_t ProbeCount(const Row& prefix_key) const;

  std::vector<int> prefix_key_cols() const { return prefix_key_cols_; }

  struct Watermark {
    size_t input = 0;
    size_t prefix = 0;
  };
  Watermark watermark() const;
  void TruncateTo(const Watermark& mark);

  size_t StateBytes() const;

 private:
  Row PrefixKey(const ExecRow& row) const;

  std::vector<int> prefix_key_cols_;
  InputCache input_cache_;
  InputCache prefix_cache_;
  bool keep_prefix_;
};

}  // namespace iolap

#endif  // IOLAP_EXEC_OPERATORS_H_
