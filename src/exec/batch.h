#ifndef IOLAP_EXEC_BATCH_H_
#define IOLAP_EXEC_BATCH_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "core/value.h"

namespace iolap {

/// A tuple flowing through the delta engine. Besides its values it carries:
///  - `weight`: its multiplicity within the accumulated sample D_i (before
///    the |D|/|D_i| scaling that aggregates apply at result time);
///  - `stream_uid`: the id of the streamed base row it derives from, or
///    kNoStream. The poissonized bootstrap derives the row's per-trial
///    multiplicities from this id, so re-processing a tuple (delta update,
///    failure recovery) reproduces the same resamples.
struct ExecRow {
  static constexpr uint64_t kNoStream = std::numeric_limits<uint64_t>::max();

  Row values;
  double weight = 1.0;
  uint64_t stream_uid = kNoStream;

  bool FromStream() const { return stream_uid != kNoStream; }

  size_t ByteSize() const { return RowByteSize(values) + 17; }
};

using RowBatch = std::vector<ExecRow>;

/// Concatenates two rows (join output); at most one side may carry a
/// stream uid (the engine streams a single relation, §2).
ExecRow ConcatRows(const ExecRow& left, const ExecRow& right);

size_t BatchByteSize(const RowBatch& batch);

}  // namespace iolap

#endif  // IOLAP_EXEC_BATCH_H_
