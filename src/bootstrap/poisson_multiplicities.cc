#include "bootstrap/poisson_multiplicities.h"

#include "common/random.h"

namespace iolap {

int BootstrapWeights::WeightAt(uint64_t uid, int trial) const {
  return PoissonOneAt(seed_ ^ 0xb0075742u,
                      uid * static_cast<uint64_t>(num_trials_) +
                          static_cast<uint64_t>(trial));
}

}  // namespace iolap
