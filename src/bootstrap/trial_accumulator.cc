#include "bootstrap/trial_accumulator.h"

namespace iolap {

TrialAccumulatorSet::TrialAccumulatorSet(const AggFunction& fn,
                                         int num_trials) {
  main_ = fn.NewAccumulator();
  trials_.reserve(num_trials);
  for (int t = 0; t < num_trials; ++t) trials_.push_back(fn.NewAccumulator());
}

void TrialAccumulatorSet::AddMoments(const Value& v, double weight) {
  if (v.is_null() || !v.is_numeric()) return;
  const double x = v.AsDouble();
  m_n_ += weight;
  m_sum_ += weight * x;
  m_sumsq_ += weight * x * x;
}

double TrialAccumulatorSet::moment_variance() const {
  if (m_n_ <= 1.0) return 0.0;
  const double mean = m_sum_ / m_n_;
  const double var = m_sumsq_ / m_n_ - mean * mean;
  return var < 0.0 ? 0.0 : var;
}

void TrialAccumulatorSet::Add(const Value& v, double weight,
                              const int* trial_weights) {
  main_->Add(v, weight);
  AddMoments(v, weight);
  for (size_t t = 0; t < trials_.size(); ++t) {
    const double w = trial_weights != nullptr ? weight * trial_weights[t]
                                              : weight;
    if (w != 0.0) trials_[t]->Add(v, w);
  }
}

void TrialAccumulatorSet::AddPerTrial(const std::vector<Value>& values,
                                      double weight,
                                      const int* trial_weights) {
  main_->Add(values[0], weight);
  AddMoments(values[0], weight);
  for (size_t t = 0; t < trials_.size(); ++t) {
    const double w = trial_weights != nullptr ? weight * trial_weights[t]
                                              : weight;
    if (w != 0.0) trials_[t]->Add(values[1 + t], w);
  }
}

void TrialAccumulatorSet::AddMainOnly(const Value& v, double weight) {
  main_->Add(v, weight);
  AddMoments(v, weight);
}

void TrialAccumulatorSet::AddTrialOnly(int trial, const Value& v,
                                       double weight) {
  if (weight != 0.0) trials_[trial]->Add(v, weight);
}

void TrialAccumulatorSet::Merge(const TrialAccumulatorSet& other) {
  main_->Merge(*other.main_);
  m_n_ += other.m_n_;
  m_sum_ += other.m_sum_;
  m_sumsq_ += other.m_sumsq_;
  for (size_t t = 0; t < trials_.size(); ++t) {
    trials_[t]->Merge(*other.trials_[t]);
  }
}

Value TrialAccumulatorSet::MainResult(double scale) const {
  return main_->Result(scale);
}

std::vector<double> TrialAccumulatorSet::TrialResults(double scale) const {
  const Value main = main_->Result(scale);
  const double fallback = main.is_null() ? 0.0 : main.AsDouble();
  std::vector<double> out;
  out.reserve(trials_.size());
  for (const auto& trial : trials_) {
    const Value v = trial->Result(scale);
    out.push_back(v.is_null() ? fallback : v.AsDouble());
  }
  return out;
}

TrialAccumulatorSet TrialAccumulatorSet::Clone() const {
  TrialAccumulatorSet copy;
  copy.m_n_ = m_n_;
  copy.m_sum_ = m_sum_;
  copy.m_sumsq_ = m_sumsq_;
  copy.main_ = main_->Clone();
  copy.trials_.reserve(trials_.size());
  for (const auto& trial : trials_) copy.trials_.push_back(trial->Clone());
  return copy;
}

size_t TrialAccumulatorSet::ByteSize() const {
  size_t total = main_->ByteSize();
  for (const auto& trial : trials_) total += trial->ByteSize();
  return total;
}

}  // namespace iolap
