#ifndef IOLAP_BOOTSTRAP_TRIAL_ACCUMULATOR_H_
#define IOLAP_BOOTSTRAP_TRIAL_ACCUMULATOR_H_

#include <memory>
#include <vector>

#include "core/aggregate.h"
#include "core/value.h"

namespace iolap {

/// The sketch state of one aggregate over one group, replicated across
/// bootstrap trials: one main accumulator (plain multiplicities) plus
/// `num_trials` trial accumulators (Poisson multiplicities). This is the
/// runtime form of the paper's "all uncertain attributes are duplicated to
/// multiple instances, one per bootstrap trial" (§7/Appendix C), compressed
/// into sub-linear sketches per §4.2.
class TrialAccumulatorSet {
 public:
  TrialAccumulatorSet(const AggFunction& fn, int num_trials);

  int num_trials() const { return static_cast<int>(trials_.size()); }

  /// Folds a value whose main multiplicity is `weight` and whose trial-t
  /// multiplicity is weight * trial_weights[t]. `trial_weights` may be null
  /// when every trial weight equals the main weight (non-streamed rows).
  void Add(const Value& v, double weight, const int* trial_weights);

  /// Folds a value that differs per trial (uncertain aggregate inputs):
  /// values[0] is the main value, values[1 + t] the trial-t value.
  void AddPerTrial(const std::vector<Value>& values, double weight,
                   const int* trial_weights);

  /// Folds into the main accumulator only / one trial accumulator only.
  /// Used for non-deterministic rows whose filter decision differs per
  /// bootstrap trial (§5): the delta engine evaluates the predicate per
  /// trial and routes each surviving (value, weight) individually.
  void AddMainOnly(const Value& v, double weight);
  void AddTrialOnly(int trial, const Value& v, double weight);

  void Merge(const TrialAccumulatorSet& other);

  Value MainResult(double scale) const;
  /// Numeric trial replicas (NULL trials surface as the main value, so a
  /// group that is empty in some resample does not poison the envelope).
  std::vector<double> TrialResults(double scale) const;

  TrialAccumulatorSet Clone() const;
  size_t ByteSize() const;

  /// Input moments of the main contributions (weighted count, mean,
  /// variance), maintained alongside the accumulators for the closed-form
  /// (analytic) error estimator — the paper's §9 pointer to analytical
  /// bootstrap [39] as a drop-in replacement for simulation.
  double moment_count() const { return m_n_; }
  double moment_mean() const { return m_n_ > 0 ? m_sum_ / m_n_ : 0.0; }
  double moment_variance() const;

 private:
  TrialAccumulatorSet() = default;

  void AddMoments(const Value& v, double weight);

  std::unique_ptr<AggAccumulator> main_;
  std::vector<std::unique_ptr<AggAccumulator>> trials_;
  double m_n_ = 0.0;
  double m_sum_ = 0.0;
  double m_sumsq_ = 0.0;
};

}  // namespace iolap

#endif  // IOLAP_BOOTSTRAP_TRIAL_ACCUMULATOR_H_
