#ifndef IOLAP_BOOTSTRAP_VARIATION_RANGE_H_
#define IOLAP_BOOTSTRAP_VARIATION_RANGE_H_

#include <limits>
#include <vector>

#include "core/interval.h"

namespace iolap {

/// Tracks the variation range R(u) of one uncertain aggregate value across
/// mini-batches (§5.1), refined with *decision constraints*.
///
/// Each batch folds the bootstrap replicas û into a slack-padded envelope
///   padded_i = [min(û) − ε·σ(û), max(û) + ε·σ(û)].
///
/// The paper maintains R as the running intersection of these envelopes
/// and recovers whenever a new envelope escapes R. This implementation
/// keeps the statistical envelope and the *obligations* separate:
///
///  - the classification range (current()) is padded_i ∩ [lower, upper]
///    where [lower, upper] are the accumulated decision constraints;
///  - a pruning decision made against the range registers only the bounds
///    it actually needs (ConstrainUpper / ConstrainLower): pruning
///    `v > c` to false needs v to stay below a separator, not the whole
///    range to hold;
///  - the integrity check (Update) verifies new envelopes against the
///    constraints. A value nobody decided on carries no constraints and
///    can never fail.
///
/// This is strictly less conservative than §5.1's full-range containment
/// (which it degenerates to if both bounds are registered per decision)
/// with the same correctness argument: every pruned tuple's decision
/// remains valid as long as every constrained value honours its bounds,
/// and violations roll the engine back to the last batch whose constraints
/// the new envelope satisfies (Theorem 1's recovery).
class VariationRangeTracker {
 public:
  explicit VariationRangeTracker(double slack) : slack_(slack) {}

  struct UpdateResult {
    /// The new envelope honours all constraints.
    bool ok = true;
    /// On failure: the last update index whose constraints the new padded
    /// envelope satisfies (-1 = none; recover from scratch).
    int last_consistent_batch = -1;
  };

  /// Folds the batch's replicas (`trials` + the running `value`).
  UpdateResult Update(double value, const std::vector<double>& trials);

  /// Same, from a precomputed envelope (min/max/stddev of the replicas) —
  /// used when an untouched group's stored envelope is re-scaled instead
  /// of re-materializing its replicas.
  UpdateResult UpdateEnvelope(double value, double lo, double hi,
                              double stddev);

  /// Registers a decision obligation: future values (and replicas) must
  /// stay ≤ `bound` / ≥ `bound`.
  void ConstrainUpper(double bound);
  void ConstrainLower(double bound);

  /// Fault injection (registry-envelope-fault): reports the failure a
  /// replica envelope *just* escaping the tightest registered constraint
  /// would produce, with the same constraint-history walk-back as a real
  /// escape — so recovery, including the frozen replay window, runs its
  /// natural path. State is untouched (a failing Update never folds its
  /// envelope). Returns ok when the tracker carries no finite constraint:
  /// such a value can never fail, injected or not.
  UpdateResult InjectInconsistency() const;

  /// Recovery-storm degradation, staircase level 1: scales the envelope
  /// slack ε so future padded envelopes widen. Wider classification ranges
  /// decide fewer tuples, which registers fewer obligations — trading
  /// pruning for recovery pressure (see docs/INTERNALS.md §9).
  void ScaleSlack(double factor) { slack_ *= factor; }

  /// The range classification consults: the latest padded envelope
  /// intersected with the constraints. Unbounded before the first update,
  /// and frozen to the recovery point's constraints during a replay window.
  Interval current() const;

  int num_batches() const { return static_cast<int>(history_.size()); }

  /// Rollback for failure recovery: keeps updates 0..batch, restores their
  /// constraints, and freezes classification to the (loose) recovered
  /// constraints for `freeze_updates` replayed batches. Without the
  /// freeze a deterministic replay would re-make the exact decisions that
  /// created the violated constraint and loop forever; under the frozen
  /// (recovered) range those decisions are not re-made until the replay
  /// has passed the failure point.
  void RecoverTo(int batch, int freeze_updates);

  size_t ByteSize() const {
    return sizeof(*this) + history_.size() * sizeof(Snapshot);
  }

 private:
  struct Snapshot {
    Interval padded;
    double lower;
    double upper;
  };

  double lower_ = -std::numeric_limits<double>::infinity();
  double upper_ = std::numeric_limits<double>::infinity();
  double slack_;
  int frozen_updates_ = 0;
  std::vector<Snapshot> history_;
};

}  // namespace iolap

#endif  // IOLAP_BOOTSTRAP_VARIATION_RANGE_H_
