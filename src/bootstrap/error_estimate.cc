#include "bootstrap/error_estimate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace iolap {

std::string ErrorEstimate::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.6g ± %.3g (95%% CI [%.6g, %.6g])", value,
                2 * stddev, ci_lo, ci_hi);
  return buf;
}

ErrorEstimate EstimateError(double value, const std::vector<double>& trials) {
  ErrorEstimate est;
  est.value = value;
  est.ci_lo = value;
  est.ci_hi = value;
  if (trials.size() < 2) return est;

  double sum = 0.0;
  for (double t : trials) sum += t;
  const double mean = sum / trials.size();
  double ss = 0.0;
  for (double t : trials) ss += (t - mean) * (t - mean);
  est.stddev = std::sqrt(ss / (trials.size() - 1));
  est.rel_stddev = value != 0.0 ? est.stddev / std::fabs(value) : est.stddev;

  // Percentile CI.
  std::vector<double> sorted = trials;
  std::sort(sorted.begin(), sorted.end());
  auto percentile = [&sorted](double p) {
    const double pos = p * (sorted.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - lo;
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  est.ci_lo = percentile(0.025);
  est.ci_hi = percentile(0.975);
  return est;
}

double AnalyticUnscaledStddev(const std::string& agg_name, double n,
                              double variance) {
  if (n <= 0.0) return 0.0;
  if (agg_name == "sum") return std::sqrt(n * variance);
  if (agg_name == "count") return std::sqrt(n);
  if (agg_name == "avg") return n > 1.0 ? std::sqrt(variance / n) : 0.0;
  return -1.0;
}

ErrorEstimate EstimateFromStddev(double value, double stddev) {
  ErrorEstimate est;
  est.value = value;
  est.stddev = stddev < 0.0 ? 0.0 : stddev;
  est.rel_stddev = value != 0.0 ? est.stddev / std::fabs(value) : est.stddev;
  est.ci_lo = value - 1.96 * est.stddev;
  est.ci_hi = value + 1.96 * est.stddev;
  return est;
}

ErrorEstimate AnalyticEstimate(double value, double sample_variance,
                               double sample_count) {
  ErrorEstimate est;
  est.value = value;
  est.ci_lo = value;
  est.ci_hi = value;
  if (sample_count <= 1.0 || sample_variance < 0.0) return est;
  est.stddev = std::sqrt(sample_variance / sample_count);
  est.rel_stddev = value != 0.0 ? est.stddev / std::fabs(value) : est.stddev;
  est.ci_lo = value - 1.96 * est.stddev;
  est.ci_hi = value + 1.96 * est.stddev;
  return est;
}

}  // namespace iolap
