#include "bootstrap/variation_range.h"

#include <algorithm>
#include <cmath>

namespace iolap {

namespace {

// Envelope [min, max] and stddev of the replicas (the running value is
// included so it can never silently escape).
struct Envelope {
  double lo;
  double hi;
  double stddev;
};

Envelope ComputeEnvelope(double value, const std::vector<double>& trials) {
  Envelope env{value, value, 0.0};
  if (trials.empty()) return env;
  double sum = 0.0;
  for (double t : trials) {
    env.lo = std::min(env.lo, t);
    env.hi = std::max(env.hi, t);
    sum += t;
  }
  const double mean = sum / trials.size();
  double ss = 0.0;
  for (double t : trials) ss += (t - mean) * (t - mean);
  env.stddev = trials.size() > 1 ? std::sqrt(ss / (trials.size() - 1)) : 0.0;
  return env;
}

}  // namespace

VariationRangeTracker::UpdateResult VariationRangeTracker::Update(
    double value, const std::vector<double>& trials) {
  const Envelope env = ComputeEnvelope(value, trials);
  return UpdateEnvelope(value, env.lo, env.hi, env.stddev);
}

VariationRangeTracker::UpdateResult VariationRangeTracker::UpdateEnvelope(
    double value, double lo, double hi, double stddev) {
  const Envelope env{std::min(lo, value), std::max(hi, value), stddev};
  const Interval padded(env.lo - slack_ * env.stddev,
                        env.hi + slack_ * env.stddev);
  UpdateResult result;
  if (env.lo < lower_ || env.hi > upper_) {
    // A constrained bound is violated: some pruning decision that consulted
    // this value no longer holds. Report the last update whose constraints
    // the new envelope still satisfies (constraints only tighten over
    // time, so walking back only loosens them).
    result.ok = false;
    result.last_consistent_batch = -1;
    for (int b = static_cast<int>(history_.size()) - 1; b >= 0; --b) {
      if (env.lo >= history_[b].lower && env.hi <= history_[b].upper) {
        result.last_consistent_batch = b;
        break;
      }
    }
    return result;
  }
  if (frozen_updates_ > 0) --frozen_updates_;
  history_.push_back(Snapshot{padded, lower_, upper_});
  return result;
}

void VariationRangeTracker::ConstrainUpper(double bound) {
  upper_ = std::min(upper_, bound);
  if (!history_.empty()) {
    history_.back().upper = std::min(history_.back().upper, upper_);
  }
}

void VariationRangeTracker::ConstrainLower(double bound) {
  lower_ = std::max(lower_, bound);
  if (!history_.empty()) {
    history_.back().lower = std::max(history_.back().lower, lower_);
  }
}

VariationRangeTracker::UpdateResult VariationRangeTracker::InjectInconsistency()
    const {
  UpdateResult result;
  const bool upper_finite = std::isfinite(upper_);
  const bool lower_finite = std::isfinite(lower_);
  // No obligations, no possible violation — same as the real check.
  if (!upper_finite && !lower_finite) return result;
  // A point envelope just past the tighter side, so the walk-back lands on
  // the last update whose constraints were still loose enough to admit it.
  double probe;
  if (upper_finite) {
    probe = upper_ + std::max(1.0, std::fabs(upper_)) * 1e-9;
  } else {
    probe = lower_ - std::max(1.0, std::fabs(lower_)) * 1e-9;
  }
  result.ok = false;
  result.last_consistent_batch = -1;
  for (int b = static_cast<int>(history_.size()) - 1; b >= 0; --b) {
    if (probe >= history_[b].lower && probe <= history_[b].upper) {
      result.last_consistent_batch = b;
      break;
    }
  }
  return result;
}

Interval VariationRangeTracker::current() const {
  if (history_.empty()) return Interval::Unbounded();
  if (frozen_updates_ > 0) {
    // Replay window: expose only the recovered constraints, so the
    // decisions that caused the failure are not deterministically re-made.
    return Interval(lower_, upper_);
  }
  const Snapshot& last = history_.back();
  return Interval(std::max(last.padded.lo, lower_),
                  std::min(last.padded.hi, upper_));
}

void VariationRangeTracker::RecoverTo(int batch, int freeze_updates) {
  if (batch < 0) {
    history_.clear();
    lower_ = -std::numeric_limits<double>::infinity();
    upper_ = std::numeric_limits<double>::infinity();
  } else {
    if (static_cast<size_t>(batch) + 1 < history_.size()) {
      history_.resize(batch + 1);
    }
    if (!history_.empty()) {
      lower_ = history_.back().lower;
      upper_ = history_.back().upper;
    }
  }
  frozen_updates_ = freeze_updates < 0 ? 0 : freeze_updates;
}

}  // namespace iolap
