#ifndef IOLAP_BOOTSTRAP_POISSON_MULTIPLICITIES_H_
#define IOLAP_BOOTSTRAP_POISSON_MULTIPLICITIES_H_

#include <cstdint>

namespace iolap {

/// Poissonized bootstrap multiplicities (§2, §7 step 2; Agarwal et al. [8]).
///
/// Each bootstrap trial re-weights every tuple of the streamed relation with
/// an i.i.d. Poisson(1) multiplicity, which approximates resampling-with-
/// replacement without materializing resamples. The weight of row `uid` in
/// trial `t` is a pure function of (seed, uid, t): re-processing a tuple
/// during a delta update or a failure recovery sees exactly the weights the
/// first pass saw, which the correctness argument of Theorem 1 relies on.
class BootstrapWeights {
 public:
  BootstrapWeights(uint64_t seed, int num_trials)
      : seed_(seed), num_trials_(num_trials) {}

  int num_trials() const { return num_trials_; }

  /// Poisson(1) multiplicity of streamed row `uid` in trial `t`.
  int WeightAt(uint64_t uid, int trial) const;

  /// Approximate extra bytes the bootstrap multiplicity columns add to one
  /// shuffled row (one byte per trial), for the data-shipped cost model.
  uint64_t RowOverheadBytes() const { return static_cast<uint64_t>(num_trials_); }

 private:
  uint64_t seed_;
  int num_trials_;
};

}  // namespace iolap

#endif  // IOLAP_BOOTSTRAP_POISSON_MULTIPLICITIES_H_
