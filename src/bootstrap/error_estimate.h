#ifndef IOLAP_BOOTSTRAP_ERROR_ESTIMATE_H_
#define IOLAP_BOOTSTRAP_ERROR_ESTIMATE_H_

#include <string>
#include <vector>

namespace iolap {

/// Error estimate of one approximate aggregate value, computed from the
/// empirical distribution of its bootstrap trial replicas (§2, "Error
/// Estimation"). `rel_stddev` is the relative standard deviation the paper
/// plots in Figure 7(a); the confidence interval is the 2.5/97.5 percentile
/// band of the replicas.
struct ErrorEstimate {
  double value = 0.0;
  double stddev = 0.0;
  double rel_stddev = 0.0;
  double ci_lo = 0.0;
  double ci_hi = 0.0;

  std::string ToString() const;
};

/// Builds the estimate for `value` from `trials`. With fewer than two
/// replicas the estimate degenerates to a zero-width band around `value`.
ErrorEstimate EstimateError(double value, const std::vector<double>& trials);

/// Closed-form alternative for linear aggregates (extension; the paper
/// notes analytical bootstrap [39] is orthogonal and pluggable): normal
/// approximation from a sample variance. Used by the ablation bench to
/// compare against simulation bootstrap.
ErrorEstimate AnalyticEstimate(double value, double sample_variance,
                               double sample_count);

/// Closed-form *unscaled* standard deviation of an aggregate estimate,
/// from the input moments of its group: for `agg_name` in
/// {sum, count, avg}, the sampling stddev of the estimator before
/// multiplicity scaling (the engine scales it exactly like the aggregate
/// itself; the finite-population correction is applied at display time).
/// Returns a negative value for aggregates without a closed form (UDAFs,
/// variance, ...), which then fall back to bootstrap or report no
/// estimate.
double AnalyticUnscaledStddev(const std::string& agg_name, double n,
                              double variance);

/// Builds a presentation estimate from a scaled stddev (normal CI).
ErrorEstimate EstimateFromStddev(double value, double stddev);

}  // namespace iolap

#endif  // IOLAP_BOOTSTRAP_ERROR_ESTIMATE_H_
