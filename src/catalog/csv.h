#ifndef IOLAP_CATALOG_CSV_H_
#define IOLAP_CATALOG_CSV_H_

#include <string>

#include "common/status.h"
#include "core/table.h"

namespace iolap {

/// Options for reading delimited text into a Table.
struct CsvOptions {
  char delimiter = ',';
  /// First row holds column names; otherwise columns are named c0, c1, ...
  bool header = true;
  /// Literal that reads as SQL NULL (in addition to the empty field).
  std::string null_token = "NULL";
  /// Rows sampled to infer column types (int64 ⊂ double ⊂ string).
  size_t type_inference_rows = 100;
};

/// Parses CSV text into a Table, inferring column types from the leading
/// rows: a column is INT64 if every sampled non-null field parses as an
/// integer, DOUBLE if every field parses as a number, STRING otherwise.
/// Quoted fields ("a ""quoted"" field, with comma") are supported.
Result<Table> ReadCsv(const std::string& text, const CsvOptions& options = {});

/// Reads a CSV file from disk.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = {});

/// Retry policy for transient ingest failures (I/O hiccups, the
/// csv-read-fault failpoint). Backoff doubles per attempt, capped.
struct CsvRetryOptions {
  int max_attempts = 4;
  double initial_backoff_sec = 0.0;  // 0 in tests: retries stay instant
  double max_backoff_sec = 0.1;
};

/// ReadCsvFile with bounded-exponential-backoff retries. Only *transient*
/// failures (kExecutionError, kInternal) are retried; deterministic ones —
/// missing file, parse error, bad schema — fail immediately, since retrying
/// cannot change their outcome. `attempts`, when non-null, reports how many
/// attempts ran (1 = first try succeeded).
Result<Table> ReadCsvFileWithRetry(const std::string& path,
                                   const CsvOptions& options,
                                   const CsvRetryOptions& retry,
                                   int* attempts = nullptr);

/// Serializes a table back to CSV (round-trips ReadCsv modulo type
/// formatting).
std::string WriteCsv(const Table& table, const CsvOptions& options = {});

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace iolap

#endif  // IOLAP_CATALOG_CSV_H_
