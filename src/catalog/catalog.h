#ifndef IOLAP_CATALOG_CATALOG_H_
#define IOLAP_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/table.h"

namespace iolap {

/// A registered base relation. `streamed` marks the relation the user asked
/// to process in an online fashion (paper §2): it is partitioned into
/// mini-batches and carries tuple uncertainty; non-streamed (dimension)
/// relations are read in entirety in the first batch and are fully
/// deterministic.
struct TableEntry {
  std::shared_ptr<const Table> table;
  bool streamed = false;
};

/// In-memory table catalog: the storage layer of the engine. Tables are
/// immutable once registered; queries reference them by name.
class Catalog {
 public:
  /// Registers `table` under `name`. AlreadyExists if the name is taken.
  Status RegisterTable(const std::string& name, Table table,
                       bool streamed = false);

  /// Registers a shared table (no copy).
  Status RegisterTable(const std::string& name,
                       std::shared_ptr<const Table> table, bool streamed);

  /// Marks an existing table as streamed / not streamed.
  Status SetStreamed(const std::string& name, bool streamed);

  Result<const TableEntry*> Find(const std::string& name) const;

  bool Has(const std::string& name) const { return tables_.count(name) > 0; }

  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, TableEntry> tables_;
};

}  // namespace iolap

#endif  // IOLAP_CATALOG_CATALOG_H_
