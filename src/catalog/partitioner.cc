#include "catalog/partitioner.h"

#include <algorithm>
#include <map>

#include "common/hash.h"
#include "common/random.h"

namespace iolap {

namespace {

// Fisher-Yates shuffle of [0, n) driven by the library Rng.
std::vector<uint64_t> ShuffledIota(size_t n, Rng* rng) {
  std::vector<uint64_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = i;
  for (size_t i = n; i > 1; --i) {
    const size_t j = rng->NextBounded(i);
    std::swap(ids[i - 1], ids[j]);
  }
  return ids;
}

// Chops `ids` into `num_batches` nearly equal consecutive slices.
BatchLayout SliceIntoBatches(const std::vector<uint64_t>& ids,
                             size_t num_batches) {
  BatchLayout layout;
  layout.batches.resize(num_batches);
  const size_t n = ids.size();
  const size_t base = n / num_batches;
  const size_t extra = n % num_batches;
  size_t offset = 0;
  for (size_t b = 0; b < num_batches; ++b) {
    const size_t size = base + (b < extra ? 1 : 0);
    layout.batches[b].assign(ids.begin() + offset, ids.begin() + offset + size);
    offset += size;
  }
  return layout;
}

BatchLayout BlockwisePartition(size_t num_rows, size_t num_batches,
                               size_t block_rows, Rng* rng) {
  if (block_rows == 0) block_rows = 1;
  const size_t num_blocks = (num_rows + block_rows - 1) / block_rows;
  std::vector<uint64_t> block_order = ShuffledIota(num_blocks, rng);
  std::vector<uint64_t> ids;
  ids.reserve(num_rows);
  for (uint64_t block : block_order) {
    const size_t begin = block * block_rows;
    const size_t end = std::min(num_rows, begin + block_rows);
    for (size_t r = begin; r < end; ++r) ids.push_back(r);
  }
  return SliceIntoBatches(ids, num_batches);
}

BatchLayout StratifiedPartition(const Table& table, size_t num_batches,
                                int stratify_column, Rng* rng) {
  // Bucket rows by stratum, shuffle within each stratum, then deal rows
  // round-robin so every batch receives a proportional share.
  std::map<std::string, std::vector<uint64_t>> strata;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    strata[table.row(r)[stratify_column].ToString()].push_back(r);
  }
  BatchLayout layout;
  layout.batches.resize(num_batches);
  for (auto& [key, ids] : strata) {
    for (size_t i = ids.size(); i > 1; --i) {
      std::swap(ids[i - 1], ids[rng->NextBounded(i)]);
    }
    // Deal rows round-robin; a per-stratum random start keeps small strata
    // from all landing in batch 0.
    const size_t start = rng->NextBounded(num_batches);
    for (size_t i = 0; i < ids.size(); ++i) {
      layout.batches[(start + i) % num_batches].push_back(ids[i]);
    }
  }
  return layout;
}

}  // namespace

size_t BatchLayout::TotalRows() const {
  size_t total = 0;
  for (const auto& batch : batches) total += batch.size();
  return total;
}

Result<BatchLayout> PartitionIntoBatches(const Table& table,
                                         size_t num_batches,
                                         const PartitionOptions& options) {
  const size_t num_rows = table.num_rows();
  if (num_batches == 0) {
    return Status::InvalidArgument("num_batches must be positive");
  }
  if (num_rows == 0) {
    BatchLayout layout;
    layout.batches.resize(1);
    return layout;
  }
  num_batches = std::min(num_batches, num_rows);
  Rng rng(options.seed ^ 0x1015a9u);
  switch (options.scheme) {
    case PartitionScheme::kBlockwiseRandom:
      return BlockwisePartition(num_rows, num_batches, options.block_rows,
                                &rng);
    case PartitionScheme::kFullShuffle: {
      std::vector<uint64_t> ids = ShuffledIota(num_rows, &rng);
      return SliceIntoBatches(ids, num_batches);
    }
    case PartitionScheme::kStratified: {
      if (options.stratify_column < 0 ||
          static_cast<size_t>(options.stratify_column) >=
              table.schema().num_columns()) {
        return Status::InvalidArgument("stratify_column out of range");
      }
      return StratifiedPartition(table, num_batches, options.stratify_column,
                                 &rng);
    }
  }
  return Status::InvalidArgument("unknown partition scheme");
}

size_t ShardOfHash(uint64_t hash, size_t num_shards) {
  if (num_shards <= 1) return 0;
  // Remix before reducing: callers pass hashes whose low bits may already
  // have been consumed (bucket indices, uid counters), and a plain modulo
  // of those would correlate shard ownership with insertion order.
  return static_cast<size_t>(Mix64(hash ^ 0x5aa4d0f3u) % num_shards);
}

}  // namespace iolap
