#include "catalog/csv.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/hash.h"

namespace iolap {

namespace {

// Splits one CSV record (supports quoted fields with "" escapes). Returns
// false on an unterminated quote.
bool SplitRecord(const std::string& line, char delimiter,
                 std::vector<std::string>* fields) {
  fields->clear();
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      fields->push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // swallow CR of CRLF
    } else {
      current += c;
    }
  }
  fields->push_back(std::move(current));
  return !in_quotes;
}

bool ParsesAsInt(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtoll(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

bool ParsesAsDouble(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool NeedsQuoting(const std::string& s, char delimiter) {
  for (char c : s) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

Result<Table> ReadCsv(const std::string& text, const CsvOptions& options) {
  std::vector<std::vector<std::string>> records;
  {
    std::istringstream stream(text);
    std::string line;
    size_t line_no = 0;
    while (std::getline(stream, line)) {
      ++line_no;
      if (line.empty() || (line.size() == 1 && line[0] == '\r')) continue;
      std::vector<std::string> fields;
      if (!SplitRecord(line, options.delimiter, &fields)) {
        return Status::ParseError("unterminated quote on line " +
                                  std::to_string(line_no));
      }
      records.push_back(std::move(fields));
    }
  }
  if (records.empty()) {
    return Status::InvalidArgument("empty CSV input");
  }

  std::vector<std::string> names;
  size_t first_data_row = 0;
  if (options.header) {
    names = records[0];
    first_data_row = 1;
  } else {
    for (size_t c = 0; c < records[0].size(); ++c) {
      names.push_back("c" + std::to_string(c));
    }
  }
  const size_t num_columns = names.size();
  for (size_t r = first_data_row; r < records.size(); ++r) {
    if (records[r].size() != num_columns) {
      return Status::ParseError(
          "row " + std::to_string(r + 1) + " has " +
          std::to_string(records[r].size()) + " fields, expected " +
          std::to_string(num_columns));
    }
  }

  auto is_null = [&options](const std::string& field) {
    return field.empty() || field == options.null_token;
  };

  // Type inference over the leading data rows.
  std::vector<ValueType> types(num_columns, ValueType::kInt64);
  const size_t sample_end =
      std::min(records.size(),
               first_data_row + options.type_inference_rows);
  for (size_t c = 0; c < num_columns; ++c) {
    bool all_int = true;
    bool all_double = true;
    bool any_value = false;
    for (size_t r = first_data_row; r < sample_end; ++r) {
      const std::string& field = records[r][c];
      if (is_null(field)) continue;
      any_value = true;
      all_int = all_int && ParsesAsInt(field);
      all_double = all_double && ParsesAsDouble(field);
    }
    if (!any_value) {
      types[c] = ValueType::kString;
    } else if (all_int) {
      types[c] = ValueType::kInt64;
    } else if (all_double) {
      types[c] = ValueType::kDouble;
    } else {
      types[c] = ValueType::kString;
    }
  }

  Schema schema;
  for (size_t c = 0; c < num_columns; ++c) {
    schema.AddColumn(Column(names[c], types[c]));
  }
  Table table(std::move(schema));
  table.Reserve(records.size() - first_data_row);
  for (size_t r = first_data_row; r < records.size(); ++r) {
    Row row;
    row.reserve(num_columns);
    for (size_t c = 0; c < num_columns; ++c) {
      const std::string& field = records[r][c];
      if (is_null(field)) {
        row.push_back(Value::Null());
        continue;
      }
      switch (types[c]) {
        case ValueType::kInt64:
          if (!ParsesAsInt(field)) {
            return Status::ParseError("row " + std::to_string(r + 1) +
                                      " column '" + names[c] +
                                      "': expected integer, got '" + field +
                                      "'");
          }
          row.push_back(Value::Int64(std::strtoll(field.c_str(), nullptr, 10)));
          break;
        case ValueType::kDouble:
          if (!ParsesAsDouble(field)) {
            return Status::ParseError("row " + std::to_string(r + 1) +
                                      " column '" + names[c] +
                                      "': expected number, got '" + field +
                                      "'");
          }
          row.push_back(Value::Double(std::strtod(field.c_str(), nullptr)));
          break;
        default:
          row.push_back(Value::String(field));
          break;
      }
    }
    table.AddRow(std::move(row));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  if (IOLAP_FAILPOINT(Failpoint::kCsvReadFault, HashBytes(path))) {
    return Status::ExecutionError("injected transient read fault: " + path);
  }
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ReadCsv(buffer.str(), options);
}

Result<Table> ReadCsvFileWithRetry(const std::string& path,
                                   const CsvOptions& options,
                                   const CsvRetryOptions& retry,
                                   int* attempts) {
  const int max_attempts = std::max(1, retry.max_attempts);
  double backoff = retry.initial_backoff_sec;
  Result<Table> result = Status::Internal("retry loop did not run");
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempts != nullptr) *attempts = attempt;
    result = ReadCsvFile(path, options);
    if (result.ok()) return result;
    const StatusCode code = result.status().code();
    const bool transient =
        code == StatusCode::kExecutionError || code == StatusCode::kInternal;
    if (!transient || attempt == max_attempts) return result;
    if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(backoff, retry.max_backoff_sec)));
    }
    backoff = backoff > 0.0 ? backoff * 2.0 : 0.0;
  }
  return result;
}

std::string WriteCsv(const Table& table, const CsvOptions& options) {
  std::string out;
  auto emit_field = [&](const std::string& field) {
    if (NeedsQuoting(field, options.delimiter)) {
      out += '"';
      for (char c : field) {
        if (c == '"') out += '"';
        out += c;
      }
      out += '"';
    } else {
      out += field;
    }
  };
  if (options.header) {
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      if (c > 0) out += options.delimiter;
      emit_field(table.schema().column(c).name);
    }
    out += '\n';
  }
  for (const Row& row : table.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += options.delimiter;
      if (row[c].is_null()) {
        out += options.null_token;
      } else {
        emit_field(row[c].ToString());
      }
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return Status::InvalidArgument("cannot write file: " + path);
  }
  file << WriteCsv(table, options);
  return file.good() ? Status::OK()
                     : Status::Internal("write failed: " + path);
}

}  // namespace iolap
