#ifndef IOLAP_CATALOG_PARTITIONER_H_
#define IOLAP_CATALOG_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/table.h"

namespace iolap {

/// How the streamed relation is split into mini-batches (paper §2).
enum class PartitionScheme {
  /// Default: rows are grouped into fixed-size blocks, block order is
  /// randomly shuffled, and consecutive blocks form batches. Matches the
  /// paper's block-wise randomness assumption.
  kBlockwiseRandom,
  /// Pre-processing tool for inputs whose block order correlates with
  /// query attributes: a full row-level random shuffle.
  kFullShuffle,
  /// Extension (paper §9): rows are stratified on a key column and each
  /// batch receives a proportional share of every stratum.
  kStratified,
};

struct PartitionOptions {
  PartitionScheme scheme = PartitionScheme::kBlockwiseRandom;
  /// Rows per block under kBlockwiseRandom.
  size_t block_rows = 64;
  /// Column index used as the stratum key under kStratified.
  int stratify_column = 0;
  uint64_t seed = 0;
};

/// The mini-batch layout of one streamed relation: batches[i] lists the
/// row ids (indices into the base table) that arrive in batch i. Every row
/// appears in exactly one batch.
struct BatchLayout {
  std::vector<std::vector<uint64_t>> batches;

  size_t TotalRows() const;
};

/// Splits `num_rows` (or the rows of `table`, for kStratified) into
/// `num_batches` randomized mini-batches. num_batches is clamped to
/// [1, num_rows] (empty input yields one empty batch).
Result<BatchLayout> PartitionIntoBatches(const Table& table,
                                         size_t num_batches,
                                         const PartitionOptions& options);

/// Upper bound on horizontal shards: the failpoint detail encoding packs a
/// shard endpoint into the low 6 bits of `batch * kMaxShards + shard`
/// (common/failpoint_names.h), and EngineOptions validation rejects more.
inline constexpr size_t kMaxShards = 64;

/// Owner shard of a row hash under `num_shards` shards. Deterministic in
/// the hash alone — independent of thread count, batch boundaries and
/// recovery replays — so re-processing a tuple routes it to the same
/// shard. Streamed rows hash their stable stream uid; derived rows hash
/// their values (src/shard/shard.h routes both through here). The same
/// slicing partitions AggregateRegistry group keys across shards.
size_t ShardOfHash(uint64_t hash, size_t num_shards);

}  // namespace iolap

#endif  // IOLAP_CATALOG_PARTITIONER_H_
