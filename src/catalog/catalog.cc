#include "catalog/catalog.h"

namespace iolap {

Status Catalog::RegisterTable(const std::string& name, Table table,
                              bool streamed) {
  return RegisterTable(name, std::make_shared<const Table>(std::move(table)),
                       streamed);
}

Status Catalog::RegisterTable(const std::string& name,
                              std::shared_ptr<const Table> table,
                              bool streamed) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table already registered: " + name);
  }
  tables_[name] = TableEntry{std::move(table), streamed};
  return Status::OK();
}

Status Catalog::SetStreamed(const std::string& name, bool streamed) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  it->second.streamed = streamed;
  return Status::OK();
}

Result<const TableEntry*> Catalog::Find(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

}  // namespace iolap
