#include "plan/lineage_blocks.h"

namespace iolap {

std::vector<ExprPtr> ComputeSpjLineage(const QueryPlan& plan,
                                       const Block& block) {
  std::vector<ExprPtr> lineage(block.spj_schema.num_columns(), nullptr);
  size_t offset = 0;
  for (const BlockInput& input : block.inputs) {
    if (input.kind == BlockInput::Kind::kBlockOutput) {
      const Block& src = plan.blocks[input.source_block];
      const size_t num_keys = src.group_by.size();
      // Key expressions: references to this input's group-key columns at
      // their position in the SPJ layout. Shared by every aggregate column
      // of the input.
      std::vector<ExprPtr> key_refs;
      key_refs.reserve(num_keys);
      for (size_t k = 0; k < num_keys; ++k) {
        const size_t col = offset + k;
        key_refs.push_back(Col(static_cast<int>(col),
                               block.spj_schema.column(col).name,
                               block.spj_schema.column(col).type));
      }
      for (size_t a = 0; a < src.aggs.size(); ++a) {
        const size_t col = offset + num_keys + a;
        lineage[col] = std::make_shared<AggLookupExpr>(
            input.source_block, static_cast<int>(num_keys + a), key_refs,
            block.spj_schema.column(col).type,
            src.aggs[a].output_name);
      }
    }
    offset += input.schema.num_columns();
  }
  return lineage;
}

}  // namespace iolap
