#ifndef IOLAP_PLAN_PLAN_VERIFIER_H_
#define IOLAP_PLAN_PLAN_VERIFIER_H_

#include <string>

#include "exec/expr_program.h"
#include "plan/logical_plan.h"

namespace iolap {

// Plan invariant prover: the upward half of the program verifier
// (exec/program_verifier.h). ProgramVerifier proves a program is internally
// sound; this pass proves the program *matches the plan fragment it will
// execute for* — the contract BlockExecutor otherwise takes on faith when
// it routes rows through the compiled path instead of the interpreter.
// Like the bytecode verifier it runs once per block at query Init and a
// failure means refuse-to-interpreter, so it can only cost speed. See
// docs/INTERNALS.md §10.

struct PlanVerifyResult {
  bool ok = true;
  std::string message;
};

/// Which plan fragment a compiled program claims to implement.
enum class ProgramRole {
  /// Per-row program: root 0 is the filter (when the block has one),
  /// followed by one root per aggregate argument, in aggs order.
  kRowProgram,
  /// Projection program of a pure-SPJ block: one root per projection.
  kProjection,
};

/// Statically checks `program` against `block` of `plan`:
///   - root count matches the fragment (filter + agg args, or projections);
///   - root register kinds agree with the plan's static output types
///     (a string-typed expression must land in a string register and vice
///     versa);
///   - every row load stays inside the block's SPJ schema;
///   - every aggregate probe site targets a strictly-upstream aggregate
///     block, a column inside that block's output schema (group keys first,
///     then aggregates — the AggregateRegistry::Lookup convention), with
///     exactly as many key registers as the source block has group keys.
/// Key *liveness* at probe time is the bytecode verifier's def-before-use
/// obligation; this pass proves the keys' arity against the plan.
PlanVerifyResult VerifyBlockProgram(const QueryPlan& plan, const Block& block,
                                    const ExprProgram& program,
                                    ProgramRole role);

}  // namespace iolap

#endif  // IOLAP_PLAN_PLAN_VERIFIER_H_
