#include "plan/plan_verifier.h"

#include <vector>

#include "core/expr.h"

namespace iolap {

namespace {

PlanVerifyResult Fail(std::string message) {
  return {false, std::move(message)};
}

}  // namespace

PlanVerifyResult VerifyBlockProgram(const QueryPlan& plan, const Block& block,
                                    const ExprProgram& program,
                                    ProgramRole role) {
  // Root arity and kind agreement against the plan's static types. The
  // binder fixed every expression's output_type before planning, so a
  // compiled root landing in the wrong register file would make
  // BlockExecutor read garbage (RootTruthy of a string register is
  // constant-false, RootValue boxes the wrong file).
  std::vector<const Expr*> expected;
  if (role == ProgramRole::kRowProgram) {
    if (block.filter != nullptr) expected.push_back(block.filter.get());
    for (const AggSpec& agg : block.aggs) expected.push_back(agg.arg.get());
  } else {
    for (const ExprPtr& proj : block.projections) {
      expected.push_back(proj.get());
    }
  }
  if (program.num_roots() != expected.size()) {
    return Fail("block " + std::to_string(block.id) + ": program has " +
                std::to_string(program.num_roots()) + " roots, plan expects " +
                std::to_string(expected.size()));
  }
  for (size_t r = 0; r < expected.size(); ++r) {
    const bool plan_str = expected[r]->output_type() == ValueType::kString;
    if (program.root_is_string(r) != plan_str) {
      return Fail("block " + std::to_string(block.id) + ": root " +
                  std::to_string(r) + " is a " +
                  (program.root_is_string(r) ? "string" : "numeric") +
                  " register but the plan types it " +
                  ValueTypeToString(expected[r]->output_type()));
    }
  }

  // Row loads must fit the SPJ schema every joined row actually has; the
  // bytecode verifier proved no load exceeds max_col(), so bounding the
  // claim bounds every access.
  if (program.max_col() >= static_cast<int>(block.spj_schema.num_columns())) {
    return Fail("block " + std::to_string(block.id) +
                ": program loads column " + std::to_string(program.max_col()) +
                " but the SPJ schema has " +
                std::to_string(block.spj_schema.num_columns()) + " columns");
  }

  // Aggregate probe sites must target strictly-upstream aggregate blocks
  // with the registry's column convention (group keys first, then
  // aggregates) and one key register per group key.
  for (size_t i = 0; i < program.num_agg_sites(); ++i) {
    const ExprProgram::AggSiteView site = program.agg_site_view(i);
    if (site.block_id < 0 || site.block_id >= block.id) {
      return Fail("block " + std::to_string(block.id) + ": agg site " +
                  std::to_string(i) + " targets block " +
                  std::to_string(site.block_id) +
                  " which is not strictly upstream");
    }
    const Block& source = plan.blocks[site.block_id];
    if (!source.has_aggregate()) {
      return Fail("block " + std::to_string(block.id) + ": agg site " +
                  std::to_string(i) + " targets non-aggregate block " +
                  std::to_string(site.block_id));
    }
    if (site.col < 0 ||
        site.col >= static_cast<int>(source.output_schema.num_columns())) {
      return Fail("block " + std::to_string(block.id) + ": agg site " +
                  std::to_string(i) + " reads column " +
                  std::to_string(site.col) + " of block " +
                  std::to_string(site.block_id) + " whose output has " +
                  std::to_string(source.output_schema.num_columns()) +
                  " columns");
    }
    if (site.num_keys != source.group_by.size()) {
      return Fail("block " + std::to_string(block.id) + ": agg site " +
                  std::to_string(i) + " probes with " +
                  std::to_string(site.num_keys) + " keys but block " +
                  std::to_string(site.block_id) + " groups by " +
                  std::to_string(source.group_by.size()) + " keys");
    }
  }

  return {};
}

}  // namespace iolap
