#ifndef IOLAP_PLAN_REWRITE_RULES_H_
#define IOLAP_PLAN_REWRITE_RULES_H_

#include "common/status.h"
#include "plan/logical_plan.h"

namespace iolap {

/// Statistics of one optimizer pass.
struct RewriteStats {
  /// Blocks decomposed by the query-decomposition rule.
  int decompositions = 0;
};

/// Applies the paper's Appendix B viewlet-transformation rewrites (after
/// DBToaster [10]) where they fire. Currently implemented: **query
/// decomposition** (Appendix B, rule 1):
///
///   γ_{A∪B, SUM(f1·f2)}(Q1 ⋈ Q2)
///     = γ_{A∪B, SUM(s1·s2)}( γ_{A∪K, s1=SUM(f1)}(Q1) ⋈ γ_{B∪K, s2=SUM(f2)}(Q2) )
///
/// pushing the group-by aggregation below the join when every aggregate
/// argument, group key and filter conjunct references columns of a single
/// input. SUM/COUNT aggregates decompose (a one-sided SUM multiplies the
/// other side's per-key COUNT); the join then operates on the two partial
/// aggregate relations, shrinking its cached state from the input
/// cardinalities to the per-key group counts — which is exactly the
/// benefit the paper describes (Appendix B / Example 4).
///
/// The rule fires only on two-input base-table blocks with deterministic
/// filters (uncertain predicates must stay above their aggregates) and
/// with non-empty equi-join keys. The rewritten plan is semantically
/// equivalent (asserted by the differential tests in
/// tests/rewrite_rules_test.cc).
Result<QueryPlan> ApplyRewriteRules(QueryPlan plan, RewriteStats* stats);

}  // namespace iolap

#endif  // IOLAP_PLAN_REWRITE_RULES_H_
