#include "plan/uncertainty_analysis.h"

#include "plan/lineage_blocks.h"

namespace iolap {

namespace {

bool ExprReferencesAggLookup(const ExprPtr& expr) {
  if (expr == nullptr) return false;
  std::vector<const AggLookupExpr*> lookups;
  expr->CollectAggLookups(&lookups);
  return !lookups.empty();
}

}  // namespace

Result<std::vector<BlockAnnotations>> AnalyzeUncertainty(
    const QueryPlan& plan) {
  std::vector<BlockAnnotations> annotations(plan.blocks.size());

  // Which blocks feed a downstream *multi-input* join (as opposed to
  // single-input snapshot consumers, which re-evaluate the producer's full
  // output per batch and tolerate revocable membership), and which are
  // referenced through scalar AggLookups?
  std::vector<bool> feeds_join(plan.blocks.size(), false);
  std::vector<bool> scalar_referenced(plan.blocks.size(), false);
  for (const Block& block : plan.blocks) {
    const bool snapshot_consumer =
        block.inputs.size() == 1 &&
        block.inputs[0].kind == BlockInput::Kind::kBlockOutput;
    for (const BlockInput& input : block.inputs) {
      if (input.kind == BlockInput::Kind::kBlockOutput && !snapshot_consumer) {
        feeds_join[input.source_block] = true;
      }
    }
    std::vector<const AggLookupExpr*> lookups;
    if (block.filter != nullptr) block.filter->CollectAggLookups(&lookups);
    for (const AggSpec& agg : block.aggs) agg.arg->CollectAggLookups(&lookups);
    for (const ExprPtr& p : block.projections) p->CollectAggLookups(&lookups);
    for (const AggLookupExpr* lookup : lookups) {
      scalar_referenced[lookup->block_id()] = true;
    }
  }

  for (size_t b = 0; b < plan.blocks.size(); ++b) {
    const Block& block = plan.blocks[b];
    BlockAnnotations& ann = annotations[b];

    ann.spj_lineage = ComputeSpjLineage(plan, block);
    ann.spj_attr_uncertain.resize(ann.spj_lineage.size());
    for (size_t c = 0; c < ann.spj_lineage.size(); ++c) {
      ann.spj_attr_uncertain[c] = ann.spj_lineage[c] != nullptr;
    }

    // Dynamic: any streamed scan, or any input from a dynamic block.
    for (const BlockInput& input : block.inputs) {
      if (input.kind == BlockInput::Kind::kBaseTable) {
        ann.dynamic = ann.dynamic || input.streamed;
      } else {
        ann.dynamic = ann.dynamic || annotations[input.source_block].dynamic;
      }
    }

    // SELECT rule (§4.1 / §5.2): the filter creates tuple uncertainty when
    // it reads uncertain attributes — via a scalar/correlated AggLookup or
    // via an uncertain SPJ column.
    ann.filter_uncertain =
        block.filter != nullptr &&
        block.filter->DependsOnUncertain(&ann.spj_lineage);

    ann.depends_on_uncertain =
        ann.filter_uncertain || ExprReferencesAggLookup(block.filter);
    for (size_t c = 0; c < ann.spj_attr_uncertain.size() &&
                       !ann.depends_on_uncertain;
         ++c) {
      ann.depends_on_uncertain = ann.spj_attr_uncertain[c];
    }

    ann.agg_arg_uncertain.resize(block.aggs.size(), false);
    for (size_t a = 0; a < block.aggs.size(); ++a) {
      ann.agg_arg_uncertain[a] =
          block.aggs[a].arg->DependsOnUncertain(&ann.spj_lineage);
      ann.depends_on_uncertain =
          ann.depends_on_uncertain || ann.agg_arg_uncertain[a];
      if (ann.dynamic && !block.aggs[a].fn->SupportsSampling()) {
        return Status::InvalidArgument(
            "aggregate '" + block.aggs[a].fn->name() +
            "' is not smooth under sampling and cannot run over the "
            "streamed relation (§3.3); drop it or un-stream the input");
      }
    }
    for (const ExprPtr& p : block.projections) {
      ann.depends_on_uncertain =
          ann.depends_on_uncertain || p->DependsOnUncertain(&ann.spj_lineage);
    }

    // Output tags.
    if (block.has_aggregate()) {
      ann.output_attr_uncertain.resize(block.output_schema.num_columns(),
                                       false);
      // AGGREGATE rule (§4.1): an aggregate value is uncertain if any
      // contributing tuple has tuple uncertainty (still-streaming input or
      // uncertain filter decisions) or reads uncertain attributes.
      for (size_t a = 0; a < block.aggs.size(); ++a) {
        ann.output_attr_uncertain[block.group_by.size() + a] =
            ann.dynamic || ann.filter_uncertain || ann.agg_arg_uncertain[a];
      }
      // Group membership is append-only (monotone sampling, §4.1), so seen
      // groups are certain — unless they exist only through uncertain
      // filter decisions.
      ann.output_tuple_uncertain = ann.filter_uncertain;
    } else {
      ann.output_attr_uncertain.resize(block.projections.size(), false);
      for (size_t p = 0; p < block.projections.size(); ++p) {
        ann.output_attr_uncertain[p] =
            block.projections[p]->DependsOnUncertain(&ann.spj_lineage);
      }
      ann.output_tuple_uncertain = ann.filter_uncertain || ann.dynamic;
    }

    if (feeds_join[b] && ann.filter_uncertain) {
      return Status::InvalidArgument(
          "block '" + block.debug_name +
          "' has an uncertain filter but feeds a downstream join input; "
          "push the predicate into the consuming block (the SQL binder "
          "does this for HAVING/IN subqueries)");
    }
    if (scalar_referenced[b] && ann.filter_uncertain) {
      return Status::InvalidArgument(
          "block '" + block.debug_name +
          "' has an uncertain filter but is referenced through a scalar "
          "aggregate lookup; its group membership could regress, leaving "
          "stale lookup entries. Restructure the query so the uncertain "
          "predicate sits in the consuming block");
    }
  }
  return annotations;
}

}  // namespace iolap
