#ifndef IOLAP_PLAN_LINEAGE_BLOCKS_H_
#define IOLAP_PLAN_LINEAGE_BLOCKS_H_

#include <vector>

#include "core/expr.h"
#include "plan/logical_plan.h"

namespace iolap {

/// Computes the per-column lineage of a block's SPJ row layout (§6.1).
///
/// Deterministic columns (base-table columns, group keys of upstream
/// outputs) get a null entry. Aggregate columns pulled in from an upstream
/// block's output get an AggLookupExpr keyed by the group-key columns of
/// that same input — the compile-time extraction of the paper's lineage
/// function, with only the per-row key left to evaluate at runtime.
///
/// The result vector is indexed by SPJ column and is what EvalContext's
/// `column_lineage` expects: trial and interval evaluation of a column
/// reference re-derives the column through this expression, and the OPT2
/// lazy-evaluation step refreshes stale state rows by re-evaluating exactly
/// these expressions.
std::vector<ExprPtr> ComputeSpjLineage(const QueryPlan& plan,
                                       const Block& block);

}  // namespace iolap

#endif  // IOLAP_PLAN_LINEAGE_BLOCKS_H_
