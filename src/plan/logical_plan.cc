#include "plan/logical_plan.h"

namespace iolap {

namespace {

Status ValidateExprColumns(const ExprPtr& expr, size_t width,
                           const std::string& where) {
  if (expr == nullptr) return Status::OK();
  switch (expr->kind()) {
    case Expr::Kind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(*expr);
      if (ref.index() < 0 || static_cast<size_t>(ref.index()) >= width) {
        return Status::Internal("column index out of range in " + where + ": " +
                                expr->ToString());
      }
      return Status::OK();
    }
    case Expr::Kind::kUnary: {
      const auto& e = static_cast<const UnaryExpr&>(*expr);
      return ValidateExprColumns(e.operand(), width, where);
    }
    case Expr::Kind::kBinary: {
      const auto& e = static_cast<const BinaryExpr&>(*expr);
      IOLAP_RETURN_IF_ERROR(ValidateExprColumns(e.left(), width, where));
      return ValidateExprColumns(e.right(), width, where);
    }
    case Expr::Kind::kCall: {
      const auto& e = static_cast<const CallExpr&>(*expr);
      for (const auto& arg : e.args()) {
        IOLAP_RETURN_IF_ERROR(ValidateExprColumns(arg, width, where));
      }
      return Status::OK();
    }
    case Expr::Kind::kAggLookup: {
      const auto& e = static_cast<const AggLookupExpr&>(*expr);
      for (const auto& key : e.key_exprs()) {
        IOLAP_RETURN_IF_ERROR(ValidateExprColumns(key, width, where));
      }
      return Status::OK();
    }
    case Expr::Kind::kLiteral:
      return Status::OK();
  }
  return Status::OK();
}

Status ValidateAggLookupTargets(const ExprPtr& expr, const QueryPlan& plan,
                                int block_id) {
  if (expr == nullptr) return Status::OK();
  std::vector<const AggLookupExpr*> lookups;
  expr->CollectAggLookups(&lookups);
  for (const AggLookupExpr* lookup : lookups) {
    if (lookup->block_id() < 0 || lookup->block_id() >= block_id) {
      return Status::Internal(
          "AggLookup must reference an earlier block (topological order): " +
          lookup->ToString());
    }
    const Block& target = plan.blocks[lookup->block_id()];
    if (!target.has_aggregate()) {
      return Status::Internal("AggLookup references non-aggregate block " +
                              std::to_string(lookup->block_id()));
    }
    if (lookup->agg_col() < 0 ||
        static_cast<size_t>(lookup->agg_col()) >=
            target.output_schema.num_columns()) {
      return Status::Internal("AggLookup column out of range: " +
                              lookup->ToString());
    }
    if (lookup->key_exprs().size() != target.group_by.size()) {
      return Status::Internal("AggLookup key arity mismatch: " +
                              lookup->ToString());
    }
  }
  return Status::OK();
}

}  // namespace

std::string QueryPlan::ToString() const {
  std::string out;
  for (const Block& block : blocks) {
    out += "Block " + std::to_string(block.id);
    if (!block.debug_name.empty()) out += " (" + block.debug_name + ")";
    out += ":\n";
    for (const BlockInput& input : block.inputs) {
      out += "  input: ";
      if (input.kind == BlockInput::Kind::kBaseTable) {
        out += input.table_name;
        if (input.streamed) out += " [streamed]";
      } else {
        out += "block#" + std::to_string(input.source_block);
      }
      if (!input.input_key_cols.empty()) {
        out += " joined on " + std::to_string(input.input_key_cols.size()) +
               " key(s)";
      }
      out += "\n";
    }
    if (block.filter != nullptr) {
      out += "  filter: " + block.filter->ToString() + "\n";
    }
    if (block.has_aggregate()) {
      out += "  group by:";
      for (const auto& g : block.group_by) out += " " + g->ToString();
      out += "\n  aggs:";
      for (const auto& agg : block.aggs) {
        out += " " + agg.fn->name() + "(" + agg.arg->ToString() + ") as " +
               agg.output_name;
      }
      out += "\n";
    } else {
      out += "  project:";
      for (size_t i = 0; i < block.projections.size(); ++i) {
        out += " " + block.projections[i]->ToString() + " as " +
               block.projection_names[i];
      }
      out += "\n";
    }
    out += "  output: " + block.output_schema.ToString() + "\n";
  }
  return out;
}

Status ValidatePlan(const QueryPlan& plan) {
  if (plan.blocks.empty()) {
    return Status::Internal("plan has no blocks");
  }
  if (plan.functions == nullptr) {
    return Status::Internal("plan has no function registry");
  }
  int streamed_inputs = 0;
  for (size_t b = 0; b < plan.blocks.size(); ++b) {
    const Block& block = plan.blocks[b];
    if (block.id != static_cast<int>(b)) {
      return Status::Internal("block ids must equal their position");
    }
    if (block.inputs.empty()) {
      return Status::Internal("block has no inputs");
    }
    size_t width = 0;
    for (size_t i = 0; i < block.inputs.size(); ++i) {
      const BlockInput& input = block.inputs[i];
      if (input.kind == BlockInput::Kind::kBlockOutput) {
        if (input.source_block < 0 || input.source_block >= block.id) {
          return Status::Internal("block input must reference earlier block");
        }
        const Block& src = plan.blocks[input.source_block];
        if (!src.has_aggregate()) {
          return Status::Internal(
              "block-output inputs must come from aggregate blocks");
        }
      } else if (input.streamed) {
        ++streamed_inputs;
      }
      if (input.prefix_key_cols.size() != input.input_key_cols.size()) {
        return Status::Internal("join key arity mismatch");
      }
      if (i == 0 && !input.prefix_key_cols.empty()) {
        return Status::Internal("first input cannot carry a join condition");
      }
      for (int k : input.prefix_key_cols) {
        if (k < 0 || static_cast<size_t>(k) >= width) {
          return Status::Internal("prefix join key out of range");
        }
      }
      for (int k : input.input_key_cols) {
        if (k < 0 || static_cast<size_t>(k) >= input.schema.num_columns()) {
          return Status::Internal("input join key out of range");
        }
      }
      width += input.schema.num_columns();
    }
    if (width != block.spj_schema.num_columns()) {
      return Status::Internal("spj_schema width mismatch");
    }

    IOLAP_RETURN_IF_ERROR(
        ValidateExprColumns(block.filter, width, "filter"));
    IOLAP_RETURN_IF_ERROR(
        ValidateAggLookupTargets(block.filter, plan, block.id));
    for (const auto& g : block.group_by) {
      IOLAP_RETURN_IF_ERROR(ValidateExprColumns(g, width, "group_by"));
      if (g->DependsOnUncertain(nullptr)) {
        return Status::InvalidArgument(
            "group-by keys over uncertain aggregates are unsupported (§3.3)");
      }
    }
    for (const auto& agg : block.aggs) {
      if (agg.fn == nullptr || agg.arg == nullptr) {
        return Status::Internal("incomplete aggregate spec");
      }
      IOLAP_RETURN_IF_ERROR(ValidateExprColumns(agg.arg, width, "agg arg"));
      IOLAP_RETURN_IF_ERROR(ValidateAggLookupTargets(agg.arg, plan, block.id));
    }
    for (const auto& p : block.projections) {
      IOLAP_RETURN_IF_ERROR(ValidateExprColumns(p, width, "projection"));
      IOLAP_RETURN_IF_ERROR(ValidateAggLookupTargets(p, plan, block.id));
    }
    if (block.has_aggregate()) {
      if (block.group_by.size() != block.group_by_names.size()) {
        return Status::Internal("group_by_names size mismatch");
      }
      if (block.output_schema.num_columns() !=
          block.group_by.size() + block.aggs.size()) {
        return Status::Internal("aggregate output schema width mismatch");
      }
    } else {
      if (block.projections.empty()) {
        return Status::Internal("non-aggregate block needs projections");
      }
      if (block.projections.size() != block.projection_names.size() ||
          block.projections.size() != block.output_schema.num_columns()) {
        return Status::Internal("projection output schema width mismatch");
      }
      if (b + 1 != plan.blocks.size()) {
        return Status::Internal(
            "only the top block may be a pure SPJ block; inner blocks must "
            "aggregate");
      }
    }
  }
  // Exactly one streamed base relation (possibly scanned by several blocks).
  if (!plan.streamed_table.empty() && streamed_inputs == 0) {
    return Status::Internal("streamed table is never scanned");
  }
  return Status::OK();
}

}  // namespace iolap
