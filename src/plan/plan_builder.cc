#include "plan/plan_builder.h"

namespace iolap {

BlockBuilder::BlockBuilder(PlanBuilder* parent, int id) : parent_(parent) {
  block_.id = id;
}

void BlockBuilder::RecordError(Status status) {
  if (parent_->first_error_.ok()) parent_->first_error_ = std::move(status);
}

BlockBuilder& BlockBuilder::Scan(const std::string& table) {
  auto entry = parent_->catalog_->Find(table);
  if (!entry.ok()) {
    RecordError(entry.status());
    return *this;
  }
  BlockInput input;
  input.kind = BlockInput::Kind::kBaseTable;
  input.table_name = table;
  input.streamed = (*entry)->streamed;
  input.schema = (*entry)->table->schema();
  AddInput(std::move(input), {}, {});
  return *this;
}

BlockBuilder& BlockBuilder::ScanBlock(int block_id) {
  if (block_id < 0 || block_id >= block_.id) {
    RecordError(Status::InvalidArgument("ScanBlock: bad block id"));
    return *this;
  }
  BlockInput input;
  input.kind = BlockInput::Kind::kBlockOutput;
  input.source_block = block_id;
  input.schema = parent_->builders_[block_id]->block_.output_schema;
  AddInput(std::move(input), {}, {});
  return *this;
}

BlockBuilder& BlockBuilder::Join(const std::string& table,
                                 const std::vector<std::string>& prefix_cols,
                                 const std::vector<std::string>& table_cols) {
  auto entry = parent_->catalog_->Find(table);
  if (!entry.ok()) {
    RecordError(entry.status());
    return *this;
  }
  BlockInput input;
  input.kind = BlockInput::Kind::kBaseTable;
  input.table_name = table;
  input.streamed = (*entry)->streamed;
  input.schema = (*entry)->table->schema();
  AddInput(std::move(input), prefix_cols, table_cols);
  return *this;
}

BlockBuilder& BlockBuilder::JoinBlock(
    int block_id, const std::vector<std::string>& prefix_cols,
    const std::vector<std::string>& block_cols) {
  if (block_id < 0 || block_id >= block_.id) {
    RecordError(Status::InvalidArgument("JoinBlock: bad block id"));
    return *this;
  }
  BlockInput input;
  input.kind = BlockInput::Kind::kBlockOutput;
  input.source_block = block_id;
  input.schema = parent_->builders_[block_id]->block_.output_schema;
  AddInput(std::move(input), prefix_cols, block_cols);
  return *this;
}

void BlockBuilder::AddInput(BlockInput input,
                            const std::vector<std::string>& prefix_cols,
                            const std::vector<std::string>& input_cols) {
  if (prefix_cols.size() != input_cols.size()) {
    RecordError(Status::InvalidArgument("join key arity mismatch"));
    return;
  }
  if (block_.inputs.empty() && !prefix_cols.empty()) {
    RecordError(
        Status::InvalidArgument("first input cannot carry a join condition"));
    return;
  }
  for (const std::string& name : prefix_cols) {
    auto col = block_.spj_schema.FindColumn(name);
    if (!col.ok()) {
      RecordError(col.status());
      return;
    }
    input.prefix_key_cols.push_back(*col);
  }
  for (const std::string& name : input_cols) {
    auto col = input.schema.FindColumn(name);
    if (!col.ok()) {
      RecordError(col.status());
      return;
    }
    input.input_key_cols.push_back(*col);
  }
  block_.spj_schema = block_.spj_schema.Concat(input.schema);
  block_.inputs.push_back(std::move(input));
}

BlockBuilder& BlockBuilder::Filter(ExprPtr predicate) {
  if (block_.filter != nullptr) {
    block_.filter = And(block_.filter, std::move(predicate));
  } else {
    block_.filter = std::move(predicate);
  }
  return *this;
}

BlockBuilder& BlockBuilder::GroupBy(const std::string& column) {
  ExprPtr ref = ColRef(column);
  if (ref != nullptr) {
    block_.group_by.push_back(ref);
    block_.group_by_names.push_back(column);
  }
  return *this;
}

BlockBuilder& BlockBuilder::Agg(const std::string& fn_name, ExprPtr arg,
                                std::string output_name) {
  std::shared_ptr<const AggFunction> fn;
  const AggKind kind = AggKindFromName(fn_name);
  if (kind != AggKind::kUdaf) {
    fn = MakeBuiltinAggFunction(kind);
  } else {
    auto udaf = parent_->functions_->FindAggregate(fn_name);
    if (!udaf.ok()) {
      RecordError(udaf.status());
      return *this;
    }
    fn = *udaf;
  }
  block_.aggs.push_back(AggSpec{std::move(fn), std::move(arg),
                                std::move(output_name)});
  return *this;
}

BlockBuilder& BlockBuilder::Project(ExprPtr expr, std::string name) {
  block_.projections.push_back(std::move(expr));
  block_.projection_names.push_back(std::move(name));
  return *this;
}

ExprPtr BlockBuilder::ColRef(const std::string& name) {
  auto col = block_.spj_schema.FindColumn(name);
  if (!col.ok()) {
    RecordError(col.status());
    return Lit(Value::Null());
  }
  return Col(*col, block_.spj_schema.column(*col).name,
             block_.spj_schema.column(*col).type);
}

ExprPtr BlockBuilder::SubqueryRef(int block_id,
                                  const std::string& agg_column) {
  return SubqueryRef(block_id, agg_column, {});
}

ExprPtr BlockBuilder::SubqueryRef(int block_id, const std::string& agg_column,
                                  std::vector<ExprPtr> key_exprs) {
  if (block_id < 0 || block_id >= block_.id) {
    RecordError(Status::InvalidArgument("SubqueryRef: bad block id"));
    return Lit(Value::Null());
  }
  const Block& target = parent_->builders_[block_id]->block_;
  auto col = target.output_schema.FindColumn(agg_column);
  if (!col.ok()) {
    RecordError(col.status());
    return Lit(Value::Null());
  }
  if (key_exprs.size() != target.group_by.size()) {
    RecordError(Status::InvalidArgument(
        "SubqueryRef key arity does not match target group-by"));
    return Lit(Value::Null());
  }
  return std::make_shared<AggLookupExpr>(
      block_id, *col, std::move(key_exprs),
      target.output_schema.column(*col).type, agg_column);
}

PlanBuilder::PlanBuilder(const Catalog* catalog,
                         std::shared_ptr<const FunctionRegistry> functions)
    : catalog_(catalog), functions_(std::move(functions)) {}

BlockBuilder& PlanBuilder::NewBlock(std::string debug_name) {
  // Finalize the previous block's output schema so later blocks can
  // reference it via ScanBlock/JoinBlock/SubqueryRef.
  if (!builders_.empty()) {
    Block& prev = builders_.back()->block_;
    if (prev.output_schema.num_columns() == 0 && prev.has_aggregate()) {
      Schema out;
      for (size_t i = 0; i < prev.group_by.size(); ++i) {
        out.AddColumn(
            Column(prev.group_by_names[i], prev.group_by[i]->output_type()));
      }
      for (const AggSpec& agg : prev.aggs) {
        out.AddColumn(Column(agg.output_name,
                             agg.fn->ResultType(agg.arg->output_type())));
      }
      prev.output_schema = std::move(out);
    }
  }
  auto builder =
      std::unique_ptr<BlockBuilder>(new BlockBuilder(this, builders_.size()));
  builder->block_.debug_name = std::move(debug_name);
  builders_.push_back(std::move(builder));
  return *builders_.back();
}

Result<QueryPlan> PlanBuilder::Build() {
  IOLAP_RETURN_IF_ERROR(first_error_);
  if (builders_.empty()) {
    return Status::InvalidArgument("plan has no blocks");
  }
  QueryPlan plan;
  plan.functions = functions_;
  for (auto& builder : builders_) {
    Block& block = builder->block_;
    // Compute output schema.
    if (block.has_aggregate()) {
      if (block.output_schema.num_columns() == 0) {
        Schema out;
        for (size_t i = 0; i < block.group_by.size(); ++i) {
          out.AddColumn(Column(block.group_by_names[i],
                               block.group_by[i]->output_type()));
        }
        for (const AggSpec& agg : block.aggs) {
          out.AddColumn(Column(agg.output_name,
                               agg.fn->ResultType(agg.arg->output_type())));
        }
        block.output_schema = std::move(out);
      }
    } else {
      Schema out;
      for (size_t i = 0; i < block.projections.size(); ++i) {
        out.AddColumn(Column(block.projection_names[i],
                             block.projections[i]->output_type()));
      }
      block.output_schema = std::move(out);
    }
    // Track the streamed relation.
    for (const BlockInput& input : block.inputs) {
      if (input.kind == BlockInput::Kind::kBaseTable && input.streamed) {
        if (!plan.streamed_table.empty() &&
            plan.streamed_table != input.table_name) {
          return Status::InvalidArgument(
              "queries may stream at most one relation (got " +
              plan.streamed_table + " and " + input.table_name + ")");
        }
        plan.streamed_table = input.table_name;
      }
    }
    plan.blocks.push_back(std::move(block));
  }
  IOLAP_RETURN_IF_ERROR(ValidatePlan(plan));
  return plan;
}

}  // namespace iolap
