#ifndef IOLAP_PLAN_LOGICAL_PLAN_H_
#define IOLAP_PLAN_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/aggregate.h"
#include "core/expr.h"
#include "core/function_registry.h"
#include "core/schema.h"

namespace iolap {

/// One aggregate output of a block: `fn(arg)` named `output_name`.
struct AggSpec {
  std::shared_ptr<const AggFunction> fn;
  ExprPtr arg;  // over the block's SPJ row layout
  std::string output_name;
};

/// One input relation of a block's select-project-join stage: either a base
/// table from the catalog or the keyed aggregate output of an upstream
/// block (the cross-lineage-block edge of §6.1).
struct BlockInput {
  enum class Kind { kBaseTable, kBlockOutput };

  Kind kind = Kind::kBaseTable;

  // kBaseTable fields.
  std::string table_name;
  bool streamed = false;  // resolved against the catalog at bind time

  // kBlockOutput fields.
  int source_block = -1;

  /// This input's column layout (copied from the table / upstream output).
  Schema schema;

  /// Equi-join condition attaching this input to the join prefix
  /// (inputs[0..k-1] concatenated): prefix_key_cols index the prefix
  /// schema, input_key_cols index this input's schema. Both empty for
  /// inputs[0]. Equal lengths; empty for a cross join.
  std::vector<int> prefix_key_cols;
  std::vector<int> input_key_cols;
};

/// A lineage block (§6.1): a maximal SPJA sub-plan. The mini-batch delta
/// engine executes a query as a DAG of blocks; aggregate outputs cross
/// block boundaries only as `(block, group-key) → value` references
/// (AggLookupExpr), which is exactly the paper's block-wise lineage.
///
/// Row layout inside the block is the SPJ layout: the concatenation of the
/// input schemas. `filter`, `group_by`, aggregate args and `projections`
/// are all expressions over that layout; projection-to-output happens at
/// the block boundary, so the non-deterministic set U can be stored in one
/// canonical layout.
struct Block {
  int id = 0;
  std::string debug_name;

  std::vector<BlockInput> inputs;

  /// Concatenation of input schemas (computed by the builder).
  Schema spj_schema;

  /// Filter over spj rows; may reference upstream aggregates via
  /// AggLookupExpr (that is what makes its decisions uncertain). Null =
  /// no filter.
  ExprPtr filter;

  /// Aggregate stage. A block with no aggs and no group_by is a pure SPJ
  /// block (only valid as the top block, feeding the sink).
  std::vector<ExprPtr> group_by;            // over spj rows; deterministic
  std::vector<std::string> group_by_names;  // output names of the keys
  std::vector<AggSpec> aggs;

  /// For a non-aggregate (top) block: the output projection over spj rows.
  std::vector<ExprPtr> projections;
  std::vector<std::string> projection_names;

  /// Output schema: group_by + aggs for aggregate blocks, projections
  /// otherwise (computed by the builder).
  Schema output_schema;

  bool has_aggregate() const { return !aggs.empty() || !group_by.empty(); }
};

/// Presentation of the final result (ORDER BY / LIMIT): applied by the
/// controller to every delivered partial result, after the incremental
/// semantics — it never affects what is computed, only how it is shown.
struct Presentation {
  struct Key {
    int column = 0;  // index into the top block's output schema
    bool descending = false;
  };
  std::vector<Key> order_by;
  int64_t limit = -1;  // -1 = unlimited

  bool empty() const { return order_by.empty() && limit < 0; }
};

/// A bound query: a DAG of lineage blocks in topological order (every
/// block's AggLookup references and kBlockOutput inputs point to blocks
/// with smaller indexes). blocks.back() is the top block whose output the
/// sink delivers to the user.
struct QueryPlan {
  std::vector<Block> blocks;
  std::shared_ptr<const FunctionRegistry> functions;
  /// Name of the (single) streamed relation; empty if none (fully static
  /// query, executed in one batch).
  std::string streamed_table;
  Presentation presentation;

  const Block& top() const { return blocks.back(); }

  std::string ToString() const;
};

/// Structural validation: topological order, key-arity match, column
/// indexes in range, group keys deterministic, exactly one streamed table,
/// sampled aggregates smooth (§3.3). Run by the builder and the binder.
Status ValidatePlan(const QueryPlan& plan);

}  // namespace iolap

#endif  // IOLAP_PLAN_LOGICAL_PLAN_H_
