#ifndef IOLAP_PLAN_UNCERTAINTY_ANALYSIS_H_
#define IOLAP_PLAN_UNCERTAINTY_ANALYSIS_H_

#include <vector>

#include "common/status.h"
#include "core/expr.h"
#include "plan/logical_plan.h"

namespace iolap {

/// Compile-time uncertainty annotations of one block, derived by the §4.1
/// propagation rules. The delta engine consults these to decide which
/// operator states to materialize and which rows need the variation-range
/// classification.
struct BlockAnnotations {
  /// Per SPJ column: lineage expression, null for deterministic columns
  /// (see ComputeSpjLineage).
  std::vector<ExprPtr> spj_lineage;

  /// u_A tags of the SPJ layout: true iff spj_lineage is non-null.
  std::vector<bool> spj_attr_uncertain;

  /// True if the block filter exists and its decision can depend on an
  /// uncertain aggregate — the SELECT rule of §4.1: such filters create
  /// tuple uncertainty, and §5's range classification applies to them.
  bool filter_uncertain = false;

  /// Per AggSpec: the aggregate input expression reads uncertain
  /// attributes (§4.2: such inputs cannot be folded into a sketch and must
  /// be re-evaluated every batch).
  std::vector<bool> agg_arg_uncertain;

  /// Per output column: u_A of the block's output (group keys and
  /// deterministic projections are false; aggregates over streamed data
  /// and uncertain projections are true).
  std::vector<bool> output_attr_uncertain;

  /// u_# of the block's output rows: true iff the membership of the output
  /// can still change (uncertain filter decisions upstream of the output).
  bool output_tuple_uncertain = false;

  /// The block receives new input rows after batch 1 (a streamed scan, or
  /// an upstream block that itself grows).
  bool dynamic = false;

  /// Any expression of the block references an uncertain aggregate. Under
  /// classical (HDA) delta rules, such a block must be re-evaluated on all
  /// accumulated data whenever the aggregate refines (§3.1); under iOLAP it
  /// is the block where fine-grained uncertainty tracking pays off.
  bool depends_on_uncertain = false;
};

/// Runs the §4.1 propagation over the plan, in block order. Errors:
/// - a block whose output is consumed as a join input downstream has an
///   uncertain filter (membership of join inputs must be append-only;
///   binder rewrites push such predicates into the consumer),
/// - a non-smooth aggregate (MIN/MAX) over sampled (dynamic) input (§3.3).
Result<std::vector<BlockAnnotations>> AnalyzeUncertainty(const QueryPlan& plan);

}  // namespace iolap

#endif  // IOLAP_PLAN_UNCERTAINTY_ANALYSIS_H_
