#ifndef IOLAP_PLAN_PLAN_BUILDER_H_
#define IOLAP_PLAN_PLAN_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "plan/logical_plan.h"

namespace iolap {

class PlanBuilder;

/// Fluent builder for a single lineage block. Obtained from
/// PlanBuilder::NewBlock(); errors (unknown tables/columns, bad keys) are
/// recorded and surfaced by PlanBuilder::Build(), so call chains stay
/// clean. Column references are resolved by name against the block's
/// evolving SPJ schema.
class BlockBuilder {
 public:
  /// Adds the first input: a base table scan.
  BlockBuilder& Scan(const std::string& table);

  /// Adds the first input: the output of an upstream aggregate block.
  BlockBuilder& ScanBlock(int block_id);

  /// Joins a base table on equi-keys: prefix_cols name columns of the
  /// already-joined inputs, table_cols name columns of `table`.
  BlockBuilder& Join(const std::string& table,
                     const std::vector<std::string>& prefix_cols,
                     const std::vector<std::string>& table_cols);

  /// Joins the output of an upstream aggregate block.
  BlockBuilder& JoinBlock(int block_id,
                          const std::vector<std::string>& prefix_cols,
                          const std::vector<std::string>& block_cols);

  /// Sets (replaces) the block filter.
  BlockBuilder& Filter(ExprPtr predicate);

  /// Adds a group-by key column (by name).
  BlockBuilder& GroupBy(const std::string& column);

  /// Adds an aggregate `fn_name(arg)` named `output_name`. fn_name is a
  /// built-in (count/sum/avg/min/max/var/stddev) or a registered UDAF.
  BlockBuilder& Agg(const std::string& fn_name, ExprPtr arg,
                    std::string output_name);

  /// Adds an output projection (non-aggregate top blocks only).
  BlockBuilder& Project(ExprPtr expr, std::string name);

  /// Resolves a column of the current SPJ schema to an expression.
  ExprPtr ColRef(const std::string& name);

  /// Builds a reference to a scalar (ungrouped) aggregate of an upstream
  /// block: the compiled form of an uncorrelated scalar subquery.
  ExprPtr SubqueryRef(int block_id, const std::string& agg_column);

  /// Keyed reference: the compiled form of a correlated subquery — the
  /// upstream group whose key equals `key_exprs` evaluated on this block's
  /// current row.
  ExprPtr SubqueryRef(int block_id, const std::string& agg_column,
                      std::vector<ExprPtr> key_exprs);

  int id() const { return block_.id; }

 private:
  friend class PlanBuilder;
  BlockBuilder(PlanBuilder* parent, int id);

  void AddInput(BlockInput input, const std::vector<std::string>& prefix_cols,
                const std::vector<std::string>& input_cols);
  void RecordError(Status status);

  PlanBuilder* parent_;
  Block block_;
};

/// Builds a QueryPlan programmatically. Usage:
///
///   PlanBuilder pb(&catalog, registry);
///   auto& inner = pb.NewBlock("inner_avg");
///   inner.Scan("sessions").Agg("avg", inner.ColRef("buffer_time"), "a");
///   auto& outer = pb.NewBlock("sbi");
///   outer.Scan("sessions")
///       .Filter(Gt(outer.ColRef("buffer_time"),
///                  outer.SubqueryRef(inner.id(), "a")))
///       .Agg("avg", outer.ColRef("play_time"), "avg_play");
///   IOLAP_ASSIGN_OR_RETURN(QueryPlan plan, pb.Build());
///
/// Blocks must be created in dependency order (the SQL binder and the
/// workload query definitions both do this naturally).
class PlanBuilder {
 public:
  PlanBuilder(const Catalog* catalog,
              std::shared_ptr<const FunctionRegistry> functions);

  /// Starts a new block. The returned reference stays valid until Build().
  BlockBuilder& NewBlock(std::string debug_name);

  /// Finalizes and validates the plan.
  Result<QueryPlan> Build();

 private:
  friend class BlockBuilder;

  const Catalog* catalog_;
  std::shared_ptr<const FunctionRegistry> functions_;
  std::vector<std::unique_ptr<BlockBuilder>> builders_;
  Status first_error_;
};

}  // namespace iolap

#endif  // IOLAP_PLAN_PLAN_BUILDER_H_
