#include "plan/rewrite_rules.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace iolap {

namespace {

// Which side(s) of a two-input block an expression's columns touch.
// Bit 1 = left input, bit 2 = right input.
int SideMask(const ExprPtr& expr, size_t left_width) {
  switch (expr->kind()) {
    case Expr::Kind::kLiteral:
      return 0;
    case Expr::Kind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(*expr);
      return static_cast<size_t>(ref.index()) < left_width ? 1 : 2;
    }
    case Expr::Kind::kUnary:
      return SideMask(static_cast<const UnaryExpr&>(*expr).operand(),
                      left_width);
    case Expr::Kind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(*expr);
      return SideMask(bin.left(), left_width) |
             SideMask(bin.right(), left_width);
    }
    case Expr::Kind::kCall: {
      int mask = 0;
      for (const auto& arg : static_cast<const CallExpr&>(*expr).args()) {
        mask |= SideMask(arg, left_width);
      }
      return mask;
    }
    case Expr::Kind::kAggLookup:
      return 3;  // treated as non-decomposable
  }
  return 3;
}

bool HasAggLookups(const ExprPtr& expr) {
  if (expr == nullptr) return false;
  std::vector<const AggLookupExpr*> lookups;
  expr->CollectAggLookups(&lookups);
  return !lookups.empty();
}

void FlattenAnd(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind() == Expr::Kind::kBinary) {
    const auto& bin = static_cast<const BinaryExpr&>(*expr);
    if (bin.op() == Expr::BinaryOp::kAnd) {
      FlattenAnd(bin.left(), out);
      FlattenAnd(bin.right(), out);
      return;
    }
  }
  out->push_back(expr);
}

// One original aggregate split into per-side factors (factor == nullptr
// means "the constant 1", i.e. that side contributes its per-key COUNT).
struct DecomposedAgg {
  ExprPtr left_factor;   // over the left input's column space
  ExprPtr right_factor;  // over the right input's column space
};

// Remaps an expression whose columns live in [left_width, total) down to
// the right input's own column space.
ExprPtr ToRightSpace(const ExprPtr& expr, size_t left_width, size_t total) {
  std::vector<int> mapping(total, -1);
  for (size_t c = left_width; c < total; ++c) {
    mapping[c] = static_cast<int>(c - left_width);
  }
  // Left columns keep a poisoned mapping: SideMask already guaranteed the
  // expression never touches them.
  for (size_t c = 0; c < left_width; ++c) mapping[c] = -1;
  return RemapColumns(expr, mapping);
}

// The partial aggregates one side must publish: expressions (in that
// side's column space) rendered for dedup, in insertion order.
class SideOutputs {
 public:
  // Returns the output column index (within the side block's aggregate
  // columns) of SUM(expr).
  int SumOf(const ExprPtr& expr) {
    const std::string rendered = expr->ToString();
    auto it = index_.find(rendered);
    if (it != index_.end()) return it->second;
    const int pos = static_cast<int>(exprs_.size());
    index_[rendered] = pos;
    exprs_.push_back(expr);
    return pos;
  }

  int CountColumn() { return SumOf(Lit(int64_t{1})); }

  const std::vector<ExprPtr>& exprs() const { return exprs_; }

 private:
  std::map<std::string, int> index_;
  std::vector<ExprPtr> exprs_;
};

// Attempts to decompose one block; returns the replacement blocks (left
// partial, right partial, recombining top) or nothing if the rule does not
// apply. `next_id` is the id of the first emitted block.
struct Decomposition {
  Block left;
  Block right;
  Block top;
};

std::optional<Decomposition> TryDecompose(const Block& block, int next_id) {
  if (!block.has_aggregate() || block.inputs.size() != 2) return std::nullopt;
  const BlockInput& in_left = block.inputs[0];
  const BlockInput& in_right = block.inputs[1];
  if (in_left.kind != BlockInput::Kind::kBaseTable ||
      in_right.kind != BlockInput::Kind::kBaseTable) {
    return std::nullopt;
  }
  if (in_right.prefix_key_cols.empty()) return std::nullopt;  // cross join
  const size_t left_width = in_left.schema.num_columns();
  const size_t total = block.spj_schema.num_columns();

  // Filter: deterministic, single-sided conjuncts only.
  std::vector<ExprPtr> conjuncts;
  FlattenAnd(block.filter, &conjuncts);
  std::vector<ExprPtr> left_filters;
  std::vector<ExprPtr> right_filters;
  for (const ExprPtr& conj : conjuncts) {
    if (HasAggLookups(conj)) return std::nullopt;
    const int mask = SideMask(conj, left_width);
    if (mask == 3) return std::nullopt;
    if (mask == 2) {
      right_filters.push_back(ToRightSpace(conj, left_width, total));
    } else {
      left_filters.push_back(conj);
    }
  }

  // Group keys: bare columns, one side each.
  struct KeyRef {
    bool left;
    int col;  // in the owning side's column space
  };
  std::vector<KeyRef> group_keys;
  for (const ExprPtr& key : block.group_by) {
    if (key->kind() != Expr::Kind::kColumnRef) return std::nullopt;
    const int index = static_cast<const ColumnRefExpr&>(*key).index();
    if (static_cast<size_t>(index) < left_width) {
      group_keys.push_back({true, index});
    } else {
      group_keys.push_back({false, index - static_cast<int>(left_width)});
    }
  }

  // Aggregates: SUM / COUNT with per-side factors.
  std::vector<DecomposedAgg> decomposed;
  for (const AggSpec& agg : block.aggs) {
    if (HasAggLookups(agg.arg)) return std::nullopt;
    const std::string fn = agg.fn->name();
    if (fn != "sum" && fn != "count") return std::nullopt;
    DecomposedAgg d;
    if (fn == "count") {
      // COUNT(expr): only count(*) (a never-null literal) decomposes
      // safely into C1·C2.
      if (agg.arg->kind() != Expr::Kind::kLiteral) return std::nullopt;
    } else {
      const int mask = SideMask(agg.arg, left_width);
      if (mask == 3) {
        // Must be a top-level product with single-sided factors.
        if (agg.arg->kind() != Expr::Kind::kBinary) return std::nullopt;
        const auto& bin = static_cast<const BinaryExpr&>(*agg.arg);
        if (bin.op() != Expr::BinaryOp::kMul) return std::nullopt;
        const int lm = SideMask(bin.left(), left_width);
        const int rm = SideMask(bin.right(), left_width);
        if (lm == 3 || rm == 3 || (lm & rm) != 0 || lm == 0 || rm == 0) {
          return std::nullopt;
        }
        const ExprPtr& lf = lm == 1 ? bin.left() : bin.right();
        const ExprPtr& rf = lm == 1 ? bin.right() : bin.left();
        d.left_factor = lf;
        d.right_factor = ToRightSpace(rf, left_width, total);
      } else if (mask == 2) {
        d.right_factor = ToRightSpace(agg.arg, left_width, total);
      } else {
        d.left_factor = agg.arg;  // mask 0 or 1
      }
    }
    decomposed.push_back(std::move(d));
  }

  // ---- build the per-side partial blocks --------------------------------
  auto side_name = [&](size_t col, bool left) {
    return left ? block.spj_schema.column(col).name
                : in_right.schema.column(col).name;
  };

  Decomposition result;
  SideOutputs left_outputs;
  SideOutputs right_outputs;

  auto build_side = [&](bool left, const BlockInput& input,
                        std::vector<ExprPtr> filters,
                        const std::vector<int>& join_keys, int id) {
    Block side;
    side.id = id;
    side.debug_name = block.debug_name + (left ? "_lpart" : "_rpart");
    BlockInput scan = input;
    scan.prefix_key_cols.clear();
    scan.input_key_cols.clear();
    side.spj_schema = scan.schema;
    side.inputs.push_back(std::move(scan));
    side.filter = Conjunction(std::move(filters));
    // Keys: the block's own group keys on this side, then the join keys.
    std::set<int> seen;
    auto add_key = [&](int col) {
      if (!seen.insert(col).second) return;
      side.group_by.push_back(Col(col, side_name(col, left),
                                  side.spj_schema.column(col).type));
      side.group_by_names.push_back(side.spj_schema.column(col).name);
    };
    for (const KeyRef& key : group_keys) {
      if (key.left == left) add_key(key.col);
    }
    for (int col : join_keys) add_key(col);
    return std::pair<Block, std::set<int>>(std::move(side), std::move(seen));
  };

  // Join key columns in each side's own space.
  std::vector<int> left_join_keys = in_right.prefix_key_cols;
  std::vector<int> right_join_keys = in_right.input_key_cols;

  auto [left_block, left_key_set] = build_side(
      true, in_left, std::move(left_filters), left_join_keys, next_id);
  auto [right_block, right_key_set] = build_side(
      false, in_right, std::move(right_filters), right_join_keys, next_id + 1);
  (void)left_key_set;
  (void)right_key_set;

  // Partial sums each side publishes (dedup'd across aggregates). Every
  // aggregate needs a factor from both sides; a missing factor becomes the
  // side's per-key COUNT (SUM of 1).
  struct TopAgg {
    int left_col;   // aggregate column index within left partials
    int right_col;  // within right partials
  };
  std::vector<TopAgg> top_aggs;
  for (const DecomposedAgg& d : decomposed) {
    TopAgg top;
    top.left_col = d.left_factor != nullptr
                       ? left_outputs.SumOf(d.left_factor)
                       : left_outputs.CountColumn();
    top.right_col = d.right_factor != nullptr
                        ? right_outputs.SumOf(d.right_factor)
                        : right_outputs.CountColumn();
    top_aggs.push_back(top);
  }

  auto finish_side = [](Block* side, const SideOutputs& outputs) {
    for (size_t i = 0; i < outputs.exprs().size(); ++i) {
      side->aggs.push_back(AggSpec{MakeBuiltinAggFunction(AggKind::kSum),
                                   outputs.exprs()[i],
                                   "s" + std::to_string(i)});
    }
    Schema out;
    for (size_t k = 0; k < side->group_by.size(); ++k) {
      out.AddColumn(
          Column(side->group_by_names[k], side->group_by[k]->output_type()));
    }
    for (const AggSpec& agg : side->aggs) {
      out.AddColumn(Column(agg.output_name,
                           agg.fn->ResultType(agg.arg->output_type())));
    }
    side->output_schema = std::move(out);
  };
  finish_side(&left_block, left_outputs);
  finish_side(&right_block, right_outputs);

  // Positions of columns within each side's output schema.
  auto key_position = [](const Block& side, int col_in_side) {
    for (size_t k = 0; k < side.group_by.size(); ++k) {
      if (static_cast<const ColumnRefExpr&>(*side.group_by[k]).index() ==
          col_in_side) {
        return static_cast<int>(k);
      }
    }
    return -1;
  };

  // ---- the recombining top block -----------------------------------------
  Block top;
  top.id = next_id + 2;
  top.debug_name = block.debug_name + "_recombine";
  BlockInput left_in;
  left_in.kind = BlockInput::Kind::kBlockOutput;
  left_in.source_block = left_block.id;
  left_in.schema = left_block.output_schema;
  top.spj_schema = left_in.schema;
  top.inputs.push_back(std::move(left_in));

  BlockInput right_in;
  right_in.kind = BlockInput::Kind::kBlockOutput;
  right_in.source_block = right_block.id;
  right_in.schema = right_block.output_schema;
  for (size_t k = 0; k < left_join_keys.size(); ++k) {
    right_in.prefix_key_cols.push_back(
        key_position(left_block, left_join_keys[k]));
    right_in.input_key_cols.push_back(
        key_position(right_block, right_join_keys[k]));
  }
  top.spj_schema = top.spj_schema.Concat(right_in.schema);
  top.inputs.push_back(std::move(right_in));

  const int right_offset = static_cast<int>(left_block.output_schema.num_columns());
  // Group keys in the original order, resolved into the joined layout.
  for (size_t g = 0; g < group_keys.size(); ++g) {
    const KeyRef& key = group_keys[g];
    const int pos = key.left
                        ? key_position(left_block, key.col)
                        : right_offset + key_position(right_block, key.col);
    top.group_by.push_back(Col(pos, top.spj_schema.column(pos).name,
                               top.spj_schema.column(pos).type));
    top.group_by_names.push_back(block.group_by_names[g]);
  }
  const int left_agg_base = static_cast<int>(left_block.group_by.size());
  const int right_agg_base =
      right_offset + static_cast<int>(right_block.group_by.size());
  for (size_t a = 0; a < block.aggs.size(); ++a) {
    const int lc = left_agg_base + top_aggs[a].left_col;
    const int rc = right_agg_base + top_aggs[a].right_col;
    ExprPtr product = Mul(Col(lc, top.spj_schema.column(lc).name,
                              top.spj_schema.column(lc).type),
                          Col(rc, top.spj_schema.column(rc).name,
                              top.spj_schema.column(rc).type));
    top.aggs.push_back(AggSpec{MakeBuiltinAggFunction(AggKind::kSum),
                               std::move(product), block.aggs[a].output_name});
  }
  // The rewritten block's output schema must match the original exactly
  // (downstream consumers address it by column index).
  top.output_schema = block.output_schema;

  result.left = std::move(left_block);
  result.right = std::move(right_block);
  result.top = std::move(top);
  return result;
}

// Rewrites AggLookup block ids through `id_map`.
ExprPtr RemapLookupBlocks(const ExprPtr& expr,
                          const std::vector<int>& id_map) {
  if (expr == nullptr) return expr;
  switch (expr->kind()) {
    case Expr::Kind::kLiteral:
    case Expr::Kind::kColumnRef:
      return expr;
    case Expr::Kind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(*expr);
      return std::make_shared<UnaryExpr>(
          unary.op(), RemapLookupBlocks(unary.operand(), id_map),
          unary.output_type());
    }
    case Expr::Kind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(*expr);
      return std::make_shared<BinaryExpr>(
          bin.op(), RemapLookupBlocks(bin.left(), id_map),
          RemapLookupBlocks(bin.right(), id_map), bin.output_type());
    }
    case Expr::Kind::kCall: {
      const auto& call = static_cast<const CallExpr&>(*expr);
      std::vector<ExprPtr> args;
      for (const auto& arg : call.args()) {
        args.push_back(RemapLookupBlocks(arg, id_map));
      }
      return std::make_shared<CallExpr>(call.name(), std::move(args),
                                        call.output_type());
    }
    case Expr::Kind::kAggLookup: {
      const auto& lookup = static_cast<const AggLookupExpr&>(*expr);
      std::vector<ExprPtr> keys;
      for (const auto& key : lookup.key_exprs()) {
        keys.push_back(RemapLookupBlocks(key, id_map));
      }
      return std::make_shared<AggLookupExpr>(
          id_map[lookup.block_id()], lookup.agg_col(), std::move(keys),
          lookup.output_type(), lookup.ToString());
    }
  }
  return expr;
}

void RemapBlockReferences(Block* block, const std::vector<int>& id_map) {
  for (BlockInput& input : block->inputs) {
    if (input.kind == BlockInput::Kind::kBlockOutput) {
      input.source_block = id_map[input.source_block];
    }
  }
  block->filter = RemapLookupBlocks(block->filter, id_map);
  for (ExprPtr& g : block->group_by) g = RemapLookupBlocks(g, id_map);
  for (AggSpec& agg : block->aggs) {
    agg.arg = RemapLookupBlocks(agg.arg, id_map);
  }
  for (ExprPtr& p : block->projections) p = RemapLookupBlocks(p, id_map);
}

}  // namespace

Result<QueryPlan> ApplyRewriteRules(QueryPlan plan, RewriteStats* stats) {
  QueryPlan rewritten;
  rewritten.functions = plan.functions;
  rewritten.streamed_table = plan.streamed_table;

  std::vector<int> id_map(plan.blocks.size(), -1);
  for (size_t b = 0; b < plan.blocks.size(); ++b) {
    Block block = std::move(plan.blocks[b]);
    // Earlier blocks may have moved: fix references first.
    RemapBlockReferences(&block, id_map);
    const int next_id = static_cast<int>(rewritten.blocks.size());
    auto decomposition = TryDecompose(block, next_id);
    if (decomposition.has_value()) {
      if (stats != nullptr) ++stats->decompositions;
      id_map[b] = decomposition->top.id;
      rewritten.blocks.push_back(std::move(decomposition->left));
      rewritten.blocks.push_back(std::move(decomposition->right));
      rewritten.blocks.push_back(std::move(decomposition->top));
    } else {
      block.id = next_id;
      id_map[b] = next_id;
      rewritten.blocks.push_back(std::move(block));
    }
  }
  IOLAP_RETURN_IF_ERROR(ValidatePlan(rewritten));
  return rewritten;
}

}  // namespace iolap
