#ifndef IOLAP_COMMON_RANDOM_H_
#define IOLAP_COMMON_RANDOM_H_

#include <cstdint>

#include "common/hash.h"

namespace iolap {

/// Deterministic xoshiro256**-based pseudo-random generator. Every use of
/// randomness in the library (data generation, batch shuffling, bootstrap
/// multiplicities) goes through this type so runs are reproducible from a
/// single seed.
class Rng {
 public:
  /// Seeds the four lanes from a single 64-bit seed via SplitMix64.
  explicit Rng(uint64_t seed);

  /// Deterministic per-lane split: the generator worker thread `lane`
  /// (0-based) uses when a parallel phase needs local randomness. The
  /// stream is a pure function of (seed, lane) — SplitMix64 over
  /// seed ^ lane — so results do not depend on which OS thread executes
  /// which lane, nor on the thread count of lanes that draw nothing.
  static Rng ForLane(uint64_t seed, uint64_t lane);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). Returns 0 when bound <= 1 (a bound of 0 would
  /// otherwise hit `% 0`). Uses rejection sampling to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Exponential with rate `lambda`.
  double NextExponential(double lambda);

  /// Zipf-distributed integer in [0, n) with exponent `s` (s = 0 is
  /// uniform). Uses the rejection-inversion method of Hörmann (adequate for
  /// the skewed key distributions of the synthetic workloads).
  uint64_t NextZipf(uint64_t n, double s);

  /// Poisson with small mean (Knuth's algorithm; used with mean 1 for the
  /// poissonized bootstrap).
  int NextPoisson(double mean);

 private:
  uint64_t state_[4];
};

/// Stateless Poisson(1) draw keyed by (stream, index). The poissonized
/// bootstrap needs the multiplicity of row r in trial t to be a pure
/// function of (r, t) so that re-processing a tuple (delta updates, failure
/// recovery) sees the same multiplicities the first pass saw.
int PoissonOneAt(uint64_t stream, uint64_t index);

}  // namespace iolap

#endif  // IOLAP_COMMON_RANDOM_H_
