#ifndef IOLAP_COMMON_MUTEX_H_
#define IOLAP_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace iolap {

/// Annotated wrapper over std::mutex. The standard-library lock types carry
/// no thread-safety attributes, so Clang's analysis cannot see when a raw
/// std::mutex is held; every mutex that guards shared engine state uses
/// this type (and MutexLock / CondVar below) instead. Zero overhead: the
/// wrapper is a plain std::mutex plus compile-time attributes.
class IOLAP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() IOLAP_ACQUIRE() { mu_.lock(); }
  void Unlock() IOLAP_RELEASE() { mu_.unlock(); }
  bool TryLock() IOLAP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// BasicLockable spelling, so the type composes with std::scoped_lock
  /// and std::condition_variable_any (see CondVar::Wait).
  void lock() IOLAP_ACQUIRE() { mu_.lock(); }
  void unlock() IOLAP_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex, visible to the analysis (a std::lock_guard over a
/// Mutex would compile but leave the capability untracked).
class IOLAP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) IOLAP_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() IOLAP_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Callers hold the mutex and wait in
/// an explicit predicate loop:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
///
/// (The predicate-lambda overload of std::condition_variable is deliberately
/// not mirrored: the lambda body would be analyzed as a separate function
/// that reads guarded members without a visible capability.)
class CondVar {
 public:
  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning — so from the analysis's point of view the capability is
  /// held across the call, which matches what the caller may assume.
  void Wait(Mutex& mu) IOLAP_REQUIRES(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// A virtual capability with no runtime state: names a single-threaded
/// execution *phase* rather than a lock. The engine's correctness argument
/// (docs/INTERNALS.md "Parallelism model") splits each batch into parallel
/// evaluation phases and a serial apply phase that performs all state
/// mutation; mutation-side APIs declare IOLAP_REQUIRES(role) on the phase's
/// ThreadRole, and the driving thread enters the phase with
/// ScopedThreadRole. Acquire/Release are no-ops at runtime — the capability
/// exists purely so Clang can reject a mutation reached from a parallel
/// lambda at compile time.
class IOLAP_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void Acquire() IOLAP_ACQUIRE() {}
  void Release() IOLAP_RELEASE() {}
  /// Tells the analysis the phase is active for the rest of the calling
  /// scope — for code reached only from inside the phase via paths the
  /// intraprocedural analysis cannot see (e.g. a local lambda invoked from
  /// the serial loop).
  void AssertHeld() const IOLAP_ASSERT_CAPABILITY(this) {}
};

/// RAII phase entry for ThreadRole.
class IOLAP_SCOPED_CAPABILITY ScopedThreadRole {
 public:
  explicit ScopedThreadRole(ThreadRole& role) IOLAP_ACQUIRE(role)
      : role_(role) {
    role_.Acquire();
  }
  ~ScopedThreadRole() IOLAP_RELEASE() { role_.Release(); }

  ScopedThreadRole(const ScopedThreadRole&) = delete;
  ScopedThreadRole& operator=(const ScopedThreadRole&) = delete;

 private:
  ThreadRole& role_;
};

}  // namespace iolap

#endif  // IOLAP_COMMON_MUTEX_H_
