#ifndef IOLAP_COMMON_THREAD_ANNOTATIONS_H_
#define IOLAP_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis annotations (no-ops on other compilers).
//
// The engine's exactness guarantee under intra-batch parallelism (results
// bit-identical at every thread count; docs/INTERNALS.md "Parallelism
// model") rests on invariants — lane-split Rngs, serial apply replay,
// mutex-guarded caches — that TSan can only check on the interleavings a
// given run happens to explore. These annotations move the checking to
// compile time: building with Clang and -Wthread-safety verifies, on every
// build, that guarded state is only touched with its capability held.
//
// Conventions (see docs/INTERNALS.md §7 "Static analysis"):
//  * Mutex-protected members carry IOLAP_GUARDED_BY(mu) and are locked via
//    the annotated iolap::Mutex / iolap::MutexLock wrappers (common/mutex.h)
//    rather than raw std::mutex, which Clang cannot track.
//  * Single-threaded execution *phases* (the engine's serial apply phase)
//    are modeled as no-op capabilities (iolap::ThreadRole): functions that
//    may only run inside the phase declare IOLAP_REQUIRES(role), and the
//    driver enters the phase with iolap::ScopedThreadRole. There is no
//    runtime lock — the capability exists purely for the analysis.
//
// The macro set mirrors the de-facto standard spelling (Abseil / Clang
// documentation) under an IOLAP_ prefix.

#if defined(__clang__) && defined(__has_attribute)
#define IOLAP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define IOLAP_THREAD_ANNOTATION_(x)  // no-op
#endif

// Declares that a class models a capability (a lock, or a virtual
// capability such as an execution-phase role). `x` names the capability
// kind in diagnostics, e.g. "mutex" or "role".
#define IOLAP_CAPABILITY(x) IOLAP_THREAD_ANNOTATION_(capability(x))

// Declares an RAII class whose constructor acquires and destructor
// releases a capability.
#define IOLAP_SCOPED_CAPABILITY IOLAP_THREAD_ANNOTATION_(scoped_lockable)

// Declares that a data member is protected by the given capability: reads
// require the capability held (shared or exclusive), writes require it
// held exclusively.
#define IOLAP_GUARDED_BY(x) IOLAP_THREAD_ANNOTATION_(guarded_by(x))

// As IOLAP_GUARDED_BY, but for the data *pointed to* by a pointer member.
#define IOLAP_PT_GUARDED_BY(x) IOLAP_THREAD_ANNOTATION_(pt_guarded_by(x))

// Lock-ordering declarations (deadlock prevention).
#define IOLAP_ACQUIRED_BEFORE(...) \
  IOLAP_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define IOLAP_ACQUIRED_AFTER(...) \
  IOLAP_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// The calling thread must hold the capability (exclusively / shared) to
// call this function; the function does not acquire or release it.
#define IOLAP_REQUIRES(...) \
  IOLAP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define IOLAP_REQUIRES_SHARED(...) \
  IOLAP_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// The function acquires / releases the capability (no argument = `this`).
#define IOLAP_ACQUIRE(...) \
  IOLAP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define IOLAP_ACQUIRE_SHARED(...) \
  IOLAP_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define IOLAP_RELEASE(...) \
  IOLAP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define IOLAP_RELEASE_SHARED(...) \
  IOLAP_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

// The function attempts to acquire the capability; the first argument is
// the return value that signals success.
#define IOLAP_TRY_ACQUIRE(...) \
  IOLAP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// The calling thread must NOT hold the capability (guards against
// self-deadlock on non-reentrant locks).
#define IOLAP_EXCLUDES(...) IOLAP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Asserts (to the analysis only) that the capability is held from this
// call onward in the calling scope — the escape hatch for code reached
// only via paths the intraprocedural analysis cannot see.
#define IOLAP_ASSERT_CAPABILITY(x) \
  IOLAP_THREAD_ANNOTATION_(assert_capability(x))

// The function returns a reference to the given capability.
#define IOLAP_RETURN_CAPABILITY(x) IOLAP_THREAD_ANNOTATION_(lock_returned(x))

// Opts a function out of the analysis entirely. Use sparingly and leave a
// comment explaining why the invariant holds anyway.
#define IOLAP_NO_THREAD_SAFETY_ANALYSIS \
  IOLAP_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // IOLAP_COMMON_THREAD_ANNOTATIONS_H_
