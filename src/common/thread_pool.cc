#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"

namespace iolap {

namespace {

/// Executes one parallel task body. For idempotent bodies the
/// pool-task-fault failpoint simulates a worker dying *after* its (partial
/// or complete) work: the doomed attempt runs, "crashes", and the body is
/// re-run — idempotency makes the duplicate work invisible, which is
/// precisely the property the injection exercises. `detail` is the task's
/// first index: deterministic per task, though the order in which
/// concurrent tasks consult the failpoint follows scheduling (hit-count
/// activation modes pick a scheduling-dependent task; `at:`/`prob:` keyed
/// on the detail do not).
void RunTaskBody(bool idempotent, uint64_t detail,
                 const std::function<void()>& body) {
  if (idempotent && IOLAP_FAILPOINT(Failpoint::kPoolTaskFault, detail)) {
    try {
      body();
      throw FailpointInjectedError("pool-task-fault");
    } catch (const FailpointInjectedError&) {
      // Transient crash absorbed; retry below.
    }
  }
  body();
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  task_ready_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::SubmitToGroup(TaskGroup* group, std::function<void()> task) {
  if (workers_.empty()) {
    // Inline mode: execute on the caller. Exceptions propagate naturally,
    // matching the rethrow-on-caller contract of the pooled path.
    task();
    return;
  }
  {
    MutexLock lock(mu_);
    tasks_.emplace(group, std::move(task));
    if (group == nullptr) {
      ++in_flight_;
    } else {
      MutexLock group_lock(group->mu);
      ++group->remaining;
    }
  }
  task_ready_.NotifyOne();
}

void ThreadPool::Submit(std::function<void()> task) {
  SubmitToGroup(nullptr, std::move(task));
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    while (in_flight_ != 0) all_done_.Wait(mu_);
    error = std::exchange(submit_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::WaitGroup(TaskGroup* group) {
  std::exception_ptr error;
  {
    MutexLock lock(group->mu);
    while (group->remaining != 0) group->done.Wait(group->mu);
    error = std::exchange(group->first_error, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn,
                             bool idempotent) {
  if (workers_.empty() || count <= 1) {
    RunTaskBody(idempotent, 0, [count, &fn] {
      for (size_t i = 0; i < count; ++i) fn(i);
    });
    return;
  }
  // Chunk so each worker receives at most a handful of tasks.
  const size_t chunks = std::min(count, workers_.size() * 4);
  const size_t per_chunk = (count + chunks - 1) / chunks;
  TaskGroup group;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * per_chunk;
    const size_t end = std::min(count, begin + per_chunk);
    if (begin >= end) break;
    SubmitToGroup(&group, [begin, end, &fn, idempotent] {
      RunTaskBody(idempotent, begin, [begin, end, &fn] {
        for (size_t i = begin; i < end; ++i) fn(i);
      });
    });
  }
  WaitGroup(&group);
}

void ThreadPool::ParallelRanges(
    size_t count,
    const std::function<void(size_t, size_t, size_t)>& fn,
    bool idempotent) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    RunTaskBody(idempotent, 0, [count, &fn] { fn(0, count, 0); });
    return;
  }
  const size_t lanes = std::min(count, num_lanes());
  const size_t per_lane = (count + lanes - 1) / lanes;
  TaskGroup group;
  for (size_t lane = 0; lane < lanes; ++lane) {
    const size_t begin = lane * per_lane;
    const size_t end = std::min(count, begin + per_lane);
    if (begin >= end) break;
    SubmitToGroup(&group, [begin, end, lane, &fn, idempotent] {
      RunTaskBody(idempotent, begin,
                  [begin, end, lane, &fn] { fn(begin, end, lane); });
    });
  }
  WaitGroup(&group);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    TaskGroup* group = nullptr;
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && tasks_.empty()) task_ready_.Wait(mu_);
      if (tasks_.empty()) return;  // shutdown with drained queue
      group = tasks_.front().first;
      task = std::move(tasks_.front().second);
      tasks_.pop();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    if (group != nullptr) {
      MutexLock lock(group->mu);
      if (error && !group->first_error) group->first_error = error;
      if (--group->remaining == 0) group->done.NotifyAll();
    } else {
      MutexLock lock(mu_);
      if (error && !submit_error_) submit_error_ = error;
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace iolap
