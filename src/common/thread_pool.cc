#include "common/thread_pool.h"

#include <algorithm>

namespace iolap {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  if (workers_.empty() || count <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Chunk so each worker receives at most a handful of tasks.
  const size_t chunks = std::min(count, workers_.size() * 4);
  const size_t per_chunk = (count + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * per_chunk;
    const size_t end = std::min(count, begin + per_chunk);
    if (begin >= end) break;
    Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace iolap
