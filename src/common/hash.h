#ifndef IOLAP_COMMON_HASH_H_
#define IOLAP_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace iolap {

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function.
/// Used both for hash tables and to derive deterministic per-(row, trial)
/// random streams for the poissonized bootstrap.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Combines two 64-bit hashes (order-sensitive).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) +
                       (seed >> 2)));
}

/// FNV-1a over bytes; adequate for string grouping/join keys at our scale.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return Mix64(h);
}

}  // namespace iolap

#endif  // IOLAP_COMMON_HASH_H_
