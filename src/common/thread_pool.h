#ifndef IOLAP_COMMON_THREAD_POOL_H_
#define IOLAP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace iolap {

/// Fixed-size worker pool used for intra-batch parallelism (parallel scans
/// and partial-aggregate merges). The pool is optional: with num_threads == 0
/// tasks run inline on the caller, which keeps single-threaded runs fully
/// deterministic and easy to debug.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; inline execution when the pool has no workers.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(i) for i in [0, count), partitioned across the pool, and waits.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace iolap

#endif  // IOLAP_COMMON_THREAD_POOL_H_
