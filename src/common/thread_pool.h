#ifndef IOLAP_COMMON_THREAD_POOL_H_
#define IOLAP_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace iolap {

/// Fixed-size worker pool used for intra-batch parallelism (classification,
/// per-trial predicate evaluation, trial-replica accumulation and group
/// materialization in the delta engine). The pool is optional: with
/// num_threads == 0 tasks run inline on the caller, which keeps
/// single-threaded runs fully deterministic and easy to debug — and the
/// engine's parallel phases are structured so that results are bit-identical
/// for every thread count (see docs/INTERNALS.md, "Parallelism model").
///
/// Error handling: a task that throws does not take the process down
/// (std::terminate); the first exception of a ParallelFor/ParallelRanges
/// call — or, for plain Submit, of the current Wait() epoch — is captured
/// and rethrown on the calling thread from ParallelFor/ParallelRanges/Wait.
/// Later exceptions of the same call are swallowed.
///
/// Re-entrancy contract: ParallelFor/ParallelRanges use a per-call
/// completion latch, so concurrent calls from different threads do not wait
/// on each other's work. Submit/Wait, by contrast, share one global
/// in-flight counter: Wait() is a barrier over *all* plain-Submitted tasks,
/// so interleaving Submit/Wait pairs from multiple threads serializes them.
/// Calling ParallelFor from inside a pool task deadlocks (the nested call
/// would wait on workers that are all busy) — parallel phases must be
/// issued from the driving thread only.
///
/// Concurrency invariants are expressed with Clang thread-safety
/// annotations (common/thread_annotations.h) and checked at compile time
/// under -Wthread-safety: every shared member is IOLAP_GUARDED_BY its
/// mutex, and the Submit-side lambdas must not capture by reference by
/// default (tools/lint rule `pool-capture`; the task may outlive the
/// submitting frame until the next Wait()).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; inline execution when the pool has no workers.
  void Submit(std::function<void()> task) IOLAP_EXCLUDES(mu_);

  /// Blocks until every plain-Submitted task has finished. Rethrows the
  /// first exception any of them raised since the last Wait().
  void Wait() IOLAP_EXCLUDES(mu_);

  /// Runs fn(i) for i in [0, count), partitioned across the pool, and
  /// waits. Rethrows the first exception fn raised. Safe to call
  /// concurrently from multiple non-pool threads.
  ///
  /// `idempotent` declares that re-running a task body after arbitrary
  /// partial work leaves the same final state (true of the engine's pure
  /// evaluation phases, which only overwrite disjoint output slots). Only
  /// idempotent bodies participate in fault injection: the pool-task-fault
  /// failpoint makes an attempt die with FailpointInjectedError after its
  /// work, and the wrapper absorbs the crash by re-running the body —
  /// chaos-testing exactly the retry that idempotency licenses. Bodies
  /// whose re-execution would double-apply (e.g. trial-accumulator adds)
  /// must stay non-idempotent and are never injected.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                   bool idempotent = false) IOLAP_EXCLUDES(mu_);

  /// Runs fn(begin, end, lane) over a static partition of [0, count) into
  /// at most num_lanes() contiguous ranges and waits. The lane index is a
  /// stable, deterministic property of the *range* (not of the worker that
  /// happens to execute it), so per-lane resources — e.g. an Rng split via
  /// Rng::ForLane(seed, lane) — yield results independent of scheduling.
  /// Inline mode runs a single range [0, count) with lane 0.
  /// `idempotent` as in ParallelFor.
  void ParallelRanges(
      size_t count,
      const std::function<void(size_t begin, size_t end, size_t lane)>& fn,
      bool idempotent = false) IOLAP_EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

  /// Number of lanes ParallelRanges partitions into (1 in inline mode).
  size_t num_lanes() const {
    return workers_.empty() ? 1 : workers_.size();
  }

 private:
  /// Per-call completion state for ParallelFor/ParallelRanges: tasks of one
  /// call count down their own latch, so concurrent calls are independent.
  struct TaskGroup {
    Mutex mu;
    CondVar done;
    size_t remaining IOLAP_GUARDED_BY(mu) = 0;
    std::exception_ptr first_error IOLAP_GUARDED_BY(mu);
  };

  void WorkerLoop() IOLAP_EXCLUDES(mu_);
  /// Enqueues `task` charged to `group` (nullptr = the global Wait epoch).
  void SubmitToGroup(TaskGroup* group, std::function<void()> task)
      IOLAP_EXCLUDES(mu_);
  /// Blocks until `group` drains, then rethrows its first error, if any.
  static void WaitGroup(TaskGroup* group);

  /// Immutable after construction (joined in the destructor only).
  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar task_ready_;
  CondVar all_done_;
  std::queue<std::pair<TaskGroup*, std::function<void()>>> tasks_
      IOLAP_GUARDED_BY(mu_);
  size_t in_flight_ IOLAP_GUARDED_BY(mu_) = 0;  // plain-Submit tasks only
  std::exception_ptr submit_error_ IOLAP_GUARDED_BY(mu_);
  bool shutdown_ IOLAP_GUARDED_BY(mu_) = false;
};

}  // namespace iolap

#endif  // IOLAP_COMMON_THREAD_POOL_H_
