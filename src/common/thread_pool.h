#ifndef IOLAP_COMMON_THREAD_POOL_H_
#define IOLAP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace iolap {

/// Fixed-size worker pool used for intra-batch parallelism (classification,
/// per-trial predicate evaluation, trial-replica accumulation and group
/// materialization in the delta engine). The pool is optional: with
/// num_threads == 0 tasks run inline on the caller, which keeps
/// single-threaded runs fully deterministic and easy to debug — and the
/// engine's parallel phases are structured so that results are bit-identical
/// for every thread count (see docs/INTERNALS.md, "Parallelism model").
///
/// Error handling: a task that throws does not take the process down
/// (std::terminate); the first exception of a ParallelFor/ParallelRanges
/// call — or, for plain Submit, of the current Wait() epoch — is captured
/// and rethrown on the calling thread from ParallelFor/ParallelRanges/Wait.
/// Later exceptions of the same call are swallowed.
///
/// Re-entrancy contract: ParallelFor/ParallelRanges use a per-call
/// completion latch, so concurrent calls from different threads do not wait
/// on each other's work. Submit/Wait, by contrast, share one global
/// in-flight counter: Wait() is a barrier over *all* plain-Submitted tasks,
/// so interleaving Submit/Wait pairs from multiple threads serializes them.
/// Calling ParallelFor from inside a pool task deadlocks (the nested call
/// would wait on workers that are all busy) — parallel phases must be
/// issued from the driving thread only.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; inline execution when the pool has no workers.
  void Submit(std::function<void()> task);

  /// Blocks until every plain-Submitted task has finished. Rethrows the
  /// first exception any of them raised since the last Wait().
  void Wait();

  /// Runs fn(i) for i in [0, count), partitioned across the pool, and
  /// waits. Rethrows the first exception fn raised. Safe to call
  /// concurrently from multiple non-pool threads.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  /// Runs fn(begin, end, lane) over a static partition of [0, count) into
  /// at most num_lanes() contiguous ranges and waits. The lane index is a
  /// stable, deterministic property of the *range* (not of the worker that
  /// happens to execute it), so per-lane resources — e.g. an Rng split via
  /// Rng::ForLane(seed, lane) — yield results independent of scheduling.
  /// Inline mode runs a single range [0, count) with lane 0.
  void ParallelRanges(
      size_t count,
      const std::function<void(size_t begin, size_t end, size_t lane)>& fn);

  size_t num_threads() const { return workers_.size(); }

  /// Number of lanes ParallelRanges partitions into (1 in inline mode).
  size_t num_lanes() const {
    return workers_.empty() ? 1 : workers_.size();
  }

 private:
  /// Per-call completion state for ParallelFor/ParallelRanges: tasks of one
  /// call count down their own latch, so concurrent calls are independent.
  struct TaskGroup {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining = 0;
    std::exception_ptr first_error;
  };

  void WorkerLoop();
  /// Enqueues `task` charged to `group` (nullptr = the global Wait epoch).
  void SubmitToGroup(TaskGroup* group, std::function<void()> task);
  /// Blocks until `group` drains, then rethrows its first error, if any.
  static void WaitGroup(TaskGroup* group);

  std::vector<std::thread> workers_;
  std::queue<std::pair<TaskGroup*, std::function<void()>>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;  // plain-Submit tasks only
  std::exception_ptr submit_error_;
  bool shutdown_ = false;
};

}  // namespace iolap

#endif  // IOLAP_COMMON_THREAD_POOL_H_
