#include "common/failpoint.h"

#include <cstdlib>
#include <vector>

#include "common/hash.h"

namespace iolap {

namespace {

constexpr const char* kFailpointNames[] = {
#define IOLAP_FAILPOINT_NAME_ENTRY(symbol, name) name,
    IOLAP_FAILPOINT_NAMES(IOLAP_FAILPOINT_NAME_ENTRY)
#undef IOLAP_FAILPOINT_NAME_ENTRY
};
static_assert(sizeof(kFailpointNames) / sizeof(kFailpointNames[0]) ==
              static_cast<size_t>(kNumFailpoints));

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  bool negative = false;
  if (!s.empty() && (s.front() == '-' || s.front() == '+')) {
    negative = s.front() == '-';
    s.remove_prefix(1);
  }
  uint64_t magnitude = 0;
  if (!ParseUint64(s, &magnitude)) return false;
  *out = negative ? -static_cast<int64_t>(magnitude)
                  : static_cast<int64_t>(magnitude);
  return true;
}

bool ParseProbability(std::string_view s, double* out) {
  // Accepts a plain decimal in [0, 1] ("0.25", "1", ".5").
  char* end = nullptr;
  const std::string owned(s);
  const double v = std::strtod(owned.c_str(), &end);
  if (end == nullptr || *end != '\0' || owned.empty()) return false;
  if (!(v >= 0.0 && v <= 1.0)) return false;
  *out = v;
  return true;
}

/// Deterministic per-hit draw: a pure function of (seed, detail, hit
/// index), so a replayed hit at the same detail redraws with its new hit
/// index instead of deterministically re-failing forever.
bool ProbDraw(uint64_t seed, uint64_t detail, uint64_t hit, double prob) {
  const uint64_t h = Mix64(seed ^ HashCombine(Mix64(detail), hit));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < prob;
}

}  // namespace

std::atomic<bool> FailpointRegistry::any_armed_{false};

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry registry;
  return registry;
}

const char* FailpointRegistry::Name(Failpoint fp) {
  return kFailpointNames[static_cast<int>(fp)];
}

bool FailpointRegistry::Lookup(std::string_view name, Failpoint* out) {
  for (int i = 0; i < kNumFailpoints; ++i) {
    if (name == kFailpointNames[i]) {
      *out = static_cast<Failpoint>(i);
      return true;
    }
  }
  return false;
}

Status FailpointRegistry::ParseEntry(std::string_view text, Failpoint* fp,
                                     Entry* out) {
  const size_t eq = text.find('=');
  if (eq == std::string_view::npos) {
    return Status::InvalidArgument("failpoint entry '" + std::string(text) +
                                   "' is not of the form name=action");
  }
  const std::string_view name = Trim(text.substr(0, eq));
  if (!Lookup(name, fp)) {
    return Status::InvalidArgument("unknown failpoint '" + std::string(name) +
                                   "' (see common/failpoint_names.h)");
  }
  Entry entry;
  std::string_view rest = text.substr(eq + 1);
  bool first_token = true;
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    std::string_view token = Trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    const size_t colon = token.find(':');
    const std::string_view head = token.substr(0, colon);
    const std::string_view tail = colon == std::string_view::npos
                                      ? std::string_view()
                                      : token.substr(colon + 1);
    if (first_token) {
      first_token = false;
      if (head == "off") {
        entry.mode = Mode::kOff;
      } else if (head == "once") {
        entry.mode = Mode::kOnce;
      } else if (head == "nth" || head == "every") {
        entry.mode = head == "nth" ? Mode::kNth : Mode::kEvery;
        if (!ParseUint64(tail, &entry.n) || entry.n == 0) {
          return Status::InvalidArgument(
              "failpoint action '" + std::string(token) +
              "' needs a positive count (e.g. nth:3)");
        }
      } else if (head == "at") {
        entry.mode = Mode::kAt;
        if (!ParseUint64(tail, &entry.at_detail)) {
          return Status::InvalidArgument("failpoint action '" +
                                         std::string(token) +
                                         "' needs a detail value (e.g. at:5)");
        }
      } else if (head == "prob") {
        entry.mode = Mode::kProb;
        std::string_view p = tail;
        const size_t seed_colon = p.find(':');
        if (seed_colon != std::string_view::npos) {
          if (!ParseUint64(p.substr(seed_colon + 1), &entry.prob_seed)) {
            return Status::InvalidArgument("failpoint '" + std::string(token) +
                                           "': bad probability seed");
          }
          p = p.substr(0, seed_colon);
        }
        if (!ParseProbability(p, &entry.prob)) {
          return Status::InvalidArgument(
              "failpoint '" + std::string(token) +
              "': probability must be in [0, 1] (e.g. prob:0.1:7)");
        }
      } else {
        return Status::InvalidArgument(
            "unknown failpoint action '" + std::string(token) +
            "' (off|once|nth:N|every:N|at:D|prob:P[:S])");
      }
      continue;
    }
    if (head == "arg") {
      if (!ParseInt64(tail, &entry.arg)) {
        return Status::InvalidArgument("failpoint option '" +
                                       std::string(token) +
                                       "': arg needs an integer value");
      }
      entry.has_arg = true;
    } else if (head == "times") {
      uint64_t times = 0;
      if (!ParseUint64(tail, &times) || times == 0) {
        return Status::InvalidArgument("failpoint option '" +
                                       std::string(token) +
                                       "': times needs a positive count");
      }
      entry.times_left = static_cast<int64_t>(times);
    } else {
      return Status::InvalidArgument("unknown failpoint option '" +
                                     std::string(token) +
                                     "' (arg:V or times:K)");
    }
  }
  if (first_token) {
    return Status::InvalidArgument("failpoint entry '" + std::string(text) +
                                   "' has an empty action");
  }
  *out = entry;
  return Status::OK();
}

Status FailpointRegistry::Configure(const std::string& spec) {
  // Parse everything before touching the active configuration, so a bad
  // spec leaves the previous one armed.
  Entry parsed[kNumFailpoints];
  std::string_view rest = spec;
  while (!rest.empty()) {
    const size_t semi = rest.find(';');
    const std::string_view piece = Trim(rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view()
                                          : rest.substr(semi + 1);
    if (piece.empty()) continue;
    Failpoint fp;
    Entry entry;
    IOLAP_RETURN_IF_ERROR(ParseEntry(piece, &fp, &entry));
    parsed[static_cast<int>(fp)] = entry;  // later entries win
  }
  bool any = false;
  {
    MutexLock lock(mu_);
    for (int i = 0; i < kNumFailpoints; ++i) {
      entries_[i] = parsed[i];
      any = any || entries_[i].mode != Mode::kOff;
    }
  }
  any_armed_.store(any, std::memory_order_relaxed);
  return Status::OK();
}

void FailpointRegistry::Clear() {
  {
    MutexLock lock(mu_);
    for (Entry& entry : entries_) entry = Entry{};
  }
  any_armed_.store(false, std::memory_order_relaxed);
}

bool FailpointRegistry::Fires(Failpoint fp, uint64_t detail) {
  MutexLock lock(mu_);
  Entry& entry = entries_[static_cast<int>(fp)];
  if (entry.mode == Mode::kOff) return false;
  const uint64_t hit = ++entry.hits;
  if (entry.times_left == 0) return false;
  bool fires = false;
  switch (entry.mode) {
    case Mode::kOff:
      break;
    case Mode::kOnce:
      fires = hit == 1;
      break;
    case Mode::kNth:
      fires = hit == entry.n;
      break;
    case Mode::kEvery:
      fires = hit % entry.n == 0;
      break;
    case Mode::kAt:
      fires = detail == entry.at_detail;
      break;
    case Mode::kProb:
      fires = ProbDraw(entry.prob_seed, detail, hit, entry.prob);
      break;
  }
  if (fires) {
    ++entry.fired;
    if (entry.times_left > 0) --entry.times_left;
  }
  return fires;
}

int64_t FailpointRegistry::Arg(Failpoint fp, int64_t def) {
  MutexLock lock(mu_);
  const Entry& entry = entries_[static_cast<int>(fp)];
  return entry.has_arg ? entry.arg : def;
}

uint64_t FailpointRegistry::hits(Failpoint fp) {
  MutexLock lock(mu_);
  return entries_[static_cast<int>(fp)].hits;
}

uint64_t FailpointRegistry::fired(Failpoint fp) {
  MutexLock lock(mu_);
  return entries_[static_cast<int>(fp)].fired;
}

std::string MergedFailpointSpec(const std::string& spec) {
  const char* env = std::getenv("IOLAP_FAILPOINTS");
  std::string merged = env != nullptr ? env : "";
  if (!merged.empty() && !spec.empty()) merged += ';';
  merged += spec;
  return merged;
}

}  // namespace iolap
