#ifndef IOLAP_COMMON_TIMER_H_
#define IOLAP_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace iolap {

/// Monotonic wall-clock timer for per-batch latency measurements.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace iolap

#endif  // IOLAP_COMMON_TIMER_H_
