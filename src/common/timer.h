#ifndef IOLAP_COMMON_TIMER_H_
#define IOLAP_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <ctime>

namespace iolap {

/// Monotonic wall-clock timer for per-batch latency measurements.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process CPU-time timer. Together with WallTimer it makes intra-batch
/// parallelism visible in the metrics: a perfectly parallel batch on N
/// cores shows cpu ≈ N × wall, an inline run shows cpu ≈ wall.
class CpuTimer {
 public:
  CpuTimer() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  /// CPU seconds consumed by the whole process (all threads) since
  /// construction or the last Restart().
  double ElapsedSeconds() const { return Now() - start_; }

 private:
  static double Now() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
    }
#endif
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
  }

  double start_;
};

}  // namespace iolap

#endif  // IOLAP_COMMON_TIMER_H_
