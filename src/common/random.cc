#include "common/random.h"

#include <cmath>

namespace iolap {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 expansion of the seed; guarantees a non-zero state.
  uint64_t s = seed;
  for (auto& lane : state_) {
    s += 0x9e3779b97f4a7c15ull;
    lane = Mix64(s);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

Rng Rng::ForLane(uint64_t seed, uint64_t lane) {
  // Mixing before the constructor's own SplitMix64 expansion keeps lanes
  // with small indices (0, 1, 2, ...) far apart in the seed space.
  return Rng(Mix64(seed ^ lane));
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound <= 1) return 0;  // `-bound % bound` is a division by zero at 0
  // Rejection sampling over the top of the range to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextExponential(double lambda) {
  double u = NextDouble();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  return -std::log1p(-u) / lambda;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  if (s <= 0.0) return NextBounded(n);
  // Rejection-inversion (Hörmann). H(x) is the integral of the unnormalized
  // density x^-s.
  const double nd = static_cast<double>(n);
  auto h = [s](double x) {
    if (s == 1.0) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_inv = [s](double y) {
    if (s == 1.0) return std::exp(y);
    return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double h_x1 = h(1.5) - 1.0;
  const double h_n = h(nd + 0.5);
  for (;;) {
    const double u = h_x1 + NextDouble() * (h_n - h_x1);
    const double x = h_inv(u);
    const uint64_t k = static_cast<uint64_t>(x + 0.5);
    const uint64_t clamped = k < 1 ? 1 : (k > n ? n : k);
    const double kd = static_cast<double>(clamped);
    if (u >= h(kd + 0.5) - std::pow(kd, -s)) {
      return clamped - 1;  // 0-based rank
    }
  }
}

int Rng::NextPoisson(double mean) {
  // Knuth's multiplication method; fine for the small means we use.
  const double l = std::exp(-mean);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > l);
  return k - 1;
}

int PoissonOneAt(uint64_t stream, uint64_t index) {
  // Deterministic Poisson(1) via inverse-CDF on a hashed uniform. The CDF
  // of Poisson(1) at k = 0..8 (k >= 9 has probability < 1e-6 and is folded
  // into the last bucket; the bias is far below bootstrap noise).
  static const double kCdf[] = {
      0.36787944117144233, 0.7357588823428847, 0.9196986029286058,
      0.9810118431238462,  0.9963401531726563, 0.9994058151824183,
      0.9999167588507119,  0.9999897508033253, 0.9999988747974020,
  };
  const uint64_t h = Mix64(HashCombine(stream, index));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  for (int k = 0; k < 9; ++k) {
    if (u < kCdf[k]) return k;
  }
  return 9;
}

}  // namespace iolap
