#ifndef IOLAP_COMMON_FAILPOINT_H_
#define IOLAP_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/failpoint_names.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace iolap {

/// Deterministic fault injection (docs/INTERNALS.md §9).
///
/// Call sites guard their failure path with the IOLAP_FAILPOINT macro:
///
///   if (IOLAP_FAILPOINT(Failpoint::kCsvReadFault, attempt)) {
///     return Status::ExecutionError("injected: csv-read-fault");
///   }
///
/// and stay zero-cost unless a spec armed at least one failpoint: the macro
/// is one relaxed atomic load when the registry is idle, and compiles to a
/// constant `false` under -DIOLAP_DISABLE_FAILPOINTS (CMake option
/// IOLAP_FAILPOINTS=OFF).
///
/// Activation comes from a *spec* string — `EngineOptions::failpoints`, the
/// IOLAP_FAILPOINTS environment variable, or a direct Configure() call:
///
///   spec    := entry (';' entry)*
///   entry   := name '=' action (',' option)*
///   action  := 'off' | 'once' | 'nth:' N | 'every:' N
///            | 'at:' D | 'prob:' P [':' S]
///   option  := 'arg:' V | 'times:' K
///
/// `name` must appear in the inventory (common/failpoint_names.h). Actions:
/// `once` fires on the first hit only; `nth:N` on the Nth hit (1-based);
/// `every:N` on every Nth hit; `at:D` whenever the call site's detail value
/// equals D (details are deterministic site facts — usually the batch
/// number — so `at:` schedules are independent of thread count); `prob:P`
/// fires with probability P per hit, drawn deterministically from seed S
/// (default 0) and the hit's (detail, index), so a replayed hit redraws.
/// Options: `arg:V` is an int64 payload the site interprets (e.g. rollback
/// depth); `times:K` caps the total number of fires.
///
/// Hit-count-based modes (`once`/`nth`/`every`/`prob`) observe the dynamic
/// hit order, which for pool-side sites depends on scheduling; every
/// injected fault in this engine is recovery-absorbed, so that freedom
/// never changes results — schedules that must be exactly reproducible use
/// `at:` with `times:`.
class FailpointRegistry {
 public:
  /// The process-wide registry. Configure/Clear and Fires are
  /// mutex-protected; the fast path (AnyArmedFast) is lock-free.
  static FailpointRegistry& Instance();

  /// Replaces the active configuration with `spec` (parsed all-or-nothing;
  /// on a parse error the previous configuration is kept). An empty spec
  /// disarms everything.
  [[nodiscard]] Status Configure(const std::string& spec)
      IOLAP_EXCLUDES(mu_);

  /// Disarms every failpoint and resets hit/fire counters.
  void Clear() IOLAP_EXCLUDES(mu_);

  /// Records a hit at `fp` and decides whether the site must fail.
  /// `detail` is a deterministic site fact (usually the batch number).
  bool Fires(Failpoint fp, uint64_t detail) IOLAP_EXCLUDES(mu_);

  /// The `arg:` payload of `fp`'s active entry, or `def` when unset.
  /// (Non-const: takes the registry mutex, which stays un-mutable.)
  int64_t Arg(Failpoint fp, int64_t def) IOLAP_EXCLUDES(mu_);

  /// Test introspection: hits seen / faults fired since the last
  /// Configure/Clear.
  uint64_t hits(Failpoint fp) IOLAP_EXCLUDES(mu_);
  uint64_t fired(Failpoint fp) IOLAP_EXCLUDES(mu_);

  /// True when any failpoint is armed — the macro's fast path.
  static bool AnyArmedFast() {
    return any_armed_.load(std::memory_order_relaxed);
  }

  static const char* Name(Failpoint fp);
  /// Resolves an inventory name; returns false for unknown names.
  static bool Lookup(std::string_view name, Failpoint* out);

 private:
  FailpointRegistry() = default;

  enum class Mode : uint8_t { kOff, kOnce, kNth, kEvery, kAt, kProb };
  struct Entry {
    Mode mode = Mode::kOff;
    uint64_t n = 0;         // nth / every period
    uint64_t at_detail = 0; // at: match value
    double prob = 0.0;      // prob: probability per hit
    uint64_t prob_seed = 0;
    int64_t arg = 0;
    bool has_arg = false;
    int64_t times_left = -1;  // remaining fires; < 0 = unlimited
    uint64_t hits = 0;
    uint64_t fired = 0;
  };

  static Status ParseEntry(std::string_view text, Failpoint* fp, Entry* out);

  static std::atomic<bool> any_armed_;

  Mutex mu_;
  Entry entries_[kNumFailpoints] IOLAP_GUARDED_BY(mu_);
};

/// Thrown by call sites that simulate a transient crash inside a pool task
/// body; the pool's idempotent-task wrapper absorbs it by re-running the
/// body (common/thread_pool.h).
class FailpointInjectedError : public std::runtime_error {
 public:
  explicit FailpointInjectedError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Arms a spec for one scope (QueryController::Run arms the merged
/// EngineOptions + environment spec for the duration of the run). An empty
/// spec is a no-op — it neither arms nor clears, so configurations
/// installed directly by tests survive runs that carry no spec of their
/// own.
class ScopedFailpoints {
 public:
  explicit ScopedFailpoints(const std::string& spec) {
    if (spec.empty()) return;
    active_ = true;
    status_ = FailpointRegistry::Instance().Configure(spec);
  }
  ~ScopedFailpoints() {
    if (active_) FailpointRegistry::Instance().Clear();
  }
  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;

  /// Parse status of the spec (OK when empty).
  const Status& status() const { return status_; }

 private:
  bool active_ = false;
  Status status_ = Status::OK();
};

/// Merges the IOLAP_FAILPOINTS environment spec (first) with `spec`
/// (second, so it wins on name collisions). Either part may be empty.
std::string MergedFailpointSpec(const std::string& spec);

#if !defined(IOLAP_DISABLE_FAILPOINTS)

#define IOLAP_FAILPOINT(fp, detail)              \
  (::iolap::FailpointRegistry::AnyArmedFast() && \
   ::iolap::FailpointRegistry::Instance().Fires( \
       (fp), static_cast<uint64_t>(detail)))

inline int64_t FailpointArg(Failpoint fp, int64_t def) {
  return FailpointRegistry::Instance().Arg(fp, def);
}

#else  // IOLAP_DISABLE_FAILPOINTS

// Compiled out: the operands are still evaluated (they are cheap constants
// or locals, and this avoids unused-variable warnings), the branch is a
// compile-time `false`.
#define IOLAP_FAILPOINT(fp, detail) \
  (static_cast<void>(fp), static_cast<void>(detail), false)

inline int64_t FailpointArg(Failpoint /*fp*/, int64_t def) { return def; }

#endif  // IOLAP_DISABLE_FAILPOINTS

}  // namespace iolap

#endif  // IOLAP_COMMON_FAILPOINT_H_
