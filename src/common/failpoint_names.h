#ifndef IOLAP_COMMON_FAILPOINT_NAMES_H_
#define IOLAP_COMMON_FAILPOINT_NAMES_H_

namespace iolap {

/// The single inventory of every failpoint in the engine. A failpoint is a
/// named seam where deterministic fault injection can force the failure
/// path (see common/failpoint.h for activation and docs/INTERNALS.md §9 for
/// the spec grammar). Adding a failpoint means adding exactly one line
/// here; names are kebab-case and unique, which tools/lint's
/// `failpoint-name` rule enforces — including that no other file declares
/// an inventory of its own.
///
/// Seams (in engine order):
///  - exec-integrity-verdict: a spurious variation-range integrity failure
///    reported by BlockExecutor publication (arg = rollback depth).
///  - registry-publish-fault: AggregateRegistry::Publish reports a failed
///    integrity verdict for a group it just published (arg = depth).
///  - registry-envelope-fault: a *natural-typed* envelope violation — the
///    tracker walks back its constraint history exactly as a real escape
///    would, so the replay freezes ranges.
///  - checkpoint-capture-corrupt: flips a checksum bit while a checkpoint
///    is captured; detected at restore time.
///  - checkpoint-restore-fault: a checkpoint fails verification at restore
///    time even though its content is intact.
///  - controller-batch-fault: the QueryController loses a scheduled batch
///    after it completed and must recover it (arg = rollback depth).
///  - pool-task-fault: a ThreadPool task body dies and is retried
///    (idempotent phases only).
///  - csv-read-fault: a transient CSV/catalog ingest failure, absorbed by
///    ReadCsvFileWithRetry's bounded exponential backoff.
///  - exchange-message-corrupt: flips the checksum of an ExchangeLayer
///    message in flight; the receiver rejects it and the sender retries
///    under bounded backoff (detail = batch*64 + shard endpoint).
///  - exchange-message-drop: an ExchangeLayer message is lost in flight;
///    the sender times out and retransmits (same detail encoding).
///  - shard-eval-fault: shard k dies during the shard-parallel evaluate
///    phase of a batch; the controller declares it dead and rebuilds from
///    the last consistent checkpoint (detail = batch*64 + shard).
///  - shard-checkpoint-corrupt: flips one shard's slice checksum while a
///    per-shard checkpoint is captured, so the consistent-cut rule rejects
///    the whole cut at restore time (detail = batch*64 + shard).
#define IOLAP_FAILPOINT_NAMES(X)                             \
  X(kExecIntegrityVerdict, "exec-integrity-verdict")         \
  X(kRegistryPublishFault, "registry-publish-fault")         \
  X(kRegistryEnvelopeFault, "registry-envelope-fault")       \
  X(kCheckpointCaptureCorrupt, "checkpoint-capture-corrupt") \
  X(kCheckpointRestoreFault, "checkpoint-restore-fault")     \
  X(kControllerBatchFault, "controller-batch-fault")         \
  X(kPoolTaskFault, "pool-task-fault")                       \
  X(kCsvReadFault, "csv-read-fault")                         \
  X(kExchangeMessageCorrupt, "exchange-message-corrupt")     \
  X(kExchangeMessageDrop, "exchange-message-drop")           \
  X(kShardEvalFault, "shard-eval-fault")                     \
  X(kShardCheckpointCorrupt, "shard-checkpoint-corrupt")

enum class Failpoint {
#define IOLAP_FAILPOINT_ENUM_ENTRY(symbol, name) symbol,
  IOLAP_FAILPOINT_NAMES(IOLAP_FAILPOINT_ENUM_ENTRY)
#undef IOLAP_FAILPOINT_ENUM_ENTRY
      kCount
};

inline constexpr int kNumFailpoints = static_cast<int>(Failpoint::kCount);

}  // namespace iolap

#endif  // IOLAP_COMMON_FAILPOINT_NAMES_H_
