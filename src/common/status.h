#ifndef IOLAP_COMMON_STATUS_H_
#define IOLAP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace iolap {

/// Machine-readable category of a Status. Mirrors the Arrow/RocksDB
/// convention of a small closed set of codes plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kParseError,
  kBindError,
  kExecutionError,
  kInternal,
};

/// Returns a stable human-readable name ("InvalidArgument", ...) for a code.
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. The library does not throw across
/// API boundaries; every fallible public entry point returns Status or
/// Result<T>. OK statuses carry no allocation.
///
/// [[nodiscard]]: silently dropping a Status swallows the error and lets
/// execution continue on garbage state, so every function returning one
/// must have its result checked (or routed through IOLAP_RETURN_IF_ERROR).
/// The rare call site whose failure is genuinely irrelevant documents that
/// with an explicit `(void)` cast and a comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a programming error (asserted in debug builds).
/// [[nodiscard]] for the same reason as Status: a dropped Result drops the
/// error with it.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value and from error Status, so `return value;` and
  /// `return Status::...;` both work inside functions returning Result<T>.
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : storage_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(storage_).ok() &&
           "Result<T> must not be built from an OK Status");
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(storage_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(storage_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(storage_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> storage_;
};

// Propagates a non-OK Status from an expression to the caller.
#define IOLAP_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::iolap::Status _iolap_status = (expr);          \
    if (!_iolap_status.ok()) return _iolap_status;   \
  } while (false)

// Evaluates an expression returning Result<T>; on error propagates the
// Status, otherwise assigns the value to `lhs`.
#define IOLAP_ASSIGN_OR_RETURN(lhs, expr)             \
  IOLAP_ASSIGN_OR_RETURN_IMPL_(                       \
      IOLAP_CONCAT_(_iolap_result, __LINE__), lhs, expr)

#define IOLAP_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                                 \
  if (!result.ok()) return result.status();             \
  lhs = std::move(result).value();

#define IOLAP_CONCAT_(a, b) IOLAP_CONCAT_IMPL_(a, b)
#define IOLAP_CONCAT_IMPL_(a, b) a##b

}  // namespace iolap

#endif  // IOLAP_COMMON_STATUS_H_
