#ifndef IOLAP_IOLAP_SESSION_H_
#define IOLAP_IOLAP_SESSION_H_

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "core/function_registry.h"
#include "iolap/query_controller.h"

namespace iolap {

/// A compiled incremental query, ready to run. Obtained from Session::Sql
/// or Session::FromPlan. Running delivers one PartialResult per mini-batch
/// through the observer; the observer may stop the execution at any point
/// (the paper's interactive accuracy/latency control, §2).
///
/// Thread contract: a Session and the IncrementalQuerys it compiles are
/// *thread-compatible*, not thread-safe — one query runs on one driving
/// thread at a time (the internal ThreadPool fans out under it; see
/// docs/INTERNALS.md §5/§8). Distinct Sessions over the same Catalog are
/// independent: the engine treats the catalog as immutable input, and the
/// only cross-session shared mutable state in the repo is the workload
/// catalog cache, which carries its own annotated lock
/// (workloads/experiment_driver.cc).
class IncrementalQuery {
 public:
  /// Executes all mini-batches (or until the observer stops the run).
  Status Run(const ResultObserver& observer = nullptr);

  /// Per-batch performance counters of the last Run.
  const QueryMetrics& metrics() const { return controller_->metrics(); }

  /// The most recent partial (or final) result.
  const PartialResult& last_result() const {
    return controller_->last_result();
  }

  const QueryPlan& plan() const { return controller_->plan(); }
  size_t num_batches() const { return controller_->num_batches(); }

  /// Direct access for tests / benchmarks.
  QueryController& controller() { return *controller_; }

 private:
  friend class Session;
  explicit IncrementalQuery(std::unique_ptr<QueryController> controller)
      : controller_(std::move(controller)) {}

  std::unique_ptr<QueryController> controller_;
};

/// The top-level entry point of the library:
///
///   Catalog catalog;
///   catalog.RegisterTable("sessions", sessions, /*streamed=*/true);
///   Session session(&catalog);
///   auto query = session.Sql(
///       "SELECT AVG(play_time) FROM sessions "
///       "WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)");
///   (*query)->Run([](const PartialResult& r) {
///     // inspect r.rows / r.estimates, stop when accurate enough
///     return BatchAction::kContinue;
///   });
///
/// A Session owns engine options and a function registry (extend it with
/// UDFs/UDAFs before compiling queries); the catalog is shared and outlives
/// the session.
class Session {
 public:
  explicit Session(const Catalog* catalog, EngineOptions options = {});
  Session(const Catalog* catalog, EngineOptions options,
          std::shared_ptr<FunctionRegistry> functions);

  /// Compiles a SQL query of the supported subset (see sql/binder.h).
  Result<std::unique_ptr<IncrementalQuery>> Sql(const std::string& query);

  /// Compiles `query` and renders its lineage-block plan together with the
  /// §4.1 uncertainty annotations — which filters are uncertain, which
  /// attributes carry lineage, which blocks HDA would have to re-evaluate
  /// from scratch. The online-rewriter output, in human-readable form.
  Result<std::string> Explain(const std::string& query);

  /// Wraps a hand-built plan (PlanBuilder).
  Result<std::unique_ptr<IncrementalQuery>> FromPlan(QueryPlan plan);

  /// The registry new queries compile against; register UDFs/UDAFs here.
  const std::shared_ptr<FunctionRegistry>& functions() { return functions_; }

  EngineOptions* mutable_options() { return &options_; }
  const EngineOptions& options() const { return options_; }

 private:
  const Catalog* catalog_;
  EngineOptions options_;
  std::shared_ptr<FunctionRegistry> functions_;
};

}  // namespace iolap

#endif  // IOLAP_IOLAP_SESSION_H_
