#ifndef IOLAP_IOLAP_QUERY_CONTROLLER_H_
#define IOLAP_IOLAP_QUERY_CONTROLLER_H_

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "bootstrap/error_estimate.h"
#include "catalog/catalog.h"
#include "common/thread_pool.h"
#include "iolap/delta_engine.h"
#include "iolap/metrics.h"
#include "shard/exchange.h"
#include "shard/shard.h"

namespace iolap {

/// One partial (or final) query answer: the current result relation plus a
/// bootstrap error estimate for every approximate column — what iOLAP
/// streams to the user after every mini-batch (§2).
struct PartialResult {
  int batch = 0;
  /// Fraction of the streamed relation folded in so far (1.0 = exact).
  double fraction_processed = 1.0;
  Table rows;
  /// Output-schema column indexes that carry error estimates.
  std::vector<int> estimated_columns;
  /// estimates[r][k] is the estimate of rows.row(r)[estimated_columns[k]].
  std::vector<std::vector<ErrorEstimate>> estimates;
};

/// Observer verdict after each delivered partial result — the user's "stop
/// when accurate enough" control (§2, POSTGRES-OLA style).
enum class BatchAction { kContinue, kStop };

using ResultObserver = std::function<BatchAction(const PartialResult&)>;

/// Drives one incremental query: partitions the streamed relation into
/// mini-batches, schedules the per-block delta updates in topological
/// order, monitors variation-range integrity and performs failure recovery
/// (§7 "Query Controller"). Create via Session, or directly for tests.
class QueryController {
 public:
  QueryController(const Catalog* catalog, QueryPlan plan,
                  EngineOptions options);

  /// Analyzes the plan, partitions the streamed table, builds executors.
  Status Init();

  /// Runs all mini-batches, invoking `observer` (may be null) after each.
  /// On success the final result is available via last_result().
  Status Run(const ResultObserver& observer);

  const QueryMetrics& metrics() const { return metrics_; }
  const PartialResult& last_result() const { return last_result_; }
  const QueryPlan& plan() const { return plan_; }
  size_t num_batches() const { return layout_.batches.size(); }

  /// Mini-batch layout of the streamed relation (valid after Init):
  /// exposes which base rows arrive in which batch, so tests and tools can
  /// reconstruct the accumulated sample D_i.
  const BatchLayout& layout() const { return layout_; }

  /// The §5 non-deterministic set size summed over blocks (Fig. 9(e)).
  size_t PendingCount() const;

  /// Cumulative exchange traffic/fault counters (valid after Init; the
  /// source of the measured shipped/retry/death columns in QueryMetrics).
  const ExchangeCounters& exchange_counters() const {
    return exchange_->counters();
  }

  /// Checkpoint-ring introspection for tests: entries currently retained
  /// (bounded by EngineOptions::checkpoint_history — corrupt snapshots are
  /// pruned during recovery, so the ring never accretes dead payloads)
  /// and their approximate retained bytes.
  size_t checkpoint_ring_size() const { return checkpoints_.size(); }
  size_t CheckpointRingBytes() const;

 private:
  /// Runs every block for batch `b`; returns a rollback target or
  /// BlockExecutor::kNoRollback. `injected_only` (optional) reports whether
  /// every executor that requested the rollback attributes it solely to
  /// failpoint-injected verdicts.
  int ProcessOneBatch(int b, BlockBatchStats* stats,
                      bool* injected_only = nullptr);

  /// Sums the executors' compile→verify counters into metrics_. Called at
  /// Init and again after each Run resets the metrics (the counters are
  /// Init-time facts and must survive the per-run reset).
  void FoldVerifierStats();

  /// Restores all state to the newest verifiable checkpoint at or before
  /// batch `target` (-1, or no usable candidate, = full restart). Corrupt
  /// checkpoints (checksum mismatch) are skipped with escalation to the
  /// next older snapshot. Natural failures freeze recovered variation
  /// ranges through the replay window; `injected` recoveries replay
  /// unfrozen (the fault-free bits are reproduced exactly, and no real
  /// mis-decision exists to livelock on). Recovery accounting lands in
  /// `bm`. Returns the batch after which processing must resume.
  int RollbackTo(int target, int current_batch, bool injected,
                 BatchMetrics* bm);

  /// Recovery-storm breaker: staircased, one-way degradation keyed on the
  /// attempt count within one batch — widen envelope slack, then disable
  /// pruning, then (past max_recoveries_per_batch) fall back to
  /// classification-free processing, which cannot fail. Returns the
  /// (possibly overridden) rollback target.
  int ApplyDegradation(int attempts, int rollback, BatchMetrics* bm);

  /// Builds the ExecRow delta of the streamed relation for batch `b`.
  RowBatch StreamDelta(int b) const;

  double ScaleAt(int b) const;

  /// Assembles the user-facing result after a batch.
  void BuildResult(int batch);

  const Catalog* catalog_;
  QueryPlan plan_;
  EngineOptions options_;
  std::vector<BlockAnnotations> annotations_;
  std::unique_ptr<AggregateRegistry> registry_;
  /// Intra-batch worker pool shared by every executor (null when
  /// options_.num_threads == 0). Declared before executors_ so it outlives
  /// the BlockExecutors that borrow it.
  std::unique_ptr<ThreadPool> pool_;
  /// The shard fleet and its exchange seam (always created, S =
  /// options_.num_shards). Declared before executors_ so they outlive the
  /// BlockExecutors that borrow them.
  std::unique_ptr<ShardSet> shards_;
  std::unique_ptr<ExchangeLayer> exchange_;
  std::vector<std::unique_ptr<BlockExecutor>> executors_;

  std::shared_ptr<const Table> streamed_table_;
  BatchLayout layout_;
  std::vector<size_t> seen_rows_;  // cumulative rows through batch i

  // Checkpoint ring: state snapshots after each of the last K batches.
  std::deque<std::vector<std::shared_ptr<const BlockExecutor::Checkpoint>>>
      checkpoints_;

  QueryMetrics metrics_;
  PartialResult last_result_;
  bool initialized_ = false;
  /// Highest recovery-storm staircase level reached so far (sticky for the
  /// rest of the run; see ApplyDegradation).
  int degrade_level_ = 0;
};

}  // namespace iolap

#endif  // IOLAP_IOLAP_QUERY_CONTROLLER_H_
