#include "iolap/session.h"

#include "plan/rewrite_rules.h"
#include "plan/uncertainty_analysis.h"
#include "sql/binder.h"

namespace iolap {

Status IncrementalQuery::Run(const ResultObserver& observer) {
  return controller_->Run(observer);
}

Session::Session(const Catalog* catalog, EngineOptions options)
    : Session(catalog, options, FunctionRegistry::Default()) {}

Session::Session(const Catalog* catalog, EngineOptions options,
                 std::shared_ptr<FunctionRegistry> functions)
    : catalog_(catalog),
      options_(options),
      functions_(std::move(functions)) {}

Result<std::unique_ptr<IncrementalQuery>> Session::Sql(
    const std::string& query) {
  IOLAP_ASSIGN_OR_RETURN(QueryPlan plan,
                         BindSql(query, *catalog_, functions_));
  return FromPlan(std::move(plan));
}

Result<std::string> Session::Explain(const std::string& query) {
  IOLAP_ASSIGN_OR_RETURN(QueryPlan plan, BindSql(query, *catalog_, functions_));
  if (options_.apply_rewrite_rules) {
    RewriteStats stats;
    IOLAP_ASSIGN_OR_RETURN(plan, ApplyRewriteRules(std::move(plan), &stats));
  }
  IOLAP_ASSIGN_OR_RETURN(std::vector<BlockAnnotations> annotations,
                         AnalyzeUncertainty(plan));
  std::string out = plan.ToString();
  out += "\nuncertainty analysis (§4.1):\n";
  for (size_t b = 0; b < plan.blocks.size(); ++b) {
    const Block& block = plan.blocks[b];
    const BlockAnnotations& ann = annotations[b];
    out += "  block " + std::to_string(b) + " (" + block.debug_name + "):";
    if (ann.dynamic) out += " dynamic";
    if (ann.filter_uncertain) out += " uncertain-filter";
    if (ann.depends_on_uncertain) out += " hda-recomputes";
    bool any_arg = false;
    for (bool u : ann.agg_arg_uncertain) any_arg = any_arg || u;
    if (any_arg) out += " uncertain-agg-args";
    if (ann.output_tuple_uncertain) out += " output-u#";
    size_t uncertain_cols = 0;
    for (bool u : ann.output_attr_uncertain) uncertain_cols += u;
    out += " uncertain-output-cols=" + std::to_string(uncertain_cols);
    out += "\n";
  }
  return out;
}

Result<std::unique_ptr<IncrementalQuery>> Session::FromPlan(QueryPlan plan) {
  if (options_.apply_rewrite_rules) {
    RewriteStats stats;
    IOLAP_ASSIGN_OR_RETURN(plan, ApplyRewriteRules(std::move(plan), &stats));
  }
  auto controller =
      std::make_unique<QueryController>(catalog_, std::move(plan), options_);
  IOLAP_RETURN_IF_ERROR(controller->Init());
  return std::unique_ptr<IncrementalQuery>(
      new IncrementalQuery(std::move(controller)));
}

}  // namespace iolap
