#ifndef IOLAP_IOLAP_AGGREGATE_REGISTRY_H_
#define IOLAP_IOLAP_AGGREGATE_REGISTRY_H_

#include <unordered_map>
#include <vector>

#include "bootstrap/variation_range.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/expr.h"
#include "plan/logical_plan.h"

namespace iolap {

/// The engine's *serial apply phase* as a static capability (no runtime
/// lock; see ThreadRole). Every batch splits into parallel evaluation
/// phases — which only read the plan, the rows, and the frozen registry —
/// and a serial apply phase on the driving thread that performs all state
/// mutation in deterministic row/group order. Mutation-side APIs
/// (AggregateRegistry publication, BlockExecutor routing/publication)
/// declare IOLAP_REQUIRES(engine_serial_phase); the driver (and any test
/// or bench that drives these APIs directly) enters the phase with
/// `ScopedThreadRole serial(engine_serial_phase);`. Under Clang
/// -Wthread-safety this turns "mutation escaped into a parallel lambda" —
/// the race class that would silently break Theorem 1's bit-identical
/// replay guarantee — into a compile error.
extern ThreadRole engine_serial_phase;

/// The shared store of every aggregate block's current output: the runtime
/// "rel" that the paper's lineage references `(rel(γ), t.key)` resolve
/// against (§6.2). Each entry holds the group's current aggregate values,
/// their bootstrap trial replicas, and — for blocks whose values feed
/// classification — the variation-range trackers of §5.1.
///
/// Values are stored *unscaled* (multiplicity scale 1) together with the
/// block's current scale m_i; lookups re-scale lazily (SUM/COUNT results
/// are linear in the scale, everything else invariant — see
/// AggFunction::ScalesLinearly). This lets the delta engine publish only
/// the groups an incoming batch actually touched: untouched groups are
/// merely Refresh()ed, which re-runs the integrity check on the stored
/// replica envelope under the new scale without re-materializing replicas.
///
/// In the paper this relation is broadcast to all workers each batch so the
/// lazy-evaluation join is local; here a lookup is a hash probe and the
/// broadcast is charged to the shipped-bytes cost model by the controller.
class AggregateRegistry final : public AggLookupResolver,
                                public RangeConstraintSink {
 public:
  /// `plan` supplies per-block group-key arity and per-aggregate scaling
  /// behaviour; `slack` is the §5.1 ε.
  AggregateRegistry(const QueryPlan* plan, double slack);

  struct PublishResult {
    bool ok = true;
    /// On an integrity-check failure: the latest batch that is still
    /// consistent (-1 = restart from scratch).
    int rollback_to = -1;
    /// Refresh only: the group has no entry yet (publish it fully).
    bool missing = false;
    /// The failure is a failpoint-injected spurious verdict, not a real
    /// constraint violation. The controller replays injected-only
    /// recoveries with *unfrozen* ranges: the replay cannot livelock (no
    /// decision actually went bad) and reproduces the fault-free execution
    /// bit for bit — see docs/INTERNALS.md §9.
    bool injected = false;
  };

  /// Sets block `block`'s current multiplicity scale m_i; call once per
  /// batch before publishing or refreshing its groups.
  void SetBlockScale(int block, double scale)
      IOLAP_REQUIRES(engine_serial_phase);

  /// Publishes (or overwrites) group `key` of block `block` at `batch`
  /// with *unscaled* results: `main` has one value per aggregate column,
  /// `trials[a]` the unscaled replicas of aggregate a. `track_ranges`
  /// enables variation-range maintenance and the integrity check (enabled
  /// for blocks consumed downstream).
  /// `analytic_sd`, when non-null (analytic error mode), supplies the
  /// unscaled per-aggregate stddevs used to synthesize the replica
  /// envelope (±2σ) instead of deriving it from `trials`.
  PublishResult Publish(int block, const Row& key, int batch,
                        std::vector<Value> main,
                        std::vector<std::vector<double>> trials,
                        bool track_ranges,
                        const std::vector<double>* analytic_sd = nullptr)
      IOLAP_REQUIRES(engine_serial_phase);

  /// Integrity-checks an *untouched* group under the current scale using
  /// its stored replica envelope. Sets `missing` when the group was never
  /// published (caller falls back to a full Publish).
  PublishResult Refresh(int block, const Row& key, int batch,
                        bool track_ranges) IOLAP_REQUIRES(engine_serial_phase);

  /// Failure recovery: forgets groups first published after `batch` and
  /// rolls the surviving groups' range constraints back to it, freezing
  /// classification ranges for `freeze_updates` replayed batches (see
  /// VariationRangeTracker::RecoverTo).
  void RollbackTo(int batch, int freeze_updates = 0)
      IOLAP_REQUIRES(engine_serial_phase);

  /// Recovery-storm degradation (staircase level 1): scales the envelope
  /// slack ε of every live tracker and of trackers created from now on.
  void ScaleSlack(double factor) IOLAP_REQUIRES(engine_serial_phase);

  /// Number of groups currently published for `block`.
  size_t GroupCount(int block) const;

  /// Approximate bytes of `block`'s published relation (key + replicated
  /// values): the per-batch broadcast payload of the lazy-evaluation join.
  size_t RelationBytes(int block) const;

  size_t TotalBytes() const;

  /// Shard slices of a block's published relation, partitioned by group-key
  /// hash with catalog/partitioner's ShardOfHash — the same rule that
  /// routes rows to shards, so a shard's registry slice is exactly the
  /// groups its rows feed. Slices partition the whole: summing over
  /// shard ∈ [0, num_shards) reproduces GroupCount / RelationBytes.
  size_t ShardGroupCount(int block, size_t shard, size_t num_shards) const;
  size_t ShardRelationBytes(int block, size_t shard, size_t num_shards) const;

  // --- RangeConstraintSink -----------------------------------------------
  // Routes the obligations of pruning decisions (ClassifyPredicate with a
  // constraint sink) to the per-group variation-range trackers. A value
  // with no obligations can never fail the integrity check; values that
  // repeatedly betray their obligations are permanently demoted to
  // Unbounded ranges (their consumers simply stay non-deterministic).
  void RequireUpper(int block, int col, const Row& key, double bound) override
      IOLAP_REQUIRES(engine_serial_phase);
  void RequireLower(int block, int col, const Row& key, double bound) override
      IOLAP_REQUIRES(engine_serial_phase);
  void RequireContainment(int block, int col, const Row& key) override
      IOLAP_REQUIRES(engine_serial_phase);

  // --- AggLookupResolver -------------------------------------------------
  // `col` indexes the block's output schema; group-key columns resolve to
  // the key itself (deterministic), aggregate columns to published values
  // re-scaled to the block's current m_i.
  //
  // Deliberately NOT role-annotated: lookups are the parallel evaluation
  // phases' hot path and read the registry while it is frozen (no Publish /
  // Refresh / Require* runs concurrently — which is exactly what the
  // IOLAP_REQUIRES annotations above enforce). FindEntry's thread_local
  // memo keeps the concurrent probes allocation- and contention-free.
  Value Lookup(int block, int col, const Row& key) const override;
  Value LookupTrial(int block, int col, const Row& key,
                    int trial) const override;
  /// Batched probe for the compiled expression path: one entry lookup for
  /// all trials instead of one per trial. Result-identical to calling
  /// LookupTrial for each trial in [0, num_trials).
  void LookupTrials(int block, int col, const Row& key, int num_trials,
                    Value* out) const override;
  Interval LookupRange(int block, int col, const Row& key) const override;

 private:
  struct Entry {
    int first_batch = 0;
    /// Graceful per-value degradation: after repeated failures the range
    /// is reported as Unbounded forever — rows consulting it simply stay
    /// in the non-deterministic set, and this value can never trigger a
    /// rollback again. Pruning on well-behaved values continues.
    bool range_disabled = false;
    std::vector<Value> main;                  // unscaled
    std::vector<std::vector<double>> trials;  // unscaled
    /// Unscaled replica envelopes (min / max / stddev) per aggregate:
    /// what Refresh() re-scales instead of walking `trials`.
    std::vector<double> env_lo;
    std::vector<double> env_hi;
    std::vector<double> env_sd;
    std::vector<VariationRangeTracker> ranges;  // empty if not tracked
  };
  struct Relation {
    int num_keys = 0;
    double scale = 1.0;
    std::vector<bool> linear;  // per aggregate column
    std::unordered_map<Row, Entry, RowHash, RowEq> entries;
    // Validates the thread_local lookup memo in FindEntry. Assigned a
    // globally unique value at construction and re-assigned on every
    // erase (RollbackTo), so a memoized entry pointer can never alias a
    // different relation or survive the erase that freed it. Entry
    // pointers are otherwise stable (node-based map), so inserts need no
    // bump.
    uint64_t memo_epoch = 0;
    // Integrity failures charged per group. Deliberately NOT rolled back:
    // a failure recovery erases entries created after the recovery point,
    // and without the persistent count a chronically misbehaving value
    // would be recreated with a clean slate and fail identically forever.
    std::unordered_map<Row, int, RowHash, RowEq> failure_counts;
  };

  const Entry* FindEntry(int block, const Row& key) const;
  /// Mutable tracker access for constraint registration; null when the
  /// entry is missing, disabled, or untracked.
  VariationRangeTracker* TrackerFor(int block, int col, const Row& key)
      IOLAP_REQUIRES(engine_serial_phase);

  /// Scale applied to aggregate column `a` under `rel`'s current m_i.
  double ColScale(const Relation& rel, size_t a) const {
    return rel.linear[a] ? rel.scale : 1.0;
  }

  /// Per-column integrity updates for `entry` under the current scale;
  /// shared by Publish and Refresh. `batch` feeds the fault-injection
  /// seams (registry-envelope-fault keys its schedule on it).
  void CheckRanges(Relation& rel, const Row& key, Entry& entry, int batch,
                   PublishResult* result) IOLAP_REQUIRES(engine_serial_phase);

  double slack_;
  std::vector<Relation> relations_;  // indexed by block id
};

}  // namespace iolap

#endif  // IOLAP_IOLAP_AGGREGATE_REGISTRY_H_
