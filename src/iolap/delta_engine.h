#ifndef IOLAP_IOLAP_DELTA_ENGINE_H_
#define IOLAP_IOLAP_DELTA_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "bootstrap/error_estimate.h"
#include "bootstrap/poisson_multiplicities.h"
#include "catalog/partitioner.h"
#include "common/thread_pool.h"
#include "exec/batch.h"
#include "exec/expr_program.h"
#include "exec/program_verifier.h"
#include "exec/hash_aggregate.h"
#include "exec/operators.h"
#include "iolap/aggregate_registry.h"
#include "plan/uncertainty_analysis.h"

namespace iolap {

class ShardSet;
class ExchangeLayer;

/// How a query is executed.
enum class ExecutionMode {
  /// Traditional batch OLAP: one pass over all data, no bootstrap — the
  /// paper's "baseline".
  kBaseline,
  /// Classical higher-order delta rules (DBToaster-style HDA, §3.1/§8):
  /// inner aggregates are delta-maintained, but every operator that reads a
  /// refining aggregate re-evaluates all previously-processed data each
  /// batch.
  kHda,
  /// The paper's contribution: uncertainty-driven fine-grained delta
  /// updates. OPT1/OPT2 toggles below select the §8.2 ablation points.
  kIolap,
};

/// How approximate results are error-estimated and how variation-range
/// envelopes are derived.
enum class ErrorMethod {
  /// Simulation (poissonized) bootstrap — the paper's default.
  kBootstrap,
  /// Closed-form estimates from input moments (the §9 "analytical
  /// bootstrap [39] is orthogonal" hook): no trial replicas at all, so the
  /// per-tuple ×trials cost disappears. Supported for COUNT/SUM/AVG;
  /// other aggregates report no estimate and classify conservatively.
  kAnalytic,
};

/// What a program-verifier rejection does to the query (see
/// EngineOptions::verify_programs; verification itself is not optional).
enum class ProgramVerifyMode {
  /// Drop the rejected program, keep the interpreter for that block, count
  /// the rejection in QueryMetrics. The default: verification can only
  /// cost speed, never a result.
  kEnforce,
  /// Any rejection fails query Init with an error naming the violated
  /// rule. For CI corpus gates and tests, where a rejection is always a
  /// compiler bug that must not hide behind the interpreter fallback.
  kStrict,
};

/// Engine knobs; defaults follow the paper's setup (§8: bootstrap with 100
/// trials, slack ε = 2).
struct EngineOptions {
  ExecutionMode mode = ExecutionMode::kIolap;
  ErrorMethod error_method = ErrorMethod::kBootstrap;
  /// OPT1 (§5): variation-range classification of tuple uncertainty. When
  /// off, every tuple whose filter decision reads an uncertain aggregate is
  /// re-evaluated every batch.
  bool tuple_partition = true;
  /// OPT2 (§6): lineage-based lazy evaluation. When off, re-evaluating a
  /// saved tuple re-derives it through the block's join pipeline instead of
  /// refreshing only its uncertain attributes.
  bool lazy_lineage = true;
  /// Bootstrap trials for error estimation and variation ranges.
  int num_trials = 100;
  /// Slack ε of the variation-range estimator.
  double slack = 2.0;
  /// Mini-batch count for the streamed relation.
  size_t num_batches = 40;
  PartitionOptions partition;
  uint64_t seed = 42;
  /// Virtual cluster width for the *modeled* shuffle/broadcast bytes. The
  /// model's prediction is recorded as BatchMetrics::modeled_shipped_bytes
  /// next to the measured ExchangeLayer traffic, so its error stays
  /// visible (bench fig9/fig10).
  int virtual_workers = 20;
  /// Horizontal shards S (src/shard): relations partition across S
  /// in-process shards by stable row hash, the evaluate phase runs
  /// shard-parallel, and all cross-shard bytes flow through the
  /// ExchangeLayer. 1 = unsharded. Must be in [1, kMaxShards]: the
  /// failpoint detail encoding for exchange/shard seams is
  /// `batch * kMaxShards + shard`.
  size_t num_shards = 1;
  /// ExchangeLayer send attempts per message (bounded-backoff retry)
  /// before the destination shard is declared dead and its state is
  /// rebuilt from the last consistent batch.
  int exchange_max_attempts = 4;
  /// Per-batch state checkpoints retained for failure recovery; rollbacks
  /// deeper than this degrade to a full restart.
  size_t checkpoint_history = 8;
  /// Failure-recovery attempts per batch before the engine falls back to
  /// classification-free (always-correct) processing for the rest of the
  /// run.
  int max_recoveries_per_batch = 32;
  /// Apply the Appendix B viewlet-transformation rewrites (query
  /// decomposition) at compile time. Off by default; see
  /// plan/rewrite_rules.h and bench_ablation_rewrite.
  bool apply_rewrite_rules = false;
  /// Lower filters, aggregate arguments and projections into compiled
  /// register programs (exec/expr_program) with trial-invariant hoisting,
  /// replacing the interpreted per-trial hot loop. Results are bit-identical
  /// to the interpreter (expressions the compiler cannot prove identical
  /// keep the interpreter per block or per row); off = always interpret.
  bool compile_expressions = true;
  /// Static verification of compiled programs (exec/program_verifier.h +
  /// plan/plan_verifier.h) is always on: every program must be proven
  /// sound — and consistent with its plan fragment — before the engine
  /// accepts it. kEnforce (default) drops a rejected program and keeps the
  /// interpreter for that block, counting the rejection in QueryMetrics;
  /// kStrict additionally fails query Init on any rejection, so CI's
  /// corpus gate turns a compiler bug into a hard error instead of a
  /// silent slowdown.
  ProgramVerifyMode verify_programs = ProgramVerifyMode::kEnforce;
  /// Worker threads for intra-batch parallelism (classification and
  /// per-trial re-evaluation of the non-deterministic set, bootstrap trial
  /// accumulation, group re-materialization). 0 = inline execution, no pool.
  /// Results are bit-identical for every value — parallel phases only
  /// *evaluate*; all state mutation happens in serial row/trial order (see
  /// docs/INTERNALS.md, "Parallelism model").
  size_t num_threads = 0;
  /// Deterministic fault-injection spec armed for the duration of each
  /// Run(), merged after the IOLAP_FAILPOINTS environment spec (so entries
  /// here win on collisions). Grammar in common/failpoint.h; empty = no
  /// injection.
  std::string failpoints;
};

/// Per-batch counters produced by one block (folded into BatchMetrics).
struct BlockBatchStats {
  uint64_t input_rows = 0;
  uint64_t recomputed_rows = 0;
  /// Measured exchange traffic (ExchangeLayer wire bytes, including
  /// retransmissions). Stays 0 when no exchange is attached (direct
  /// BlockExecutor constructions without a ShardSet).
  uint64_t shipped_bytes = 0;
  /// What the virtual-worker shuffle/broadcast cost model would have
  /// charged — kept alongside the measurement so the model's error is
  /// visible.
  uint64_t modeled_shipped_bytes = 0;
};

/// Executes one lineage block incrementally: join deltas through cached
/// join states, classify filter decisions against variation ranges,
/// maintain the aggregate sketch and the non-deterministic set, publish the
/// block's (scaled) aggregate relation to the registry. One BlockExecutor
/// per block, driven in topological order by the QueryController.
class BlockExecutor {
 public:
  /// Returned by ProcessBatch when no rollback is needed.
  static constexpr int kNoRollback = -2;

  /// `pool` (nullable, not owned) provides intra-batch parallelism; null
  /// runs every phase inline on the caller. `shards` and `exchange`
  /// (nullable, not owned; the controller passes its ShardSet and
  /// ExchangeLayer) enable sharded evaluation and measured exchange
  /// traffic; null runs unsharded with measured bytes at 0.
  BlockExecutor(const QueryPlan* plan, int block_id,
                const std::vector<BlockAnnotations>* annotations,
                const EngineOptions* options, AggregateRegistry* registry,
                BootstrapWeights bootstrap, bool consumed_downstream,
                bool feeds_join, ThreadPool* pool = nullptr,
                ShardSet* shards = nullptr, ExchangeLayer* exchange = nullptr);

  /// Runs one mini-batch. `input_deltas[k]` holds the new rows of input k
  /// this batch; `scale` is m_i = |D| / |D_i|. Returns kNoRollback on
  /// success, otherwise the batch to roll back to (-1 = full restart) after
  /// a variation-range integrity failure.
  int ProcessBatch(int batch, double scale,
                   const std::vector<RowBatch>& input_deltas,
                   BlockBatchStats* stats);

  /// Groups that first appeared this batch (keys + current values), the
  /// delta feed for downstream kBlockOutput joins.
  const RowBatch& new_output_rows() const { return new_output_rows_; }

  /// One group of this batch's aggregate output snapshot.
  struct OutputGroup {
    Row key;
    std::vector<Value> main;
    std::vector<std::vector<double>> trials;
    /// Analytic mode: scaled, fpc-corrected stddev per aggregate
    /// (negative = no closed form for that aggregate).
    std::vector<double> analytic_sd;
  };

  /// Enables per-batch output snapshots. The top block collects with trial
  /// replicas (they feed the user-facing error estimates); blocks that only
  /// feed snapshot consumers skip the trial copies (`with_trials = false`),
  /// since consumers re-derive replicas through lineage lookups.
  void set_collect_output(bool collect, bool with_trials = true) {
    collect_output_ = collect;
    collect_trials_ = collect && with_trials;
  }

  /// The batch's full aggregate output (valid after ProcessBatch when
  /// collection is enabled). Unlike the registry relation, this snapshot
  /// contains no ghost groups: a group whose only contributions came from
  /// non-deterministic rows disappears the batch those rows stop passing.
  const std::vector<OutputGroup>& latest_output() const {
    return latest_output_;
  }

  /// Compile→verify counters for this block's programs (row + projection),
  /// filled at construction; the controller folds them into QueryMetrics
  /// and enforces ProgramVerifyMode::kStrict.
  const ProgramVerifierStats& verifier_stats() const {
    return verifier_stats_;
  }

  /// Current full output of a non-aggregate (top SPJ) block: permanently
  /// selected rows plus currently-passing non-deterministic rows, with
  /// uncertain attributes refreshed and projections applied. When
  /// `estimates` is non-null it receives, per emitted row, the bootstrap
  /// trial replicas of each projection (empty for deterministic columns).
  Table CurrentSpjOutput(
      std::vector<std::vector<std::vector<double>>>* estimates = nullptr) const;

  /// Size of the non-deterministic set (Fig. 9(e)).
  size_t PendingCount() const { return pending_.size(); }

  size_t JoinStateBytes() const;
  size_t OtherStateBytes() const;

  /// Disables range-based pruning for the rest of the run (recovery storm
  /// fallback; keeps results exact at HDA-like cost).
  void DisableClassification() { classification_disabled_ = true; }

  /// Recovery-storm staircase level 2 (softer than DisableClassification):
  /// Classify stops deciding — every uncertain-filter tuple routes to the
  /// non-deterministic set and no *new* obligations are registered — but
  /// range maintenance stays on, so the obligations already registered are
  /// still verified and can still escalate the recovery.
  void DisablePruning() { pruning_disabled_ = true; }

  /// True when the last ProcessBatch's rollback request (if any) came only
  /// from failpoint-injected spurious verdicts: the controller replays it
  /// with unfrozen ranges, reproducing the fault-free run bit for bit.
  bool rollback_injected() const { return rollback_injected_; }

  /// A block whose single input is an upstream aggregate's output is a
  /// *snapshot consumer*: it re-evaluates the upstream's (small) output
  /// relation from scratch every batch instead of keeping delta state.
  /// This is how post-aggregation projections and HAVING filters run —
  /// O(#groups) per batch — and it is immune to revocable group
  /// membership, because the snapshot never contains ghost groups.
  bool stateless() const { return stateless_; }

  // --- checkpointing for failure recovery (§5.1) -------------------------

  struct Checkpoint {
    int batch = 0;
    std::vector<JoinStep::Watermark> join_marks;
    std::vector<ExecRow> pending;
    GroupedAggregateState sketch;
    size_t sink_watermark = 0;
    size_t emitted_watermark = 0;
    /// Content hash computed at capture (see ChecksumCheckpoint). Restoring
    /// verifies it; a mismatch means the snapshot is corrupt and the
    /// controller escalates to an older checkpoint or a full restart
    /// instead of silently replaying bad state.
    uint64_t checksum = 0;
    /// Per-shard slice checksums over the pending (non-deterministic) set,
    /// partitioned by owner shard — kept separate from the global checksum
    /// so one shard's corruption is attributable. The consistent-cut rule:
    /// a checkpoint is usable only when the global checksum AND every
    /// shard slice verify (the shard-checkpoint-corrupt failpoint flips
    /// one slice at capture).
    std::vector<uint64_t> shard_checksums;

    /// Approximate retained bytes (ring-size accounting in the
    /// controller).
    size_t ByteSize() const;
  };

  std::shared_ptr<const Checkpoint> MakeCheckpoint(int batch) const;

  /// Order-insensitive content hash over everything a restore would replay
  /// (batch, join watermarks, pending rows, sketch accumulator results).
  static uint64_t ChecksumCheckpoint(const Checkpoint& checkpoint);

  /// The per-shard slice checksums of `checkpoint`'s pending set under
  /// `num_shards` shards (rows route by the same stable hash the ShardSet
  /// uses, so slices match shard ownership exactly).
  static std::vector<uint64_t> ShardSliceChecksums(const Checkpoint& checkpoint,
                                                   size_t num_shards);

  /// True when `checkpoint`'s checksum matches its content AND every shard
  /// slice checksum verifies (the consistent-cut rule — a batch is durable
  /// only when all S shard slices are intact). The
  /// checkpoint-restore-fault failpoint forces a mismatch here.
  static bool VerifyCheckpoint(const Checkpoint& checkpoint);

  void Restore(const Checkpoint& checkpoint);
  /// Drops all state (full restart).
  void Reset();

 private:
  // --- intra-batch parallelism ------------------------------------------
  // ProcessBatch splits each hot loop into a pure *evaluation* phase (runs
  // on the pool; reads only the row, the immutable plan, and the registry,
  // which is frozen during a batch) and a serial *apply* phase that mutates
  // engine state in the original row order. The same structure runs inline
  // when no pool is attached, so results are bit-identical for every
  // thread count.

  /// One constraint registration buffered during parallel classification
  /// and replayed onto the registry in serial row order. Replay-time
  /// registration is equivalent: within a batch ConstrainUpper/Lower only
  /// fold min/max bounds that always contain the tracker's current range,
  /// so neither classification outcomes nor the final registered bounds
  /// depend on registration order.
  struct ConstraintOp {
    enum class Kind : uint8_t { kUpper, kLower, kContainment };
    Kind kind;
    int block;
    int col;
    Row key;
    double bound = 0.0;
  };

  /// Per-row output of the parallel evaluation phase.
  struct RowEval {
    IntervalTruth truth = IntervalTruth::kUndecided;
    /// Row routes to the non-deterministic path (undecided, or decided
    /// true but permanently unsketchable).
    bool pending_route = false;
    /// Main (trial = -1) filter decision of a pending-routed row.
    bool main_pass = false;
    Row key;                       // group key (aggregate blocks only)
    /// HashRow(key), computed during the parallel evaluation phase so the
    /// serial apply phase probes the group maps without re-hashing.
    uint64_t key_hash = 0;
    std::vector<Value> main_vals;  // agg args at trial -1 (main_pass only)
    /// Per-trial surviving weight; 0 = multiplicity zero or filter failed
    /// under that resample.
    std::vector<double> trial_w;
    /// Agg args per surviving trial, flattened [t * num_aggs + a].
    std::vector<Value> trial_vals;
    std::vector<ConstraintOp> constraints;
  };

  /// Deferred trial-replica contribution of a certain row: the same value
  /// lands in every trial accumulator, weighted by the row's bootstrap
  /// multiplicity. Flushed by FlushDeferredTrials, partitioned by trial.
  struct CertainTrialAdd {
    TrialAccumulatorSet* acc;
    Value v;
    double weight;
    uint64_t uid;
    bool from_stream;
  };

  /// Deferred trial-replica contribution of a pending row: values and
  /// weights differ per trial and live in row_scratch_[eval_idx].
  struct PendingTrialAdd {
    TrialAccumulatorSet* acc;
    uint32_t eval_idx;
    uint32_t agg;
  };

  EvalContext MainContext() const;

  /// Incremental multi-way join of this batch's input deltas.
  RowBatch JoinDeltas(const std::vector<RowBatch>& input_deltas);

  /// Refreshes the row's uncertain attributes in place by re-evaluating
  /// their lineage (§6.2). With `charge_regeneration` (OPT2 off, for saved
  /// state rows), additionally performs the work of re-deriving the tuple
  /// through the block's join pipeline (hash probes + rematerialization).
  void RefreshRow(ExecRow* row, bool charge_regeneration) const;

  /// Classifies the filter decision for `row` (§5.2 SELECT rule),
  /// registering decided-outcome obligations onto `sink` (buffered; the
  /// caller replays them serially).
  IntervalTruth Classify(const ExecRow& row, RangeConstraintSink* sink) const;

  /// Evaluation phase for one row: refresh, classify, and — when the row
  /// routes to the non-deterministic path — the per-trial filter/argument
  /// evaluations. Pure except for the in-place row refresh; safe to run
  /// concurrently per row. `prog_state` is the caller's lane-private
  /// compiled-program scratch (null = interpret).
  void EvaluateRow(ExecRow* row, bool charge_regeneration, RowEval* ev,
                   ExprProgramState* prog_state) const;

  /// Compiled fast path for the non-deterministic part of EvaluateRow:
  /// one Bind (prologue + batched aggregate probes) plus the per-trial
  /// epilogue via EvalTrials. Returns false when the row hit a construct
  /// the program does not cover — the caller redoes the row with the
  /// interpreter, so results never change.
  bool EvaluateRowCompiled(const ExecRow& row, RowEval* ev,
                           ExprProgramState* ps) const;

  /// Routes an evaluated row: sketch/sink for certain rows, the pending
  /// (non-deterministic) set otherwise. Serial apply phase.
  void RouteRow(ExecRow row, size_t eval_idx, int batch,
                GroupedAggregateState* temp, std::vector<ExecRow>* new_pending)
      IOLAP_REQUIRES(engine_serial_phase);

  /// Adds a certain row's aggregate contributions to `target`: main
  /// accumulators immediately, trial replicas deferred to the flush.
  void AccumulateCertain(const ExecRow& row, int batch,
                         GroupedAggregateState* target)
      IOLAP_REQUIRES(engine_serial_phase);

  /// Applies a pending row's revocable contributions to `temp` from its
  /// precomputed RowEval: main accumulators immediately, trial replicas
  /// deferred to the flush.
  void ApplyPending(const ExecRow& row, size_t eval_idx, int batch,
                    GroupedAggregateState* temp)
      IOLAP_REQUIRES(engine_serial_phase);

  /// Drains the deferred trial-replica adds, partitioned across the pool
  /// by trial index: lanes own disjoint trial accumulators, and each
  /// accumulator receives its adds in serial-apply (row) order, so the
  /// result is bit-identical for every thread count. (Entered from the
  /// serial phase; the internal fan-out mutates lane-disjoint accumulators
  /// only.)
  void FlushDeferredTrials() IOLAP_REQUIRES(engine_serial_phase);

  /// Publishes sketch ∪ temp to the registry; returns rollback target or
  /// kNoRollback.
  int PublishOutput(int batch, double scale, const GroupedAggregateState& temp,
                    BlockBatchStats* stats) IOLAP_REQUIRES(engine_serial_phase);

  Row GroupKeyOf(const ExecRow& row) const;

  /// Converts unscaled analytic stddevs into presentation stddevs: scaled
  /// like the aggregate and shrunk by the finite-population correction
  /// sqrt(1 - 1/m) so the estimate collapses to zero on the final batch.
  std::vector<double> DisplayAnalyticSd(const std::vector<double>& unscaled,
                                        double effective_scale) const;

  bool classification_enabled() const {
    return options_->mode == ExecutionMode::kIolap &&
           options_->tuple_partition && !classification_disabled_;
  }
  bool lazy_enabled() const {
    return options_->mode == ExecutionMode::kIolap && options_->lazy_lineage;
  }

  const QueryPlan* plan_;
  const Block* block_;
  const BlockAnnotations* ann_;
  const EngineOptions* options_;
  AggregateRegistry* registry_;
  ThreadPool* pool_;  // not owned; null = inline
  /// Sharded execution (null = unsharded, no measured exchange traffic).
  /// Both owned by the controller; see ProcessBatch's routing / evaluate /
  /// partial-aggregate phases and PublishOutput's lineage broadcast.
  ShardSet* shards_;
  ExchangeLayer* exchange_;
  BootstrapWeights bootstrap_;
  bool consumed_downstream_;
  bool feeds_join_;
  bool any_agg_arg_uncertain_ = false;
  bool classification_disabled_ = false;
  bool pruning_disabled_ = false;
  bool rollback_injected_ = false;
  bool collect_output_ = false;
  bool collect_trials_ = false;
  bool stateless_ = false;
  /// Set after a rollback/reset: registry values may be newer than the
  /// restored sketches, so the next batch republishes every group.
  bool force_full_publish_ = false;

  // Compiled expression programs (exec/expr_program), built once at plan
  // time and shared read-only across lanes; null = expression not compiled
  // (flag off, or a construct the compiler refuses). row_program_'s roots
  // are [filter?] + aggregate arguments; proj_program_'s are the
  // projections of a non-aggregate block.
  std::unique_ptr<const ExprProgram> row_program_;
  std::unique_ptr<const ExprProgram> proj_program_;
  int filter_root_ = -1;   // root index of the filter in row_program_
  int arg_root_base_ = 0;  // root index of aggregate argument 0
  ProgramVerifierStats verifier_stats_;
  /// Lane-private evaluation scratch, one per pool lane (index = the lane
  /// argument ParallelRanges hands each range; inline mode uses lane 0).
  std::vector<ExprProgramState> prog_states_;
  /// Shard-private evaluation scratch, one per shard (sharded evaluate
  /// phase: one pool task per shard, each owning its scratch).
  std::vector<ExprProgramState> shard_prog_states_;
  /// Scratch for proj_program_ (CurrentSpjOutput is const and serial).
  mutable ExprProgramState proj_state_;

  // Operator states (§4.2).
  std::vector<JoinStep> join_steps_;
  std::vector<ExecRow> pending_;  // the non-deterministic set U
  GroupedAggregateState sketch_;
  std::vector<ExecRow> sink_rows_;  // non-aggregate top block only

  // Join-feed bookkeeping: groups already emitted downstream.
  std::vector<Row> emitted_order_;
  std::unordered_set<Row, RowHash, RowEq> emitted_set_;
  RowBatch new_output_rows_;
  RowBatch pending_passing_;  // non-agg block: pending rows passing now
  std::vector<OutputGroup> latest_output_;
  /// Groups whose last publication included a revocable (non-deterministic)
  /// contribution: they must be republished even if untouched, because the
  /// contribution may have lapsed.
  std::unordered_set<Row, RowHash, RowEq> prev_temp_keys_;

  // Per-batch scratch (cleared at the end of ProcessBatch; members only to
  // reuse capacity across batches). Deferred records hold accumulator
  // pointers, which are stable: GroupCells live in a node-based map and
  // their `aggs` vectors are sized once at creation.
  std::vector<RowEval> row_scratch_;
  std::vector<CertainTrialAdd> deferred_certain_;
  std::vector<PendingTrialAdd> deferred_pending_;
};

}  // namespace iolap

#endif  // IOLAP_IOLAP_DELTA_ENGINE_H_
