#include "iolap/delta_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "common/failpoint.h"
#include "common/hash.h"
#include "plan/plan_verifier.h"
#include "shard/exchange.h"
#include "shard/shard.h"

namespace iolap {

namespace {

// True if input `k` of `block` can deliver new rows after batch 0.
bool InputGrows(const QueryPlan& /*plan*/,
                const std::vector<BlockAnnotations>& annotations,
                const Block& block, size_t k) {
  const BlockInput& input = block.inputs[k];
  if (input.kind == BlockInput::Kind::kBaseTable) return input.streamed;
  return annotations[input.source_block].dynamic;
}

uint64_t DoubleBits(double x) {
  uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

}  // namespace

BlockExecutor::BlockExecutor(const QueryPlan* plan, int block_id,
                             const std::vector<BlockAnnotations>* annotations,
                             const EngineOptions* options,
                             AggregateRegistry* registry,
                             BootstrapWeights bootstrap,
                             bool consumed_downstream, bool feeds_join,
                             ThreadPool* pool, ShardSet* shards,
                             ExchangeLayer* exchange)
    : plan_(plan),
      block_(&plan->blocks[block_id]),
      ann_(&(*annotations)[block_id]),
      options_(options),
      registry_(registry),
      pool_(pool),
      shards_(shards),
      exchange_(exchange),
      bootstrap_(bootstrap),
      consumed_downstream_(consumed_downstream),
      feeds_join_(feeds_join),
      sketch_(&block_->aggs, options->num_trials) {
  for (bool uncertain : ann_->agg_arg_uncertain) {
    any_agg_arg_uncertain_ = any_agg_arg_uncertain_ || uncertain;
  }
  stateless_ = block_->inputs.size() == 1 &&
               block_->inputs[0].kind == BlockInput::Kind::kBlockOutput;
  for (size_t k = 1; k < block_->inputs.size(); ++k) {
    bool prefix_grows = false;
    for (size_t j = 0; j < k; ++j) {
      prefix_grows = prefix_grows || InputGrows(*plan, *annotations, *block_, j);
    }
    join_steps_.emplace_back(block_->inputs[k].prefix_key_cols,
                             block_->inputs[k].input_key_cols,
                             InputGrows(*plan, *annotations, *block_, k),
                             prefix_grows);
  }

  // Lower this block's hot expressions into compiled register programs
  // (exec/expr_program) through the verifier seam: CompileVerified refuses
  // both what the compiler cannot prove bit-identical and what the static
  // bytecode verifier rejects; the plan invariant prover then checks the
  // accepted program against this block's fragment. Any refusal keeps the
  // interpreter for the block.
  if (options->compile_expressions) {
    auto drop_if_plan_mismatch = [this](
                                     std::unique_ptr<const ExprProgram>* prog,
                                     ProgramRole role) {
      if (*prog == nullptr) return;
      const PlanVerifyResult pv =
          VerifyBlockProgram(*plan_, *block_, **prog, role);
      if (!pv.ok) {
        --verifier_stats_.verified;
        verifier_stats_.RecordRejection("plan-invariant", pv.message);
        prog->reset();
      }
    };
    std::vector<ExprPtr> roots;
    if (block_->filter != nullptr) {
      filter_root_ = 0;
      roots.push_back(block_->filter);
    }
    arg_root_base_ = static_cast<int>(roots.size());
    for (const AggSpec& agg : block_->aggs) roots.push_back(agg.arg);
    if (!roots.empty()) {
      row_program_ = CompileVerified(roots, plan->functions.get(),
                                     &ann_->spj_lineage, &verifier_stats_);
      drop_if_plan_mismatch(&row_program_, ProgramRole::kRowProgram);
    }
    if (!block_->has_aggregate() && !block_->projections.empty()) {
      proj_program_ =
          CompileVerified(block_->projections, plan->functions.get(),
                          &ann_->spj_lineage, &verifier_stats_);
      drop_if_plan_mismatch(&proj_program_, ProgramRole::kProjection);
    }
  }
  if (row_program_ != nullptr) {
    prog_states_.resize(pool_ != nullptr ? pool_->num_lanes() : 1);
    for (ExprProgramState& state : prog_states_) {
      row_program_->InitState(&state);
    }
    if (shards_ != nullptr && shards_->size() > 1) {
      // Sharded evaluate phase: one task per shard, each with its own
      // compiled-program scratch.
      shard_prog_states_.resize(shards_->size());
      for (ExprProgramState& state : shard_prog_states_) {
        row_program_->InitState(&state);
      }
    }
  }
  if (proj_program_ != nullptr) proj_program_->InitState(&proj_state_);
}

EvalContext BlockExecutor::MainContext() const {
  EvalContext ctx;
  ctx.functions = plan_->functions.get();
  ctx.resolver = registry_;
  ctx.column_lineage = &ann_->spj_lineage;
  ctx.trial = -1;
  return ctx;
}

RowBatch BlockExecutor::JoinDeltas(const std::vector<RowBatch>& input_deltas) {
  assert(input_deltas.size() == block_->inputs.size());
  RowBatch current = input_deltas[0];
  for (size_t k = 1; k < block_->inputs.size(); ++k) {
    RowBatch next;
    join_steps_[k - 1].ProcessBatch(current, input_deltas[k], &next);
    current = std::move(next);
  }
  return current;
}

void BlockExecutor::RefreshRow(ExecRow* row, bool charge_regeneration) const {
  if (charge_regeneration && !lazy_enabled()) {
    // Without lineage-based lazy evaluation, bringing a saved tuple up to
    // date means re-deriving it from its sources: re-probing every join it
    // passed through and rebuilding the tuple (§4.3 "generating a new tuple
    // requires going through the entire plan").
    for (const JoinStep& step : join_steps_) {
      Row key;
      key.reserve(step.prefix_key_cols().size());
      for (int c : step.prefix_key_cols()) key.push_back(row->values[c]);
      volatile size_t probed = step.ProbeCount(key);
      (void)probed;
    }
    ExecRow rebuilt = *row;  // rematerialization
    *row = std::move(rebuilt);
  }
  if (!ann_->spj_attr_uncertain.empty()) {
    const EvalContext ctx = MainContext();
    for (size_t c = 0; c < ann_->spj_lineage.size(); ++c) {
      const ExprPtr& lineage = ann_->spj_lineage[c];
      if (lineage != nullptr) {
        row->values[c] = lineage->Eval(row->values, ctx);
      }
    }
  }
}

IntervalTruth BlockExecutor::Classify(const ExecRow& row,
                                      RangeConstraintSink* sink) const {
  if (block_->filter == nullptr) return IntervalTruth::kAlwaysTrue;
  EvalContext ctx = MainContext();
  // With pruning disabled (recovery-storm staircase level 2) fall through
  // to conservative tagging: nothing is decided, so no new obligations are
  // registered — but range maintenance stays on and existing obligations
  // are still verified (unlike DisableClassification).
  if (classification_enabled() && !pruning_disabled_) {
    // Persistent (non-stateless) blocks act on decided outcomes across
    // batches, so every decided comparison must register the bounds that
    // keep it valid (the constraints the §5.1 integrity check enforces).
    // Stateless consumers re-decide everything next batch and impose no
    // obligations.
    if (!stateless_) ctx.constraint_sink = sink;
    return ClassifyPredicate(*block_->filter, row.values, ctx);
  }
  // Conservative §4.1 tagging (also the HDA behaviour): any tuple whose
  // filter reads uncertain values is non-deterministic; purely
  // deterministic filters evaluate normally.
  if (!ann_->filter_uncertain) {
    return block_->filter->Eval(row.values, ctx).IsTruthy()
               ? IntervalTruth::kAlwaysTrue
               : IntervalTruth::kAlwaysFalse;
  }
  return IntervalTruth::kUndecided;
}

Row BlockExecutor::GroupKeyOf(const ExecRow& row) const {
  const EvalContext ctx = MainContext();
  Row key;
  key.reserve(block_->group_by.size());
  for (const ExprPtr& g : block_->group_by) {
    key.push_back(g->Eval(row.values, ctx));
  }
  return key;
}

std::vector<double> BlockExecutor::DisplayAnalyticSd(
    const std::vector<double>& unscaled, double effective_scale) const {
  const double fpc =
      effective_scale > 1.0 ? std::sqrt(1.0 - 1.0 / effective_scale) : 0.0;
  std::vector<double> out;
  out.reserve(unscaled.size());
  for (size_t a = 0; a < unscaled.size(); ++a) {
    if (unscaled[a] < 0.0) {
      out.push_back(-1.0);  // no closed form
      continue;
    }
    const double s =
        block_->aggs[a].fn->ScalesLinearly() ? effective_scale : 1.0;
    out.push_back(unscaled[a] * s * fpc);
  }
  return out;
}

void BlockExecutor::AccumulateCertain(const ExecRow& row, int batch,
                                      GroupedAggregateState* target) {
  const EvalContext ctx = MainContext();
  GroupedAggregateState::GroupCells& cells =
      target->GetOrCreate(GroupKeyOf(row), batch);
  cells.last_touched = batch;
  const bool defer = bootstrap_.num_trials() > 0;
  for (size_t a = 0; a < block_->aggs.size(); ++a) {
    const Value v = block_->aggs[a].arg->Eval(row.values, ctx);
    cells.aggs[a].AddMainOnly(v, row.weight);
    if (defer) {
      deferred_certain_.push_back(
          {&cells.aggs[a], v, row.weight, row.stream_uid, row.FromStream()});
    }
  }
}

bool BlockExecutor::EvaluateRowCompiled(const ExecRow& row, RowEval* ev,
                                        ExprProgramState* ps) const {
  const int trials = bootstrap_.num_trials();
  // Prologue: trial-invariant subexpressions plus one batched resolver
  // probe per aggregate-lookup site, then the main (trial = -1) pass.
  if (!row_program_->Bind(ps, row.values, registry_, trials)) return false;
  if (!row_program_->EvalTrial(ps, row.values, -1)) return false;
  ev->main_pass =
      filter_root_ < 0 || row_program_->RootTruthy(*ps, filter_root_);
  if (!block_->has_aggregate()) return true;
  const size_t num_aggs = block_->aggs.size();
  ev->key = GroupKeyOf(row);
  ev->key_hash = HashRow(ev->key);
  if (ev->main_pass) {
    ev->main_vals.clear();
    ev->main_vals.reserve(num_aggs);
    for (size_t a = 0; a < num_aggs; ++a) {
      ev->main_vals.push_back(row_program_->RootValue(
          *ps, static_cast<size_t>(arg_root_base_) + a));
    }
  }
  // Candidate weights up front; EvalTrials zeroes the trials whose filter
  // decision fails under that resample and fills the argument values of the
  // surviving ones — the same end state the interpreted loop produces.
  ev->trial_w.assign(trials, 0.0);
  ev->trial_vals.assign(static_cast<size_t>(trials) * num_aggs, Value());
  for (int t = 0; t < trials; ++t) {
    ev->trial_w[t] =
        row.weight *
        (row.FromStream() ? bootstrap_.WeightAt(row.stream_uid, t) : 1);
  }
  return row_program_->EvalTrials(ps, row.values, trials, filter_root_,
                                  arg_root_base_, num_aggs, ev->trial_w.data(),
                                  ev->trial_vals.data());
}

void BlockExecutor::EvaluateRow(ExecRow* row, bool charge_regeneration,
                                RowEval* ev, ExprProgramState* prog_state) const {
  RefreshRow(row, charge_regeneration);

  // Classification with a buffered constraint sink: registrations are
  // replayed by the serial apply phase (see ConstraintOp). This is the same
  // code path in inline mode, so the engine behaves identically with and
  // without a pool.
  struct BufferedSink final : RangeConstraintSink {
    std::vector<ConstraintOp>* ops;
    void RequireUpper(int block, int col, const Row& key,
                      double bound) override {
      ops->push_back({ConstraintOp::Kind::kUpper, block, col, key, bound});
    }
    void RequireLower(int block, int col, const Row& key,
                      double bound) override {
      ops->push_back({ConstraintOp::Kind::kLower, block, col, key, bound});
    }
    void RequireContainment(int block, int col, const Row& key) override {
      ops->push_back({ConstraintOp::Kind::kContainment, block, col, key});
    }
  };
  BufferedSink sink;
  // The clear makes re-evaluation exactly idempotent (the pool-task-fault
  // retry path): a fresh RowEval's vector is already empty, but a retried
  // one holds the doomed attempt's registrations.
  ev->constraints.clear();
  sink.ops = &ev->constraints;
  ev->truth = Classify(*row, &sink);

  ev->pending_route =
      ev->truth != IntervalTruth::kAlwaysFalse &&
      !(ev->truth == IntervalTruth::kAlwaysTrue &&
        !(block_->has_aggregate() && any_agg_arg_uncertain_));
  if (!ev->pending_route) return;

  // Non-deterministic path: precompute the main filter decision and the
  // per-trial membership/argument evaluations. These read only the row and
  // the registry (frozen during a batch), never the sketch, so they run
  // concurrently per row; the contributions are applied serially later.
  if (prog_state != nullptr && EvaluateRowCompiled(*row, ev, prog_state)) {
    return;
  }
  // Interpreter path: no compiled program, or the row bailed mid-way (the
  // re-assignments below overwrite anything the compiled attempt wrote).
  EvalContext ctx = MainContext();
  ev->main_pass = block_->filter == nullptr ||
                  block_->filter->Eval(row->values, ctx).IsTruthy();
  if (!block_->has_aggregate()) return;
  const size_t num_aggs = block_->aggs.size();
  ev->key = GroupKeyOf(*row);
  ev->key_hash = HashRow(ev->key);
  ev->main_vals.clear();
  if (ev->main_pass) {
    ev->main_vals.reserve(num_aggs);
    for (size_t a = 0; a < num_aggs; ++a) {
      ev->main_vals.push_back(block_->aggs[a].arg->Eval(row->values, ctx));
    }
  }
  // Per-trial membership: the decision the filter takes under each
  // bootstrap resample, using the trial replicas of the aggregates it
  // reads. This is what makes the error estimate honest for tuples whose
  // membership is itself uncertain.
  const int trials = bootstrap_.num_trials();
  ev->trial_w.assign(trials, 0.0);
  ev->trial_vals.assign(static_cast<size_t>(trials) * num_aggs, Value());
  for (int t = 0; t < trials; ++t) {
    const double w =
        row->weight *
        (row->FromStream() ? bootstrap_.WeightAt(row->stream_uid, t) : 1);
    if (w == 0.0) continue;
    ctx.trial = t;
    if (block_->filter != nullptr &&
        !block_->filter->Eval(row->values, ctx).IsTruthy()) {
      continue;
    }
    ev->trial_w[t] = w;
    for (size_t a = 0; a < num_aggs; ++a) {
      ev->trial_vals[static_cast<size_t>(t) * num_aggs + a] =
          block_->aggs[a].arg->Eval(row->values, ctx);
    }
  }
}

void BlockExecutor::ApplyPending(const ExecRow& row, size_t eval_idx,
                                 int batch, GroupedAggregateState* temp) {
  const RowEval& ev = row_scratch_[eval_idx];
  if (!block_->has_aggregate()) {
    if (ev.main_pass) pending_passing_.push_back(row);
    return;
  }
  GroupedAggregateState::GroupCells* cells = nullptr;
  if (ev.main_pass) {
    cells = &temp->GetOrCreate(ev.key, ev.key_hash, batch);
    for (size_t a = 0; a < block_->aggs.size(); ++a) {
      cells->aggs[a].AddMainOnly(ev.main_vals[a], row.weight);
    }
  }
  bool any_trial = false;
  for (double w : ev.trial_w) any_trial = any_trial || w != 0.0;
  if (!any_trial) return;
  if (cells == nullptr) {
    // Trial-only pass: contribute only when the group's existence is
    // already established by a main-evaluation contribution (sketch or
    // another pending row). A group passing only in resamples must not
    // materialize in the output — Q(D_i) is defined by the main
    // evaluation (ghost groups would violate Theorem 1); its trial
    // replicas are folded only where the group exists. The check is
    // loop-invariant across this row's trials (nothing mutates the maps
    // between them), so one check covers all surviving trials.
    if (sketch_.Find(ev.key, ev.key_hash) == nullptr &&
        temp->Find(ev.key, ev.key_hash) == nullptr) {
      return;
    }
    cells = &temp->GetOrCreate(ev.key, ev.key_hash, batch);
  }
  for (size_t a = 0; a < block_->aggs.size(); ++a) {
    deferred_pending_.push_back({&cells->aggs[a],
                                 static_cast<uint32_t>(eval_idx),
                                 static_cast<uint32_t>(a)});
  }
}

void BlockExecutor::FlushDeferredTrials() {
  const int trials = bootstrap_.num_trials();
  if (trials == 0 || (deferred_certain_.empty() && deferred_pending_.empty())) {
    deferred_certain_.clear();
    deferred_pending_.clear();
    return;
  }
  const size_t num_aggs = block_->aggs.size();
  const auto flush_range = [&](size_t begin, size_t end, size_t /*lane*/) {
    for (size_t i = begin; i < end; ++i) {
      const int t = static_cast<int>(i);
      // Certain rows first, then pending rows, each in serial-apply order.
      // The two lists target disjoint accumulators (sketch vs. the batch
      // scratch), so per-accumulator add order equals row order — the same
      // order the pre-parallel engine produced.
      for (const CertainTrialAdd& rec : deferred_certain_) {
        const double w = rec.from_stream
                             ? rec.weight * bootstrap_.WeightAt(rec.uid, t)
                             : rec.weight;
        rec.acc->AddTrialOnly(t, rec.v, w);
      }
      for (const PendingTrialAdd& rec : deferred_pending_) {
        const RowEval& ev = row_scratch_[rec.eval_idx];
        const double w = ev.trial_w[i];
        if (w == 0.0) continue;
        rec.acc->AddTrialOnly(t, ev.trial_vals[i * num_aggs + rec.agg], w);
      }
    }
  };
  if (pool_ != nullptr) {
    pool_->ParallelRanges(static_cast<size_t>(trials), flush_range);
  } else {
    flush_range(0, static_cast<size_t>(trials), 0);
  }
  deferred_certain_.clear();
  deferred_pending_.clear();
}

void BlockExecutor::RouteRow(ExecRow row, size_t eval_idx, int batch,
                             GroupedAggregateState* temp,
                             std::vector<ExecRow>* new_pending) {
  const RowEval& ev = row_scratch_[eval_idx];
  if (ev.truth == IntervalTruth::kAlwaysFalse) return;
  if (!ev.pending_route) {
    if (block_->has_aggregate()) {
      AccumulateCertain(row, batch, &sketch_);
    } else {
      sink_rows_.push_back(std::move(row));
    }
    return;
  }
  // Non-deterministic (or permanently unsketchable): contributes revocably
  // this batch and is saved for re-evaluation in the next one.
  ApplyPending(row, eval_idx, batch, temp);
  new_pending->push_back(std::move(row));
}

int BlockExecutor::ProcessBatch(int batch, double scale,
                                const std::vector<RowBatch>& input_deltas,
                                BlockBatchStats* stats) {
  if (stateless_) {
    // Snapshot consumer: the controller passes the upstream's full output
    // relation; re-evaluate it from scratch (it is small — aggregate
    // results) and keep no cross-batch state.
    sketch_.Clear();
    sink_rows_.clear();
    pending_.clear();
    emitted_order_.clear();
    emitted_set_.clear();
    stats->recomputed_rows += input_deltas[0].size();
  } else {
    for (const RowBatch& delta : input_deltas) {
      stats->input_rows += delta.size();
    }
  }

  RowBatch fresh = JoinDeltas(input_deltas);
  // What the shuffle cost model charges for this batch's fresh rows (plus
  // per-row bootstrap overhead for streamed rows). Measured exchange
  // traffic accrues separately below, through ExchangeLayer::Ship.
  stats->modeled_shipped_bytes += BatchByteSize(fresh);
  for (const ExecRow& row : fresh) {
    if (row.FromStream()) {
      stats->modeled_shipped_bytes += bootstrap_.RowOverheadBytes();
    }
  }

  GroupedAggregateState temp(&block_->aggs, options_->num_trials);
  pending_passing_.clear();
  new_output_rows_.clear();
  std::vector<ExecRow> new_pending;

  // Re-evaluate the saved non-deterministic set (§5.1: delta update based
  // on U_{i-1} and ΔD_i).
  stats->recomputed_rows += pending_.size();
  if (!lazy_enabled()) {
    // Without OPT2 the saved tuples are re-shipped / re-derived.
    stats->modeled_shipped_bytes += BatchByteSize(pending_);
  }

  // Evaluation phase over fresh ∪ pending rows: refresh, classify (with
  // buffered constraints), and the per-trial re-evaluations of rows bound
  // for the non-deterministic path. Evaluations read only the row and the
  // registry — which is frozen until the apply phase replays constraints
  // and PublishOutput republishes — so rows are independent and the pass
  // parallelizes without changing any outcome.
  const size_t num_fresh = fresh.size();
  const size_t total_rows = num_fresh + pending_.size();
  row_scratch_.clear();
  row_scratch_.resize(total_rows);

  // Sharded execution: route every row of the batch to its owner shard
  // (stable hash — a recovery replay routes identically) and ship the
  // kDeltaRoute messages through the exchange. The measured wire bytes,
  // including retransmissions, are this batch's shuffle traffic; a
  // message that exhausts its retries kills the destination shard, and
  // the whole batch rolls back to the last consistent cut (injected
  // recovery: the replay reproduces the fault-free bits exactly).
  // S = 1 is the co-located degenerate: the only shard lives with the
  // coordinator, so nothing crosses a wire and measured bytes stay 0.
  const bool sharded =
      shards_ != nullptr && exchange_ != nullptr && shards_->size() > 1;
  if (sharded) {
    shards_->BeginBlockBatch();
    const size_t num_shards = shards_->size();
    std::vector<uint64_t> route_bytes(num_shards, 0);
    std::vector<uint64_t> route_hash(num_shards, 0);
    for (size_t i = 0; i < total_rows; ++i) {
      const ExecRow& row = i < num_fresh ? fresh[i] : pending_[i - num_fresh];
      const size_t s = shards_->ShardOf(row);
      shards_->shard(s).OwnRow(static_cast<uint32_t>(i));
      uint64_t bytes = 0;
      if (i < num_fresh) {
        bytes = row.ByteSize();
        if (row.FromStream()) bytes += bootstrap_.RowOverheadBytes();
      } else if (!lazy_enabled()) {
        // Without OPT2 the saved tuples are re-shipped to their shards.
        bytes = row.ByteSize();
      }
      route_bytes[s] += bytes;
      route_hash[s] = HashCombine(route_hash[s], bytes ^ row.stream_uid);
    }
    for (size_t s = 0; s < num_shards; ++s) {
      const auto shipped = exchange_->Ship(
          ExchangeKind::kDeltaRoute, batch, ExchangeMessage::kCoordinator,
          static_cast<int>(s), route_bytes[s], route_hash[s]);
      if (!shipped.ok()) {
        rollback_injected_ = true;
        row_scratch_.clear();
        return batch > 0 ? batch - 1 : -1;
      }
      stats->shipped_bytes += *shipped;
    }
  }

  const auto evaluate = [&](size_t begin, size_t end, size_t lane) {
    // Each ParallelRanges lane owns one compiled-program scratch state;
    // inline execution is lane 0.
    ExprProgramState* prog_state =
        row_program_ != nullptr ? &prog_states_[lane] : nullptr;
    for (size_t i = begin; i < end; ++i) {
      ExecRow& row = i < num_fresh ? fresh[i] : pending_[i - num_fresh];
      EvaluateRow(&row, /*charge_regeneration=*/i >= num_fresh,
                  &row_scratch_[i], prog_state);
    }
  };
  if (sharded && shards_->size() > 1) {
    // One evaluate task per shard, each iterating the rows its shard owns
    // with shard-private program scratch. Rows still write their global
    // row_scratch_ slots and the serial apply phase below consumes them
    // in global row order, so S = 4 reproduces S = 1 (and the unsharded
    // engine) bit for bit — only the evaluation schedule changes.
    const auto eval_shard = [&](size_t s) {
      ExprProgramState* prog_state =
          row_program_ != nullptr ? &shard_prog_states_[s] : nullptr;
      for (const uint32_t i : shards_->shard(s).owned_rows()) {
        ExecRow& row = i < num_fresh ? fresh[i] : pending_[i - num_fresh];
        EvaluateRow(&row, /*charge_regeneration=*/i >= num_fresh,
                    &row_scratch_[i], prog_state);
      }
    };
    if (pool_ != nullptr) {
      // Idempotent for the same reason as the range split: re-running a
      // shard's task after a simulated crash overwrites the same slots.
      pool_->ParallelFor(shards_->size(), eval_shard, /*idempotent=*/true);
    } else {
      for (size_t s = 0; s < shards_->size(); ++s) eval_shard(s);
    }
  } else if (pool_ != nullptr) {
    // Pure evaluation into disjoint scratch slots: re-running a range after
    // a simulated worker crash overwrites the same slots, so the phase is
    // idempotent and participates in pool-task fault injection.
    pool_->ParallelRanges(total_rows, evaluate, /*idempotent=*/true);
  } else {
    evaluate(0, total_rows, 0);
  }

  // The shards return their evaluated rows (the partial-aggregate payload
  // the serial apply phase folds) to the coordinator. This is also where
  // a shard that died mid-evaluation surfaces: the shard-eval-fault
  // failpoint (detail = batch * kMaxShards + shard) kills shard s here,
  // deterministically on the driving thread, and the batch rolls back.
  if (sharded) {
    for (size_t s = 0; s < shards_->size(); ++s) {
      const uint64_t detail = static_cast<uint64_t>(batch) * kMaxShards + s;
      if (IOLAP_FAILPOINT(Failpoint::kShardEvalFault, detail)) {
        exchange_->KillShard(s);
        rollback_injected_ = true;
        row_scratch_.clear();
        return batch > 0 ? batch - 1 : -1;
      }
      uint64_t bytes = 0;
      uint64_t hash = 0;
      for (const uint32_t i : shards_->shard(s).owned_rows()) {
        const RowEval& ev = row_scratch_[i];
        bytes += 16 + RowByteSize(ev.key) + ev.main_vals.size() * 16 +
                 ev.trial_w.size() * 8 + ev.trial_vals.size() * 16 +
                 ev.constraints.size() * 32;
        hash = HashCombine(hash, ev.key_hash ^ ev.trial_w.size());
      }
      const auto shipped = exchange_->Ship(
          ExchangeKind::kPartialAggregate, batch, static_cast<int>(s),
          ExchangeMessage::kCoordinator, bytes, hash);
      if (!shipped.ok()) {
        rollback_injected_ = true;
        row_scratch_.clear();
        return batch > 0 ? batch - 1 : -1;
      }
      stats->shipped_bytes += *shipped;
    }
  }

  // Pre-size the group maps with this batch's routing counts (upper bounds
  // on new groups) so the serial apply phase never rehashes mid-loop.
  if (block_->has_aggregate()) {
    size_t certain_rows = 0;
    size_t pending_rows = 0;
    for (const RowEval& ev : row_scratch_) {
      if (ev.truth == IntervalTruth::kAlwaysFalse) continue;
      if (ev.pending_route) {
        ++pending_rows;
      } else {
        ++certain_rows;
      }
    }
    sketch_.Reserve(certain_rows);
    temp.Reserve(pending_rows);
  }

  // Apply phase, serial in the original row order: replay the buffered
  // range constraints, then route each row into the sketch / sink /
  // non-deterministic set. Entering the serial-phase role here (a no-op at
  // runtime) is what lets Clang verify that none of the mutation below is
  // reachable from the parallel evaluation lambdas above.
  ScopedThreadRole serial_phase(engine_serial_phase);
  for (size_t i = 0; i < total_rows; ++i) {
    for (const ConstraintOp& op : row_scratch_[i].constraints) {
      switch (op.kind) {
        case ConstraintOp::Kind::kUpper:
          registry_->RequireUpper(op.block, op.col, op.key, op.bound);
          break;
        case ConstraintOp::Kind::kLower:
          registry_->RequireLower(op.block, op.col, op.key, op.bound);
          break;
        case ConstraintOp::Kind::kContainment:
          registry_->RequireContainment(op.block, op.col, op.key);
          break;
      }
    }
    ExecRow& row = i < num_fresh ? fresh[i] : pending_[i - num_fresh];
    RouteRow(std::move(row), i, batch, &temp, &new_pending);
  }
  pending_ = std::move(new_pending);

  // Drain the deferred trial-replica contributions (trial-partitioned)
  // before publication reads the accumulators.
  FlushDeferredTrials();

  const int rollback = PublishOutput(batch, scale, temp, stats);
  row_scratch_.clear();
  return rollback;
}

int BlockExecutor::PublishOutput(int batch, double scale,
                                 const GroupedAggregateState& temp,
                                 BlockBatchStats* stats) {
  rollback_injected_ = false;
  if (!block_->has_aggregate()) return kNoRollback;

  // Aggregates directly over the streamed relation scale their magnitude
  // results by m_i (§2 query semantics); aggregates over the outputs of
  // other blocks see already-scaled estimates on a per-seen-group basis.
  bool scans_stream = false;
  for (const BlockInput& input : block_->inputs) {
    scans_stream = scans_stream || (input.kind == BlockInput::Kind::kBaseTable &&
                                    input.streamed);
  }
  const double effective_scale = scans_stream ? scale : 1.0;
  registry_->SetBlockScale(block_->id, effective_scale);

  // Ranges are maintained only when classification consumes them; under
  // HDA / conservative tagging (and after a recovery-storm fallback) every
  // suspect tuple is re-evaluated each batch anyway, so integrity failures
  // would be pure overhead.
  const bool track = consumed_downstream_ && classification_enabled();

  int rollback = kNoRollback;
  // AND-reduced over every failure this batch: the recovery counts as
  // injected only when *no* real constraint violation contributed.
  bool injected_only = true;
  latest_output_.clear();
  std::unordered_set<Row, RowHash, RowEq> temp_keys_now;

  auto note_result = [&](const AggregateRegistry::PublishResult& result) {
    if (!result.ok) {
      injected_only = injected_only && result.injected;
      if (rollback == kNoRollback || result.rollback_to < rollback) {
        rollback = result.rollback_to;
      }
    }
  };

  // Re-scales an unscaled result for presentation / downstream join rows.
  auto scale_value = [&](size_t a, const Value& unscaled) -> Value {
    if (unscaled.is_null() || !block_->aggs[a].fn->ScalesLinearly() ||
        effective_scale == 1.0) {
      return unscaled;
    }
    return Value::Double(unscaled.AsDouble() * effective_scale);
  };

  const bool analytic = options_->error_method == ErrorMethod::kAnalytic;

  // Ordered work list (sketch groups, then temp-only groups): the parallel
  // phase below computes pure per-group materializations; the serial phase
  // afterwards walks the same order doing all registry mutation, so the
  // published state and emission order match the inline engine exactly.
  struct PublishWork {
    const Row* key;
    const GroupedAggregateState::GroupCells* sketch_cells;
    const GroupedAggregateState::GroupCells* temp_cells;
    bool dirty;
    std::vector<Value> main;                  // unscaled (dirty groups)
    std::vector<std::vector<double>> trials;  // unscaled (dirty groups)
    std::vector<double> analytic_sd;          // unscaled (dirty groups)
    OutputGroup out;                          // when collect_output_
  };
  std::vector<PublishWork> work;
  work.reserve(sketch_.num_groups() + temp.num_groups());
  auto add_work = [&](const Row& key,
                      const GroupedAggregateState::GroupCells* sketch_cells,
                      const GroupedAggregateState::GroupCells* temp_cells) {
    if (temp_cells != nullptr) temp_keys_now.insert(key);
    const bool dirty =
        force_full_publish_ || temp_cells != nullptr ||
        (sketch_cells != nullptr && sketch_cells->last_touched == batch) ||
        prev_temp_keys_.count(key) > 0;
    work.push_back({&key, sketch_cells, temp_cells, dirty, {}, {}, {}, {}});
  };
  for (const auto& [key, cells] : sketch_.groups()) {
    add_work(key, &cells, temp.Find(key));
  }
  for (const auto& [key, cells] : temp.groups()) {
    if (sketch_.Find(key) == nullptr) add_work(key, nullptr, &cells);
  }

  // Materializes a dirty group's unscaled results (and, when collecting,
  // its presentation OutputGroup). Pure: reads only the two accumulator
  // cells; every mutation stays in the serial phase.
  auto materialize = [&](PublishWork& w) {
    w.main.clear();
    w.trials.clear();
    w.analytic_sd.clear();
    w.main.reserve(block_->aggs.size());
    w.trials.reserve(block_->aggs.size());
    for (size_t a = 0; a < block_->aggs.size(); ++a) {
      if (w.sketch_cells != nullptr && w.temp_cells != nullptr) {
        TrialAccumulatorSet merged = w.sketch_cells->aggs[a].Clone();
        merged.Merge(w.temp_cells->aggs[a]);
        w.main.push_back(merged.MainResult(1.0));
        w.trials.push_back(merged.TrialResults(1.0));
        if (analytic) {
          w.analytic_sd.push_back(AnalyticUnscaledStddev(
              block_->aggs[a].fn->name(), merged.moment_count(),
              merged.moment_variance()));
        }
      } else {
        const TrialAccumulatorSet& only = w.sketch_cells != nullptr
                                              ? w.sketch_cells->aggs[a]
                                              : w.temp_cells->aggs[a];
        w.main.push_back(only.MainResult(1.0));
        w.trials.push_back(only.TrialResults(1.0));
        if (analytic) {
          w.analytic_sd.push_back(AnalyticUnscaledStddev(
              block_->aggs[a].fn->name(), only.moment_count(),
              only.moment_variance()));
        }
      }
    }
    if (collect_output_) {
      OutputGroup group;
      group.key = *w.key;
      group.main.reserve(w.main.size());
      for (size_t a = 0; a < w.main.size(); ++a) {
        group.main.push_back(scale_value(a, w.main[a]));
      }
      if (collect_trials_) {
        group.trials = w.trials;
        for (size_t a = 0; a < group.trials.size(); ++a) {
          if (block_->aggs[a].fn->ScalesLinearly() && effective_scale != 1.0) {
            for (double& x : group.trials[a]) x *= effective_scale;
          }
        }
        if (analytic) {
          group.analytic_sd = DisplayAnalyticSd(w.analytic_sd,
                                                effective_scale);
        }
      }
      w.out = std::move(group);
    }
  };

  // Builds a clean (untouched) group's OutputGroup from the registry's
  // stored values. Const registry reads only — concurrency-safe; discarded
  // in the rare case the serial Refresh below reports the group missing.
  auto collect_clean = [&](PublishWork& w) {
    OutputGroup group;
    group.key = *w.key;
    const int base = static_cast<int>(block_->group_by.size());
    group.main.reserve(block_->aggs.size());
    for (size_t a = 0; a < block_->aggs.size(); ++a) {
      group.main.push_back(
          registry_->Lookup(block_->id, base + static_cast<int>(a), *w.key));
    }
    if (collect_trials_) {
      group.trials.resize(block_->aggs.size());
      for (size_t a = 0; a < block_->aggs.size(); ++a) {
        group.trials[a].reserve(options_->num_trials);
        for (int t = 0; t < options_->num_trials; ++t) {
          const Value v = registry_->LookupTrial(
              block_->id, base + static_cast<int>(a), *w.key, t);
          group.trials[a].push_back(v.is_null() ? 0.0 : v.AsDouble());
        }
      }
      if (analytic && w.sketch_cells != nullptr) {
        std::vector<double> sd;
        sd.reserve(block_->aggs.size());
        for (size_t a = 0; a < block_->aggs.size(); ++a) {
          sd.push_back(AnalyticUnscaledStddev(
              block_->aggs[a].fn->name(), w.sketch_cells->aggs[a].moment_count(),
              w.sketch_cells->aggs[a].moment_variance()));
        }
        group.analytic_sd = DisplayAnalyticSd(sd, effective_scale);
      }
    }
    w.out = std::move(group);
  };

  // Parallel phase: per-group trial re-materialization (and snapshot
  // assembly), the per-batch ×trials hot spot of publication.
  const auto prepare = [&](size_t i) {
    PublishWork& w = work[i];
    if (w.dirty) {
      materialize(w);
    } else if (collect_output_) {
      collect_clean(w);
    }
  };
  if (pool_ != nullptr) {
    // Pure per-slot materialization (materialize/collect_clean clear their
    // outputs first), so a crashed-and-retried chunk is harmless.
    pool_->ParallelFor(work.size(), prepare, /*idempotent=*/true);
  } else {
    for (size_t i = 0; i < work.size(); ++i) prepare(i);
  }

  // Serial phase in work-list order: integrity checks, registry
  // publication, downstream emission, snapshot assembly.
  for (PublishWork& w : work) {
    if (!w.dirty) {
      // Untouched group: integrity-refresh the stored envelope under the
      // new scale; values are unchanged.
      const auto result = registry_->Refresh(block_->id, *w.key, batch, track);
      if (!result.missing) {
        note_result(result);
        if (collect_output_) latest_output_.push_back(std::move(w.out));
        continue;
      }
      // Never published (first batch after a restore): materialize and
      // publish like a dirty group.
      materialize(w);
    }
    // Emit the group downstream the first time it appears.
    if (feeds_join_ && emitted_set_.find(*w.key) == emitted_set_.end()) {
      emitted_set_.insert(*w.key);
      emitted_order_.push_back(*w.key);
      ExecRow out;
      out.values = *w.key;
      for (size_t a = 0; a < w.main.size(); ++a) {
        out.values.push_back(scale_value(a, w.main[a]));
      }
      new_output_rows_.push_back(std::move(out));
    }
    if (collect_output_) latest_output_.push_back(std::move(w.out));
    note_result(registry_->Publish(block_->id, *w.key, batch,
                                   std::move(w.main), std::move(w.trials),
                                   track, analytic ? &w.analytic_sd : nullptr));
  }
  prev_temp_keys_ = std::move(temp_keys_now);
  force_full_publish_ = false;

  // Spurious integrity verdict (fault injection): report a failure even
  // though every check passed. Only meaningful while classification is
  // live — with track off a natural verdict is impossible too — and only
  // when no real failure already requested a (deeper) recovery. The `arg`
  // option sets the claimed rollback depth (default 1 batch).
  if (track && rollback == kNoRollback &&
      IOLAP_FAILPOINT(Failpoint::kExecIntegrityVerdict, batch)) {
    const int64_t depth = FailpointArg(Failpoint::kExecIntegrityVerdict, 1);
    rollback = static_cast<int>(
        std::max<int64_t>(-1, static_cast<int64_t>(batch) - depth));
  }
  rollback_injected_ = rollback != kNoRollback && injected_only;

  // Broadcast of the refreshed aggregate relation (the §6.2 broadcast
  // join that lazy evaluation relies on). The virtual-worker model's
  // charge is recorded as modeled bytes; the real kBroadcastLineage
  // messages below are measured through the exchange.
  if (consumed_downstream_ && options_->virtual_workers > 1) {
    stats->modeled_shipped_bytes +=
        registry_->RelationBytes(block_->id) *
        static_cast<uint64_t>(options_->virtual_workers - 1);
  }
  if (shards_ != nullptr && exchange_ != nullptr && consumed_downstream_) {
    // Each shard keeps a cached copy of the block's published relation for
    // its lineage lookups. It already owns its own registry slice (its
    // partial aggregates produced it), so the broadcast rebuilds only the
    // other shards' slices: payload to shard s = relation minus s's slice.
    // Unsharded (S = 1) this is 0 bytes — there is nobody to ship to.
    const size_t num_shards = shards_->size();
    const size_t relation_bytes = registry_->RelationBytes(block_->id);
    for (size_t s = 0; s < num_shards && num_shards > 1; ++s) {
      const size_t slice =
          registry_->ShardRelationBytes(block_->id, s, num_shards);
      const auto shipped = exchange_->Ship(
          ExchangeKind::kBroadcastLineage, batch,
          ExchangeMessage::kCoordinator, static_cast<int>(s),
          static_cast<uint64_t>(relation_bytes - slice),
          HashCombine(static_cast<uint64_t>(block_->id), relation_bytes));
      if (!shipped.ok()) {
        if (rollback == kNoRollback) {
          rollback = batch > 0 ? batch - 1 : -1;
          rollback_injected_ = true;
        }
        break;
      }
      stats->shipped_bytes += *shipped;
    }
  }
  return rollback;
}

Table BlockExecutor::CurrentSpjOutput(
    std::vector<std::vector<std::vector<double>>>* estimates) const {
  Table out(block_->output_schema);
  EvalContext ctx = MainContext();
  const int trials = bootstrap_.num_trials();
  // Compiled projection path: one Bind (with its batched aggregate probes)
  // covers the main pass and every per-trial re-evaluation of the row.
  // Returns false on a runtime bail; the caller redoes the row interpreted.
  auto emit_compiled = [&](const ExecRow& row) -> bool {
    if (proj_program_ == nullptr) return false;
    const size_t num_proj = block_->projections.size();
    const int bind_trials = estimates != nullptr ? trials : 0;
    if (!proj_program_->Bind(&proj_state_, row.values, registry_,
                             bind_trials) ||
        !proj_program_->EvalTrial(&proj_state_, row.values, -1)) {
      return false;
    }
    Row projected;
    projected.reserve(num_proj);
    for (size_t p = 0; p < num_proj; ++p) {
      projected.push_back(proj_program_->RootValue(proj_state_, p));
    }
    if (estimates != nullptr) {
      std::vector<std::vector<double>> row_trials(num_proj);
      for (size_t p = 0; p < num_proj; ++p) {
        if (ann_->output_attr_uncertain[p]) row_trials[p].reserve(trials);
      }
      for (int t = 0; t < trials; ++t) {
        if (!proj_program_->EvalTrial(&proj_state_, row.values, t)) {
          return false;
        }
        for (size_t p = 0; p < num_proj; ++p) {
          if (!ann_->output_attr_uncertain[p]) continue;
          const Value v = proj_program_->RootValue(proj_state_, p);
          row_trials[p].push_back(v.is_null() ? projected[p].AsDouble()
                                              : v.AsDouble());
        }
      }
      estimates->push_back(std::move(row_trials));
    }
    out.AddRow(std::move(projected));
    return true;
  };
  auto emit = [&](ExecRow row) {
    RefreshRow(&row, /*charge_regeneration=*/false);
    if (emit_compiled(row)) return;
    ctx.trial = -1;
    Row projected;
    projected.reserve(block_->projections.size());
    for (const ExprPtr& p : block_->projections) {
      projected.push_back(p->Eval(row.values, ctx));
    }
    if (estimates != nullptr) {
      std::vector<std::vector<double>> row_trials(block_->projections.size());
      for (size_t p = 0; p < block_->projections.size(); ++p) {
        if (!ann_->output_attr_uncertain[p]) continue;
        row_trials[p].reserve(bootstrap_.num_trials());
        for (int t = 0; t < bootstrap_.num_trials(); ++t) {
          ctx.trial = t;
          const Value v = block_->projections[p]->Eval(row.values, ctx);
          row_trials[p].push_back(v.is_null() ? projected[p].AsDouble()
                                              : v.AsDouble());
        }
      }
      estimates->push_back(std::move(row_trials));
    }
    out.AddRow(std::move(projected));
  };
  for (const ExecRow& row : sink_rows_) emit(row);
  for (const ExecRow& row : pending_passing_) emit(row);
  return out;
}

size_t BlockExecutor::JoinStateBytes() const {
  size_t total = 0;
  for (const JoinStep& step : join_steps_) total += step.StateBytes();
  return total;
}

size_t BlockExecutor::OtherStateBytes() const {
  size_t total = sketch_.ByteSize();
  total += BatchByteSize(pending_);
  total += BatchByteSize(sink_rows_);
  for (const Row& key : emitted_order_) total += RowByteSize(key);
  return total;
}

std::shared_ptr<const BlockExecutor::Checkpoint> BlockExecutor::MakeCheckpoint(
    int batch) const {
  auto cp = std::make_shared<Checkpoint>();
  cp->batch = batch;
  cp->join_marks.reserve(join_steps_.size());
  for (const JoinStep& step : join_steps_) {
    cp->join_marks.push_back(step.watermark());
  }
  cp->pending = pending_;
  cp->sketch = sketch_.Clone();
  cp->sink_watermark = sink_rows_.size();
  cp->emitted_watermark = emitted_order_.size();
  // Checksum the clone, not the live state: restore verifies exactly the
  // object it is about to replay.
  cp->checksum = ChecksumCheckpoint(*cp);
  if (IOLAP_FAILPOINT(Failpoint::kCheckpointCaptureCorrupt, batch)) {
    cp->checksum ^= 1;  // simulated bit-rot between capture and restore
  }
  // Per-shard slice checksums (the consistent-cut rule: restore requires
  // every slice to verify). The shard-checkpoint-corrupt failpoint rots
  // one shard's slice, detail = batch * kMaxShards + shard.
  const size_t num_shards =
      shards_ != nullptr ? shards_->size()
                         : std::max<size_t>(1, options_->num_shards);
  cp->shard_checksums = ShardSliceChecksums(*cp, num_shards);
  for (size_t s = 0; s < cp->shard_checksums.size(); ++s) {
    if (IOLAP_FAILPOINT(Failpoint::kShardCheckpointCorrupt,
                        static_cast<uint64_t>(batch) * kMaxShards + s)) {
      cp->shard_checksums[s] ^= 1;
    }
  }
  return cp;
}

std::vector<uint64_t> BlockExecutor::ShardSliceChecksums(
    const Checkpoint& checkpoint, size_t num_shards) {
  std::vector<uint64_t> slices(std::max<size_t>(1, num_shards), 0);
  for (const ExecRow& row : checkpoint.pending) {
    // Same routing rule as ShardSet::ShardOf, so each slice hashes exactly
    // the rows its shard owns, in the (deterministic) pending order.
    const uint64_t h = row.FromStream() ? row.stream_uid : HashRow(row.values);
    const size_t s = ShardOfHash(h, slices.size());
    uint64_t g = HashCombine(HashRow(row.values), row.stream_uid);
    g = HashCombine(g, DoubleBits(row.weight));
    slices[s] = HashCombine(slices[s], g);
  }
  return slices;
}

size_t BlockExecutor::Checkpoint::ByteSize() const {
  size_t total = sizeof(Checkpoint);
  total += join_marks.size() * sizeof(JoinStep::Watermark);
  total += BatchByteSize(pending);
  total += sketch.ByteSize();
  total += shard_checksums.size() * sizeof(uint64_t);
  return total;
}

uint64_t BlockExecutor::ChecksumCheckpoint(const Checkpoint& checkpoint) {
  // Scalars and ordered containers fold order-sensitively.
  uint64_t h = HashCombine(0, static_cast<uint64_t>(checkpoint.batch));
  for (const JoinStep::Watermark& mark : checkpoint.join_marks) {
    h = HashCombine(h, mark.input);
    h = HashCombine(h, mark.prefix);
  }
  for (const ExecRow& row : checkpoint.pending) {
    h = HashCombine(h, HashRow(row.values));
    h = HashCombine(h, row.stream_uid);
    h = HashCombine(h, DoubleBits(row.weight));
  }
  h = HashCombine(h, checkpoint.sink_watermark);
  h = HashCombine(h, checkpoint.emitted_watermark);
  // The sketch map iterates in unspecified order, so group hashes combine
  // through a commutative wrapping sum. Hashing accumulator *results* (the
  // bits a restore replays into publication) rather than raw internals
  // keeps the checksum independent of accumulator representation.
  uint64_t group_sum = 0;
  for (const auto& [key, cells] : checkpoint.sketch.groups()) {
    uint64_t g = HashCombine(HashRow(key),
                             static_cast<uint64_t>(cells.first_batch));
    for (const TrialAccumulatorSet& acc : cells.aggs) {
      const Value main = acc.MainResult(1.0);
      g = HashCombine(g, main.is_null() ? 0x9e3779b97f4a7c15ULL : main.Hash());
      for (double trial : acc.TrialResults(1.0)) {
        g = HashCombine(g, DoubleBits(trial));
      }
      g = HashCombine(g, DoubleBits(acc.moment_count()));
      g = HashCombine(g, DoubleBits(acc.moment_variance()));
    }
    group_sum += Mix64(g);
  }
  return HashCombine(h, group_sum);
}

bool BlockExecutor::VerifyCheckpoint(const Checkpoint& checkpoint) {
  if (IOLAP_FAILPOINT(Failpoint::kCheckpointRestoreFault, checkpoint.batch)) {
    return false;  // simulated corruption detected at restore time
  }
  if (ChecksumCheckpoint(checkpoint) != checkpoint.checksum) return false;
  // Consistent cut: the checkpoint is durable only when every shard's
  // slice checksum verifies — one rotten slice condemns the whole cut.
  return ShardSliceChecksums(checkpoint, checkpoint.shard_checksums.size()) ==
         checkpoint.shard_checksums;
}

void BlockExecutor::Restore(const Checkpoint& checkpoint) {
  for (size_t k = 0; k < join_steps_.size(); ++k) {
    join_steps_[k].TruncateTo(checkpoint.join_marks[k]);
  }
  pending_ = checkpoint.pending;
  sketch_ = checkpoint.sketch.Clone();
  sink_rows_.resize(checkpoint.sink_watermark);
  emitted_order_.resize(checkpoint.emitted_watermark);
  emitted_set_.clear();
  for (const Row& key : emitted_order_) emitted_set_.insert(key);
  new_output_rows_.clear();
  pending_passing_.clear();
  prev_temp_keys_.clear();
  // Registry values may be newer than the restored sketches.
  force_full_publish_ = true;
}

void BlockExecutor::Reset() {
  for (JoinStep& step : join_steps_) {
    step.TruncateTo(JoinStep::Watermark{0, 0});
  }
  pending_.clear();
  sketch_.Clear();
  sink_rows_.clear();
  emitted_order_.clear();
  emitted_set_.clear();
  new_output_rows_.clear();
  pending_passing_.clear();
  prev_temp_keys_.clear();
  force_full_publish_ = true;
}

}  // namespace iolap
