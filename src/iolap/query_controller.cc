#include "iolap/query_controller.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/timer.h"
#include "plan/uncertainty_analysis.h"

namespace iolap {

QueryController::QueryController(const Catalog* catalog, QueryPlan plan,
                                 EngineOptions options)
    : catalog_(catalog), plan_(std::move(plan)), options_(options) {}

Status QueryController::Init() {
  IOLAP_RETURN_IF_ERROR(ValidatePlan(plan_));
  IOLAP_ASSIGN_OR_RETURN(annotations_, AnalyzeUncertainty(plan_));

  // The baseline is the traditional batch engine: one pass, no bootstrap.
  if (options_.mode == ExecutionMode::kBaseline) {
    options_.num_batches = 1;
    options_.num_trials = 0;
  }
  if (options_.num_trials < 0) {
    return Status::InvalidArgument("num_trials must be >= 0");
  }
  if (options_.num_shards < 1 || options_.num_shards > kMaxShards) {
    // The exchange/shard failpoint details encode batch * kMaxShards +
    // shard, so more shards would alias schedules across batches.
    return Status::InvalidArgument("num_shards must be in [1, " +
                                   std::to_string(kMaxShards) + "]");
  }
  if (options_.exchange_max_attempts < 1) {
    return Status::InvalidArgument("exchange_max_attempts must be >= 1");
  }
  if (options_.error_method == ErrorMethod::kAnalytic) {
    // Closed-form estimation replaces the trial replicas entirely.
    options_.num_trials = 0;
  }

  // Partition the streamed relation into mini-batches (§2).
  if (!plan_.streamed_table.empty()) {
    IOLAP_ASSIGN_OR_RETURN(const TableEntry* entry,
                           catalog_->Find(plan_.streamed_table));
    streamed_table_ = entry->table;
    PartitionOptions popts = options_.partition;
    popts.seed ^= options_.seed;
    IOLAP_ASSIGN_OR_RETURN(
        layout_,
        PartitionIntoBatches(*streamed_table_, options_.num_batches, popts));
  } else {
    layout_.batches.resize(1);  // fully static query: one batch
  }
  seen_rows_.clear();
  size_t cumulative = 0;
  for (const auto& batch : layout_.batches) {
    cumulative += batch.size();
    seen_rows_.push_back(cumulative);
  }

  // Which blocks are consumed downstream (classification depends on their
  // variation ranges), which feed joins (must emit group-delta rows), and
  // which feed snapshot consumers (must collect per-batch output)?
  std::vector<bool> consumed(plan_.blocks.size(), false);
  std::vector<bool> feeds_join(plan_.blocks.size(), false);
  std::vector<bool> feeds_snapshot(plan_.blocks.size(), false);
  for (const Block& block : plan_.blocks) {
    const bool snapshot_consumer =
        block.inputs.size() == 1 &&
        block.inputs[0].kind == BlockInput::Kind::kBlockOutput;
    for (const BlockInput& input : block.inputs) {
      if (input.kind == BlockInput::Kind::kBlockOutput) {
        consumed[input.source_block] = true;
        if (snapshot_consumer) {
          feeds_snapshot[input.source_block] = true;
        } else {
          feeds_join[input.source_block] = true;
        }
      }
    }
    std::vector<const AggLookupExpr*> lookups;
    if (block.filter != nullptr) block.filter->CollectAggLookups(&lookups);
    for (const AggSpec& agg : block.aggs) {
      agg.arg->CollectAggLookups(&lookups);
    }
    for (const ExprPtr& p : block.projections) p->CollectAggLookups(&lookups);
    for (const ExprPtr& g : block.group_by) g->CollectAggLookups(&lookups);
    for (const AggLookupExpr* lookup : lookups) {
      consumed[lookup->block_id()] = true;
    }
  }

  registry_ = std::make_unique<AggregateRegistry>(&plan_, options_.slack);
  const BootstrapWeights bootstrap(options_.seed, options_.num_trials);
  // Intra-batch parallelism: one pool shared by all executors. Blocks run
  // serially in topological order; within a block the evaluation phases fan
  // out and the apply phases stay serial, so results are bit-identical for
  // every num_threads (including 0 = no pool).
  pool_.reset();
  if (options_.num_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  // The shard fleet and its exchange seam: every cross-shard byte (delta
  // routing, partial aggregates, lineage broadcast) flows through
  // exchange_, whose measured counters replace the shuffle cost model in
  // QueryMetrics. S = 1 degenerates to the unsharded engine.
  executors_.clear();
  shards_ = std::make_unique<ShardSet>(options_.num_shards);
  exchange_ = std::make_unique<ExchangeLayer>(shards_.get(),
                                              options_.exchange_max_attempts);
  for (size_t b = 0; b < plan_.blocks.size(); ++b) {
    executors_.push_back(std::make_unique<BlockExecutor>(
        &plan_, static_cast<int>(b), &annotations_, &options_, registry_.get(),
        bootstrap, consumed[b], feeds_join[b], pool_.get(), shards_.get(),
        exchange_.get()));
    if (feeds_snapshot[b]) {
      // Snapshot consumers need keys + main values only; trial replicas
      // flow through lineage lookups.
      executors_[b]->set_collect_output(true, /*with_trials=*/false);
    }
  }
  // The top block's snapshot feeds the user-facing result + estimates.
  executors_.back()->set_collect_output(true, /*with_trials=*/true);
  // Every compiled program went through the verifier seam inside the
  // BlockExecutor constructors; a rejection is a compiler bug. Under
  // kEnforce the block already fell back to the interpreter and the
  // counters (folded into metrics at the start of each Run) are the only
  // trace; under kStrict it fails the query here, rule first.
  if (options_.verify_programs == ProgramVerifyMode::kStrict) {
    for (size_t b = 0; b < executors_.size(); ++b) {
      const ProgramVerifierStats& stats = executors_[b]->verifier_stats();
      if (stats.rejected > 0) {
        return Status::Internal(
            "program verifier rejected a compiled program of block " +
            std::to_string(b) + ": " + stats.last_rejection);
      }
    }
  }
  FoldVerifierStats();
  initialized_ = true;
  return Status::OK();
}

void QueryController::FoldVerifierStats() {
  for (const auto& executor : executors_) {
    const ProgramVerifierStats& stats = executor->verifier_stats();
    metrics_.programs_compiled += stats.compiled;
    metrics_.programs_verified += stats.verified;
    metrics_.programs_rejected += stats.rejected;
    metrics_.compile_refusals += stats.refused;
  }
}

RowBatch QueryController::StreamDelta(int b) const {
  RowBatch delta;
  if (streamed_table_ == nullptr) return delta;
  const auto& ids = layout_.batches[b];
  delta.reserve(ids.size());
  for (uint64_t id : ids) {
    ExecRow row;
    row.values = streamed_table_->row(id);
    row.weight = 1.0;
    row.stream_uid = id;
    delta.push_back(std::move(row));
  }
  return delta;
}

double QueryController::ScaleAt(int b) const {
  if (streamed_table_ == nullptr || seen_rows_[b] == 0) return 1.0;
  return static_cast<double>(streamed_table_->num_rows()) /
         static_cast<double>(seen_rows_[b]);
}

int QueryController::ProcessOneBatch(int b, BlockBatchStats* stats,
                                     bool* injected_only) {
  const RowBatch stream_delta = StreamDelta(b);
  const double scale = ScaleAt(b);
  int rollback = BlockExecutor::kNoRollback;
  bool injected = true;

  for (size_t blk = 0; blk < plan_.blocks.size(); ++blk) {
    const Block& block = plan_.blocks[blk];
    std::vector<RowBatch> deltas(block.inputs.size());
    for (size_t k = 0; k < block.inputs.size(); ++k) {
      const BlockInput& input = block.inputs[k];
      if (input.kind == BlockInput::Kind::kBaseTable) {
        if (input.streamed) {
          deltas[k] = stream_delta;
        } else if (b == 0) {
          auto entry = catalog_->Find(input.table_name);
          // Validated at Init; an entry is always present here.
          const Table& table = *(*entry)->table;
          deltas[k].reserve(table.num_rows());
          for (const Row& r : table.rows()) {
            ExecRow row;
            row.values = r;
            deltas[k].push_back(std::move(row));
          }
        }
      } else if (executors_[blk]->stateless()) {
        // Snapshot consumer: the upstream's full, ghost-free output
        // relation of this batch.
        for (const auto& group : executors_[input.source_block]->latest_output()) {
          ExecRow row;
          row.values = group.key;
          row.values.insert(row.values.end(), group.main.begin(),
                            group.main.end());
          deltas[k].push_back(std::move(row));
        }
      } else {
        deltas[k] = executors_[input.source_block]->new_output_rows();
      }
    }
    const int request = executors_[blk]->ProcessBatch(b, scale, deltas, stats);
    if (request != BlockExecutor::kNoRollback) {
      injected = injected && executors_[blk]->rollback_injected();
      if (rollback == BlockExecutor::kNoRollback || request < rollback) {
        rollback = request;
      }
    }
  }
  if (injected_only != nullptr) {
    *injected_only = rollback != BlockExecutor::kNoRollback && injected;
  }
  return rollback;
}

int QueryController::RollbackTo(int target, int current_batch, bool injected,
                                BatchMetrics* bm) {
  // Failure recovery mutates the registry; it always runs on the driving
  // thread between batches, which the serial-phase role makes checkable.
  ScopedThreadRole serial_phase(engine_serial_phase);
  if (target >= 0) {
    // Walk the ring newest-to-oldest over snapshots at or before the
    // target. A checkpoint whose checksum no longer matches its content is
    // corrupt — replaying it would resurrect bad state as silently as the
    // failure it is meant to undo — so verification failures escalate to
    // the next older candidate (a deeper but sound rollback).
    for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend();) {
      const auto& snapshot = *it;
      if (snapshot.empty() || snapshot[0]->batch > target) {
        ++it;
        continue;
      }
      bool valid = true;
      for (const auto& checkpoint : snapshot) {
        valid = valid && BlockExecutor::VerifyCheckpoint(*checkpoint);
      }
      if (!valid) {
        bm->corrupt_checkpoints++;
        // Prune the corrupt snapshot: it can never be restored, so keeping
        // its payload would only pin dead state in the ring (and a later
        // recovery would stumble over — and re-count — the same corpse).
        it = std::make_reverse_iterator(checkpoints_.erase(std::next(it).base()));
        continue;
      }
      const int restored = snapshot[0]->batch;
      for (size_t blk = 0; blk < executors_.size(); ++blk) {
        executors_[blk]->Restore(*snapshot[blk]);
      }
      const int depth = current_batch - restored;
      // Natural failures freeze recovered ranges through the replay window
      // (livelock prevention); injected ones replay unfrozen — no decision
      // actually went bad, and the unfrozen replay reproduces the
      // fault-free bits exactly (docs/INTERNALS.md §9).
      registry_->RollbackTo(restored, injected ? 0 : depth);
      bm->rollback_depth_max = std::max(bm->rollback_depth_max, depth);
      if (!injected) bm->frozen_replay_batches += depth;
      return restored;
    }
    // Target evicted from the ring, or every candidate corrupt: degrade to
    // a full restart.
  }
  for (auto& executor : executors_) executor->Reset();
  const int depth = current_batch + 1;  // everything from batch 0 replays
  registry_->RollbackTo(-1, injected ? 0 : depth);
  checkpoints_.clear();
  bm->full_restarts++;
  bm->rollback_depth_max = std::max(bm->rollback_depth_max, depth);
  if (!injected) bm->frozen_replay_batches += depth;
  return -1;
}

int QueryController::ApplyDegradation(int attempts, int rollback,
                                      BatchMetrics* bm) {
  const int cap = options_.max_recoveries_per_batch;
  const int widen_at = std::max(1, cap / 4);
  const int no_prune_at = std::max(widen_at + 1, cap / 2);
  if (attempts > cap) {
    // Staircase level 3 (terminal): classification-free processing cannot
    // fail, so a full restart here is guaranteed to terminate the storm.
    degrade_level_ = 3;
    for (auto& executor : executors_) executor->DisableClassification();
    bm->recoveries_exhausted = 1;
    return -1;
  }
  if (attempts > no_prune_at && degrade_level_ < 2) {
    // Level 2: stop making pruning decisions (no new obligations), but
    // keep verifying the ones already registered.
    degrade_level_ = 2;
    for (auto& executor : executors_) executor->DisablePruning();
  } else if (attempts > widen_at && degrade_level_ < 1) {
    // Level 1: widen every envelope. Wider padded envelopes mean fewer
    // future decisions near the edge and fewer obligations to betray —
    // pruning degrades gracefully instead of flapping.
    degrade_level_ = 1;
    ScopedThreadRole serial_phase(engine_serial_phase);
    registry_->ScaleSlack(2.0);
  }
  return rollback;
}

Status QueryController::Run(const ResultObserver& observer) {
  if (!initialized_) IOLAP_RETURN_IF_ERROR(Init());
  // Fault-injection spec for this run: environment (IOLAP_FAILPOINTS)
  // first, per-query options on top. Disarmed when Run returns; an empty
  // merged spec leaves any externally-installed config untouched.
  ScopedFailpoints scoped_failpoints(MergedFailpointSpec(options_.failpoints));
  IOLAP_RETURN_IF_ERROR(scoped_failpoints.status());
  metrics_ = QueryMetrics{};
  FoldVerifierStats();
  checkpoints_.clear();
  degrade_level_ = 0;

  const int num_batches = static_cast<int>(layout_.batches.size());
  for (int b = 0; b < num_batches; ++b) {
    WallTimer timer;
    CpuTimer cpu_timer;
    BatchMetrics bm;
    bm.batch = b;

    BlockBatchStats stats;
    bool injected = false;
    // Exchange counters are cumulative; this batch's share (including any
    // recovery replays below) is the delta against this snapshot.
    const ExchangeCounters exchange_before = exchange_->counters();
    int rollback = ProcessOneBatch(b, &stats, &injected);

    // Scheduler-level fault: a spurious recovery request against an
    // otherwise clean batch (lost heartbeat, flaky verdict transport).
    // `arg` sets the claimed rollback depth, default 1.
    if (rollback == BlockExecutor::kNoRollback &&
        IOLAP_FAILPOINT(Failpoint::kControllerBatchFault, b)) {
      const int64_t depth = FailpointArg(Failpoint::kControllerBatchFault, 1);
      rollback = static_cast<int>(
          std::max<int64_t>(-1, static_cast<int64_t>(b) - depth));
      injected = true;
    }

    // Failure recovery (§5.1): roll back to the last consistent batch and
    // reprocess forward. A recovery storm degrades down the staircase —
    // wider slack, then no pruning, then classification-free processing,
    // which cannot fail.
    int attempts = 0;
    while (rollback != BlockExecutor::kNoRollback) {
      ++attempts;
      bm.failure_recoveries++;
      if (injected) bm.injected_faults++;
      rollback = ApplyDegradation(attempts, rollback, &bm);
      const int restored = RollbackTo(rollback, b, injected, &bm);
      // Whatever shard the exchange declared dead has just had its state
      // rebuilt from the restored consistent cut: the fleet is live again.
      exchange_->ReviveAll();
      // Drop checkpoints newer than the restore point.
      while (!checkpoints_.empty() &&
             checkpoints_.back()[0]->batch > restored) {
        checkpoints_.pop_back();
      }
      rollback = BlockExecutor::kNoRollback;
      for (int bb = restored + 1; bb <= b; ++bb) {
        BlockBatchStats replay_stats;
        bool replay_injected = false;
        const int request = ProcessOneBatch(bb, &replay_stats,
                                            &replay_injected);
        bm.recomputed_rows += replay_stats.input_rows;
        bm.recomputed_rows += replay_stats.recomputed_rows;
        bm.shipped_bytes += replay_stats.shipped_bytes;
        bm.modeled_shipped_bytes += replay_stats.modeled_shipped_bytes;
        if (bb < b) {
          // Re-checkpoint replayed batches so a later failure can land on
          // them again.
          std::vector<std::shared_ptr<const BlockExecutor::Checkpoint>> snap;
          for (const auto& executor : executors_) {
            snap.push_back(executor->MakeCheckpoint(bb));
          }
          checkpoints_.push_back(std::move(snap));
          if (checkpoints_.size() > options_.checkpoint_history) {
            checkpoints_.pop_front();
          }
        }
        if (request != BlockExecutor::kNoRollback) {
          rollback = request;
          injected = replay_injected;
          break;
        }
      }
    }
    bm.degrade_level = degrade_level_;

    // Take this batch's checkpoint.
    {
      std::vector<std::shared_ptr<const BlockExecutor::Checkpoint>> snap;
      for (const auto& executor : executors_) {
        snap.push_back(executor->MakeCheckpoint(b));
      }
      checkpoints_.push_back(std::move(snap));
      if (checkpoints_.size() > options_.checkpoint_history) {
        checkpoints_.pop_front();
      }
    }

    BuildResult(b);

    bm.latency_sec = timer.ElapsedSeconds();
    bm.cpu_sec = cpu_timer.ElapsedSeconds();
    bm.fraction_processed = last_result_.fraction_processed;
    bm.input_rows = stats.input_rows;
    bm.recomputed_rows += stats.recomputed_rows;
    bm.shipped_bytes += stats.shipped_bytes;
    bm.modeled_shipped_bytes += stats.modeled_shipped_bytes;
    const ExchangeCounters& exchange_after = exchange_->counters();
    bm.exchange_messages = exchange_after.messages - exchange_before.messages;
    bm.exchange_retries =
        static_cast<int>(exchange_after.retries - exchange_before.retries);
    bm.shard_deaths = static_cast<int>(exchange_after.shard_deaths -
                                       exchange_before.shard_deaths);
    for (const auto& executor : executors_) {
      bm.join_state_bytes += executor->JoinStateBytes();
      bm.other_state_bytes += executor->OtherStateBytes();
    }
    bm.other_state_bytes += registry_->TotalBytes();
    metrics_.batches.push_back(bm);

    if (observer != nullptr && observer(last_result_) == BatchAction::kStop) {
      break;
    }
  }
  return Status::OK();
}

void QueryController::BuildResult(int batch) {
  const Block& top = plan_.top();
  PartialResult result;
  result.batch = batch;
  result.fraction_processed =
      streamed_table_ == nullptr
          ? 1.0
          : static_cast<double>(seen_rows_[batch]) /
                std::max<size_t>(1, streamed_table_->num_rows());

  if (top.has_aggregate()) {
    // Snapshot of this batch's aggregate output, sorted by group key for a
    // deterministic presentation.
    std::vector<const BlockExecutor::OutputGroup*> groups;
    for (const auto& group : executors_.back()->latest_output()) {
      groups.push_back(&group);
    }
    std::sort(groups.begin(), groups.end(),
              [](const auto* a, const auto* b) {
                const size_t n = std::min(a->key.size(), b->key.size());
                for (size_t i = 0; i < n; ++i) {
                  const int c = a->key[i].Compare(b->key[i]);
                  if (c != 0) return c < 0;
                }
                return a->key.size() < b->key.size();
              });
    result.rows = Table(top.output_schema);
    for (size_t a = 0; a < top.aggs.size(); ++a) {
      result.estimated_columns.push_back(
          static_cast<int>(top.group_by.size() + a));
    }
    for (const auto* group : groups) {
      Row row = group->key;
      row.insert(row.end(), group->main.begin(), group->main.end());
      result.rows.AddRow(std::move(row));
      std::vector<ErrorEstimate> row_estimates;
      row_estimates.reserve(top.aggs.size());
      for (size_t a = 0; a < top.aggs.size(); ++a) {
        const double v =
            group->main[a].is_null() ? 0.0 : group->main[a].AsDouble();
        if (a < group->analytic_sd.size()) {
          row_estimates.push_back(
              EstimateFromStddev(v, group->analytic_sd[a]));
        } else {
          row_estimates.push_back(EstimateError(v, group->trials[a]));
        }
      }
      result.estimates.push_back(std::move(row_estimates));
    }
  } else {
    std::vector<std::vector<std::vector<double>>> trials;
    Table unsorted = executors_.back()->CurrentSpjOutput(&trials);
    for (size_t p = 0; p < top.projections.size(); ++p) {
      if (annotations_.back().output_attr_uncertain[p]) {
        result.estimated_columns.push_back(static_cast<int>(p));
      }
    }
    // Sort rows (and their trial replicas) for a deterministic
    // presentation matching the reference evaluator.
    std::vector<size_t> order(unsorted.num_rows());
    for (size_t r = 0; r < order.size(); ++r) order[r] = r;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const Row& ra = unsorted.row(a);
      const Row& rb = unsorted.row(b);
      const size_t n = std::min(ra.size(), rb.size());
      for (size_t i = 0; i < n; ++i) {
        const int c = ra[i].Compare(rb[i]);
        if (c != 0) return c < 0;
      }
      return a < b;
    });
    result.rows = Table(top.output_schema);
    for (size_t r : order) {
      result.rows.AddRow(unsorted.row(r));
      std::vector<ErrorEstimate> row_estimates;
      for (int col : result.estimated_columns) {
        const Value& v = unsorted.row(r)[col];
        row_estimates.push_back(
            EstimateError(v.is_null() ? 0.0 : v.AsDouble(), trials[r][col]));
      }
      result.estimates.push_back(std::move(row_estimates));
    }
  }
  // Presentation (ORDER BY / LIMIT): reorder and truncate the delivered
  // rows together with their estimates. Display-only — the incremental
  // semantics above are untouched.
  if (!plan_.presentation.empty()) {
    std::vector<size_t> order(result.rows.num_rows());
    for (size_t r = 0; r < order.size(); ++r) order[r] = r;
    if (!plan_.presentation.order_by.empty()) {
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        for (const Presentation::Key& key : plan_.presentation.order_by) {
          const int c =
              result.rows.row(a)[key.column].Compare(
                  result.rows.row(b)[key.column]);
          if (c != 0) return key.descending ? c > 0 : c < 0;
        }
        return false;
      });
    }
    size_t keep = order.size();
    if (plan_.presentation.limit >= 0) {
      keep = std::min<size_t>(keep,
                              static_cast<size_t>(plan_.presentation.limit));
    }
    PartialResult presented;
    presented.batch = result.batch;
    presented.fraction_processed = result.fraction_processed;
    presented.estimated_columns = result.estimated_columns;
    presented.rows = Table(result.rows.schema());
    for (size_t i = 0; i < keep; ++i) {
      presented.rows.AddRow(result.rows.row(order[i]));
      if (order[i] < result.estimates.size()) {
        presented.estimates.push_back(result.estimates[order[i]]);
      }
    }
    result = std::move(presented);
  }
  last_result_ = std::move(result);
}

size_t QueryController::PendingCount() const {
  size_t total = 0;
  for (const auto& executor : executors_) total += executor->PendingCount();
  return total;
}

size_t QueryController::CheckpointRingBytes() const {
  size_t total = 0;
  for (const auto& snapshot : checkpoints_) {
    for (const auto& checkpoint : snapshot) total += checkpoint->ByteSize();
  }
  return total;
}

}  // namespace iolap
