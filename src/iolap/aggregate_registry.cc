#include "iolap/aggregate_registry.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

#include "catalog/partitioner.h"
#include "common/failpoint.h"

namespace iolap {

// The serial apply phase's capability object. Purely static: it is never
// contended and costs nothing to "acquire" — it exists so Clang's
// -Wthread-safety can prove registry mutation never escapes into a
// parallel evaluation lambda (see the declaration in the header).
ThreadRole engine_serial_phase;

namespace {

/// Source of globally unique memo epochs (see Relation::memo_epoch). Starts
/// at 1 so a default-initialized thread_local memo (epoch 0) never matches.
uint64_t NextMemoEpoch() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

AggregateRegistry::AggregateRegistry(const QueryPlan* plan, double slack)
    : slack_(slack) {
  relations_.resize(plan->blocks.size());
  for (size_t b = 0; b < plan->blocks.size(); ++b) {
    const Block& block = plan->blocks[b];
    relations_[b].memo_epoch = NextMemoEpoch();
    relations_[b].num_keys = static_cast<int>(block.group_by.size());
    relations_[b].linear.reserve(block.aggs.size());
    for (const AggSpec& agg : block.aggs) {
      relations_[b].linear.push_back(agg.fn->ScalesLinearly());
    }
  }
}

void AggregateRegistry::SetBlockScale(int block, double scale) {
  relations_[block].scale = scale;
}

void AggregateRegistry::CheckRanges(Relation& rel, const Row& key,
                                    Entry& entry, int batch,
                                    PublishResult* result) {
  for (size_t a = 0; a < entry.ranges.size(); ++a) {
    const double s = ColScale(rel, a);
    const double v =
        (entry.main[a].is_null() ? 0.0 : entry.main[a].AsDouble()) * s;
    // Fault injection: a natural-typed envelope escape. The tracker walks
    // back its constraint history like a real violation (and its state
    // stays unfolded, like a real violation), so everything below —
    // failure accounting, rollback targeting, the frozen replay — runs the
    // production path. Not flagged `injected`: the recovery must behave
    // exactly as if the envelope had really escaped. A tracker with no
    // finite constraint cannot fail; it falls through to the real update
    // so every successful batch folds exactly one snapshot (the rollback
    // targeting below converts history indexes to batches).
    VariationRangeTracker::UpdateResult update;
    if (IOLAP_FAILPOINT(Failpoint::kRegistryEnvelopeFault, batch)) {
      update = entry.ranges[a].InjectInconsistency();
    }
    if (update.ok) {
      // The replica envelope is linear in the scale (s > 0 always).
      update = entry.ranges[a].UpdateEnvelope(v, entry.env_lo[a] * s,
                                              entry.env_hi[a] * s,
                                              entry.env_sd[a] * s);
    }
    if (!update.ok) {
      // The failure invalidates pruning decisions that constrained this
      // value: request recovery. A value that keeps betraying its
      // obligations stops being classified on entirely.
      if (++rel.failure_counts[key] >= 3) entry.range_disabled = true;
      result->ok = false;
      // Convert the tracker's local history index to a global batch.
      const int global = update.last_consistent_batch < 0
                             ? entry.first_batch - 1
                             : entry.first_batch + update.last_consistent_batch;
      const int target = global < 0 ? -1 : global;
      if (result->rollback_to == -1 || target < result->rollback_to) {
        result->rollback_to = target;
      }
      if (target < 0) result->rollback_to = -1;
    }
  }
}

AggregateRegistry::PublishResult AggregateRegistry::Publish(
    int block, const Row& key, int batch, std::vector<Value> main,
    std::vector<std::vector<double>> trials, bool track_ranges,
    const std::vector<double>* analytic_sd) {
  Relation& rel = relations_[block];
  auto [it, inserted] = rel.entries.try_emplace(key);
  Entry& entry = it->second;
  if (inserted) {
    entry.first_batch = batch;
    if (track_ranges) {
      entry.ranges.assign(main.size(), VariationRangeTracker(slack_));
    }
    auto fc = rel.failure_counts.find(key);
    if (fc != rel.failure_counts.end() && fc->second >= 3) {
      entry.range_disabled = true;
    }
  }
  entry.main = std::move(main);
  entry.trials = std::move(trials);
  // Unscaled replica envelopes for later Refresh()es.
  const size_t num_aggs = entry.main.size();
  entry.env_lo.assign(num_aggs, 0.0);
  entry.env_hi.assign(num_aggs, 0.0);
  entry.env_sd.assign(num_aggs, 0.0);
  for (size_t a = 0; a < num_aggs; ++a) {
    const double v = entry.main[a].is_null() ? 0.0 : entry.main[a].AsDouble();
    if (analytic_sd != nullptr) {
      // Closed-form envelope: ±2σ around the estimate (σ < 0 = no closed
      // form: degenerate point envelope, i.e. conservative elsewhere).
      const double sd = std::max(0.0, (*analytic_sd)[a]);
      entry.env_lo[a] = v - 2.0 * sd;
      entry.env_hi[a] = v + 2.0 * sd;
      entry.env_sd[a] = sd;
      continue;
    }
    double lo = v;
    double hi = v;
    double sum = 0.0;
    const auto& t = entry.trials[a];
    for (double x : t) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
      sum += x;
    }
    double sd = 0.0;
    if (t.size() > 1) {
      const double mean = sum / t.size();
      double ss = 0.0;
      for (double x : t) ss += (x - mean) * (x - mean);
      sd = std::sqrt(ss / (t.size() - 1));
    }
    entry.env_lo[a] = lo;
    entry.env_hi[a] = hi;
    entry.env_sd[a] = sd;
  }
  PublishResult result;
  if (track_ranges && !entry.range_disabled) {
    CheckRanges(rel, key, entry, batch, &result);
  }
  // Fault injection: a spurious failed verdict for a group that actually
  // passed its checks. Marked `injected`: nothing is wrong with the
  // registered constraints, so the controller replays with unfrozen ranges
  // and the recovery reproduces the fault-free run exactly.
  if (result.ok && track_ranges &&
      IOLAP_FAILPOINT(Failpoint::kRegistryPublishFault, batch)) {
    result.ok = false;
    result.injected = true;
    const int64_t depth = FailpointArg(Failpoint::kRegistryPublishFault, 1);
    result.rollback_to =
        static_cast<int>(std::max<int64_t>(-1, batch - depth));
  }
  return result;
}

AggregateRegistry::PublishResult AggregateRegistry::Refresh(
    int block, const Row& key, int batch, bool track_ranges) {
  Relation& rel = relations_[block];
  auto it = rel.entries.find(key);
  PublishResult result;
  if (it == rel.entries.end()) {
    result.missing = true;
    return result;
  }
  Entry& entry = it->second;
  if (track_ranges && !entry.range_disabled) {
    CheckRanges(rel, key, entry, batch, &result);
  }
  return result;
}

VariationRangeTracker* AggregateRegistry::TrackerFor(int block, int col,
                                                     const Row& key) {
  Relation& rel = relations_[block];
  if (col < rel.num_keys) return nullptr;  // key columns are deterministic
  auto it = rel.entries.find(key);
  if (it == rel.entries.end() || it->second.range_disabled) return nullptr;
  const size_t a = static_cast<size_t>(col - rel.num_keys);
  if (a >= it->second.ranges.size()) return nullptr;
  return &it->second.ranges[a];
}

void AggregateRegistry::RequireUpper(int block, int col, const Row& key,
                                     double bound) {
  if (VariationRangeTracker* tracker = TrackerFor(block, col, key)) {
    tracker->ConstrainUpper(bound);
  }
}

void AggregateRegistry::RequireLower(int block, int col, const Row& key,
                                     double bound) {
  if (VariationRangeTracker* tracker = TrackerFor(block, col, key)) {
    tracker->ConstrainLower(bound);
  }
}

void AggregateRegistry::RequireContainment(int block, int col,
                                           const Row& key) {
  if (VariationRangeTracker* tracker = TrackerFor(block, col, key)) {
    const Interval range = tracker->current();
    tracker->ConstrainLower(range.lo);
    tracker->ConstrainUpper(range.hi);
  }
}

void AggregateRegistry::RollbackTo(int batch, int freeze_updates) {
  for (Relation& rel : relations_) {
    rel.memo_epoch = NextMemoEpoch();  // erase invalidates memoized pointers
    for (auto it = rel.entries.begin(); it != rel.entries.end();) {
      Entry& entry = it->second;
      if (entry.first_batch > batch) {
        it = rel.entries.erase(it);
        continue;
      }
      for (VariationRangeTracker& tracker : entry.ranges) {
        tracker.RecoverTo(batch - entry.first_batch, freeze_updates);
      }
      ++it;
    }
  }
}

void AggregateRegistry::ScaleSlack(double factor) {
  slack_ *= factor;
  for (Relation& rel : relations_) {
    for (auto& [key, entry] : rel.entries) {
      for (VariationRangeTracker& tracker : entry.ranges) {
        tracker.ScaleSlack(factor);
      }
    }
  }
}

size_t AggregateRegistry::GroupCount(int block) const {
  return relations_[block].entries.size();
}

size_t AggregateRegistry::RelationBytes(int block) const {
  const Relation& rel = relations_[block];
  size_t total = 0;
  for (const auto& [key, entry] : rel.entries) {
    total += RowByteSize(key);
    for (const Value& v : entry.main) total += v.ByteSize();
    for (const auto& trials : entry.trials) {
      total += trials.size() * sizeof(double);
    }
  }
  return total;
}

size_t AggregateRegistry::ShardGroupCount(int block, size_t shard,
                                          size_t num_shards) const {
  size_t count = 0;
  for (const auto& [key, entry] : relations_[block].entries) {
    if (ShardOfHash(HashRow(key), num_shards) == shard) ++count;
  }
  return count;
}

size_t AggregateRegistry::ShardRelationBytes(int block, size_t shard,
                                             size_t num_shards) const {
  size_t total = 0;
  for (const auto& [key, entry] : relations_[block].entries) {
    if (ShardOfHash(HashRow(key), num_shards) != shard) continue;
    total += RowByteSize(key);
    for (const Value& v : entry.main) total += v.ByteSize();
    for (const auto& trials : entry.trials) {
      total += trials.size() * sizeof(double);
    }
  }
  return total;
}

size_t AggregateRegistry::TotalBytes() const {
  size_t total = 0;
  for (size_t b = 0; b < relations_.size(); ++b) {
    total += RelationBytes(static_cast<int>(b));
    for (const auto& [key, entry] : relations_[b].entries) {
      for (const auto& tracker : entry.ranges) total += tracker.ByteSize();
    }
  }
  return total;
}

const AggregateRegistry::Entry* AggregateRegistry::FindEntry(
    int block, const Row& key) const {
  // Single-slot lookup memo: the delta engine resolves the same group once
  // per bootstrap trial in tight loops. thread_local (rather than a mutable
  // member) so concurrent const lookups from pool workers stay race-free;
  // the relation's memo_epoch guards against cross-relation aliasing and
  // against entries erased by RollbackTo.
  struct Memo {
    uint64_t epoch = 0;
    Row key;
    const Entry* entry = nullptr;
  };
  thread_local Memo memo;
  const Relation& rel = relations_[block];
  if (memo.epoch == rel.memo_epoch && memo.entry != nullptr &&
      RowEq()(memo.key, key)) {
    return memo.entry;
  }
  auto it = rel.entries.find(key);
  if (it == rel.entries.end()) return nullptr;
  memo.epoch = rel.memo_epoch;
  memo.key = key;
  memo.entry = &it->second;
  return memo.entry;
}

Value AggregateRegistry::Lookup(int block, int col, const Row& key) const {
  const Relation& rel = relations_[block];
  if (col < rel.num_keys) {
    return col < static_cast<int>(key.size()) ? key[col] : Value::Null();
  }
  const Entry* entry = FindEntry(block, key);
  if (entry == nullptr) return Value::Null();
  const size_t a = static_cast<size_t>(col - rel.num_keys);
  if (a >= entry->main.size() || entry->main[a].is_null()) {
    return Value::Null();
  }
  const double s = ColScale(rel, a);
  return s == 1.0 ? entry->main[a]
                  : Value::Double(entry->main[a].AsDouble() * s);
}

Value AggregateRegistry::LookupTrial(int block, int col, const Row& key,
                                     int trial) const {
  const Relation& rel = relations_[block];
  if (col < rel.num_keys) {
    return col < static_cast<int>(key.size()) ? key[col] : Value::Null();
  }
  const Entry* entry = FindEntry(block, key);
  if (entry == nullptr) return Value::Null();
  const size_t a = static_cast<size_t>(col - rel.num_keys);
  if (a >= entry->trials.size() ||
      static_cast<size_t>(trial) >= entry->trials[a].size()) {
    return Lookup(block, col, key);
  }
  return Value::Double(entry->trials[a][trial] * ColScale(rel, a));
}

void AggregateRegistry::LookupTrials(int block, int col, const Row& key,
                                     int num_trials, Value* out) const {
  const Relation& rel = relations_[block];
  if (col < rel.num_keys) {
    const Value v =
        col < static_cast<int>(key.size()) ? key[col] : Value::Null();
    for (int t = 0; t < num_trials; ++t) out[t] = v;
    return;
  }
  const Entry* entry = FindEntry(block, key);
  if (entry == nullptr) {
    for (int t = 0; t < num_trials; ++t) out[t] = Value::Null();
    return;
  }
  const size_t a = static_cast<size_t>(col - rel.num_keys);
  // Trials the replica vector does not cover fall back to the (re-scaled)
  // main value, exactly like LookupTrial.
  Value fallback = Value::Null();
  if (a < entry->main.size() && !entry->main[a].is_null()) {
    const double s = ColScale(rel, a);
    fallback = s == 1.0 ? entry->main[a]
                        : Value::Double(entry->main[a].AsDouble() * s);
  }
  if (a >= entry->trials.size()) {
    for (int t = 0; t < num_trials; ++t) out[t] = fallback;
    return;
  }
  const std::vector<double>& trials = entry->trials[a];
  const double s = ColScale(rel, a);
  const int covered =
      std::min(num_trials, static_cast<int>(trials.size()));
  for (int t = 0; t < covered; ++t) {
    out[t] = Value::Double(trials[t] * s);
  }
  for (int t = covered; t < num_trials; ++t) out[t] = fallback;
}

Interval AggregateRegistry::LookupRange(int block, int col,
                                        const Row& key) const {
  const Relation& rel = relations_[block];
  if (col < rel.num_keys) {
    if (col < static_cast<int>(key.size()) && key[col].is_numeric()) {
      return Interval::Point(key[col].AsDouble());
    }
    return Interval::Unbounded();
  }
  const Entry* entry = FindEntry(block, key);
  if (entry == nullptr || entry->range_disabled) return Interval::Unbounded();
  const size_t a = static_cast<size_t>(col - rel.num_keys);
  if (a >= entry->ranges.size()) {
    // Untracked blocks never feed classification; stay conservative if a
    // range is ever requested anyway.
    return Interval::Unbounded();
  }
  return entry->ranges[a].current();
}

}  // namespace iolap
