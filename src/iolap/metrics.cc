#include "iolap/metrics.h"

#include <algorithm>
#include <cstdio>

namespace iolap {

double QueryMetrics::TotalLatencySec() const {
  double total = 0;
  for (const auto& b : batches) total += b.latency_sec;
  return total;
}

double QueryMetrics::TotalCpuSec() const {
  double total = 0;
  for (const auto& b : batches) total += b.cpu_sec;
  return total;
}

uint64_t QueryMetrics::TotalRecomputedRows() const {
  uint64_t total = 0;
  for (const auto& b : batches) total += b.recomputed_rows;
  return total;
}

uint64_t QueryMetrics::TotalShippedBytes() const {
  uint64_t total = 0;
  for (const auto& b : batches) total += b.shipped_bytes;
  return total;
}

uint64_t QueryMetrics::MaxShippedBytesPerBatch() const {
  uint64_t best = 0;
  for (const auto& b : batches) best = std::max(best, b.shipped_bytes);
  return best;
}

double QueryMetrics::AvgShippedBytesPerBatch() const {
  if (batches.empty()) return 0;
  return static_cast<double>(TotalShippedBytes()) / batches.size();
}

uint64_t QueryMetrics::TotalModeledShippedBytes() const {
  uint64_t total = 0;
  for (const auto& b : batches) total += b.modeled_shipped_bytes;
  return total;
}

uint64_t QueryMetrics::TotalExchangeMessages() const {
  uint64_t total = 0;
  for (const auto& b : batches) total += b.exchange_messages;
  return total;
}

int QueryMetrics::TotalExchangeRetries() const {
  int total = 0;
  for (const auto& b : batches) total += b.exchange_retries;
  return total;
}

int QueryMetrics::TotalShardDeaths() const {
  int total = 0;
  for (const auto& b : batches) total += b.shard_deaths;
  return total;
}

int QueryMetrics::TotalFailureRecoveries() const {
  int total = 0;
  for (const auto& b : batches) total += b.failure_recoveries;
  return total;
}

int QueryMetrics::TotalFullRestarts() const {
  int total = 0;
  for (const auto& b : batches) total += b.full_restarts;
  return total;
}

int QueryMetrics::TotalCorruptCheckpoints() const {
  int total = 0;
  for (const auto& b : batches) total += b.corrupt_checkpoints;
  return total;
}

int QueryMetrics::TotalInjectedFaults() const {
  int total = 0;
  for (const auto& b : batches) total += b.injected_faults;
  return total;
}

int QueryMetrics::TotalFrozenReplayBatches() const {
  int total = 0;
  for (const auto& b : batches) total += b.frozen_replay_batches;
  return total;
}

int QueryMetrics::TotalRecoveriesExhausted() const {
  int total = 0;
  for (const auto& b : batches) total += b.recoveries_exhausted;
  return total;
}

int QueryMetrics::MaxRollbackDepth() const {
  int best = 0;
  for (const auto& b : batches) best = std::max(best, b.rollback_depth_max);
  return best;
}

bool QueryMetrics::DegradedMode() const {
  return !batches.empty() && batches.back().degrade_level > 0;
}

uint64_t QueryMetrics::PeakJoinStateBytes() const {
  uint64_t best = 0;
  for (const auto& b : batches) best = std::max(best, b.join_state_bytes);
  return best;
}

uint64_t QueryMetrics::PeakOtherStateBytes() const {
  uint64_t best = 0;
  for (const auto& b : batches) best = std::max(best, b.other_state_bytes);
  return best;
}

double QueryMetrics::AvgOtherStateBytes() const {
  if (batches.empty()) return 0;
  double total = 0;
  for (const auto& b : batches) total += static_cast<double>(b.other_state_bytes);
  return total / batches.size();
}

double QueryMetrics::LatencyToFraction(double fraction) const {
  double total = 0;
  for (const auto& b : batches) {
    total += b.latency_sec;
    if (b.fraction_processed >= fraction) break;
  }
  return total;
}

std::string QueryMetrics::Summary() const {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "batches=%zu total=%.3fs cpu=%.3fs recomputed=%llu "
                "shipped=%.1fMB modeled=%.1fMB failures=%d "
                "peak_join_state=%.1fMB peak_other_state=%.1fKB",
                batches.size(), TotalLatencySec(), TotalCpuSec(),
                static_cast<unsigned long long>(TotalRecomputedRows()),
                TotalShippedBytes() / 1e6, TotalModeledShippedBytes() / 1e6,
                TotalFailureRecoveries(), PeakJoinStateBytes() / 1e6,
                PeakOtherStateBytes() / 1e3);
  std::string out = buf;
  // Program-verification detail only when expressions were compiled at
  // all; a rejection is a compiler bug and must be visible in the line.
  if (programs_compiled > 0 || programs_rejected > 0 ||
      compile_refusals > 0) {
    std::snprintf(buf, sizeof(buf),
                  " programs=%d verified=%d rejected=%d refused=%d",
                  programs_compiled, programs_verified, programs_rejected,
                  compile_refusals);
    out += buf;
  }
  // Recovery detail only when anything actually went wrong, keeping the
  // healthy-run summary line unchanged.
  if (TotalFailureRecoveries() > 0 || TotalCorruptCheckpoints() > 0 ||
      DegradedMode()) {
    std::snprintf(buf, sizeof(buf),
                  " max_rollback_depth=%d full_restarts=%d "
                  "corrupt_checkpoints=%d injected=%d frozen_replays=%d "
                  "exhausted=%d degraded=%d",
                  MaxRollbackDepth(), TotalFullRestarts(),
                  TotalCorruptCheckpoints(), TotalInjectedFaults(),
                  TotalFrozenReplayBatches(), TotalRecoveriesExhausted(),
                  DegradedMode() ? 1 : 0);
    out += buf;
  }
  // Exchange-fault detail only when the wire actually misbehaved.
  if (TotalExchangeRetries() > 0 || TotalShardDeaths() > 0) {
    std::snprintf(buf, sizeof(buf), " exchange_retries=%d shard_deaths=%d",
                  TotalExchangeRetries(), TotalShardDeaths());
    out += buf;
  }
  return out;
}

}  // namespace iolap
