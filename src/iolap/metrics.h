#ifndef IOLAP_IOLAP_METRICS_H_
#define IOLAP_IOLAP_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace iolap {

/// Per-mini-batch measurements: the raw series behind every plot in the
/// paper's evaluation (latency per batch, tuples recomputed, operator state
/// sizes, data shipped, failure recoveries).
///
/// Thread contract: metrics are plain data, written only by the controller
/// thread between batches (never from pool workers — worker-side costs are
/// aggregated into the per-batch record during the serial apply phase), so
/// they carry no locks and no IOLAP_GUARDED_BY; readers may inspect them
/// freely once Run() returns or from the observer callback, which the
/// controller invokes serially. See docs/INTERNALS.md §8.
struct BatchMetrics {
  int batch = 0;
  double latency_sec = 0.0;
  /// Process CPU seconds consumed during the batch (all threads). With
  /// intra-batch parallelism (EngineOptions::num_threads > 0) this exceeds
  /// latency_sec; the ratio cpu_sec / latency_sec approximates the
  /// effective parallel speedup of the batch.
  double cpu_sec = 0.0;
  /// Fraction of the streamed relation processed after this batch.
  double fraction_processed = 0.0;
  /// New input tuples scanned this batch.
  uint64_t input_rows = 0;
  /// Previously-seen tuples re-evaluated this batch: non-deterministic-set
  /// refreshes, HDA full re-evaluations and failure-recovery reprocessing
  /// (Fig. 8(e)/(f)).
  uint64_t recomputed_rows = 0;
  /// Operator state bytes at the end of the batch, split as the paper
  /// splits them (Fig. 9(b)): JOIN caches vs everything else (sketches,
  /// non-deterministic sets, sink, variation ranges).
  uint64_t join_state_bytes = 0;
  uint64_t other_state_bytes = 0;
  /// Bytes the shuffle/broadcast cost model charges this batch
  /// (Fig. 9(c)).
  uint64_t shipped_bytes = 0;
  /// Variation-range integrity failures that triggered recovery this batch
  /// (Fig. 9(d)).
  int failure_recoveries = 0;
};

/// Accumulated metrics of one incremental query execution.
struct QueryMetrics {
  std::vector<BatchMetrics> batches;

  double TotalLatencySec() const;
  /// Process CPU time summed over batches; compare with TotalLatencySec()
  /// to see how much intra-batch parallelism the run achieved.
  double TotalCpuSec() const;
  uint64_t TotalRecomputedRows() const;
  uint64_t TotalShippedBytes() const;
  uint64_t MaxShippedBytesPerBatch() const;
  double AvgShippedBytesPerBatch() const;
  int TotalFailureRecoveries() const;
  uint64_t PeakJoinStateBytes() const;
  uint64_t PeakOtherStateBytes() const;
  double AvgOtherStateBytes() const;
  /// Cumulative latency until the result first covers `fraction` of the
  /// streamed relation: sums latency_sec over batches (in order) through
  /// the first batch whose fraction_processed reaches `fraction`. Keyed on
  /// fraction_processed, not on batch index — with uneven mini-batch sizes
  /// the two differ.
  double LatencyToFraction(double fraction) const;

  std::string Summary() const;
};

}  // namespace iolap

#endif  // IOLAP_IOLAP_METRICS_H_
