#ifndef IOLAP_IOLAP_METRICS_H_
#define IOLAP_IOLAP_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace iolap {

/// Per-mini-batch measurements: the raw series behind every plot in the
/// paper's evaluation (latency per batch, tuples recomputed, operator state
/// sizes, data shipped, failure recoveries).
///
/// Thread contract: metrics are plain data, written only by the controller
/// thread between batches (never from pool workers — worker-side costs are
/// aggregated into the per-batch record during the serial apply phase), so
/// they carry no locks and no IOLAP_GUARDED_BY; readers may inspect them
/// freely once Run() returns or from the observer callback, which the
/// controller invokes serially. See docs/INTERNALS.md §8.
struct BatchMetrics {
  int batch = 0;
  double latency_sec = 0.0;
  /// Process CPU seconds consumed during the batch (all threads). With
  /// intra-batch parallelism (EngineOptions::num_threads > 0) this exceeds
  /// latency_sec; the ratio cpu_sec / latency_sec approximates the
  /// effective parallel speedup of the batch.
  double cpu_sec = 0.0;
  /// Fraction of the streamed relation processed after this batch.
  double fraction_processed = 0.0;
  /// New input tuples scanned this batch.
  uint64_t input_rows = 0;
  /// Previously-seen tuples re-evaluated this batch: non-deterministic-set
  /// refreshes, HDA full re-evaluations and failure-recovery reprocessing
  /// (Fig. 8(e)/(f)).
  uint64_t recomputed_rows = 0;
  /// Operator state bytes at the end of the batch, split as the paper
  /// splits them (Fig. 9(b)): JOIN caches vs everything else (sketches,
  /// non-deterministic sets, sink, variation ranges).
  uint64_t join_state_bytes = 0;
  uint64_t other_state_bytes = 0;
  /// Measured exchange bytes this batch (Fig. 9(c)): ExchangeLayer wire
  /// traffic — delta routing, partial aggregates, lineage broadcast —
  /// including every retransmission.
  uint64_t shipped_bytes = 0;
  /// Bytes the old virtual-worker shuffle/broadcast cost model would have
  /// charged this batch, kept next to the measurement so the model's
  /// error stays visible (bench fig9/fig10 report both).
  uint64_t modeled_shipped_bytes = 0;
  /// Exchange messages delivered this batch.
  uint64_t exchange_messages = 0;
  /// Exchange send retries this batch (a delivery was dropped or arrived
  /// corrupt and was retransmitted under bounded backoff).
  int exchange_retries = 0;
  /// Shards declared dead this batch (retry deadline exhausted, or a
  /// shard-eval-fault); each death forced a rollback to the last
  /// consistent cut.
  int shard_deaths = 0;
  /// Variation-range integrity failures that triggered recovery this batch
  /// (Fig. 9(d)).
  int failure_recoveries = 0;
  /// Deepest single rollback this batch, in batches rewound (current batch
  /// minus restore point; a full restart of batch b counts b + 1).
  int rollback_depth_max = 0;
  /// Recoveries that degraded to a full restart (target evicted from the
  /// checkpoint ring, every candidate corrupt, or storm level 3).
  int full_restarts = 0;
  /// Checkpoints whose checksum failed verification during recovery; each
  /// one forced escalation to an older snapshot or a full restart.
  int corrupt_checkpoints = 0;
  /// Recoveries whose failure verdicts were all failpoint-injected (the
  /// replay runs with unfrozen ranges and reproduces the fault-free bits).
  int injected_faults = 0;
  /// Replayed batches processed with frozen variation ranges (natural
  /// recoveries only), summed over this batch's recoveries.
  int frozen_replay_batches = 0;
  /// 1 when this batch exhausted max_recoveries_per_batch and fell back to
  /// classification-free processing.
  int recoveries_exhausted = 0;
  /// Recovery-storm degradation level in effect after this batch:
  /// 0 = none, 1 = slack widened, 2 = pruning disabled,
  /// 3 = classification-free.
  int degrade_level = 0;
};

/// Accumulated metrics of one incremental query execution.
struct QueryMetrics {
  std::vector<BatchMetrics> batches;

  /// Compile→verify counters of the expression-program seam
  /// (exec/program_verifier.h), summed over all blocks at query Init —
  /// query-level, not per batch. `programs_rejected` > 0 means the static
  /// verifier (or the plan invariant prover) refused a successfully
  /// compiled program: a compiler bug, survived by falling back to the
  /// interpreter (or failing Init under ProgramVerifyMode::kStrict).
  int programs_compiled = 0;
  int programs_verified = 0;
  int programs_rejected = 0;
  /// Expressions the compiler itself refused (nullptr from Compile) —
  /// expected for constructs outside the compiled subset.
  int compile_refusals = 0;

  double TotalLatencySec() const;
  /// Process CPU time summed over batches; compare with TotalLatencySec()
  /// to see how much intra-batch parallelism the run achieved.
  double TotalCpuSec() const;
  uint64_t TotalRecomputedRows() const;
  uint64_t TotalShippedBytes() const;
  uint64_t MaxShippedBytesPerBatch() const;
  double AvgShippedBytesPerBatch() const;
  /// The cost model's prediction for the same traffic (comparison column).
  uint64_t TotalModeledShippedBytes() const;
  uint64_t TotalExchangeMessages() const;
  int TotalExchangeRetries() const;
  int TotalShardDeaths() const;
  int TotalFailureRecoveries() const;
  int TotalFullRestarts() const;
  int TotalCorruptCheckpoints() const;
  int TotalInjectedFaults() const;
  int TotalFrozenReplayBatches() const;
  int TotalRecoveriesExhausted() const;
  /// Deepest rollback across the run (0 = no recovery ever rewound state).
  int MaxRollbackDepth() const;
  /// True when the run ended in any degraded mode (degrade_level > 0 on the
  /// final batch): results are still exact, but pruning was reduced or off.
  bool DegradedMode() const;
  uint64_t PeakJoinStateBytes() const;
  uint64_t PeakOtherStateBytes() const;
  double AvgOtherStateBytes() const;
  /// Cumulative latency until the result first covers `fraction` of the
  /// streamed relation: sums latency_sec over batches (in order) through
  /// the first batch whose fraction_processed reaches `fraction`. Keyed on
  /// fraction_processed, not on batch index — with uneven mini-batch sizes
  /// the two differ.
  double LatencyToFraction(double fraction) const;

  std::string Summary() const;
};

}  // namespace iolap

#endif  // IOLAP_IOLAP_METRICS_H_
