#include "workloads/conviva.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace iolap {

namespace {

const char* kRegions[] = {"us-east", "us-west", "eu",
                          "apac",    "latam",   "mea"};
const char* kDevices[] = {"desktop", "mobile", "tv", "tablet"};

}  // namespace

ConvivaConfig ConvivaConfig::Scaled(double factor) const {
  ConvivaConfig scaled = *this;
  scaled.sessions = std::max<size_t>(
      1, static_cast<size_t>(std::llround(sessions * factor)));
  return scaled;
}

Result<std::shared_ptr<Catalog>> MakeConvivaCatalog(
    const ConvivaConfig& config) {
  Rng rng(config.seed ^ 0xc0471a);
  auto catalog = std::make_shared<Catalog>();

  Table sessions(Schema({{"session_id", ValueType::kInt64},
                         {"site", ValueType::kInt64},
                         {"cdn", ValueType::kInt64},
                         {"region", ValueType::kString},
                         {"device", ValueType::kString},
                         {"buffer_time", ValueType::kDouble},
                         {"play_time", ValueType::kDouble},
                         {"join_time", ValueType::kDouble},
                         {"bitrate_kbps", ValueType::kDouble},
                         {"bytes", ValueType::kDouble},
                         {"rebuffer_count", ValueType::kInt64},
                         {"failed", ValueType::kInt64}}));
  sessions.Reserve(config.sessions);
  for (size_t i = 0; i < config.sessions; ++i) {
    // Sites are Zipf-popular; each site has a base quality profile so the
    // per-site aggregates that C-queries compare against genuinely differ.
    const int64_t site =
        static_cast<int64_t>(rng.NextZipf(config.sites, 0.9));
    const int64_t cdn = static_cast<int64_t>(rng.NextBounded(config.cdns));
    const double site_quality = 0.6 + 0.8 * ((site * 2654435761u) % 97) / 97.0;
    const double cdn_quality = 0.8 + 0.1 * static_cast<double>(cdn);
    const bool failed = rng.NextDouble() < config.failure_rate;

    // Buffering: exponential-ish with site/CDN dependence (heavier tails on
    // worse sites). Play time anti-correlates with buffering — that is the
    // "slow buffering impact" the paper's running example measures.
    const double buffer_time =
        failed ? 0.0
               : rng.NextExponential(0.05 * site_quality * cdn_quality);
    const double play_time =
        failed ? 0.0
               : std::max(1.0, 600.0 * site_quality /
                                       (1.0 + buffer_time / 40.0) *
                                       (0.3 + rng.NextDouble()));
    const double join_time =
        0.3 + rng.NextExponential(0.8 * cdn_quality);
    const double bitrate =
        failed ? 0.0
               : 500.0 + 4500.0 * site_quality * rng.NextDouble();
    const double bytes = play_time * bitrate / 8.0 * 1000.0;
    const int64_t rebuffers =
        failed ? 0 : rng.NextPoisson(buffer_time / 15.0 + 0.2);

    sessions.AddRow(
        {Value::Int64(static_cast<int64_t>(i)), Value::Int64(site),
         Value::Int64(cdn),
         Value::String(kRegions[site % config.regions]),
         Value::String(kDevices[rng.NextBounded(4)]),
         Value::Double(buffer_time), Value::Double(play_time),
         Value::Double(join_time), Value::Double(bitrate),
         Value::Double(bytes), Value::Int64(rebuffers),
         Value::Int64(failed ? 1 : 0)});
  }
  IOLAP_RETURN_IF_ERROR(catalog->RegisterTable("sessions", std::move(sessions),
                                               /*streamed=*/true));
  return catalog;
}

void RegisterConvivaUdfs(FunctionRegistry* registry) {
  registry->RegisterScalar(
      {"engagement_score", 2,
       [](const std::vector<ValueType>&) { return ValueType::kDouble; },
       [](const std::vector<Value>& args) -> Value {
         if (args[0].is_null() || args[1].is_null()) return Value::Null();
         // Minutes watched discounted by buffering pain.
         return Value::Double(args[0].AsDouble() /
                              (60.0 * (1.0 + args[1].AsDouble() / 30.0)));
       },
       /*monotone=*/false,
       {}});
  registry->RegisterScalar(
      {"is_hd", 1,
       [](const std::vector<ValueType>&) { return ValueType::kInt64; },
       [](const std::vector<Value>& args) -> Value {
         if (args[0].is_null()) return Value::Null();
         return Value::Bool(args[0].AsDouble() >= 2500.0);
       },
       /*monotone=*/false,
       {}});
}

}  // namespace iolap
