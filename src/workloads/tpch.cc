#include "workloads/tpch.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace iolap {

namespace {

const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                              "MIDDLE EAST"};
const char* kNationNames[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA",  "EGYPT",      "ETHIOPIA",
    "FRANCE",  "GERMANY",   "INDIA",  "INDONESIA", "IRAN",     "IRAQ",
    "JAPAN",   "JORDAN",    "KENYA",  "MOROCCO",  "MOZAMBIQUE", "PERU",
    "CHINA",   "ROMANIA",   "SAUDI ARABIA", "VIETNAM", "RUSSIA",
    "UNITED KINGDOM", "UNITED STATES"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"AIR", "RAIL", "SHIP", "TRUCK", "MAIL"};
const char* kContainers[] = {"SM BOX", "MED BOX", "LG BOX", "JUMBO PKG"};
const char* kReturnFlags[] = {"A", "N", "R"};
const char* kLineStatus[] = {"F", "O"};
const char* kBrands[] = {"Brand#11", "Brand#12", "Brand#23", "Brand#34",
                         "Brand#45"};
const char* kTypes[] = {"ECONOMY", "STANDARD", "PROMO", "MEDIUM", "SMALL"};

// A date as yyyymmdd int within [1992-01-01, 1998-12-31].
int64_t RandomDate(Rng* rng) {
  const int year = 1992 + static_cast<int>(rng->NextBounded(7));
  const int month = 1 + static_cast<int>(rng->NextBounded(12));
  const int day = 1 + static_cast<int>(rng->NextBounded(28));
  return year * 10000 + month * 100 + day;
}

}  // namespace

TpchConfig TpchConfig::Scaled(double factor) const {
  TpchConfig scaled = *this;
  auto scale = [factor](size_t n) {
    return std::max<size_t>(1, static_cast<size_t>(std::llround(n * factor)));
  };
  scaled.lineorder_rows = scale(lineorder_rows);
  scaled.parts = scale(parts);
  scaled.suppliers = scale(suppliers);
  scaled.customers = scale(customers);
  scaled.partsupp_rows = scale(partsupp_rows);
  return scaled;
}

Result<std::shared_ptr<Catalog>> MakeTpchCatalog(
    const TpchConfig& config, const std::string& streamed_table) {
  Rng rng(config.seed ^ 0x79c4);
  auto catalog = std::make_shared<Catalog>();

  // region / nation.
  Table region(Schema({{"r_regionkey", ValueType::kInt64},
                       {"r_name", ValueType::kString}}));
  for (size_t r = 0; r < config.regions && r < 5; ++r) {
    region.AddRow({Value::Int64(static_cast<int64_t>(r)),
                   Value::String(kRegionNames[r])});
  }
  Table nation(Schema({{"n_nationkey", ValueType::kInt64},
                       {"n_name", ValueType::kString},
                       {"n_regionkey", ValueType::kInt64}}));
  for (size_t n = 0; n < config.nations && n < 25; ++n) {
    nation.AddRow({Value::Int64(static_cast<int64_t>(n)),
                   Value::String(kNationNames[n]),
                   Value::Int64(static_cast<int64_t>(n % config.regions))});
  }

  // part.
  Table part(Schema({{"p_partkey", ValueType::kInt64},
                     {"p_brand", ValueType::kString},
                     {"p_type", ValueType::kString},
                     {"p_size", ValueType::kInt64},
                     {"p_container", ValueType::kString},
                     {"p_retailprice", ValueType::kDouble}}));
  for (size_t p = 0; p < config.parts; ++p) {
    part.AddRow({Value::Int64(static_cast<int64_t>(p)),
                 Value::String(kBrands[rng.NextBounded(5)]),
                 Value::String(kTypes[rng.NextBounded(5)]),
                 Value::Int64(1 + static_cast<int64_t>(rng.NextBounded(50))),
                 Value::String(kContainers[rng.NextBounded(4)]),
                 Value::Double(900.0 + rng.NextDouble() * 1200.0)});
  }

  // supplier.
  Table supplier(Schema({{"s_suppkey", ValueType::kInt64},
                         {"s_nationkey", ValueType::kInt64},
                         {"s_acctbal", ValueType::kDouble}}));
  for (size_t s = 0; s < config.suppliers; ++s) {
    supplier.AddRow(
        {Value::Int64(static_cast<int64_t>(s)),
         Value::Int64(static_cast<int64_t>(rng.NextBounded(config.nations))),
         Value::Double(-999.0 + rng.NextDouble() * 10000.0)});
  }

  // customer.
  Table customer(Schema({{"c_custkey", ValueType::kInt64},
                         {"c_nationkey", ValueType::kInt64},
                         {"c_acctbal", ValueType::kDouble},
                         {"c_mktsegment", ValueType::kString}}));
  for (size_t c = 0; c < config.customers; ++c) {
    customer.AddRow(
        {Value::Int64(static_cast<int64_t>(c)),
         Value::Int64(static_cast<int64_t>(rng.NextBounded(config.nations))),
         Value::Double(-999.0 + rng.NextDouble() * 10000.0),
         Value::String(kSegments[rng.NextBounded(5)])});
  }

  // partsupp.
  Table partsupp(Schema({{"ps_partkey", ValueType::kInt64},
                         {"ps_suppkey", ValueType::kInt64},
                         {"ps_availqty", ValueType::kInt64},
                         {"ps_supplycost", ValueType::kDouble}}));
  for (size_t i = 0; i < config.partsupp_rows; ++i) {
    partsupp.AddRow(
        {Value::Int64(static_cast<int64_t>(rng.NextBounded(config.parts))),
         Value::Int64(static_cast<int64_t>(rng.NextBounded(config.suppliers))),
         Value::Int64(1 + static_cast<int64_t>(rng.NextBounded(9999))),
         Value::Double(1.0 + rng.NextDouble() * 999.0)});
  }

  // lineorder: denormalized lineitem ⋈ orders. Orders group consecutive
  // rows (lines_per_order on average); part keys are Zipf-skewed, which is
  // what makes the correlated Q17/Q20 groups interestingly non-uniform.
  Table lineorder(Schema({{"lo_orderkey", ValueType::kInt64},
                          {"lo_custkey", ValueType::kInt64},
                          {"lo_partkey", ValueType::kInt64},
                          {"lo_suppkey", ValueType::kInt64},
                          {"lo_orderdate", ValueType::kInt64},
                          {"lo_orderpriority", ValueType::kString},
                          {"lo_shipmode", ValueType::kString},
                          {"lo_quantity", ValueType::kDouble},
                          {"lo_extendedprice", ValueType::kDouble},
                          {"lo_discount", ValueType::kDouble},
                          {"lo_tax", ValueType::kDouble},
                          {"lo_shipdate", ValueType::kInt64},
                          {"lo_returnflag", ValueType::kString},
                          {"lo_linestatus", ValueType::kString}}));
  lineorder.Reserve(config.lineorder_rows);
  int64_t orderkey = 0;
  int64_t order_custkey = 0;
  int64_t order_date = 0;
  const char* order_priority = kPriorities[0];
  size_t lines_left = 0;
  for (size_t i = 0; i < config.lineorder_rows; ++i) {
    if (lines_left == 0) {
      ++orderkey;
      lines_left = 1 + rng.NextBounded(
                           static_cast<uint64_t>(2 * config.lines_per_order - 1));
      order_custkey = static_cast<int64_t>(rng.NextBounded(config.customers));
      order_date = RandomDate(&rng);
      order_priority = kPriorities[rng.NextBounded(5)];
    }
    --lines_left;
    const double quantity = 1.0 + static_cast<double>(rng.NextBounded(50));
    const double price = quantity * (900.0 + rng.NextDouble() * 1200.0) / 10.0;
    lineorder.AddRow(
        {Value::Int64(orderkey), Value::Int64(order_custkey),
         Value::Int64(static_cast<int64_t>(rng.NextZipf(config.parts, 0.6))),
         Value::Int64(static_cast<int64_t>(rng.NextBounded(config.suppliers))),
         Value::Int64(order_date), Value::String(order_priority),
         Value::String(kShipModes[rng.NextBounded(5)]), Value::Double(quantity),
         Value::Double(price), Value::Double(rng.NextBounded(11) / 100.0),
         Value::Double(rng.NextBounded(9) / 100.0),
         Value::Int64(RandomDate(&rng)),
         Value::String(kReturnFlags[rng.NextBounded(3)]),
         Value::String(kLineStatus[rng.NextBounded(2)])});
  }

  IOLAP_RETURN_IF_ERROR(catalog->RegisterTable(
      "lineorder", std::move(lineorder), streamed_table == "lineorder"));
  IOLAP_RETURN_IF_ERROR(catalog->RegisterTable(
      "partsupp", std::move(partsupp), streamed_table == "partsupp"));
  IOLAP_RETURN_IF_ERROR(catalog->RegisterTable(
      "customer", std::move(customer), streamed_table == "customer"));
  IOLAP_RETURN_IF_ERROR(catalog->RegisterTable("part", std::move(part), false));
  IOLAP_RETURN_IF_ERROR(
      catalog->RegisterTable("supplier", std::move(supplier), false));
  IOLAP_RETURN_IF_ERROR(
      catalog->RegisterTable("nation", std::move(nation), false));
  IOLAP_RETURN_IF_ERROR(
      catalog->RegisterTable("region", std::move(region), false));
  if (!catalog->Has(streamed_table)) {
    return Status::InvalidArgument("unknown streamed table: " + streamed_table);
  }
  return catalog;
}

}  // namespace iolap
