#ifndef IOLAP_WORKLOADS_TPCH_QUERIES_H_
#define IOLAP_WORKLOADS_TPCH_QUERIES_H_

#include <string>
#include <vector>

namespace iolap {

/// One benchmark query: paper id, SQL text (our supported subset), the
/// relation to stream, and whether the paper classifies it as a complex
/// nested-aggregate query (Fig. 8 splits plots by this).
struct BenchQuery {
  std::string id;
  std::string sql;
  std::string streamed_table;
  bool nested = false;
};

/// The paper's TPC-H selection (§8): all nested-subquery queries (Q11, Q17,
/// Q18, Q20, Q22) plus a representative set of simple SPJA queries (Q1, Q3,
/// Q5, Q6, Q7), adapted to the denormalized lineorder schema and the
/// supported SQL subset. Constants are tuned to the TpchConfig defaults so
/// selectivities resemble the originals.
std::vector<BenchQuery> TpchQueries();

/// Looks up a query by id ("q1".."q22"); empty sql if unknown.
BenchQuery FindTpchQuery(const std::string& id);

}  // namespace iolap

#endif  // IOLAP_WORKLOADS_TPCH_QUERIES_H_
