#ifndef IOLAP_WORKLOADS_EXPERIMENT_DRIVER_H_
#define IOLAP_WORKLOADS_EXPERIMENT_DRIVER_H_

#include <memory>
#include <string>

#include "iolap/session.h"
#include "workloads/conviva.h"
#include "workloads/conviva_queries.h"
#include "workloads/tpch.h"
#include "workloads/tpch_queries.h"

namespace iolap {

/// Outcome of one benchmark-query execution.
struct RunOutcome {
  QueryMetrics metrics;
  PartialResult final_result;
};

/// Global scale factor for benchmark datasets; override with the
/// IOLAP_BENCH_SCALE environment variable (e.g. 0.25 for a quick pass,
/// 4 for a longer, smoother run).
double BenchScale();

/// Default mini-batch count for benchmark runs (IOLAP_BENCH_BATCHES).
size_t BenchBatches();

/// Default bootstrap trial count for benchmark runs (IOLAP_BENCH_TRIALS).
int BenchTrials();

/// Intra-batch worker threads for benchmark runs (IOLAP_BENCH_THREADS;
/// default 0 = inline). Results are bit-identical across values — only
/// per-batch wall time changes.
size_t BenchThreads();

/// Process-wide function registry with the Conviva UDFs registered.
std::shared_ptr<FunctionRegistry> BenchFunctions();

/// Process-wide cached TPC-H catalog streaming `streamed_table`
/// (regenerated only when the streamed table changes).
Result<std::shared_ptr<Catalog>> TpchCatalogStreaming(
    const std::string& streamed_table);

/// Process-wide cached Conviva catalog.
Result<std::shared_ptr<Catalog>> ConvivaBenchCatalog();

/// Compiles and runs `query.sql` on `catalog` under `options`; forwards
/// each partial result to `observer` when non-null.
Result<RunOutcome> RunBenchQuery(std::shared_ptr<Catalog> catalog,
                                 const BenchQuery& query,
                                 const EngineOptions& options,
                                 const ResultObserver& observer = nullptr);

/// Resolves the catalog for a query of either workload (TPC-H queries name
/// their streamed relation; Conviva queries stream `sessions`).
Result<std::shared_ptr<Catalog>> CatalogFor(const BenchQuery& query,
                                            bool conviva);

/// Engine options preset used by the figure benches: iOLAP defaults
/// (bootstrap trials, slack 2, batch count) at the bench scale.
/// IOLAP_BENCH_COMPILE_EXPRS=0 disables the compiled expression programs
/// (interpreter-only baseline for perf comparisons).
EngineOptions BenchOptions(ExecutionMode mode);

}  // namespace iolap

#endif  // IOLAP_WORKLOADS_EXPERIMENT_DRIVER_H_
