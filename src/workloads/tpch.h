#ifndef IOLAP_WORKLOADS_TPCH_H_
#define IOLAP_WORKLOADS_TPCH_H_

#include <cstdint>
#include <memory>
#include <string>

#include "catalog/catalog.h"

namespace iolap {

/// Scale knobs for the synthetic TPC-H/SSB-style dataset. The paper runs a
/// 1 TB instance on 20 machines; this generator produces a laptop-scale
/// instance with the same schema shape and skew so the evaluation's
/// relative behaviour reproduces. As in the paper (§8), lineitem and orders
/// are pre-joined into a denormalized `lineorder` fact table; part,
/// supplier, customer, partsupp, nation and region stay normalized.
struct TpchConfig {
  uint64_t seed = 42;
  size_t lineorder_rows = 60000;
  size_t parts = 200;
  size_t suppliers = 100;
  size_t customers = 6000;
  size_t partsupp_rows = 3000;  // part × supplier pairs
  size_t nations = 25;
  size_t regions = 5;
  /// Average lineorder rows per order (controls Q18-style per-order sums).
  double lines_per_order = 4.0;

  /// Uniformly scales row counts (0.1 = ten times smaller).
  TpchConfig Scaled(double factor) const;
};

/// Generates the dataset and registers all tables into a fresh catalog.
/// `streamed_table` names the relation processed online ("lineorder",
/// "partsupp" or "customer", per paper Table 1); the rest are read in
/// entirety.
Result<std::shared_ptr<Catalog>> MakeTpchCatalog(
    const TpchConfig& config, const std::string& streamed_table);

}  // namespace iolap

#endif  // IOLAP_WORKLOADS_TPCH_H_
