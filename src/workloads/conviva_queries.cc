#include "workloads/conviva_queries.h"

namespace iolap {

std::vector<BenchQuery> ConvivaQueries() {
  std::vector<BenchQuery> queries;

  // C1 — the Slow Buffering Impact query (paper Example 1).
  queries.push_back(
      {"c1",
       "SELECT avg(play_time) FROM sessions "
       "WHERE buffer_time > (SELECT avg(buffer_time) FROM sessions)",
       "sessions", true});

  // C2 — SBI broken down by CDN (nested subquery + grouping).
  queries.push_back(
      {"c2",
       "SELECT cdn, avg(play_time), count(*) FROM sessions "
       "WHERE buffer_time > (SELECT avg(buffer_time) FROM sessions) "
       "GROUP BY cdn",
       "sessions", true});

  // C3 — simple SPJA: join quality per CDN.
  queries.push_back(
      {"c3",
       "SELECT cdn, avg(join_time), count(*) FROM sessions "
       "WHERE failed = 0 GROUP BY cdn",
       "sessions", false});

  // C4 — low-bitrate sessions vs the TV average (nested subquery with a
  // filtered inner block).
  queries.push_back(
      {"c4",
       "SELECT count(*) FROM sessions "
       "WHERE bitrate_kbps < 0.8 * (SELECT avg(bitrate_kbps) FROM sessions "
       "WHERE device = 'tv')",
       "sessions", true});

  // C5 — simple SPJA: traffic per region.
  queries.push_back(
      {"c5",
       "SELECT region, sum(bytes), count(*) FROM sessions GROUP BY region",
       "sessions", false});

  // C6 — UDF + nested subquery: engagement on above-average bitrates.
  queries.push_back(
      {"c6",
       "SELECT region, avg(engagement_score(play_time, buffer_time)) "
       "FROM sessions "
       "WHERE bitrate_kbps > (SELECT avg(bitrate_kbps) FROM sessions) "
       "GROUP BY region",
       "sessions", true});

  // C7 — UDF + nested subquery: HD sessions that joined slowly.
  queries.push_back(
      {"c7",
       "SELECT avg(play_time), count(*) FROM sessions "
       "WHERE is_hd(bitrate_kbps) = 1 "
       "AND join_time > (SELECT avg(join_time) FROM sessions)",
       "sessions", true});

  // C8 — UDAF + nested subquery (the paper's Figure 7(a) query).
  queries.push_back(
      {"c8",
       "SELECT geomean(join_time) FROM sessions "
       "WHERE buffer_time > (SELECT avg(buffer_time) FROM sessions)",
       "sessions", true});

  // C9 — UDAF + nested subquery, grouped.
  queries.push_back(
      {"c9",
       "SELECT cdn, rms(rebuffer_count) FROM sessions "
       "WHERE play_time > (SELECT 0.5 * avg(play_time) FROM sessions) "
       "GROUP BY cdn",
       "sessions", true});

  // C10 — UDAF + IN/HAVING nested subquery: popular sites only.
  queries.push_back(
      {"c10",
       "SELECT harmonic_mean(bitrate_kbps) FROM sessions "
       "WHERE bitrate_kbps > 0 AND site IN "
       "(SELECT site FROM sessions GROUP BY site HAVING count(*) > 900)",
       "sessions", true});

  // C11 — simple SPJA: mobile bitrate.
  queries.push_back(
      {"c11",
       "SELECT avg(bitrate_kbps), count(*) FROM sessions "
       "WHERE device = 'mobile' AND failed = 0",
       "sessions", false});

  // C12 — simple SPJA: short sessions.
  queries.push_back({"c12",
                     "SELECT count(*) FROM sessions WHERE play_time < 60",
                     "sessions", false});

  return queries;
}

BenchQuery FindConvivaQuery(const std::string& id) {
  for (const BenchQuery& query : ConvivaQueries()) {
    if (query.id == id) return query;
  }
  return BenchQuery{};
}

}  // namespace iolap
