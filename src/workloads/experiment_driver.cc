#include "workloads/experiment_driver.h"

#include <cstdlib>
#include <map>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace iolap {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end != value ? parsed : fallback;
}

// Process-wide catalog caches shared by every bench/test thread that asks
// for a workload dataset. Annotated so a Clang -Wthread-safety build proves
// no access bypasses the lock (the caches are the only cross-thread mutable
// state in the bench driver).
Mutex tpch_cache_mu;
std::map<std::string, std::shared_ptr<Catalog>> tpch_cache
    IOLAP_GUARDED_BY(tpch_cache_mu);

Mutex conviva_cache_mu;
std::shared_ptr<Catalog> conviva_cache IOLAP_GUARDED_BY(conviva_cache_mu);

}  // namespace

double BenchScale() {
  static const double scale = EnvDouble("IOLAP_BENCH_SCALE", 1.0);
  return scale;
}

size_t BenchBatches() {
  static const size_t batches = static_cast<size_t>(
      EnvDouble("IOLAP_BENCH_BATCHES", 25.0));
  return batches == 0 ? 1 : batches;
}

int BenchTrials() {
  static const int trials =
      static_cast<int>(EnvDouble("IOLAP_BENCH_TRIALS", 60.0));
  return trials < 0 ? 0 : trials;
}

size_t BenchThreads() {
  // Clamp before the size_t cast: a negative value would wrap to a worker
  // count in the quintillions and abort in ThreadPool's vector::reserve.
  static const size_t threads = [] {
    const double parsed = EnvDouble("IOLAP_BENCH_THREADS", 0.0);
    return parsed < 0.0 ? size_t{0} : static_cast<size_t>(parsed);
  }();
  return threads;
}

std::shared_ptr<FunctionRegistry> BenchFunctions() {
  static const std::shared_ptr<FunctionRegistry> functions = [] {
    auto registry = FunctionRegistry::Default();
    RegisterConvivaUdfs(registry.get());
    return registry;
  }();
  return functions;
}

Result<std::shared_ptr<Catalog>> TpchCatalogStreaming(
    const std::string& streamed_table) {
  MutexLock lock(tpch_cache_mu);
  auto it = tpch_cache.find(streamed_table);
  if (it != tpch_cache.end()) return it->second;
  TpchConfig config;
  config = config.Scaled(BenchScale());
  IOLAP_ASSIGN_OR_RETURN(std::shared_ptr<Catalog> catalog,
                         MakeTpchCatalog(config, streamed_table));
  tpch_cache[streamed_table] = catalog;
  return catalog;
}

Result<std::shared_ptr<Catalog>> ConvivaBenchCatalog() {
  MutexLock lock(conviva_cache_mu);
  if (conviva_cache != nullptr) return conviva_cache;
  ConvivaConfig config;
  config = config.Scaled(BenchScale());
  IOLAP_ASSIGN_OR_RETURN(conviva_cache, MakeConvivaCatalog(config));
  return conviva_cache;
}

Result<std::shared_ptr<Catalog>> CatalogFor(const BenchQuery& query,
                                            bool conviva) {
  if (conviva) return ConvivaBenchCatalog();
  return TpchCatalogStreaming(query.streamed_table);
}

EngineOptions BenchOptions(ExecutionMode mode) {
  EngineOptions options;
  options.mode = mode;
  options.num_trials = BenchTrials();
  options.num_batches = BenchBatches();
  options.num_threads = BenchThreads();
  options.slack = 2.0;
  options.seed = 1234;
  // IOLAP_BENCH_COMPILE_EXPRS=0 forces the interpreter everywhere — the
  // before/after lever for the compiled-expression benches (results are
  // bit-identical either way; only time changes).
  options.compile_expressions = EnvDouble("IOLAP_BENCH_COMPILE_EXPRS", 1.0) != 0.0;
  return options;
}

Result<RunOutcome> RunBenchQuery(std::shared_ptr<Catalog> catalog,
                                 const BenchQuery& query,
                                 const EngineOptions& options,
                                 const ResultObserver& observer) {
  Session session(catalog.get(), options, BenchFunctions());
  IOLAP_ASSIGN_OR_RETURN(std::unique_ptr<IncrementalQuery> compiled,
                         session.Sql(query.sql));
  IOLAP_RETURN_IF_ERROR(compiled->Run(observer));
  RunOutcome outcome;
  outcome.metrics = compiled->metrics();
  outcome.final_result = compiled->last_result();
  return outcome;
}

}  // namespace iolap
