#ifndef IOLAP_WORKLOADS_CONVIVA_H_
#define IOLAP_WORKLOADS_CONVIVA_H_

#include <cstdint>
#include <memory>

#include "catalog/catalog.h"
#include "core/function_registry.h"

namespace iolap {

/// Scale knobs for the synthetic video-sessions workload standing in for
/// the proprietary Conviva trace (§8: a 2 TB denormalized fact table of web
/// video sessions). The generator mirrors the structure the paper
/// describes — one wide de-normalized fact table with player/session
/// quality metrics, skewed across sites and CDNs — at laptop scale.
struct ConvivaConfig {
  uint64_t seed = 7;
  size_t sessions = 80000;
  size_t sites = 40;
  size_t cdns = 4;
  size_t regions = 6;
  /// Fraction of sessions that failed to start.
  double failure_rate = 0.05;

  ConvivaConfig Scaled(double factor) const;
};

/// Generates the sessions fact table (always streamed) into a fresh catalog.
Result<std::shared_ptr<Catalog>> MakeConvivaCatalog(const ConvivaConfig& config);

/// Registers the workload's scalar UDFs used by C6/C7 (§8: queries with
/// UDFs): engagement_score(play, buffer) and is_hd(bitrate).
void RegisterConvivaUdfs(FunctionRegistry* registry);

}  // namespace iolap

#endif  // IOLAP_WORKLOADS_CONVIVA_H_
