#include "workloads/tpch_queries.h"

namespace iolap {

std::vector<BenchQuery> TpchQueries() {
  std::vector<BenchQuery> queries;

  // ---- simple SPJA ------------------------------------------------------

  queries.push_back(
      {"q1",
       "SELECT lo_returnflag, lo_linestatus, "
       "sum(lo_quantity), sum(lo_extendedprice), "
       "sum(lo_extendedprice * (1 - lo_discount)), avg(lo_quantity), "
       "avg(lo_extendedprice), avg(lo_discount), count(*) "
       "FROM lineorder WHERE lo_shipdate <= 19980902 "
       "GROUP BY lo_returnflag, lo_linestatus",
       "lineorder", false});

  queries.push_back(
      {"q3",
       "SELECT lo_orderpriority, "
       "sum(lo_extendedprice * (1 - lo_discount)) AS revenue "
       "FROM lineorder, customer "
       "WHERE lo_custkey = c_custkey AND c_mktsegment = 'BUILDING' "
       "AND lo_orderdate < 19950315 "
       "GROUP BY lo_orderpriority",
       "lineorder", false});

  queries.push_back(
      {"q5",
       "SELECT n_name, sum(lo_extendedprice * (1 - lo_discount)) AS revenue "
       "FROM lineorder, customer, supplier, nation, region "
       "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey "
       "AND c_nationkey = s_nationkey "
       "AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
       "AND r_name = 'ASIA' AND lo_orderdate >= 19940101 "
       "AND lo_orderdate < 19960101 "
       "GROUP BY n_name",
       "lineorder", false});

  queries.push_back(
      {"q6",
       "SELECT sum(lo_extendedprice * lo_discount) AS revenue "
       "FROM lineorder "
       "WHERE lo_shipdate >= 19940101 AND lo_shipdate < 19950101 "
       "AND lo_discount BETWEEN 0.02 AND 0.09 "
       "AND lo_quantity < 24",
       "lineorder", false});

  queries.push_back(
      {"q7",
       "SELECT n1.n_name, n2.n_name, "
       "sum(lo_extendedprice * (1 - lo_discount)) AS revenue "
       "FROM lineorder, supplier, customer, nation n1, nation n2 "
       "WHERE lo_suppkey = s_suppkey AND lo_custkey = c_custkey "
       "AND s_nationkey = n1.n_nationkey AND c_nationkey = n2.n_nationkey "
       "AND (n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY' "
       "OR n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE' "
       "OR n1.n_name = 'CHINA' AND n2.n_name = 'JAPAN' "
       "OR n1.n_name = 'JAPAN' AND n2.n_name = 'CHINA') "
       "GROUP BY n1.n_name, n2.n_name",
       "lineorder", false});

  // ---- nested-aggregate queries -----------------------------------------

  queries.push_back(
      {"q11",
       "SELECT ps_partkey, sum(ps_supplycost * ps_availqty) AS value "
       "FROM partsupp GROUP BY ps_partkey "
       "HAVING sum(ps_supplycost * ps_availqty) > "
       "0.004 * (SELECT sum(ps_supplycost * ps_availqty) FROM partsupp)",
       "partsupp", true});

  queries.push_back(
      {"q17",
       "SELECT sum(l.lo_extendedprice) / 7.0 AS avg_yearly "
       "FROM lineorder l, part p "
       "WHERE p.p_partkey = l.lo_partkey AND p.p_brand = 'Brand#23' "
       "AND p.p_container = 'MED BOX' "
       "AND l.lo_quantity < (SELECT 0.9 * avg(l2.lo_quantity) "
       "FROM lineorder l2 WHERE l2.lo_partkey = l.lo_partkey)",
       "lineorder", true});

  // Q18 (large-volume orders): filtered at order granularity via HAVING —
  // the per-order sums are what the uncertain threshold test applies to,
  // so the recomputation set is bounded by the number of orders, not the
  // number of lineorder rows (matching the paper's small per-batch
  // recompute counts for this query).
  queries.push_back(
      {"q18",
       "SELECT lo_orderkey, lo_custkey, sum(lo_quantity) AS total_qty "
       "FROM lineorder "
       "GROUP BY lo_orderkey, lo_custkey "
       "HAVING sum(lo_quantity) > 150",
       "lineorder", true});

  // Q20 (excess availability): correlated on the part key. The original
  // correlates on (partkey, suppkey); at bench scale those groups hold
  // only a couple of lineorder rows each, too thin for any sampling-based
  // estimator, so the analog uses the per-part shipped volume.
  queries.push_back(
      {"q20",
       "SELECT count(*) AS eligible "
       "FROM partsupp ps, supplier s "
       "WHERE ps.ps_suppkey = s.s_suppkey AND s.s_acctbal > 0 "
       "AND ps.ps_availqty > (SELECT 0.05 * sum(l2.lo_quantity) "
       "FROM lineorder l2 WHERE l2.lo_partkey = ps.ps_partkey)",
       "lineorder", true});

  queries.push_back(
      {"q22",
       "SELECT c_mktsegment, count(*) AS numcust, sum(c_acctbal) AS totacctbal "
       "FROM customer "
       "WHERE c_acctbal > (SELECT avg(c_acctbal) FROM customer "
       "WHERE c_acctbal > 0.0) "
       "GROUP BY c_mktsegment",
       "customer", true});

  return queries;
}

BenchQuery FindTpchQuery(const std::string& id) {
  for (const BenchQuery& query : TpchQueries()) {
    if (query.id == id) return query;
  }
  return BenchQuery{};
}

}  // namespace iolap
