#ifndef IOLAP_WORKLOADS_CONVIVA_QUERIES_H_
#define IOLAP_WORKLOADS_CONVIVA_QUERIES_H_

#include <vector>

#include "workloads/tpch_queries.h"  // BenchQuery

namespace iolap {

/// The Conviva-style workload C1–C12 (§8), mirroring the paper's mix:
/// simple SPJA queries (C3, C5, C11, C12), complex queries with nested
/// subqueries and HAVING clauses (C1, C2, C4, C6–C10), UDFs (C6, C7) and
/// UDAFs (C8, C9, C10). C1 is the Slow Buffering Impact query of
/// Example 1. All queries stream the `sessions` fact table.
std::vector<BenchQuery> ConvivaQueries();

BenchQuery FindConvivaQuery(const std::string& id);

}  // namespace iolap

#endif  // IOLAP_WORKLOADS_CONVIVA_QUERIES_H_
