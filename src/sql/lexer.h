#ifndef IOLAP_SQL_LEXER_H_
#define IOLAP_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace iolap {

/// Token kinds of the supported SQL subset.
enum class TokenKind {
  kEnd,
  kIdentifier,  // foo, foo (keywords are classified by the parser)
  kNumber,      // 42, 3.5, .25
  kString,      // 'text' (with '' escaping)
  kComma,
  kSemicolon,
  kDot,
  kLeftParen,
  kRightParen,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kEq,
  kNotEq,  // <> or !=
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  /// Identifier text lower-cased (SQL identifiers are case-insensitive
  /// here); string literals unescaped; numbers verbatim.
  std::string text;
  /// Byte offset in the input, for error messages.
  size_t offset = 0;
  /// Number tokens: true if the literal had a '.' or exponent.
  bool is_float = false;
};

/// Tokenizes `sql`. Errors (unterminated string, stray character) carry the
/// offending offset.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace iolap

#endif  // IOLAP_SQL_LEXER_H_
