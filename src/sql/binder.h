#ifndef IOLAP_SQL_BINDER_H_
#define IOLAP_SQL_BINDER_H_

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "plan/logical_plan.h"
#include "sql/parser.h"

namespace iolap {

/// Lowers a parsed SELECT into a QueryPlan of lineage blocks — the
/// compile-time half of the paper's "Online Query Rewriter" (§7). The
/// binder performs:
///
///  - name resolution and type checking (alias-qualified column names),
///  - comma-join planning: equality conjuncts in WHERE become left-deep
///    equi-join edges,
///  - scalar-subquery compilation: an uncorrelated subquery becomes its own
///    aggregate block referenced through an AggLookupExpr; a correlated
///    subquery (inner.col = outer.col conjuncts) is decorrelated into a
///    grouped block keyed by the correlation columns,
///  - IN-subquery rewriting: `x IN (SELECT k FROM ... GROUP BY k HAVING p)`
///    becomes a join with the raw grouped block plus `p` folded into the
///    consumer's filter. This keeps block outputs append-only, which the
///    delta engine's join caches rely on (see AnalyzeUncertainty),
///  - HAVING / non-trivial select items: a post-aggregation block is added
///    on top of the aggregate block.
///
/// Supported subset: SELECT-PROJECT-JOIN-AGGREGATE with arbitrary nesting
/// through the constructs above; UNION/ORDER BY/OUTER JOIN are not
/// supported (outer joins need set difference, which the paper's positive
/// relational algebra excludes, §3.3).
class Binder {
 public:
  Binder(const Catalog* catalog,
         std::shared_ptr<const FunctionRegistry> functions);

  /// Binds a parsed statement.
  Result<QueryPlan> Bind(const SelectStmt& stmt);

 private:
  class Impl;
  const Catalog* catalog_;
  std::shared_ptr<const FunctionRegistry> functions_;
};

/// Parse + bind in one step.
Result<QueryPlan> BindSql(const std::string& sql, const Catalog& catalog,
                          std::shared_ptr<const FunctionRegistry> functions);

}  // namespace iolap

#endif  // IOLAP_SQL_BINDER_H_
