#ifndef IOLAP_SQL_PARSER_H_
#define IOLAP_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/value.h"

namespace iolap {

struct AstExpr;
using AstExprPtr = std::shared_ptr<AstExpr>;
struct SelectStmt;
using SelectStmtPtr = std::shared_ptr<SelectStmt>;

/// Untyped syntax tree of an expression. The binder resolves names, types
/// and subqueries.
struct AstExpr {
  enum class Kind {
    kLiteral,
    kColumn,    // [qualifier.]name
    kUnary,     // op in {"-", "not"}
    kBinary,    // op in {+,-,*,/,%,<,<=,>,>=,=,<>,and,or}
    kCall,      // fn(args) — scalar function or aggregate
    kSubquery,  // (SELECT ...) used as a scalar
    kIn,        // lhs IN (SELECT ...)
    kStar,      // '*' inside count(*)
  };

  Kind kind = Kind::kLiteral;
  Value literal;
  std::string qualifier;  // kColumn: table/alias qualifier ("" if none)
  std::string name;       // kColumn: column; kCall: function; kUnary/kBinary: op
  std::vector<AstExprPtr> args;  // operands / call args / IN lhs
  SelectStmtPtr subquery;        // kSubquery / kIn

  std::string ToString() const;
};

/// FROM-clause table reference with optional alias.
struct AstTableRef {
  std::string table;
  std::string alias;  // = table when absent
};

/// One SELECT-list item.
struct AstSelectItem {
  AstExprPtr expr;
  std::string alias;  // "" = derive a name from the expression
};

/// ORDER BY entry (presentation only).
struct AstOrderItem {
  AstExprPtr expr;
  bool descending = false;
};

/// A (possibly nested) SELECT statement of the supported subset:
///
///   SELECT item [, item]*
///   FROM table [alias] [, table [alias]]*
///   [WHERE expr]           -- join conditions live here, comma-join style
///   [GROUP BY expr [, expr]*]
///   [HAVING expr]
///   [ORDER BY expr [ASC|DESC] [, ...]]   -- top-level only
///   [LIMIT n]
///
/// `x BETWEEN a AND b` and `x IN (v1, v2, ...)` are desugared by the
/// parser into comparisons / OR chains.
struct SelectStmt {
  std::vector<AstSelectItem> items;
  std::vector<AstTableRef> from;
  AstExprPtr where;  // null if absent
  std::vector<AstExprPtr> group_by;
  AstExprPtr having;  // null if absent
  std::vector<AstOrderItem> order_by;
  int64_t limit = -1;  // -1 = no limit

  std::string ToString() const;
};

/// Parses one SELECT statement (optionally ';'-terminated).
Result<SelectStmtPtr> ParseSelect(const std::string& sql);

}  // namespace iolap

#endif  // IOLAP_SQL_PARSER_H_
