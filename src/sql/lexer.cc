#include "sql/lexer.h"

#include <cctype>

namespace iolap {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(sql[j])) ++j;
      token.kind = TokenKind::kIdentifier;
      token.text = sql.substr(i, j - i);
      for (char& ch : token.text) {
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
      }
      i = j;
    } else if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(sql[i + 1]))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && (IsDigit(sql[j]) || sql[j] == '.')) {
        if (sql[j] == '.') is_float = true;
        ++j;
      }
      if (j < n && (sql[j] == 'e' || sql[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (sql[k] == '+' || sql[k] == '-')) ++k;
        if (k < n && IsDigit(sql[k])) {
          is_float = true;
          j = k;
          while (j < n && IsDigit(sql[j])) ++j;
        }
      }
      token.kind = TokenKind::kNumber;
      token.text = sql.substr(i, j - i);
      token.is_float = is_float;
      i = j;
    } else if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // escaped quote
            text += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text += sql[j];
        ++j;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(i));
      }
      token.kind = TokenKind::kString;
      token.text = std::move(text);
      i = j;
    } else {
      switch (c) {
        case ',':
          token.kind = TokenKind::kComma;
          ++i;
          break;
        case ';':
          token.kind = TokenKind::kSemicolon;
          ++i;
          break;
        case '.':
          token.kind = TokenKind::kDot;
          ++i;
          break;
        case '(':
          token.kind = TokenKind::kLeftParen;
          ++i;
          break;
        case ')':
          token.kind = TokenKind::kRightParen;
          ++i;
          break;
        case '+':
          token.kind = TokenKind::kPlus;
          ++i;
          break;
        case '-':
          token.kind = TokenKind::kMinus;
          ++i;
          break;
        case '*':
          token.kind = TokenKind::kStar;
          ++i;
          break;
        case '/':
          token.kind = TokenKind::kSlash;
          ++i;
          break;
        case '%':
          token.kind = TokenKind::kPercent;
          ++i;
          break;
        case '<':
          if (i + 1 < n && sql[i + 1] == '=') {
            token.kind = TokenKind::kLessEq;
            i += 2;
          } else if (i + 1 < n && sql[i + 1] == '>') {
            token.kind = TokenKind::kNotEq;
            i += 2;
          } else {
            token.kind = TokenKind::kLess;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && sql[i + 1] == '=') {
            token.kind = TokenKind::kGreaterEq;
            i += 2;
          } else {
            token.kind = TokenKind::kGreater;
            ++i;
          }
          break;
        case '=':
          token.kind = TokenKind::kEq;
          ++i;
          break;
        case '!':
          if (i + 1 < n && sql[i + 1] == '=') {
            token.kind = TokenKind::kNotEq;
            i += 2;
          } else {
            return Status::ParseError("unexpected '!' at offset " +
                                      std::to_string(i));
          }
          break;
        default:
          return Status::ParseError(std::string("unexpected character '") +
                                    c + "' at offset " + std::to_string(i));
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace iolap
