#include "sql/parser.h"

#include "sql/lexer.h"

namespace iolap {

namespace {

// Recursive-descent parser over the token stream. Precedence (loosest to
// tightest): OR, AND, NOT, comparison / IN, additive, multiplicative,
// unary minus, primary.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStmtPtr> ParseStatement() {
    IOLAP_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelectBody());
    Accept(TokenKind::kSemicolon);
    if (!Check(TokenKind::kEnd)) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }

  bool CheckKeyword(const std::string& kw) const {
    return Peek().kind == TokenKind::kIdentifier && Peek().text == kw;
  }

  bool Accept(TokenKind kind) {
    if (!Check(kind)) return false;
    ++pos_;
    return true;
  }

  bool AcceptKeyword(const std::string& kw) {
    if (!CheckKeyword(kw)) return false;
    ++pos_;
    return true;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " +
                              std::to_string(Peek().offset));
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) return Error("expected " + kw);
    return Status::OK();
  }

  Status Expect(TokenKind kind, const std::string& what) {
    if (!Accept(kind)) return Error("expected " + what);
    return Status::OK();
  }

  static bool IsReserved(const std::string& word) {
    static const char* kReserved[] = {
        "select", "from",  "where", "group", "by",      "having",
        "as",     "and",   "or",    "not",   "in",      "join",
        "on",     "order", "limit", "asc",   "desc",    "between"};
    for (const char* r : kReserved) {
      if (word == r) return true;
    }
    return false;
  }

  Result<SelectStmtPtr> ParseSelectBody() {
    IOLAP_RETURN_IF_ERROR(ExpectKeyword("select"));
    auto stmt = std::make_shared<SelectStmt>();

    // Select list.
    do {
      AstSelectItem item;
      IOLAP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("as")) {
        if (!Check(TokenKind::kIdentifier)) return Error("expected alias");
        item.alias = Advance().text;
      } else if (Check(TokenKind::kIdentifier) && !IsReserved(Peek().text)) {
        item.alias = Advance().text;  // implicit alias
      }
      stmt->items.push_back(std::move(item));
    } while (Accept(TokenKind::kComma));

    // FROM.
    IOLAP_RETURN_IF_ERROR(ExpectKeyword("from"));
    do {
      if (!Check(TokenKind::kIdentifier)) return Error("expected table name");
      AstTableRef ref;
      ref.table = Advance().text;
      ref.alias = ref.table;
      if (Check(TokenKind::kIdentifier) && !IsReserved(Peek().text)) {
        ref.alias = Advance().text;
      }
      stmt->from.push_back(std::move(ref));
      // Explicit JOIN ... ON cond sugar: fold the condition into WHERE.
      while (AcceptKeyword("join")) {
        if (!Check(TokenKind::kIdentifier)) {
          return Error("expected table name after JOIN");
        }
        AstTableRef joined;
        joined.table = Advance().text;
        joined.alias = joined.table;
        if (Check(TokenKind::kIdentifier) && !IsReserved(Peek().text)) {
          joined.alias = Advance().text;
        }
        stmt->from.push_back(std::move(joined));
        IOLAP_RETURN_IF_ERROR(ExpectKeyword("on"));
        IOLAP_ASSIGN_OR_RETURN(AstExprPtr cond, ParseExpr());
        if (stmt->where == nullptr) {
          stmt->where = std::move(cond);
        } else {
          auto conj = std::make_shared<AstExpr>();
          conj->kind = AstExpr::Kind::kBinary;
          conj->name = "and";
          conj->args = {stmt->where, std::move(cond)};
          stmt->where = std::move(conj);
        }
      }
    } while (Accept(TokenKind::kComma));

    // WHERE.
    if (AcceptKeyword("where")) {
      IOLAP_ASSIGN_OR_RETURN(AstExprPtr cond, ParseExpr());
      if (stmt->where == nullptr) {
        stmt->where = std::move(cond);
      } else {
        auto conj = std::make_shared<AstExpr>();
        conj->kind = AstExpr::Kind::kBinary;
        conj->name = "and";
        conj->args = {stmt->where, std::move(cond)};
        stmt->where = std::move(conj);
      }
    }

    // GROUP BY.
    if (AcceptKeyword("group")) {
      IOLAP_RETURN_IF_ERROR(ExpectKeyword("by"));
      do {
        IOLAP_ASSIGN_OR_RETURN(AstExprPtr key, ParseExpr());
        stmt->group_by.push_back(std::move(key));
      } while (Accept(TokenKind::kComma));
    }

    // HAVING.
    if (AcceptKeyword("having")) {
      IOLAP_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }

    // ORDER BY (presentation).
    if (AcceptKeyword("order")) {
      IOLAP_RETURN_IF_ERROR(ExpectKeyword("by"));
      do {
        AstOrderItem item;
        IOLAP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("desc")) {
          item.descending = true;
        } else {
          AcceptKeyword("asc");
        }
        stmt->order_by.push_back(std::move(item));
      } while (Accept(TokenKind::kComma));
    }

    // LIMIT.
    if (AcceptKeyword("limit")) {
      if (!Check(TokenKind::kNumber) || Peek().is_float) {
        return Error("LIMIT expects an integer");
      }
      stmt->limit = std::stoll(Advance().text);
    }
    return stmt;
  }

  Result<AstExprPtr> ParseExpr() { return ParseOr(); }

  Result<AstExprPtr> ParseOr() {
    IOLAP_ASSIGN_OR_RETURN(AstExprPtr left, ParseAnd());
    while (AcceptKeyword("or")) {
      IOLAP_ASSIGN_OR_RETURN(AstExprPtr right, ParseAnd());
      auto node = std::make_shared<AstExpr>();
      node->kind = AstExpr::Kind::kBinary;
      node->name = "or";
      node->args = {std::move(left), std::move(right)};
      left = std::move(node);
    }
    return left;
  }

  Result<AstExprPtr> ParseAnd() {
    IOLAP_ASSIGN_OR_RETURN(AstExprPtr left, ParseNot());
    while (AcceptKeyword("and")) {
      IOLAP_ASSIGN_OR_RETURN(AstExprPtr right, ParseNot());
      auto node = std::make_shared<AstExpr>();
      node->kind = AstExpr::Kind::kBinary;
      node->name = "and";
      node->args = {std::move(left), std::move(right)};
      left = std::move(node);
    }
    return left;
  }

  Result<AstExprPtr> ParseNot() {
    if (AcceptKeyword("not")) {
      IOLAP_ASSIGN_OR_RETURN(AstExprPtr operand, ParseNot());
      auto node = std::make_shared<AstExpr>();
      node->kind = AstExpr::Kind::kUnary;
      node->name = "not";
      node->args = {std::move(operand)};
      return AstExprPtr(node);
    }
    return ParseComparison();
  }

  Result<AstExprPtr> ParseComparison() {
    IOLAP_ASSIGN_OR_RETURN(AstExprPtr left, ParseAdditive());
    // x BETWEEN a AND b  ⇒  x >= a AND x <= b (bounds bind tighter than
    // the logical AND, so they parse at additive level).
    if (AcceptKeyword("between")) {
      IOLAP_ASSIGN_OR_RETURN(AstExprPtr lo, ParseAdditive());
      IOLAP_RETURN_IF_ERROR(ExpectKeyword("and"));
      IOLAP_ASSIGN_OR_RETURN(AstExprPtr hi, ParseAdditive());
      auto ge = std::make_shared<AstExpr>();
      ge->kind = AstExpr::Kind::kBinary;
      ge->name = ">=";
      ge->args = {left, std::move(lo)};
      auto le = std::make_shared<AstExpr>();
      le->kind = AstExpr::Kind::kBinary;
      le->name = "<=";
      le->args = {left, std::move(hi)};
      auto conj = std::make_shared<AstExpr>();
      conj->kind = AstExpr::Kind::kBinary;
      conj->name = "and";
      conj->args = {std::move(ge), std::move(le)};
      return AstExprPtr(conj);
    }
    // IN (SELECT ...) or a literal IN-list (desugared to an OR chain).
    if (AcceptKeyword("in")) {
      IOLAP_RETURN_IF_ERROR(Expect(TokenKind::kLeftParen, "'('"));
      if (!CheckKeyword("select")) {
        AstExprPtr disjunction;
        do {
          IOLAP_ASSIGN_OR_RETURN(AstExprPtr value, ParseExpr());
          auto eq = std::make_shared<AstExpr>();
          eq->kind = AstExpr::Kind::kBinary;
          eq->name = "=";
          eq->args = {left, std::move(value)};
          if (disjunction == nullptr) {
            disjunction = std::move(eq);
          } else {
            auto either = std::make_shared<AstExpr>();
            either->kind = AstExpr::Kind::kBinary;
            either->name = "or";
            either->args = {std::move(disjunction), std::move(eq)};
            disjunction = std::move(either);
          }
        } while (Accept(TokenKind::kComma));
        IOLAP_RETURN_IF_ERROR(Expect(TokenKind::kRightParen, "')'"));
        return disjunction;
      }
      IOLAP_ASSIGN_OR_RETURN(SelectStmtPtr sub, ParseSelectBody());
      IOLAP_RETURN_IF_ERROR(Expect(TokenKind::kRightParen, "')'"));
      auto node = std::make_shared<AstExpr>();
      node->kind = AstExpr::Kind::kIn;
      node->args = {std::move(left)};
      node->subquery = std::move(sub);
      return AstExprPtr(node);
    }
    const char* op = nullptr;
    switch (Peek().kind) {
      case TokenKind::kLess:
        op = "<";
        break;
      case TokenKind::kLessEq:
        op = "<=";
        break;
      case TokenKind::kGreater:
        op = ">";
        break;
      case TokenKind::kGreaterEq:
        op = ">=";
        break;
      case TokenKind::kEq:
        op = "=";
        break;
      case TokenKind::kNotEq:
        op = "<>";
        break;
      default:
        return left;
    }
    Advance();
    IOLAP_ASSIGN_OR_RETURN(AstExprPtr right, ParseAdditive());
    auto node = std::make_shared<AstExpr>();
    node->kind = AstExpr::Kind::kBinary;
    node->name = op;
    node->args = {std::move(left), std::move(right)};
    return AstExprPtr(node);
  }

  Result<AstExprPtr> ParseAdditive() {
    IOLAP_ASSIGN_OR_RETURN(AstExprPtr left, ParseMultiplicative());
    for (;;) {
      const char* op = nullptr;
      if (Check(TokenKind::kPlus)) op = "+";
      if (Check(TokenKind::kMinus)) op = "-";
      if (op == nullptr) return left;
      Advance();
      IOLAP_ASSIGN_OR_RETURN(AstExprPtr right, ParseMultiplicative());
      auto node = std::make_shared<AstExpr>();
      node->kind = AstExpr::Kind::kBinary;
      node->name = op;
      node->args = {std::move(left), std::move(right)};
      left = std::move(node);
    }
  }

  Result<AstExprPtr> ParseMultiplicative() {
    IOLAP_ASSIGN_OR_RETURN(AstExprPtr left, ParseUnary());
    for (;;) {
      const char* op = nullptr;
      if (Check(TokenKind::kStar)) op = "*";
      if (Check(TokenKind::kSlash)) op = "/";
      if (Check(TokenKind::kPercent)) op = "%";
      if (op == nullptr) return left;
      Advance();
      IOLAP_ASSIGN_OR_RETURN(AstExprPtr right, ParseUnary());
      auto node = std::make_shared<AstExpr>();
      node->kind = AstExpr::Kind::kBinary;
      node->name = op;
      node->args = {std::move(left), std::move(right)};
      left = std::move(node);
    }
  }

  Result<AstExprPtr> ParseUnary() {
    if (Accept(TokenKind::kMinus)) {
      IOLAP_ASSIGN_OR_RETURN(AstExprPtr operand, ParseUnary());
      auto node = std::make_shared<AstExpr>();
      node->kind = AstExpr::Kind::kUnary;
      node->name = "-";
      node->args = {std::move(operand)};
      return AstExprPtr(node);
    }
    return ParsePrimary();
  }

  Result<AstExprPtr> ParsePrimary() {
    auto node = std::make_shared<AstExpr>();
    if (Check(TokenKind::kNumber)) {
      const Token& token = Advance();
      node->kind = AstExpr::Kind::kLiteral;
      node->literal = token.is_float
                          ? Value::Double(std::stod(token.text))
                          : Value::Int64(std::stoll(token.text));
      return AstExprPtr(node);
    }
    if (Check(TokenKind::kString)) {
      node->kind = AstExpr::Kind::kLiteral;
      node->literal = Value::String(Advance().text);
      return AstExprPtr(node);
    }
    if (Check(TokenKind::kStar)) {
      Advance();
      node->kind = AstExpr::Kind::kStar;
      return AstExprPtr(node);
    }
    if (Accept(TokenKind::kLeftParen)) {
      if (CheckKeyword("select")) {
        IOLAP_ASSIGN_OR_RETURN(SelectStmtPtr sub, ParseSelectBody());
        IOLAP_RETURN_IF_ERROR(Expect(TokenKind::kRightParen, "')'"));
        node->kind = AstExpr::Kind::kSubquery;
        node->subquery = std::move(sub);
        return AstExprPtr(node);
      }
      IOLAP_ASSIGN_OR_RETURN(AstExprPtr inner, ParseExpr());
      IOLAP_RETURN_IF_ERROR(Expect(TokenKind::kRightParen, "')'"));
      return inner;
    }
    if (Check(TokenKind::kIdentifier)) {
      const std::string first = Advance().text;
      if (IsReserved(first)) {
        return Error("unexpected keyword '" + first + "'");
      }
      // Function call?
      if (Accept(TokenKind::kLeftParen)) {
        node->kind = AstExpr::Kind::kCall;
        node->name = first;
        if (!Check(TokenKind::kRightParen)) {
          do {
            IOLAP_ASSIGN_OR_RETURN(AstExprPtr arg, ParseExpr());
            node->args.push_back(std::move(arg));
          } while (Accept(TokenKind::kComma));
        }
        IOLAP_RETURN_IF_ERROR(Expect(TokenKind::kRightParen, "')'"));
        return AstExprPtr(node);
      }
      // qualified column?
      node->kind = AstExpr::Kind::kColumn;
      if (Accept(TokenKind::kDot)) {
        if (!Check(TokenKind::kIdentifier)) {
          return Error("expected column after '.'");
        }
        node->qualifier = first;
        node->name = Advance().text;
      } else {
        node->name = first;
      }
      return AstExprPtr(node);
    }
    return Error("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::string AstExpr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kColumn:
      return qualifier.empty() ? name : qualifier + "." + name;
    case Kind::kUnary:
      return name + "(" + args[0]->ToString() + ")";
    case Kind::kBinary:
      return "(" + args[0]->ToString() + " " + name + " " +
             args[1]->ToString() + ")";
    case Kind::kCall: {
      std::string out = name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kSubquery:
      return "(" + subquery->ToString() + ")";
    case Kind::kIn:
      return args[0]->ToString() + " IN (" + subquery->ToString() + ")";
    case Kind::kStar:
      return "*";
  }
  return "?";
}

std::string SelectStmt::ToString() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].expr->ToString();
    if (!items[i].alias.empty()) out += " AS " + items[i].alias;
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    out += from[i].table;
    if (from[i].alias != from[i].table) out += " " + from[i].alias;
  }
  if (where != nullptr) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having != nullptr) out += " HAVING " + having->ToString();
  return out;
}

Result<SelectStmtPtr> ParseSelect(const std::string& sql) {
  IOLAP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace iolap
