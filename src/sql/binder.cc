#include "sql/binder.h"

#include <deque>
#include <map>
#include <set>

#include "core/aggregate.h"

namespace iolap {

namespace {

// The unqualified tail of a column name.
std::string BaseName(const std::string& name) {
  const size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

void FlattenConjuncts(const AstExprPtr& expr, std::vector<AstExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind == AstExpr::Kind::kBinary && expr->name == "and") {
    FlattenConjuncts(expr->args[0], out);
    FlattenConjuncts(expr->args[1], out);
    return;
  }
  out->push_back(expr);
}

Expr::BinaryOp BinaryOpFromName(const std::string& name) {
  if (name == "+") return Expr::BinaryOp::kAdd;
  if (name == "-") return Expr::BinaryOp::kSub;
  if (name == "*") return Expr::BinaryOp::kMul;
  if (name == "/") return Expr::BinaryOp::kDiv;
  if (name == "%") return Expr::BinaryOp::kMod;
  if (name == "<") return Expr::BinaryOp::kLt;
  if (name == "<=") return Expr::BinaryOp::kLe;
  if (name == ">") return Expr::BinaryOp::kGt;
  if (name == ">=") return Expr::BinaryOp::kGe;
  if (name == "=") return Expr::BinaryOp::kEq;
  if (name == "<>") return Expr::BinaryOp::kNe;
  if (name == "and") return Expr::BinaryOp::kAnd;
  return Expr::BinaryOp::kOr;
}

}  // namespace

// ---------------------------------------------------------------- Impl

class Binder::Impl {
 public:
  Impl(const Catalog* catalog,
       std::shared_ptr<const FunctionRegistry> functions)
      : catalog_(catalog), functions_(std::move(functions)) {
    plan_.functions = functions_;
  }

  Result<QueryPlan> Bind(const SelectStmt& stmt) {
    IOLAP_RETURN_IF_ERROR(BindSelect(stmt, /*outer=*/nullptr));
    // Blocks were built in a deque for pointer stability; materialize the
    // plan vector.
    plan_.blocks.assign(blocks_.begin(), blocks_.end());
    IOLAP_RETURN_IF_ERROR(BindPresentation(stmt));
    for (const Block& block : plan_.blocks) {
      for (const BlockInput& input : block.inputs) {
        if (input.kind == BlockInput::Kind::kBaseTable && input.streamed) {
          if (!plan_.streamed_table.empty() &&
              plan_.streamed_table != input.table_name) {
            return Status::BindError(
                "queries may stream at most one relation (got " +
                plan_.streamed_table + " and " + input.table_name + ")");
          }
          plan_.streamed_table = input.table_name;
        }
      }
    }
    IOLAP_RETURN_IF_ERROR(ValidatePlan(plan_));
    return std::move(plan_);
  }

 private:
  /// Column-resolution scope: a block under construction plus the
  /// enclosing query's scope for correlated subqueries.
  struct Scope {
    Block* block = nullptr;
    const Scope* outer = nullptr;
  };

  bool IsAggregateName(const std::string& name) const {
    return AggKindFromName(name) != AggKind::kUdaf ||
           functions_->HasAggregate(name);
  }

  // Resolves "[qualifier.]name" against a block's SPJ schema.
  Result<int> ResolveColumn(const Block& block, const std::string& qualifier,
                            const std::string& name) const {
    const std::string wanted =
        qualifier.empty() ? name : qualifier + "." + name;
    return block.spj_schema.FindColumn(wanted);
  }

  ExprPtr ColumnExpr(const Block& block, int index) const {
    return Col(index, block.spj_schema.column(index).name,
               block.spj_schema.column(index).type);
  }

  // ----------------------------------------------------------- FROM

  // Adds a base-table input (alias-qualified schema) to `block`.
  Status AddTableInput(Block* block, const AstTableRef& ref,
                       std::vector<int> prefix_keys,
                       std::vector<int> input_keys) {
    IOLAP_ASSIGN_OR_RETURN(const TableEntry* entry,
                           catalog_->Find(ref.table));
    BlockInput input;
    input.kind = BlockInput::Kind::kBaseTable;
    input.table_name = ref.table;
    input.streamed = entry->streamed;
    Schema qualified;
    for (const Column& col : entry->table->schema().columns()) {
      qualified.AddColumn(Column(ref.alias + "." + BaseName(col.name),
                                 col.type));
    }
    input.schema = std::move(qualified);
    input.prefix_key_cols = std::move(prefix_keys);
    input.input_key_cols = std::move(input_keys);
    block->spj_schema = block->spj_schema.Concat(input.schema);
    block->inputs.push_back(std::move(input));
    return Status::OK();
  }

  // Adds an upstream block's output as a join input.
  void AddBlockInput(Block* block, int source_block,
                     std::vector<int> prefix_keys,
                     std::vector<int> input_keys) {
    BlockInput input;
    input.kind = BlockInput::Kind::kBlockOutput;
    input.source_block = source_block;
    input.schema = blocks_[source_block].output_schema;
    input.prefix_key_cols = std::move(prefix_keys);
    input.input_key_cols = std::move(input_keys);
    block->spj_schema = block->spj_schema.Concat(input.schema);
    block->inputs.push_back(std::move(input));
  }

  // Builds `block`'s inputs from a FROM list, consuming equality conjuncts
  // that link a new table to the already-joined prefix. Consumed conjunct
  // indexes are recorded in `used`.
  Status BuildFrom(Block* block, const std::vector<AstTableRef>& from,
                   const std::vector<AstExprPtr>& conjuncts,
                   std::vector<bool>* used) {
    if (from.empty()) return Status::BindError("FROM clause is empty");
    // Alias uniqueness.
    std::set<std::string> aliases;
    for (const AstTableRef& ref : from) {
      if (!aliases.insert(ref.alias).second) {
        return Status::BindError("duplicate table alias: " + ref.alias);
      }
    }
    IOLAP_RETURN_IF_ERROR(AddTableInput(block, from[0], {}, {}));
    for (size_t k = 1; k < from.size(); ++k) {
      // Provisionally materialize the new table's qualified schema to test
      // conjunct sides.
      IOLAP_ASSIGN_OR_RETURN(const TableEntry* entry,
                             catalog_->Find(from[k].table));
      Schema added;
      for (const Column& col : entry->table->schema().columns()) {
        added.AddColumn(
            Column(from[k].alias + "." + BaseName(col.name), col.type));
      }
      std::vector<int> prefix_keys;
      std::vector<int> input_keys;
      for (size_t c = 0; c < conjuncts.size(); ++c) {
        if ((*used)[c]) continue;
        const AstExpr& conj = *conjuncts[c];
        if (conj.kind != AstExpr::Kind::kBinary || conj.name != "=") continue;
        const AstExpr& lhs = *conj.args[0];
        const AstExpr& rhs = *conj.args[1];
        if (lhs.kind != AstExpr::Kind::kColumn ||
            rhs.kind != AstExpr::Kind::kColumn) {
          continue;
        }
        auto side = [&](const AstExpr& col)
            -> std::pair<int, int> {  // {in_prefix_idx, in_added_idx}
          const std::string wanted =
              col.qualifier.empty() ? col.name
                                    : col.qualifier + "." + col.name;
          auto prefix = block->spj_schema.FindColumn(wanted);
          auto added_col = added.FindColumn(wanted);
          return {prefix.ok() ? *prefix : -1,
                  added_col.ok() ? *added_col : -1};
        };
        const auto [l_prefix, l_added] = side(lhs);
        const auto [r_prefix, r_added] = side(rhs);
        if (l_prefix >= 0 && r_added >= 0 && r_prefix < 0) {
          prefix_keys.push_back(l_prefix);
          input_keys.push_back(r_added);
          (*used)[c] = true;
        } else if (r_prefix >= 0 && l_added >= 0 && l_prefix < 0) {
          prefix_keys.push_back(r_prefix);
          input_keys.push_back(l_added);
          (*used)[c] = true;
        }
      }
      IOLAP_RETURN_IF_ERROR(AddTableInput(block, from[k],
                                          std::move(prefix_keys),
                                          std::move(input_keys)));
    }
    return Status::OK();
  }

  // ----------------------------------------------------- expressions

  struct BindOptions {
    /// Aggregate calls allowed? (only in select items / having args)
    bool allow_aggregates = false;
    /// Collect-only pass: subqueries are left for the later rebind pass
    /// (which resolves aggregates through `precomputed`), so they are not
    /// bound twice.
    bool skip_subqueries = false;
    /// Rewrites: AST rendering of an aggregate call / group-by expression
    /// -> column index in the current block's SPJ schema (used when binding
    /// items/having over an aggregate block's output).
    const std::map<std::string, int>* precomputed = nullptr;
    /// Collected aggregate specs when aggregates are bound in place (the
    /// aggregate block itself).
    std::vector<AggSpec>* agg_sink = nullptr;
    std::map<std::string, int>* agg_index = nullptr;  // AST string -> spec
    /// Scope the aggregate args are bound against (the aggregate block).
    const Scope* agg_scope = nullptr;
    /// When aggregate calls become lookups instead of accumulating specs
    /// (scalar subqueries): target block + key expressions.
    int lookup_block = -1;
    const std::vector<ExprPtr>* lookup_keys = nullptr;
  };

  Result<ExprPtr> BindExpr(const AstExprPtr& ast, const Scope& scope,
                           const BindOptions& options) {
    switch (ast->kind) {
      case AstExpr::Kind::kLiteral:
        return Lit(ast->literal);
      case AstExpr::Kind::kColumn: {
        if (options.precomputed != nullptr) {
          auto it = options.precomputed->find(ast->ToString());
          if (it != options.precomputed->end()) {
            return ColumnExpr(*scope.block, it->second);
          }
        }
        auto col = ResolveColumn(*scope.block, ast->qualifier, ast->name);
        if (!col.ok()) {
          return Status::BindError("cannot resolve column " +
                                   ast->ToString() + ": " +
                                   col.status().message());
        }
        return ColumnExpr(*scope.block, *col);
      }
      case AstExpr::Kind::kUnary: {
        IOLAP_ASSIGN_OR_RETURN(ExprPtr operand,
                               BindExpr(ast->args[0], scope, options));
        return ast->name == "not" ? Not(std::move(operand))
                                  : Neg(std::move(operand));
      }
      case AstExpr::Kind::kBinary: {
        IOLAP_ASSIGN_OR_RETURN(ExprPtr left,
                               BindExpr(ast->args[0], scope, options));
        IOLAP_ASSIGN_OR_RETURN(ExprPtr right,
                               BindExpr(ast->args[1], scope, options));
        return MakeBinary(BinaryOpFromName(ast->name), std::move(left),
                          std::move(right));
      }
      case AstExpr::Kind::kCall: {
        if (IsAggregateName(ast->name)) {
          return BindAggregateCall(ast, scope, options);
        }
        IOLAP_ASSIGN_OR_RETURN(const ScalarFunction* fn,
                               functions_->FindScalar(ast->name));
        if (fn->arity >= 0 &&
            fn->arity != static_cast<int>(ast->args.size())) {
          return Status::BindError("function " + ast->name + " expects " +
                                   std::to_string(fn->arity) + " arguments");
        }
        std::vector<ExprPtr> args;
        std::vector<ValueType> arg_types;
        for (const AstExprPtr& arg : ast->args) {
          IOLAP_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(arg, scope, options));
          arg_types.push_back(bound->output_type());
          args.push_back(std::move(bound));
        }
        return std::static_pointer_cast<const Expr>(
            std::make_shared<CallExpr>(ast->name, std::move(args),
                                       fn->result_type(arg_types)));
      }
      case AstExpr::Kind::kSubquery:
        if (options.skip_subqueries) return Lit(Value::Null());
        return BindScalarSubquery(*ast->subquery, scope);
      case AstExpr::Kind::kIn:
        return Status::BindError(
            "IN subqueries are only supported as top-level WHERE conjuncts");
      case AstExpr::Kind::kStar:
        return Status::BindError("'*' is only valid inside count(*)");
    }
    return Status::BindError("unsupported expression");
  }

  Result<ExprPtr> BindAggregateCall(const AstExprPtr& ast, const Scope& scope,
                                    const BindOptions& options) {
    if (options.precomputed != nullptr) {
      auto it = options.precomputed->find(ast->ToString());
      if (it != options.precomputed->end()) {
        return ColumnExpr(*scope.block, it->second);
      }
    }
    if (!options.allow_aggregates) {
      return Status::BindError("aggregate " + ast->name +
                               " is not allowed in this context");
    }
    if (ast->args.size() != 1) {
      return Status::BindError("aggregate " + ast->name +
                               " takes exactly one argument");
    }
    // Bind the argument in the aggregate block's scope.
    const Scope& arg_scope =
        options.agg_scope != nullptr ? *options.agg_scope : scope;
    ExprPtr arg;
    if (ast->args[0]->kind == AstExpr::Kind::kStar) {
      if (ast->name != "count") {
        return Status::BindError("'*' is only valid inside count(*)");
      }
      arg = Lit(int64_t{1});
    } else {
      BindOptions arg_options;  // plain column/scalar context
      IOLAP_ASSIGN_OR_RETURN(arg,
                             BindExpr(ast->args[0], arg_scope, arg_options));
    }
    std::shared_ptr<const AggFunction> fn;
    const AggKind kind = AggKindFromName(ast->name);
    if (kind != AggKind::kUdaf) {
      fn = MakeBuiltinAggFunction(kind);
    } else {
      IOLAP_ASSIGN_OR_RETURN(fn, functions_->FindAggregate(ast->name));
    }
    const ValueType result_type = fn->ResultType(arg->output_type());

    if (options.lookup_block >= 0) {
      // Scalar-subquery context: the aggregate becomes a lineage lookup.
      const Block& target = blocks_[options.lookup_block];
      // Find (or add) the spec in the target block.
      const std::string rendered = ast->ToString();
      int spec_index = -1;
      auto it = options.agg_index->find(rendered);
      if (it != options.agg_index->end()) {
        spec_index = it->second;
      } else {
        spec_index = static_cast<int>(options.agg_sink->size());
        options.agg_sink->push_back(
            AggSpec{fn, arg, "agg" + std::to_string(spec_index)});
        (*options.agg_index)[rendered] = spec_index;
      }
      return std::static_pointer_cast<const Expr>(
          std::make_shared<AggLookupExpr>(
              options.lookup_block,
              static_cast<int>(target.group_by.size()) + spec_index,
              *options.lookup_keys, result_type, rendered));
    }

    // Aggregate-block context: accumulate a spec; the call site receives a
    // reference that the caller resolves (only used by item/having
    // rewriting which goes through `precomputed`, so reaching here means
    // the caller wants the spec only).
    const std::string rendered = ast->ToString();
    auto it = options.agg_index->find(rendered);
    if (it == options.agg_index->end()) {
      const int spec_index = static_cast<int>(options.agg_sink->size());
      options.agg_sink->push_back(AggSpec{fn, arg, rendered});
      (*options.agg_index)[rendered] = spec_index;
    }
    // Placeholder; rewritten by the caller via `precomputed`.
    return Lit(Value::Null());
  }

  // -------------------------------------------------- scalar subquery

  Result<ExprPtr> BindScalarSubquery(const SelectStmt& stmt,
                                     const Scope& outer) {
    if (!stmt.group_by.empty() || stmt.having != nullptr) {
      return Status::BindError(
          "scalar subqueries must not have GROUP BY/HAVING");
    }
    if (!stmt.order_by.empty() || stmt.limit >= 0) {
      return Status::BindError(
          "ORDER BY / LIMIT are only supported at the top level");
    }
    if (stmt.items.size() != 1) {
      return Status::BindError("scalar subqueries must select one value");
    }
    Block sub;
    sub.id = static_cast<int>(blocks_.size());
    sub.debug_name = "subquery#" + std::to_string(sub.id);

    std::vector<AstExprPtr> conjuncts;
    FlattenConjuncts(stmt.where, &conjuncts);
    std::vector<bool> used(conjuncts.size(), false);
    IOLAP_RETURN_IF_ERROR(BuildFrom(&sub, stmt.from, conjuncts, &used));
    Scope sub_scope{&sub, &outer};

    // Partition the remaining conjuncts into local filters and correlation
    // equalities (inner column = outer expression).
    std::vector<ExprPtr> local_filters;
    std::vector<ExprPtr> outer_keys;
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      if (used[c]) continue;
      const AstExprPtr& conj = conjuncts[c];
      bool correlated = false;
      if (conj->kind == AstExpr::Kind::kBinary && conj->name == "=") {
        for (int side = 0; side < 2 && !correlated; ++side) {
          const AstExprPtr& inner_ast = conj->args[side];
          const AstExprPtr& outer_ast = conj->args[1 - side];
          if (inner_ast->kind != AstExpr::Kind::kColumn) continue;
          auto inner_col =
              ResolveColumn(sub, inner_ast->qualifier, inner_ast->name);
          if (!inner_col.ok()) continue;
          // The other side must NOT resolve locally but must resolve in
          // the outer scope.
          bool other_local = false;
          if (outer_ast->kind == AstExpr::Kind::kColumn) {
            other_local = ResolveColumn(sub, outer_ast->qualifier,
                                        outer_ast->name)
                              .ok();
          }
          if (other_local) continue;
          BindOptions outer_options;
          auto outer_bound = BindExpr(outer_ast, outer, outer_options);
          if (!outer_bound.ok()) continue;
          // Decorrelate: group the subquery by the inner column; the outer
          // expression becomes the lookup key (§Q17 shape).
          sub.group_by.push_back(ColumnExpr(sub, *inner_col));
          sub.group_by_names.push_back(
              sub.spj_schema.column(*inner_col).name);
          outer_keys.push_back(std::move(*outer_bound));
          correlated = true;
        }
      }
      if (correlated) continue;
      BindOptions local_options;
      IOLAP_ASSIGN_OR_RETURN(ExprPtr bound,
                             BindExpr(conj, sub_scope, local_options));
      local_filters.push_back(std::move(bound));
    }
    sub.filter = Conjunction(std::move(local_filters));

    // Register the block (group-by already set) before binding the item so
    // lookups can read its key arity; nested subqueries inside the item
    // then take later block ids. blocks_ is a deque, so the pointer taken
    // for the argument scope stays valid.
    const int sub_id = sub.id;
    blocks_.push_back(std::move(sub));
    Scope arg_scope{&blocks_[sub_id], &outer};

    // Bind the single item: an expression over aggregate calls, rewritten
    // into lookups keyed by the correlation columns. Aggregate specs are
    // collected locally and installed afterwards.
    std::vector<AggSpec> aggs;
    std::map<std::string, int> agg_index;
    BindOptions item_options;
    item_options.allow_aggregates = true;
    item_options.agg_sink = &aggs;
    item_options.agg_index = &agg_index;
    item_options.agg_scope = &arg_scope;
    item_options.lookup_block = sub_id;
    item_options.lookup_keys = &outer_keys;

    IOLAP_ASSIGN_OR_RETURN(
        ExprPtr item, BindExpr(stmt.items[0].expr, outer, item_options));
    if (aggs.empty()) {
      return Status::BindError(
          "scalar subqueries must compute at least one aggregate");
    }
    blocks_[sub_id].aggs = std::move(aggs);
    FinalizeAggregateSchema(&blocks_[sub_id]);
    return item;
  }

  // --------------------------------------------------- IN subquery

  // Binds `lhs IN (SELECT k FROM ... [GROUP BY k] [HAVING p])` against the
  // consumer block: joins the raw grouped block on k and returns the bound
  // HAVING predicate (or null) to fold into the consumer's filter.
  Result<ExprPtr> BindInSubquery(const AstExprPtr& in_ast, Block* consumer) {
    const SelectStmt& stmt = *in_ast->subquery;
    if (stmt.items.size() != 1 ||
        stmt.items[0].expr->kind != AstExpr::Kind::kColumn) {
      return Status::BindError(
          "IN subqueries must select a single bare column");
    }
    if (!stmt.order_by.empty() || stmt.limit >= 0) {
      return Status::BindError(
          "ORDER BY / LIMIT are only supported at the top level");
    }
    // Resolve the consumer-side key column first.
    const AstExprPtr& lhs = in_ast->args[0];
    if (lhs->kind != AstExpr::Kind::kColumn) {
      return Status::BindError("IN requires a bare column on the left");
    }
    auto lhs_col = ResolveColumn(*consumer, lhs->qualifier, lhs->name);
    if (!lhs_col.ok()) return lhs_col.status();

    Block sub;
    sub.id = static_cast<int>(blocks_.size());
    sub.debug_name = "in_subquery#" + std::to_string(sub.id);
    std::vector<AstExprPtr> conjuncts;
    FlattenConjuncts(stmt.where, &conjuncts);
    std::vector<bool> used(conjuncts.size(), false);
    IOLAP_RETURN_IF_ERROR(BuildFrom(&sub, stmt.from, conjuncts, &used));
    Scope sub_scope{&sub, nullptr};

    std::vector<ExprPtr> local_filters;
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      if (used[c]) continue;
      BindOptions options;
      IOLAP_ASSIGN_OR_RETURN(ExprPtr bound,
                             BindExpr(conjuncts[c], sub_scope, options));
      local_filters.push_back(std::move(bound));
    }
    sub.filter = Conjunction(std::move(local_filters));

    // Group by the selected key column (explicit GROUP BY, if present,
    // must name the same column).
    const AstExpr& key_ast = *stmt.items[0].expr;
    auto key_col = ResolveColumn(sub, key_ast.qualifier, key_ast.name);
    if (!key_col.ok()) return key_col.status();
    if (stmt.group_by.size() > 1 ||
        (stmt.group_by.size() == 1 &&
         stmt.group_by[0]->ToString() != key_ast.ToString())) {
      return Status::BindError(
          "IN subqueries must group by the selected column");
    }
    sub.group_by.push_back(ColumnExpr(sub, *key_col));
    sub.group_by_names.push_back(sub.spj_schema.column(*key_col).name);

    // Collect the HAVING aggregates into the subquery block. The block is
    // registered first (blocks_ is a deque: stable pointers) so nested
    // subqueries inside HAVING take later ids.
    const int sub_id = sub.id;
    blocks_.push_back(std::move(sub));
    std::map<std::string, int> agg_index;
    ExprPtr bound_having;
    if (stmt.having != nullptr) {
      // First pass: collect aggregate specs (bound in the sub scope);
      // subqueries are skipped here and bound in the consumer pass.
      Scope sub_scope2{&blocks_[sub_id], nullptr};
      std::vector<AggSpec> aggs;
      BindOptions collect;
      collect.allow_aggregates = true;
      collect.skip_subqueries = true;
      collect.agg_sink = &aggs;
      collect.agg_index = &agg_index;
      collect.agg_scope = &sub_scope2;
      IOLAP_ASSIGN_OR_RETURN(ExprPtr ignored,
                             BindExpr(stmt.having, sub_scope2, collect));
      (void)ignored;
      blocks_[sub_id].aggs = std::move(aggs);
    }
    FinalizeAggregateSchema(&blocks_[sub_id]);

    // Join the consumer with the grouped block on the key.
    AddBlockInput(consumer, sub_id, {*lhs_col}, {0});

    // Second pass: rebind HAVING over the consumer's (extended) schema,
    // mapping aggregate calls / the key column to the joined-in columns.
    if (stmt.having != nullptr) {
      const size_t offset =
          consumer->spj_schema.num_columns() -
          blocks_[sub_id].output_schema.num_columns();
      std::map<std::string, int> precomputed;
      precomputed[key_ast.ToString()] = static_cast<int>(offset);
      for (const auto& [rendered, spec] : agg_index) {
        precomputed[rendered] = static_cast<int>(offset + 1 + spec);
      }
      Scope consumer_scope{consumer, nullptr};
      BindOptions rebind;
      rebind.allow_aggregates = true;  // they resolve via `precomputed`
      rebind.precomputed = &precomputed;
      // Aggregates not in `precomputed` would accumulate; forbid by
      // pointing the sink at nothing — all must have been collected.
      std::vector<AggSpec> overflow;
      std::map<std::string, int> overflow_index = agg_index;
      rebind.agg_sink = &overflow;
      rebind.agg_index = &overflow_index;
      rebind.agg_scope = &consumer_scope;
      IOLAP_ASSIGN_OR_RETURN(bound_having,
                             BindExpr(stmt.having, consumer_scope, rebind));
      if (!overflow.empty()) {
        return Status::BindError(
            "aggregates in IN ... HAVING must also appear in the collected "
            "set; this is a binder invariant violation");
      }
    }
    return bound_having;  // may be null
  }

  // ------------------------------------------------------- SELECT

  void FinalizeAggregateSchema(Block* block) {
    Schema out;
    for (size_t i = 0; i < block->group_by.size(); ++i) {
      out.AddColumn(Column(block->group_by_names[i],
                           block->group_by[i]->output_type()));
    }
    for (const AggSpec& agg : block->aggs) {
      out.AddColumn(
          Column(agg.output_name, agg.fn->ResultType(agg.arg->output_type())));
    }
    block->output_schema = std::move(out);
  }

  static bool ContainsAggregate(const AstExprPtr& ast,
                                const Impl& binder) {
    if (ast == nullptr) return false;
    if (ast->kind == AstExpr::Kind::kCall &&
        binder.IsAggregateName(ast->name)) {
      return true;
    }
    for (const AstExprPtr& arg : ast->args) {
      if (ContainsAggregate(arg, binder)) return true;
    }
    // Subqueries compute their own aggregates; they do not make the outer
    // expression aggregated.
    return false;
  }

  Status BindSelect(const SelectStmt& stmt, const Scope* outer) {
    // The block's id is assigned when it is finally pushed: subqueries
    // bound along the way register their own (earlier) blocks.
    Block main;
    main.debug_name = "main";

    std::vector<AstExprPtr> conjuncts;
    FlattenConjuncts(stmt.where, &conjuncts);
    std::vector<bool> used(conjuncts.size(), false);
    IOLAP_RETURN_IF_ERROR(BuildFrom(&main, stmt.from, conjuncts, &used));

    // The block must be registered before subquery conjuncts are bound,
    // because subqueries create blocks that precede the main block in
    // topological order... but AggLookup validation requires referenced
    // blocks to come *before* the referencing one, so the main block is
    // appended last. Work on a local Block and bind subqueries first.
    Scope scope{&main, outer};

    // IN conjuncts mutate the block's inputs; bind them first.
    std::vector<ExprPtr> filters;
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      if (used[c]) continue;
      if (conjuncts[c]->kind == AstExpr::Kind::kIn) {
        used[c] = true;
        IOLAP_ASSIGN_OR_RETURN(ExprPtr having,
                               BindInSubquery(conjuncts[c], &main));
        if (having != nullptr) filters.push_back(std::move(having));
      }
    }
    // Remaining conjuncts (may contain scalar subqueries).
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      if (used[c]) continue;
      BindOptions options;
      IOLAP_ASSIGN_OR_RETURN(ExprPtr bound,
                             BindExpr(conjuncts[c], scope, options));
      filters.push_back(std::move(bound));
    }
    main.filter = Conjunction(std::move(filters));

    // Grouping & aggregates.
    const bool has_any_aggregate = [&] {
      if (!stmt.group_by.empty() || stmt.having != nullptr) return true;
      for (const AstSelectItem& item : stmt.items) {
        if (ContainsAggregate(item.expr, *this)) return true;
      }
      return false;
    }();

    if (!has_any_aggregate) {
      // Pure SPJ select.
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        BindOptions options;
        IOLAP_ASSIGN_OR_RETURN(ExprPtr bound,
                               BindExpr(stmt.items[i].expr, scope, options));
        main.projection_names.push_back(stmt.items[i].alias.empty()
                                            ? stmt.items[i].expr->ToString()
                                            : stmt.items[i].alias);
        main.projections.push_back(std::move(bound));
      }
      Schema out;
      for (size_t i = 0; i < main.projections.size(); ++i) {
        out.AddColumn(Column(main.projection_names[i],
                             main.projections[i]->output_type()));
      }
      main.output_schema = std::move(out);
      PushBlock(std::move(main));
      return Status::OK();
    }

    // Bind group-by keys.
    std::map<std::string, int> group_index;  // AST string -> key position
    for (size_t g = 0; g < stmt.group_by.size(); ++g) {
      BindOptions options;
      IOLAP_ASSIGN_OR_RETURN(ExprPtr key,
                             BindExpr(stmt.group_by[g], scope, options));
      group_index[stmt.group_by[g]->ToString()] = static_cast<int>(g);
      main.group_by_names.push_back(stmt.group_by[g]->ToString());
      main.group_by.push_back(std::move(key));
    }

    // Collect aggregate specs from items and having. Subqueries are left
    // to the rebind pass (they are not needed to enumerate aggregates).
    std::map<std::string, int> agg_index;
    {
      BindOptions collect;
      collect.allow_aggregates = true;
      collect.skip_subqueries = true;
      collect.agg_sink = &main.aggs;
      collect.agg_index = &agg_index;
      collect.agg_scope = &scope;
      for (const AstSelectItem& item : stmt.items) {
        IOLAP_ASSIGN_OR_RETURN(ExprPtr ignored,
                               BindExpr(item.expr, scope, collect));
        (void)ignored;
      }
      if (stmt.having != nullptr) {
        IOLAP_ASSIGN_OR_RETURN(ExprPtr ignored,
                               BindExpr(stmt.having, scope, collect));
        (void)ignored;
      }
    }
    if (main.aggs.empty()) {
      return Status::BindError(
          "GROUP BY/HAVING queries must compute at least one aggregate");
    }

    // Single block when items are exactly [keys..., bare agg calls...] in
    // canonical order and there is no HAVING.
    const bool canonical = [&] {
      if (stmt.having != nullptr) return false;
      if (stmt.items.size() != stmt.group_by.size() + main.aggs.size()) {
        return false;
      }
      for (size_t i = 0; i < stmt.group_by.size(); ++i) {
        if (stmt.items[i].expr->ToString() != stmt.group_by[i]->ToString()) {
          return false;
        }
      }
      for (size_t a = 0; a < main.aggs.size(); ++a) {
        const auto it =
            agg_index.find(stmt.items[stmt.group_by.size() + a].expr->ToString());
        if (it == agg_index.end() || it->second != static_cast<int>(a)) {
          return false;
        }
      }
      return true;
    }();

    if (canonical) {
      // Apply the user's aliases to the output columns.
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        if (stmt.items[i].alias.empty()) continue;
        if (i < main.group_by.size()) {
          main.group_by_names[i] = stmt.items[i].alias;
        } else {
          main.aggs[i - main.group_by.size()].output_name =
              stmt.items[i].alias;
        }
      }
      FinalizeAggregateSchema(&main);
      PushBlock(std::move(main));
      return Status::OK();
    }

    // Two-layer form: aggregate block + post block (projections / HAVING).
    FinalizeAggregateSchema(&main);
    main.debug_name += "_agg";
    const int agg_block_id = PushBlock(std::move(main));

    Block post;
    post.debug_name = "post";
    AddBlockInput(&post, agg_block_id, {}, {});
    Scope post_scope{&post, outer};

    std::map<std::string, int> precomputed;
    {
      const Block& agg_block = blocks_[agg_block_id];
      for (const auto& [rendered, key_pos] : group_index) {
        precomputed[rendered] = key_pos;
      }
      for (const auto& [rendered, spec] : agg_index) {
        precomputed[rendered] =
            static_cast<int>(agg_block.group_by.size()) + spec;
      }
    }
    BindOptions rebind;
    rebind.allow_aggregates = true;  // resolve via `precomputed`
    rebind.precomputed = &precomputed;
    std::vector<AggSpec> overflow;
    std::map<std::string, int> overflow_index = agg_index;
    rebind.agg_sink = &overflow;
    rebind.agg_index = &overflow_index;
    rebind.agg_scope = &post_scope;

    if (stmt.having != nullptr) {
      IOLAP_ASSIGN_OR_RETURN(post.filter,
                             BindExpr(stmt.having, post_scope, rebind));
    }
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      IOLAP_ASSIGN_OR_RETURN(ExprPtr bound,
                             BindExpr(stmt.items[i].expr, post_scope, rebind));
      post.projection_names.push_back(stmt.items[i].alias.empty()
                                          ? stmt.items[i].expr->ToString()
                                          : stmt.items[i].alias);
      post.projections.push_back(std::move(bound));
    }
    if (!overflow.empty()) {
      return Status::BindError("inconsistent aggregate usage between the "
                               "collect and rebind passes");
    }
    Schema out;
    for (size_t i = 0; i < post.projections.size(); ++i) {
      out.AddColumn(
          Column(post.projection_names[i], post.projections[i]->output_type()));
    }
    post.output_schema = std::move(out);
    PushBlock(std::move(post));
    return Status::OK();
  }

  /// Resolves top-level ORDER BY / LIMIT against the top block's output
  /// schema (bare column names / aliases or 1-based ordinals).
  Status BindPresentation(const SelectStmt& stmt) {
    plan_.presentation.limit = stmt.limit;
    const Schema& out = plan_.blocks.back().output_schema;
    for (const AstOrderItem& item : stmt.order_by) {
      Presentation::Key key;
      key.descending = item.descending;
      if (item.expr->kind == AstExpr::Kind::kLiteral &&
          item.expr->literal.type() == ValueType::kInt64) {
        const int64_t ordinal = item.expr->literal.int64();
        if (ordinal < 1 ||
            ordinal > static_cast<int64_t>(out.num_columns())) {
          return Status::BindError("ORDER BY ordinal out of range");
        }
        key.column = static_cast<int>(ordinal - 1);
      } else if (item.expr->kind == AstExpr::Kind::kColumn) {
        const std::string wanted =
            item.expr->qualifier.empty()
                ? item.expr->name
                : item.expr->qualifier + "." + item.expr->name;
        auto col = out.FindColumn(wanted);
        if (!col.ok()) {
          return Status::BindError(
              "ORDER BY must name an output column or ordinal: " +
              item.expr->ToString());
        }
        key.column = *col;
      } else {
        return Status::BindError(
            "ORDER BY supports output columns and ordinals only");
      }
      plan_.presentation.order_by.push_back(key);
    }
    return Status::OK();
  }

  /// Assigns the next block id and registers the block.
  int PushBlock(Block block) {
    block.id = static_cast<int>(blocks_.size());
    blocks_.push_back(std::move(block));
    return blocks_.back().id;
  }

  const Catalog* catalog_;
  std::shared_ptr<const FunctionRegistry> functions_;
  QueryPlan plan_;
  /// Blocks under construction. A deque keeps Block* stable across
  /// push_back, which nested-subquery binding relies on.
  std::deque<Block> blocks_;
};

// ---------------------------------------------------------------- facade

Binder::Binder(const Catalog* catalog,
               std::shared_ptr<const FunctionRegistry> functions)
    : catalog_(catalog), functions_(std::move(functions)) {}

Result<QueryPlan> Binder::Bind(const SelectStmt& stmt) {
  Impl impl(catalog_, functions_);
  return impl.Bind(stmt);
}

Result<QueryPlan> BindSql(const std::string& sql, const Catalog& catalog,
                          std::shared_ptr<const FunctionRegistry> functions) {
  IOLAP_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelect(sql));
  Binder binder(&catalog, std::move(functions));
  return binder.Bind(*stmt);
}

}  // namespace iolap
