#include "core/aggregate.h"

#include <cassert>
#include <cmath>

namespace iolap {

namespace {

// ------------------------------------------------- COUNT / SUM / AVG

// One (sum, count) pair serves all three linear aggregates.
class SumCountAccumulator final : public AggAccumulator {
 public:
  explicit SumCountAccumulator(AggKind kind) : kind_(kind) {}

  void Add(const Value& v, double weight) override {
    if (v.is_null()) return;
    count_ += weight;
    sum_ += weight * v.AsDouble();
  }

  void Merge(const AggAccumulator& other) override {
    const auto& o = static_cast<const SumCountAccumulator&>(other);
    count_ += o.count_;
    sum_ += o.sum_;
  }

  Value Result(double scale) const override {
    switch (kind_) {
      case AggKind::kCount:
        return Value::Double(scale * count_);
      case AggKind::kSum:
        return count_ == 0.0 ? Value::Null() : Value::Double(scale * sum_);
      default:  // kAvg
        return count_ == 0.0 ? Value::Null() : Value::Double(sum_ / count_);
    }
  }

  std::unique_ptr<AggAccumulator> Clone() const override {
    return std::make_unique<SumCountAccumulator>(*this);
  }

  size_t ByteSize() const override { return 2 * sizeof(double); }

 private:
  AggKind kind_;
  double sum_ = 0.0;
  double count_ = 0.0;
};

// ----------------------------------------------------------- MIN / MAX

class MinMaxAccumulator final : public AggAccumulator {
 public:
  explicit MinMaxAccumulator(bool is_min) : is_min_(is_min) {}

  void Add(const Value& v, double weight) override {
    if (v.is_null() || weight <= 0.0) return;
    if (best_.is_null()) {
      best_ = v;
      return;
    }
    const int cmp = v.Compare(best_);
    if ((is_min_ && cmp < 0) || (!is_min_ && cmp > 0)) best_ = v;
  }

  void Merge(const AggAccumulator& other) override {
    const auto& o = static_cast<const MinMaxAccumulator&>(other);
    Add(o.best_, 1.0);
  }

  Value Result(double) const override { return best_; }

  std::unique_ptr<AggAccumulator> Clone() const override {
    return std::make_unique<MinMaxAccumulator>(*this);
  }

  size_t ByteSize() const override { return sizeof(Value) + best_.ByteSize(); }

 private:
  bool is_min_;
  Value best_;
};

// ------------------------------------------------------ VAR / STDDEV

class MomentsAccumulator final : public AggAccumulator {
 public:
  explicit MomentsAccumulator(bool stddev) : stddev_(stddev) {}

  void Add(const Value& v, double weight) override {
    if (v.is_null()) return;
    const double x = v.AsDouble();
    w_ += weight;
    wx_ += weight * x;
    wxx_ += weight * x * x;
  }

  void Merge(const AggAccumulator& other) override {
    const auto& o = static_cast<const MomentsAccumulator&>(other);
    w_ += o.w_;
    wx_ += o.wx_;
    wxx_ += o.wxx_;
  }

  Value Result(double) const override {
    if (w_ <= 0.0) return Value::Null();
    const double mean = wx_ / w_;
    double var = wxx_ / w_ - mean * mean;
    if (var < 0.0) var = 0.0;  // numerical noise
    return Value::Double(stddev_ ? std::sqrt(var) : var);
  }

  std::unique_ptr<AggAccumulator> Clone() const override {
    return std::make_unique<MomentsAccumulator>(*this);
  }

  size_t ByteSize() const override { return 3 * sizeof(double); }

 private:
  bool stddev_;
  double w_ = 0.0;
  double wx_ = 0.0;
  double wxx_ = 0.0;
};

// --------------------------------------------------- built-in factory

class BuiltinAggFunction final : public AggFunction {
 public:
  explicit BuiltinAggFunction(AggKind kind) : kind_(kind) {}

  std::string name() const override {
    switch (kind_) {
      case AggKind::kCount:
        return "count";
      case AggKind::kSum:
        return "sum";
      case AggKind::kAvg:
        return "avg";
      case AggKind::kMin:
        return "min";
      case AggKind::kMax:
        return "max";
      case AggKind::kVar:
        return "var";
      case AggKind::kStddev:
        return "stddev";
      default:
        return "?";
    }
  }

  ValueType ResultType(ValueType input) const override {
    if (kind_ == AggKind::kMin || kind_ == AggKind::kMax) return input;
    return ValueType::kDouble;
  }

  bool ScalesLinearly() const override {
    return kind_ == AggKind::kCount || kind_ == AggKind::kSum;
  }

  bool SupportsSampling() const override {
    // MIN/MAX are not Hadamard differentiable (§3.3).
    return kind_ != AggKind::kMin && kind_ != AggKind::kMax;
  }

  std::unique_ptr<AggAccumulator> NewAccumulator() const override {
    switch (kind_) {
      case AggKind::kCount:
      case AggKind::kSum:
      case AggKind::kAvg:
        return std::make_unique<SumCountAccumulator>(kind_);
      case AggKind::kMin:
        return std::make_unique<MinMaxAccumulator>(/*is_min=*/true);
      case AggKind::kMax:
        return std::make_unique<MinMaxAccumulator>(/*is_min=*/false);
      case AggKind::kVar:
        return std::make_unique<MomentsAccumulator>(/*stddev=*/false);
      case AggKind::kStddev:
        return std::make_unique<MomentsAccumulator>(/*stddev=*/true);
      default:
        assert(false && "kUdaf has no built-in accumulator");
        return nullptr;
    }
  }

 private:
  AggKind kind_;
};

}  // namespace

std::shared_ptr<const AggFunction> MakeBuiltinAggFunction(AggKind kind) {
  assert(kind != AggKind::kUdaf);
  return std::make_shared<BuiltinAggFunction>(kind);
}

AggKind AggKindFromName(const std::string& name) {
  if (name == "count") return AggKind::kCount;
  if (name == "sum") return AggKind::kSum;
  if (name == "avg") return AggKind::kAvg;
  if (name == "min") return AggKind::kMin;
  if (name == "max") return AggKind::kMax;
  if (name == "var" || name == "variance") return AggKind::kVar;
  if (name == "stddev" || name == "std") return AggKind::kStddev;
  return AggKind::kUdaf;
}

}  // namespace iolap
