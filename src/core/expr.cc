#include "core/expr.h"

#include <cassert>
#include <cmath>

#include "core/function_registry.h"

namespace iolap {

void AggLookupResolver::LookupTrials(int block_id, int col, const Row& key,
                                     int num_trials, Value* out) const {
  for (int t = 0; t < num_trials; ++t) {
    out[t] = LookupTrial(block_id, col, key, t);
  }
}

namespace {

// Numeric result type with SQL-ish promotion.
ValueType PromoteNumeric(ValueType a, ValueType b) {
  if (a == ValueType::kDouble || b == ValueType::kDouble) {
    return ValueType::kDouble;
  }
  return ValueType::kInt64;
}

bool IsComparison(Expr::BinaryOp op) {
  switch (op) {
    case Expr::BinaryOp::kEq:
    case Expr::BinaryOp::kNe:
    case Expr::BinaryOp::kLt:
    case Expr::BinaryOp::kLe:
    case Expr::BinaryOp::kGt:
    case Expr::BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsLogical(Expr::BinaryOp op) {
  return op == Expr::BinaryOp::kAnd || op == Expr::BinaryOp::kOr;
}

Value EvalArith(Expr::BinaryOp op, const Value& l, const Value& r,
                ValueType out_type) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (op == Expr::BinaryOp::kMod) {
    const int64_t denom = static_cast<int64_t>(r.AsDouble());
    if (denom == 0) return Value::Null();
    return Value::Int64(static_cast<int64_t>(l.AsDouble()) % denom);
  }
  const double a = l.AsDouble();
  const double b = r.AsDouble();
  double result = 0.0;
  switch (op) {
    case Expr::BinaryOp::kAdd:
      result = a + b;
      break;
    case Expr::BinaryOp::kSub:
      result = a - b;
      break;
    case Expr::BinaryOp::kMul:
      result = a * b;
      break;
    case Expr::BinaryOp::kDiv:
      if (b == 0.0) return Value::Null();
      result = a / b;
      break;
    default:
      return Value::Null();
  }
  if (out_type == ValueType::kInt64) {
    return Value::Int64(static_cast<int64_t>(result));
  }
  return Value::Double(result);
}

Value EvalComparison(Expr::BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  const int cmp = l.Compare(r);
  bool result = false;
  switch (op) {
    case Expr::BinaryOp::kEq:
      result = cmp == 0;
      break;
    case Expr::BinaryOp::kNe:
      result = cmp != 0;
      break;
    case Expr::BinaryOp::kLt:
      result = cmp < 0;
      break;
    case Expr::BinaryOp::kLe:
      result = cmp <= 0;
      break;
    case Expr::BinaryOp::kGt:
      result = cmp > 0;
      break;
    case Expr::BinaryOp::kGe:
      result = cmp >= 0;
      break;
    default:
      break;
  }
  return Value::Bool(result);
}

// Three-valued SQL logic over {false(0), true(1), null(unknown)}.
Value EvalLogical(Expr::BinaryOp op, const Value& l, const Value& r) {
  const bool lt = l.IsTruthy();
  const bool rt = r.IsTruthy();
  if (op == Expr::BinaryOp::kAnd) {
    if (!l.is_null() && !lt) return Value::Bool(false);
    if (!r.is_null() && !rt) return Value::Bool(false);
    if (l.is_null() || r.is_null()) return Value::Null();
    return Value::Bool(true);
  }
  // OR
  if (!l.is_null() && lt) return Value::Bool(true);
  if (!r.is_null() && rt) return Value::Bool(true);
  if (l.is_null() || r.is_null()) return Value::Null();
  return Value::Bool(false);
}

// Interval of a truth value from a tri-state outcome.
Interval TruthInterval(IntervalTruth t) {
  switch (t) {
    case IntervalTruth::kAlwaysTrue:
      return Interval::Point(1.0);
    case IntervalTruth::kAlwaysFalse:
      return Interval::Point(0.0);
    default:
      return Interval(0.0, 1.0);
  }
}

}  // namespace

// ---------------------------------------------------------------- Literal

Value LiteralExpr::Eval(const Row&, const EvalContext&) const { return value_; }

Interval LiteralExpr::EvalInterval(const Row&, const EvalContext&) const {
  if (value_.is_numeric()) return Interval::Point(value_.AsDouble());
  return Interval::Unbounded();
}

// -------------------------------------------------------------- ColumnRef

Value ColumnRefExpr::Eval(const Row& row, const EvalContext& ctx) const {
  // In trial mode an uncertain column must be re-derived through its
  // lineage: the stored value is the main estimate, not the trial replica.
  if (ctx.trial >= 0 && ctx.column_lineage != nullptr &&
      static_cast<size_t>(index_) < ctx.column_lineage->size()) {
    const ExprPtr& lineage = (*ctx.column_lineage)[index_];
    if (lineage != nullptr) return lineage->Eval(row, ctx);
  }
  assert(static_cast<size_t>(index_) < row.size());
  return row[index_];
}

Interval ColumnRefExpr::EvalInterval(const Row& row,
                                     const EvalContext& ctx) const {
  if (ctx.column_lineage != nullptr &&
      static_cast<size_t>(index_) < ctx.column_lineage->size()) {
    const ExprPtr& lineage = (*ctx.column_lineage)[index_];
    if (lineage != nullptr) return lineage->EvalInterval(row, ctx);
  }
  const Value& v = row[index_];
  if (v.is_numeric()) return Interval::Point(v.AsDouble());
  return Interval::Unbounded();
}

bool ColumnRefExpr::DependsOnUncertain(
    const std::vector<ExprPtr>* column_lineage) const {
  if (column_lineage == nullptr) return false;
  if (static_cast<size_t>(index_) >= column_lineage->size()) return false;
  return (*column_lineage)[index_] != nullptr;
}

// ------------------------------------------------------------------ Unary

Value UnaryExpr::Eval(const Row& row, const EvalContext& ctx) const {
  const Value v = operand_->Eval(row, ctx);
  if (v.is_null()) return Value::Null();
  if (op_ == UnaryOp::kNot) return Value::Bool(!v.IsTruthy());
  // kNeg
  if (v.type() == ValueType::kInt64) return Value::Int64(-v.int64());
  return Value::Double(-v.AsDouble());
}

Interval UnaryExpr::EvalInterval(const Row& row, const EvalContext& ctx) const {
  const Interval v = operand_->EvalInterval(row, ctx);
  if (op_ == UnaryOp::kNeg) return IntervalNeg(v);
  // NOT of a truth interval.
  if (v.IsPoint()) return Interval::Point(v.lo != 0.0 ? 0.0 : 1.0);
  return Interval(0.0, 1.0);
}

std::string UnaryExpr::ToString() const {
  return std::string(op_ == UnaryOp::kNeg ? "-" : "NOT ") + "(" +
         operand_->ToString() + ")";
}

// ----------------------------------------------------------------- Binary

Value BinaryExpr::Eval(const Row& row, const EvalContext& ctx) const {
  const Value l = left_->Eval(row, ctx);
  const Value r = right_->Eval(row, ctx);
  if (IsComparison(op_)) return EvalComparison(op_, l, r);
  if (IsLogical(op_)) return EvalLogical(op_, l, r);
  return EvalArith(op_, l, r, output_type());
}

Interval BinaryExpr::EvalInterval(const Row& row, const EvalContext& ctx) const {
  if (IsComparison(op_) || IsLogical(op_)) {
    return TruthInterval(ClassifyPredicate(*this, row, ctx));
  }
  const Interval l = left_->EvalInterval(row, ctx);
  const Interval r = right_->EvalInterval(row, ctx);
  switch (op_) {
    case BinaryOp::kAdd:
      return IntervalAdd(l, r);
    case BinaryOp::kSub:
      return IntervalSub(l, r);
    case BinaryOp::kMul:
      return IntervalMul(l, r);
    case BinaryOp::kDiv:
      return IntervalDiv(l, r);
    case BinaryOp::kMod:
      // Bounded by the divisor when deterministic, otherwise unknown.
      if (r.IsPoint() && r.lo != 0.0) {
        const double m = std::fabs(r.lo);
        return Interval(-m, m);
      }
      return Interval::Unbounded();
    default:
      return Interval::Unbounded();
  }
}

std::string BinaryExpr::ToString() const {
  const char* op = "?";
  switch (op_) {
    case BinaryOp::kAdd:
      op = "+";
      break;
    case BinaryOp::kSub:
      op = "-";
      break;
    case BinaryOp::kMul:
      op = "*";
      break;
    case BinaryOp::kDiv:
      op = "/";
      break;
    case BinaryOp::kMod:
      op = "%";
      break;
    case BinaryOp::kEq:
      op = "=";
      break;
    case BinaryOp::kNe:
      op = "<>";
      break;
    case BinaryOp::kLt:
      op = "<";
      break;
    case BinaryOp::kLe:
      op = "<=";
      break;
    case BinaryOp::kGt:
      op = ">";
      break;
    case BinaryOp::kGe:
      op = ">=";
      break;
    case BinaryOp::kAnd:
      op = "AND";
      break;
    case BinaryOp::kOr:
      op = "OR";
      break;
  }
  return "(" + left_->ToString() + " " + op + " " + right_->ToString() + ")";
}

// ------------------------------------------------------------------- Call

Value CallExpr::Eval(const Row& row, const EvalContext& ctx) const {
  assert(ctx.functions != nullptr);
  auto fn = ctx.functions->FindScalar(name_);
  assert(fn.ok());
  std::vector<Value> args;
  args.reserve(args_.size());
  for (const auto& arg : args_) args.push_back(arg->Eval(row, ctx));
  return (*fn)->eval(args);
}

Interval CallExpr::EvalInterval(const Row& row, const EvalContext& ctx) const {
  // If no argument is uncertain, the call collapses to a point.
  if (!DependsOnUncertain(ctx.column_lineage)) {
    const Value v = Eval(row, ctx);
    if (v.is_numeric()) return Interval::Point(v.AsDouble());
    return Interval::Unbounded();
  }
  // Monotone functions map interval endpoints through the function.
  auto fn = ctx.functions != nullptr ? ctx.functions->FindScalar(name_)
                                     : Result<const ScalarFunction*>(
                                           Status::NotFound(name_));
  if (fn.ok() && (*fn)->monotone && args_.size() == 1) {
    const Interval in = args_[0]->EvalInterval(row, ctx);
    if (!in.IsUnbounded()) {
      const Value lo = (*fn)->eval({Value::Double(in.lo)});
      const Value hi = (*fn)->eval({Value::Double(in.hi)});
      if (lo.is_numeric() && hi.is_numeric()) {
        return Interval(lo.AsDouble(), hi.AsDouble());
      }
    }
  }
  // Black-box UDF over uncertain input: conservative.
  return Interval::Unbounded();
}

bool CallExpr::DependsOnUncertain(const std::vector<ExprPtr>* cl) const {
  for (const auto& arg : args_) {
    if (arg->DependsOnUncertain(cl)) return true;
  }
  return false;
}

void CallExpr::CollectAggLookups(std::vector<const AggLookupExpr*>* out) const {
  for (const auto& arg : args_) arg->CollectAggLookups(out);
}

std::string CallExpr::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  return out + ")";
}

// -------------------------------------------------------------- AggLookup

Row AggLookupExpr::EvalKey(const Row& row, const EvalContext& ctx) const {
  Row key;
  key.reserve(key_exprs_.size());
  for (const auto& expr : key_exprs_) key.push_back(expr->Eval(row, ctx));
  return key;
}

Value AggLookupExpr::Eval(const Row& row, const EvalContext& ctx) const {
  assert(ctx.resolver != nullptr);
  const Row key = EvalKey(row, ctx);
  if (ctx.trial >= 0) {
    return ctx.resolver->LookupTrial(block_id_, agg_col_, key, ctx.trial);
  }
  return ctx.resolver->Lookup(block_id_, agg_col_, key);
}

Interval AggLookupExpr::EvalInterval(const Row& row,
                                     const EvalContext& ctx) const {
  assert(ctx.resolver != nullptr);
  return ctx.resolver->LookupRange(block_id_, agg_col_, EvalKey(row, ctx));
}

std::string AggLookupExpr::ToString() const {
  std::string out = "agg[" + std::to_string(block_id_) + "." + debug_name_;
  if (!key_exprs_.empty()) {
    out += " key=(";
    for (size_t i = 0; i < key_exprs_.size(); ++i) {
      if (i > 0) out += ", ";
      out += key_exprs_[i]->ToString();
    }
    out += ")";
  }
  return out + "]";
}

// ----------------------------------------------------------- constructors

ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr Lit(int64_t v) { return Lit(Value::Int64(v)); }
ExprPtr Lit(double v) { return Lit(Value::Double(v)); }
ExprPtr Lit(const char* v) { return Lit(Value::String(v)); }

ExprPtr Col(int index, std::string name, ValueType type) {
  return std::make_shared<ColumnRefExpr>(index, std::move(name), type);
}

ExprPtr Neg(ExprPtr e) {
  const ValueType t = e->output_type();
  return std::make_shared<UnaryExpr>(Expr::UnaryOp::kNeg, std::move(e), t);
}

ExprPtr Not(ExprPtr e) {
  return std::make_shared<UnaryExpr>(Expr::UnaryOp::kNot, std::move(e),
                                     ValueType::kInt64);
}

ExprPtr MakeBinary(Expr::BinaryOp op, ExprPtr l, ExprPtr r) {
  ValueType type = ValueType::kInt64;
  switch (op) {
    case Expr::BinaryOp::kAdd:
    case Expr::BinaryOp::kSub:
    case Expr::BinaryOp::kMul:
      type = PromoteNumeric(l->output_type(), r->output_type());
      break;
    case Expr::BinaryOp::kDiv:
      type = ValueType::kDouble;
      break;
    default:
      type = ValueType::kInt64;  // mod, comparisons, logic
      break;
  }
  return std::make_shared<BinaryExpr>(op, std::move(l), std::move(r), type);
}

ExprPtr Add(ExprPtr l, ExprPtr r) {
  return MakeBinary(Expr::BinaryOp::kAdd, std::move(l), std::move(r));
}
ExprPtr Sub(ExprPtr l, ExprPtr r) {
  return MakeBinary(Expr::BinaryOp::kSub, std::move(l), std::move(r));
}
ExprPtr Mul(ExprPtr l, ExprPtr r) {
  return MakeBinary(Expr::BinaryOp::kMul, std::move(l), std::move(r));
}
ExprPtr Div(ExprPtr l, ExprPtr r) {
  return MakeBinary(Expr::BinaryOp::kDiv, std::move(l), std::move(r));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return MakeBinary(Expr::BinaryOp::kEq, std::move(l), std::move(r));
}
ExprPtr Ne(ExprPtr l, ExprPtr r) {
  return MakeBinary(Expr::BinaryOp::kNe, std::move(l), std::move(r));
}
ExprPtr Lt(ExprPtr l, ExprPtr r) {
  return MakeBinary(Expr::BinaryOp::kLt, std::move(l), std::move(r));
}
ExprPtr Le(ExprPtr l, ExprPtr r) {
  return MakeBinary(Expr::BinaryOp::kLe, std::move(l), std::move(r));
}
ExprPtr Gt(ExprPtr l, ExprPtr r) {
  return MakeBinary(Expr::BinaryOp::kGt, std::move(l), std::move(r));
}
ExprPtr Ge(ExprPtr l, ExprPtr r) {
  return MakeBinary(Expr::BinaryOp::kGe, std::move(l), std::move(r));
}
ExprPtr And(ExprPtr l, ExprPtr r) {
  return MakeBinary(Expr::BinaryOp::kAnd, std::move(l), std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return MakeBinary(Expr::BinaryOp::kOr, std::move(l), std::move(r));
}

ExprPtr Conjunction(std::vector<ExprPtr> terms) {
  ExprPtr result;
  for (auto& term : terms) {
    result = result == nullptr ? std::move(term)
                               : And(std::move(result), std::move(term));
  }
  return result;
}

// --------------------------------------------------- PushBoundConstraint

namespace {

// Full-containment fallback: every aggregate the subtree references must
// stay within its current range.
void RequireContainmentAll(const Expr& expr, const Row& row,
                           const EvalContext& ctx, RangeConstraintSink* sink) {
  std::vector<const AggLookupExpr*> lookups;
  expr.CollectAggLookups(&lookups);
  for (const AggLookupExpr* lookup : lookups) {
    sink->RequireContainment(lookup->block_id(), lookup->agg_col(),
                             lookup->EvalKey(row, ctx));
  }
  // Uncertain columns reached through lineage.
  if (ctx.column_lineage == nullptr) return;
  if (expr.kind() == Expr::Kind::kColumnRef) {
    const auto& ref = static_cast<const ColumnRefExpr&>(expr);
    if (static_cast<size_t>(ref.index()) < ctx.column_lineage->size()) {
      const ExprPtr& lineage = (*ctx.column_lineage)[ref.index()];
      if (lineage != nullptr) RequireContainmentAll(*lineage, row, ctx, sink);
    }
  } else {
    // Recurse for column refs nested under operators/calls.
    switch (expr.kind()) {
      case Expr::Kind::kUnary:
        RequireContainmentAll(*static_cast<const UnaryExpr&>(expr).operand(),
                              row, ctx, sink);
        break;
      case Expr::Kind::kBinary: {
        const auto& bin = static_cast<const BinaryExpr&>(expr);
        RequireContainmentAll(*bin.left(), row, ctx, sink);
        RequireContainmentAll(*bin.right(), row, ctx, sink);
        break;
      }
      case Expr::Kind::kCall:
        for (const auto& arg : static_cast<const CallExpr&>(expr).args()) {
          RequireContainmentAll(*arg, row, ctx, sink);
        }
        break;
      default:
        break;
    }
  }
}

}  // namespace

void PushBoundConstraint(const Expr& expr, bool upper, double bound,
                         const Row& row, const EvalContext& ctx,
                         RangeConstraintSink* sink) {
  if (!expr.DependsOnUncertain(ctx.column_lineage)) return;
  switch (expr.kind()) {
    case Expr::Kind::kAggLookup: {
      const auto& lookup = static_cast<const AggLookupExpr&>(expr);
      const Row key = lookup.EvalKey(row, ctx);
      if (upper) {
        sink->RequireUpper(lookup.block_id(), lookup.agg_col(), key, bound);
      } else {
        sink->RequireLower(lookup.block_id(), lookup.agg_col(), key, bound);
      }
      return;
    }
    case Expr::Kind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      const ExprPtr& lineage = (*ctx.column_lineage)[ref.index()];
      PushBoundConstraint(*lineage, upper, bound, row, ctx, sink);
      return;
    }
    case Expr::Kind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      if (unary.op() == Expr::UnaryOp::kNeg) {
        PushBoundConstraint(*unary.operand(), !upper, -bound, row, ctx, sink);
        return;
      }
      break;  // NOT over uncertain truth: fallback
    }
    case Expr::Kind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      const bool left_uncertain = bin.left()->DependsOnUncertain(ctx.column_lineage);
      const bool right_uncertain =
          bin.right()->DependsOnUncertain(ctx.column_lineage);
      if (left_uncertain && right_uncertain) break;  // fallback
      const Expr& uncertain = left_uncertain ? *bin.left() : *bin.right();
      const Expr& deterministic = left_uncertain ? *bin.right() : *bin.left();
      const Value dv = deterministic.Eval(row, ctx);
      if (dv.is_null() || !dv.is_numeric()) break;
      const double d = dv.AsDouble();
      switch (bin.op()) {
        case Expr::BinaryOp::kAdd:
          // u + d ≤ b  ⇔  u ≤ b − d
          PushBoundConstraint(uncertain, upper, bound - d, row, ctx, sink);
          return;
        case Expr::BinaryOp::kSub:
          if (left_uncertain) {
            // u − d ≤ b  ⇔  u ≤ b + d
            PushBoundConstraint(uncertain, upper, bound + d, row, ctx, sink);
          } else {
            // d − u ≤ b  ⇔  u ≥ d − b
            PushBoundConstraint(uncertain, !upper, d - bound, row, ctx, sink);
          }
          return;
        case Expr::BinaryOp::kMul:
          if (d > 0) {
            // u·d ≤ b  ⇔  u ≤ b/d
            PushBoundConstraint(uncertain, upper, bound / d, row, ctx, sink);
            return;
          }
          if (d < 0) {
            PushBoundConstraint(uncertain, !upper, bound / d, row, ctx, sink);
            return;
          }
          return;  // ×0: constant zero, no obligation
        case Expr::BinaryOp::kDiv:
          if (left_uncertain && d > 0) {
            PushBoundConstraint(uncertain, upper, bound * d, row, ctx, sink);
            return;
          }
          if (left_uncertain && d < 0) {
            PushBoundConstraint(uncertain, !upper, bound * d, row, ctx, sink);
            return;
          }
          break;  // d/u: non-monotone across 0, fallback
        default:
          break;  // comparisons/mod as values: fallback
      }
      break;
    }
    default:
      break;
  }
  RequireContainmentAll(expr, row, ctx, sink);
}

// ----------------------------------------------------- ClassifyPredicate

IntervalTruth ClassifyPredicate(const Expr& pred, const Row& row,
                                const EvalContext& ctx) {
  // Fast path: deterministic predicates classify by direct evaluation.
  if (!pred.DependsOnUncertain(ctx.column_lineage)) {
    const Value v = pred.Eval(row, ctx);
    return v.IsTruthy() ? IntervalTruth::kAlwaysTrue
                        : IntervalTruth::kAlwaysFalse;
  }
  if (pred.kind() == Expr::Kind::kUnary) {
    const auto& unary = static_cast<const UnaryExpr&>(pred);
    if (unary.op() == Expr::UnaryOp::kNot) {
      return Negate(ClassifyPredicate(*unary.operand(), row, ctx));
    }
    return IntervalTruth::kUndecided;
  }
  if (pred.kind() == Expr::Kind::kBinary) {
    const auto& binary = static_cast<const BinaryExpr&>(pred);
    const Expr::BinaryOp op = binary.op();
    if (op == Expr::BinaryOp::kAnd || op == Expr::BinaryOp::kOr) {
      // Short-circuit: when the left side alone decides the conjunction,
      // the right side's variation ranges are never consulted. Besides
      // saving work, this keeps the pruning-dependency trace minimal — a
      // row rejected by a deterministic conjunct does not depend on the
      // uncertain one.
      const IntervalTruth l = ClassifyPredicate(*binary.left(), row, ctx);
      if (op == Expr::BinaryOp::kAnd) {
        if (l == IntervalTruth::kAlwaysFalse) return IntervalTruth::kAlwaysFalse;
        const IntervalTruth r = ClassifyPredicate(*binary.right(), row, ctx);
        if (r == IntervalTruth::kAlwaysFalse) return IntervalTruth::kAlwaysFalse;
        if (l == IntervalTruth::kAlwaysTrue && r == IntervalTruth::kAlwaysTrue)
          return IntervalTruth::kAlwaysTrue;
        return IntervalTruth::kUndecided;
      }
      if (l == IntervalTruth::kAlwaysTrue) return IntervalTruth::kAlwaysTrue;
      const IntervalTruth r = ClassifyPredicate(*binary.right(), row, ctx);
      if (r == IntervalTruth::kAlwaysTrue) return IntervalTruth::kAlwaysTrue;
      if (l == IntervalTruth::kAlwaysFalse && r == IntervalTruth::kAlwaysFalse)
        return IntervalTruth::kAlwaysFalse;
      return IntervalTruth::kUndecided;
    }
    if (IsComparison(op)) {
      const Interval l = binary.left()->EvalInterval(row, ctx);
      const Interval r = binary.right()->EvalInterval(row, ctx);
      IntervalTruth truth = IntervalTruth::kUndecided;
      // Which operand must stay below which for the decided outcome to
      // keep holding (null = the decision carries no order obligation).
      const Expr* below = nullptr;
      const Expr* above = nullptr;
      Interval below_iv, above_iv;
      auto order = [&](const Expr* lo_side, const Interval& lo_iv,
                       const Expr* hi_side, const Interval& hi_iv) {
        below = lo_side;
        below_iv = lo_iv;
        above = hi_side;
        above_iv = hi_iv;
      };
      switch (op) {
        case Expr::BinaryOp::kLt:
        case Expr::BinaryOp::kLe:
          truth = op == Expr::BinaryOp::kLt ? IntervalLess(l, r)
                                            : IntervalLessEq(l, r);
          if (truth == IntervalTruth::kAlwaysTrue) {
            order(binary.left().get(), l, binary.right().get(), r);
          } else if (truth == IntervalTruth::kAlwaysFalse) {
            order(binary.right().get(), r, binary.left().get(), l);
          }
          break;
        case Expr::BinaryOp::kGt:
        case Expr::BinaryOp::kGe:
          truth = op == Expr::BinaryOp::kGt ? IntervalLess(r, l)
                                            : IntervalLessEq(r, l);
          if (truth == IntervalTruth::kAlwaysTrue) {
            order(binary.right().get(), r, binary.left().get(), l);
          } else if (truth == IntervalTruth::kAlwaysFalse) {
            order(binary.left().get(), l, binary.right().get(), r);
          }
          break;
        case Expr::BinaryOp::kEq:
        case Expr::BinaryOp::kNe: {
          const IntervalTruth eq = IntervalEq(l, r);
          truth = op == Expr::BinaryOp::kEq ? eq : Negate(eq);
          if (eq == IntervalTruth::kAlwaysFalse) {
            // Disjoint: remember which side sits below.
            if (l.hi < r.lo) {
              order(binary.left().get(), l, binary.right().get(), r);
            } else {
              order(binary.right().get(), r, binary.left().get(), l);
            }
          } else if (eq == IntervalTruth::kAlwaysTrue &&
                     ctx.constraint_sink != nullptr) {
            // Point equality: both operands must stay pinned.
            const double v = l.lo;
            PushBoundConstraint(*binary.left(), true, v, row, ctx,
                                ctx.constraint_sink);
            PushBoundConstraint(*binary.left(), false, v, row, ctx,
                                ctx.constraint_sink);
            PushBoundConstraint(*binary.right(), true, v, row, ctx,
                                ctx.constraint_sink);
            PushBoundConstraint(*binary.right(), false, v, row, ctx,
                                ctx.constraint_sink);
          }
          break;
        }
        default:
          break;
      }
      if (truth != IntervalTruth::kUndecided && below != nullptr &&
          ctx.constraint_sink != nullptr) {
        // The decision needs `below` to stay under `above`: register a
        // separator between their current intervals on both sides.
        double separator = (below_iv.hi + above_iv.lo) / 2.0;
        if (!std::isfinite(separator)) {
          if (std::isfinite(below_iv.hi)) {
            separator = below_iv.hi;
          } else if (std::isfinite(above_iv.lo)) {
            separator = above_iv.lo;
          }
        }
        if (std::isfinite(separator)) {
          PushBoundConstraint(*below, /*upper=*/true, separator, row, ctx,
                              ctx.constraint_sink);
          PushBoundConstraint(*above, /*upper=*/false, separator, row, ctx,
                              ctx.constraint_sink);
        }
      }
      return truth;
    }
    return IntervalTruth::kUndecided;
  }
  // Any other uncertain expression used as a predicate: conservative.
  return IntervalTruth::kUndecided;
}

// ------------------------------------------------------------ RemapColumns

ExprPtr RemapColumns(const ExprPtr& expr, const std::vector<int>& mapping) {
  switch (expr->kind()) {
    case Expr::Kind::kLiteral:
      return expr;
    case Expr::Kind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(*expr);
      assert(static_cast<size_t>(ref.index()) < mapping.size());
      const int target = mapping[ref.index()];
      assert(target >= 0 && "remapped column must exist in the new layout");
      if (target == ref.index()) return expr;
      return Col(target, ref.name(), ref.output_type());
    }
    case Expr::Kind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(*expr);
      return std::make_shared<UnaryExpr>(unary.op(),
                                         RemapColumns(unary.operand(), mapping),
                                         unary.output_type());
    }
    case Expr::Kind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(*expr);
      return std::make_shared<BinaryExpr>(
          binary.op(), RemapColumns(binary.left(), mapping),
          RemapColumns(binary.right(), mapping), binary.output_type());
    }
    case Expr::Kind::kCall: {
      const auto& call = static_cast<const CallExpr&>(*expr);
      std::vector<ExprPtr> args;
      args.reserve(call.args().size());
      for (const auto& arg : call.args()) {
        args.push_back(RemapColumns(arg, mapping));
      }
      return std::make_shared<CallExpr>(call.name(), std::move(args),
                                        call.output_type());
    }
    case Expr::Kind::kAggLookup: {
      const auto& lookup = static_cast<const AggLookupExpr&>(*expr);
      std::vector<ExprPtr> keys;
      keys.reserve(lookup.key_exprs().size());
      for (const auto& key : lookup.key_exprs()) {
        keys.push_back(RemapColumns(key, mapping));
      }
      return std::make_shared<AggLookupExpr>(lookup.block_id(),
                                             lookup.agg_col(), std::move(keys),
                                             lookup.output_type(),
                                             lookup.ToString());
    }
  }
  return expr;
}

}  // namespace iolap
