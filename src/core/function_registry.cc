#include "core/function_registry.h"

#include <algorithm>
#include <cmath>

#include "core/aggregate.h"

namespace iolap {

namespace {

ValueType DoubleType(const std::vector<ValueType>&) {
  return ValueType::kDouble;
}
ValueType Int64Type(const std::vector<ValueType>&) { return ValueType::kInt64; }
ValueType StringType(const std::vector<ValueType>&) {
  return ValueType::kString;
}
ValueType FirstArgType(const std::vector<ValueType>& args) {
  return args.empty() ? ValueType::kNull : args[0];
}

bool AnyNull(const std::vector<Value>& args) {
  return std::any_of(args.begin(), args.end(),
                     [](const Value& v) { return v.is_null(); });
}

bool AnyNullNum(const NumericValue* args, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (args[i].is_null()) return true;
  }
  return false;
}

// Value::Compare restricted to numerics (both operands numeric or NULL-free
// here): compares through AsDouble, exactly like the boxed path.
int CompareNum(const NumericValue& a, const NumericValue& b) {
  const double x = a.AsDouble();
  const double y = b.AsDouble();
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

// ------------------------------- built-in smooth UDAF implementations

// GEOMEAN(x) = exp(weighted mean of log x); non-positive inputs skipped.
class GeomeanAccumulator final : public AggAccumulator {
 public:
  void Add(const Value& v, double weight) override {
    if (v.is_null()) return;
    const double x = v.AsDouble();
    if (x <= 0.0) return;
    w_ += weight;
    wlog_ += weight * std::log(x);
  }
  void Merge(const AggAccumulator& other) override {
    const auto& o = static_cast<const GeomeanAccumulator&>(other);
    w_ += o.w_;
    wlog_ += o.wlog_;
  }
  Value Result(double) const override {
    return w_ <= 0.0 ? Value::Null() : Value::Double(std::exp(wlog_ / w_));
  }
  std::unique_ptr<AggAccumulator> Clone() const override {
    return std::make_unique<GeomeanAccumulator>(*this);
  }
  size_t ByteSize() const override { return 2 * sizeof(double); }

 private:
  double w_ = 0.0;
  double wlog_ = 0.0;
};

// HARMONIC_MEAN(x) = W / sum(w/x); non-positive inputs skipped.
class HarmonicAccumulator final : public AggAccumulator {
 public:
  void Add(const Value& v, double weight) override {
    if (v.is_null()) return;
    const double x = v.AsDouble();
    if (x <= 0.0) return;
    w_ += weight;
    winv_ += weight / x;
  }
  void Merge(const AggAccumulator& other) override {
    const auto& o = static_cast<const HarmonicAccumulator&>(other);
    w_ += o.w_;
    winv_ += o.winv_;
  }
  Value Result(double) const override {
    return winv_ <= 0.0 ? Value::Null() : Value::Double(w_ / winv_);
  }
  std::unique_ptr<AggAccumulator> Clone() const override {
    return std::make_unique<HarmonicAccumulator>(*this);
  }
  size_t ByteSize() const override { return 2 * sizeof(double); }

 private:
  double w_ = 0.0;
  double winv_ = 0.0;
};

// RMS(x) = sqrt(weighted mean of x^2).
class RmsAccumulator final : public AggAccumulator {
 public:
  void Add(const Value& v, double weight) override {
    if (v.is_null()) return;
    const double x = v.AsDouble();
    w_ += weight;
    wxx_ += weight * x * x;
  }
  void Merge(const AggAccumulator& other) override {
    const auto& o = static_cast<const RmsAccumulator&>(other);
    w_ += o.w_;
    wxx_ += o.wxx_;
  }
  Value Result(double) const override {
    return w_ <= 0.0 ? Value::Null() : Value::Double(std::sqrt(wxx_ / w_));
  }
  std::unique_ptr<AggAccumulator> Clone() const override {
    return std::make_unique<RmsAccumulator>(*this);
  }
  size_t ByteSize() const override { return 2 * sizeof(double); }

 private:
  double w_ = 0.0;
  double wxx_ = 0.0;
};

template <typename Accumulator>
class SmoothUdaf final : public AggFunction {
 public:
  explicit SmoothUdaf(std::string name) : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  ValueType ResultType(ValueType) const override { return ValueType::kDouble; }
  bool SupportsSampling() const override { return true; }
  std::unique_ptr<AggAccumulator> NewAccumulator() const override {
    return std::make_unique<Accumulator>();
  }

 private:
  std::string name_;
};

}  // namespace

void FunctionRegistry::RegisterScalar(ScalarFunction fn) {
  scalars_[fn.name] = std::move(fn);
}

void FunctionRegistry::RegisterAggregate(
    const std::string& name, std::shared_ptr<const AggFunction> agg) {
  aggregates_[name] = std::move(agg);
}

Result<const ScalarFunction*> FunctionRegistry::FindScalar(
    const std::string& name) const {
  auto it = scalars_.find(name);
  if (it == scalars_.end()) {
    return Status::NotFound("unknown scalar function: " + name);
  }
  return &it->second;
}

Result<std::shared_ptr<const AggFunction>> FunctionRegistry::FindAggregate(
    const std::string& name) const {
  auto it = aggregates_.find(name);
  if (it == aggregates_.end()) {
    return Status::NotFound("unknown aggregate function: " + name);
  }
  return it->second;
}

bool FunctionRegistry::HasScalar(const std::string& name) const {
  return scalars_.count(name) > 0;
}

bool FunctionRegistry::HasAggregate(const std::string& name) const {
  return aggregates_.count(name) > 0;
}

std::shared_ptr<FunctionRegistry> FunctionRegistry::Default() {
  auto registry = std::make_shared<FunctionRegistry>();

  auto unary_math = [&](const std::string& name, double (*fn)(double),
                        bool monotone) {
    registry->RegisterScalar(
        {name, 1, DoubleType,
         [fn](const std::vector<Value>& args) -> Value {
           if (AnyNull(args)) return Value::Null();
           return Value::Double(fn(args[0].AsDouble()));
         },
         monotone,
         [fn](const NumericValue* args, size_t n) -> NumericValue {
           if (AnyNullNum(args, n)) return NumericValue::Null();
           return NumericValue::Dbl(fn(args[0].AsDouble()));
         }});
  };
  unary_math("abs", [](double x) { return std::fabs(x); }, false);
  unary_math("sqrt", [](double x) { return x < 0 ? 0.0 : std::sqrt(x); }, true);
  unary_math("log", [](double x) { return x <= 0 ? 0.0 : std::log(x); }, true);
  unary_math("exp", [](double x) { return std::exp(x); }, true);
  unary_math("floor", [](double x) { return std::floor(x); }, true);
  unary_math("ceil", [](double x) { return std::ceil(x); }, true);
  unary_math("round", [](double x) { return std::round(x); }, true);

  registry->RegisterScalar(
      {"pow", 2, DoubleType,
       [](const std::vector<Value>& args) -> Value {
         if (AnyNull(args)) return Value::Null();
         return Value::Double(std::pow(args[0].AsDouble(), args[1].AsDouble()));
       },
       false,
       [](const NumericValue* args, size_t n) -> NumericValue {
         if (AnyNullNum(args, n)) return NumericValue::Null();
         return NumericValue::Dbl(std::pow(args[0].AsDouble(),
                                           args[1].AsDouble()));
       }});
  registry->RegisterScalar(
      {"mod", 2, Int64Type,
       [](const std::vector<Value>& args) -> Value {
         if (AnyNull(args)) return Value::Null();
         const int64_t d = static_cast<int64_t>(args[1].AsDouble());
         if (d == 0) return Value::Null();
         return Value::Int64(static_cast<int64_t>(args[0].AsDouble()) % d);
       },
       false,
       [](const NumericValue* args, size_t n) -> NumericValue {
         if (AnyNullNum(args, n)) return NumericValue::Null();
         const int64_t d = static_cast<int64_t>(args[1].AsDouble());
         if (d == 0) return NumericValue::Null();
         return NumericValue::Int(static_cast<int64_t>(args[0].AsDouble()) % d);
       }});
  registry->RegisterScalar(
      {"least", -1, FirstArgType,
       [](const std::vector<Value>& args) -> Value {
         Value best;
         for (const Value& v : args) {
           if (v.is_null()) continue;
           if (best.is_null() || v.Compare(best) < 0) best = v;
         }
         return best;
       },
       false,
       [](const NumericValue* args, size_t n) -> NumericValue {
         NumericValue best;
         for (size_t i = 0; i < n; ++i) {
           if (args[i].is_null()) continue;
           if (best.is_null() || CompareNum(args[i], best) < 0) best = args[i];
         }
         return best;
       }});
  registry->RegisterScalar(
      {"greatest", -1, FirstArgType,
       [](const std::vector<Value>& args) -> Value {
         Value best;
         for (const Value& v : args) {
           if (v.is_null()) continue;
           if (best.is_null() || v.Compare(best) > 0) best = v;
         }
         return best;
       },
       false,
       [](const NumericValue* args, size_t n) -> NumericValue {
         NumericValue best;
         for (size_t i = 0; i < n; ++i) {
           if (args[i].is_null()) continue;
           if (best.is_null() || CompareNum(args[i], best) > 0) best = args[i];
         }
         return best;
       }});
  registry->RegisterScalar(
      {"if", 3,
       [](const std::vector<ValueType>& args) {
         return args.size() == 3 ? args[1] : ValueType::kNull;
       },
       [](const std::vector<Value>& args) -> Value {
         return args[0].IsTruthy() ? args[1] : args[2];
       },
       false,
       [](const NumericValue* args, size_t) -> NumericValue {
         return args[0].IsTruthy() ? args[1] : args[2];
       }});
  registry->RegisterScalar(
      {"coalesce", -1, FirstArgType,
       [](const std::vector<Value>& args) -> Value {
         for (const Value& v : args) {
           if (!v.is_null()) return v;
         }
         return Value::Null();
       },
       false,
       [](const NumericValue* args, size_t n) -> NumericValue {
         for (size_t i = 0; i < n; ++i) {
           if (!args[i].is_null()) return args[i];
         }
         return NumericValue::Null();
       }});
  registry->RegisterScalar(
      {"length", 1, Int64Type,
       [](const std::vector<Value>& args) -> Value {
         if (AnyNull(args)) return Value::Null();
         if (args[0].type() != ValueType::kString) return Value::Null();
         return Value::Int64(static_cast<int64_t>(args[0].str().size()));
       },
       false,
       {}});
  registry->RegisterScalar(
      {"lower", 1, StringType,
       [](const std::vector<Value>& args) -> Value {
         if (AnyNull(args) || args[0].type() != ValueType::kString) {
           return Value::Null();
         }
         std::string s = args[0].str();
         std::transform(s.begin(), s.end(), s.begin(), ::tolower);
         return Value::String(std::move(s));
       },
       false,
       {}});
  registry->RegisterScalar(
      {"upper", 1, StringType,
       [](const std::vector<Value>& args) -> Value {
         if (AnyNull(args) || args[0].type() != ValueType::kString) {
           return Value::Null();
         }
         std::string s = args[0].str();
         std::transform(s.begin(), s.end(), s.begin(), ::toupper);
         return Value::String(std::move(s));
       },
       false,
       {}});
  registry->RegisterScalar(
      {"substr", 3, StringType,
       [](const std::vector<Value>& args) -> Value {
         if (AnyNull(args) || args[0].type() != ValueType::kString) {
           return Value::Null();
         }
         const std::string& s = args[0].str();
         // SQL-style 1-based start.
         int64_t start = static_cast<int64_t>(args[1].AsDouble()) - 1;
         int64_t len = static_cast<int64_t>(args[2].AsDouble());
         if (start < 0) start = 0;
         if (start >= static_cast<int64_t>(s.size()) || len <= 0) {
           return Value::String("");
         }
         return Value::String(s.substr(static_cast<size_t>(start),
                                       static_cast<size_t>(len)));
       },
       false,
       {}});
  registry->RegisterScalar(
      {"concat", -1, StringType,
       [](const std::vector<Value>& args) -> Value {
         std::string out;
         for (const Value& v : args) {
           if (!v.is_null()) out += v.ToString();
         }
         return Value::String(std::move(out));
       },
       false,
       {}});

  registry->RegisterAggregate(
      "geomean", std::make_shared<SmoothUdaf<GeomeanAccumulator>>("geomean"));
  registry->RegisterAggregate(
      "harmonic_mean",
      std::make_shared<SmoothUdaf<HarmonicAccumulator>>("harmonic_mean"));
  registry->RegisterAggregate("rms",
                              std::make_shared<SmoothUdaf<RmsAccumulator>>("rms"));
  return registry;
}

}  // namespace iolap
