#ifndef IOLAP_CORE_VALUE_H_
#define IOLAP_CORE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace iolap {

/// Runtime type of a Value. The engine supports the types needed by the
/// paper's workloads: 64-bit integers, doubles and strings, plus SQL NULL.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
};

const char* ValueTypeToString(ValueType type);

/// A dynamically typed SQL value. Values are small, copyable and totally
/// ordered (NULL sorts first; numeric types compare by numeric value, so
/// Int64(2) == Double(2.0)). The binder type-checks queries up front, so
/// runtime evaluation follows SQL semantics: operations on NULL yield NULL
/// rather than errors.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() = default;

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Storage(std::in_place_index<1>, v)); }
  static Value Double(double v) { return Value(Storage(std::in_place_index<2>, v)); }
  static Value String(std::string v) {
    return Value(Storage(std::in_place_index<3>, std::move(v)));
  }
  static Value Bool(bool v) { return Int64(v ? 1 : 0); }

  ValueType type() const { return static_cast<ValueType>(storage_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    return type() == ValueType::kInt64 || type() == ValueType::kDouble;
  }

  /// Integer payload. Only valid when type() == kInt64.
  int64_t int64() const { return std::get<1>(storage_); }
  /// Double payload. Only valid when type() == kDouble.
  double dbl() const { return std::get<2>(storage_); }
  /// String payload. Only valid when type() == kString.
  const std::string& str() const { return std::get<3>(storage_); }

  /// Numeric coercion: Int64/Double as double. NULL and strings yield 0.0
  /// (callers use is_numeric()/is_null() to distinguish).
  double AsDouble() const;

  /// Truthiness for predicates: non-zero numeric is true; NULL and
  /// non-numeric are false (SQL's "unknown" filters out).
  bool IsTruthy() const;

  /// Total ordering: NULL < numerics (by value) < strings (lexicographic).
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool Equals(const Value& other) const { return Compare(other) == 0; }

  uint64_t Hash() const;

  /// Approximate in-memory footprint, used by the shipped-bytes cost model.
  size_t ByteSize() const;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) { return a.Equals(b); }
  friend bool operator!=(const Value& a, const Value& b) { return !a.Equals(b); }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }

 private:
  using Storage = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Storage storage) : storage_(std::move(storage)) {}

  Storage storage_;
};

/// A tuple of values. Rows are schema-less at runtime; the plan carries the
/// schema.
using Row = std::vector<Value>;

/// Hash of a full row (order-sensitive), for group-by and join keys.
uint64_t HashRow(const Row& row);

/// Approximate serialized size of a row, for the shuffle cost model.
size_t RowByteSize(const Row& row);

std::string RowToString(const Row& row);

/// A row key paired with its precomputed hash, for heterogeneous probes of
/// Row-keyed hash maps: callers that already know HashRow(*row) (the apply
/// phase hashes each group key once per batch) probe with this instead of
/// paying a re-hash per map.
struct HashedRowRef {
  const Row* row;
  uint64_t hash;
};

/// Functors for using Row as a hash-map key. Transparent (C++20 P0919) so
/// lookups accept HashedRowRef without re-hashing or materializing a Row.
struct RowHash {
  using is_transparent = void;
  size_t operator()(const Row& row) const { return HashRow(row); }
  size_t operator()(const HashedRowRef& ref) const { return ref.hash; }
};
struct RowEq {
  using is_transparent = void;
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
  bool operator()(const HashedRowRef& a, const Row& b) const {
    return operator()(*a.row, b);
  }
  bool operator()(const Row& a, const HashedRowRef& b) const {
    return operator()(a, *b.row);
  }
  bool operator()(const HashedRowRef& a, const HashedRowRef& b) const {
    return operator()(*a.row, *b.row);
  }
};

}  // namespace iolap

#endif  // IOLAP_CORE_VALUE_H_
