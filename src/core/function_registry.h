#ifndef IOLAP_CORE_FUNCTION_REGISTRY_H_
#define IOLAP_CORE_FUNCTION_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/value.h"

namespace iolap {

class AggFunction;

/// A scalar function (built-in or user-defined). UDFs are black boxes to
/// the uncertainty analysis: an expression calling a scalar function over an
/// uncertain operand gets the conservative Unbounded() variation range
/// unless the function declares itself monotone (in which case interval
/// endpoints map through the function).
struct ScalarFunction {
  /// Lower-case function name as referenced from SQL.
  std::string name;
  /// Expected argument count; -1 = variadic.
  int arity = -1;
  /// Result type given argument types.
  std::function<ValueType(const std::vector<ValueType>&)> result_type;
  /// The implementation. Must be pure (referenced from multiple threads).
  std::function<Value(const std::vector<Value>&)> eval;
  /// True if the function is monotone non-decreasing in each argument
  /// (e.g. sqrt, log): allows tight interval propagation for UDFs.
  bool monotone = false;
};

/// Registry of scalar functions and aggregate (UDAF) factories. A process
/// typically uses one registry with the built-ins plus workload UDFs; the
/// registry is immutable during query execution.
class FunctionRegistry {
 public:
  /// Creates a registry pre-populated with the built-in scalar functions
  /// (abs, sqrt, log, exp, floor, ceil, round, pow, mod, least, greatest,
  /// if, coalesce, length, lower, upper, substr, concat) and built-in UDAF
  /// factories (geomean, harmonic_mean, rms).
  static std::shared_ptr<FunctionRegistry> Default();

  /// Registers (or replaces) a scalar function.
  void RegisterScalar(ScalarFunction fn);

  /// Registers (or replaces) a user-defined aggregate.
  void RegisterAggregate(const std::string& name,
                         std::shared_ptr<const AggFunction> agg);

  /// Looks up a scalar function by (lower-case) name.
  Result<const ScalarFunction*> FindScalar(const std::string& name) const;

  /// Looks up a UDAF by (lower-case) name.
  Result<std::shared_ptr<const AggFunction>> FindAggregate(
      const std::string& name) const;

  bool HasScalar(const std::string& name) const;
  bool HasAggregate(const std::string& name) const;

 private:
  std::map<std::string, ScalarFunction> scalars_;
  std::map<std::string, std::shared_ptr<const AggFunction>> aggregates_;
};

}  // namespace iolap

#endif  // IOLAP_CORE_FUNCTION_REGISTRY_H_
