#ifndef IOLAP_CORE_FUNCTION_REGISTRY_H_
#define IOLAP_CORE_FUNCTION_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/value.h"

namespace iolap {

class AggFunction;

/// An unboxed numeric value (NULL / int64 / double) used by the typed
/// kernels of the compiled expression path (exec/expr_program). Invariant:
/// when tag == kInt64, `f64 == double(i64)` — kernels and the compiler keep
/// the double mirror in sync so AsDouble() is a plain load.
struct NumericValue {
  double f64 = 0.0;
  int64_t i64 = 0;
  ValueType tag = ValueType::kNull;  // kNull, kInt64 or kDouble only

  static NumericValue Null() { return {}; }
  static NumericValue Int(int64_t v) {
    return {static_cast<double>(v), v, ValueType::kInt64};
  }
  static NumericValue Dbl(double v) { return {v, 0, ValueType::kDouble}; }

  bool is_null() const { return tag == ValueType::kNull; }
  /// Mirrors Value::AsDouble(): NULL coerces to 0.0.
  double AsDouble() const { return tag == ValueType::kNull ? 0.0 : f64; }
  /// Mirrors Value::IsTruthy(): non-zero numeric.
  bool IsTruthy() const {
    return tag == ValueType::kInt64 ? i64 != 0
                                    : tag == ValueType::kDouble && f64 != 0.0;
  }
};

/// A scalar function (built-in or user-defined). UDFs are black boxes to
/// the uncertainty analysis: an expression calling a scalar function over an
/// uncertain operand gets the conservative Unbounded() variation range
/// unless the function declares itself monotone (in which case interval
/// endpoints map through the function).
struct ScalarFunction {
  /// Lower-case function name as referenced from SQL.
  std::string name;
  /// Expected argument count; -1 = variadic.
  int arity = -1;
  /// Result type given argument types.
  std::function<ValueType(const std::vector<ValueType>&)> result_type;
  /// The implementation. Must be pure (referenced from multiple threads).
  std::function<Value(const std::vector<Value>&)> eval;
  /// True if the function is monotone non-decreasing in each argument
  /// (e.g. sqrt, log): allows tight interval propagation for UDFs.
  bool monotone = false;
  /// Optional typed kernel for the compiled expression path: used instead of
  /// `eval` when every argument is statically numeric. Must be bit-identical
  /// to `eval` over NULL/INT64/DOUBLE inputs; NULL handling is the kernel's
  /// own responsibility (mirroring `eval`), so non-propagating functions
  /// (if, coalesce, least, greatest) get kernels too. Functions without a
  /// kernel fall back to `eval` through a Value-boxing call site.
  std::function<NumericValue(const NumericValue* args, size_t n)>
      numeric_kernel;
};

/// Registry of scalar functions and aggregate (UDAF) factories. A process
/// typically uses one registry with the built-ins plus workload UDFs; the
/// registry is immutable during query execution.
class FunctionRegistry {
 public:
  /// Creates a registry pre-populated with the built-in scalar functions
  /// (abs, sqrt, log, exp, floor, ceil, round, pow, mod, least, greatest,
  /// if, coalesce, length, lower, upper, substr, concat) and built-in UDAF
  /// factories (geomean, harmonic_mean, rms).
  static std::shared_ptr<FunctionRegistry> Default();

  /// Registers (or replaces) a scalar function.
  void RegisterScalar(ScalarFunction fn);

  /// Registers (or replaces) a user-defined aggregate.
  void RegisterAggregate(const std::string& name,
                         std::shared_ptr<const AggFunction> agg);

  /// Looks up a scalar function by (lower-case) name.
  Result<const ScalarFunction*> FindScalar(const std::string& name) const;

  /// Looks up a UDAF by (lower-case) name.
  Result<std::shared_ptr<const AggFunction>> FindAggregate(
      const std::string& name) const;

  bool HasScalar(const std::string& name) const;
  bool HasAggregate(const std::string& name) const;

 private:
  std::map<std::string, ScalarFunction> scalars_;
  std::map<std::string, std::shared_ptr<const AggFunction>> aggregates_;
};

}  // namespace iolap

#endif  // IOLAP_CORE_FUNCTION_REGISTRY_H_
