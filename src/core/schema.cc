#include "core/schema.h"

namespace iolap {

namespace {

// The unqualified suffix of a possibly qualified column name.
std::string_view Unqualified(const std::string& name) {
  const size_t dot = name.rfind('.');
  if (dot == std::string::npos) return name;
  return std::string_view(name).substr(dot + 1);
}

}  // namespace

Result<int> Schema::FindColumn(const std::string& name) const {
  // Pass 1: exact (qualified) match.
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  // Pass 2: suffix match — only for unqualified requests. A qualified
  // request ("l.partkey") must not resolve to a column of another
  // qualifier ("l2.partkey"); correlated-subquery detection depends on
  // such lookups failing locally.
  if (name.find('.') != std::string::npos) {
    return Status::NotFound("column not found: " + name);
  }
  int found = -1;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (Unqualified(columns_[i].name) == Unqualified(name)) {
      if (found >= 0) {
        return Status::InvalidArgument("ambiguous column reference: " + name);
      }
      found = static_cast<int>(i);
    }
  }
  if (found < 0) return Status::NotFound("column not found: " + name);
  return found;
}

bool Schema::HasColumn(const std::string& name) const {
  for (const auto& col : columns_) {
    if (col.name == name || Unqualified(col.name) == Unqualified(name)) {
      return true;
    }
  }
  return false;
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Column> merged = columns_;
  merged.insert(merged.end(), other.columns_.begin(), other.columns_.end());
  return Schema(std::move(merged));
}

std::string Schema::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeToString(columns_[i].type);
  }
  out += "]";
  return out;
}

}  // namespace iolap
