#ifndef IOLAP_CORE_EXPR_H_
#define IOLAP_CORE_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/interval.h"
#include "core/schema.h"
#include "core/value.h"

namespace iolap {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class FunctionRegistry;

/// Resolves references to the (current) output of upstream aggregate
/// lineage blocks. Implemented by iolap::AggregateRegistry; declared here so
/// the expression layer stays independent of the delta engine.
///
/// This interface is the runtime realization of the paper's lineage-based
/// lazy evaluation (§6.2): an uncertain attribute is re-computed by joining
/// its carried lineage `(rel, key)` with the up-to-date aggregate relation —
/// here, a hash lookup into the registry.
class AggLookupResolver {
 public:
  virtual ~AggLookupResolver() = default;

  /// Current (running, scaled) value of aggregate output column `col` of
  /// block `block_id` for group `key`. Null if the group has no entry yet.
  virtual Value Lookup(int block_id, int col, const Row& key) const = 0;

  /// The value the aggregate takes in bootstrap trial `trial`.
  virtual Value LookupTrial(int block_id, int col, const Row& key,
                            int trial) const = 0;

  /// Batched form: fills `out[t] = LookupTrial(block_id, col, key, t)` for
  /// every t in [0, num_trials). The default implementation loops;
  /// implementations backed by a per-group replica store override it to
  /// resolve the group once and copy its trial vector, which is what lets
  /// the compiled expression path (exec/expr_program) hoist the group probe
  /// out of the per-trial hot loop.
  virtual void LookupTrials(int block_id, int col, const Row& key,
                            int num_trials, Value* out) const;

  /// The current variation range R(u) of the aggregate (§5.1). Unbounded
  /// if the group has no entry yet.
  virtual Interval LookupRange(int block_id, int col, const Row& key) const = 0;
};

/// Receives the obligations a pruning decision places on uncertain
/// aggregates: "the value of (block, col, key) must stay ≤/≥ bound for the
/// decision to remain valid", or full containment in its current range
/// when the dependence is not recognizably monotone. Implemented by
/// iolap::AggregateRegistry, which routes the bounds to the per-group
/// variation-range trackers (§5.1 integrity checking).
class RangeConstraintSink {
 public:
  virtual ~RangeConstraintSink() = default;
  virtual void RequireUpper(int block, int col, const Row& key,
                            double bound) = 0;
  virtual void RequireLower(int block, int col, const Row& key,
                            double bound) = 0;
  virtual void RequireContainment(int block, int col, const Row& key) = 0;
};

/// Everything expression evaluation can touch. `column_lineage`, when
/// non-null, maps each column of the current row to the lineage expression
/// that computes it (null entry = deterministic column); trial and interval
/// evaluation of a column reference re-derives the column through its
/// lineage instead of trusting the possibly stale stored value.
struct EvalContext {
  const FunctionRegistry* functions = nullptr;
  const AggLookupResolver* resolver = nullptr;
  const std::vector<ExprPtr>* column_lineage = nullptr;
  /// Bootstrap trial index for Eval(); -1 selects the main (non-bootstrap)
  /// evaluation.
  int trial = -1;
  /// When set, ClassifyPredicate registers the bounds each decided
  /// comparison needs onto the uncertain values it consulted.
  RangeConstraintSink* constraint_sink = nullptr;
};

/// An immutable expression tree node. Expressions are shared (shared_ptr)
/// and never mutated after binding, so one tree serves every row and every
/// thread. The binder performs all type checking; runtime evaluation follows
/// SQL semantics with NULL propagation and never fails.
class Expr {
 public:
  enum class Kind {
    kLiteral,
    kColumnRef,
    kUnary,
    kBinary,
    kCall,
    kAggLookup,
  };

  enum class UnaryOp { kNeg, kNot };

  enum class BinaryOp {
    kAdd,
    kSub,
    kMul,
    kDiv,
    kMod,
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kAnd,
    kOr,
  };

  virtual ~Expr() = default;

  Kind kind() const { return kind_; }
  ValueType output_type() const { return output_type_; }

  /// Evaluates against `row`. With ctx.trial >= 0 this produces the value
  /// the expression takes in that bootstrap trial (resolving aggregate
  /// lookups to their trial replicas).
  virtual Value Eval(const Row& row, const EvalContext& ctx) const = 0;

  /// Conservative range of values this expression can take across the
  /// remaining online execution, given the variation ranges of the
  /// uncertain aggregates it references. Deterministic numeric
  /// subexpressions collapse to points.
  virtual Interval EvalInterval(const Row& row, const EvalContext& ctx) const = 0;

  /// True if this subtree references an uncertain aggregate — either
  /// directly (an AggLookup leaf) or through a column whose lineage in
  /// `column_lineage` is non-null.
  virtual bool DependsOnUncertain(
      const std::vector<ExprPtr>* column_lineage) const = 0;

  /// Appends all AggLookup leaves in the subtree (for plan analysis).
  virtual void CollectAggLookups(
      std::vector<const class AggLookupExpr*>* out) const = 0;

  virtual std::string ToString() const = 0;

 protected:
  Expr(Kind kind, ValueType output_type)
      : kind_(kind), output_type_(output_type) {}

 private:
  Kind kind_;
  ValueType output_type_;
};

/// A constant.
class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(Kind::kLiteral, value.type()), value_(std::move(value)) {}

  const Value& value() const { return value_; }

  Value Eval(const Row& row, const EvalContext& ctx) const override;
  Interval EvalInterval(const Row& row, const EvalContext& ctx) const override;
  bool DependsOnUncertain(const std::vector<ExprPtr>*) const override {
    return false;
  }
  void CollectAggLookups(std::vector<const AggLookupExpr*>*) const override {}
  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

/// A reference to column `index` of the input row.
class ColumnRefExpr final : public Expr {
 public:
  ColumnRefExpr(int index, std::string name, ValueType type)
      : Expr(Kind::kColumnRef, type), index_(index), name_(std::move(name)) {}

  int index() const { return index_; }
  const std::string& name() const { return name_; }

  Value Eval(const Row& row, const EvalContext& ctx) const override;
  Interval EvalInterval(const Row& row, const EvalContext& ctx) const override;
  bool DependsOnUncertain(
      const std::vector<ExprPtr>* column_lineage) const override;
  void CollectAggLookups(std::vector<const AggLookupExpr*>*) const override {}
  std::string ToString() const override { return name_; }

 private:
  int index_;
  std::string name_;
};

/// Unary negation / logical NOT.
class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand, ValueType type)
      : Expr(Kind::kUnary, type), op_(op), operand_(std::move(operand)) {}

  UnaryOp op() const { return op_; }
  const ExprPtr& operand() const { return operand_; }

  Value Eval(const Row& row, const EvalContext& ctx) const override;
  Interval EvalInterval(const Row& row, const EvalContext& ctx) const override;
  bool DependsOnUncertain(const std::vector<ExprPtr>* cl) const override {
    return operand_->DependsOnUncertain(cl);
  }
  void CollectAggLookups(std::vector<const AggLookupExpr*>* out) const override {
    operand_->CollectAggLookups(out);
  }
  std::string ToString() const override;

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

/// Arithmetic / comparison / logical binary operation.
class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right, ValueType type)
      : Expr(Kind::kBinary, type),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  BinaryOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  Value Eval(const Row& row, const EvalContext& ctx) const override;
  Interval EvalInterval(const Row& row, const EvalContext& ctx) const override;
  bool DependsOnUncertain(const std::vector<ExprPtr>* cl) const override {
    return left_->DependsOnUncertain(cl) || right_->DependsOnUncertain(cl);
  }
  void CollectAggLookups(std::vector<const AggLookupExpr*>* out) const override {
    left_->CollectAggLookups(out);
    right_->CollectAggLookups(out);
  }
  std::string ToString() const override;

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// A call to a registered scalar function (built-in or UDF).
class CallExpr final : public Expr {
 public:
  CallExpr(std::string name, std::vector<ExprPtr> args, ValueType type)
      : Expr(Kind::kCall, type), name_(std::move(name)), args_(std::move(args)) {}

  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }

  Value Eval(const Row& row, const EvalContext& ctx) const override;
  Interval EvalInterval(const Row& row, const EvalContext& ctx) const override;
  bool DependsOnUncertain(const std::vector<ExprPtr>* cl) const override;
  void CollectAggLookups(std::vector<const AggLookupExpr*>* out) const override;
  std::string ToString() const override;

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

/// A reference to an aggregate produced by an upstream lineage block: the
/// compiled form of a scalar subquery (key_exprs empty) or a correlated /
/// group-keyed subquery (key_exprs compute the group key from the current
/// row's deterministic columns). This node is the paper's propagated lineage
/// `L = {(rel(γ), t.key)}` (§6.1): evaluation is a lookup into the
/// up-to-date aggregate relation.
class AggLookupExpr final : public Expr {
 public:
  AggLookupExpr(int block_id, int agg_col, std::vector<ExprPtr> key_exprs,
                ValueType type, std::string debug_name)
      : Expr(Kind::kAggLookup, type),
        block_id_(block_id),
        agg_col_(agg_col),
        key_exprs_(std::move(key_exprs)),
        debug_name_(std::move(debug_name)) {}

  int block_id() const { return block_id_; }
  int agg_col() const { return agg_col_; }
  const std::vector<ExprPtr>& key_exprs() const { return key_exprs_; }

  /// Computes this row's group key.
  Row EvalKey(const Row& row, const EvalContext& ctx) const;

  Value Eval(const Row& row, const EvalContext& ctx) const override;
  Interval EvalInterval(const Row& row, const EvalContext& ctx) const override;
  bool DependsOnUncertain(const std::vector<ExprPtr>*) const override {
    return true;
  }
  void CollectAggLookups(std::vector<const AggLookupExpr*>* out) const override {
    out->push_back(this);
  }
  std::string ToString() const override;

 private:
  int block_id_;
  int agg_col_;
  std::vector<ExprPtr> key_exprs_;
  std::string debug_name_;
};

// Convenience constructors. Types are inferred with SQL-ish promotion
// (int64 op double -> double; comparisons/logic -> int64 booleans).
ExprPtr Lit(Value v);
ExprPtr Lit(int64_t v);
ExprPtr Lit(double v);
ExprPtr Lit(const char* v);
ExprPtr Col(int index, std::string name, ValueType type);
ExprPtr Neg(ExprPtr e);
ExprPtr Not(ExprPtr e);
ExprPtr MakeBinary(Expr::BinaryOp op, ExprPtr l, ExprPtr r);
ExprPtr Add(ExprPtr l, ExprPtr r);
ExprPtr Sub(ExprPtr l, ExprPtr r);
ExprPtr Mul(ExprPtr l, ExprPtr r);
ExprPtr Div(ExprPtr l, ExprPtr r);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr Ne(ExprPtr l, ExprPtr r);
ExprPtr Lt(ExprPtr l, ExprPtr r);
ExprPtr Le(ExprPtr l, ExprPtr r);
ExprPtr Gt(ExprPtr l, ExprPtr r);
ExprPtr Ge(ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);

/// AND over a list (nullptr for empty).
ExprPtr Conjunction(std::vector<ExprPtr> terms);

/// Tri-state classification of a predicate given the variation ranges of
/// the uncertain aggregates it (transitively) references. This is the §5
/// partitioning test: kUndecided rows form the non-deterministic set U,
/// kAlwaysTrue/kAlwaysFalse rows are near-deterministic and are pruned.
///
/// With ctx.constraint_sink set, every comparison that reaches a decided
/// outcome registers the bound obligations that keep the decision valid
/// (see RangeConstraintSink); undecided comparisons register nothing.
IntervalTruth ClassifyPredicate(const Expr& pred, const Row& row,
                                const EvalContext& ctx);

/// Registers "expr ≤ bound" (`upper` = true) or "expr ≥ bound" onto the
/// uncertain aggregates `expr` derives from, inverting through the
/// monotone structure it recognizes (±, × / ÷ by deterministic factors,
/// negation, lineage columns). Falls back to full-range containment of
/// every referenced aggregate when the dependence is not recognizably
/// monotone (UDFs, products of two uncertain values, ...).
void PushBoundConstraint(const Expr& expr, bool upper, double bound,
                         const Row& row, const EvalContext& ctx,
                         RangeConstraintSink* sink);

/// Rewrites `expr`, remapping every ColumnRef index through `mapping`
/// (mapping[i] = new index of old column i). Used when operators reshape
/// rows (projection push-through for lineage expressions).
ExprPtr RemapColumns(const ExprPtr& expr, const std::vector<int>& mapping);

}  // namespace iolap

#endif  // IOLAP_CORE_EXPR_H_
