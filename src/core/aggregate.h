#ifndef IOLAP_CORE_AGGREGATE_H_
#define IOLAP_CORE_AGGREGATE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/value.h"

namespace iolap {

/// Built-in aggregate kinds. kUdaf marks user-defined aggregates resolved
/// through the FunctionRegistry.
enum class AggKind {
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kVar,
  kStddev,
  kUdaf,
};

/// Incremental state of one aggregate over one group. Accumulators are the
/// "sketch states" of the paper (§4.2): an AGGREGATE operator keeps one
/// accumulator per group (plus one per bootstrap trial) instead of the
/// input tuples, so its state is sub-linear in the data.
///
/// `weight` carries tuple multiplicity: 1 for a plainly seen tuple, the
/// Poisson trial multiplicity in bootstrap trials, fractional values after
/// multiplicity-scaling joins. NULL inputs are ignored (SQL semantics).
class AggAccumulator {
 public:
  virtual ~AggAccumulator() = default;

  /// Folds one input value with multiplicity `weight`.
  virtual void Add(const Value& v, double weight) = 0;

  /// Folds another accumulator of the same dynamic type (partial-aggregate
  /// merge for parallel execution).
  virtual void Merge(const AggAccumulator& other) = 0;

  /// Current result, with tuple multiplicities scaled by `scale`
  /// (= |D| / |D_i|, the paper's m_i). Scale affects magnitude aggregates
  /// (COUNT, SUM) and cancels out of ratio aggregates (AVG, GEOMEAN, ...).
  virtual Value Result(double scale) const = 0;

  /// Deep copy, for per-batch state checkpoints (failure recovery, §5.1).
  virtual std::unique_ptr<AggAccumulator> Clone() const = 0;

  /// Approximate state footprint for the memory-utilization experiments.
  virtual size_t ByteSize() const = 0;
};

/// Immutable descriptor + factory for an aggregate function. Shared between
/// the plan (type checking) and the executor (accumulator creation).
class AggFunction {
 public:
  virtual ~AggFunction() = default;

  /// Lower-case SQL name ("sum", "geomean", ...).
  virtual std::string name() const = 0;

  /// Result type for a given input type.
  virtual ValueType ResultType(ValueType input) const = 0;

  /// How the result depends on the multiplicity scale m_i = |D|/|D_i|:
  /// linear (SUM, COUNT: result ∝ scale) or invariant (ratio aggregates —
  /// AVG, VAR, UDAF means: scale cancels). Every supported aggregate is
  /// one of the two, which lets the engine store unscaled sketch results
  /// and re-scale lazily instead of re-publishing untouched groups each
  /// batch.
  virtual bool ScalesLinearly() const { return false; }

  /// Whether the aggregate is smooth (Hadamard differentiable) under
  /// sampling, i.e., whether running results converge and bootstrap error
  /// estimation applies (§3.3). MIN/MAX are not; the binder rejects them
  /// over streamed relations.
  virtual bool SupportsSampling() const = 0;

  virtual std::unique_ptr<AggAccumulator> NewAccumulator() const = 0;
};

/// Built-in aggregate for `kind` (anything but kUdaf).
std::shared_ptr<const AggFunction> MakeBuiltinAggFunction(AggKind kind);

/// Maps a lower-case SQL aggregate name to a built-in kind; kUdaf if the
/// name is not a built-in (the binder then consults the FunctionRegistry).
AggKind AggKindFromName(const std::string& name);

}  // namespace iolap

#endif  // IOLAP_CORE_AGGREGATE_H_
