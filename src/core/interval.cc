#include "core/interval.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace iolap {

std::string Interval::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%.6g, %.6g]", lo, hi);
  return buf;
}

Interval IntervalAdd(const Interval& a, const Interval& b) {
  return Interval(a.lo + b.lo, a.hi + b.hi);
}

Interval IntervalSub(const Interval& a, const Interval& b) {
  return Interval(a.lo - b.hi, a.hi - b.lo);
}

namespace {

// 0 * inf arises for unbounded operands; treat it as 0 so that
// multiplying an unbounded interval by a point 0 stays bounded.
double SafeMul(double a, double b) {
  if (a == 0.0 || b == 0.0) return 0.0;
  return a * b;
}

}  // namespace

Interval IntervalMul(const Interval& a, const Interval& b) {
  const double p1 = SafeMul(a.lo, b.lo);
  const double p2 = SafeMul(a.lo, b.hi);
  const double p3 = SafeMul(a.hi, b.lo);
  const double p4 = SafeMul(a.hi, b.hi);
  return Interval(std::min(std::min(p1, p2), std::min(p3, p4)),
                  std::max(std::max(p1, p2), std::max(p3, p4)));
}

Interval IntervalDiv(const Interval& a, const Interval& b) {
  if (b.Contains(0.0)) return Interval::Unbounded();
  const Interval reciprocal(1.0 / b.hi, 1.0 / b.lo);
  return IntervalMul(a, reciprocal);
}

Interval IntervalNeg(const Interval& a) { return Interval(-a.hi, -a.lo); }

IntervalTruth IntervalLess(const Interval& a, const Interval& b) {
  if (a.hi < b.lo) return IntervalTruth::kAlwaysTrue;
  if (a.lo >= b.hi) return IntervalTruth::kAlwaysFalse;
  return IntervalTruth::kUndecided;
}

IntervalTruth IntervalLessEq(const Interval& a, const Interval& b) {
  if (a.hi <= b.lo) return IntervalTruth::kAlwaysTrue;
  if (a.lo > b.hi) return IntervalTruth::kAlwaysFalse;
  return IntervalTruth::kUndecided;
}

IntervalTruth IntervalEq(const Interval& a, const Interval& b) {
  if (a.IsPoint() && b.IsPoint() && a.lo == b.lo) {
    return IntervalTruth::kAlwaysTrue;
  }
  if (!a.Overlaps(b)) return IntervalTruth::kAlwaysFalse;
  return IntervalTruth::kUndecided;
}

}  // namespace iolap
