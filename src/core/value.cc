#include "core/value.h"

#include <cmath>
#include <cstdio>

#include "common/hash.h"

namespace iolap {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

double Value::AsDouble() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(int64());
    case ValueType::kDouble:
      return dbl();
    default:
      return 0.0;
  }
}

bool Value::IsTruthy() const {
  switch (type()) {
    case ValueType::kInt64:
      return int64() != 0;
    case ValueType::kDouble:
      return dbl() != 0.0;
    default:
      return false;
  }
}

int Value::Compare(const Value& other) const {
  const bool a_num = is_numeric();
  const bool b_num = other.is_numeric();
  if (a_num && b_num) {
    // Numeric cross-type comparison by value.
    const double a = AsDouble();
    const double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  // Heterogeneous / non-numeric: order by type id, then payload.
  const auto ta = static_cast<int>(type());
  const auto tb = static_cast<int>(other.type());
  if (ta != tb) return ta < tb ? -1 : 1;
  if (type() == ValueType::kString) return str().compare(other.str());
  return 0;  // both NULL
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9ae16a3b2f90404full;
    case ValueType::kInt64:
      return Mix64(static_cast<uint64_t>(int64()));
    case ValueType::kDouble: {
      // Hash doubles through their int64 value when integral so that
      // Int64(2) and Double(2.0) (which compare equal) hash equal.
      const double d = dbl();
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        return Mix64(static_cast<uint64_t>(static_cast<int64_t>(d)));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits);
    }
    case ValueType::kString:
      return HashBytes(str());
  }
  return 0;
}

size_t Value::ByteSize() const {
  switch (type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 8;
    case ValueType::kString:
      return str().size() + 4;
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(int64());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", dbl());
      return buf;
    }
    case ValueType::kString:
      return str();
  }
  return "?";
}

uint64_t HashRow(const Row& row) {
  uint64_t h = 0x2545f4914f6cdd1dull;
  for (const Value& v : row) h = HashCombine(h, v.Hash());
  return h;
}

size_t RowByteSize(const Row& row) {
  size_t total = 0;
  for (const Value& v : row) total += v.ByteSize();
  return total;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace iolap
