#ifndef IOLAP_CORE_INTERVAL_H_
#define IOLAP_CORE_INTERVAL_H_

#include <limits>
#include <string>

namespace iolap {

/// A closed numeric interval [lo, hi], used to represent the variation
/// range R(u) of an uncertain value (paper §5.1) and to propagate ranges
/// through arbitrary arithmetic expressions via interval arithmetic. The
/// special Unbounded() interval is the conservative "could be anything"
/// range (e.g., the result of a UDF over an uncertain input).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  Interval() = default;
  Interval(double lo_in, double hi_in) : lo(lo_in), hi(hi_in) {}

  /// Degenerate interval containing a single point.
  static Interval Point(double v) { return Interval(v, v); }

  /// (-inf, +inf): the conservative range.
  static Interval Unbounded() {
    return Interval(-std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity());
  }

  bool IsPoint() const { return lo == hi; }
  bool IsUnbounded() const {
    return lo == -std::numeric_limits<double>::infinity() &&
           hi == std::numeric_limits<double>::infinity();
  }
  bool Contains(double v) const { return lo <= v && v <= hi; }
  bool ContainsInterval(const Interval& other) const {
    return lo <= other.lo && other.hi <= hi;
  }
  bool Overlaps(const Interval& other) const {
    return lo <= other.hi && other.lo <= hi;
  }

  double Width() const { return hi - lo; }

  /// Intersection; caller must ensure Overlaps() (asserted by narrowing to
  /// an empty-ish interval otherwise is avoided at call sites).
  Interval Intersect(const Interval& other) const {
    return Interval(lo > other.lo ? lo : other.lo,
                    hi < other.hi ? hi : other.hi);
  }

  /// Smallest interval containing both.
  Interval Union(const Interval& other) const {
    return Interval(lo < other.lo ? lo : other.lo,
                    hi > other.hi ? hi : other.hi);
  }

  std::string ToString() const;
};

// Interval arithmetic. All operations are conservative: the result interval
// contains f(x, y) for all x in a, y in b.
Interval IntervalAdd(const Interval& a, const Interval& b);
Interval IntervalSub(const Interval& a, const Interval& b);
Interval IntervalMul(const Interval& a, const Interval& b);
/// Division; if b contains 0 the result is Unbounded().
Interval IntervalDiv(const Interval& a, const Interval& b);
Interval IntervalNeg(const Interval& a);

/// Tri-state outcome of comparing two intervals: the comparison holds for
/// every value pair, for none, or depends on the realized values.
enum class IntervalTruth { kAlwaysTrue, kAlwaysFalse, kUndecided };

/// Decides `a ϑ b` over intervals for ϑ in {<, <=, >, >=, ==, !=}.
/// kUndecided corresponds to the paper's R(x) ∩ R(y) ≠ ∅ test (§5.1),
/// refined per comparison direction.
IntervalTruth IntervalLess(const Interval& a, const Interval& b);
IntervalTruth IntervalLessEq(const Interval& a, const Interval& b);
IntervalTruth IntervalEq(const Interval& a, const Interval& b);

inline IntervalTruth Negate(IntervalTruth t) {
  switch (t) {
    case IntervalTruth::kAlwaysTrue:
      return IntervalTruth::kAlwaysFalse;
    case IntervalTruth::kAlwaysFalse:
      return IntervalTruth::kAlwaysTrue;
    default:
      return IntervalTruth::kUndecided;
  }
}

}  // namespace iolap

#endif  // IOLAP_CORE_INTERVAL_H_
