#ifndef IOLAP_CORE_SCHEMA_H_
#define IOLAP_CORE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/value.h"

namespace iolap {

/// A named, typed column.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;

  Column() = default;
  Column(std::string name_in, ValueType type_in)
      : name(std::move(name_in)), type(type_in) {}
};

/// An ordered list of columns describing a relation. Column names may be
/// qualified ("lineorder.quantity"); lookup matches on the qualified name
/// first, then on the unqualified suffix (erroring on ambiguity).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(Column column) { columns_.push_back(std::move(column)); }

  /// Index of the column named `name`, resolving qualified and unqualified
  /// forms. NotFound if absent, InvalidArgument if ambiguous.
  Result<int> FindColumn(const std::string& name) const;

  /// True if some column matches `name` (including ambiguously).
  bool HasColumn(const std::string& name) const;

  /// Schema of `this` followed by `other` (join output shape).
  Schema Concat(const Schema& other) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace iolap

#endif  // IOLAP_CORE_SCHEMA_H_
