#include "core/table.h"

namespace iolap {

size_t Table::ByteSize() const {
  size_t total = 0;
  for (const Row& row : rows_) total += RowByteSize(row);
  return total;
}

std::string Table::ToString(size_t max_rows) const {
  std::string out = schema_.ToString();
  out += "\n";
  const size_t limit = rows_.size() < max_rows ? rows_.size() : max_rows;
  for (size_t i = 0; i < limit; ++i) {
    out += RowToString(rows_[i]);
    out += "\n";
  }
  if (rows_.size() > limit) {
    out += "... (" + std::to_string(rows_.size() - limit) + " more rows)\n";
  }
  return out;
}

}  // namespace iolap
