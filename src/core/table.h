#ifndef IOLAP_CORE_TABLE_H_
#define IOLAP_CORE_TABLE_H_

#include <string>
#include <vector>

#include "core/schema.h"
#include "core/value.h"

namespace iolap {

/// An in-memory relation: a schema plus a vector of rows. Tables are the
/// storage substrate of the engine; the catalog owns base tables, and
/// partial query results are delivered as tables.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }

  size_t num_rows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }

  void AddRow(Row row) { rows_.push_back(std::move(row)); }
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Approximate payload size, for the shuffle cost model.
  size_t ByteSize() const;

  /// Multi-line debug rendering (header + up to `max_rows` rows).
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace iolap

#endif  // IOLAP_CORE_TABLE_H_
