// Figure 10(e)/(f): the slack-parameter sweep of Fig. 9(d)/(e) on the
// TPC-H nested queries: slack vs probability of failure-recovery and vs
// average tuples recomputed per batch.
//
// Paper shapes: identical to the Conviva sweep — failures vanish by ε≈2,
// the non-deterministic set grows slowly with slack.

#include <atomic>
#include <cstdio>

#include "common/thread_pool.h"

#include "bench_util.h"

using namespace iolap;  // NOLINT — bench brevity

int main() {
  bench::Header("Figure 10(e)/(f)",
                "slack vs failure-recovery probability and avg tuples "
                "recomputed per batch (TPC-H nested queries)",
                "query\tslack\tfailure_probability\tavg_recomputed_per_batch");
  constexpr double kSlacks[] = {0.0, 0.5, 1.0, 1.5, 2.0, 2.5};
  constexpr int kSeeds = 5;
  for (const BenchQuery& query : TpchQueries()) {
    if (!query.nested) continue;
    auto catalog = CatalogFor(query, /*conviva=*/false);
    if (!catalog.ok()) {
      std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
      return 1;
    }
    ThreadPool pool(std::thread::hardware_concurrency());
    for (double slack : kSlacks) {
      std::atomic<int> runs_with_failure{0};
      std::atomic<long long> recomputed{0};
      std::atomic<size_t> batches{0};
      std::atomic<bool> failed{false};
      pool.ParallelFor(kSeeds, [&](size_t seed) {
        EngineOptions options = BenchOptions(ExecutionMode::kIolap);
        options.slack = slack;
        options.seed = 4242 + seed * 31;
        auto outcome = RunBenchQuery(*catalog, query, options);
        if (!outcome.ok()) {
          failed = true;
          return;
        }
        if (outcome->metrics.TotalFailureRecoveries() > 0) {
          runs_with_failure.fetch_add(1);
        }
        recomputed.fetch_add(
            static_cast<long long>(outcome->metrics.TotalRecomputedRows()));
        batches.fetch_add(outcome->metrics.batches.size());
      });
      if (failed) {
        std::fprintf(stderr, "%s failed\n", query.id.c_str());
        return 1;
      }
      std::printf("%s\t%.1f\t%.2f\t%.1f\n", query.id.c_str(), slack,
                  static_cast<double>(runs_with_failure.load()) / kSeeds,
                  batches.load() > 0
                      ? static_cast<double>(recomputed.load()) / batches.load()
                      : 0.0);
    }
  }
  return 0;
}
