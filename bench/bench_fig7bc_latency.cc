// Figures 7(b) and 7(c): query latency of the batch baseline vs iOLAP
// processing 5% of the data, 10% of the data, and the full dataset, for
// the TPC-H and Conviva workloads.
//
// Paper shape: iOLAP delivers the 5%/10% answers at a small fraction of
// the baseline latency, while full-data iOLAP carries a modest (~1.1–2.5x)
// overhead from bootstrap + per-batch scheduling.

#include <cstdio>

#include "bench_util.h"

using namespace iolap;  // NOLINT — bench brevity

namespace {

int RunWorkload(const char* figure, const std::vector<BenchQuery>& queries,
                bool conviva, bench::JsonWriter* json) {
  bench::Header(figure,
                conviva ? "Conviva query latency: baseline vs iOLAP"
                        : "TPC-H query latency: baseline vs iOLAP",
                "query\tbaseline_s\tiolap_5pct_s\tiolap_10pct_s\t"
                "iolap_full_s\tfull_vs_baseline\tiolap_cpu_s\tcpu_over_wall");
  for (const BenchQuery& query : queries) {
    auto catalog = CatalogFor(query, conviva);
    if (!catalog.ok()) {
      std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
      return 1;
    }
    auto baseline =
        RunBenchQuery(*catalog, query, BenchOptions(ExecutionMode::kBaseline));
    if (!baseline.ok()) {
      std::fprintf(stderr, "%s: %s\n", query.id.c_str(),
                   baseline.status().ToString().c_str());
      return 1;
    }
    auto iolap_run =
        RunBenchQuery(*catalog, query, BenchOptions(ExecutionMode::kIolap));
    if (!iolap_run.ok()) {
      std::fprintf(stderr, "%s: %s\n", query.id.c_str(),
                   iolap_run.status().ToString().c_str());
      return 1;
    }
    const double baseline_s = baseline->metrics.TotalLatencySec();
    const double full_s = iolap_run->metrics.TotalLatencySec();
    const double at5 = bench::LatencyToFraction(iolap_run->metrics, 0.05);
    const double at10 = bench::LatencyToFraction(iolap_run->metrics, 0.10);
    // cpu/wall > 1 shows intra-batch parallelism at work (set
    // IOLAP_BENCH_THREADS); ≈1 means the run was effectively serial.
    const double cpu_s = iolap_run->metrics.TotalCpuSec();
    std::printf("%s\t%.4f\t%.4f\t%.4f\t%.4f\t%.2fx\t%.4f\t%.2f\n",
                query.id.c_str(), baseline_s, at5, at10, full_s,
                baseline_s > 0 ? full_s / baseline_s : 0.0, cpu_s,
                full_s > 0 ? cpu_s / full_s : 0.0);
    const std::string prefix = conviva ? "conviva_" : "tpch_";
    const uint64_t rows = bench::TotalInputRows(iolap_run->metrics);
    json->Add(prefix + query.id + "_baseline", baseline_s,
              baseline->metrics.TotalCpuSec(),
              baseline_s > 0
                  ? bench::TotalInputRows(baseline->metrics) / baseline_s
                  : 0.0,
              BenchThreads());
    json->AddWithRecovery(prefix + query.id + "_iolap", full_s, cpu_s,
                          full_s > 0 ? rows / full_s : 0.0, BenchThreads(),
                          iolap_run->metrics);
    // Recovery activity shifts latency; surface it next to the numbers it
    // explains (silent on a healthy run).
    const QueryMetrics& im = iolap_run->metrics;
    if (im.TotalFailureRecoveries() > 0 || im.TotalCorruptCheckpoints() > 0 ||
        im.DegradedMode()) {
      std::printf(
          "# %s recovery: recoveries=%d max_rollback_depth=%d "
          "full_restarts=%d corrupt_checkpoints=%d injected=%d "
          "frozen_replays=%d exhausted=%d degraded=%d\n",
          query.id.c_str(), im.TotalFailureRecoveries(), im.MaxRollbackDepth(),
          im.TotalFullRestarts(), im.TotalCorruptCheckpoints(),
          im.TotalInjectedFaults(), im.TotalFrozenReplayBatches(),
          im.TotalRecoveriesExhausted(), im.DegradedMode() ? 1 : 0);
    }
  }
  return 0;
}

}  // namespace

int main() {
  bench::JsonWriter json("BENCH_fig7.json");
  if (int rc = RunWorkload("Figure 7(b)", TpchQueries(), false, &json);
      rc != 0) {
    return rc;
  }
  std::printf("\n");
  if (int rc = RunWorkload("Figure 7(c)", ConvivaQueries(), true, &json);
      rc != 0) {
    return rc;
  }
  return json.Flush() ? 0 : 1;
}
