// Figure 9(a): optimization breakdown on Conviva C2 — per-batch latency of
// HDA, OPT1 (tuple-uncertainty partitioning only), and OPT1+OPT2 (full
// iOLAP with lineage-based lazy evaluation).
//
// Paper shape: OPT1 cuts per-batch latency to a fraction of HDA (the
// non-deterministic set is small); OPT2 shaves a further slice by
// refreshing saved tuples in place instead of re-deriving them.

#include <cstdio>

#include "bench_util.h"

using namespace iolap;  // NOLINT — bench brevity

int main() {
  const BenchQuery query = FindConvivaQuery("c2");
  auto catalog = bench::SmallCatalogFor(query, /*conviva=*/true, 0.4);
  if (!catalog.ok()) {
    std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
    return 1;
  }

  struct Config {
    const char* label;
    ExecutionMode mode;
    bool opt1;
    bool opt2;
  } configs[] = {
      {"hda", ExecutionMode::kHda, false, false},
      {"opt1", ExecutionMode::kIolap, true, false},
      {"opt1+opt2", ExecutionMode::kIolap, true, true},
  };

  bench::Header("Figure 9(a)",
                "optimization breakdown on Conviva C2 (" + query.sql + ")",
                "config\tbatch\tlatency_ms\trecomputed_tuples");
  double totals[3] = {0, 0, 0};
  int idx = 0;
  for (const Config& config : configs) {
    EngineOptions options = BenchOptions(config.mode);
    options.tuple_partition = config.opt1;
    options.lazy_lineage = config.opt2;
    options.num_batches = 20;
    options.num_trials = 30;
    auto outcome = RunBenchQuery(*catalog, query, options);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s: %s\n", config.label,
                   outcome.status().ToString().c_str());
      return 1;
    }
    for (const BatchMetrics& b : outcome->metrics.batches) {
      std::printf("%s\t%d\t%.3f\t%llu\n", config.label, b.batch,
                  b.latency_sec * 1e3,
                  static_cast<unsigned long long>(b.recomputed_rows));
      totals[idx] += b.latency_sec;
    }
    ++idx;
  }
  std::printf("# totals: hda=%.3fs opt1=%.3fs (%.0f%% of hda) "
              "opt1+opt2=%.3fs (%.0f%% of hda)\n",
              totals[0], totals[1],
              totals[0] > 0 ? 100.0 * totals[1] / totals[0] : 0.0, totals[2],
              totals[0] > 0 ? 100.0 * totals[2] / totals[0] : 0.0);
  return 0;
}
