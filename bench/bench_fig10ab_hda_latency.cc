// Figure 10(a)/(b): end-to-end latency of iOLAP vs HDA when processing 5%,
// 10% and 100% of the data, for both workloads.
//
// Paper shapes: comparable on simple SPJA queries; on nested queries HDA's
// cumulative cost overtakes iOLAP even at the 10% mark and blows up on the
// full run (the paper cuts those bars off).

#include <cstdio>

#include "bench_util.h"

using namespace iolap;  // NOLINT — bench brevity

namespace {

constexpr double kScaleFactor = 0.2;

int RunWorkload(const char* figure, const std::vector<BenchQuery>& queries,
                bool conviva) {
  bench::Header(figure,
                std::string(conviva ? "Conviva" : "TPC-H") +
                    " latency: iOLAP vs HDA at 5%/10%/full data",
                "query\tiolap_5pct_s\tiolap_10pct_s\tiolap_full_s\t"
                "hda_5pct_s\thda_10pct_s\thda_full_s");
  for (const BenchQuery& query : queries) {
    auto catalog = bench::SmallCatalogFor(query, conviva, kScaleFactor);
    if (!catalog.ok()) {
      std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
      return 1;
    }
    double at[2][3] = {{0}};
    int m = 0;
    for (ExecutionMode mode : {ExecutionMode::kIolap, ExecutionMode::kHda}) {
      EngineOptions options = BenchOptions(mode);
      options.num_batches = 20;
      options.num_trials = 20;
      auto outcome = RunBenchQuery(*catalog, query, options);
      if (!outcome.ok()) {
        std::fprintf(stderr, "%s: %s\n", query.id.c_str(),
                     outcome.status().ToString().c_str());
        return 1;
      }
      at[m][0] = bench::LatencyToFraction(outcome->metrics, 0.05);
      at[m][1] = bench::LatencyToFraction(outcome->metrics, 0.10);
      at[m][2] = outcome->metrics.TotalLatencySec();
      ++m;
    }
    std::printf("%s\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\n", query.id.c_str(),
                at[0][0], at[0][1], at[0][2], at[1][0], at[1][1], at[1][2]);
  }
  return 0;
}

}  // namespace

int main() {
  if (int rc = RunWorkload("Figure 10(a)", TpchQueries(), false); rc != 0) {
    return rc;
  }
  std::printf("\n");
  return RunWorkload("Figure 10(b)", ConvivaQueries(), true);
}
