// Figure 9(d): slack parameter vs probability of failure-recovery
// (Conviva nested queries, repeated seeds).
// Figure 9(e): slack parameter vs average tuples recomputed per batch.
// Figure 9(f)/(g): batch size vs average per-batch latency and vs total
// query latency.
//
// Paper shapes: failure probability drops fast with slack and hits zero by
// ε≈2; the non-deterministic set grows only mildly with slack; per-batch
// latency grows linearly with batch size while total latency falls.

#include <atomic>
#include <cstdio>

#include "common/thread_pool.h"

#include "bench_util.h"

using namespace iolap;  // NOLINT — bench brevity

namespace {

const char* kNested[] = {"c1", "c2", "c4", "c6", "c7", "c8", "c9", "c10"};
constexpr double kSlacks[] = {0.0, 0.5, 1.0, 1.5, 2.0, 2.5};
constexpr int kSeeds = 5;

}  // namespace

int main() {
  auto catalog = ConvivaBenchCatalog();
  if (!catalog.ok()) {
    std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
    return 1;
  }

  // --- Fig 9(d)/(e): slack sweep --------------------------------------
  bench::Header("Figure 9(d)/(e)",
                "slack vs failure-recovery probability and vs avg tuples "
                "recomputed per batch (Conviva nested queries)",
                "query\tslack\tfailure_probability\tavg_recomputed_per_batch");
  // Each (query, slack, seed) run is an independent engine instance over
  // the shared read-only catalog: fan the sweep out over a thread pool.
  ThreadPool pool(std::thread::hardware_concurrency());
  for (const char* id : kNested) {
    const BenchQuery query = FindConvivaQuery(id);
    for (double slack : kSlacks) {
      std::atomic<int> runs_with_failure{0};
      std::atomic<long long> recomputed{0};
      std::atomic<size_t> batches{0};
      std::atomic<bool> failed{false};
      pool.ParallelFor(kSeeds, [&](size_t seed) {
        EngineOptions options = BenchOptions(ExecutionMode::kIolap);
        options.slack = slack;
        options.seed = 1000 + seed * 77;
        auto outcome = RunBenchQuery(*catalog, query, options);
        if (!outcome.ok()) {
          failed = true;
          return;
        }
        if (outcome->metrics.TotalFailureRecoveries() > 0) {
          runs_with_failure.fetch_add(1);
        }
        recomputed.fetch_add(
            static_cast<long long>(outcome->metrics.TotalRecomputedRows()));
        batches.fetch_add(outcome->metrics.batches.size());
      });
      if (failed) {
        std::fprintf(stderr, "%s failed\n", id);
        return 1;
      }
      std::printf("%s\t%.1f\t%.2f\t%.1f\n", id, slack,
                  static_cast<double>(runs_with_failure.load()) / kSeeds,
                  batches.load() > 0
                      ? static_cast<double>(recomputed.load()) / batches.load()
                      : 0.0);
    }
  }

  // --- Fig 9(f)/(g): batch-size sweep ----------------------------------
  std::printf("\n");
  bench::Header("Figure 9(f)/(g)",
                "batch size vs avg per-batch latency and total latency "
                "(Conviva workload)",
                "query\tbatches\trows_per_batch\tavg_batch_ms\ttotal_s");
  const Table& sessions = *(*(*catalog)->Find("sessions"))->table;
  for (const BenchQuery& query : ConvivaQueries()) {
    for (size_t batches : {40, 30, 25, 20, 15}) {
      EngineOptions options = BenchOptions(ExecutionMode::kIolap);
      options.num_batches = batches;
      auto outcome = RunBenchQuery(*catalog, query, options);
      if (!outcome.ok()) {
        std::fprintf(stderr, "%s: %s\n", query.id.c_str(),
                     outcome.status().ToString().c_str());
        return 1;
      }
      const double total = outcome->metrics.TotalLatencySec();
      std::printf("%s\t%zu\t%zu\t%.3f\t%.4f\n", query.id.c_str(), batches,
                  sessions.num_rows() / batches,
                  1e3 * total / outcome->metrics.batches.size(), total);
    }
  }
  return 0;
}
